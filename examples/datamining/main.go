// Command datamining reproduces the application of the paper's
// Section 4.4: a database server performs incremental sequence mining
// over a growing transaction database and shares the summary lattice
// — a pointer-rich structure — through an InterWeave segment; a
// mining client answers queries from its cached copy under a relaxed
// coherence model, saving translation and communication by tolerating
// slightly stale summaries.
//
//	go run ./examples/datamining [-updates 10] [-delta 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"interweave"
	"interweave/internal/seqmine"
)

func main() {
	updates := flag.Int("updates", 10, "incremental 1% updates after the initial half")
	delta := flag.Uint("delta", 2, "mining client tolerates this many versions of staleness")
	flag.Parse()
	if err := run(*updates, uint32(*delta)); err != nil {
		log.Fatal(err)
	}
}

func run(updates int, delta uint32) error {
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	segName := ln.Addr().String() + "/lattice"

	// The transaction database (a scaled-down Quest-style synthetic
	// set; see internal/seqmine for the paper's full parameters).
	cfg := seqmine.SmallConfig()
	cfg.Customers = 10000
	db, err := seqmine.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("database: %d customers, %d items, %.1f MB\n",
		cfg.Customers, cfg.Items, float64(db.SizeBytes())/(1<<20))

	// Database server: an Alpha-like machine.
	dbClient, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileAlpha(), Name: "dbserver",
	})
	if err != nil {
		return err
	}
	defer dbClient.Close()
	pub, err := seqmine.NewPublisher(dbClient, segName)
	if err != nil {
		return err
	}

	lat, err := seqmine.NewLattice(cfg.PatternLen, 20)
	if err != nil {
		return err
	}
	half := cfg.Customers / 2
	lat.AddSequences(db.Slice(0, half))
	if err := pub.Publish(lat); err != nil {
		return err
	}
	fmt.Printf("initial summary from %d%% of the database: %d lattice nodes (version %d)\n",
		50, lat.Nodes(), pub.Segment().Version())

	// Mining client: a Sparc-like machine under Delta coherence.
	mineClient, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileSparc(), Name: "miner",
	})
	if err != nil {
		return err
	}
	defer mineClient.Close()
	sub, err := seqmine.NewSubscriber(mineClient, segName, interweave.Delta(delta))
	if err != nil {
		return err
	}

	onePct := cfg.Customers / 100
	for u := 1; u <= updates; u++ {
		lo := half + (u-1)*onePct
		lat.AddSequences(db.Slice(lo, lo+onePct))
		if err := pub.Publish(lat); err != nil {
			return err
		}
		before := sub.Segment().Version()
		snap, err := sub.Snapshot()
		if err != nil {
			return err
		}
		after := sub.Segment().Version()
		status := "cache hit (stale but within bound)"
		if after != before {
			status = fmt.Sprintf("updated %d -> %d", before, after)
		}
		top := snap.Frequent(int32(cfg.Customers/25), 3)
		fmt.Printf("update %2d: server v%d, miner %-32s top: %s\n",
			u, pub.Segment().Version(), status, renderPatterns(top))
	}
	return nil
}

func renderPatterns(pats []seqmine.Pattern) string {
	if len(pats) == 0 {
		return "(none)"
	}
	parts := make([]string, 0, len(pats))
	for _, p := range pats {
		items := make([]string, len(p.Seq))
		for i, it := range p.Seq {
			items[i] = fmt.Sprint(it)
		}
		parts = append(parts, fmt.Sprintf("<%s>x%d", strings.Join(items, ","), p.Support))
	}
	return strings.Join(parts, " ")
}
