// Command calendar is the CSCW scenario the paper's introduction
// motivates: several users on different machines share a group
// calendar — a pointer-rich structure of strings and integers — and
// see each other's changes through ordinary reads and writes, with
// coherence handled entirely by InterWeave.
//
//	go run ./examples/calendar
//
// Bindings in bindings.go are generated from calendar.idl by
// cmd/iwidl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"interweave"
)

const daysPerWeek = 5

var dayNames = [daysPerWeek]string{"Mon", "Tue", "Wed", "Thu", "Fri"}

func main() {
	server := flag.String("server", "", "InterWeave server address (empty = in-process)")
	flag.Parse()
	if err := run(*server); err != nil {
		log.Fatal(err)
	}
}

type user struct {
	name  string
	c     *interweave.Client
	h     *interweave.Segment
	types map[string]*interweave.Type
}

func newUser(name, segName string, prof *interweave.Profile) (*user, error) {
	c, err := interweave.NewClient(interweave.Options{Profile: prof, Name: name})
	if err != nil {
		return nil, err
	}
	h, err := c.Open(segName)
	if err != nil {
		return nil, err
	}
	declared, err := Types()
	if err != nil {
		return nil, err
	}
	return &user{name: name, c: c, h: h, types: declared}, nil
}

// book adds an appointment at the head of a day's list.
func (u *user) book(day, hour int32, title string) error {
	if err := u.c.WLock(u.h); err != nil {
		return err
	}
	defer func() { _ = u.c.WUnlock(u.h) }()
	dayBlk, ok := u.h.Mem().BlockByName("week")
	if !ok {
		return fmt.Errorf("calendar not initialized")
	}
	weekRef, err := interweave.RefTo(u.c, dayBlk)
	if err != nil {
		return err
	}
	dayRef, err := weekRef.Elem(int(day))
	if err != nil {
		return err
	}
	dl := NewDayListView(dayRef)

	blk, err := u.c.Alloc(u.h, u.types["appt"], 1, "")
	if err != nil {
		return err
	}
	ref, err := interweave.RefTo(u.c, blk)
	if err != nil {
		return err
	}
	a := NewApptView(ref)
	if err := a.SetDay(day); err != nil {
		return err
	}
	if err := a.SetHour(hour); err != nil {
		return err
	}
	if err := a.SetTitle(title); err != nil {
		return err
	}
	if err := a.SetOwner(u.name); err != nil {
		return err
	}
	oldHead, err := dl.Head()
	if err != nil {
		return err
	}
	if err := a.SetNext(oldHead); err != nil {
		return err
	}
	if err := dl.SetHead(ref.Addr()); err != nil {
		return err
	}
	n, err := dl.Count()
	if err != nil {
		return err
	}
	return dl.SetCount(n + 1)
}

// show prints the whole week as this user's cached copy sees it.
func (u *user) show() error {
	if err := u.c.RLock(u.h); err != nil {
		return err
	}
	defer func() { _ = u.c.RUnlock(u.h) }()
	dayBlk, ok := u.h.Mem().BlockByName("week")
	if !ok {
		return fmt.Errorf("calendar not initialized")
	}
	weekRef, err := interweave.RefTo(u.c, dayBlk)
	if err != nil {
		return err
	}
	fmt.Printf("-- %s's view (%s) --\n", u.name, u.c.Profile())
	for d := 0; d < daysPerWeek; d++ {
		dayRef, err := weekRef.Elem(d)
		if err != nil {
			return err
		}
		dl := NewDayListView(dayRef)
		n, err := dl.Count()
		if err != nil {
			return err
		}
		fmt.Printf("  %s (%d):", dayNames[d], n)
		a, err := dl.HeadDeref()
		for err == nil {
			hour, herr := a.Hour()
			if herr != nil {
				return herr
			}
			title, terr := a.Title()
			if terr != nil {
				return terr
			}
			owner, oerr := a.Owner()
			if oerr != nil {
				return oerr
			}
			fmt.Printf("  %02d:00 %s (%s)", hour, title, owner)
			a, err = a.NextDeref()
		}
		fmt.Println()
	}
	return nil
}

func run(serverAddr string) error {
	if serverAddr == "" {
		srv, err := interweave.NewServer(interweave.ServerOptions{})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		serverAddr = ln.Addr().String()
	}
	segName := serverAddr + "/calendar"

	alice, err := newUser("alice", segName, interweave.ProfileAlpha())
	if err != nil {
		return err
	}
	defer alice.c.Close()

	// Alice initializes the week: one day_list per weekday in a
	// single block.
	if err := alice.c.WLock(alice.h); err != nil {
		return err
	}
	if _, err := alice.c.Alloc(alice.h, alice.types["day_list"], daysPerWeek, "week"); err != nil {
		return err
	}
	if err := alice.c.WUnlock(alice.h); err != nil {
		return err
	}

	bob, err := newUser("bob", segName, interweave.ProfileSparc())
	if err != nil {
		return err
	}
	defer bob.c.Close()
	carol, err := newUser("carol", segName, interweave.ProfileX86())
	if err != nil {
		return err
	}
	defer carol.c.Close()

	if err := alice.book(0, 9, "standup"); err != nil {
		return err
	}
	if err := bob.book(0, 14, "design review"); err != nil {
		return err
	}
	if err := carol.book(2, 11, "1:1 alice/carol"); err != nil {
		return err
	}
	if err := bob.book(4, 16, "demo"); err != nil {
		return err
	}

	// Everyone sees the same calendar, each through their own cached
	// copy in their own local data format.
	for _, u := range []*user{alice, bob, carol} {
		if err := u.show(); err != nil {
			return err
		}
	}
	return nil
}
