// Command quickstart reproduces the paper's Figure 1: a shared
// linked list, built by a "writer" client and searched by a "reader"
// client on a different (simulated) machine architecture, with the
// reader bootstrapping through a machine-independent pointer.
//
// Run it self-contained (it starts an in-process server):
//
//	go run ./examples/quickstart
//
// Or against a running iwserver:
//
//	go run ./examples/quickstart -server 127.0.0.1:7777
//
// The node_t bindings in bindings.go are generated from list.idl by
// cmd/iwidl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"interweave"
)

func main() {
	server := flag.String("server", "", "InterWeave server address (empty = start one in-process)")
	flag.Parse()
	if err := run(*server); err != nil {
		log.Fatal(err)
	}
}

func run(serverAddr string) error {
	if serverAddr == "" {
		srv, err := interweave.NewServer(interweave.ServerOptions{})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		serverAddr = ln.Addr().String()
		fmt.Println("started in-process server on", serverAddr)
	}
	segName := serverAddr + "/list"

	declared, err := Types()
	if err != nil {
		return err
	}
	nodeT := declared["node_t"]

	// --- Writer: a big-endian 32-bit "Sparc" client. ---
	writer, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileSparc(),
		Name:    "writer",
	})
	if err != nil {
		return err
	}
	defer writer.Close()

	wl := &list{c: writer, nodeT: nodeT}
	if wl.h, err = writer.Open(segName); err != nil {
		return err
	}
	// list_init: create the unused header node.
	if err := writer.WLock(wl.h); err != nil {
		return err
	}
	head, err := writer.Alloc(wl.h, nodeT, 1, "head")
	if err != nil {
		return err
	}
	if err := writer.WUnlock(wl.h); err != nil {
		return err
	}
	wl.head, err = interweave.RefTo(writer, head)
	if err != nil {
		return err
	}

	for _, key := range []int32{30, 20, 10} {
		if err := wl.insert(key); err != nil {
			return err
		}
	}
	fmt.Printf("writer (%s) built list: ", writer.Profile())
	if err := wl.print(); err != nil {
		return err
	}

	// --- Reader: a little-endian 64-bit "Alpha" client entering
	// through a MIP, as Figure 1's list_init does. ---
	reader, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileAlpha(),
		Name:    "reader",
	})
	if err != nil {
		return err
	}
	defer reader.Close()

	headAddr, err := reader.MIPToPtr(segName + "#head")
	if err != nil {
		return err
	}
	rh, err := reader.Open(segName)
	if err != nil {
		return err
	}
	headRef, err := interweave.RefAt(reader, headAddr, nodeT)
	if err != nil {
		return err
	}
	rl := &list{c: reader, h: rh, nodeT: nodeT, head: headRef}

	for _, probe := range []int32{20, 99} {
		found, err := rl.search(probe)
		if err != nil {
			return err
		}
		fmt.Printf("reader (%s) search(%d) = %v\n", reader.Profile(), probe, found)
	}

	// The reader inserts too; the writer sees it.
	if err := rl.insert(5); err != nil {
		return err
	}
	fmt.Printf("after reader insert(5), writer sees: ")
	return wl.print()
}

// list wraps the Figure 1 operations for one client.
type list struct {
	c     *interweave.Client
	h     *interweave.Segment
	nodeT *interweave.Type
	head  interweave.Ref
}

// insert is Figure 1's list_insert: allocate, link after head.
func (l *list) insert(key int32) error {
	if err := l.c.WLock(l.h); err != nil {
		return err
	}
	defer func() { _ = l.c.WUnlock(l.h) }()
	blk, err := l.c.Alloc(l.h, l.nodeT, 1, "")
	if err != nil {
		return err
	}
	ref, err := interweave.RefTo(l.c, blk)
	if err != nil {
		return err
	}
	node := NewNodeTView(ref)
	if err := node.SetKey(key); err != nil {
		return err
	}
	headNode := NewNodeTView(l.head)
	first, err := headNode.Next()
	if err != nil {
		return err
	}
	if err := node.SetNext(first); err != nil {
		return err
	}
	return headNode.SetNext(ref.Addr())
}

// search is Figure 1's list_search.
func (l *list) search(key int32) (bool, error) {
	if err := l.c.RLock(l.h); err != nil {
		return false, err
	}
	defer func() { _ = l.c.RUnlock(l.h) }()
	node := NewNodeTView(l.head)
	for {
		next, err := node.NextDeref()
		if err != nil {
			return false, nil // nil next: not found
		}
		k, err := next.Key()
		if err != nil {
			return false, err
		}
		if k == key {
			return true, nil
		}
		node = next
	}
}

// print walks the list under a read lock.
func (l *list) print() error {
	if err := l.c.RLock(l.h); err != nil {
		return err
	}
	defer func() { _ = l.c.RUnlock(l.h) }()
	node := NewNodeTView(l.head)
	for {
		next, err := node.NextDeref()
		if err != nil {
			break
		}
		k, err := next.Key()
		if err != nil {
			return err
		}
		fmt.Printf("%d -> ", k)
		node = next
	}
	fmt.Println("nil")
	return nil
}
