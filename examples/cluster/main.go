// Command cluster runs a three-node InterWeave cluster inside one
// process and walks the full DESIGN.md §7 story end to end:
// consistent-hash placement, transparent redirect routing, replica
// diff streaming, primary failover in the middle of a write, and live
// segment migration. Each server sits behind a fault-injection proxy
// (internal/faultnet) whose address is the node's cluster identity,
// so "kill the primary" is one proxy.Close() — the machine vanishes
// mid-connection exactly as a crashed host would.
//
// Run it self-contained:
//
//	go run ./examples/cluster
//	make cluster-demo
//
// The same topology can be built out of real processes with iwserver's
// -cluster-self / -cluster-peers flags; this example keeps everything
// in one binary so the failure injection is deterministic.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"interweave"
	"interweave/internal/cluster"
	"interweave/internal/faultnet"
	"interweave/internal/mem"
	"interweave/internal/obs"
)

// node is one cluster member: a server listening on a private
// address, fronted by a faultnet proxy whose address is the identity
// peers and clients dial.
type node struct {
	srv   *interweave.Server
	ring  *cluster.Node
	proxy *faultnet.Proxy
	addr  string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nodes, err := startCluster(3, 1)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range nodes {
			n.ring.Close()
			_ = n.srv.Close()
			_ = n.proxy.Close()
		}
	}()
	for i, n := range nodes {
		fmt.Printf("node %d up on %s\n", i, n.addr)
	}

	// The writer names every segment after node 0 — the "home" server
	// embedded in a segment URL — but the consistent-hash ring spreads
	// ownership across all three members. The trace hook prints each
	// redirect and reroute as the client follows them.
	w, err := interweave.NewClient(interweave.Options{
		Name: "writer",
		// Retry fast enough to ride out the ~3 missed heartbeats the
		// survivors need before they declare the dead node dead.
		MaxRetries:      10,
		RetryBackoff:    5 * time.Millisecond,
		RetryMaxBackoff: 50 * time.Millisecond,
		Trace: func(e obs.Event) {
			if e.Name == "redirect" || e.Name == "reroute" {
				fmt.Printf("  client %s %s (%s)\n", e.Name, e.Seg, e.RPC)
			}
		},
	})
	if err != nil {
		return err
	}
	defer w.Close()
	// Seed the membership so the client can reroute even if the first
	// server it talks to is the one that dies.
	if err := w.RefreshRing(nodes[0].addr); err != nil {
		return err
	}

	fmt.Println("\n-- placement: four segments named after node 0, owned ring-wide --")
	segs := make([]string, 4)
	blocks := make([]mem.Addr, 4)
	for i := range segs {
		segs[i] = fmt.Sprintf("%s/demo%d", nodes[0].addr, i)
		h, err := w.Open(segs[i])
		if err != nil {
			return err
		}
		if err := w.WLock(h); err != nil {
			return err
		}
		blk, err := w.Alloc(h, interweave.Int32(), 1, "v")
		if err != nil {
			return err
		}
		blocks[i] = blk.Addr
		if err := w.Heap().WriteI32(blk.Addr, int32(100+i)); err != nil {
			return err
		}
		if err := w.WUnlock(h); err != nil {
			return err
		}
		fmt.Printf("  %s -> owner %s\n", segs[i], nodes[0].ring.Owner(segs[i]))
	}

	// Pick a victim segment whose owner is not node 0, so a survivor
	// is left holding the membership when the owner dies.
	victim := -1
	for i, s := range segs {
		if nodes[0].ring.Owner(s) != nodes[0].addr {
			victim = i
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("ring placed every segment on node 0 (expected a spread)")
	}
	seg := segs[victim]
	owner := nodeIndex(nodes, nodes[0].ring.Owner(seg))

	fmt.Printf("\n-- failover: kill node %d (owner of %s) mid-write --\n", owner, seg)
	h, err := w.Open(seg)
	if err != nil {
		return err
	}
	if err := w.WLock(h); err != nil {
		return err
	}
	if err := w.Heap().WriteI32(blocks[victim], 999); err != nil {
		return err
	}
	_ = nodes[owner].proxy.Close() // the machine is gone
	if err := w.WUnlock(h); err != nil {
		return err
	}
	// The victim's owner is never node 0 (we picked it that way), so
	// node 0 is always a survivor to observe the cluster through.
	survivor := nodes[0]
	newOwner := survivor.ring.Owner(seg)
	fmt.Printf("  release survived; segment now at version %d, owner %s (epoch %d)\n",
		h.Version(), newOwner, survivor.ring.Epoch())

	// Migrate another segment to a live node that does not own it, and
	// prove the data moved by reading through a fresh client that knows
	// nothing but the (stale) home address in the segment name.
	other := (victim + 1) % len(segs)
	var target *node
	for i, n := range nodes {
		if i != owner && n.addr != survivor.ring.Owner(segs[other]) {
			target = n
			break
		}
	}
	if target != nil {
		fmt.Printf("\n-- migrate %s to %s --\n", segs[other], target.addr)
		if err := w.Migrate(segs[other], target.addr); err != nil {
			return err
		}
		fmt.Printf("  owner now %s (epoch %d)\n", survivor.ring.Owner(segs[other]), survivor.ring.Epoch())
	}

	fmt.Println("\n-- fresh reader resolves every segment through redirects --")
	r, err := interweave.NewClient(interweave.Options{Name: "reader"})
	if err != nil {
		return err
	}
	defer r.Close()
	if err := r.RefreshRing(survivor.addr); err != nil {
		return err
	}
	for i, s := range segs {
		want := int32(100 + i)
		if i == victim {
			want = 999
		}
		rh, err := r.Open(s)
		if err != nil {
			return err
		}
		if err := r.RLock(rh); err != nil {
			return err
		}
		blk, ok := rh.Mem().BlockByName("v")
		if !ok {
			return fmt.Errorf("block %q missing from %s", "v", s)
		}
		got, err := r.Heap().ReadI32(blk.Addr)
		if err != nil {
			return err
		}
		if err := r.RUnlock(rh); err != nil {
			return err
		}
		status := "ok"
		if got != want {
			status = fmt.Sprintf("MISMATCH want %d", want)
		}
		fmt.Printf("  %s = %d (%s)\n", s, got, status)
	}
	fmt.Println("\ncluster demo done")
	return nil
}

// startCluster brings up n nodes with r replicas per segment, each a
// server behind a faultnet proxy, every member knowing the full peer
// set so the epoch-1 views agree.
func startCluster(n, r int) ([]*node, error) {
	nodes := make([]*node, n)
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		p, err := faultnet.NewProxy(ln.Addr().String(), faultnet.NewSchedule())
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		nodes[i] = &node{proxy: p, addr: p.Addr()}
		addrs[i] = p.Addr()
	}
	for i, nd := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nd.ring = cluster.NewNode(cluster.Options{
			Self:             nd.addr,
			Peers:            peers,
			Replicas:         r,
			Heartbeat:        10 * time.Millisecond,
			FailureThreshold: 3,
			DialTimeout:      time.Second,
		})
		srv, err := interweave.NewServer(interweave.ServerOptions{Cluster: nd.ring})
		if err != nil {
			return nil, err
		}
		nd.srv = srv
		go func(ln net.Listener) { _ = srv.Serve(ln) }(listeners[i])
		nd.ring.Start()
	}
	return nodes, nil
}

// nodeIndex maps a member address back to its index.
func nodeIndex(nodes []*node, addr string) int {
	for i, n := range nodes {
		if n.addr == addr {
			return i
		}
	}
	return -1
}
