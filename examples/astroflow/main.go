// Command astroflow reproduces the paper's Section 4.5: a
// simulation engine (standing in for the Fortran stellar-dynamics
// code) publishes its state into an InterWeave segment, and an
// on-line visualization client renders it, controlling its own update
// frequency simply by choosing a temporal coherence bound — the
// change that turned the original Astroflow from an off-line into an
// on-line tool.
//
//	go run ./examples/astroflow [-steps 40] [-every 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"interweave"
	"interweave/internal/astro"
)

func main() {
	steps := flag.Int("steps", 40, "simulation steps to run")
	every := flag.Int("every", 8, "render a frame every N steps")
	flag.Parse()
	if err := run(*steps, *every); err != nil {
		log.Fatal(err)
	}
}

func run(steps, every int) error {
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	segName := ln.Addr().String() + "/astroflow"

	// Simulation engine ("the cluster").
	simClient, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileAlpha(), Name: "simulator",
	})
	if err != nil {
		return err
	}
	defer simClient.Close()
	sim, err := astro.NewSim(64, 32, 2003)
	if err != nil {
		return err
	}
	pub, err := astro.NewPublisher(simClient, segName, sim)
	if err != nil {
		return err
	}

	// Visualization front end ("the Pentium desktop"), temporal
	// coherence: it never needs frames more often than it draws.
	vizClient, err := interweave.NewClient(interweave.Options{
		Profile: interweave.ProfileX86(), Name: "visualizer",
	})
	if err != nil {
		return err
	}
	defer vizClient.Close()
	viewer, err := astro.NewViewer(vizClient, segName, interweave.Full())
	if err != nil {
		return err
	}

	for s := 0; s <= steps; s++ {
		if s > 0 {
			sim.Step()
		}
		if err := pub.PublishFrame(); err != nil {
			return err
		}
		if s%every != 0 {
			continue
		}
		stats, grid, err := viewer.Frame()
		if err != nil {
			return err
		}
		fmt.Printf("step %3d  density [%.3f, %.3f] mean %.3f  center of mass (%.1f, %.1f)\n",
			stats.Step, stats.Min, stats.Max, stats.Mean, stats.Cx, stats.Cy)
		fmt.Print(astro.Render(sim.W, sim.H, grid, 64, 16))
		fmt.Println()
	}

	// Steering (Section 4.5): the front end controls its own update
	// frequency simply by specifying a temporal bound on relaxed
	// coherence — no change to the simulator.
	if err := vizClient.SetPolicy(viewer.Segment(), interweave.Temporal(time.Hour)); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		sim.Step()
		if err := pub.PublishFrame(); err != nil {
			return err
		}
	}
	stats, _, err := viewer.Frame()
	if err != nil {
		return err
	}
	fmt.Printf("steering: with a 1h temporal bound the viewer still shows step %d (simulator is at %d)\n",
		stats.Step, sim.StepCount())
	if err := vizClient.SetPolicy(viewer.Segment(), interweave.Full()); err != nil {
		return err
	}
	stats, _, err = viewer.Frame()
	if err != nil {
		return err
	}
	fmt.Printf("steering: tightened to full coherence, the viewer jumps to step %d\n", stats.Step)
	return nil
}
