package interweave_test

// Benchmarks regenerating the data behind every figure of the paper's
// evaluation (Section 4), plus ablations for the optimizations of
// Section 3.3. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/iwfigures prints the same measurements as formatted tables, and
// EXPERIMENTS.md records the measured shapes against the paper's.

import (
	"fmt"
	"strings"
	"testing"

	"interweave/internal/bench"
	"interweave/internal/seqmine"
)

// BenchmarkFig4 covers the 45 cells of Figure 4: nine 1 MB data mixes
// by five translation operations.
func BenchmarkFig4(b *testing.B) {
	for _, mix := range bench.Fig4MixNames() {
		for _, op := range bench.Fig4Ops {
			b.Run(mix+"/"+op, func(b *testing.B) {
				bench.BenchFig4(b, mix, op)
			})
		}
	}
}

// BenchmarkFig5 sweeps the modification ratio of Figure 5 for the
// client's diff collection (the full six-curve sweep is printed by
// `iwfigures fig5`).
func BenchmarkFig5(b *testing.B) {
	for _, ratio := range bench.Fig5Ratios() {
		b.Run(fmt.Sprintf("ratio%d", ratio), func(b *testing.B) {
			bench.BenchFig5(b, ratio)
		})
	}
}

// BenchmarkFig6 measures pointer swizzling against target segments of
// growing block counts.
func BenchmarkFig6(b *testing.B) {
	for _, n := range bench.Fig6CrossSizes() {
		b.Run(fmt.Sprintf("cross%d", n), func(b *testing.B) {
			bench.BenchFig6(b, n)
		})
	}
}

// BenchmarkFig7 runs the whole datamining bandwidth experiment once
// per iteration on a reduced database, reporting the bandwidth of
// each configuration as metrics.
func BenchmarkFig7(b *testing.B) {
	db := seqmine.SmallConfig()
	db.Customers = 4000
	cfg := bench.Fig7Config{DB: db, Updates: 8, MinSupport: 10}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				unit := strings.ReplaceAll(r.Config, " ", "-") + "-bytes"
				b.ReportMetric(float64(r.Bytes), unit)
			}
		}
	}
}

// BenchmarkMultiSegmentThroughput measures aggregate release
// throughput with one writer pipeline per segment against a live
// server. Per-segment locking (DESIGN.md §8) keeps the pipelines
// independent, so on a multicore machine the segs=8 ns/op should be
// a fraction of the segs=1 figure; a global server lock would pin
// every case to the segs=1 rate.
func BenchmarkMultiSegmentThroughput(b *testing.B) {
	for _, segs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segs%d", segs), func(b *testing.B) {
			bench.MultiSegmentThroughput(b, segs)
		})
	}
}

// Ablations: each optimization of Section 3.3 on and off.

func BenchmarkAblationSplicing(b *testing.B) {
	b.Run("on", func(b *testing.B) { bench.AblationSplicing(b, 0) })
	b.Run("off", func(b *testing.B) { bench.AblationSplicing(b, -1) })
}

func BenchmarkAblationLastBlockPrediction(b *testing.B) {
	b.Run("on", func(b *testing.B) { bench.AblationPrediction(b, false) })
	b.Run("off", func(b *testing.B) { bench.AblationPrediction(b, true) })
}

func BenchmarkAblationIsomorphicDescriptors(b *testing.B) {
	b.Run("on", func(b *testing.B) { bench.AblationIsomorphic(b, true) })
	b.Run("off", func(b *testing.B) { bench.AblationIsomorphic(b, false) })
}

func BenchmarkAblationDiffCache(b *testing.B) {
	b.Run("on", func(b *testing.B) { bench.AblationDiffCache(b, 8) })
	b.Run("off", func(b *testing.B) { bench.AblationDiffCache(b, 0) })
}

// BenchmarkAblationNoDiffMode is Figure 4's collect_block vs
// collect_diff comparison isolated on the int_array mix: the paper's
// justification for no-diff mode.
func BenchmarkAblationNoDiffMode(b *testing.B) {
	b.Run("nodiff", func(b *testing.B) { bench.BenchFig4(b, "int_array", "collect_block") })
	b.Run("diffing", func(b *testing.B) { bench.BenchFig4(b, "int_array", "collect_diff") })
}
