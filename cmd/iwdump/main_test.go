package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"interweave"
)

// makeCheckpoint produces a real checkpoint directory by running a
// client against a checkpointing server.
func makeCheckpoint(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	srv, err := interweave.NewServer(interweave.ServerOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	c, err := interweave.NewClient(interweave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Open(ln.Addr().String() + "/dumpme")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	st, err := interweave.StructOf("rec",
		interweave.Field{Name: "k", Type: interweave.Int32()},
		interweave.Field{Name: "v", Type: interweave.Float64()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(h, st, 5, "records"); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := srv.Close(); err != nil { // final checkpoint
		t.Fatal(err)
	}
	return dir
}

func TestDumpDirectory(t *testing.T) {
	dir := makeCheckpoint(t)
	outPath := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{dir}, f); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/dumpme", "records", "rec{k int32; v float64}", "version 1"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"/nonexistent"}, os.Stdout); err == nil {
		t.Error("missing path accepted")
	}
	empty := t.TempDir()
	if err := run([]string{empty}, os.Stdout); err == nil {
		t.Error("empty directory accepted")
	}
	bad := filepath.Join(empty, "bad.iwseg")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, os.Stdout); err == nil {
		t.Error("corrupt file accepted")
	}
}
