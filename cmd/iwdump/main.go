// Command iwdump inspects InterWeave server checkpoints off-line: it
// prints each checkpointed segment's version, blocks (with their
// types, sizes, and version history), and registered type
// descriptors.
//
// Usage:
//
//	iwdump /var/lib/interweave            # a checkpoint directory
//	iwdump -blocks=false dir              # segment summaries only
//	iwdump file.iwseg                     # a single checkpoint file
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"interweave/internal/server"
	"interweave/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iwdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("iwdump", flag.ContinueOnError)
	showBlocks := fs.Bool("blocks", true, "list every block")
	showDescs := fs.Bool("descs", true, "list registered type descriptors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: iwdump [-blocks] [-descs] <checkpoint dir or file>")
	}
	target := fs.Arg(0)
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	var files []string
	if info.IsDir() {
		entries, err := os.ReadDir(target)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), server.CheckpointFileSuffix) {
				files = append(files, filepath.Join(target, e.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return fmt.Errorf("no %s files in %s", server.CheckpointFileSuffix, target)
		}
	} else {
		files = []string{target}
	}
	for _, f := range files {
		if err := dumpFile(out, f, *showBlocks, *showDescs); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	return nil
}

func dumpFile(out *os.File, path string, showBlocks, showDescs bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	seg, err := server.DecodeCheckpoint(data)
	if err != nil {
		return err
	}
	// Sanity: the filename encodes the segment name.
	base := strings.TrimSuffix(filepath.Base(path), server.CheckpointFileSuffix)
	if decoded, err := hex.DecodeString(base); err == nil && string(decoded) != seg.Name {
		fmt.Fprintf(out, "warning: file name decodes to %q, segment says %q\n", decoded, seg.Name)
	}

	fmt.Fprintf(out, "segment %q\n", seg.Name)
	fmt.Fprintf(out, "  version %d, %d blocks, %d primitive units, %d bytes on disk\n",
		seg.Version, seg.NumBlocks(), seg.TotalUnits(), len(data))
	if showDescs {
		for _, serial := range seg.DescSerials() {
			b, _ := seg.DescBytes(serial)
			t, err := types.Unmarshal(b)
			if err != nil {
				fmt.Fprintf(out, "  desc %3d: <undecodable: %v>\n", serial, err)
				continue
			}
			fmt.Fprintf(out, "  desc %3d: %s (%d units/elem)\n", serial, describe(t), t.PrimCount())
		}
	}
	if showBlocks {
		fmt.Fprintf(out, "  %6s %-16s %6s %6s %8s %8s %8s\n",
			"serial", "name", "desc", "count", "units", "created", "modified")
		for _, b := range seg.Blocks() {
			name := b.Name
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(out, "  %6d %-16s %6d %6d %8d %8d %8d\n",
				b.Serial, name, b.DescSerial, b.Count, b.Units(), b.CreatedVersion(), b.Version())
		}
	}
	fmt.Fprintln(out)
	return nil
}

// describe renders a type with one level of struct detail.
func describe(t *types.Type) string {
	if t.Kind() != types.KindStruct {
		return t.String()
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("{")
	for i := 0; i < t.NumFields(); i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		f := t.Field(i)
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	b.WriteString("}")
	return b.String()
}
