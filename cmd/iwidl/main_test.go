package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

const sampleIDL = `
typedef double vec3[3];
struct probe {
    int32  id;
    string label<16>;
    vec3   pos;
    probe *next;
};
`

func TestRunGeneratesParsableGo(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "probe.idl")
	out := filepath.Join(dir, "probe_gen.go")
	if err := os.WriteFile(in, []byte(sampleIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pkg", "probes", "-o", out, in}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, out, src, 0)
	if err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
	if f.Name.Name != "probes" {
		t.Errorf("package = %s", f.Name.Name)
	}
}

func TestRunCheckMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "probe.idl")
	if err := os.WriteFile(in, []byte(sampleIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", in}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"/nonexistent/file.idl"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.idl")
	if err := os.WriteFile(bad, []byte("struct {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("malformed IDL accepted")
	}
}
