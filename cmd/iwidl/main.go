// Command iwidl compiles InterWeave IDL declarations into Go
// bindings: type descriptors plus typed accessor views (the Go
// analogue of the original compiler's generated C/C++/Java/Fortran
// declarations).
//
// Usage:
//
//	iwidl -pkg bindings -o bindings.go types.idl
//	iwidl -check types.idl        # syntax/semantics only
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"interweave/internal/idl"
	"interweave/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwidl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwidl", flag.ContinueOnError)
	pkgName := fs.String("pkg", "bindings", "Go package name for generated code")
	out := fs.String("o", "", "output file (default stdout)")
	check := fs.Bool("check", false, "only check the IDL; print a type summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: iwidl [-pkg name] [-o file] [-check] <file.idl>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	pkg, err := idl.Compile(string(src))
	if err != nil {
		return err
	}
	if *check {
		return summarize(pkg)
	}
	code, err := idl.GenerateGo(pkg, *pkgName)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	return os.WriteFile(*out, code, 0o644)
}

func summarize(pkg *idl.Package) error {
	for _, name := range pkg.StructOrder {
		t := pkg.Structs[name]
		fp, err := types.Fingerprint(t)
		if err != nil {
			return err
		}
		fmt.Printf("struct %-20s %2d fields %4d units fingerprint %016x\n",
			name, t.NumFields(), t.PrimCount(), fp)
	}
	var tds []string
	for name := range pkg.Typedefs {
		tds = append(tds, name)
	}
	sort.Strings(tds)
	for _, name := range tds {
		fmt.Printf("typedef %-19s = %s\n", name, pkg.Typedefs[name])
	}
	return nil
}
