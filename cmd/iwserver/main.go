// Command iwserver runs a standalone InterWeave server.
//
// Usage:
//
//	iwserver -addr :7777 -checkpoint /var/lib/interweave -every 30s
//
// The server maintains the master copy of every segment clients
// create under its address, arbitrates write locks, serves
// wire-format diffs under relaxed coherence, pushes invalidation
// notifications, and periodically checkpoints segments to the
// checkpoint directory (from which it also restores at startup).
//
// Log-structured persistence (DESIGN.md §9) replaces checkpointing
// with a per-segment append-only journal of committed diffs:
//
//	iwserver -addr :7777 -journal-dir /var/lib/interweave
//
// Every acknowledged release is on disk before the client sees the
// acknowledgement; restart recovery replays the journal tail on top
// of the last compacted base, and -journal-compact-bytes bounds each
// segment's log between compactions.
//
// Cold-segment eviction (DESIGN.md §12) lets a journal-mode server
// address more state than RAM:
//
//	iwserver -addr :7777 -journal-dir /var/lib/interweave \
//	  -max-resident-bytes 268435456 -evict-idle-age 10m
//
// A background sweep drops the in-memory image of idle segments —
// least-recently-touched first — whenever the estimated resident
// footprint exceeds -max-resident-bytes, and (independently) any
// segment untouched for -evict-idle-age; each eviction first forces a
// compaction so the journal base captures the state exactly. The next
// touch faults the segment back in transparently. Both flags require
// -journal-dir and are refused with -checkpoint.
//
// For resilience testing the listener can be wrapped in a seeded
// fault schedule (internal/faultnet):
//
//	iwserver -addr :7777 -chaos-seed 42 -chaos-resets 8 -chaos-max-delay 2ms
//
// injects the same connection resets and latency on every run with
// the same seed, so client retry behavior is reproducible end to end.
//
// Cluster mode (DESIGN.md §7) joins the server to a sharded,
// replicated cluster:
//
//	iwserver -addr :7777 -cluster-self host1:7777 \
//	  -cluster-peers host2:7777,host3:7777 -cluster-replicas 1
//
// -cluster-self is this node's address as peers and clients dial it;
// every node must be started with the same total member set (its own
// self plus its peers) so the epoch-1 views agree. Segments the
// consistent-hash ring places elsewhere are answered with redirects,
// committed writes stream to -cluster-replicas successors before the
// client sees the acknowledgement, and -cluster-heartbeat drives
// failure detection and replica promotion.
//
// Session scale (DESIGN.md §10, CAPACITY.md): clients may multiplex
// many logical sessions onto each connection, and four knobs bound
// the server's exposure to load and slow consumers:
//
//	iwserver -addr :7777 -max-sessions 120000 -group-commit
//
// -max-sessions refuses session creation over the cap
// (CodeOverloaded), -session-queue and -conn-queue bound the
// outbound queues whose overflow sheds (and evicts) slow
// subscribers, -write-timeout evicts connections that stop draining
// replies, and -group-commit (bounded by -group-commit-max)
// coalesces a hot segment's journal, replication, and notification
// work across batches of releases.
//
// Observability (see OBSERVABILITY.md) is opt-in:
//
//	iwserver -addr :7777 -metrics-addr :9090
//
// serves Prometheus text metrics on /metrics, the node health verdict
// on /healthz (503 when overloaded; -slo-short/-slo-long/-slo-sample
// tune its burn-rate windows), the full SLO report on /debug/slo, the
// flight-recorder event ring on /debug/flight (-flight-capacity sizes
// it; it is also dumped on panic), a per-segment JSON snapshot on
// /debug/segments, distributed traces on /debug/traces (JSON, ?id=
// detail, ?format=chrome Perfetto export), a runtime health snapshot
// on /debug/runtime, and the standard pprof profiles under
// /debug/pprof/. With -metrics-addr :0 the chosen port is logged at
// startup, and in cluster mode the bound address is advertised in
// membership gossip so fleet tools (tools/iwtop) can discover every
// node's scrape endpoint from one seed. Tracing rides the same flag;
// -trace=false turns it off, and -trace-capacity / -trace-sample /
// -trace-slowest tune the tail-sampled store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/faultnet"
	"interweave/internal/obs"
	"interweave/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7777", "listen address")
	ckptDir := fs.String("checkpoint", "", "checkpoint directory (restore at startup, save periodically)")
	every := fs.Duration("every", 30*time.Second, "checkpoint interval")
	journalDir := fs.String("journal-dir", "", "log-structured journal directory: releases append before ack, recovery is base+replay (mutually exclusive with -checkpoint)")
	journalCompact := fs.Int64("journal-compact-bytes", server.DefaultJournalCompactBytes, "per-segment log size that triggers compaction into a fresh base (negative = only periodic/Close compaction)")
	maxResident := fs.Int64("max-resident-bytes", 0, "in-memory budget across segments: idle journaled segments evict (LRU) to stay under it and fault back in on touch (0 = unlimited, requires -journal-dir)")
	evictIdleAge := fs.Duration("evict-idle-age", 0, "evict any journaled segment untouched this long, even under budget (0 = off, requires -journal-dir)")
	evictInterval := fs.Duration("evict-interval", 0, "eviction sweep cadence (0 = default, negative = off)")
	quiet := fs.Bool("quiet", false, "suppress diagnostics")
	maxSessions := fs.Int("max-sessions", 0, "cap on concurrent logical sessions, refusals answer CodeOverloaded (0 = unlimited)")
	sessionQueue := fs.Int("session-queue", 0, "outbound frames one session may queue before notifications shed it (0 = default)")
	connQueue := fs.Int("conn-queue", 0, "per-connection writer queue shared by its sessions (0 = default)")
	writeTimeout := fs.Duration("write-timeout", 0, "how long a reply may wait for queue space before the connection is evicted as stuck (0 = default)")
	groupCommit := fs.Bool("group-commit", false, "coalesce queued releases per hot segment into one journal append + replication + notification batch")
	groupCommitMax := fs.Int("group-commit-max", 0, "releases one group-commit flush may coalesce; excess releases wait (0 = default)")
	chaosSeed := fs.Int64("chaos-seed", 0, "inject seeded faults into the listener (0 = off)")
	chaosConns := fs.Int("chaos-conns", 16, "connections the chaos schedule spreads resets over")
	chaosResets := fs.Int("chaos-resets", 4, "connection resets in the chaos schedule")
	chaosMaxBytes := fs.Int64("chaos-max-bytes", 64<<10, "latest byte offset at which a chaos reset fires")
	chaosMaxDelay := fs.Duration("chaos-max-delay", 0, "upper bound for chaos per-chunk latency (0 = none)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and the /debug endpoints on this address (empty = off)")
	traceOn := fs.Bool("trace", true, "record distributed traces when -metrics-addr is set")
	traceCap := fs.Int("trace-capacity", 256, "finished traces kept in the tail-sampled store")
	traceSample := fs.Float64("trace-sample", 1, "probability of keeping an unremarkable trace (errored and slowest-N are always kept; negative = 0)")
	traceSlowest := fs.Int("trace-slowest", 16, "slowest-N traces always kept regardless of sampling")
	clusterSelf := fs.String("cluster-self", "", "this node's address as peers and clients dial it (enables cluster mode)")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated peer addresses")
	clusterReplicas := fs.Int("cluster-replicas", 1, "replicas each segment streams committed writes to")
	clusterVNodes := fs.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
	clusterHeartbeat := fs.Duration("cluster-heartbeat", 500*time.Millisecond, "peer probe interval for failure detection (0 = off)")
	flightCap := fs.Int("flight-capacity", obs.DefaultFlightCapacity, "events the always-on flight recorder retains for /debug/flight and panic post-mortems (0 = off)")
	sloShort := fs.Duration("slo-short", 0, "short SLO burn-rate window for /healthz and /debug/slo (0 = default)")
	sloLong := fs.Duration("slo-long", 0, "long SLO burn-rate window (0 = default)")
	sloSample := fs.Duration("slo-sample", 0, "SLO sampling cadence (0 = default, negative = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := server.Options{
		CheckpointDir:       *ckptDir,
		CheckpointEvery:     *every,
		JournalDir:          *journalDir,
		JournalCompactBytes: *journalCompact,
		MaxResidentBytes:    *maxResident,
		EvictIdleAge:        *evictIdleAge,
		EvictInterval:       *evictInterval,
		MaxSessions:         *maxSessions,
		SessionSendQueue:    *sessionQueue,
		ConnSendQueue:       *connQueue,
		WriteTimeout:        *writeTimeout,
		GroupCommit:         *groupCommit,
		GroupCommitMax:      *groupCommitMax,
		SLOShortWindow:      *sloShort,
		SLOLongWindow:       *sloLong,
		SLOSampleEvery:      *sloSample,
	}
	if *flightCap > 0 {
		opts.Flight = obs.NewFlightRecorder(*flightCap)
	}
	if !*quiet {
		logger := log.New(os.Stderr, "iwserver: ", log.LstdFlags)
		opts.Logf = logger.Printf
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		if *traceOn {
			tracer = obs.NewTracer(obs.TracerOptions{
				Capacity:   *traceCap,
				SampleRate: *traceSample,
				SlowestN:   *traceSlowest,
			})
			opts.Tracer = tracer
		}
	}
	// The metrics listener binds before the cluster node is built: its
	// bound address is advertised on this node's member entry, which is
	// how fleet tools (tools/iwtop) learn every node's scrape endpoint
	// from membership gossip alone.
	var mln net.Listener
	if reg != nil {
		var err error
		mln, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		defer mln.Close()
	}
	var node *cluster.Node
	if *clusterSelf != "" {
		var peers []string
		for _, p := range strings.Split(*clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) == 0 {
			return fmt.Errorf("cluster mode needs -cluster-peers alongside -cluster-self")
		}
		var advertise string
		if mln != nil {
			advertise = advertiseAddr(mln.Addr().String(), *clusterSelf)
		}
		node = cluster.NewNode(cluster.Options{
			Self:        *clusterSelf,
			Peers:       peers,
			Replicas:    *clusterReplicas,
			VNodes:      *clusterVNodes,
			Heartbeat:   *clusterHeartbeat,
			MetricsAddr: advertise,
			Metrics:     reg,
			Logf:        opts.Logf,
		})
		opts.Cluster = node
	}
	srv, err := server.New(opts)
	if err != nil {
		return err
	}
	if node != nil {
		node.Start()
		defer node.Close()
	}
	if mln != nil {
		go func() { _ = http.Serve(mln, metricsMux(reg, srv, tracer)) }()
		if !*quiet {
			log.Printf("iwserver: metrics on http://%s/metrics", mln.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *chaosSeed != 0 {
		rules := faultnet.ChaosRules(*chaosSeed, *chaosConns, *chaosResets, *chaosMaxBytes, *chaosMaxDelay)
		ln = faultnet.WrapListener(ln, faultnet.NewSchedule(rules...))
		if !*quiet {
			log.Printf("iwserver: chaos schedule active (seed %d, %d rules)", *chaosSeed, len(rules))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if !*quiet {
		log.Printf("iwserver: listening on %s", ln.Addr())
	}
	select {
	case s := <-sig:
		if !*quiet {
			log.Printf("iwserver: %v, shutting down", s)
		}
		return srv.Close()
	case err := <-errc:
		return err
	}
}

// advertiseAddr turns the metrics listener's bound address into the
// address peers should be told to scrape: a bind to an unspecified
// host (":9090", "0.0.0.0:9090") advertises the cluster-self host with
// the bound port, since peers cannot dial the wildcard.
func advertiseAddr(bound, self string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host != "" && (ip == nil || !ip.IsUnspecified()) {
		return bound
	}
	if sh, _, err := net.SplitHostPort(self); err == nil && sh != "" {
		return net.JoinHostPort(sh, port)
	}
	return net.JoinHostPort("127.0.0.1", port)
}

// metricsMux builds the observability surface: Prometheus text on
// /metrics, per-segment JSON on /debug/segments, traces on
// /debug/traces (when tracing is on), runtime health on
// /debug/runtime, and pprof under /debug/pprof/.
func metricsMux(reg *obs.Registry, srv *server.Server, tracer *obs.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/healthz", srv.HealthzHandler())
	mux.Handle("/debug/slo", srv.SLOHandler())
	if f := srv.Flight(); f != nil {
		mux.Handle("/debug/flight", obs.FlightHandler(f))
	}
	mux.HandleFunc("/debug/segments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.DebugSegments())
	})
	if tracer != nil {
		mux.Handle("/debug/traces", obs.TraceHandler(tracer))
	}
	mux.Handle("/debug/runtime", obs.RuntimeHandler())
	// pprof registers itself on http.DefaultServeMux; mount its
	// handlers explicitly since this mux is private.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
