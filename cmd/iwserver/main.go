// Command iwserver runs a standalone InterWeave server.
//
// Usage:
//
//	iwserver -addr :7777 -checkpoint /var/lib/interweave -every 30s
//
// The server maintains the master copy of every segment clients
// create under its address, arbitrates write locks, serves
// wire-format diffs under relaxed coherence, pushes invalidation
// notifications, and periodically checkpoints segments to the
// checkpoint directory (from which it also restores at startup).
//
// For resilience testing the listener can be wrapped in a seeded
// fault schedule (internal/faultnet):
//
//	iwserver -addr :7777 -chaos-seed 42 -chaos-resets 8 -chaos-max-delay 2ms
//
// injects the same connection resets and latency on every run with
// the same seed, so client retry behavior is reproducible end to end.
//
// Observability (see OBSERVABILITY.md) is opt-in:
//
//	iwserver -addr :7777 -metrics-addr :9090
//
// serves Prometheus text metrics on /metrics and a per-segment JSON
// snapshot on /debug/segments. With -metrics-addr :0 the chosen port
// is logged at startup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"interweave/internal/faultnet"
	"interweave/internal/obs"
	"interweave/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7777", "listen address")
	ckptDir := fs.String("checkpoint", "", "checkpoint directory (restore at startup, save periodically)")
	every := fs.Duration("every", 30*time.Second, "checkpoint interval")
	quiet := fs.Bool("quiet", false, "suppress diagnostics")
	chaosSeed := fs.Int64("chaos-seed", 0, "inject seeded faults into the listener (0 = off)")
	chaosConns := fs.Int("chaos-conns", 16, "connections the chaos schedule spreads resets over")
	chaosResets := fs.Int("chaos-resets", 4, "connection resets in the chaos schedule")
	chaosMaxBytes := fs.Int64("chaos-max-bytes", 64<<10, "latest byte offset at which a chaos reset fires")
	chaosMaxDelay := fs.Duration("chaos-max-delay", 0, "upper bound for chaos per-chunk latency (0 = none)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/segments on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := server.Options{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *every,
	}
	if !*quiet {
		logger := log.New(os.Stderr, "iwserver: ", log.LstdFlags)
		opts.Logf = logger.Printf
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}
	srv, err := server.New(opts)
	if err != nil {
		return err
	}
	if reg != nil {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		defer mln.Close()
		go func() { _ = http.Serve(mln, metricsMux(reg, srv)) }()
		if !*quiet {
			log.Printf("iwserver: metrics on http://%s/metrics", mln.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *chaosSeed != 0 {
		rules := faultnet.ChaosRules(*chaosSeed, *chaosConns, *chaosResets, *chaosMaxBytes, *chaosMaxDelay)
		ln = faultnet.WrapListener(ln, faultnet.NewSchedule(rules...))
		if !*quiet {
			log.Printf("iwserver: chaos schedule active (seed %d, %d rules)", *chaosSeed, len(rules))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if !*quiet {
		log.Printf("iwserver: listening on %s", ln.Addr())
	}
	select {
	case s := <-sig:
		if !*quiet {
			log.Printf("iwserver: %v, shutting down", s)
		}
		return srv.Close()
	case err := <-errc:
		return err
	}
}

// metricsMux builds the observability surface: Prometheus text on
// /metrics, per-segment JSON on /debug/segments.
func metricsMux(reg *obs.Registry, srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.HandleFunc("/debug/segments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.DebugSegments())
	})
	return mux
}
