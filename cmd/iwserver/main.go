// Command iwserver runs a standalone InterWeave server.
//
// Usage:
//
//	iwserver -addr :7777 -checkpoint /var/lib/interweave -every 30s
//
// The server maintains the master copy of every segment clients
// create under its address, arbitrates write locks, serves
// wire-format diffs under relaxed coherence, pushes invalidation
// notifications, and periodically checkpoints segments to the
// checkpoint directory (from which it also restores at startup).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"interweave/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7777", "listen address")
	ckptDir := fs.String("checkpoint", "", "checkpoint directory (restore at startup, save periodically)")
	every := fs.Duration("every", 30*time.Second, "checkpoint interval")
	quiet := fs.Bool("quiet", false, "suppress diagnostics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := server.Options{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *every,
	}
	if !*quiet {
		logger := log.New(os.Stderr, "iwserver: ", log.LstdFlags)
		opts.Logf = logger.Printf
	}
	srv, err := server.New(opts)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	if !*quiet {
		log.Printf("iwserver: listening on %s", *addr)
	}
	select {
	case s := <-sig:
		if !*quiet {
			log.Printf("iwserver: %v, shutting down", s)
		}
		return srv.Close()
	case err := <-errc:
		return err
	}
}
