// Command iwproxy runs a read fan-out proxy (DESIGN.md §11).
//
// Usage:
//
//	iwproxy -addr :7788 -upstream origin:7777
//
// The proxy subscribes to each segment once upstream and serves
// ReadLock/Subscribe/Notify to any number of downstream clients from
// a local mirror; WriteLock/WriteUnlock/TxCommit/Resume are forwarded
// upstream untouched. Downstream clients speak the ordinary protocol
// — pointing an existing client (or tools/loadgen) at a proxy is an
// address change, nothing more. Proxies chain: -upstream may name
// another proxy, forming a distribution tree.
//
// Staleness is bounded with -max-lag (versions) and -max-age: a read
// that finds the mirror beyond either bound blocks on a synchronous
// pull first. When the upstream is unreachable the proxy serves
// degraded stale reads (counted in iw_proxy_reads_degraded_total) and
// reroutes via the cluster ring when the upstream was clustered.
//
// Observability mirrors iwserver: -metrics-addr serves Prometheus
// text on /metrics and the health verdict on /healthz. The metrics
// address is advertised through the upstream cluster's gossip, so
// tools/iwtop discovers proxies exactly like servers.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"interweave/internal/obs"
	"interweave/internal/proxy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwproxy", flag.ContinueOnError)
	addr := fs.String("addr", ":7788", "downstream listen address")
	upstream := fs.String("upstream", "", "upstream server or proxy address (required)")
	advertise := fs.String("advertise", "", "address downstream clients reach this proxy at (default: the bound listen address)")
	maxLag := fs.Uint("max-lag", 0, "staleness bound in versions: reads finding the mirror further behind block on a sync pull (0 = unbounded)")
	maxAge := fs.Duration("max-age", 0, "staleness bound in time since the last confirmed upstream sync (0 = unbounded)")
	syncEvery := fs.Duration("sync-every", proxy.DefaultSyncEvery, "maintenance cadence: upstream re-subscribe + catch-up probe per mirror")
	rpcTimeout := fs.Duration("rpc-timeout", 0, "upstream RPC timeout (0 = none)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = off)")
	quiet := fs.Bool("quiet", false, "suppress diagnostics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	opts := proxy.Options{
		Upstream:      *upstream,
		Advertise:     *advertise,
		MaxVersionLag: uint32(*maxLag),
		MaxAge:        *maxAge,
		SyncEvery:     *syncEvery,
		RPCTimeout:    *rpcTimeout,
	}
	if !*quiet {
		logger := log.New(os.Stderr, "iwproxy: ", log.LstdFlags)
		opts.Logf = logger.Printf
	}
	var reg *obs.Registry
	var mln net.Listener
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		var err error
		mln, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		defer mln.Close()
		opts.MetricsAddr = advertiseAddr(mln.Addr().String(), firstNonEmpty(*advertise, *addr))
	}
	p, err := proxy.New(opts)
	if err != nil {
		return err
	}
	if mln != nil {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		mux.Handle("/healthz", p.HealthzHandler())
		go func() { _ = http.Serve(mln, mux) }()
		if !*quiet {
			log.Printf("iwproxy: metrics on http://%s/metrics", mln.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- p.Serve(ln) }()
	if !*quiet {
		log.Printf("iwproxy: listening on %s, upstream %s", ln.Addr(), *upstream)
	}
	select {
	case s := <-sig:
		if !*quiet {
			log.Printf("iwproxy: %v, shutting down", s)
		}
		// Give in-flight forwards a moment to settle before teardown.
		time.Sleep(10 * time.Millisecond)
		return p.Close()
	case err := <-errc:
		return err
	}
}

// advertiseAddr turns the metrics listener's bound address into a
// dialable one: a wildcard-host bind advertises the proxy's own host
// with the bound port (same logic as iwserver).
func advertiseAddr(bound, self string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host != "" && (ip == nil || !ip.IsUnspecified()) {
		return bound
	}
	if sh, _, err := net.SplitHostPort(self); err == nil && sh != "" {
		return net.JoinHostPort(sh, port)
	}
	return net.JoinHostPort("127.0.0.1", port)
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
