// Command iwfigures regenerates the paper's evaluation figures
// (Section 4) on the simulated substrate:
//
//	iwfigures fig4            # translation cost vs RPC/XDR, 9 mixes
//	iwfigures fig5            # diff cost vs modification granularity
//	iwfigures fig6            # pointer swizzling cost
//	iwfigures fig7            # datamining bandwidth
//	iwfigures all             # everything
//
// Absolute times differ from the paper's 500 MHz Pentium III; the
// figures' content is the relative shape, which EXPERIMENTS.md
// records against the paper's claims.
package main

import (
	"flag"
	"fmt"
	"os"

	"interweave/internal/bench"
	"interweave/internal/seqmine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iwfigures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iwfigures", flag.ContinueOnError)
	iters := fs.Int("iters", 3, "timing iterations per measurement")
	swizzles := fs.Int("swizzles", 200000, "pointer operations per fig6 case")
	updates := fs.Int("updates", 20, "incremental updates in fig7")
	paperScale := fs.Bool("paper-scale", false, "use the paper's full 100k-customer database in fig7")
	if err := fs.Parse(args); err != nil {
		return err
	}
	which := fs.Args()
	if len(which) == 0 {
		return fmt.Errorf("usage: iwfigures [flags] fig4|fig5|fig6|fig7|trserver|hetero|all")
	}
	for _, w := range which {
		switch w {
		case "fig4":
			if err := runFig4(*iters); err != nil {
				return err
			}
		case "fig5":
			if err := runFig5(*iters); err != nil {
				return err
			}
		case "fig6":
			if err := runFig6(*swizzles); err != nil {
				return err
			}
		case "fig7":
			if err := runFig7(*updates, *paperScale); err != nil {
				return err
			}
		case "trserver":
			if err := runTRServer(*iters); err != nil {
				return err
			}
		case "hetero":
			if err := runHetero(*iters); err != nil {
				return err
			}
		case "all":
			if err := run([]string{"fig4", "fig5", "fig6", "fig7", "trserver", "hetero"}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown figure %q", w)
		}
	}
	return nil
}

func runFig4(iters int) error {
	fmt.Println("Figure 4: client cost to translate 1MB of data (fully modified)")
	fmt.Printf("%-14s %12s %14s %13s %12s %11s %10s\n",
		"mix", "RPC XDR", "collect block", "collect diff", "apply block", "apply diff", "wire KB")
	rows, err := bench.Fig4(iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-14s %12v %14v %13v %12v %11v %10d\n",
			r.Name, r.RPCXDR, r.CollectBlock, r.CollectDiff, r.ApplyBlock, r.ApplyDiff, r.WireBytes/1024)
	}
	fmt.Println()
	return nil
}

func runFig5(iters int) error {
	fmt.Println("Figure 5: diff management cost vs modification granularity (1MB int array)")
	fmt.Printf("%6s %14s %13s %12s %12s %13s %13s %9s\n",
		"ratio", "cl collect", "cl apply", "cl wordiff", "cl xlate", "sv collect", "sv apply", "wire KB")
	rows, err := bench.Fig5(iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%6d %14v %13v %12v %12v %13v %13v %9d\n",
			r.Ratio, r.ClientCollectDiff, r.ClientApplyDiff, r.ClientWordDiff,
			r.ClientTranslate, r.ServerCollectDiff, r.ServerApplyDiff, r.WireBytes/1024)
	}
	fmt.Println()
	return nil
}

func runFig6(ops int) error {
	fmt.Println("Figure 6: pointer swizzling cost per pointer")
	fmt.Printf("%-12s %14s %14s\n", "case", "collect (swz)", "apply (unswz)")
	rows, err := bench.Fig6(ops)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-12s %14v %14v\n", r.Case, r.Collect, r.Apply)
	}
	fmt.Println()
	return nil
}

func runTRServer(iters int) error {
	fmt.Println("TR experiment: server-side data management cost for 1MB")
	fmt.Printf("%-14s %14s %14s %14s\n", "mix", "server apply", "server collect", "client collect")
	rows, err := bench.TRServer(iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-14s %14v %14v %14v\n", r.Name, r.ServerApply, r.ServerCollect, r.ClientCollect)
	}
	fmt.Println()
	return nil
}

func runHetero(iters int) error {
	fmt.Println("Heterogeneity matrix: 1MB int_double, collect on src / apply on dst")
	fmt.Printf("%-12s %-12s %12s %12s\n", "src", "dst", "collect", "apply")
	rows, err := bench.Hetero(iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-12s %-12s %12v %12v\n", r.Src, r.Dst, r.Collect, r.Apply)
	}
	fmt.Println()
	return nil
}

func runFig7(updates int, paperScale bool) error {
	cfg := bench.DefaultFig7Config()
	cfg.Updates = updates
	if paperScale {
		cfg.DB = seqmine.DefaultConfig()
		cfg.MinSupport = 200
	}
	fmt.Printf("Figure 7: datamining bandwidth (%d customers, %d updates of 1%%)\n",
		cfg.DB.Customers, cfg.Updates)
	fmt.Printf("%-15s %12s %8s\n", "configuration", "total MB", "syncs")
	rows, err := bench.Fig7(cfg)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-15s %12.2f %8d\n", r.Config, float64(r.Bytes)/(1<<20), r.Syncs)
	}
	fmt.Println()
	return nil
}
