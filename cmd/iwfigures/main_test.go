package main

import "testing"

func TestRunArgErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no figure arguments accepted")
	}
	if err := run([]string{"fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-iters", "x", "fig4"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunFig6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	if err := run([]string{"-swizzles", "500", "fig6"}); err != nil {
		t.Fatal(err)
	}
}
