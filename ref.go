package interweave

import (
	"errors"
	"fmt"

	"interweave/internal/types"
)

// Ref is a typed reference into shared memory: an address paired with
// the type of the datum it points at. Refs make example code read
// like the paper's C — node.Field("next").SetPtr(p) — while every
// store still flows through the modification-tracking accessors.
//
// Refs must only be dereferenced under the protection of the
// segment's reader-writer locks, exactly like raw pointers in the
// paper's API.
type Ref struct {
	c    *Client
	t    *types.Type
	l    *types.Layout
	addr Addr
}

// ErrNilRef reports use of the zero Ref.
var ErrNilRef = errors.New("interweave: nil ref")

// NewRef returns a typed reference to addr.
func (rf Ref) valid() error {
	if rf.c == nil || rf.l == nil {
		return ErrNilRef
	}
	return nil
}

// RefTo returns a typed reference to the first element of block b.
func RefTo(c *Client, b *Block) (Ref, error) {
	if c == nil || b == nil {
		return Ref{}, ErrNilRef
	}
	return Ref{c: c, t: b.Layout.Type, l: b.Layout, addr: b.Addr}, nil
}

// RefAt returns a typed reference to an arbitrary address, viewed as
// type t. Use this to follow pointers: ptr, _ := r.Ptr();
// n, _ := RefAt(c, ptr, nodeType).
func RefAt(c *Client, addr Addr, t *Type) (Ref, error) {
	if c == nil || t == nil {
		return Ref{}, ErrNilRef
	}
	l, err := types.Of(t, c.Profile())
	if err != nil {
		return Ref{}, err
	}
	return Ref{c: c, t: t, l: l, addr: addr}, nil
}

// Addr returns the referenced address.
func (rf Ref) Addr() Addr { return rf.addr }

// Type returns the referenced type.
func (rf Ref) Type() *Type { return rf.t }

// IsNil reports whether the reference is unusable or targets address
// zero.
func (rf Ref) IsNil() bool { return rf.valid() != nil || rf.addr == 0 }

// Field narrows a struct reference to one of its fields.
func (rf Ref) Field(name string) (Ref, error) {
	if err := rf.valid(); err != nil {
		return Ref{}, err
	}
	f, ok := rf.l.Field(name)
	if !ok {
		return Ref{}, fmt.Errorf("interweave: type %v has no field %q", rf.t, name)
	}
	return RefAt(rf.c, rf.addr+Addr(f.ByteOff), f.Type)
}

// Elem moves the reference i elements forward (for blocks holding
// arrays of the type, or array types).
func (rf Ref) Elem(i int) (Ref, error) {
	if err := rf.valid(); err != nil {
		return Ref{}, err
	}
	if rf.t.Kind() == types.KindArray {
		el, err := types.Of(rf.t.Elem(), rf.c.Profile())
		if err != nil {
			return Ref{}, err
		}
		if i < 0 || i >= rf.t.Len() {
			return Ref{}, fmt.Errorf("interweave: index %d out of [0,%d)", i, rf.t.Len())
		}
		return Ref{c: rf.c, t: rf.t.Elem(), l: el, addr: rf.addr + Addr(i*el.Size)}, nil
	}
	return Ref{c: rf.c, t: rf.t, l: rf.l, addr: rf.addr + Addr(i*rf.l.Size)}, nil
}

func (rf Ref) wantKind(k types.Kind) error {
	if err := rf.valid(); err != nil {
		return err
	}
	if rf.t.Kind() != k {
		return fmt.Errorf("interweave: %v is not %v", rf.t, k)
	}
	return nil
}

// I32 loads an int32.
func (rf Ref) I32() (int32, error) {
	if err := rf.wantKind(types.KindInt32); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadI32(rf.addr)
}

// SetI32 stores an int32.
func (rf Ref) SetI32(v int32) error {
	if err := rf.wantKind(types.KindInt32); err != nil {
		return err
	}
	return rf.c.Heap().WriteI32(rf.addr, v)
}

// I64 loads an int64.
func (rf Ref) I64() (int64, error) {
	if err := rf.wantKind(types.KindInt64); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadI64(rf.addr)
}

// SetI64 stores an int64.
func (rf Ref) SetI64(v int64) error {
	if err := rf.wantKind(types.KindInt64); err != nil {
		return err
	}
	return rf.c.Heap().WriteI64(rf.addr, v)
}

// I16 loads an int16.
func (rf Ref) I16() (int16, error) {
	if err := rf.wantKind(types.KindInt16); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadI16(rf.addr)
}

// SetI16 stores an int16.
func (rf Ref) SetI16(v int16) error {
	if err := rf.wantKind(types.KindInt16); err != nil {
		return err
	}
	return rf.c.Heap().WriteI16(rf.addr, v)
}

// Byte loads a char.
func (rf Ref) Byte() (byte, error) {
	if err := rf.wantKind(types.KindChar); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadU8(rf.addr)
}

// SetByte stores a char.
func (rf Ref) SetByte(v byte) error {
	if err := rf.wantKind(types.KindChar); err != nil {
		return err
	}
	return rf.c.Heap().WriteU8(rf.addr, v)
}

// F32 loads a float32.
func (rf Ref) F32() (float32, error) {
	if err := rf.wantKind(types.KindFloat32); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadF32(rf.addr)
}

// SetF32 stores a float32.
func (rf Ref) SetF32(v float32) error {
	if err := rf.wantKind(types.KindFloat32); err != nil {
		return err
	}
	return rf.c.Heap().WriteF32(rf.addr, v)
}

// F64 loads a float64.
func (rf Ref) F64() (float64, error) {
	if err := rf.wantKind(types.KindFloat64); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadF64(rf.addr)
}

// SetF64 stores a float64.
func (rf Ref) SetF64(v float64) error {
	if err := rf.wantKind(types.KindFloat64); err != nil {
		return err
	}
	return rf.c.Heap().WriteF64(rf.addr, v)
}

// Str loads a string.
func (rf Ref) Str() (string, error) {
	if err := rf.wantKind(types.KindString); err != nil {
		return "", err
	}
	return rf.c.Heap().ReadCString(rf.addr, rf.t.Cap())
}

// SetStr stores a string; it must fit the declared capacity with its
// terminator.
func (rf Ref) SetStr(v string) error {
	if err := rf.wantKind(types.KindString); err != nil {
		return err
	}
	return rf.c.Heap().WriteCString(rf.addr, rf.t.Cap(), v)
}

// Ptr loads a pointer cell.
func (rf Ref) Ptr() (Addr, error) {
	if err := rf.wantKind(types.KindPointer); err != nil {
		return 0, err
	}
	return rf.c.Heap().ReadPtr(rf.addr)
}

// SetPtr stores a pointer cell.
func (rf Ref) SetPtr(v Addr) error {
	if err := rf.wantKind(types.KindPointer); err != nil {
		return err
	}
	return rf.c.Heap().WritePtr(rf.addr, v)
}

// Deref follows a pointer reference, yielding a reference to the
// pointed-at value (of the pointer's declared target type).
func (rf Ref) Deref() (Ref, error) {
	p, err := rf.Ptr()
	if err != nil {
		return Ref{}, err
	}
	if p == 0 {
		return Ref{}, nil
	}
	return RefAt(rf.c, p, rf.t.Elem())
}
