# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race race-short bench bench-json bench-regress loadgen-slo loadgen-smoke iwtop-smoke proxy-smoke evict-smoke figures fig4 fig5 fig6 fig7 examples cluster-demo cover doccheck linkcheck clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# CI variant: skips the soak/chaos long-variants (testing.Short()).
race-short:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: writes BENCH_<UTC-date>.json at
# the repo root (schema interweave-bench/1). Pass flags through
# BENCHJSON_FLAGS, e.g. `make bench-json BENCHJSON_FLAGS=-smoke` for
# the fast CI schema check.
bench-json:
	$(GO) run ./tools/benchjson $(BENCHJSON_FLAGS)

# Benchmark-regression smoke (also run in CI): re-measures the
# multi-segment server throughput benchmark at full benchtime and
# fails if any case slowed down more than 20% against the newest
# committed BENCH_*.json snapshot. New/renamed benchmarks only warn.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-regress:
	$(GO) run ./tools/benchjson -pattern MultiSegmentThroughput \
		-compare $(BENCH_BASELINE) -compare-pattern MultiSegmentThroughput \
		-out bench-regress.json

# Session-scale SLO runs (CAPACITY.md, EXPERIMENTS.md "Loadgen"):
# the headline 100k-session measurement, and the CI-sized smoke.
# Both exit non-zero when the session count was not held.
loadgen-slo:
	$(GO) run ./tools/loadgen -sessions 100000 -conns 64 -rate 5000 \
		-duration 15s -writers 4 -segments 32 -group-commit \
		-json loadgen-slo.json

loadgen-smoke:
	$(GO) run ./tools/loadgen -sessions 1000 -conns 8 -rate 500 \
		-duration 5s -subscribe 0.2 -group-commit -slo-gate -json loadgen-smoke.json

# Fleet observability smoke (also run in CI): boots a real three-node
# iwserver topology with gossip-advertised metrics listeners, then
# aggregates it with `iwtop -json -once -expect 3` — one seed address
# must discover all three nodes, scrape them, and find them healthy.
# Retries while the fleet's membership gossip converges. Writes the
# snapshot to iwtop-smoke.json.
iwtop-smoke:
	@set -e; \
	$(GO) build -o iwserver-smoke ./cmd/iwserver; \
	trap 'kill $$S1 $$S2 $$S3 2>/dev/null; rm -f iwserver-smoke' EXIT; \
	./iwserver-smoke -quiet -addr 127.0.0.1:7781 -cluster-self 127.0.0.1:7781 \
		-cluster-peers 127.0.0.1:7782,127.0.0.1:7783 -metrics-addr 127.0.0.1:9981 & S1=$$!; \
	./iwserver-smoke -quiet -addr 127.0.0.1:7782 -cluster-self 127.0.0.1:7782 \
		-cluster-peers 127.0.0.1:7781,127.0.0.1:7783 -metrics-addr 127.0.0.1:9982 & S2=$$!; \
	./iwserver-smoke -quiet -addr 127.0.0.1:7783 -cluster-self 127.0.0.1:7783 \
		-cluster-peers 127.0.0.1:7781,127.0.0.1:7782 -metrics-addr 127.0.0.1:9983 & S3=$$!; \
	ok=; for i in $$(seq 1 40); do \
		if $(GO) run ./tools/iwtop -seed 127.0.0.1:7781 -json -once -expect 3 \
			> iwtop-smoke.json 2> iwtop-smoke.err; then ok=1; break; fi; \
		sleep 0.5; \
	done; \
	if [ -z "$$ok" ]; then echo "iwtop-smoke: fleet never became healthy" >&2; \
		cat iwtop-smoke.err >&2; cat iwtop-smoke.json >&2; exit 1; fi; \
	rm -f iwtop-smoke.err; echo "iwtop-smoke: 3 nodes discovered and healthy (iwtop-smoke.json)"

# Proxy-tier smoke (also run in CI; DESIGN.md §11, CAPACITY.md):
# boots an origin plus a two-level proxy tree (p1 -> origin,
# p2 -> p1), drives 1000 reader sessions through the leaf with
# tools/loadgen (95% reads, 20% subscribers, background writers on
# the origin), and asserts via tools/proxysmoke that the run was
# error-free with bounded observed staleness and that notify fan-out
# happened at the edge: the origin's session and notification counts
# track its proxy subscriptions, not the 1000 readers. Then the chaos
# leg: kill the leaf's upstream (p1) and require the leaf's health
# verdict to degrade while it keeps serving stale, restart p1 and
# require recovery back to ok.
proxy-smoke:
	@set -e; \
	$(GO) build -o iwserver-smoke ./cmd/iwserver; \
	$(GO) build -o iwproxy-smoke ./cmd/iwproxy; \
	$(GO) build -o proxysmoke-check ./tools/proxysmoke; \
	trap 'kill $$S0 $$P1 $$P2 2>/dev/null; rm -f iwserver-smoke iwproxy-smoke proxysmoke-check' EXIT; \
	./iwserver-smoke -quiet -addr 127.0.0.1:7791 -metrics-addr 127.0.0.1:9991 & S0=$$!; \
	./iwproxy-smoke -quiet -addr 127.0.0.1:7792 -upstream 127.0.0.1:7791 \
		-max-lag 8 -sync-every 250ms -metrics-addr 127.0.0.1:9992 & P1=$$!; \
	./iwproxy-smoke -quiet -addr 127.0.0.1:7793 -upstream 127.0.0.1:7792 \
		-max-lag 8 -sync-every 250ms -metrics-addr 127.0.0.1:9993 & P2=$$!; \
	sleep 1; \
	$(GO) run ./tools/loadgen -addr 127.0.0.1:7791 -via-proxy 127.0.0.1:7793 \
		-sessions 1000 -conns 8 -rate 500 -duration 5s \
		-read-ratio 0.95 -subscribe 0.2 -segments 4 -writers 2 \
		-json proxy-smoke.json; \
	./proxysmoke-check -report proxy-smoke.json -origin 127.0.0.1:9991 -leaf 127.0.0.1:9993; \
	echo "proxy-smoke: killing mid-tier proxy (leaf upstream)"; \
	kill $$P1; \
	./proxysmoke-check -wait-status degraded -leaf 127.0.0.1:9993 -timeout 15s; \
	echo "proxy-smoke: restarting mid-tier proxy"; \
	./iwproxy-smoke -quiet -addr 127.0.0.1:7792 -upstream 127.0.0.1:7791 \
		-max-lag 8 -sync-every 250ms -metrics-addr 127.0.0.1:9992 & P1=$$!; \
	./proxysmoke-check -wait-status ok -leaf 127.0.0.1:9993 -timeout 15s; \
	echo "proxy-smoke: fan-out independent of reader count; degraded/recovered cleanly (proxy-smoke.json)"

# Cold-segment eviction smoke (also run in CI, DESIGN.md §12): a
# journal-mode server with a resident budget ~4x smaller than the
# loadgen working set (32 hot segments) serves reads + writes + via-
# proxy reads with zero client-visible errors while the evictor drops
# and reloads segments; evictsmoke gates on a clean report, positive
# eviction/fault counters, and resident bytes <= budget + one segment.
evict-smoke:
	@set -e; \
	$(GO) build -o iwserver-smoke ./cmd/iwserver; \
	$(GO) build -o iwproxy-smoke ./cmd/iwproxy; \
	$(GO) build -o evictsmoke-check ./tools/evictsmoke; \
	rm -rf evict-smoke-journal; \
	trap 'kill $$S0 $$P1 2>/dev/null; wait $$S0 $$P1 2>/dev/null; rm -rf iwserver-smoke iwproxy-smoke evictsmoke-check evict-smoke-journal' EXIT; \
	./iwserver-smoke -quiet -addr 127.0.0.1:7795 -metrics-addr 127.0.0.1:9995 \
		-journal-dir evict-smoke-journal \
		-max-resident-bytes 16384 -evict-interval 100ms & S0=$$!; \
	./iwproxy-smoke -quiet -addr 127.0.0.1:7796 -upstream 127.0.0.1:7795 \
		-max-lag 8 -sync-every 250ms & P1=$$!; \
	sleep 1; \
	$(GO) run ./tools/loadgen -addr 127.0.0.1:7795 -via-proxy 127.0.0.1:7796 \
		-sessions 200 -conns 8 -rate 400 -duration 5s \
		-read-ratio 0.7 -subscribe 0.2 -segments 32 -writers 8 \
		-json evict-smoke.json; \
	./evictsmoke-check -report evict-smoke.json -metrics 127.0.0.1:9995 -budget 16384; \
	echo "evict-smoke: working set outgrew the 16KB budget with zero client-visible errors (evict-smoke.json)"

# Figure regeneration (EXPERIMENTS.md): -iters 3 matches the
# recorded tables.
figures:
	$(GO) run ./cmd/iwfigures -iters 3 all

fig4 fig5 fig6 fig7:
	$(GO) run ./cmd/iwfigures -iters 3 $@

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/calendar
	$(GO) run ./examples/datamining -updates 4
	$(GO) run ./examples/astroflow -steps 8 -every 8
	$(GO) run ./examples/cluster

# Three-node cluster walk-through (DESIGN.md §7): redirect routing,
# replica streaming, a primary killed mid-write via faultnet, and a
# live segment migration, all in one process.
cluster-demo:
	$(GO) run ./examples/cluster

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Documentation checks (also run in CI): godoc coverage and offline
# markdown link validation.
doccheck:
	$(GO) run ./tools/doccheck . ./internal/... ./cmd/... ./tools/... ./examples/...

linkcheck:
	$(GO) run ./tools/linkcheck README.md DESIGN.md PROTOCOL.md EXPERIMENTS.md OBSERVABILITY.md CAPACITY.md

clean:
	rm -f cover.out test_output.txt bench_output.txt bench-regress.json bench-smoke.json loadgen-slo.json loadgen-smoke.json iwtop-smoke.json iwtop-smoke.err iwserver-smoke iwproxy-smoke proxysmoke-check proxy-smoke.json evictsmoke-check evict-smoke.json
	rm -rf evict-smoke-journal
