# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race race-short bench figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# CI variant: skips the soak/chaos long-variants (testing.Short()).
race-short:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/iwfigures all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/calendar
	$(GO) run ./examples/datamining -updates 4
	$(GO) run ./examples/astroflow -steps 8 -every 8

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
