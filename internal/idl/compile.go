package idl

import (
	"errors"
	"fmt"

	"interweave/internal/types"
)

// Package is the result of compiling an IDL source: machine-
// independent type descriptors for every declaration.
type Package struct {
	// Structs maps struct names to their completed types.
	Structs map[string]*types.Type
	// Typedefs maps alias names to their types.
	Typedefs map[string]*types.Type
	// StructOrder lists struct names in declaration order.
	StructOrder []string
	// file retains the AST for the code generator.
	ast *file
}

// errNotYet signals that a type could not be built because a struct
// it uses by value is not completed yet; the driver loop retries.
var errNotYet = errors.New("idl: dependency not completed yet")

// Compile parses and semantically analyses IDL source.
func Compile(src string) (*Package, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		shells:     make(map[string]*types.Type),
		typedefs:   make(map[string]*typedefDecl),
		tdCache:    make(map[string]*types.Type),
		tdVisiting: make(map[string]bool),
	}
	pkg := &Package{
		Structs:  make(map[string]*types.Type),
		Typedefs: make(map[string]*types.Type),
		ast:      f,
	}
	for i := range f.structs {
		sd := &f.structs[i]
		if _, ok := c.shells[sd.name]; ok {
			return nil, fmt.Errorf("idl: %d:%d: duplicate struct %q", sd.line, sd.col, sd.name)
		}
		if isPrimitiveName(sd.name) {
			return nil, fmt.Errorf("idl: %d:%d: struct name %q shadows a primitive", sd.line, sd.col, sd.name)
		}
		c.shells[sd.name] = types.NewStruct(sd.name)
		pkg.StructOrder = append(pkg.StructOrder, sd.name)
	}
	for i := range f.typedefs {
		td := &f.typedefs[i]
		if _, ok := c.typedefs[td.name]; ok {
			return nil, fmt.Errorf("idl: %d:%d: duplicate typedef %q", td.line, td.col, td.name)
		}
		if _, ok := c.shells[td.name]; ok {
			return nil, fmt.Errorf("idl: %d:%d: typedef %q collides with struct", td.line, td.col, td.name)
		}
		if isPrimitiveName(td.name) {
			return nil, fmt.Errorf("idl: %d:%d: typedef name %q shadows a primitive", td.line, td.col, td.name)
		}
		c.typedefs[td.name] = td
	}

	// Complete structs in dependency order: a struct may be
	// completed once every field it holds by value is complete;
	// pointer fields may target incomplete shells, which is how
	// recursion works.
	pending := make([]*structDecl, 0, len(f.structs))
	for i := range f.structs {
		pending = append(pending, &f.structs[i])
	}
	for len(pending) > 0 {
		progress := false
		var next []*structDecl
		for _, sd := range pending {
			fields, err := c.buildFields(sd)
			switch {
			case errors.Is(err, errNotYet):
				next = append(next, sd)
			case err != nil:
				return nil, err
			default:
				if err := c.shells[sd.name].SetFields(fields...); err != nil {
					return nil, fmt.Errorf("idl: %d:%d: struct %q: %w", sd.line, sd.col, sd.name, err)
				}
				progress = true
			}
		}
		if !progress && len(next) > 0 {
			return nil, fmt.Errorf("idl: struct %q contains itself (directly or indirectly) without a pointer",
				next[0].name)
		}
		pending = next
	}

	for name, sh := range c.shells {
		if err := types.Validate(sh); err != nil {
			return nil, fmt.Errorf("idl: struct %q: %w", name, err)
		}
		pkg.Structs[name] = sh
	}
	for name := range c.typedefs {
		t, err := c.resolveTypedef(name)
		if err != nil {
			return nil, err
		}
		pkg.Typedefs[name] = t
	}
	return pkg, nil
}

type compiler struct {
	shells     map[string]*types.Type
	typedefs   map[string]*typedefDecl
	tdCache    map[string]*types.Type
	tdVisiting map[string]bool
}

func (c *compiler) buildFields(sd *structDecl) ([]types.Field, error) {
	fields := make([]types.Field, 0, len(sd.fields))
	for _, fd := range sd.fields {
		t, err := c.build(fd.typ)
		if err != nil {
			if errors.Is(err, errNotYet) {
				return nil, err
			}
			return nil, fmt.Errorf("idl: %d:%d: field %q: %w", fd.line, fd.col, fd.name, err)
		}
		fields = append(fields, types.Field{Name: fd.name, Type: t})
	}
	return fields, nil
}

// build materializes a type expression.
func (c *compiler) build(te typeExpr) (*types.Type, error) {
	base, err := c.resolveBase(te)
	if err != nil {
		return nil, err
	}
	t := base
	for i := 0; i < te.ptr; i++ {
		p, err := types.PointerTo(t)
		if err != nil {
			return nil, err
		}
		t = p
	}
	// A by-value use of an incomplete struct cannot be built yet.
	if te.ptr == 0 && !t.Complete() {
		return nil, errNotYet
	}
	for i := len(te.arrayNs) - 1; i >= 0; i-- {
		a, err := types.ArrayOf(t, te.arrayNs[i])
		if err != nil {
			return nil, err
		}
		t = a
	}
	return t, nil
}

func (c *compiler) resolveBase(te typeExpr) (*types.Type, error) {
	switch te.base {
	case "char":
		return types.Char(), nil
	case "int16", "short":
		return types.Int16(), nil
	case "int32", "int":
		return types.Int32(), nil
	case "int64", "long", "hyper":
		return types.Int64(), nil
	case "float32", "float":
		return types.Float32(), nil
	case "float64", "double":
		return types.Float64(), nil
	case "string":
		return types.StringOf(te.strCap)
	}
	if sh, ok := c.shells[te.base]; ok {
		return sh, nil
	}
	if _, ok := c.typedefs[te.base]; ok {
		return c.resolveTypedef(te.base)
	}
	return nil, fmt.Errorf("idl: %d:%d: unknown type %q", te.line, te.col, te.base)
}

func (c *compiler) resolveTypedef(name string) (*types.Type, error) {
	if t, ok := c.tdCache[name]; ok {
		return t, nil
	}
	if c.tdVisiting[name] {
		return nil, fmt.Errorf("idl: typedef %q is recursive", name)
	}
	c.tdVisiting[name] = true
	defer delete(c.tdVisiting, name)
	td := c.typedefs[name]
	t, err := c.build(td.typ)
	if err != nil {
		if errors.Is(err, errNotYet) {
			return nil, fmt.Errorf("idl: %d:%d: typedef %q uses an incomplete struct by value",
				td.line, td.col, name)
		}
		return nil, err
	}
	c.tdCache[name] = t
	return t, nil
}

func isPrimitiveName(s string) bool {
	switch s {
	case "char", "int16", "short", "int32", "int", "int64", "long", "hyper",
		"float32", "float", "float64", "double", "string":
		return true
	}
	return false
}
