package idl

import (
	"strings"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/types"
)

const listIDL = `
// The paper's Figure 1 declaration.
struct node_t {
    int     key;
    node_t *next;
};
`

const richIDL = `
typedef double vec3[3];
typedef vec3 trajectory[8];
typedef point *point_ref;

struct point {
    float64 x;
    float64 y;
};

struct body {
    int32      id;
    string     name<32>;
    point      center;      // by-value struct (declared later in src order is fine)
    point     *nearest;
    vec3       velocity;
    trajectory path;
    char       tag;
    int64      epoch;
    float32    mass;
    int16      flags;
    point_ref  other;
};
`

func TestCompileList(t *testing.T) {
	pkg, err := Compile(listIDL)
	if err != nil {
		t.Fatal(err)
	}
	node, ok := pkg.Structs["node_t"]
	if !ok {
		t.Fatal("node_t missing")
	}
	if node.PrimCount() != 2 || node.NumFields() != 2 {
		t.Errorf("node_t = %d fields, %d units", node.NumFields(), node.PrimCount())
	}
	if node.Field(1).Type.Kind() != types.KindPointer || node.Field(1).Type.Elem() != node {
		t.Error("next is not a pointer to node_t")
	}
	if err := types.Validate(node); err != nil {
		t.Error(err)
	}
}

func TestCompileRich(t *testing.T) {
	pkg, err := Compile(richIDL)
	if err != nil {
		t.Fatal(err)
	}
	body := pkg.Structs["body"]
	if body == nil {
		t.Fatal("body missing")
	}
	if got := body.PrimCount(); got != 1+1+2+1+3+24+1+1+1+1+1 {
		t.Errorf("body PrimCount = %d", got)
	}
	vec3 := pkg.Typedefs["vec3"]
	if vec3 == nil || vec3.Kind() != types.KindArray || vec3.Len() != 3 {
		t.Errorf("vec3 = %v", vec3)
	}
	traj := pkg.Typedefs["trajectory"]
	if traj == nil || traj.Kind() != types.KindArray || traj.Len() != 8 || traj.Elem().Kind() != types.KindArray {
		t.Errorf("trajectory = %v", traj)
	}
	pref := pkg.Typedefs["point_ref"]
	if pref == nil || pref.Kind() != types.KindPointer || pref.Elem() != pkg.Structs["point"] {
		t.Errorf("point_ref = %v", pref)
	}
	// Layouts must compute on every profile.
	for _, p := range arch.Profiles() {
		if _, err := types.Of(body, p); err != nil {
			t.Errorf("layout on %v: %v", p, err)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"empty struct":        `struct s { };`,
		"unknown type":        `struct s { widget w; };`,
		"dup struct":          `struct s { int a; }; struct s { int b; };`,
		"dup typedef":         `typedef int a; typedef int a;`,
		"typedef vs struct":   `struct s { int a; }; typedef int s;`,
		"primitive struct":    `struct int { char c; };`,
		"primitive typedef":   `typedef char int;`,
		"value self cycle":    `struct s { s inner; };`,
		"mutual value cycle":  `struct a { b x; }; struct b { a y; };`,
		"recursive typedef":   `typedef t2 t1; typedef t1 t2;`,
		"string no cap":       `struct s { string x; };`,
		"zero array":          `struct s { int a[0]; };`,
		"zero string cap":     `struct s { string x<0>; };`,
		"garbage":             `struct s { int a; ` + "\x01" + ` };`,
		"missing semicolon":   `struct s { int a }`,
		"unterminated struct": `struct s { int a;`,
		"top-level junk":      `int x;`,
		"unterminated cmt":    `/* struct s { int a; };`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled successfully", name)
		}
	}
}

func TestMutualRecursionThroughPointers(t *testing.T) {
	src := `
struct a { b *peer; int x; };
struct b { a *peer; int y; };
`
	pkg, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pkg.Structs["a"], pkg.Structs["b"]
	if a.Field(0).Type.Elem() != b || b.Field(0).Type.Elem() != a {
		t.Error("mutual pointers wired wrong")
	}
}

func TestByValueForwardReference(t *testing.T) {
	src := `
struct outer { inner i; };
struct inner { int x; };
`
	pkg, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Structs["outer"].PrimCount() != 1 {
		t.Error("forward by-value reference failed")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "struct s { /* inline */ int a; // trailing\n int b; };"
	pkg, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Structs["s"].NumFields() != 2 {
		t.Error("comment handling broke fields")
	}
}

func TestGenerateGoList(t *testing.T) {
	pkg, err := Compile(listIDL)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateGo(pkg, "bindings")
	if err != nil {
		t.Fatal(err)
	}
	code := string(src)
	for _, want := range []string{
		"package bindings",
		"func Types() (map[string]*interweave.Type, error)",
		`interweave.NewStruct("node_t")`,
		"type NodeTView struct",
		"func (v NodeTView) Key() (int32, error)",
		"func (v NodeTView) SetKey(x int32) error",
		"func (v NodeTView) Next() (interweave.Addr, error)",
		"func (v NodeTView) NextDeref() (NodeTView, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateGoRich(t *testing.T) {
	pkg, err := Compile(richIDL)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateGo(pkg, "bindings")
	if err != nil {
		t.Fatal(err)
	}
	code := string(src)
	for _, want := range []string{
		"func (v BodyView) Name() (string, error)",
		"func (v BodyView) Center() (PointView, error)",
		"func (v BodyView) NearestDeref() (PointView, error)",
		"func (v BodyView) Velocity() (interweave.Ref, error)",
		"func (v BodyView) Epoch() (int64, error)",
		"func (v BodyView) SetMass(x float32) error",
		"func (v BodyView) Tag() (byte, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateGoNilPackage(t *testing.T) {
	if _, err := GenerateGo(nil, "x"); err == nil {
		t.Error("GenerateGo(nil) succeeded")
	}
}

func TestExportName(t *testing.T) {
	tests := map[string]string{
		"node_t":   "NodeT",
		"key":      "Key",
		"my_field": "MyField",
		"x":        "X",
		"_":        "X",
		"already":  "Already",
	}
	for in, want := range tests {
		if got := exportName(in); got != want {
			t.Errorf("exportName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Compile("struct s {\n  bogus$ x;\n};")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestConstDeclarations(t *testing.T) {
	src := `
const WEEK = 7;
const NAME_LEN = 24;
struct sched {
    string  label<NAME_LEN>;
    double  hours[WEEK];
    int32   tags[WEEK][2];
};
`
	pkg, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	sched := pkg.Structs["sched"]
	if sched == nil {
		t.Fatal("sched missing")
	}
	if sched.Field(0).Type.Cap() != 24 {
		t.Errorf("label cap = %d", sched.Field(0).Type.Cap())
	}
	if sched.Field(1).Type.Len() != 7 {
		t.Errorf("hours len = %d", sched.Field(1).Type.Len())
	}
	if got := sched.Field(2).Type; got.Len() != 7 || got.Elem().Len() != 2 {
		t.Errorf("tags dims = %d x %d", got.Len(), got.Elem().Len())
	}
	// Bindings still generate.
	if _, err := GenerateGo(pkg, "b"); err != nil {
		t.Fatal(err)
	}
}

func TestConstErrors(t *testing.T) {
	cases := map[string]string{
		"undefined const":   `struct s { int a[NOPE]; };`,
		"use before decl":   `struct s { int a[N]; }; const N = 4;`,
		"duplicate const":   `const N = 1; const N = 2;`,
		"nonpositive const": `const N = 0; struct s { int a[N]; };`,
		"garbage value":     `const N = x;`,
		"missing equals":    `const N 4;`,
		"missing semicolon": `const N = 4 struct s { int a; };`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled successfully", name)
		}
	}
}
