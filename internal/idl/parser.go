package idl

import (
	"fmt"
	"strconv"
)

// AST node types. The parser produces a flat list of declarations;
// semantic analysis (compile.go) resolves names and builds type
// descriptors.

// typeExpr is a parsed type reference: a base name plus decorations.
type typeExpr struct {
	base    string // primitive name, struct name, or typedef name
	strCap  int    // capacity for string<N>
	ptr     int    // number of '*'s
	arrayNs []int  // array dimensions, outermost first
	line    int
	col     int
}

// fieldDecl is one struct member.
type fieldDecl struct {
	name string
	typ  typeExpr
	line int
	col  int
}

// structDecl is a struct declaration.
type structDecl struct {
	name   string
	fields []fieldDecl
	line   int
	col    int
}

// typedefDecl aliases a (possibly decorated) type.
type typedefDecl struct {
	name string
	typ  typeExpr
	line int
	col  int
}

// constDecl is a named integer constant, usable as an array length
// or string capacity in later declarations.
type constDecl struct {
	name  string
	value int
	line  int
	col   int
}

// file is a parsed IDL source.
type file struct {
	structs  []structDecl
	typedefs []typedefDecl
	consts   []constDecl
}

type parser struct {
	toks   []token
	pos    int
	consts map[string]int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("idl: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, found %q", s, t.text)
	}
	p.bump()
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %q", t.text)
	}
	return p.bump(), nil
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

// parse parses a whole file.
func parse(src string) (*file, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, consts: make(map[string]int)}
	f := &file{}
	for p.cur().kind != tokEOF {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected declaration, found %q", t.text)
		}
		switch t.text {
		case "struct":
			sd, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			f.structs = append(f.structs, *sd)
		case "typedef":
			td, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			f.typedefs = append(f.typedefs, *td)
		case "const":
			cd, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			f.consts = append(f.consts, *cd)
		default:
			return nil, p.errf(t, "expected 'struct', 'typedef', or 'const', found %q", t.text)
		}
	}
	return f, nil
}

func (p *parser) parseStruct() (*structDecl, error) {
	kw := p.bump() // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sd := &structDecl{name: name.text, line: kw.line, col: kw.col}
	for !p.atPunct("}") {
		fd, err := p.parseField()
		if err != nil {
			return nil, err
		}
		sd.fields = append(sd.fields, *fd)
	}
	p.bump() // }
	if p.atPunct(";") {
		p.bump()
	}
	if len(sd.fields) == 0 {
		return nil, p.errf(kw, "struct %q has no fields", sd.name)
	}
	return sd, nil
}

// parseTypeExpr parses "base", "string<N>", and leading '*'s are not
// used in this grammar — pointers are written C-style between the
// base and the member name: "node *next".
func (p *parser) parseTypeExpr() (typeExpr, error) {
	base, err := p.expectIdent()
	if err != nil {
		return typeExpr{}, err
	}
	te := typeExpr{base: base.text, line: base.line, col: base.col}
	// "string<N> name" puts the capacity on the type; rpcgen's
	// "string name<N>" puts it after the declarator — both are
	// accepted, the latter handled by parseCap at the call sites.
	if base.text == "string" && p.atPunct("<") {
		capN, err := p.parseCap()
		if err != nil {
			return typeExpr{}, err
		}
		te.strCap = capN
	}
	return te, nil
}

// parseCap parses "<N>" where N is a number or a declared constant.
func (p *parser) parseCap() (int, error) {
	if err := p.expectPunct("<"); err != nil {
		return 0, err
	}
	v, err := p.parseSize("string capacity")
	if err != nil {
		return 0, err
	}
	if err := p.expectPunct(">"); err != nil {
		return 0, err
	}
	return v, nil
}

// parseSize reads a positive integer literal or a declared constant.
func (p *parser) parseSize(what string) (int, error) {
	n := p.cur()
	switch n.kind {
	case tokNumber:
		p.bump()
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 1 {
			return 0, p.errf(n, "invalid %s %q", what, n.text)
		}
		return v, nil
	case tokIdent:
		v, ok := p.consts[n.text]
		if !ok {
			return 0, p.errf(n, "unknown constant %q used as %s", n.text, what)
		}
		p.bump()
		if v < 1 {
			return 0, p.errf(n, "constant %q (%d) is not a valid %s", n.text, v, what)
		}
		return v, nil
	default:
		return 0, p.errf(n, "expected %s, found %q", what, n.text)
	}
}

// parseConst parses "const NAME = VALUE ;".
func (p *parser) parseConst() (*constDecl, error) {
	kw := p.bump() // const
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, dup := p.consts[name.text]; dup {
		return nil, p.errf(name, "duplicate constant %q", name.text)
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	n := p.cur()
	if n.kind != tokNumber {
		return nil, p.errf(n, "expected constant value, found %q", n.text)
	}
	p.bump()
	v, err := strconv.Atoi(n.text)
	if err != nil {
		return nil, p.errf(n, "invalid constant value %q", n.text)
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	p.consts[name.text] = v
	return &constDecl{name: name.text, value: v, line: kw.line, col: kw.col}, nil
}

// parseField parses "type ['*'...] name ['[' N ']'...] ';'".
func (p *parser) parseField() (*fieldDecl, error) {
	te, err := p.parseTypeExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") {
		p.bump()
		te.ptr++
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if te.base == "string" && te.strCap == 0 && p.atPunct("<") {
		capN, err := p.parseCap()
		if err != nil {
			return nil, err
		}
		te.strCap = capN
	}
	for p.atPunct("[") {
		p.bump()
		v, err := p.parseSize("array length")
		if err != nil {
			return nil, err
		}
		te.arrayNs = append(te.arrayNs, v)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &fieldDecl{name: name.text, typ: te, line: name.line, col: name.col}, nil
}

// parseTypedef parses "typedef type ['*'...] name ['[' N ']'...] ';'".
func (p *parser) parseTypedef() (*typedefDecl, error) {
	kw := p.bump() // typedef
	te, err := p.parseTypeExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") {
		p.bump()
		te.ptr++
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if te.base == "string" && te.strCap == 0 && p.atPunct("<") {
		capN, err := p.parseCap()
		if err != nil {
			return nil, err
		}
		te.strCap = capN
	}
	for p.atPunct("[") {
		p.bump()
		v, err := p.parseSize("array length")
		if err != nil {
			return nil, err
		}
		te.arrayNs = append(te.arrayNs, v)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &typedefDecl{name: name.text, typ: te, line: kw.line, col: kw.col}, nil
}
