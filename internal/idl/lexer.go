// Package idl implements InterWeave's interface description language
// compiler. As in multi-language RPC systems, the types of shared
// data must be declared in an IDL (paper Section 2.1); this compiler
// translates the declarations into machine-independent type
// descriptors (interweave/internal/types) and can emit Go bindings —
// typed accessor views over interweave.Ref — the way the original
// compiler emitted C, C++, Java, and Fortran declarations.
//
// The language is C-flavoured:
//
//	const SAMPLES = 16;
//	typedef double vec3[3];
//	struct node {
//	    int32   key;
//	    string  label<64>;   // fixed-capacity string
//	    node   *next;        // pointer (recursive types allowed)
//	    vec3    pos;
//	    double  samples[SAMPLES];
//	};
//
// Primitive type names: char, int16 (short), int32 (int), int64
// (long, hyper), float32 (float), float64 (double), string<N>.
// Integer constants declared with `const` may be used as array
// lengths and string capacities.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // one of { } [ ] < > * ; , =
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer splits IDL source into tokens, skipping // and /* */
// comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("idl: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return token{}, l.errf(startLine, startCol, "unterminated comment")
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil
}

func (l *lexer) lexToken() (token, error) {
	line, col := l.line, l.col
	c := l.peek()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			sb.WriteByte(l.advance())
		}
		return token{kind: tokIdent, text: sb.String(), line: line, col: col}, nil
	case c >= '0' && c <= '9':
		var sb strings.Builder
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			sb.WriteByte(l.advance())
		}
		return token{kind: tokNumber, text: sb.String(), line: line, col: col}, nil
	case strings.IndexByte("{}[]<>*;,=", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	default:
		return token{}, l.errf(line, col, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
