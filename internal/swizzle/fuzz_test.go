package swizzle

import (
	"strings"
	"testing"
)

// FuzzParseSegmentURL fuzzes the MIP/segment-URL parser with the
// round-trip property: whatever Parse accepts must re-render with
// String and re-parse to the identical MIP, and the parts must be
// structurally sound (non-empty segment and block, non-negative
// offset, no '#' leaking into the segment). Rejections must be
// errors, never panics.
func FuzzParseSegmentURL(f *testing.F) {
	for _, seed := range []string{
		"",
		"host:7070/seg#blk",
		"host:7070/seg#blk#12",
		"host:7070/a/b/c#42",
		"10.0.0.1:7000/matrix#row#4294967295",
		"#blk",
		"seg#",
		"seg#blk#",
		"seg#blk#-1",
		"seg#blk#nan",
		"seg##3",
		"a#b#c#d",
		"host/seg#blk#007",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Parse(s)
		if err != nil {
			return
		}
		if s == "" {
			if !m.IsNil() {
				t.Fatalf("Parse(%q) = %+v, want nil MIP", s, m)
			}
			return
		}
		if m.Segment == "" || m.Block == "" {
			t.Fatalf("Parse(%q) accepted empty part: %+v", s, m)
		}
		if strings.ContainsRune(m.Segment, '#') {
			t.Fatalf("Parse(%q) left %q in segment", s, m.Segment)
		}
		if m.Offset < 0 {
			t.Fatalf("Parse(%q) accepted negative offset %d", s, m.Offset)
		}
		rendered := m.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, s, err)
		}
		if back != m {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", s, m, rendered, back)
		}
	})
}
