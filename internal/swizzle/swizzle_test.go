package swizzle

import (
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

func TestParseFormat(t *testing.T) {
	tests := []struct {
		in   string
		want MIP
		bad  bool
	}{
		{"", MIP{}, false},
		{"foo.org/path#head", MIP{"foo.org/path", "head", 0}, false},
		{"foo.org/path#head#12", MIP{"foo.org/path", "head", 12}, false},
		{"h/s#42#3", MIP{"h/s", "42", 3}, false},
		{"#head", MIP{}, true},
		{"seg#", MIP{}, true},
		{"seg#b#x", MIP{}, true},
		{"seg#b#-1", MIP{}, true},
		{"nohash", MIP{}, true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if tt.bad {
			if err == nil {
				t.Errorf("Parse(%q) succeeded: %+v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
		// Round-trip through String.
		back, err := Parse(got.String())
		if err != nil || back != got {
			t.Errorf("reparse(%q) = %+v, %v", got.String(), back, err)
		}
	}
}

func TestBlockSerial(t *testing.T) {
	if s, ok := (MIP{Block: "42"}).BlockSerial(); !ok || s != 42 {
		t.Errorf("BlockSerial(42) = %d,%v", s, ok)
	}
	for _, bad := range []string{"", "head", "0", "99999999999999999999"} {
		if _, ok := (MIP{Block: bad}).BlockSerial(); ok {
			t.Errorf("BlockSerial(%q) ok", bad)
		}
	}
}

func TestNil(t *testing.T) {
	if !(MIP{}).IsNil() {
		t.Error("zero MIP not nil")
	}
	if (MIP{}).String() != "" {
		t.Error("nil MIP renders non-empty")
	}
	h, err := mem.NewHeap(arch.AMD64())
	if err != nil {
		t.Fatal(err)
	}
	m, err := PtrToMIP(h, 0)
	if err != nil || !m.IsNil() {
		t.Errorf("PtrToMIP(0) = %+v, %v", m, err)
	}
}

func setup(t *testing.T, prof *arch.Profile) (*mem.Heap, *mem.SegMem) {
	t.Helper()
	h, err := mem.NewHeap(prof)
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.NewSegment("host/list")
	if err != nil {
		t.Fatal(err)
	}
	return h, s
}

func nodeLayout(t *testing.T, prof *arch.Profile) *types.Layout {
	t.Helper()
	n := types.NewStruct("node_t")
	next, err := types.PointerTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFields(types.Field{Name: "key", Type: types.Int32()}, types.Field{Name: "next", Type: next}); err != nil {
		t.Fatal(err)
	}
	l, err := types.Of(n, prof)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPtrToMIPRoundtrip(t *testing.T) {
	for _, prof := range arch.Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			h, s := setup(t, prof)
			l := nodeLayout(t, prof)
			head, err := s.Alloc(l, 1, "head")
			if err != nil {
				t.Fatal(err)
			}
			anon, err := s.Alloc(l, 5, "")
			if err != nil {
				t.Fatal(err)
			}
			tests := []struct {
				a    mem.Addr
				want string
			}{
				{head.Addr, "host/list#head"},
				{anon.Addr, "host/list#2"},
				// Middle of a structure: element 3's next field.
				{anon.Addr + mem.Addr(3*l.Size+mustField(t, l, "next")), "host/list#2#7"},
			}
			for _, tt := range tests {
				m, err := PtrToMIP(h, tt.a)
				if err != nil {
					t.Fatalf("PtrToMIP(%#x): %v", uint64(tt.a), err)
				}
				if m.String() != tt.want {
					t.Errorf("PtrToMIP(%#x) = %q, want %q", uint64(tt.a), m, tt.want)
				}
				back, err := AddrOfMIP(s, m)
				if err != nil {
					t.Fatalf("AddrOfMIP(%q): %v", m, err)
				}
				if back != tt.a {
					t.Errorf("AddrOfMIP(%q) = %#x, want %#x", m, uint64(back), uint64(tt.a))
				}
			}
		})
	}
}

func mustField(t *testing.T, l *types.Layout, name string) int {
	t.Helper()
	f, ok := l.Field(name)
	if !ok {
		t.Fatalf("no field %q", name)
	}
	return f.ByteOff
}

func TestPtrToMIPErrors(t *testing.T) {
	h, s := setup(t, arch.AMD64())
	l := nodeLayout(t, arch.AMD64())
	b, err := s.Alloc(l, 1, "head")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PtrToMIP(h, 0xDEAD00000); err == nil {
		t.Error("unmapped address swizzled")
	}
	// Padding on 64-bit: bytes 4-7 of node_t are padding.
	if _, err := PtrToMIP(h, b.Addr+5); err == nil {
		t.Error("padding address swizzled")
	}
}

func TestAddrOfMIPErrors(t *testing.T) {
	_, s := setup(t, arch.AMD64())
	l := nodeLayout(t, arch.AMD64())
	if _, err := s.Alloc(l, 2, "head"); err != nil {
		t.Fatal(err)
	}
	if _, err := AddrOfMIP(s, MIP{Segment: "host/list", Block: "nosuch"}); err == nil {
		t.Error("missing block resolved")
	}
	if _, err := AddrOfMIP(s, MIP{Segment: "host/list", Block: "head", Offset: 4}); err == nil {
		t.Error("out-of-range offset resolved")
	}
	if a, err := AddrOfMIP(s, MIP{}); err != nil || a != 0 {
		t.Errorf("nil MIP = %#x, %v", uint64(a), err)
	}
}

func TestSerialNameLookupPreference(t *testing.T) {
	_, s := setup(t, arch.AMD64())
	l := nodeLayout(t, arch.AMD64())
	named, err := s.Alloc(l, 1, "head")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Alloc(l, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	// "2" resolves by serial since no block is named "2".
	got, err := BlockOfMIP(s, MIP{Segment: "host/list", Block: "2"})
	if err != nil || got != b2 {
		t.Errorf("BlockOfMIP(2) = %v, %v", got, err)
	}
	got, err = BlockOfMIP(s, MIP{Segment: "host/list", Block: "head"})
	if err != nil || got != named {
		t.Errorf("BlockOfMIP(head) = %v, %v", got, err)
	}
}

// TestSwizzlerMatchesPtrToMIP checks the bulk swizzler against the
// reference implementation over every unit of several blocks in two
// segments, in orders that defeat and exploit the block cache.
func TestSwizzlerMatchesPtrToMIP(t *testing.T) {
	h, s1 := setup(t, arch.AMD64())
	s2, err := h.NewSegment("host/other")
	if err != nil {
		t.Fatal(err)
	}
	l := nodeLayout(t, arch.AMD64())
	var addrs []mem.Addr
	for i := 0; i < 4; i++ {
		b, err := s1.Alloc(l, 3, "")
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			f, _ := l.Field("next")
			addrs = append(addrs, b.Addr+mem.Addr(e*l.Size))
			addrs = append(addrs, b.Addr+mem.Addr(e*l.Size+f.ByteOff))
		}
	}
	ob, err := s2.Alloc(l, 1, "named")
	if err != nil {
		t.Fatal(err)
	}
	addrs = append(addrs, ob.Addr, 0)

	check := func(order []mem.Addr) {
		t.Helper()
		sw := NewSwizzler(h)
		for _, a := range order {
			got, err := sw.MIPString(a)
			if err != nil {
				t.Fatalf("Swizzler(%#x): %v", uint64(a), err)
			}
			var want string
			m, err := PtrToMIP(h, a)
			if err != nil {
				t.Fatal(err)
			}
			want = m.String()
			if got != want {
				t.Fatalf("Swizzler(%#x) = %q, PtrToMIP = %q", uint64(a), got, want)
			}
		}
	}
	check(addrs) // sequential: cache-friendly
	rev := make([]mem.Addr, len(addrs))
	for i, a := range addrs {
		rev[len(addrs)-1-i] = a
	}
	check(rev) // reversed: cache misses at block boundaries
	// Interleave the two segments to thrash the cache.
	var interleaved []mem.Addr
	for i := range addrs {
		interleaved = append(interleaved, addrs[i], ob.Addr)
	}
	check(interleaved)

	// Errors propagate.
	sw := NewSwizzler(h)
	if _, err := sw.MIPString(0xDEAD0000000); err == nil {
		t.Error("unmapped address swizzled")
	}
}

// TestUnswizzlerMatchesAddrOfMIP checks the bulk unswizzler against
// the reference path over many MIPs, with and without cache hits.
func TestUnswizzlerMatchesAddrOfMIP(t *testing.T) {
	h, s1 := setup(t, arch.Alpha())
	s2, err := h.NewSegment("host/other")
	if err != nil {
		t.Fatal(err)
	}
	l := nodeLayout(t, arch.Alpha())
	var mips []string
	record := func(seg *mem.SegMem, b *mem.Block) {
		for u := 0; u < b.PrimCount(); u++ {
			m, err := PtrToMIP(h, mustAddrOf(t, seg, b, u))
			if err != nil {
				t.Fatal(err)
			}
			mips = append(mips, m.String())
		}
	}
	for i := 0; i < 3; i++ {
		b, err := s1.Alloc(l, 2, "")
		if err != nil {
			t.Fatal(err)
		}
		record(s1, b)
	}
	nb, err := s2.Alloc(l, 1, "far")
	if err != nil {
		t.Fatal(err)
	}
	record(s2, nb)
	mips = append(mips, "")

	resolveSeg := func(name string) (*mem.SegMem, error) {
		seg, ok := h.Segment(name)
		if !ok {
			t.Fatalf("segment %q", name)
		}
		return seg, nil
	}
	orders := [][]string{mips, reversed(mips)}
	for _, order := range orders {
		uw := NewUnswizzler(resolveSeg)
		for _, mip := range order {
			got, err := uw.Addr(mip)
			if err != nil {
				t.Fatalf("Unswizzler(%q): %v", mip, err)
			}
			m, err := Parse(mip)
			if err != nil {
				t.Fatal(err)
			}
			var want mem.Addr
			if !m.IsNil() {
				seg, _ := h.Segment(m.Segment)
				want, err = AddrOfMIP(seg, m)
				if err != nil {
					t.Fatal(err)
				}
			}
			if got != want {
				t.Fatalf("Unswizzler(%q) = %#x, want %#x", mip, uint64(got), uint64(want))
			}
		}
	}

	// Errors: garbage, missing block, out-of-range offset.
	uw := NewUnswizzler(resolveSeg)
	for _, bad := range []string{"nohash", "host/list#nosuch", "host/other#far#999"} {
		if _, err := uw.Addr(bad); err == nil {
			t.Errorf("Unswizzler(%q) succeeded", bad)
		}
	}
	// Cache hit with an out-of-range offset still fails.
	if _, err := uw.Addr("host/other#far"); err != nil {
		t.Fatal(err)
	}
	if _, err := uw.Addr("host/other#far#77"); err == nil {
		t.Error("cached block accepted out-of-range offset")
	}
}

func mustAddrOf(t *testing.T, seg *mem.SegMem, b *mem.Block, unit int) mem.Addr {
	t.Helper()
	elem := unit / b.Layout.PrimCount
	off, err := b.Layout.PrimToByte(unit % b.Layout.PrimCount)
	if err != nil {
		t.Fatal(err)
	}
	return b.Addr + mem.Addr(elem*b.Layout.Size+off)
}

func reversed(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[len(in)-1-i] = s
	}
	return out
}

func TestBlockNameWithHashRejected(t *testing.T) {
	_, s := setup(t, arch.AMD64())
	l := nodeLayout(t, arch.AMD64())
	if _, err := s.Alloc(l, 1, "bad#name"); err == nil {
		t.Error("block name containing '#' accepted")
	}
}

func TestCrossSegmentSwizzle(t *testing.T) {
	h, s1 := setup(t, arch.AMD64())
	s2, err := h.NewSegment("host/other")
	if err != nil {
		t.Fatal(err)
	}
	l := nodeLayout(t, arch.AMD64())
	if _, err := s1.Alloc(l, 1, "a"); err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Alloc(l, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	m, err := PtrToMIP(h, b2.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Segment != "host/other" {
		t.Errorf("cross-segment MIP = %q", m)
	}
}
