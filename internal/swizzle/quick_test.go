package swizzle

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParseNeverPanics feeds arbitrary strings to the MIP
// parser: it must either fail cleanly or produce a MIP that
// re-renders and re-parses to itself.
func TestQuickParseNeverPanics(t *testing.T) {
	fn := func(s string) bool {
		m, err := Parse(s)
		if err != nil {
			return true
		}
		back, err := Parse(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFormatParseRoundtrip builds structurally valid MIPs from
// arbitrary components and checks the roundtrip.
func TestQuickFormatParseRoundtrip(t *testing.T) {
	fn := func(seg, block string, off uint16) bool {
		seg = sanitize(seg)
		block = sanitize(block)
		if seg == "" || block == "" {
			return true
		}
		m := MIP{Segment: seg, Block: block, Offset: int(off)}
		back, err := Parse(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// sanitize strips characters that are structurally meaningful in MIPs
// from generated component strings.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "#", "")
	// A purely numeric block name would be parsed back as the same
	// string, which is fine; but an empty result is skipped by the
	// property.
	if len(s) > 32 {
		s = s[:32]
	}
	return s
}

// TestSerialRendering covers the numeric block reference spelling.
func TestSerialRendering(t *testing.T) {
	for _, serial := range []uint32{1, 42, 99999} {
		m := MIP{Segment: "h/s", Block: strconv.FormatUint(uint64(serial), 10), Offset: 3}
		got, ok := m.BlockSerial()
		if !ok || got != serial {
			t.Errorf("BlockSerial(%d) = %d, %v", serial, got, ok)
		}
	}
}
