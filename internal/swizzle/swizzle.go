// Package swizzle converts between local machine pointers and
// machine-independent pointers (MIPs).
//
// A MIP names a datum as "segment#block#offset", where segment is the
// segment's URL, block is a block's symbolic name or serial number,
// and offset — optional, default zero — is measured in primitive data
// units, not bytes, so the same MIP is meaningful on every
// architecture (paper Section 2.1).
//
// Swizzling a local pointer to a MIP walks the metadata trees: the
// global subsegment-by-address tree finds the subsegment, its
// block-by-address tree finds the block, and the block's type
// descriptor maps the byte offset to a primitive offset (Section
// 3.1). Unswizzling is the inverse.
package swizzle

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"interweave/internal/mem"
)

// ErrNotShared reports a pointer that does not fall inside any cached
// block.
var ErrNotShared = errors.New("swizzle: address is not in any shared block")

// MIP is a parsed machine-independent pointer. The zero MIP is the
// nil pointer.
type MIP struct {
	// Segment is the segment URL, e.g. "host.org/path".
	Segment string
	// Block is the block's symbolic name, or its serial number in
	// decimal if it has no name.
	Block string
	// Offset is the primitive-unit offset within the block.
	Offset int
}

// IsNil reports whether the MIP is the nil pointer.
func (m MIP) IsNil() bool { return m.Segment == "" }

// BlockSerial interprets the block reference as a serial number.
func (m MIP) BlockSerial() (uint32, bool) {
	if m.Block == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(m.Block, 10, 32)
	if err != nil || n == 0 {
		return 0, false
	}
	return uint32(n), true
}

// String renders the MIP in wire form.
func (m MIP) String() string {
	if m.IsNil() {
		return ""
	}
	if m.Offset == 0 {
		return m.Segment + "#" + m.Block
	}
	return m.Segment + "#" + m.Block + "#" + strconv.Itoa(m.Offset)
}

// Parse parses a MIP of the form "segment#block[#offset]". The empty
// string parses to the nil MIP.
func Parse(s string) (MIP, error) {
	if s == "" {
		return MIP{}, nil
	}
	i := strings.IndexByte(s, '#')
	if i <= 0 || i == len(s)-1 {
		return MIP{}, fmt.Errorf("swizzle: malformed MIP %q", s)
	}
	m := MIP{Segment: s[:i]}
	rest := s[i+1:]
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		off, err := strconv.Atoi(rest[j+1:])
		if err != nil || off < 0 {
			return MIP{}, fmt.Errorf("swizzle: malformed MIP offset in %q", s)
		}
		m.Block, m.Offset = rest[:j], off
	} else {
		m.Block = rest
	}
	if m.Block == "" {
		return MIP{}, fmt.Errorf("swizzle: empty block reference in %q", s)
	}
	return m, nil
}

// blockRef renders a block's wire reference: its symbolic name when
// it has one, its serial number otherwise. Blocks whose names consist
// solely of digits would be ambiguous; mem rejects no names, so the
// serial spelling wins only for unnamed blocks and lookups try names
// first.
func blockRef(b *mem.Block) string {
	if b.Name != "" {
		return b.Name
	}
	return strconv.FormatUint(uint64(b.Serial), 10)
}

// PtrToMIP swizzles a local pointer into a MIP. The address may point
// anywhere inside a block, including the middle of a structure; the
// offset is expressed in primitive units. Address zero swizzles to
// the nil MIP.
func PtrToMIP(h *mem.Heap, a mem.Addr) (MIP, error) {
	if a == 0 {
		return MIP{}, nil
	}
	b, ok := h.BlockAt(a)
	if !ok {
		return MIP{}, fmt.Errorf("%w: %#x", ErrNotShared, uint64(a))
	}
	byteOff := int(a - b.Addr)
	elem := byteOff / b.Layout.Size
	within := byteOff % b.Layout.Size
	prim, err := b.Layout.ByteToPrim(within)
	if err != nil {
		return MIP{}, fmt.Errorf("swizzle: %#x: %w", uint64(a), err)
	}
	return MIP{
		Segment: b.Sub.Seg.Name(),
		Block:   blockRef(b),
		Offset:  elem*b.Layout.PrimCount + prim,
	}, nil
}

// Swizzler converts local pointers to MIP strings in bulk, as diff
// collection does. It amortizes the metadata-tree searches and the
// string formatting across consecutive pointers: the block resolved
// for the previous pointer is tried first (pointers into one
// structure overwhelmingly target the same or a neighbouring block —
// the same observation behind the paper's last-block searches), and
// the segment#block prefix of the MIP is cached per block.
type Swizzler struct {
	h          *mem.Heap
	lastBlock  *mem.Block
	lastPrefix string
	buf        []byte
}

// NewSwizzler returns a swizzler over the heap.
func NewSwizzler(h *mem.Heap) *Swizzler {
	return &Swizzler{h: h}
}

// MIPString swizzles one pointer into its wire form.
func (sw *Swizzler) MIPString(a mem.Addr) (string, error) {
	if a == 0 {
		return "", nil
	}
	b := sw.lastBlock
	if b == nil || a < b.Addr || a >= b.End() {
		var ok bool
		b, ok = sw.h.BlockAt(a)
		if !ok {
			return "", fmt.Errorf("%w: %#x", ErrNotShared, uint64(a))
		}
		sw.lastBlock = b
		sw.lastPrefix = b.Sub.Seg.Name() + "#" + blockRef(b)
	}
	byteOff := int(a - b.Addr)
	elem := byteOff / b.Layout.Size
	within := byteOff % b.Layout.Size
	prim, err := b.Layout.ByteToPrim(within)
	if err != nil {
		return "", fmt.Errorf("swizzle: %#x: %w", uint64(a), err)
	}
	offset := elem*b.Layout.PrimCount + prim
	if offset == 0 {
		return sw.lastPrefix, nil
	}
	sw.buf = append(sw.buf[:0], sw.lastPrefix...)
	sw.buf = append(sw.buf, '#')
	sw.buf = strconv.AppendUint(sw.buf, uint64(offset), 10)
	return string(sw.buf), nil
}

// Unswizzler converts MIP strings to local pointers in bulk, the
// inverse of Swizzler. Consecutive MIPs in a diff overwhelmingly name
// the same block, so the previously resolved (prefix -> block) pair
// is tried before the name/serial trees.
type Unswizzler struct {
	resolveSeg func(name string) (*mem.SegMem, error)
	lastPrefix string
	lastBlock  *mem.Block
}

// NewUnswizzler returns an unswizzler; resolveSeg maps segment names
// to cached segments (fetching or reserving them as the client
// library does).
func NewUnswizzler(resolveSeg func(name string) (*mem.SegMem, error)) *Unswizzler {
	return &Unswizzler{resolveSeg: resolveSeg}
}

// Addr unswizzles one MIP string.
func (uw *Unswizzler) Addr(mip string) (mem.Addr, error) {
	if mip == "" {
		return 0, nil
	}
	// Split the offset off the cached prefix cheaply: a cache hit
	// avoids parsing and both tree searches.
	prefix, offset, err := splitOffset(mip)
	if err != nil {
		return 0, err
	}
	if uw.lastBlock != nil && prefix == uw.lastPrefix {
		return addrAt(uw.lastBlock, offset, mip)
	}
	m, err := Parse(mip)
	if err != nil {
		return 0, err
	}
	seg, err := uw.resolveSeg(m.Segment)
	if err != nil {
		return 0, err
	}
	b, err := BlockOfMIP(seg, m)
	if err != nil {
		return 0, err
	}
	uw.lastPrefix = prefix
	uw.lastBlock = b
	return addrAt(b, m.Offset, mip)
}

// splitOffset splits "seg#block#off" into ("seg#block", off); a MIP
// without an explicit offset keeps offset zero.
func splitOffset(mip string) (string, int, error) {
	first := strings.IndexByte(mip, '#')
	if first < 0 {
		return "", 0, fmt.Errorf("swizzle: malformed MIP %q", mip)
	}
	second := strings.IndexByte(mip[first+1:], '#')
	if second < 0 {
		return mip, 0, nil
	}
	cut := first + 1 + second
	off, err := strconv.Atoi(mip[cut+1:])
	if err != nil || off < 0 {
		return "", 0, fmt.Errorf("swizzle: malformed MIP offset in %q", mip)
	}
	return mip[:cut], off, nil
}

// addrAt maps a unit offset inside a block to an address.
func addrAt(b *mem.Block, offset int, mip string) (mem.Addr, error) {
	pc := b.Layout.PrimCount
	if offset < 0 || offset >= pc*b.Count {
		return 0, fmt.Errorf("swizzle: offset %d out of range in %q (%d units)", offset, mip, pc*b.Count)
	}
	elem := offset / pc
	byteOff, err := b.Layout.PrimToByte(offset % pc)
	if err != nil {
		return 0, err
	}
	return b.Addr + mem.Addr(elem*b.Layout.Size+byteOff), nil
}

// BlockOfMIP resolves the block a MIP refers to within its (already
// cached) segment. Lookups try the symbolic name first, then the
// serial-number spelling.
func BlockOfMIP(seg *mem.SegMem, m MIP) (*mem.Block, error) {
	if b, ok := seg.BlockByName(m.Block); ok {
		return b, nil
	}
	if serial, ok := m.BlockSerial(); ok {
		if b, ok := seg.BlockBySerial(serial); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("swizzle: segment %q has no block %q", seg.Name(), m.Block)
}

// AddrOfMIP unswizzles a MIP into a local address within an already
// cached segment. Core resolves the segment (fetching it if needed)
// before calling this.
func AddrOfMIP(seg *mem.SegMem, m MIP) (mem.Addr, error) {
	if m.IsNil() {
		return 0, nil
	}
	b, err := BlockOfMIP(seg, m)
	if err != nil {
		return 0, err
	}
	pc := b.Layout.PrimCount
	if m.Offset < 0 || m.Offset >= pc*b.Count {
		return 0, fmt.Errorf("swizzle: offset %d out of range for block %q (%d units)",
			m.Offset, m.Block, pc*b.Count)
	}
	elem := m.Offset / pc
	within := m.Offset % pc
	byteOff, err := b.Layout.PrimToByte(within)
	if err != nil {
		return 0, err
	}
	return b.Addr + mem.Addr(elem*b.Layout.Size+byteOff), nil
}
