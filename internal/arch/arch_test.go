package arch

import (
	"encoding/binary"
	"testing"
)

func TestPredefinedProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q failed validation: %v", p.Name, err)
		}
	}
}

func TestProfilesAreDistinctAndCoverHeterogeneity(t *testing.T) {
	seen := make(map[string]bool)
	var hasBE, hasLE, has32, has64, hasLooseDouble bool
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.BigEndian() {
			hasBE = true
		} else {
			hasLE = true
		}
		if p.WordSize == 4 {
			has32 = true
		}
		if p.WordSize == 8 {
			has64 = true
		}
		if p.Float64Align == 4 {
			hasLooseDouble = true
		}
	}
	if !hasBE || !hasLE {
		t.Error("profiles must cover both byte orders")
	}
	if !has32 || !has64 {
		t.Error("profiles must cover both word sizes")
	}
	if !hasLooseDouble {
		t.Error("profiles must include an i386-style 4-byte double alignment")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		p    *Profile
	}{
		{"nil", nil},
		{"empty name", &Profile{Order: binary.BigEndian, WordSize: 4, Int64Align: 4, Float64Align: 4}},
		{"nil order", &Profile{Name: "x", WordSize: 4, Int64Align: 4, Float64Align: 4}},
		{"bad word size", &Profile{Name: "x", Order: binary.BigEndian, WordSize: 2, Int64Align: 4, Float64Align: 4}},
		{"bad int64 align", &Profile{Name: "x", Order: binary.BigEndian, WordSize: 4, Int64Align: 16, Float64Align: 4}},
		{"bad float64 align", &Profile{Name: "x", Order: binary.BigEndian, WordSize: 4, Int64Align: 4, Float64Align: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error")
			}
		})
	}
}

func TestMaxAlign(t *testing.T) {
	tests := []struct {
		p    *Profile
		want int
	}{
		{X86(), 4},
		{Alpha(), 8},
		{Sparc(), 8},
		{MIPS64(), 8},
		{AMD64(), 8},
	}
	for _, tt := range tests {
		if got := tt.p.MaxAlign(); got != tt.want {
			t.Errorf("%s MaxAlign() = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ByName(p.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", p.Name, err)
		}
		if got != p {
			t.Errorf("ByName(%q) returned a different instance", p.Name)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("ByName(vax) = nil error, want error")
	}
}

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096 (paper's Figure 5 knee at 1024 words)", PageSize)
	}
	if PageWords != 1024 {
		t.Errorf("PageWords = %d, want 1024", PageWords)
	}
	if 1<<PageShift != PageSize {
		t.Errorf("PageShift %d inconsistent with PageSize %d", PageShift, PageSize)
	}
}

func TestStringer(t *testing.T) {
	if got := X86().String(); got != "x86-32le" {
		t.Errorf("String() = %q, want x86-32le", got)
	}
}
