// Package arch defines simulated machine architecture profiles.
//
// InterWeave's defining challenge is sharing typed data across
// heterogeneous machines: different byte orders, pointer sizes, and
// alignment rules. In the original system each client ran on real
// hardware (Alpha, Sparc, x86, MIPS); in this reproduction a client's
// "machine" is a Profile that parameterizes its local data format.
// All local-format layout decisions (endianness, sizes, padding) are
// derived from the profile, so two clients with different profiles
// exercise exactly the translation paths the paper describes.
package arch

import (
	"encoding/binary"
	"fmt"
)

// Page geometry of the simulated virtual memory system. The paper's
// evaluation (Figure 5) shows a knee at a modification stride of 1024
// 32-bit words, i.e. 4 KiB pages, which this reproduction matches.
const (
	// PageShift is log2(PageSize).
	PageShift = 12
	// PageSize is the size in bytes of a virtual memory page.
	PageSize = 1 << PageShift
	// WordBytes is the granularity of twin/diff comparison: 32-bit
	// words, matching the paper's modification ratios and the
	// diff-run splicing description.
	WordBytes = 4
	// PageWords is the number of diff words per page.
	PageWords = PageSize / WordBytes
)

// Profile describes the local data format of one simulated machine
// architecture. Profiles are immutable after creation; the predefined
// profiles returned by the constructor functions below must not be
// modified.
type Profile struct {
	// Name identifies the profile in logs and error messages.
	Name string
	// Order is the byte order of local-format multi-byte values.
	Order binary.ByteOrder
	// WordSize is the pointer size in bytes (4 or 8).
	WordSize int
	// Int64Align is the alignment of 64-bit integers.
	Int64Align int
	// Float64Align is the alignment of 64-bit floats. On i386 this
	// is famously 4, not 8.
	Float64Align int
}

// Validate reports whether the profile is internally consistent.
func (p *Profile) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("arch: nil profile")
	case p.Name == "":
		return fmt.Errorf("arch: profile has empty name")
	case p.Order == nil:
		return fmt.Errorf("arch: profile %q has nil byte order", p.Name)
	case p.WordSize != 4 && p.WordSize != 8:
		return fmt.Errorf("arch: profile %q has word size %d, want 4 or 8", p.Name, p.WordSize)
	case p.Int64Align != 4 && p.Int64Align != 8:
		return fmt.Errorf("arch: profile %q has int64 alignment %d, want 4 or 8", p.Name, p.Int64Align)
	case p.Float64Align != 4 && p.Float64Align != 8:
		return fmt.Errorf("arch: profile %q has float64 alignment %d, want 4 or 8", p.Name, p.Float64Align)
	}
	return nil
}

// MaxAlign is the strictest alignment any primitive requires under
// this profile. Block starting addresses are aligned to this.
func (p *Profile) MaxAlign() int {
	a := p.WordSize
	if p.Int64Align > a {
		a = p.Int64Align
	}
	if p.Float64Align > a {
		a = p.Float64Align
	}
	return a
}

// BigEndian reports whether the profile stores multi-byte values most
// significant byte first.
func (p *Profile) BigEndian() bool {
	return p.Order == binary.ByteOrder(binary.BigEndian)
}

// String implements fmt.Stringer.
func (p *Profile) String() string { return p.Name }

// The predefined profiles mirror the platforms the original
// InterWeave ran on (Section 3 of the paper). Each function returns a
// shared immutable instance.

var (
	_x86 = &Profile{
		Name:         "x86-32le",
		Order:        binary.LittleEndian,
		WordSize:     4,
		Int64Align:   4,
		Float64Align: 4,
	}
	_alpha = &Profile{
		Name:         "alpha-64le",
		Order:        binary.LittleEndian,
		WordSize:     8,
		Int64Align:   8,
		Float64Align: 8,
	}
	_sparc = &Profile{
		Name:         "sparc-32be",
		Order:        binary.BigEndian,
		WordSize:     4,
		Int64Align:   8,
		Float64Align: 8,
	}
	_mips64 = &Profile{
		Name:         "mips-64be",
		Order:        binary.BigEndian,
		WordSize:     8,
		Int64Align:   8,
		Float64Align: 8,
	}
	_amd64 = &Profile{
		Name:         "x86-64le",
		Order:        binary.LittleEndian,
		WordSize:     8,
		Int64Align:   8,
		Float64Align: 8,
	}
)

// X86 is a 32-bit little-endian profile with i386 ABI alignment
// (doubles aligned to 4 bytes).
func X86() *Profile { return _x86 }

// Alpha is a 64-bit little-endian profile.
func Alpha() *Profile { return _alpha }

// Sparc is a 32-bit big-endian profile with natural alignment for
// 8-byte quantities.
func Sparc() *Profile { return _sparc }

// MIPS64 is a 64-bit big-endian profile.
func MIPS64() *Profile { return _mips64 }

// AMD64 is a 64-bit little-endian profile matching the host most
// benchmarks run on.
func AMD64() *Profile { return _amd64 }

// Profiles returns all predefined profiles. The returned slice is
// freshly allocated; the profiles themselves are shared and immutable.
func Profiles() []*Profile {
	return []*Profile{_x86, _alpha, _sparc, _mips64, _amd64}
}

// ByName returns the predefined profile with the given name.
func ByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown profile %q", name)
}
