package proxy

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/core"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
	"interweave/internal/types"
)

// startOriginServer launches a standalone origin server and returns
// its address and handle (some tests kill it mid-flight).
func startOriginServer(t *testing.T, opts server.Options) (string, *server.Server) {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

// startProxyOn launches a proxy on a loopback port. Tests get fast
// maintenance by default; pass SyncEvery < 0 to drive Maintain by
// hand.
func startProxyOn(t *testing.T, opts Options) (*Proxy, string) {
	t.Helper()
	if opts.SyncEvery == 0 {
		opts.SyncEvery = 25 * time.Millisecond
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { _ = p.Close() })
	waitUntil(t, 2*time.Second, "proxy serving", func() bool { return p.Addr() != nil })
	return p, ln.Addr().String()
}

func newTestClient(t *testing.T, name string) *core.Client {
	t.Helper()
	c, err := core.NewClient(core.Options{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// openVia opens seg with its route seeded at the proxy, the way a
// downstream client is deployed against the tier: same URL, different
// address.
func openVia(t *testing.T, c *core.Client, seg, proxyAddr string) *core.Segment {
	t.Helper()
	c.SeedRoute(seg, proxyAddr)
	h, err := c.Open(seg)
	if err != nil {
		t.Fatalf("Open(%q) via %s: %v", seg, proxyAddr, err)
	}
	return h
}

// writeVal writes v into the segment's single int32 block "v",
// allocating it on first use.
func writeVal(t *testing.T, c *core.Client, h *core.Segment, v int32) {
	t.Helper()
	if err := c.WLock(h); err != nil {
		t.Fatalf("WLock: %v", err)
	}
	var addr mem.Addr
	if b, ok := h.Mem().BlockByName("v"); ok {
		addr = b.Addr
	} else {
		blk, err := c.Alloc(h, types.Int32(), 1, "v")
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		addr = blk.Addr
	}
	if err := c.Heap().WriteI32(addr, v); err != nil {
		t.Fatalf("WriteI32: %v", err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatalf("WUnlock: %v", err)
	}
}

// readVal reads the segment's "v" block under a read lock. Non-fatal
// so tests can poll for propagation.
func readVal(c *core.Client, h *core.Segment) (int32, error) {
	if err := c.RLock(h); err != nil {
		return 0, err
	}
	defer func() { _ = c.RUnlock(h) }()
	b, ok := h.Mem().BlockByName("v")
	if !ok {
		return 0, fmt.Errorf("block %q missing", "v")
	}
	return c.Heap().ReadI32(b.Addr)
}

func waitVal(t *testing.T, c *core.Client, h *core.Segment, want int32, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := readVal(c, h)
		if err == nil && v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("value = %d (err %v), want %d after %v", v, err, want, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startClusterNodes brings up n servers in cluster mode with the
// given replication factor. Zero heartbeat disables failure
// detection.
func startClusterNodes(t *testing.T, n, replicas int, heartbeat time.Duration) ([]string, []*server.Server, []*cluster.Node) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*server.Server, n)
	nodes := make([]*cluster.Node, n)
	for i := range lns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node := cluster.NewNode(cluster.Options{
			Self:             addrs[i],
			Peers:            peers,
			Replicas:         replicas,
			Heartbeat:        heartbeat,
			FailureThreshold: 3,
			DialTimeout:      250 * time.Millisecond,
		})
		srv, err := server.New(server.Options{Cluster: node})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], srvs[i] = node, srv
		go func(s *server.Server, ln net.Listener) { _ = s.Serve(ln) }(srv, lns[i])
		node.Start()
		t.Cleanup(func() { node.Close(); _ = srv.Close() })
	}
	return addrs, srvs, nodes
}

// segOwnedBy searches for a segment name homed at home whose ring
// owner is owner.
func segOwnedBy(t *testing.T, ms protocol.Membership, home, owner string) string {
	t.Helper()
	ring := cluster.BuildRing(ms)
	for i := 0; i < 1024; i++ {
		seg := home + "/seg" + strconv.Itoa(i)
		if ring.Owner(seg) == owner {
			return seg
		}
	}
	t.Fatalf("no segment homed at %s owned by %s", home, owner)
	return ""
}

// TestProxyReadThrough is the tier's basic contract: a reader pointed
// at the proxy sees the origin's writes — immediately on first open
// (the mirror pulls current), and within the notification pipeline's
// latency afterwards.
func TestProxyReadThrough(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{})
	p, paddr := startProxyOn(t, Options{Upstream: origin})
	seg := origin + "/counter"

	w := newTestClient(t, "writer")
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w, hw, 1)

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	if v, err := readVal(r, hr); err != nil || v != 1 {
		t.Fatalf("first read via proxy = %d, %v; want 1", v, err)
	}

	// The proxy is subscribed upstream: a new version propagates
	// without the reader ever touching the origin.
	writeVal(t, w, hw, 2)
	waitVal(t, r, hr, 2, 5*time.Second)

	if p.ins.reads.Value() == 0 {
		t.Error("iw_proxy_reads_total did not count")
	}
	if p.ins.pulls.Value() == 0 {
		t.Error("iw_proxy_pulls_total did not count")
	}
	if p.ins.forwardedWrites.Value() != 0 {
		t.Errorf("reads forwarded %d writes upstream", p.ins.forwardedWrites.Value())
	}
}

// TestProxyWriteForward pins the write path: a writer pointed at the
// proxy has its WriteLock/WriteUnlock forwarded upstream, the commit
// is visible to direct origin readers, and the writer's route cache
// never leaves the proxy (no Redirect leaks downstream).
func TestProxyWriteForward(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{})
	p, paddr := startProxyOn(t, Options{Upstream: origin})
	seg := origin + "/fwd"

	w := newTestClient(t, "writer")
	hw := openVia(t, w, seg, paddr)
	writeVal(t, w, hw, 7)

	if got := w.RouteTo(seg); got != paddr {
		t.Fatalf("writer's route moved off the proxy: %q (want %q)", got, paddr)
	}
	if p.ins.forwardedWrites.Value() < 2 { // WriteLock + WriteUnlock
		t.Errorf("forwarded writes = %d, want >= 2", p.ins.forwardedWrites.Value())
	}

	r := newTestClient(t, "reader")
	hr, err := r.Open(seg) // direct: the origin must have the commit
	if err != nil {
		t.Fatal(err)
	}
	if v, err := readVal(r, hr); err != nil || v != 7 {
		t.Fatalf("direct read after proxied write = %d, %v; want 7", v, err)
	}
}

// TestProxyFullCoherenceReadAfterForwardedWrite pins policy-aware
// freshness: one client commits through the proxy, and a second
// client's Full-coherence read through the same proxy must see the
// commit immediately. The forwarded commit taught the mirror the new
// upstream version, so serving the older copy would violate the
// reader's policy — the read must block on a sync pull instead of
// waiting for notify propagation. Deterministic: no polling allowed.
func TestProxyFullCoherenceReadAfterForwardedWrite(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{})
	_, paddr := startProxyOn(t, Options{Upstream: origin, SyncEvery: -1})
	seg := origin + "/strict"

	w := newTestClient(t, "writer")
	hw := openVia(t, w, seg, paddr)
	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	for i := int32(1); i <= 5; i++ {
		writeVal(t, w, hw, i)
		if v, err := readVal(r, hr); err != nil || v != i {
			t.Fatalf("Full-coherence read via proxy after forwarded write = %d, %v; want %d", v, err, i)
		}
	}
}

// TestProxyChain runs a 2-level tree (origin <- p1 <- p2): a reader
// at the leaf sees writes made directly at the origin.
func TestProxyChain(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{})
	_, p1addr := startProxyOn(t, Options{Upstream: origin, Name: "p1"})
	_, p2addr := startProxyOn(t, Options{Upstream: p1addr, Name: "p2"})
	seg := origin + "/chained"

	w := newTestClient(t, "writer")
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w, hw, 10)

	r := newTestClient(t, "leaf-reader")
	hr := openVia(t, r, seg, p2addr)
	waitVal(t, r, hr, 10, 5*time.Second)

	// Propagation crosses both levels: origin -> p1 -> p2 -> reader.
	writeVal(t, w, hw, 11)
	waitVal(t, r, hr, 11, 5*time.Second)

	// A write through the leaf forwards up the whole chain.
	w2 := newTestClient(t, "leaf-writer")
	hw2 := openVia(t, w2, seg, p2addr)
	writeVal(t, w2, hw2, 12)
	rd := newTestClient(t, "direct-reader")
	hrd, err := rd.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := readVal(rd, hrd); err != nil || v != 12 {
		t.Fatalf("direct read after leaf write = %d, %v; want 12", v, err)
	}
}

// TestProxyStalenessMaxAge pins the staleness bound: with MaxAge set
// impossibly tight, every downstream read blocks on a synchronous
// upstream pull first, so a read issued right after a direct write
// must see it — no propagation wait allowed.
func TestProxyStalenessMaxAge(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{})
	p, paddr := startProxyOn(t, Options{Upstream: origin, MaxAge: time.Nanosecond, SyncEvery: -1})
	seg := origin + "/bounded"

	w := newTestClient(t, "writer")
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w, hw, 1)

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	for i := int32(2); i <= 4; i++ {
		writeVal(t, w, hw, i)
		if v, err := readVal(r, hr); err != nil || v != i {
			t.Fatalf("bounded read = %d, %v immediately after write; want %d", v, err, i)
		}
	}
	if p.ins.syncReads.Value() == 0 {
		t.Error("iw_proxy_reads_sync_pull_total did not count")
	}
}

// TestProxyAdmissionExemption pins the capacity contract: proxy
// sessions (upstream subscription and per-writer forwarders) do not
// consume the origin's MaxSessions budget, while direct client
// sessions still do.
func TestProxyAdmissionExemption(t *testing.T) {
	origin, _ := startOriginServer(t, server.Options{MaxSessions: 1})
	_, paddr := startProxyOn(t, Options{Upstream: origin})
	seg := origin + "/capped"

	// Writing through the proxy exercises both proxy session kinds at
	// the origin: the shared subscription session and a forwarder.
	w := newTestClient(t, "writer")
	hw := openVia(t, w, seg, paddr)
	writeVal(t, w, hw, 3)

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	if v, err := readVal(r, hr); err != nil || v != 3 {
		t.Fatalf("read via proxy = %d, %v; want 3", v, err)
	}

	// The origin still has its whole direct budget: one session fits,
	// the second is refused.
	mc, err := core.DialMux(origin, core.MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mc.Close() })
	if _, err := mc.NewSession("direct-1", "x86-32le"); err != nil {
		t.Fatalf("first direct session refused: %v", err)
	}
	if _, err := mc.NewSession("direct-2", "x86-32le"); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("second direct session: err = %v, want ErrOverloaded", err)
	}

	// The refusals upstream never touch the proxy's downstream service.
	r2 := newTestClient(t, "reader-2")
	hr2 := openVia(t, r2, seg, paddr)
	if v, err := readVal(r2, hr2); err != nil || v != 3 {
		t.Fatalf("read via proxy after refusals = %d, %v; want 3", v, err)
	}
}

// TestProxyRedirectNoLoop pins redirect handling with a clustered
// upstream: the segment's URL homes it at node A but the ring owns it
// at node B, so every forwarded request is answered with a Redirect at
// A. The proxy must chase that redirect itself — the downstream
// client's route cache stays aimed at the proxy and the write
// converges instead of looping.
func TestProxyRedirectNoLoop(t *testing.T) {
	addrs, _, nodes := startClusterNodes(t, 2, 1, 0)
	seg := segOwnedBy(t, nodes[0].Membership(), addrs[0], addrs[1])
	_, paddr := startProxyOn(t, Options{Upstream: addrs[0]})

	w := newTestClient(t, "writer")
	hw := openVia(t, w, seg, paddr)
	writeVal(t, w, hw, 5)
	if got := w.RouteTo(seg); got != paddr {
		t.Fatalf("redirect leaked downstream: writer routed to %q, want %q", got, paddr)
	}

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	if v, err := readVal(r, hr); err != nil || v != 5 {
		t.Fatalf("read via proxy = %d, %v; want 5", v, err)
	}
	if got := r.RouteTo(seg); got != paddr {
		t.Fatalf("redirect leaked downstream: reader routed to %q, want %q", got, paddr)
	}

	// The write really landed on the ring owner: a direct client
	// (which follows the redirect itself) reads it back.
	rd := newTestClient(t, "direct")
	hrd, err := rd.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := readVal(rd, hrd); err != nil || v != 5 {
		t.Fatalf("direct read = %d, %v; want 5", v, err)
	}
}

// TestProxyDegradedStandalone pins graceful degradation: when the
// (non-clustered) upstream dies, reads keep being served from the
// stale mirror with no error, counted as degraded, and the health
// verdict flips.
func TestProxyDegradedStandalone(t *testing.T) {
	origin, srv := startOriginServer(t, server.Options{})
	p, paddr := startProxyOn(t, Options{Upstream: origin, SyncEvery: -1, RPCTimeout: 500 * time.Millisecond})
	seg := origin + "/stale"

	w := newTestClient(t, "writer")
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w, hw, 1)

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	if v, err := readVal(r, hr); err != nil || v != 1 {
		t.Fatalf("read before origin death = %d, %v; want 1", v, err)
	}

	_ = srv.Close()
	p.Maintain() // the re-subscribe fails and marks the mirror degraded

	if got := p.Health(time.Now()); got.Status != HealthDegraded {
		t.Fatalf("health after upstream death = %+v, want %s", got, HealthDegraded)
	}
	for i := 0; i < 5; i++ {
		if v, err := readVal(r, hr); err != nil || v != 1 {
			t.Fatalf("degraded read = %d, %v; want stale 1 with no error", v, err)
		}
	}
	if p.ins.degradedReads.Value() == 0 {
		t.Error("iw_proxy_reads_degraded_total did not count")
	}
}

// TestProxyFailoverReroute is the chaos case: the proxy's configured
// upstream (and owner of the mirrored segment) dies in a 2-node
// replicated cluster. Reads through the proxy never fail — they serve
// stale during the window — and once the survivor promotes the
// segment, the proxy reroutes via the ring and converges on new
// writes without restarting.
func TestProxyFailoverReroute(t *testing.T) {
	addrs, srvs, nodes := startClusterNodes(t, 2, 2, 50*time.Millisecond)
	seg := segOwnedBy(t, nodes[0].Membership(), addrs[0], addrs[0])
	p, paddr := startProxyOn(t, Options{
		Upstream:   addrs[0],
		SyncEvery:  50 * time.Millisecond,
		RPCTimeout: time.Second,
	})

	w := newTestClient(t, "writer")
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w, hw, 1)

	r := newTestClient(t, "reader")
	hr := openVia(t, r, seg, paddr)
	waitVal(t, r, hr, 1, 5*time.Second)

	// The proxy must have joined the gossip before the upstream dies,
	// or it has no surviving peer to learn the new ring from.
	waitUntil(t, 5*time.Second, "proxy adopted cluster view", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.ms != nil
	})

	nodes[0].Close()
	_ = srvs[0].Close()

	// Degraded window: reads keep answering, stale but error-free.
	for i := 0; i < 20; i++ {
		if v, err := readVal(r, hr); err != nil || v != 1 {
			t.Fatalf("read during failover = %d, %v; want stale 1 with no error", v, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Wait for the survivor to declare the owner dead and promote.
	waitUntil(t, 10*time.Second, "survivor marked owner dead", func() bool {
		for _, m := range nodes[1].Membership().Members {
			if m.Addr == addrs[0] {
				return m.Dead
			}
		}
		return false
	})

	// A fresh writer seeded with the survivor's ring reroutes the
	// segment to the promoted owner and commits a new version.
	w2 := newTestClient(t, "writer-2")
	if err := w2.RefreshRing(addrs[1]); err != nil {
		t.Fatal(err)
	}
	h2, err := w2.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	writeVal(t, w2, h2, 2)

	// The proxy reroutes via the ring and catches up; the reader never
	// changed its address.
	waitVal(t, r, hr, 2, 10*time.Second)
}
