// Package proxy implements the read fan-out proxy tier (DESIGN.md
// §11). A Proxy subscribes to each segment exactly once upstream — as
// an ordinary relaxed-coherence client session, introduced with
// ProxyHello so the upstream exempts it from MaxSessions admission —
// and serves ReadLock/Subscribe/Notify to any number of downstream
// clients from a local mirror, while forwarding the write path
// (WriteLock/WriteUnlock/TxCommit/Resume) upstream untouched. The
// primary's notification fan-out then scales with the number of
// proxies, not the number of readers.
//
// Proxies chain: a proxy's upstream may itself be a proxy, forming a
// distribution tree. The mirror is a server.Segment kept at upstream
// version numbers (ApplyReplicatedDiff), so version arithmetic —
// coherence policies, HaveVersion freshness, at-most-once records —
// is identical at every level of the tree.
//
// Staleness is bounded, not hidden: a downstream ReadLock that finds
// the mirror more than MaxVersionLag versions or MaxAge behind blocks
// on a synchronous pull before being served. When the upstream is
// unreachable the proxy degrades gracefully — reads are served from
// the stale mirror (counted as degraded), and the upstream client's
// routing machinery reroutes via the cluster ring (RingGet) so a
// failover upstream is found without restarting the proxy.
package proxy

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/core"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
)

// DefaultSyncEvery is the maintenance cadence: how often every mirror
// re-subscribes upstream and probes for missed versions. It bounds
// the staleness window left by a lost Notify or a reconnect that
// silently dropped the upstream subscription.
const DefaultSyncEvery = time.Second

// Options configures a Proxy.
type Options struct {
	// Upstream is the address new segments are aimed at: an origin
	// server or another proxy (tree composition). Redirects and ring
	// reroutes may move individual segments off it later.
	Upstream string
	// Advertise is the address downstream clients (and the cluster's
	// gossip) reach this proxy at. Defaults to the listener address.
	Advertise string
	// Name identifies the proxy to its upstream (diagnostics).
	Name string
	// MaxVersionLag is the staleness bound in versions: a downstream
	// ReadLock finding the mirror further behind the last version
	// heard from upstream blocks on a synchronous pull first. Zero
	// disables the version bound.
	MaxVersionLag uint32
	// MaxAge is the staleness bound in time: a downstream ReadLock
	// finding the mirror unconfirmed for longer blocks on a
	// synchronous pull first. Zero disables the age bound.
	MaxAge time.Duration
	// SyncEvery is the maintenance cadence (DefaultSyncEvery if zero;
	// negative disables the loop — tests drive Maintain manually).
	SyncEvery time.Duration
	// MetricsAddr is the proxy's observability address, advertised
	// through gossip so fleet tools can scrape it.
	MetricsAddr string
	// Dial overrides TCP dialing (tests, faultnet).
	Dial func(addr string) (net.Conn, error)
	// DialTimeout and RPCTimeout bound upstream dials and round
	// trips, as in core.Options.
	DialTimeout time.Duration
	RPCTimeout  time.Duration
	// MaxRetries bounds upstream retry attempts (core.Options).
	MaxRetries int
	// Metrics, when non-nil, receives the proxy's instrumentation
	// (iw_proxy_*, OBSERVABILITY.md).
	Metrics *obs.Registry
	// Logf, when non-nil, receives diagnostics.
	Logf func(format string, args ...any)
}

// Proxy is one read fan-out proxy node.
type Proxy struct {
	opts  Options
	start time.Time

	mu        sync.Mutex // lifecycle: mirrors, conns, ln, ms, closed
	mirrors   map[string]*mirror
	conns     map[*downConn]struct{}
	sessions  int
	ln        net.Listener
	advertise string
	closed    bool
	// ms is the adopted upstream membership view, served to RingGet so
	// the fleet (origin gossip probes, iwtop, chained proxies) can see
	// through the proxy. Nil against a non-clustered upstream.
	ms *protocol.Membership

	// up is the single upstream client: one subscription session per
	// upstream server, shared by every mirror. Created in Serve, once
	// the advertised address is known (it rides in ProxyHello).
	up *core.Client

	done chan struct{}
	wg   sync.WaitGroup
	ins  *proxyInstruments
}

// mirror is the proxy's local copy of one segment, kept at upstream
// version numbers.
type mirror struct {
	name string

	// syncMu serializes pulls: one puller per mirror, whether the pull
	// was triggered by a Notify, the maintenance loop, or a stale
	// read. Never held together with p.mu; held across upstream RPCs.
	syncMu sync.Mutex

	mu sync.Mutex // guards everything below
	// seg is the mirrored content; seg.Version is the upstream version
	// it reflects (ApplyReplicatedDiff preserves the numbering).
	seg *server.Segment
	// upstreamVer is the newest version heard from upstream (Notify,
	// pull, or forwarded-write reply); seg.Version lags it until the
	// next pull lands.
	upstreamVer uint32
	// lastSync is when the mirror last confirmed itself current with
	// the upstream; the MaxAge staleness bound measures from here.
	lastSync time.Time
	// degraded marks the upstream unreachable as of the last attempt;
	// reads served meanwhile are counted as degraded.
	degraded bool
	// subs are the downstream subscriptions (same bookkeeping as the
	// server's subState).
	subs map[*downSess]*downSub
}

// downSub is one downstream subscription's coherence bookkeeping.
type downSub struct {
	policy      coherence.Policy
	haveVersion uint32
	unitsSince  int
	notified    bool
}

// New returns a proxy. It does not touch the network until Serve.
func New(opts Options) (*Proxy, error) {
	if opts.Upstream == "" {
		return nil, errors.New("proxy: Upstream is required")
	}
	if opts.SyncEvery == 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.Name == "" {
		opts.Name = "iwproxy"
	}
	p := &Proxy{
		opts:    opts,
		start:   time.Now(),
		mirrors: make(map[string]*mirror),
		conns:   make(map[*downConn]struct{}),
		done:    make(chan struct{}),
	}
	if opts.Metrics != nil {
		p.ins = newProxyInstruments(opts.Metrics)
		opts.Metrics.RegisterCollector(p.collectGauges)
	}
	return p, nil
}

func (p *Proxy) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (p *Proxy) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("proxy: listen %s: %w", addr, err)
	}
	return p.Serve(ln)
}

// Serve accepts downstream connections on ln until Close. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	p.ln = ln
	p.advertise = p.opts.Advertise
	if p.advertise == "" {
		p.advertise = ln.Addr().String()
	}
	up, err := core.NewClient(core.Options{
		Name:        p.opts.Name,
		ProxyAddr:   p.advertise,
		Dial:        p.opts.Dial,
		DialTimeout: p.opts.DialTimeout,
		RPCTimeout:  p.opts.RPCTimeout,
		MaxRetries:  p.opts.MaxRetries,
		OnNotify:    p.onUpstreamNotify,
	})
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.up = up
	p.mu.Unlock()

	if p.opts.SyncEvery > 0 {
		p.wg.Add(1)
		go p.maintainLoop()
	}
	// Join the fleet's gossip right away so observers see the proxy
	// before its first maintenance tick.
	p.gossipOnce()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return net.ErrClosed
			default:
				return fmt.Errorf("proxy: accept: %w", err)
			}
		}
		dc := p.newDownConn(conn)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		p.conns[dc] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			dc.serve()
		}()
	}
}

// Addr returns the downstream listener address.
func (p *Proxy) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close shuts the proxy down: stops accepting, drops every downstream
// connection, and closes the upstream client.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	up := p.up
	for dc := range p.conns {
		dc.shut()
	}
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	p.wg.Wait()
	if up != nil {
		_ = up.Close()
	}
	return nil
}

// ensureMirror returns the mirror for a segment, creating it — which
// opens the segment upstream, pulls it current, and subscribes — on
// first use. The returned Message is a relayable error reply when the
// upstream refused (e.g. CodeNoSegment with create=false). created
// reports whether this call created the segment upstream.
func (p *Proxy) ensureMirror(name string, create bool) (mir *mirror, created bool, errRep protocol.Message) {
	p.mu.Lock()
	if m, ok := p.mirrors[name]; ok {
		p.mu.Unlock()
		return m, false, nil
	}
	up := p.up
	p.mu.Unlock()
	if up == nil {
		return nil, false, errReply(protocol.CodeInternal, "proxy not serving yet")
	}
	p.aimUpstream(up, name)
	reply, err := up.Forward(name, &protocol.OpenSegment{Name: name, Create: create})
	if err != nil {
		return nil, false, relayErr("open", name, err)
	}
	or, ok := reply.(*protocol.OpenReply)
	if !ok {
		return nil, false, errReply(protocol.CodeInternal, "proxy: unexpected reply %T to upstream open", reply)
	}
	m := &mirror{
		name:        name,
		seg:         server.NewSegment(name),
		upstreamVer: or.Version,
		subs:        make(map[*downSess]*downSub),
	}
	p.mu.Lock()
	if existing, ok := p.mirrors[name]; ok {
		p.mu.Unlock()
		return existing, false, nil
	}
	p.mirrors[name] = m
	p.mu.Unlock()
	// Pull the mirror current and subscribe for pushes. Best effort:
	// a failure here leaves the mirror degraded at version 0, exactly
	// like an upstream that died one RPC later.
	_ = p.syncMirror(m)
	if err := p.subscribeUpstream(m); err != nil {
		p.setDegraded(m, err)
	}
	return m, or.Created, nil
}

// aimUpstream seeds the upstream client's route for a segment at the
// configured upstream when no route is cached — a proxy addresses its
// upstream, not the home server embedded in the segment URL (which,
// one level down a proxy tree, would bypass the tree entirely).
// Redirects and ring reroutes overwrite the seed normally.
func (p *Proxy) aimUpstream(c *core.Client, seg string) {
	if c.RouteTo(seg) == "" {
		c.SeedRoute(seg, p.opts.Upstream)
	}
}

// mirrorOf returns an existing mirror, nil when the segment has never
// been opened through this proxy.
func (p *Proxy) mirrorOf(name string) *mirror {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mirrors[name]
}

// subscribeUpstream (re-)registers the proxy's one upstream
// subscription for a mirror, with the mirror's current version as the
// baseline. Full coherence: the proxy must hear about every version,
// because its downstream subscribers' policies are applied locally.
// Idempotent; the maintenance loop re-issues it every tick so a
// reconnect that silently dropped the server-side subscription heals
// within one cycle.
func (p *Proxy) subscribeUpstream(m *mirror) error {
	m.mu.Lock()
	have := m.seg.Version
	m.mu.Unlock()
	p.aimUpstream(p.up, m.name)
	_, err := p.up.Forward(m.name, &protocol.Subscribe{Seg: m.name, HaveVersion: have, Policy: coherence.Full()})
	return err
}

// onUpstreamNotify handles an upstream-pushed invalidation: record the
// advertised version and pull asynchronously.
func (p *Proxy) onUpstreamNotify(seg string, version uint32) {
	m := p.mirrorOf(seg)
	if m == nil {
		return
	}
	if p.ins != nil {
		p.ins.upstreamNotifies.Inc()
	}
	p.noteUpstreamVersion(m, version)
}

// noteUpstreamVersion records that upstream reached at least version
// and triggers an asynchronous pull if the mirror is behind.
func (p *Proxy) noteUpstreamVersion(m *mirror, version uint32) {
	m.mu.Lock()
	if version > m.upstreamVer {
		m.upstreamVer = version
	}
	behind := m.seg.Version < m.upstreamVer
	m.mu.Unlock()
	if !behind {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.trySync(m)
	}()
}

// trySync pulls the mirror current unless a pull is already running
// (whoever holds syncMu will observe the bumped upstreamVer and catch
// up before releasing it).
func (p *Proxy) trySync(m *mirror) {
	if !m.syncMu.TryLock() {
		return
	}
	defer m.syncMu.Unlock()
	p.syncLocked(m)
}

// syncMirror pulls the mirror current, waiting for any in-flight pull
// first. Returns the first upstream error; the mirror keeps serving
// (degraded) regardless.
func (p *Proxy) syncMirror(m *mirror) error {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	return p.syncLocked(m)
}

// syncLocked drives ReadLock pulls until the mirror has caught up with
// the newest version heard from upstream. Caller holds m.syncMu.
func (p *Proxy) syncLocked(m *mirror) error {
	for {
		m.mu.Lock()
		have := m.seg.Version
		m.mu.Unlock()
		p.aimUpstream(p.up, m.name)
		reply, err := p.up.Forward(m.name, &protocol.ReadLock{Seg: m.name, HaveVersion: have, Policy: coherence.Full()})
		if err != nil {
			if p.ins != nil {
				p.ins.pullErrors.Inc()
			}
			p.setDegraded(m, err)
			return err
		}
		lr, ok := reply.(*protocol.LockReply)
		if !ok {
			return fmt.Errorf("proxy: unexpected reply %T to mirror pull", reply)
		}
		if p.ins != nil {
			p.ins.pulls.Inc()
		}
		now := time.Now()
		m.mu.Lock()
		if lr.Fresh || lr.Diff == nil {
			m.lastSync = now
			m.degraded = false
			if m.upstreamVer < m.seg.Version {
				m.upstreamVer = m.seg.Version
			}
			m.mu.Unlock()
			return nil
		}
		var sends []func()
		if lr.Diff.Version > m.seg.Version {
			modified, aerr := m.seg.ApplyReplicatedDiff(lr.Diff, lr.Diff.Version)
			if aerr != nil {
				m.mu.Unlock()
				return fmt.Errorf("proxy: applying pulled diff to %q: %w", m.name, aerr)
			}
			sends = p.fanout(m, lr.Diff.Version, modified)
		}
		if m.upstreamVer < lr.Diff.Version {
			m.upstreamVer = lr.Diff.Version
		}
		caughtUp := m.seg.Version >= m.upstreamVer
		if caughtUp {
			m.lastSync = now
			m.degraded = false
		}
		m.mu.Unlock()
		for _, send := range sends {
			send()
		}
		if caughtUp {
			return nil
		}
	}
}

// fanout advances downstream subscription counters after the mirror
// reached newVer and returns the Notify sends to perform once m.mu is
// released — the same contract as the server's updateSubscribers.
// Called with m.mu held.
func (p *Proxy) fanout(m *mirror, newVer uint32, modified int) []func() {
	var out []func()
	for ds, sub := range m.subs {
		sub.unitsSince += modified
		if sub.notified {
			continue
		}
		if sub.policy.ShouldUpdate(sub.haveVersion, newVer, sub.unitsSince, m.seg.TotalUnits()) {
			sub.notified = true
			target, name := ds, m.name
			out = append(out, func() {
				target.sendNotify(&protocol.Notify{Seg: name, Version: newVer})
			})
		}
	}
	if p.ins != nil && len(out) > 0 {
		p.ins.downstreamNotifies.Add(uint64(len(out)))
	}
	return out
}

// setDegraded marks a mirror's upstream unreachable.
func (p *Proxy) setDegraded(m *mirror, err error) {
	m.mu.Lock()
	was := m.degraded
	m.degraded = true
	m.mu.Unlock()
	if !was {
		p.logf("proxy: upstream of %q unreachable, serving stale: %v", m.name, err)
	}
}

// policyNeedsSync reports whether serving the mirror's current copy
// would violate the reader's own coherence policy, given what the
// proxy knows about the upstream (the newest version heard via notify
// or a forwarded commit). A mirror that is not known-behind satisfies
// every model — the proxy's Full-coherence upstream subscription
// keeps that knowledge one notify round trip fresh, the same latitude
// the origin's adaptive protocol gives direct clients. When the
// mirror is behind: Delta tolerates a known lag within its bound,
// Temporal tolerates one within its window since the last confirmed
// sync, and everything else (Full, and Diff conservatively — the
// units modified upstream beyond the mirror are unknowable) must
// block on a pull. Called with m.mu held.
func policyNeedsSync(policy coherence.Policy, m *mirror, now time.Time) bool {
	if m.upstreamVer <= m.seg.Version {
		return false
	}
	switch policy.Model {
	case coherence.ModelDelta:
		return m.upstreamVer-m.seg.Version > policy.Delta
	case coherence.ModelTemporal:
		return m.lastSync.IsZero() || now.Sub(m.lastSync) > policy.Window
	default:
		return true
	}
}

// staleExceeded reports whether the mirror violates the configured
// staleness bound. Called with m.mu held.
func (p *Proxy) staleExceeded(m *mirror, now time.Time) bool {
	if p.opts.MaxVersionLag > 0 && m.upstreamVer > m.seg.Version &&
		m.upstreamVer-m.seg.Version > p.opts.MaxVersionLag {
		return true
	}
	if p.opts.MaxAge > 0 && (m.lastSync.IsZero() || now.Sub(m.lastSync) > p.opts.MaxAge) {
		return true
	}
	return false
}

// Maintain runs one maintenance pass: refresh the upstream ring view
// and the gossip registration, then re-subscribe and probe every
// mirror. Exported so tests (and -sync-every<0 deployments) can drive
// it deterministically.
func (p *Proxy) Maintain() {
	p.gossipOnce()
	// Best effort: a clustered upstream seeds the upstream client's
	// ring so transport failures can reroute to a failover owner; a
	// standalone upstream answers with an error, which leaves the
	// client in single-server mode. When the configured upstream is
	// itself down, any live member of the adopted view will do — this
	// is what keeps the proxy routable across an upstream failover.
	p.mu.Lock()
	up := p.up
	p.mu.Unlock()
	if up == nil {
		return
	}
	for _, addr := range p.gossipCandidates() {
		if up.RefreshRing(addr) == nil {
			break
		}
	}
	p.mu.Lock()
	mirrors := make([]*mirror, 0, len(p.mirrors))
	for _, m := range p.mirrors {
		mirrors = append(mirrors, m)
	}
	p.mu.Unlock()
	for _, m := range mirrors {
		if err := p.subscribeUpstream(m); err != nil {
			p.setDegraded(m, err)
			continue
		}
		p.trySync(m)
	}
}

func (p *Proxy) maintainLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.Maintain()
		}
	}
}

// gossipOnce performs the proxy's "lite join" of the upstream
// cluster's gossip: fetch the membership view, adopt it, and — when
// this proxy is missing from it or marked dead — push back a view
// that includes it with the Proxy role bit set. Equal-epoch divergent
// views merge deterministically server-side (epoch+1), and the Proxy
// bit survives merges, so the fleet converges on a view where the
// proxy is visible but owns nothing. A non-clustered upstream answers
// RingGet with an error; the proxy then simply stays out of gossip.
func (p *Proxy) gossipOnce() {
	p.mu.Lock()
	var have uint64
	if p.ms != nil {
		have = p.ms.Epoch
	}
	self := p.advertise
	p.mu.Unlock()
	if self == "" {
		return
	}
	var rr *protocol.RingReply
	var peer string
	for _, addr := range p.gossipCandidates() {
		reply, err := p.rpc(addr, &protocol.RingGet{HaveEpoch: have})
		if err != nil {
			continue
		}
		if r, ok := reply.(*protocol.RingReply); ok {
			rr, peer = r, addr
			break
		}
	}
	if rr == nil {
		return
	}
	var push *protocol.Membership
	p.mu.Lock()
	if p.ms == nil || rr.Ms.Epoch > p.ms.Epoch {
		cp := rr.Ms.Clone()
		p.ms = &cp
	}
	found, dead := false, false
	for _, m := range p.ms.Members {
		if m.Addr == self {
			found, dead = true, m.Dead
			break
		}
	}
	if !found || dead {
		cp := p.ms.Clone()
		if !found {
			cp.Members = append(cp.Members, protocol.Member{
				Addr:        self,
				Proxy:       true,
				MetricsAddr: p.opts.MetricsAddr,
			})
		} else {
			for i := range cp.Members {
				if cp.Members[i].Addr == self {
					cp.Members[i].Dead = false
					cp.Members[i].Proxy = true
					cp.Members[i].MetricsAddr = p.opts.MetricsAddr
				}
			}
			// A revival must outrank the view that declared us dead.
			cp.Epoch++
		}
		p.ms = &cp
		push = &cp
	}
	p.mu.Unlock()
	if push != nil {
		_, _ = p.rpc(peer, &protocol.RingPush{Ms: *push})
	}
}

// gossipCandidates lists the addresses the proxy may learn the
// membership (and ring) from: the configured upstream first, then
// every other live non-proxy member of the adopted view. The fallback
// is what keeps gossip — and, through RefreshRing, the upstream
// client's failover routing — alive when the configured upstream is
// the node that died.
func (p *Proxy) gossipCandidates() []string {
	out := []string{p.opts.Upstream}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ms == nil {
		return out
	}
	for _, m := range p.ms.Members {
		if m.Dead || m.Proxy || m.Addr == p.opts.Upstream || m.Addr == p.advertise {
			continue
		}
		out = append(out, m.Addr)
	}
	return out
}

// rpc performs one request/reply round trip on a throwaway connection
// — the gossip path, which must not ride the upstream client's
// segment-routed machinery.
func (p *Proxy) rpc(addr string, m protocol.Message) (protocol.Message, error) {
	dial := p.opts.Dial
	if dial == nil {
		dt := p.opts.DialTimeout
		if dt <= 0 {
			dt = 10 * time.Second
		}
		dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, dt)
		}
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if to := p.opts.RPCTimeout; to > 0 {
		_ = conn.SetDeadline(time.Now().Add(to))
	}
	if err := protocol.WriteFrame(conn, 1, m); err != nil {
		return nil, err
	}
	for {
		id, reply, err := protocol.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		if id == 0 {
			continue // stray push on a throwaway conn
		}
		if er, isErr := reply.(*protocol.ErrorReply); isErr {
			return nil, er
		}
		return reply, nil
	}
}

// errReply builds a protocol error reply.
func errReply(code uint16, format string, args ...any) *protocol.ErrorReply {
	return &protocol.ErrorReply{Code: code, Text: fmt.Sprintf(format, args...)}
}

// relayErr converts an upstream call failure into the reply relayed
// downstream: server-reported errors pass through verbatim (the
// downstream client sees exactly what a direct client would), and
// transport failures become CodeInternal — never a Redirect, which the
// proxy always chases itself (a downstream client redirected into the
// cluster would bypass the tree).
func relayErr(op, seg string, err error) protocol.Message {
	var er *protocol.ErrorReply
	if errors.As(err, &er) {
		return er
	}
	return errReply(protocol.CodeInternal, "proxy: %s of %q upstream: %v", op, seg, err)
}
