package proxy

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/core"
	"interweave/internal/protocol"
)

// Downstream transport: the proxy speaks the same framed protocol as
// a server, including session multiplexing, so every existing client
// (core.Client, core.MuxConn, tools/loadgen) points at a proxy with
// nothing but an address change. The structure mirrors the server's
// wireConn — one bounded writer queue per connection, replies may
// block for space, notifications never do (a slow consumer is shed).

// downConnSendQueue bounds the per-connection writer queue.
const downConnSendQueue = 1024

// downWriteTimeout bounds how long a reply waits for queue space
// before the connection is declared stuck.
const downWriteTimeout = 10 * time.Second

// dFrame is one queued outbound frame.
type dFrame struct {
	sess *downSess
	sid  uint32
	id   uint32
	m    protocol.Message
}

// downConn is one accepted downstream connection and the logical
// sessions it carries.
type downConn struct {
	p    *Proxy
	conn net.Conn

	sendCh   chan dFrame
	dead     chan struct{}
	deadOnce sync.Once

	mu       sync.Mutex
	sessions map[uint32]*downSess

	handlers sync.WaitGroup
}

// downSess is one logical downstream session.
type downSess struct {
	dc  *downConn
	sid uint32

	name  string
	proxy bool // introduced by ProxyHello: a chained proxy

	queued atomic.Int32
	closed atomic.Bool

	// fwdMu guards fwd, the lazily created upstream write-forwarding
	// client. Each downstream session forwards through its own
	// upstream session so write-lock ownership and at-most-once
	// records stay per-writer upstream, exactly as if the writer had
	// connected directly.
	fwdMu sync.Mutex
	fwd   *core.Client

	// touchedMu guards touched, the mirrors this session subscribed
	// to; teardown sweeps only these.
	touchedMu sync.Mutex
	touched   map[*mirror]struct{}
}

func (p *Proxy) newDownConn(conn net.Conn) *downConn {
	return &downConn{
		p:        p,
		conn:     conn,
		sendCh:   make(chan dFrame, downConnSendQueue),
		dead:     make(chan struct{}),
		sessions: make(map[uint32]*downSess),
	}
}

func (dc *downConn) shut() {
	dc.deadOnce.Do(func() {
		close(dc.dead)
		_ = dc.conn.Close()
	})
}

func (dc *downConn) writeLoop() {
	for {
		select {
		case f := <-dc.sendCh:
			err := protocol.WriteFrameMux(dc.conn, f.id, f.m, protocol.TraceContext{}, f.sid)
			if f.sess != nil {
				f.sess.queued.Add(-1)
			}
			if err != nil {
				dc.shut()
				return
			}
		case <-dc.dead:
			return
		}
	}
}

func (dc *downConn) serve() {
	defer dc.cleanup()
	go dc.writeLoop()
	for {
		id, msg, _, sid, err := protocol.ReadFrameMux(dc.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				dc.p.logf("proxy: conn %s: %v", dc.conn.RemoteAddr(), err)
			}
			return
		}
		if _, ok := msg.(*protocol.SessionClose); ok {
			dc.mu.Lock()
			sess := dc.sessions[sid]
			dc.mu.Unlock()
			if sess != nil {
				dc.p.teardownSess(sess)
			}
			if !dc.sendConnLevel(sid, id, &protocol.Ack{}) {
				return
			}
			continue
		}
		sess, refusal := dc.sessionFor(sid, msg)
		if refusal != nil {
			if !dc.sendConnLevel(sid, id, refusal) {
				return
			}
			continue
		}
		if sid == 0 {
			// The implicit session keeps the classic contract: strict
			// per-connection ordering, handled inline.
			if reply := sess.dispatch(msg); reply != nil {
				if err := sess.send(id, reply); err != nil {
					return
				}
			}
		} else {
			dc.handlers.Add(1)
			go func() {
				defer dc.handlers.Done()
				if reply := sess.dispatch(msg); reply != nil {
					_ = sess.send(id, reply)
				}
			}()
		}
	}
}

// sessionFor resolves a frame's session, creating it lazily. Like the
// server, a non-zero session must be created by Hello (or a chained
// proxy's ProxyHello). Unlike the server there is no admission cap:
// absorbing arbitrarily many cheap read sessions is the proxy's job.
func (dc *downConn) sessionFor(sid uint32, msg protocol.Message) (*downSess, protocol.Message) {
	dc.mu.Lock()
	if sess, ok := dc.sessions[sid]; ok {
		dc.mu.Unlock()
		return sess, nil
	}
	dc.mu.Unlock()
	if sid != 0 {
		_, isHello := msg.(*protocol.Hello)
		_, isProxy := msg.(*protocol.ProxyHello)
		if !isHello && !isProxy {
			return nil, errReply(protocol.CodeNoSession, "no session %d on this connection (send Hello first)", sid)
		}
	}
	p := dc.p
	sess := &downSess{dc: dc, sid: sid}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errReply(protocol.CodeInternal, "proxy shutting down")
	}
	p.sessions++
	p.mu.Unlock()
	if p.ins != nil {
		p.ins.sessionsOpened.Inc()
	}
	dc.mu.Lock()
	dc.sessions[sid] = sess
	dc.mu.Unlock()
	return sess, nil
}

// sendConnLevel queues a frame belonging to no live session.
func (dc *downConn) sendConnLevel(sid, id uint32, m protocol.Message) bool {
	t := time.NewTimer(downWriteTimeout)
	defer t.Stop()
	select {
	case dc.sendCh <- dFrame{sid: sid, id: id, m: m}:
		return true
	case <-dc.dead:
		return false
	case <-t.C:
		dc.shut()
		return false
	}
}

// send queues a reply; it may block for queue space up to the write
// timeout, after which the stuck connection is evicted whole.
func (sess *downSess) send(id uint32, m protocol.Message) error {
	dc := sess.dc
	if sess.closed.Load() {
		if !dc.sendConnLevel(sess.sid, id, m) {
			return net.ErrClosed
		}
		return nil
	}
	sess.queued.Add(1)
	f := dFrame{sess: sess, sid: sess.sid, id: id, m: m}
	select {
	case dc.sendCh <- f:
		return nil
	default:
	}
	t := time.NewTimer(downWriteTimeout)
	defer t.Stop()
	select {
	case dc.sendCh <- f:
		return nil
	case <-dc.dead:
		sess.queued.Add(-1)
		return net.ErrClosed
	case <-t.C:
		sess.queued.Add(-1)
		dc.shut()
		return errors.New("proxy: write timeout")
	}
}

// sendNotify queues a Notify without ever blocking; a session (or
// connection) over its bound sheds the notification and is torn down,
// for the same reason the server evicts: a subscriber that missed a
// Notify would trust stale data forever.
func (sess *downSess) sendNotify(m protocol.Message) {
	if sess.closed.Load() {
		return
	}
	dc := sess.dc
	if int(sess.queued.Load()) >= downConnSendQueue/4 {
		dc.p.shedSess(sess, "session queue bound")
		return
	}
	sess.queued.Add(1)
	select {
	case dc.sendCh <- dFrame{sess: sess, sid: sess.sid, id: 0, m: m}:
	case <-dc.dead:
		sess.queued.Add(-1)
	default:
		sess.queued.Add(-1)
		dc.p.shedSess(sess, "connection queue full")
	}
}

func (p *Proxy) shedSess(sess *downSess, why string) {
	p.logf("proxy: conn %s session %d: shedding slow consumer (%s)", sess.dc.conn.RemoteAddr(), sess.sid, why)
	p.teardownSess(sess)
	if sess.sid == 0 {
		sess.dc.shut()
		return
	}
	select {
	case sess.dc.sendCh <- dFrame{sid: sess.sid, id: 0, m: errReply(protocol.CodeOverloaded, "session evicted: %s", why)}:
	default:
	}
}

// teardownSess removes one downstream session: its subscriptions on
// every touched mirror and its upstream forwarder. Idempotent.
func (p *Proxy) teardownSess(sess *downSess) {
	if !sess.closed.CompareAndSwap(false, true) {
		return
	}
	dc := sess.dc
	dc.mu.Lock()
	if dc.sessions[sess.sid] == sess {
		delete(dc.sessions, sess.sid)
	}
	dc.mu.Unlock()
	p.mu.Lock()
	p.sessions--
	p.mu.Unlock()
	sess.touchedMu.Lock()
	touched := make([]*mirror, 0, len(sess.touched))
	for m := range sess.touched {
		touched = append(touched, m)
	}
	sess.touched = nil
	sess.touchedMu.Unlock()
	for _, m := range touched {
		m.mu.Lock()
		delete(m.subs, sess)
		m.mu.Unlock()
	}
	sess.fwdMu.Lock()
	fwd := sess.fwd
	sess.fwd = nil
	sess.fwdMu.Unlock()
	if fwd != nil {
		// Closing the forwarder drops its upstream session, which
		// releases any write lock the downstream writer still held.
		_ = fwd.Close()
	}
}

func (sess *downSess) touch(m *mirror) {
	sess.touchedMu.Lock()
	if sess.touched == nil {
		sess.touched = make(map[*mirror]struct{})
	}
	sess.touched[m] = struct{}{}
	sess.touchedMu.Unlock()
}

func (dc *downConn) cleanup() {
	dc.shut()
	dc.mu.Lock()
	sessions := make([]*downSess, 0, len(dc.sessions))
	for _, sess := range dc.sessions {
		sessions = append(sessions, sess)
	}
	dc.mu.Unlock()
	for _, sess := range sessions {
		dc.p.teardownSess(sess)
	}
	dc.handlers.Wait()
	p := dc.p
	p.mu.Lock()
	delete(p.conns, dc)
	p.mu.Unlock()
}

// dispatch routes one downstream request. Reads are served from the
// mirror; the write path is forwarded upstream; ring RPCs serve the
// proxy's adopted view so gossip probes and fleet tools see through
// it.
func (sess *downSess) dispatch(msg protocol.Message) protocol.Message {
	p := sess.dc.p
	switch m := msg.(type) {
	case *protocol.Hello:
		sess.name = m.ClientName
		return &protocol.Ack{}
	case *protocol.ProxyHello:
		sess.name, sess.proxy = m.Name, true
		return &protocol.Ack{}
	case *protocol.RingGet:
		return p.handleRingGet()
	case *protocol.RingPush:
		return p.handleRingPush(m)
	case *protocol.OpenSegment:
		return p.handleOpen(m)
	case *protocol.ReadLock:
		return p.handleReadLock(sess, m)
	case *protocol.ReadUnlock:
		return &protocol.Ack{}
	case *protocol.Subscribe:
		return p.handleSubscribe(sess, m)
	case *protocol.Unsubscribe:
		return p.handleUnsubscribe(sess, m)
	case *protocol.WriteLock, *protocol.WriteUnlock, *protocol.TxCommit, *protocol.Resume:
		return p.forward(sess, msg)
	default:
		return errReply(protocol.CodeBadRequest, "unexpected message %T", msg)
	}
}

func (p *Proxy) handleRingGet() protocol.Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ms == nil {
		return errReply(protocol.CodeBadRequest, "proxy upstream not in cluster mode")
	}
	return &protocol.RingReply{Ms: p.ms.Clone()}
}

func (p *Proxy) handleRingPush(m *protocol.RingPush) protocol.Message {
	p.mu.Lock()
	if p.ms == nil || m.Ms.Epoch > p.ms.Epoch {
		cp := m.Ms.Clone()
		p.ms = &cp
	}
	p.mu.Unlock()
	return &protocol.Ack{}
}

func (p *Proxy) handleOpen(m *protocol.OpenSegment) protocol.Message {
	mir, created, errRep := p.ensureMirror(m.Name, m.Create)
	if errRep != nil {
		return errRep
	}
	mir.mu.Lock()
	defer mir.mu.Unlock()
	return &protocol.OpenReply{
		Created: created,
		Version: mir.seg.Version,
		Dir:     mir.seg.Directory(),
	}
}

func (p *Proxy) handleReadLock(sess *downSess, m *protocol.ReadLock) protocol.Message {
	mir, _, errRep := p.ensureMirror(m.Seg, false)
	if errRep != nil {
		return errRep
	}
	if p.ins != nil {
		p.ins.reads.Inc()
	}
	now := time.Now()
	mir.mu.Lock()
	stale := p.staleExceeded(mir, now) || policyNeedsSync(m.Policy, mir, now)
	mir.mu.Unlock()
	if stale {
		// The proxy-wide staleness bound or the reader's own coherence
		// policy rules out the mirror's copy: block this read on a
		// synchronous pull. A failed pull degrades to a stale serve —
		// availability over freshness, counted so operators see it.
		if p.ins != nil {
			p.ins.syncReads.Inc()
		}
		_ = p.syncMirror(mir)
	}
	mir.mu.Lock()
	defer mir.mu.Unlock()
	if mir.degraded && p.ins != nil {
		p.ins.degradedReads.Inc()
	}
	return p.freshness(mir, sess, m.HaveVersion, m.Policy)
}

// freshness decides whether the downstream reader needs an update and
// builds the LockReply from the mirror — the proxy-side twin of the
// server's freshnessReply. Called with mir.mu held.
func (p *Proxy) freshness(mir *mirror, sess *downSess, haveVer uint32, policy coherence.Policy) protocol.Message {
	seg := mir.seg
	unitsModified := 0
	if policy.Model == coherence.ModelDiff {
		if sub, ok := mir.subs[sess]; ok && sub.haveVersion == haveVer {
			unitsModified = sub.unitsSince
		} else {
			unitsModified = seg.UnitsModifiedSince(haveVer)
		}
	}
	if !policy.ShouldUpdate(haveVer, seg.Version, unitsModified, seg.TotalUnits()) {
		if sub, ok := mir.subs[sess]; ok {
			sub.notified = false
		}
		return &protocol.LockReply{Fresh: true}
	}
	d, err := seg.CollectDiff(haveVer)
	if err != nil {
		return errReply(protocol.CodeInternal, "collecting diff: %v", err)
	}
	if d == nil {
		if sub, ok := mir.subs[sess]; ok {
			sub.notified = false
		}
		return &protocol.LockReply{Fresh: true}
	}
	if sub, ok := mir.subs[sess]; ok {
		sub.haveVersion = seg.Version
		sub.unitsSince = 0
		sub.notified = false
	}
	return &protocol.LockReply{Diff: d}
}

func (p *Proxy) handleSubscribe(sess *downSess, m *protocol.Subscribe) protocol.Message {
	mir, _, errRep := p.ensureMirror(m.Seg, false)
	if errRep != nil {
		return errRep
	}
	if err := m.Policy.Validate(); err != nil {
		return errReply(protocol.CodeBadRequest, "%v", err)
	}
	sess.touch(mir)
	mir.mu.Lock()
	defer mir.mu.Unlock()
	if sess.closed.Load() {
		return errReply(protocol.CodeNoSession, "session closed")
	}
	mir.subs[sess] = &downSub{policy: m.Policy, haveVersion: m.HaveVersion}
	return &protocol.Ack{}
}

func (p *Proxy) handleUnsubscribe(sess *downSess, m *protocol.Unsubscribe) protocol.Message {
	mir := p.mirrorOf(m.Seg)
	if mir == nil {
		return errReply(protocol.CodeNoSegment, "no segment %q", m.Seg)
	}
	mir.mu.Lock()
	defer mir.mu.Unlock()
	delete(mir.subs, sess)
	return &protocol.Ack{}
}

// forward relays one write-path request upstream through the
// session's own forwarding client and returns the upstream's answer
// verbatim. The forwarder follows Redirects and reroutes via the ring
// itself, so a downstream client never sees a Redirect from a proxy —
// which is what makes redirect-following loop-free across the tree.
func (p *Proxy) forward(sess *downSess, msg protocol.Message) protocol.Message {
	seg := writeSegOf(msg)
	if seg == "" {
		return errReply(protocol.CodeBadRequest, "proxy: %T names no segment", msg)
	}
	fwd, err := sess.forwarder(p)
	if err != nil {
		return errReply(protocol.CodeInternal, "proxy: %v", err)
	}
	p.aimUpstream(fwd, seg)
	if p.ins != nil {
		p.ins.forwardedWrites.Inc()
	}
	reply, err := fwd.Forward(seg, msg)
	if err != nil {
		if p.ins != nil {
			p.ins.forwardErrors.Inc()
		}
		return relayErr("forwarding", seg, err)
	}
	// A committed write tells us the upstream version directly: nudge
	// the mirror so this proxy's own readers see the write without
	// waiting for the Notify round trip.
	switch r := reply.(type) {
	case *protocol.VersionReply:
		if mir := p.mirrorOf(seg); mir != nil {
			p.noteUpstreamVersion(mir, r.Version)
		}
	case *protocol.TxReply:
		if tx, ok := msg.(*protocol.TxCommit); ok {
			for i, part := range tx.Parts {
				if i >= len(r.Versions) {
					break
				}
				if mir := p.mirrorOf(part.Seg); mir != nil {
					p.noteUpstreamVersion(mir, r.Versions[i])
				}
			}
		}
	}
	return reply
}

// forwarder returns the session's upstream write-forwarding client,
// creating it on first use.
func (sess *downSess) forwarder(p *Proxy) (*core.Client, error) {
	sess.fwdMu.Lock()
	defer sess.fwdMu.Unlock()
	if sess.closed.Load() {
		return nil, errors.New("session closed")
	}
	if sess.fwd != nil {
		return sess.fwd, nil
	}
	c, err := core.NewClient(core.Options{
		Name:        p.opts.Name + "-fwd",
		ProxyAddr:   p.advertiseAddr(),
		Dial:        p.opts.Dial,
		DialTimeout: p.opts.DialTimeout,
		RPCTimeout:  p.opts.RPCTimeout,
		MaxRetries:  p.opts.MaxRetries,
	})
	if err != nil {
		return nil, err
	}
	sess.fwd = c
	return c, nil
}

func (p *Proxy) advertiseAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.advertise
}

// writeSegOf names the segment a write-path request routes by.
func writeSegOf(msg protocol.Message) string {
	switch m := msg.(type) {
	case *protocol.WriteLock:
		return m.Seg
	case *protocol.WriteUnlock:
		return m.Seg
	case *protocol.Resume:
		return m.Seg
	case *protocol.TxCommit:
		if len(m.Parts) > 0 {
			return m.Parts[0].Seg
		}
	}
	return ""
}
