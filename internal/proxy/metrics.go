package proxy

import (
	"encoding/json"
	"net/http"
	"time"

	"interweave/internal/obs"
)

// Metric names (OBSERVABILITY.md). The fan-out ratio — how many
// downstream notifications each upstream notification turned into —
// is pm_downstream_notifies / pm_upstream_notifies; the flagship
// scale property (primary fan-out grows with proxies, not readers) is
// asserted from the origin's iw_server_notifications_total against
// these.
const (
	pmReads              = "iw_proxy_reads_total"
	pmDegradedReads      = "iw_proxy_reads_degraded_total"
	pmSyncReads          = "iw_proxy_reads_sync_pull_total"
	pmPulls              = "iw_proxy_pulls_total"
	pmPullErrors         = "iw_proxy_pull_errors_total"
	pmForwardedWrites    = "iw_proxy_forwarded_writes_total"
	pmForwardErrors      = "iw_proxy_forward_errors_total"
	pmUpstreamNotifies   = "iw_proxy_upstream_notifies_total"
	pmDownstreamNotifies = "iw_proxy_downstream_notifies_total"
	pmSessions           = "iw_proxy_sessions"
	pmSessionsOpened     = "iw_proxy_sessions_opened_total"
	pmMirrors            = "iw_proxy_mirrors"
	pmDegradedMirrors    = "iw_proxy_mirrors_degraded"
	pmLagVersions        = "iw_proxy_upstream_lag_versions"
	pmLagSeconds         = "iw_proxy_upstream_lag_seconds"
	pmUptime             = "iw_proxy_uptime_seconds"
)

// proxyInstruments holds the proxy's counter handles.
type proxyInstruments struct {
	reads              *obs.Counter
	degradedReads      *obs.Counter
	syncReads          *obs.Counter
	pulls              *obs.Counter
	pullErrors         *obs.Counter
	forwardedWrites    *obs.Counter
	forwardErrors      *obs.Counter
	upstreamNotifies   *obs.Counter
	downstreamNotifies *obs.Counter
	sessionsOpened     *obs.Counter
}

func newProxyInstruments(reg *obs.Registry) *proxyInstruments {
	return &proxyInstruments{
		reads: reg.Counter(pmReads,
			"Downstream ReadLock requests served from the mirror."),
		degradedReads: reg.Counter(pmDegradedReads,
			"Reads served from a stale mirror while the upstream was unreachable."),
		syncReads: reg.Counter(pmSyncReads,
			"Reads that exceeded the staleness bound and blocked on a synchronous pull."),
		pulls: reg.Counter(pmPulls,
			"Mirror pull round trips against the upstream."),
		pullErrors: reg.Counter(pmPullErrors,
			"Mirror pulls that failed to reach the upstream."),
		forwardedWrites: reg.Counter(pmForwardedWrites,
			"Write-path requests (WriteLock/WriteUnlock/TxCommit/Resume) forwarded upstream."),
		forwardErrors: reg.Counter(pmForwardErrors,
			"Forwarded write-path requests that failed in transport (server-reported errors relay verbatim and are not counted)."),
		upstreamNotifies: reg.Counter(pmUpstreamNotifies,
			"Invalidation notifications received from the upstream (one per version heard, regardless of reader count)."),
		downstreamNotifies: reg.Counter(pmDownstreamNotifies,
			"Invalidation notifications fanned out to downstream subscribers."),
		sessionsOpened: reg.Counter(pmSessionsOpened,
			"Downstream sessions opened since start."),
	}
}

// collectGauges contributes the proxy's render-time gauges: session
// and mirror counts, and the worst-case upstream lag in versions and
// seconds across all mirrors.
func (p *Proxy) collectGauges(emit obs.GaugeEmit) {
	p.mu.Lock()
	sessions := p.sessions
	mirrors := make([]*mirror, 0, len(p.mirrors))
	for _, m := range p.mirrors {
		mirrors = append(mirrors, m)
	}
	p.mu.Unlock()
	now := time.Now()
	var maxLagV uint32
	var maxLagS float64
	degraded := 0
	for _, m := range mirrors {
		m.mu.Lock()
		if m.upstreamVer > m.seg.Version && m.upstreamVer-m.seg.Version > maxLagV {
			maxLagV = m.upstreamVer - m.seg.Version
		}
		if !m.lastSync.IsZero() {
			if age := now.Sub(m.lastSync).Seconds(); age > maxLagS {
				maxLagS = age
			}
		}
		if m.degraded {
			degraded++
		}
		m.mu.Unlock()
	}
	emit(pmSessions, "Live downstream sessions.", float64(sessions))
	emit(pmMirrors, "Segments mirrored from the upstream.", float64(len(mirrors)))
	emit(pmDegradedMirrors, "Mirrors whose upstream is currently unreachable.", float64(degraded))
	emit(pmLagVersions, "Worst mirror lag behind the newest upstream version heard.", float64(maxLagV))
	emit(pmLagSeconds, "Worst mirror age since last confirmed upstream sync.", maxLagS)
	emit(pmUptime, "Seconds since the proxy was constructed.", now.Sub(p.start).Seconds())
}

// Health statuses, mirroring the server's health plane vocabulary so
// fleet tooling treats proxies and servers uniformly.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// Health is the proxy's health verdict (same JSON shape as the
// server's /healthz document).
type Health struct {
	Status        string   `json:"status"`
	Reasons       []string `json:"reasons,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

// Health computes the proxy's verdict: degraded when any mirror's
// upstream is unreachable, ok otherwise. A degraded proxy still
// serves — that is the point — but operators should know.
func (p *Proxy) Health(now time.Time) Health {
	h := Health{Status: HealthOK, UptimeSeconds: now.Sub(p.start).Seconds()}
	p.mu.Lock()
	mirrors := make([]*mirror, 0, len(p.mirrors))
	for _, m := range p.mirrors {
		mirrors = append(mirrors, m)
	}
	p.mu.Unlock()
	for _, m := range mirrors {
		m.mu.Lock()
		if m.degraded {
			h.Status = HealthDegraded
			h.Reasons = append(h.Reasons, "upstream unreachable for "+m.name+" (serving stale)")
		}
		m.mu.Unlock()
	}
	return h
}

// HealthzHandler serves the health verdict as JSON. Degraded answers
// 200 — a degraded proxy is doing its job (serving stale reads while
// the upstream is away), not failing it.
func (p *Proxy) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := p.Health(time.Now())
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
}
