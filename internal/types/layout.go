package types

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"interweave/internal/arch"
)

// maxWalkSteps bounds the flattened walk of a single type to keep
// pathological declarations (huge arrays of non-uniform structs) from
// exhausting memory. Blocks holding n elements of a type share one
// walk, so ordinary workloads stay far below this.
const maxWalkSteps = 1 << 21

// Step is one run of identical primitive units in a Layout's
// flattened walk. A run covers Count units of the same Kind starting
// at ByteOff/PrimOff, each Size bytes long, spaced ByteStride bytes
// apart (ByteStride > Size when alignment padding separates units).
//
// Runs are the product of the paper's "isomorphic type descriptors"
// optimization: a struct of ten consecutive integers yields a single
// ten-element step rather than ten descriptors.
type Step struct {
	Kind       Kind
	Cap        int // string capacity in bytes
	ByteOff    int // local byte offset of the first unit
	PrimOff    int // primitive offset of the first unit
	Count      int
	Size       int // local size in bytes of one unit
	ByteStride int // byte distance between consecutive units
}

// end returns the byte offset just past the last unit's extent.
func (s *Step) end() int {
	return s.ByteOff + (s.Count-1)*s.ByteStride + s.Size
}

// FieldLoc locates a top-level struct field within a layout.
type FieldLoc struct {
	Name    string
	Type    *Type
	ByteOff int
	PrimOff int
}

// Layout is the instantiation of a Type for one machine profile. It
// records the local size and alignment (with machine-specific
// padding) and the flattened primitive walk that drives wire-format
// translation, diffing, and pointer swizzling.
type Layout struct {
	Type *Type
	Prof *arch.Profile
	// Size is the local byte size of one value, including tail
	// padding (a multiple of Align, as in C).
	Size int
	// Align is the required starting alignment.
	Align int
	// PrimCount is the number of primitive units per value.
	PrimCount int
	// Walk is the flattened primitive walk of one value, sorted by
	// both ByteOff and PrimOff (the orders coincide).
	Walk []Step
	// Fields locates the top-level fields when Type is a struct.
	Fields []FieldLoc
}

// Of computes the layout of t under profile p.
func Of(t *Type, p *arch.Profile) (*Layout, error) {
	return of(t, p, true)
}

// OfUncollapsed computes a layout whose walk keeps one step per
// primitive unit — the isomorphic descriptor optimization disabled —
// for the ablation benchmarks. Production code uses Of.
func OfUncollapsed(t *Type, p *arch.Profile) (*Layout, error) {
	return of(t, p, false)
}

func of(t *Type, p *arch.Profile, collapse bool) (*Layout, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := layoutCalc{prof: p, memo: make(map[*Type][2]int), noMerge: !collapse}
	size, align := c.sizeAlign(t)
	l := &Layout{
		Type:      t,
		Prof:      p,
		Size:      size,
		Align:     align,
		PrimCount: t.primCount,
	}
	if err := c.emit(&l.Walk, t, 0, 0); err != nil {
		return nil, err
	}
	if t.kind == KindStruct {
		l.Fields = c.fieldLocs(t)
	}
	return l, nil
}

// Field returns the location of the named top-level struct field.
func (l *Layout) Field(name string) (FieldLoc, bool) {
	for _, f := range l.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldLoc{}, false
}

type layoutCalc struct {
	prof    *arch.Profile
	memo    map[*Type][2]int
	noMerge bool
}

func (c *layoutCalc) primSizeAlign(t *Type) (int, int) {
	switch t.kind {
	case KindChar:
		return 1, 1
	case KindInt16:
		return 2, 2
	case KindInt32, KindFloat32:
		return 4, 4
	case KindInt64:
		return 8, c.prof.Int64Align
	case KindFloat64:
		return 8, c.prof.Float64Align
	case KindString:
		return t.cap, 1
	case KindPointer:
		return c.prof.WordSize, c.prof.WordSize
	default:
		return 0, 1
	}
}

func (c *layoutCalc) sizeAlign(t *Type) (int, int) {
	if t.kind.IsPrimitive() {
		return c.primSizeAlign(t)
	}
	if sa, ok := c.memo[t]; ok {
		return sa[0], sa[1]
	}
	var size, align int
	switch t.kind {
	case KindStruct:
		align = 1
		for _, f := range t.fields {
			fs, fa := c.sizeAlign(f.Type)
			size = alignUp(size, fa) + fs
			if fa > align {
				align = fa
			}
		}
		size = alignUp(size, align)
	case KindArray:
		es, ea := c.sizeAlign(t.elem)
		size, align = es*t.len, ea
	}
	c.memo[t] = [2]int{size, align}
	return size, align
}

func (c *layoutCalc) fieldLocs(t *Type) []FieldLoc {
	out := make([]FieldLoc, 0, len(t.fields))
	off, prim := 0, 0
	for _, f := range t.fields {
		fs, fa := c.sizeAlign(f.Type)
		off = alignUp(off, fa)
		out = append(out, FieldLoc{Name: f.Name, Type: f.Type, ByteOff: off, PrimOff: prim})
		off += fs
		prim += f.Type.primCount
	}
	return out
}

func (c *layoutCalc) emit(walk *[]Step, t *Type, byteOff, primOff int) error {
	if len(*walk) > maxWalkSteps {
		return errors.New("types: type too irregular; walk exceeds step limit")
	}
	switch t.kind {
	case KindStruct:
		off, prim := byteOff, primOff
		for _, f := range t.fields {
			fs, fa := c.sizeAlign(f.Type)
			off = alignUp(off, fa)
			if err := c.emit(walk, f.Type, off, prim); err != nil {
				return err
			}
			off += fs
			prim += f.Type.primCount
		}
	case KindArray:
		es, _ := c.sizeAlign(t.elem)
		if t.elem.kind.IsPrimitive() {
			// An array of primitives is one descriptor even without
			// the isomorphic optimization, which only concerns
			// collapsing distinct consecutive field descriptors.
			elSz, _ := c.primSizeAlign(t.elem)
			c.push(walk, Step{
				Kind: t.elem.kind, Cap: t.elem.cap,
				ByteOff: byteOff, PrimOff: primOff,
				Count: t.len, Size: elSz, ByteStride: es,
			})
			return nil
		}
		for i := 0; i < t.len; i++ {
			if err := c.emit(walk, t.elem, byteOff+i*es, primOff+i*t.elem.primCount); err != nil {
				return err
			}
		}
	default:
		sz, _ := c.primSizeAlign(t)
		c.push(walk, Step{
			Kind: t.kind, Cap: t.cap,
			ByteOff: byteOff, PrimOff: primOff,
			Count: 1, Size: sz, ByteStride: sz,
		})
	}
	return nil
}

// push appends a step, merging with the previous one unless the
// isomorphic optimization is disabled.
func (c *layoutCalc) push(walk *[]Step, s Step) {
	if c.noMerge {
		*walk = append(*walk, s)
		return
	}
	pushStep(walk, s)
}

// pushStep appends s, merging it into the previous step when the two
// form one arithmetic progression of identical units (the isomorphic
// descriptor optimization).
func pushStep(walk *[]Step, s Step) {
	n := len(*walk)
	if n == 0 {
		*walk = append(*walk, s)
		return
	}
	p := &(*walk)[n-1]
	if p.Kind != s.Kind || p.Cap != s.Cap || p.Size != s.Size {
		*walk = append(*walk, s)
		return
	}
	// Primitive offsets are always contiguous across sequential
	// emission, so only byte geometry decides mergeability.
	switch {
	case p.Count == 1 && s.Count == 1:
		d := s.ByteOff - p.ByteOff
		if d >= p.Size {
			p.ByteStride = d
			p.Count = 2
			return
		}
	case p.Count > 1 && s.Count == 1:
		if s.ByteOff == p.ByteOff+p.Count*p.ByteStride {
			p.Count++
			return
		}
	case p.Count == 1 && s.Count > 1:
		d := s.ByteOff - p.ByteOff
		if d == s.ByteStride && d >= p.Size {
			p.ByteStride = s.ByteStride
			p.Count = 1 + s.Count
			return
		}
	default:
		if p.ByteStride == s.ByteStride && s.ByteOff == p.ByteOff+p.Count*p.ByteStride {
			p.Count += s.Count
			return
		}
	}
	*walk = append(*walk, s)
}

func alignUp(v, a int) int {
	return (v + a - 1) / a * a
}

// StepAtPrim returns the index of the walk step containing the given
// primitive offset (within one element).
func (l *Layout) StepAtPrim(prim int) (int, bool) {
	if prim < 0 || prim >= l.PrimCount {
		return 0, false
	}
	i := sort.Search(len(l.Walk), func(i int) bool {
		return l.Walk[i].PrimOff > prim
	}) - 1
	if i < 0 {
		return 0, false
	}
	s := &l.Walk[i]
	if prim >= s.PrimOff+s.Count {
		return 0, false
	}
	return i, true
}

// PrimToByte maps a primitive offset (within one element) to the
// local byte offset of that unit.
func (l *Layout) PrimToByte(prim int) (int, error) {
	i, ok := l.StepAtPrim(prim)
	if !ok {
		return 0, fmt.Errorf("types: primitive offset %d out of range [0,%d)", prim, l.PrimCount)
	}
	s := &l.Walk[i]
	return s.ByteOff + (prim-s.PrimOff)*s.ByteStride, nil
}

// ByteToPrim maps a local byte offset (within one element) to the
// primitive offset of the unit containing it. A byte offset inside a
// unit's extent maps to that unit; an offset inside alignment padding
// is an error.
func (l *Layout) ByteToPrim(byteOff int) (int, error) {
	if byteOff < 0 || byteOff >= l.Size {
		return 0, fmt.Errorf("types: byte offset %d out of range [0,%d)", byteOff, l.Size)
	}
	i := sort.Search(len(l.Walk), func(i int) bool {
		return l.Walk[i].ByteOff > byteOff
	}) - 1
	if i < 0 {
		return 0, fmt.Errorf("types: byte offset %d precedes first unit", byteOff)
	}
	s := &l.Walk[i]
	j := (byteOff - s.ByteOff) / s.ByteStride
	if j >= s.Count {
		j = s.Count - 1
	}
	start := s.ByteOff + j*s.ByteStride
	if byteOff < start || byteOff >= start+s.Size {
		return 0, fmt.Errorf("types: byte offset %d falls in alignment padding", byteOff)
	}
	return s.PrimOff + j, nil
}

// PrimSpan returns the half-open range [p0, p1) of primitive offsets
// (within one element) whose byte extents intersect the byte range
// [b0, b1). ok is false when the byte range covers only padding.
func (l *Layout) PrimSpan(b0, b1 int) (p0, p1 int, ok bool) {
	if b0 < 0 {
		b0 = 0
	}
	if b1 > l.Size {
		b1 = l.Size
	}
	if b0 >= b1 || len(l.Walk) == 0 {
		return 0, 0, false
	}
	// First unit whose extent end exceeds b0.
	i := sort.Search(len(l.Walk), func(i int) bool {
		return l.Walk[i].end() > b0
	})
	if i == len(l.Walk) {
		return 0, 0, false
	}
	s := &l.Walk[i]
	var j int
	if b0 > s.ByteOff {
		j = (b0 - s.ByteOff) / s.ByteStride
		if b0 >= s.ByteOff+j*s.ByteStride+s.Size {
			j++ // b0 sits in the gap after unit j
		}
	}
	if j >= s.Count {
		i++
		if i == len(l.Walk) {
			return 0, 0, false
		}
		s = &l.Walk[i]
		j = 0
	}
	if s.ByteOff+j*s.ByteStride >= b1 {
		return 0, 0, false
	}
	p0 = s.PrimOff + j

	// Last unit whose start precedes b1.
	i = sort.Search(len(l.Walk), func(i int) bool {
		return l.Walk[i].ByteOff >= b1
	}) - 1
	s = &l.Walk[i]
	j = (b1 - 1 - s.ByteOff) / s.ByteStride
	if j >= s.Count {
		j = s.Count - 1
	}
	p1 = s.PrimOff + j + 1
	if p1 <= p0 {
		return 0, 0, false
	}
	return p0, p1, true
}

// Cache memoizes layouts per (type, profile). The zero value is ready
// to use and safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*Layout
}

type cacheKey struct {
	t *Type
	p *arch.Profile
}

// Of returns the cached layout of t under p, computing it on first
// use.
func (c *Cache) Of(t *Type, p *arch.Profile) (*Layout, error) {
	key := cacheKey{t, p}
	c.mu.Lock()
	if l, ok := c.m[key]; ok {
		c.mu.Unlock()
		return l, nil
	}
	c.mu.Unlock()
	l, err := Of(t, p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[cacheKey]*Layout)
	}
	c.m[key] = l
	c.mu.Unlock()
	return l, nil
}
