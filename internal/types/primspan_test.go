package types

import (
	"math/rand"
	"testing"

	"interweave/internal/arch"
)

// primSpanRef is the brute-force reference: the unit range whose byte
// extents intersect [b0, b1).
func primSpanRef(l *Layout, b0, b1 int) (int, int, bool) {
	if b0 < 0 {
		b0 = 0
	}
	if b1 > l.Size {
		b1 = l.Size
	}
	if b0 >= b1 {
		return 0, 0, false
	}
	first, last := -1, -1
	for _, s := range l.Walk {
		for i := 0; i < s.Count; i++ {
			start := s.ByteOff + i*s.ByteStride
			end := start + s.Size
			if start < b1 && b0 < end {
				u := s.PrimOff + i
				if first < 0 {
					first = u
				}
				last = u
			}
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return first, last + 1, true
}

// TestPrimSpanAgainstBruteForce compares PrimSpan with the reference
// over every byte range of several tricky layouts, and random ranges
// of random layouts.
func TestPrimSpanAgainstBruteForce(t *testing.T) {
	tricky := []*Type{
		mustStruct(t, "cd", Field{"c", Char()}, Field{"d", Float64()}),
		mustStruct(t, "padded",
			Field{"a", Char()},
			Field{"b", Int16()},
			Field{"c", Char()},
			Field{"d", Int64()},
			Field{"e", Char()},
		),
		mustArray(t, mustStruct(t, "ix", Field{"i", Int32()}, Field{"x", Char()}), 5),
		mustStruct(t, "strs",
			Field{"s", mustString(t, 7)},
			Field{"i", Int64()},
			Field{"t", mustString(t, 3)},
		),
	}
	for _, typ := range tricky {
		for _, p := range arch.Profiles() {
			l, err := Of(typ, p)
			if err != nil {
				t.Fatal(err)
			}
			for b0 := 0; b0 <= l.Size; b0++ {
				for b1 := b0; b1 <= l.Size; b1++ {
					g0, g1, gok := l.PrimSpan(b0, b1)
					w0, w1, wok := primSpanRef(l, b0, b1)
					if gok != wok || (gok && (g0 != w0 || g1 != w1)) {
						t.Fatalf("%v/%v PrimSpan(%d,%d) = %d,%d,%v; want %d,%d,%v",
							typ, p, b0, b1, g0, g1, gok, w0, w1, wok)
					}
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		typ := randomType(t, rng, 2)
		for _, p := range arch.Profiles() {
			l, err := Of(typ, p)
			if err != nil {
				t.Fatal(err)
			}
			for probe := 0; probe < 200; probe++ {
				b0 := rng.Intn(l.Size + 1)
				b1 := b0 + rng.Intn(l.Size+1-b0)
				g0, g1, gok := l.PrimSpan(b0, b1)
				w0, w1, wok := primSpanRef(l, b0, b1)
				if gok != wok || (gok && (g0 != w0 || g1 != w1)) {
					t.Fatalf("trial %d %v/%v PrimSpan(%d,%d) = %d,%d,%v; want %d,%d,%v",
						trial, typ, p, b0, b1, g0, g1, gok, w0, w1, wok)
				}
			}
		}
	}
}
