package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Descriptor encoding. Clients register their types with servers in
// this machine-independent form (the server "obtains its type
// descriptors from clients", Section 3.2), and clients that receive
// blocks of a previously unseen type decode it and derive a local
// layout. The format is a flat table of type definitions referring to
// one another by index, which represents recursive types naturally.

const descMagic = 0x49575459 // "IWTY"

// Marshal encodes the type graph rooted at t in canonical binary
// form. The encoding is deterministic for a given graph; graphs built
// by identical construction sequences (e.g. by the IDL compiler)
// produce identical bytes.
func Marshal(t *Type) ([]byte, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	idx := make(map[*Type]uint32)
	var order []*Type
	var visit func(t *Type)
	visit = func(t *Type) {
		if _, ok := idx[t]; ok {
			return
		}
		idx[t] = uint32(len(order))
		order = append(order, t)
		switch t.kind {
		case KindStruct:
			for _, f := range t.fields {
				visit(f.Type)
			}
		case KindArray, KindPointer:
			visit(t.elem)
		}
	}
	visit(t)

	buf := binary.BigEndian.AppendUint32(nil, descMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(order)))
	for _, u := range order {
		buf = append(buf, byte(u.kind))
		switch u.kind {
		case KindString:
			buf = binary.BigEndian.AppendUint32(buf, uint32(u.cap))
		case KindPointer:
			buf = binary.BigEndian.AppendUint32(buf, idx[u.elem])
		case KindArray:
			buf = binary.BigEndian.AppendUint32(buf, uint32(u.len))
			buf = binary.BigEndian.AppendUint32(buf, idx[u.elem])
		case KindStruct:
			buf = appendString(buf, u.name)
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(u.fields)))
			for _, f := range u.fields {
				buf = appendString(buf, f.Name)
				buf = binary.BigEndian.AppendUint32(buf, idx[f.Type])
			}
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

type descReader struct {
	b   []byte
	off int
}

func (r *descReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, errors.New("types: truncated descriptor")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *descReader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, errors.New("types: truncated descriptor")
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *descReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errors.New("types: truncated descriptor")
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *descReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.b) {
		return "", errors.New("types: truncated descriptor string")
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Unmarshal decodes a descriptor produced by Marshal. The first
// definition in the table is the root type.
func Unmarshal(b []byte) (*Type, error) {
	r := &descReader{b: b}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != descMagic {
		return nil, fmt.Errorf("types: bad descriptor magic %#x", magic)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("types: descriptor table size %d out of range", n)
	}
	// Pass 1: allocate shells so cross-references can be wired in
	// pass 2 regardless of definition order.
	defs := make([]*Type, n)
	for i := range defs {
		defs[i] = &Type{}
	}
	type fieldRef struct {
		name string
		idx  uint32
	}
	elemRef := make([]uint32, n)
	fieldRefs := make([][]fieldRef, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.u8()
		if err != nil {
			return nil, err
		}
		t := defs[i]
		t.kind = Kind(k)
		switch t.kind {
		case KindChar, KindInt16, KindInt32, KindInt64, KindFloat32, KindFloat64:
			// No payload.
		case KindString:
			c, err := r.u32()
			if err != nil {
				return nil, err
			}
			if c == 0 || c > 1<<24 {
				return nil, fmt.Errorf("types: string capacity %d out of range", c)
			}
			t.cap = int(c)
		case KindPointer:
			e, err := r.u32()
			if err != nil {
				return nil, err
			}
			elemRef[i] = e
		case KindArray:
			l, err := r.u32()
			if err != nil {
				return nil, err
			}
			e, err := r.u32()
			if err != nil {
				return nil, err
			}
			if l == 0 || l > 1<<28 {
				return nil, fmt.Errorf("types: array length %d out of range", l)
			}
			t.len = int(l)
			elemRef[i] = e
		case KindStruct:
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			t.name = name
			nf, err := r.u16()
			if err != nil {
				return nil, err
			}
			if nf == 0 {
				return nil, errors.New("types: struct descriptor with no fields")
			}
			refs := make([]fieldRef, nf)
			for j := range refs {
				fname, err := r.str()
				if err != nil {
					return nil, err
				}
				fi, err := r.u32()
				if err != nil {
					return nil, err
				}
				refs[j] = fieldRef{fname, fi}
			}
			fieldRefs[i] = refs
		default:
			return nil, fmt.Errorf("types: unknown kind %d in descriptor", k)
		}
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("types: %d trailing bytes in descriptor", len(b)-r.off)
	}
	// Pass 2: wire references.
	for i := uint32(0); i < n; i++ {
		t := defs[i]
		switch t.kind {
		case KindPointer, KindArray:
			if elemRef[i] >= n {
				return nil, fmt.Errorf("types: type reference %d out of range", elemRef[i])
			}
			t.elem = defs[elemRef[i]]
		case KindStruct:
			t.fields = make([]Field, len(fieldRefs[i]))
			for j, fr := range fieldRefs[i] {
				if fr.idx >= n {
					return nil, fmt.Errorf("types: type reference %d out of range", fr.idx)
				}
				t.fields[j] = Field{Name: fr.name, Type: defs[fr.idx]}
			}
		}
	}
	// Pass 3: compute primitive counts and mark complete. Cycles
	// through non-pointer edges are detected here.
	for _, t := range defs {
		if _, err := computePrim(t, make(map[*Type]int)); err != nil {
			return nil, err
		}
	}
	for _, t := range defs {
		t.complete = true
	}
	if err := Validate(defs[0]); err != nil {
		return nil, fmt.Errorf("types: decoded descriptor invalid: %w", err)
	}
	return defs[0], nil
}

func computePrim(t *Type, state map[*Type]int) (int, error) {
	if t.primCount != 0 {
		return t.primCount, nil
	}
	if t.kind.IsPrimitive() {
		t.primCount = 1
		return 1, nil
	}
	switch state[t] {
	case stateVisiting:
		return 0, errors.New("types: descriptor contains a non-pointer cycle")
	case stateDone:
		return t.primCount, nil
	}
	state[t] = stateVisiting
	var count int
	switch t.kind {
	case KindArray:
		e, err := computePrim(t.elem, state)
		if err != nil {
			return 0, err
		}
		count = e * t.len
	case KindStruct:
		for _, f := range t.fields {
			e, err := computePrim(f.Type, state)
			if err != nil {
				return 0, err
			}
			count += e
		}
	}
	state[t] = stateDone
	t.primCount = count
	return count, nil
}

// Fingerprint returns a 64-bit hash of the type's canonical encoding,
// used as a fast identity hint for descriptor deduplication.
func Fingerprint(t *Type) (uint64, error) {
	b, err := Marshal(t)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // fnv.Write never fails
	return h.Sum64(), nil
}

// Equal reports structural equality of two type graphs, including
// recursive ones. Struct and field names participate in equality.
func Equal(a, b *Type) bool {
	return equalTypes(a, b, make(map[[2]*Type]bool))
}

func equalTypes(a, b *Type, seen map[[2]*Type]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind {
		return false
	}
	key := [2]*Type{a, b}
	if seen[key] {
		return true // coinductively equal unless a difference is found
	}
	seen[key] = true
	switch a.kind {
	case KindString:
		return a.cap == b.cap
	case KindPointer:
		return equalTypes(a.elem, b.elem, seen)
	case KindArray:
		return a.len == b.len && equalTypes(a.elem, b.elem, seen)
	case KindStruct:
		if a.name != b.name || len(a.fields) != len(b.fields) {
			return false
		}
		for i := range a.fields {
			if a.fields[i].Name != b.fields[i].Name {
				return false
			}
			if !equalTypes(a.fields[i].Type, b.fields[i].Type, seen) {
				return false
			}
		}
		return true
	default:
		return true
	}
}
