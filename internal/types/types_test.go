package types

import (
	"math/rand"
	"strconv"
	"testing"

	"interweave/internal/arch"
)

// mustString etc. keep test tables terse.
func mustString(t *testing.T, c int) *Type {
	t.Helper()
	s, err := StringOf(c)
	if err != nil {
		t.Fatalf("StringOf(%d): %v", c, err)
	}
	return s
}

func mustPtr(t *testing.T, e *Type) *Type {
	t.Helper()
	p, err := PointerTo(e)
	if err != nil {
		t.Fatalf("PointerTo: %v", err)
	}
	return p
}

func mustArray(t *testing.T, e *Type, n int) *Type {
	t.Helper()
	a, err := ArrayOf(e, n)
	if err != nil {
		t.Fatalf("ArrayOf(%v,%d): %v", e, n, err)
	}
	return a
}

func mustStruct(t *testing.T, name string, fields ...Field) *Type {
	t.Helper()
	s, err := StructOf(name, fields...)
	if err != nil {
		t.Fatalf("StructOf(%q): %v", name, err)
	}
	return s
}

// listNode builds the paper's Figure 1 node_t: {int key; node_t *next}.
func listNode(t *testing.T) *Type {
	t.Helper()
	n := NewStruct("node_t")
	next, err := PointerTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFields(Field{"key", Int32()}, Field{"next", next}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPrimitiveSingletons(t *testing.T) {
	tests := []struct {
		t    *Type
		kind Kind
	}{
		{Char(), KindChar},
		{Int16(), KindInt16},
		{Int32(), KindInt32},
		{Int64(), KindInt64},
		{Float32(), KindFloat32},
		{Float64(), KindFloat64},
	}
	for _, tt := range tests {
		if tt.t.Kind() != tt.kind {
			t.Errorf("kind = %v, want %v", tt.t.Kind(), tt.kind)
		}
		if tt.t.PrimCount() != 1 {
			t.Errorf("%v PrimCount = %d, want 1", tt.kind, tt.t.PrimCount())
		}
		if !tt.t.Complete() {
			t.Errorf("%v not complete", tt.kind)
		}
		if err := Validate(tt.t); err != nil {
			t.Errorf("Validate(%v): %v", tt.kind, err)
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := StringOf(0); err == nil {
		t.Error("StringOf(0) succeeded")
	}
	if _, err := PointerTo(nil); err == nil {
		t.Error("PointerTo(nil) succeeded")
	}
	if _, err := ArrayOf(nil, 3); err == nil {
		t.Error("ArrayOf(nil) succeeded")
	}
	if _, err := ArrayOf(Int32(), 0); err == nil {
		t.Error("ArrayOf len 0 succeeded")
	}
	if _, err := ArrayOf(NewStruct("shell"), 3); err == nil {
		t.Error("ArrayOf(incomplete) succeeded")
	}
	if _, err := StructOf("s"); err == nil {
		t.Error("empty struct succeeded")
	}
	if _, err := StructOf("s", Field{"", Int32()}); err == nil {
		t.Error("unnamed field succeeded")
	}
	if _, err := StructOf("s", Field{"a", Int32()}, Field{"a", Int32()}); err == nil {
		t.Error("duplicate field succeeded")
	}
	if _, err := StructOf("s", Field{"a", nil}); err == nil {
		t.Error("nil field type succeeded")
	}
	if _, err := StructOf("s", Field{"a", NewStruct("shell")}); err == nil {
		t.Error("incomplete field type succeeded")
	}
	sh := NewStruct("x")
	if err := sh.SetFields(Field{"a", Int32()}); err != nil {
		t.Fatal(err)
	}
	if err := sh.SetFields(Field{"b", Int32()}); err == nil {
		t.Error("second SetFields succeeded")
	}
	if err := Int32().SetFields(Field{"a", Int32()}); err == nil {
		t.Error("SetFields on primitive succeeded")
	}
}

func TestRecursiveType(t *testing.T) {
	n := listNode(t)
	if err := Validate(n); err != nil {
		t.Fatalf("Validate(node_t): %v", err)
	}
	if n.PrimCount() != 2 {
		t.Errorf("node_t PrimCount = %d, want 2", n.PrimCount())
	}
	if got := n.Field(1).Type.Elem(); got != n {
		t.Error("next pointer does not target node_t itself")
	}
}

func TestValidateIncomplete(t *testing.T) {
	shell := NewStruct("shell")
	if err := Validate(shell); err == nil {
		t.Error("Validate(incomplete shell) succeeded")
	}
	p := mustPtr(t, shell)
	if err := Validate(p); err == nil {
		t.Error("Validate(pointer to incomplete shell) succeeded")
	}
}

func TestPrimCounts(t *testing.T) {
	mix := mustStruct(t, "mix",
		Field{"i", Int32()},
		Field{"d", Float64()},
		Field{"s", mustString(t, 256)},
		Field{"t", mustString(t, 4)},
		Field{"p", mustPtr(t, Int32())},
	)
	if mix.PrimCount() != 5 {
		t.Errorf("mix PrimCount = %d, want 5", mix.PrimCount())
	}
	arr := mustArray(t, mix, 7)
	if arr.PrimCount() != 35 {
		t.Errorf("[7]mix PrimCount = %d, want 35", arr.PrimCount())
	}
}

func TestLayoutX86VsAlphaDoubles(t *testing.T) {
	// struct { char c; double d; } — the classic alignment divergence:
	// i386 aligns doubles to 4, Alpha to 8.
	s := mustStruct(t, "cd", Field{"c", Char()}, Field{"d", Float64()})
	x86, err := Of(s, arch.X86())
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := Of(s, arch.Alpha())
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := x86.Field("d"); f.ByteOff != 4 {
		t.Errorf("x86 d offset = %d, want 4", f.ByteOff)
	}
	if x86.Size != 12 {
		t.Errorf("x86 size = %d, want 12", x86.Size)
	}
	if f, _ := alpha.Field("d"); f.ByteOff != 8 {
		t.Errorf("alpha d offset = %d, want 8", f.ByteOff)
	}
	if alpha.Size != 16 {
		t.Errorf("alpha size = %d, want 16", alpha.Size)
	}
}

func TestLayoutPointerSizes(t *testing.T) {
	n := listNode(t)
	l32, err := Of(n, arch.Sparc())
	if err != nil {
		t.Fatal(err)
	}
	l64, err := Of(n, arch.MIPS64())
	if err != nil {
		t.Fatal(err)
	}
	if l32.Size != 8 { // int32 @0, ptr @4
		t.Errorf("sparc node size = %d, want 8", l32.Size)
	}
	if l64.Size != 16 { // int32 @0, pad, ptr @8
		t.Errorf("mips64 node size = %d, want 16", l64.Size)
	}
	if f, _ := l64.Field("next"); f.ByteOff != 8 || f.PrimOff != 1 {
		t.Errorf("mips64 next at byte %d prim %d, want 8,1", f.ByteOff, f.PrimOff)
	}
}

func TestIsomorphicCollapseStructOfInts(t *testing.T) {
	// The paper's example: a struct of consecutive integers becomes a
	// single array-like descriptor.
	fields := make([]Field, 32)
	for i := range fields {
		fields[i] = Field{Name: "f" + strconv.Itoa(i), Type: Int32()}
	}
	s := mustStruct(t, "int_struct", fields...)
	l, err := Of(s, arch.AMD64())
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Walk) != 1 {
		t.Fatalf("walk has %d steps, want 1 (isomorphic collapse)", len(l.Walk))
	}
	st := l.Walk[0]
	if st.Kind != KindInt32 || st.Count != 32 || st.ByteStride != 4 {
		t.Errorf("step = %+v, want int32 x32 stride 4", st)
	}
	// An array of such structs keeps collapsing across elements.
	a := mustArray(t, s, 100)
	la, err := Of(a, arch.AMD64())
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Walk) != 1 || la.Walk[0].Count != 3200 {
		t.Fatalf("array walk = %d steps, first count %d; want 1 step of 3200",
			len(la.Walk), la.Walk[0].Count)
	}
}

func TestNoCollapseAcrossKinds(t *testing.T) {
	id := mustStruct(t, "int_double", Field{"i", Int32()}, Field{"d", Float64()})
	l, err := Of(id, arch.Alpha())
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Walk) != 2 {
		t.Fatalf("walk = %d steps, want 2", len(l.Walk))
	}
	if l.Walk[0].Kind != KindInt32 || l.Walk[1].Kind != KindFloat64 {
		t.Errorf("walk kinds = %v,%v", l.Walk[0].Kind, l.Walk[1].Kind)
	}
	if l.Walk[1].ByteOff != 8 {
		t.Errorf("double at byte %d, want 8 (padding)", l.Walk[1].ByteOff)
	}
}

func TestCollapseWithPaddingStride(t *testing.T) {
	// struct { int32 a; int32 pad-inducing; } as array elements where
	// tail padding makes stride exceed unit size:
	// struct { int64 a; int32 b; } on alpha: size 16, b at 8,
	// arrays of it give an int64 run stride 16 and int32 run stride 16.
	s := mustStruct(t, "s", Field{"a", Int64()}, Field{"b", Int32()})
	a := mustArray(t, s, 4)
	l, err := Of(a, arch.Alpha())
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 64 {
		t.Fatalf("size = %d, want 64", l.Size)
	}
	if len(l.Walk) != 8 {
		// int64@0, int32@8, int64@16, ... — alternating kinds cannot
		// merge, so 8 steps.
		t.Fatalf("walk = %d steps, want 8", len(l.Walk))
	}
}

func TestWalkInvariants(t *testing.T) {
	typesToCheck := []*Type{
		Int32(),
		mustArray(t, Float64(), 77),
		listNode(t),
		mustStruct(t, "mix",
			Field{"i", Int32()},
			Field{"d", Float64()},
			Field{"s", mustString(t, 16)},
			Field{"c", Char()},
			Field{"p", mustPtr(t, Int32())},
			Field{"j", Int64()},
		),
		mustArray(t, mustStruct(t, "cd", Field{"c", Char()}, Field{"d", Float64()}), 9),
	}
	for _, typ := range typesToCheck {
		for _, p := range arch.Profiles() {
			l, err := Of(typ, p)
			if err != nil {
				t.Fatalf("Of(%v,%v): %v", typ, p, err)
			}
			checkWalkInvariants(t, l)
		}
	}
}

func checkWalkInvariants(t *testing.T, l *Layout) {
	t.Helper()
	prim := 0
	prevEnd := 0
	for i, s := range l.Walk {
		if s.PrimOff != prim {
			t.Fatalf("%v/%v step %d: PrimOff %d, want %d", l.Type, l.Prof, i, s.PrimOff, prim)
		}
		if s.ByteOff < prevEnd {
			t.Fatalf("%v/%v step %d overlaps previous (byte %d < %d)", l.Type, l.Prof, i, s.ByteOff, prevEnd)
		}
		if s.Count < 1 || s.Size < 1 || s.ByteStride < s.Size {
			t.Fatalf("%v/%v step %d malformed: %+v", l.Type, l.Prof, i, s)
		}
		prim += s.Count
		prevEnd = s.end()
	}
	if prim != l.PrimCount {
		t.Fatalf("%v/%v walk covers %d units, want %d", l.Type, l.Prof, prim, l.PrimCount)
	}
	if prevEnd > l.Size {
		t.Fatalf("%v/%v walk extends to %d past size %d", l.Type, l.Prof, prevEnd, l.Size)
	}
	// Roundtrip every unit.
	for u := 0; u < l.PrimCount; u++ {
		b, err := l.PrimToByte(u)
		if err != nil {
			t.Fatalf("PrimToByte(%d): %v", u, err)
		}
		back, err := l.ByteToPrim(b)
		if err != nil {
			t.Fatalf("ByteToPrim(%d): %v", b, err)
		}
		if back != u {
			t.Fatalf("roundtrip unit %d -> byte %d -> %d", u, b, back)
		}
	}
	// Full-range span covers all units.
	p0, p1, ok := l.PrimSpan(0, l.Size)
	if !ok || p0 != 0 || p1 != l.PrimCount {
		t.Fatalf("PrimSpan(full) = %d,%d,%v; want 0,%d,true", p0, p1, ok, l.PrimCount)
	}
}

func TestByteToPrimPadding(t *testing.T) {
	s := mustStruct(t, "cd", Field{"c", Char()}, Field{"d", Float64()})
	l, err := Of(s, arch.Alpha())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ByteToPrim(3); err == nil {
		t.Error("ByteToPrim in padding succeeded")
	}
	if _, err := l.ByteToPrim(-1); err == nil {
		t.Error("ByteToPrim(-1) succeeded")
	}
	if _, err := l.ByteToPrim(l.Size); err == nil {
		t.Error("ByteToPrim(size) succeeded")
	}
	// Mid-unit byte maps to the containing unit.
	p, err := l.ByteToPrim(12) // inside the double at [8,16)
	if err != nil || p != 1 {
		t.Errorf("ByteToPrim(12) = %d,%v; want 1,nil", p, err)
	}
}

func TestPrimSpan(t *testing.T) {
	s := mustStruct(t, "cd", Field{"c", Char()}, Field{"d", Float64()})
	l, err := Of(s, arch.Alpha()) // char@0, pad 1-7, double@8..15
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		b0, b1, p0, p1 int
		ok             bool
	}{
		{0, 1, 0, 1, true},    // just the char
		{0, 16, 0, 2, true},   // everything
		{2, 6, 0, 0, false},   // padding only
		{2, 9, 1, 2, true},    // padding into double
		{8, 16, 1, 2, true},   // exactly the double
		{15, 16, 1, 2, true},  // tail byte of double
		{0, 0, 0, 0, false},   // empty
		{-5, 100, 0, 2, true}, // clamped
	}
	for _, tt := range tests {
		p0, p1, ok := l.PrimSpan(tt.b0, tt.b1)
		if ok != tt.ok || (ok && (p0 != tt.p0 || p1 != tt.p1)) {
			t.Errorf("PrimSpan(%d,%d) = %d,%d,%v; want %d,%d,%v",
				tt.b0, tt.b1, p0, p1, ok, tt.p0, tt.p1, tt.ok)
		}
	}
}

func TestPrimSpanWithinArrayRun(t *testing.T) {
	a := mustArray(t, Int32(), 100)
	l, err := Of(a, arch.AMD64())
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, ok := l.PrimSpan(10, 50) // bytes 10..49 touch ints 2..12
	if !ok || p0 != 2 || p1 != 13 {
		t.Errorf("PrimSpan(10,50) = %d,%d,%v; want 2,13,true", p0, p1, ok)
	}
}

func TestStepAtPrim(t *testing.T) {
	a := mustArray(t, Int32(), 10)
	l, err := Of(a, arch.X86())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.StepAtPrim(-1); ok {
		t.Error("StepAtPrim(-1) ok")
	}
	if _, ok := l.StepAtPrim(10); ok {
		t.Error("StepAtPrim(len) ok")
	}
	if i, ok := l.StepAtPrim(5); !ok || i != 0 {
		t.Errorf("StepAtPrim(5) = %d,%v", i, ok)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	candidates := []*Type{
		Int32(),
		Float64(),
		mustString(t, 256),
		mustPtr(t, Int32()),
		listNode(t),
		mustArray(t, mustStruct(t, "id", Field{"i", Int32()}, Field{"d", Float64()}), 12),
		mustStruct(t, "mix",
			Field{"i", Int32()},
			Field{"d", Float64()},
			Field{"s", mustString(t, 256)},
			Field{"t", mustString(t, 4)},
			Field{"p", mustPtr(t, Int32())},
		),
	}
	for _, typ := range candidates {
		b, err := Marshal(typ)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", typ, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", typ, err)
		}
		if !Equal(typ, got) {
			t.Errorf("roundtrip of %v not structurally equal", typ)
		}
		// Layout equivalence across the roundtrip, per profile.
		for _, p := range arch.Profiles() {
			l1, err1 := Of(typ, p)
			l2, err2 := Of(got, p)
			if err1 != nil || err2 != nil {
				t.Fatalf("layouts: %v / %v", err1, err2)
			}
			if l1.Size != l2.Size || l1.Align != l2.Align || len(l1.Walk) != len(l2.Walk) {
				t.Errorf("%v/%v layout mismatch after roundtrip", typ, p)
			}
		}
		// Deterministic encoding.
		b2, err := Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("%v encoding not canonical across roundtrip", typ)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(listNode(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  {0, 0, 0, 0, 0, 0, 0, 1, byte(KindChar)},
		"truncated":  good[:len(good)-2],
		"trailing":   append(append([]byte{}, good...), 0xff),
		"zero defs":  {0x49, 0x57, 0x54, 0x59, 0, 0, 0, 0},
		"bad kind":   {0x49, 0x57, 0x54, 0x59, 0, 0, 0, 1, 99},
		"bad ref":    {0x49, 0x57, 0x54, 0x59, 0, 0, 0, 1, byte(KindPointer), 0, 0, 0, 9},
		"zero cap":   {0x49, 0x57, 0x54, 0x59, 0, 0, 0, 1, byte(KindString), 0, 0, 0, 0},
		"self array": {0x49, 0x57, 0x54, 0x59, 0, 0, 0, 1, byte(KindArray), 0, 0, 0, 2, 0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("Unmarshal(%s) succeeded", name)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a := listNode(t)
	b := listNode(t)
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Error("identically constructed types have different fingerprints")
	}
	other := mustStruct(t, "other", Field{"x", Int64()})
	fo, err := Fingerprint(other)
	if err != nil {
		t.Fatal(err)
	}
	if fo == fa {
		t.Error("distinct types share a fingerprint")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(listNode(t), listNode(t)) {
		t.Error("equal recursive types reported unequal")
	}
	if Equal(Int32(), Int64()) {
		t.Error("int32 == int64")
	}
	a := mustStruct(t, "s", Field{"a", Int32()})
	b := mustStruct(t, "s", Field{"b", Int32()})
	if Equal(a, b) {
		t.Error("structs with different field names reported equal")
	}
	if Equal(nil, Int32()) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
	s16a := mustString(t, 16)
	s32 := mustString(t, 32)
	if Equal(s16a, s32) {
		t.Error("strings with different caps reported equal")
	}
}

func TestWireWalk(t *testing.T) {
	mix := mustStruct(t, "mix",
		Field{"a", Int32()},
		Field{"b", Int32()},
		Field{"d", Float64()},
		Field{"s", mustString(t, 8)},
	)
	w, err := WireWalk(mix)
	if err != nil {
		t.Fatal(err)
	}
	want := []WireStep{
		{KindInt32, 0, 2},
		{KindFloat64, 0, 1},
		{KindString, 8, 1},
	}
	if len(w) != len(want) {
		t.Fatalf("WireWalk = %v, want %v", w, want)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("WireWalk[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	kinds := UnitKinds(w)
	if len(kinds) != 4 || kinds[0] != KindInt32 || kinds[2] != KindFloat64 || kinds[3] != KindString {
		t.Errorf("UnitKinds = %v", kinds)
	}
}

func TestWireWalkArrayCollapse(t *testing.T) {
	a := mustArray(t, Int32(), 1000)
	w, err := WireWalk(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || w[0].Count != 1000 {
		t.Errorf("WireWalk([1000]int32) = %v", w)
	}
}

func TestLayoutCache(t *testing.T) {
	var c Cache
	n := listNode(t)
	l1, err := c.Of(n, arch.X86())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.Of(n, arch.X86())
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("cache returned distinct layouts for same key")
	}
	l3, err := c.Of(n, arch.Alpha())
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 {
		t.Error("cache shared layouts across profiles")
	}
}

func TestTypeString(t *testing.T) {
	n := listNode(t)
	tests := []struct {
		typ  *Type
		want string
	}{
		{Int32(), "int32"},
		{mustString(t, 8), "string[8]"},
		{n, "node_t"},
		{mustArray(t, Float64(), 3), "[3]float64"},
		{n.Field(1).Type, "*node_t"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// TestRandomTypesLayoutInvariants generates random type graphs and
// checks every layout invariant under every profile — the
// property-based safety net for the translation machinery.
func TestRandomTypesLayoutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		typ := randomType(t, rng, 3)
		if err := Validate(typ); err != nil {
			t.Fatalf("trial %d: invalid random type: %v", trial, err)
		}
		b, err := Marshal(typ)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !Equal(typ, back) {
			t.Fatalf("trial %d: roundtrip inequality", trial)
		}
		for _, p := range arch.Profiles() {
			l, err := Of(typ, p)
			if err != nil {
				t.Fatalf("trial %d: layout: %v", trial, err)
			}
			checkWalkInvariants(t, l)
		}
	}
}

func randomType(t *testing.T, rng *rand.Rand, depth int) *Type {
	t.Helper()
	prims := []*Type{Char(), Int16(), Int32(), Int64(), Float32(), Float64()}
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 6:
			return mustString(t, 1+rng.Intn(64))
		case 7:
			return mustPtr(t, prims[rng.Intn(len(prims))])
		default:
			return prims[rng.Intn(6)]
		}
	}
	if rng.Intn(2) == 0 {
		return mustArray(t, randomType(t, rng, depth-1), 1+rng.Intn(9))
	}
	n := 1 + rng.Intn(6)
	fields := make([]Field, n)
	for i := range fields {
		fields[i] = Field{Name: "f" + strconv.Itoa(i), Type: randomType(t, rng, depth-1)}
	}
	return mustStruct(t, "r", fields...)
}
