package types

import (
	"encoding/hex"
	"testing"
)

// TestGoldenDescriptorEncoding freezes the canonical descriptor
// encoding that servers store, checkpoint, and forward. The encoded
// graph is Figure 1's node_t: struct{ key int32; next *node_t }.
func TestGoldenDescriptorEncoding(t *testing.T) {
	n := NewStruct("node_t")
	next, err := PointerTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFields(Field{"key", Int32()}, Field{"next", next}); err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	const want = "49575459" + // magic "IWTY"
		"00000003" + // three definitions
		// def 0: struct "node_t", 2 fields
		"09" + "0006" + "6e6f64655f74" + "0002" +
		"0003" + "6b6579" + "00000001" + // field "key" -> def 1
		"0004" + "6e657874" + "00000002" + // field "next" -> def 2
		"03" + // def 1: int32
		"08" + "00000000" // def 2: pointer -> def 0
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("descriptor encoding changed:\n got %s\nwant %s", got, want)
	}
	// And the fingerprint derived from it is stable.
	fp, err := Fingerprint(n)
	if err != nil {
		t.Fatal(err)
	}
	if fp == 0 {
		t.Error("zero fingerprint")
	}
}
