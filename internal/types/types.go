// Package types implements InterWeave's type descriptor system.
//
// Shared data in InterWeave is strongly typed: every block has a type
// declared in IDL, and the library uses type descriptors to translate
// between machine-specific local formats and the machine-independent
// wire format (paper Sections 2.1 and 3.1). This package provides:
//
//   - Type: the machine-independent type model (primitives, fixed
//     capacity strings, pointers, structs, arrays).
//   - Layout: a per-architecture instantiation of a Type, carrying
//     byte offsets, alignment padding, primitive offsets, and the
//     flattened "primitive walk" used by diff translation, including
//     the paper's isomorphic descriptor optimization.
//   - A canonical binary encoding of descriptors, used to register
//     types with servers and to reconstruct layouts on clients that
//     receive previously unseen blocks.
//
// Offsets in MIPs and wire-format diffs are measured in primitive
// data units (a char, int, double, string, or pointer each count as
// one unit), never in bytes.
package types

import (
	"errors"
	"fmt"
)

// Kind identifies a type constructor. Char through Pointer are the
// primitive data units; Struct and Array are aggregates.
type Kind uint8

// Kinds of types. Primitive kinds are ordered before aggregate kinds.
const (
	KindInvalid Kind = iota
	KindChar
	KindInt16
	KindInt32
	KindInt64
	KindFloat32
	KindFloat64
	KindString
	KindPointer
	KindStruct
	KindArray
)

// IsPrimitive reports whether k is a primitive data unit kind.
func (k Kind) IsPrimitive() bool { return k >= KindChar && k <= KindPointer }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindChar:
		return "char"
	case KindInt16:
		return "int16"
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindFloat32:
		return "float32"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindPointer:
		return "pointer"
	case KindStruct:
		return "struct"
	case KindArray:
		return "array"
	default:
		return "invalid"
	}
}

// ErrIncomplete is returned when a struct shell created by NewStruct
// is used before SetFields completes it.
var ErrIncomplete = errors.New("types: struct type is incomplete")

// Field is a named member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Type is a machine-independent description of a shared datum. Types
// are immutable once complete and may be shared freely, including
// across goroutines. Recursive types are expressed with pointer
// members referring back to an enclosing struct.
type Type struct {
	kind      Kind
	name      string  // struct name (may be empty for anonymous)
	cap       int     // string capacity in bytes, incl. NUL headroom
	len       int     // array length
	elem      *Type   // array element or pointer target
	fields    []Field // struct members
	primCount int     // cached number of primitive units
	complete  bool
}

var (
	_char    = &Type{kind: KindChar, primCount: 1, complete: true}
	_int16   = &Type{kind: KindInt16, primCount: 1, complete: true}
	_int32   = &Type{kind: KindInt32, primCount: 1, complete: true}
	_int64   = &Type{kind: KindInt64, primCount: 1, complete: true}
	_float32 = &Type{kind: KindFloat32, primCount: 1, complete: true}
	_float64 = &Type{kind: KindFloat64, primCount: 1, complete: true}
)

// Char returns the shared 8-bit character type.
func Char() *Type { return _char }

// Int16 returns the shared 16-bit integer type.
func Int16() *Type { return _int16 }

// Int32 returns the shared 32-bit integer type.
func Int32() *Type { return _int32 }

// Int64 returns the shared 64-bit integer type.
func Int64() *Type { return _int64 }

// Float32 returns the shared 32-bit float type.
func Float32() *Type { return _float32 }

// Float64 returns the shared 64-bit float type.
func Float64() *Type { return _float64 }

// StringOf returns a fixed-capacity string type. In local format the
// string occupies capacity bytes (NUL-terminated, like a C char
// array); in wire format only the actual contents travel, so strings
// are variable length on the wire and in server storage. A string is
// one primitive data unit.
func StringOf(capacity int) (*Type, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("types: string capacity %d, want >= 1", capacity)
	}
	return &Type{kind: KindString, cap: capacity, primCount: 1, complete: true}, nil
}

// PointerTo returns a pointer type. The target may be an incomplete
// struct shell, which is how recursive types are built; the shell
// must be completed with SetFields before layouts are computed. A
// pointer is one primitive data unit regardless of its target.
func PointerTo(elem *Type) (*Type, error) {
	if elem == nil {
		return nil, errors.New("types: pointer to nil type")
	}
	return &Type{kind: KindPointer, elem: elem, primCount: 1, complete: true}, nil
}

// ArrayOf returns a fixed-length array type.
func ArrayOf(elem *Type, n int) (*Type, error) {
	if elem == nil {
		return nil, errors.New("types: array of nil type")
	}
	if !elem.complete {
		return nil, fmt.Errorf("types: array element %w", ErrIncomplete)
	}
	if n < 1 {
		return nil, fmt.Errorf("types: array length %d, want >= 1", n)
	}
	return &Type{kind: KindArray, elem: elem, len: n, primCount: elem.primCount * n, complete: true}, nil
}

// NewStruct returns an incomplete struct shell. Pointers to the shell
// may be created immediately (for recursive types); the shell must be
// completed with exactly one SetFields call before any other use.
func NewStruct(name string) *Type {
	return &Type{kind: KindStruct, name: name}
}

// SetFields completes a struct shell. Field types must themselves be
// complete, except that pointer members may target incomplete shells.
func (t *Type) SetFields(fields ...Field) error {
	if t.kind != KindStruct {
		return fmt.Errorf("types: SetFields on %s type", t.kind)
	}
	if t.complete {
		return fmt.Errorf("types: struct %q already complete", t.name)
	}
	if len(fields) == 0 {
		return fmt.Errorf("types: struct %q must have at least one field", t.name)
	}
	seen := make(map[string]bool, len(fields))
	count := 0
	for i, f := range fields {
		if f.Name == "" {
			return fmt.Errorf("types: struct %q field %d has empty name", t.name, i)
		}
		if seen[f.Name] {
			return fmt.Errorf("types: struct %q has duplicate field %q", t.name, f.Name)
		}
		seen[f.Name] = true
		if f.Type == nil {
			return fmt.Errorf("types: struct %q field %q has nil type", t.name, f.Name)
		}
		if !f.Type.complete {
			return fmt.Errorf("types: struct %q field %q: %w", t.name, f.Name, ErrIncomplete)
		}
		count += f.Type.primCount
	}
	t.fields = make([]Field, len(fields))
	copy(t.fields, fields)
	t.primCount = count
	t.complete = true
	return nil
}

// StructOf builds a complete, non-recursive struct in one call.
func StructOf(name string, fields ...Field) (*Type, error) {
	t := NewStruct(name)
	if err := t.SetFields(fields...); err != nil {
		return nil, err
	}
	return t, nil
}

// Kind returns the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Name returns the struct name, or "" for other kinds.
func (t *Type) Name() string { return t.name }

// Cap returns a string type's capacity in bytes.
func (t *Type) Cap() int { return t.cap }

// Len returns an array type's length.
func (t *Type) Len() int { return t.len }

// Elem returns the element type of an array or the target of a
// pointer, and nil for other kinds.
func (t *Type) Elem() *Type { return t.elem }

// Fields returns a copy of a struct type's fields.
func (t *Type) Fields() []Field {
	out := make([]Field, len(t.fields))
	copy(out, t.fields)
	return out
}

// NumFields returns the number of struct fields.
func (t *Type) NumFields() int { return len(t.fields) }

// Field returns the i-th struct field.
func (t *Type) Field(i int) Field { return t.fields[i] }

// PrimCount returns the number of primitive data units one value of
// this type occupies. MIP offsets and diff runs are measured in these
// units.
func (t *Type) PrimCount() int { return t.primCount }

// Complete reports whether the type is fully defined.
func (t *Type) Complete() bool { return t != nil && t.complete }

// Validate checks the whole type graph rooted at t: completeness of
// every reachable type and absence of infinite-size cycles (a struct
// or array may only contain itself through a pointer).
func Validate(t *Type) error {
	done := make(map[*Type]bool)
	if err := validateComplete(t, done); err != nil {
		return err
	}
	// Finite-size check: cycles along struct-field and array-element
	// edges are illegal; pointer edges break cycles by design.
	for u := range done {
		if u.kind == KindStruct || u.kind == KindArray {
			if err := finiteSize(u, make(map[*Type]int)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Node states for cycle detection along non-pointer (size-contributing)
// edges of the type graph.
const (
	stateVisiting = 1
	stateDone     = 2
)

// validateComplete walks every edge (including pointers) checking
// completeness; cycles are fine here.
func validateComplete(t *Type, done map[*Type]bool) error {
	if t == nil {
		return errors.New("types: nil type")
	}
	if done[t] {
		return nil
	}
	if !t.complete {
		return fmt.Errorf("types: %s %q: %w", t.kind, t.name, ErrIncomplete)
	}
	done[t] = true
	switch t.kind {
	case KindStruct:
		for _, f := range t.fields {
			if err := validateComplete(f.Type, done); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
	case KindArray:
		if err := validateComplete(t.elem, done); err != nil {
			return fmt.Errorf("array element: %w", err)
		}
	case KindPointer:
		if err := validateComplete(t.elem, done); err != nil {
			return fmt.Errorf("pointer target: %w", err)
		}
	}
	return nil
}

// finiteSize rejects cycles that do not pass through a pointer.
func finiteSize(t *Type, state map[*Type]int) error {
	if t.kind != KindStruct && t.kind != KindArray {
		return nil
	}
	switch state[t] {
	case stateDone:
		return nil
	case stateVisiting:
		return fmt.Errorf("types: type %q contains itself without a pointer indirection", t.name)
	}
	state[t] = stateVisiting
	switch t.kind {
	case KindStruct:
		for _, f := range t.fields {
			if err := finiteSize(f.Type, state); err != nil {
				return err
			}
		}
	case KindArray:
		if err := finiteSize(t.elem, state); err != nil {
			return err
		}
	}
	state[t] = stateDone
	return nil
}

// String renders a compact human-readable description of the type.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.kind {
	case KindString:
		return fmt.Sprintf("string[%d]", t.cap)
	case KindPointer:
		if t.elem != nil && t.elem.kind == KindStruct {
			return "*" + t.elem.displayName()
		}
		return "*" + t.elem.String()
	case KindStruct:
		return t.displayName()
	case KindArray:
		return fmt.Sprintf("[%d]%s", t.len, t.elem)
	default:
		return t.kind.String()
	}
}

func (t *Type) displayName() string {
	if t.name != "" {
		return t.name
	}
	return "struct{...}"
}

// WireStep is one collapsed run of identical primitive units in a
// type's machine-independent flattening. Servers use wire walks to
// know the kind (and therefore the wire size) of every unit without
// knowing any machine-specific layout.
type WireStep struct {
	Kind  Kind
	Cap   int // string capacity (informational; wire strings are varlen)
	Count int
}

// WireWalk flattens one value of t into collapsed runs of primitive
// units, in declaration order. The walk is independent of any
// architecture.
func WireWalk(t *Type) ([]WireStep, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	var out []WireStep
	appendWire(&out, t)
	return out, nil
}

func appendWire(out *[]WireStep, t *Type) {
	switch t.kind {
	case KindStruct:
		for _, f := range t.fields {
			appendWire(out, f.Type)
		}
	case KindArray:
		if t.elem.kind.IsPrimitive() {
			pushWire(out, WireStep{Kind: t.elem.kind, Cap: t.elem.cap, Count: t.len})
			return
		}
		for i := 0; i < t.len; i++ {
			appendWire(out, t.elem)
		}
	default:
		pushWire(out, WireStep{Kind: t.kind, Cap: t.cap, Count: 1})
	}
}

func pushWire(out *[]WireStep, s WireStep) {
	if n := len(*out); n > 0 {
		last := &(*out)[n-1]
		if last.Kind == s.Kind && last.Cap == s.Cap {
			last.Count += s.Count
			return
		}
	}
	*out = append(*out, s)
}

// UnitKinds expands a wire walk into one Kind per primitive unit of a
// single element. The server indexes this array (modulo element prim
// count) to find the kind of any unit in a block.
func UnitKinds(walk []WireStep) []Kind {
	n := 0
	for _, s := range walk {
		n += s.Count
	}
	out := make([]Kind, 0, n)
	for _, s := range walk {
		for i := 0; i < s.Count; i++ {
			out = append(out, s.Kind)
		}
	}
	return out
}
