package xdr

import (
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

func setup(t *testing.T, prof *arch.Profile) (*mem.Heap, *mem.SegMem, *Codec) {
	t.Helper()
	h, err := mem.NewHeap(prof)
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.NewSegment("h/s")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(h)
	if err != nil {
		t.Fatal(err)
	}
	return h, s, c
}

func alloc(t *testing.T, s *mem.SegMem, typ *types.Type, count int) *mem.Block {
	t.Helper()
	l, err := types.Of(typ, s.Heap().Profile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(l, count, "")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNilArgs(t *testing.T) {
	if _, err := NewCodec(nil); err == nil {
		t.Error("NewCodec(nil) succeeded")
	}
	_, _, c := setup(t, arch.AMD64())
	if _, err := c.MarshalBlock(nil); err == nil {
		t.Error("MarshalBlock(nil) succeeded")
	}
	if err := c.UnmarshalBlock(nil, nil); err == nil {
		t.Error("UnmarshalBlock(nil) succeeded")
	}
}

func TestIntArraySizeExact(t *testing.T) {
	// XDR keeps 32-bit ints at 4 bytes: 1000 ints -> 4000 bytes.
	_, s, c := setup(t, arch.AMD64())
	h := s.Heap()
	b := alloc(t, s, types.Int32(), 1000)
	for i := 0; i < 1000; i++ {
		if err := h.WriteI32(b.Addr+mem.Addr(4*i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := c.MarshalBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4000 {
		t.Errorf("encoded %d bytes, want 4000", len(enc))
	}
}

func TestCharAndShortPadTo4(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	st, err := types.StructOf("cs",
		types.Field{Name: "c", Type: types.Char()},
		types.Field{Name: "h", Type: types.Int16()},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := alloc(t, s, st, 1)
	enc, err := c.MarshalBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 8 {
		t.Errorf("char+short encoded as %d bytes, want 8 (rpcgen pads to 4)", len(enc))
	}
}

func TestPointerDeepCopy(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	h := s.Heap()
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	pb := alloc(t, s, pi, 2)
	target := alloc(t, s, types.Int32(), 1)
	if err := h.WriteI32(target.Addr, 4242); err != nil {
		t.Fatal(err)
	}
	if err := h.WritePtr(pb.Addr, target.Addr); err != nil { // non-nil
		t.Fatal(err)
	}
	if err := h.WritePtr(pb.Addr+8, 0); err != nil { // nil
		t.Fatal(err)
	}
	enc, err := c.MarshalBlock(pb)
	if err != nil {
		t.Fatal(err)
	}
	// flag(4)+int(4) for the first, flag(4) for the nil: 12 bytes.
	if len(enc) != 12 {
		t.Fatalf("encoded %d bytes, want 12", len(enc))
	}
	if enc[3] != 1 || enc[11] != 0 {
		t.Errorf("discriminants wrong: % x", enc)
	}
	// Deep-copied value travels.
	if got := uint32(enc[4])<<24 | uint32(enc[5])<<16 | uint32(enc[6])<<8 | uint32(enc[7]); got != 4242 {
		t.Errorf("deep-copied int = %d", got)
	}
}

func TestRoundtripHeterogeneous(t *testing.T) {
	// Marshal on big-endian 32-bit, unmarshal on little-endian
	// 64-bit, with an identical structure on both sides.
	s16, err := types.StringOf(16)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	st, err := types.StructOf("m",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "d", Type: types.Float64()},
		types.Field{Name: "s", Type: s16},
		types.Field{Name: "p", Type: pi},
		types.Field{Name: "c", Type: types.Char()},
	)
	if err != nil {
		t.Fatal(err)
	}

	_, ss, cs := setup(t, arch.Sparc())
	hs := ss.Heap()
	sb := alloc(t, ss, st, 2)
	starget := alloc(t, ss, types.Int32(), 1)
	if err := hs.WriteI32(starget.Addr, -777); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		base := sb.Addr + mem.Addr(e*sb.Layout.Size)
		f := func(n string) mem.Addr {
			fl, _ := sb.Layout.Field(n)
			return base + mem.Addr(fl.ByteOff)
		}
		must(t, hs.WriteI32(f("i"), int32(10+e)))
		must(t, hs.WriteF64(f("d"), 0.5+float64(e)))
		must(t, hs.WriteCString(f("s"), 16, "xdr"))
		if e == 0 {
			must(t, hs.WritePtr(f("p"), starget.Addr))
		}
		must(t, hs.WriteU8(f("c"), 'q'))
	}
	enc, err := cs.MarshalBlock(sb)
	if err != nil {
		t.Fatal(err)
	}

	_, sd, cd := setup(t, arch.Alpha())
	hd := sd.Heap()
	db := alloc(t, sd, st, 2)
	dtarget := alloc(t, sd, types.Int32(), 1)
	// Pre-point the first element's pointer, as an RPC callee's
	// pre-allocated result structure would be.
	fl, _ := db.Layout.Field("p")
	must(t, hd.WritePtr(db.Addr+mem.Addr(fl.ByteOff), dtarget.Addr))

	if err := cd.UnmarshalBlock(db, enc); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		base := db.Addr + mem.Addr(e*db.Layout.Size)
		f := func(n string) mem.Addr {
			fl, _ := db.Layout.Field(n)
			return base + mem.Addr(fl.ByteOff)
		}
		if v, _ := hd.ReadI32(f("i")); v != int32(10+e) {
			t.Errorf("elem %d i = %d", e, v)
		}
		if v, _ := hd.ReadF64(f("d")); v != 0.5+float64(e) {
			t.Errorf("elem %d d = %v", e, v)
		}
		if v, _ := hd.ReadCString(f("s"), 16); v != "xdr" {
			t.Errorf("elem %d s = %q", e, v)
		}
		if v, _ := hd.ReadU8(f("c")); v != 'q' {
			t.Errorf("elem %d c = %c", e, v)
		}
	}
	if v, _ := hd.ReadI32(dtarget.Addr); v != -777 {
		t.Errorf("deep-copied target = %d, want -777", v)
	}
	// The nil pointer in element 1 stayed nil.
	base1 := db.Addr + mem.Addr(db.Layout.Size)
	if v, _ := hd.ReadPtr(base1 + mem.Addr(fl.ByteOff)); v != 0 {
		t.Errorf("nil pointer became %#x", uint64(v))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	b := alloc(t, s, types.Int32(), 4)
	if err := c.UnmarshalBlock(b, []byte{1, 2}); err == nil {
		t.Error("truncated stream accepted")
	}
	enc, err := c.MarshalBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UnmarshalBlock(b, append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Overflowing string.
	s4, err := types.StringOf(4)
	if err != nil {
		t.Fatal(err)
	}
	sb := alloc(t, s, s4, 1)
	bad := []byte{0, 0, 0, 9, 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 0, 0, 0}
	if err := c.UnmarshalBlock(sb, bad); err == nil {
		t.Error("overflowing string accepted")
	}
}

func TestStringPadding(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	h := s.Heap()
	s8, err := types.StringOf(8)
	if err != nil {
		t.Fatal(err)
	}
	b := alloc(t, s, s8, 1)
	must(t, h.WriteCString(b.Addr, 8, "abcde")) // 5 bytes -> pad 3
	enc, err := c.MarshalBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4+5+3 {
		t.Errorf("string encoded as %d bytes, want 12", len(enc))
	}
	// Roundtrip.
	must(t, h.WriteCString(b.Addr, 8, ""))
	if err := c.UnmarshalBlock(b, enc); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ReadCString(b.Addr, 8); v != "abcde" {
		t.Errorf("roundtrip = %q", v)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
