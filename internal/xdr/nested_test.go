package xdr

import (
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestNestedStructArray covers aggregates inside aggregates: an array
// of structs each containing a fixed array.
func TestNestedStructArray(t *testing.T) {
	_, s, c := setup(t, arch.X86())
	h := s.Heap()
	inner, err := types.ArrayOf(types.Float32(), 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := types.StructOf("v",
		types.Field{Name: "id", Type: types.Int16()},
		types.Field{Name: "vals", Type: inner},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := alloc(t, s, st, 2)
	l := b.Layout
	for e := 0; e < 2; e++ {
		base := b.Addr + mem.Addr(e*l.Size)
		idF, _ := l.Field("id")
		valsF, _ := l.Field("vals")
		if err := h.WriteI16(base+mem.Addr(idF.ByteOff), int16(e+1)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := h.WriteF32(base+mem.Addr(valsF.ByteOff+4*i), float32(e*10+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	enc, err := c.MarshalBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	// id pads to 4, three floats of 4: 16 bytes per element.
	if len(enc) != 32 {
		t.Fatalf("encoded %d bytes, want 32", len(enc))
	}
	// Wipe and decode back.
	if err := h.RawWriteZero(b.Addr, b.Size()); err != nil {
		t.Fatal(err)
	}
	if err := c.UnmarshalBlock(b, enc); err != nil {
		t.Fatal(err)
	}
	idF, _ := l.Field("id")
	valsF, _ := l.Field("vals")
	for e := 0; e < 2; e++ {
		base := b.Addr + mem.Addr(e*l.Size)
		if v, _ := h.ReadI16(base + mem.Addr(idF.ByteOff)); v != int16(e+1) {
			t.Errorf("elem %d id = %d", e, v)
		}
		for i := 0; i < 3; i++ {
			if v, _ := h.ReadF32(base + mem.Addr(valsF.ByteOff+4*i)); v != float32(e*10+i) {
				t.Errorf("elem %d vals[%d] = %v", e, i, v)
			}
		}
	}
}

// TestUnmarshalScratchPath exercises the "callee has a nil pointer
// but data arrives" path, which simulates rpcgen's allocation.
func TestUnmarshalScratchPath(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	h := s.Heap()
	s8, err := types.StringOf(8)
	if err != nil {
		t.Fatal(err)
	}
	ppi, err := types.PointerTo(s8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := types.StructOf("w",
		types.Field{Name: "p", Type: ppi},
		types.Field{Name: "tail", Type: types.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal with a live pointer...
	src := alloc(t, s, st, 1)
	target := alloc(t, s, s8, 1)
	if err := h.WriteCString(target.Addr, 8, "deep"); err != nil {
		t.Fatal(err)
	}
	pF, _ := src.Layout.Field("p")
	tailF, _ := src.Layout.Field("tail")
	if err := h.WritePtr(src.Addr+mem.Addr(pF.ByteOff), target.Addr); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteI32(src.Addr+mem.Addr(tailF.ByteOff), 55); err != nil {
		t.Fatal(err)
	}
	enc, err := c.MarshalBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	// ...and unmarshal into a block whose pointer is nil: the deep
	// data is consumed into scratch, and the fields after the
	// pointer still decode correctly.
	dst := alloc(t, s, st, 1)
	if err := c.UnmarshalBlock(dst, enc); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ReadI32(dst.Addr + mem.Addr(tailF.ByteOff)); v != 55 {
		t.Errorf("tail after scratch = %d, want 55", v)
	}
	if v, _ := h.ReadPtr(dst.Addr + mem.Addr(pF.ByteOff)); v != 0 {
		t.Errorf("nil pointer overwritten to %#x", uint64(v))
	}
}

// TestScratchNestedAggregates covers scratch consumption of structs,
// arrays, and nested pointers.
func TestScratchNestedAggregates(t *testing.T) {
	_, s, c := setup(t, arch.AMD64())
	h := s.Heap()
	inner, err := types.StructOf("in",
		types.Field{Name: "a", Type: types.Int32()},
		types.Field{Name: "b", Type: types.Float64()},
	)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := types.ArrayOf(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	pArr, err := types.PointerTo(arr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := types.StructOf("outer",
		types.Field{Name: "p", Type: pArr},
		types.Field{Name: "sentinel", Type: types.Int32()},
	)
	if err != nil {
		t.Fatal(err)
	}
	src := alloc(t, s, st, 1)
	target := alloc(t, s, arr, 1)
	pF, _ := src.Layout.Field("p")
	sF, _ := src.Layout.Field("sentinel")
	if err := h.WritePtr(src.Addr+mem.Addr(pF.ByteOff), target.Addr); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteI32(src.Addr+mem.Addr(sF.ByteOff), 91); err != nil {
		t.Fatal(err)
	}
	enc, err := c.MarshalBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := alloc(t, s, st, 1) // nil pointer
	if err := c.UnmarshalBlock(dst, enc); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ReadI32(dst.Addr + mem.Addr(sF.ByteOff)); v != 91 {
		t.Errorf("sentinel = %d, want 91", v)
	}
}
