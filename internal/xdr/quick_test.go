package xdr

import (
	"testing"
	"testing/quick"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestQuickIntArrayRoundtrip marshals arbitrary int arrays on one
// machine and unmarshals on another, checking value fidelity.
func TestQuickIntArrayRoundtrip(t *testing.T) {
	_, ss, cs := setup(t, arch.Sparc())
	_, sd, cd := setup(t, arch.X86())
	fn := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 256 {
			vals = vals[:256]
		}
		sb := alloc(t, ss, types.Int32(), len(vals))
		db := alloc(t, sd, types.Int32(), len(vals))
		for i, v := range vals {
			if err := ss.Heap().WriteI32(sb.Addr+mem.Addr(4*i), v); err != nil {
				return false
			}
		}
		enc, err := cs.MarshalBlock(sb)
		if err != nil {
			return false
		}
		if err := cd.UnmarshalBlock(db, enc); err != nil {
			return false
		}
		for i, v := range vals {
			got, err := sd.Heap().ReadI32(db.Addr + mem.Addr(4*i))
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringRoundtrip checks arbitrary (capacity-respecting)
// strings survive the XDR encoding.
func TestQuickStringRoundtrip(t *testing.T) {
	_, ss, cs := setup(t, arch.Alpha())
	s32, err := types.StringOf(32)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(raw string) bool {
		// Respect the cell: printable prefix, room for NUL.
		s := raw
		if len(s) > 31 {
			s = s[:31]
		}
		for i := 0; i < len(s); i++ {
			if s[i] == 0 {
				s = s[:i]
				break
			}
		}
		b := alloc(t, ss, s32, 1)
		if err := ss.Heap().WriteCString(b.Addr, 32, s); err != nil {
			return false
		}
		enc, err := cs.MarshalBlock(b)
		if err != nil {
			return false
		}
		if err := ss.Heap().WriteCString(b.Addr, 32, ""); err != nil {
			return false
		}
		if err := cs.UnmarshalBlock(b, enc); err != nil {
			return false
		}
		got, err := ss.Heap().ReadCString(b.Addr, 32)
		return err == nil && got == s
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
