package seqmine

import (
	"errors"
	"fmt"

	"interweave"
)

// This file binds the mining summary to InterWeave: the database
// server publishes the lattice into a shared segment as a pointer-
// rich structure (approximately one third of the local-format space
// is pointers, as the paper reports), and mining clients walk it
// under a relaxed coherence policy.

// fanout is the number of direct child pointers per shared node;
// nodes with more children chain through an overflow node. A node
// occupies 3 + fanout + 1 primitive units; keeping that within one
// server subblock (16 units) means a support update never drags
// unrelated subblocks along.
const fanout = 4

// NodeType declares the shared lattice node:
//
//	struct lnode {
//	    int32  item;      // -1 for the root and overflow nodes
//	    int32  support;
//	    int32  nchildren; // valid child slots in this node
//	    lnode *children[4];
//	    lnode *overflow;
//	};
func NodeType() (*interweave.Type, error) {
	n := interweave.NewStruct("lnode")
	pn, err := interweave.PointerTo(n)
	if err != nil {
		return nil, err
	}
	children, err := interweave.ArrayOf(pn, fanout)
	if err != nil {
		return nil, err
	}
	if err := n.SetFields(
		interweave.Field{Name: "item", Type: interweave.Int32()},
		interweave.Field{Name: "support", Type: interweave.Int32()},
		interweave.Field{Name: "nchildren", Type: interweave.Int32()},
		interweave.Field{Name: "children", Type: children},
		interweave.Field{Name: "overflow", Type: pn},
	); err != nil {
		return nil, err
	}
	return n, nil
}

// pubNode tracks the shared image of one lattice node.
type pubNode struct {
	ref interweave.Ref
	// kids lists children in publication (slot) order.
	kids []*Node
	// overflow chains extra child slots.
	overflow *pubNode
	support  int32
}

// Publisher incrementally mirrors a lattice into an InterWeave
// segment (the database server side of Section 4.4).
type Publisher struct {
	c     *interweave.Client
	h     *interweave.Segment
	nodeT *interweave.Type
	nodes map[*Node]*pubNode
	root  *pubNode
}

// NewPublisher opens (or creates) the segment that will hold the
// summary structure.
func NewPublisher(c *interweave.Client, segName string) (*Publisher, error) {
	if c == nil {
		return nil, errors.New("seqmine: nil client")
	}
	nodeT, err := NodeType()
	if err != nil {
		return nil, err
	}
	h, err := c.Open(segName)
	if err != nil {
		return nil, err
	}
	return &Publisher{
		c:     c,
		h:     h,
		nodeT: nodeT,
		nodes: make(map[*Node]*pubNode),
	}, nil
}

// Segment returns the published segment handle.
func (p *Publisher) Segment() *interweave.Segment { return p.h }

// Publish pushes the lattice's current state: new nodes are
// allocated, changed supports rewritten, and new child pointers
// wired. One Publish is one write critical section, so all its
// changes travel in a single wire-format diff.
func (p *Publisher) Publish(l *Lattice) error {
	if err := p.c.WLock(p.h); err != nil {
		return err
	}
	err := p.publishLocked(l)
	if uerr := p.c.WUnlock(p.h); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

func (p *Publisher) publishLocked(l *Lattice) error {
	if p.root == nil {
		pn, err := p.allocNode(-1, "root")
		if err != nil {
			return err
		}
		p.root = pn
		p.nodes[l.Root] = pn
	}
	return p.syncNode(l.Root, p.nodes[l.Root])
}

// syncNode brings one shared node (and recursively its subtree) in
// line with the in-memory lattice.
func (p *Publisher) syncNode(n *Node, pn *pubNode) error {
	if n.Support != pn.support {
		f, err := pn.ref.Field("support")
		if err != nil {
			return err
		}
		if err := f.SetI32(n.Support); err != nil {
			return err
		}
		pn.support = n.Support
	}
	// Wire any children not yet published, appending to slot order.
	if len(pn.kids) < len(n.Children) {
		published := make(map[*Node]bool, len(pn.kids))
		for _, k := range pn.kids {
			published[k] = true
		}
		for _, child := range n.Children {
			if published[child] {
				continue
			}
			cpn, err := p.allocNode(child.Item, "")
			if err != nil {
				return err
			}
			p.nodes[child] = cpn
			if err := p.appendChild(pn, cpn); err != nil {
				return err
			}
			pn.kids = append(pn.kids, child)
		}
	}
	for _, child := range n.Children {
		cpn, ok := p.nodes[child]
		if !ok {
			return fmt.Errorf("seqmine: child of item %d unpublished", n.Item)
		}
		if err := p.syncNode(child, cpn); err != nil {
			return err
		}
	}
	return nil
}

// allocNode allocates one shared node block.
func (p *Publisher) allocNode(item int32, name string) (*pubNode, error) {
	blk, err := p.c.Alloc(p.h, p.nodeT, 1, name)
	if err != nil {
		return nil, err
	}
	r, err := interweave.RefTo(p.c, blk)
	if err != nil {
		return nil, err
	}
	f, err := r.Field("item")
	if err != nil {
		return nil, err
	}
	if err := f.SetI32(item); err != nil {
		return nil, err
	}
	return &pubNode{ref: r}, nil
}

// appendChild stores a child pointer in the next free slot, chasing
// or creating overflow nodes as needed.
func (p *Publisher) appendChild(pn *pubNode, child *pubNode) error {
	slot := len(pn.kids)
	target := pn
	for slot >= fanout {
		if target.overflow == nil {
			ov, err := p.allocNode(-1, "")
			if err != nil {
				return err
			}
			f, err := target.ref.Field("overflow")
			if err != nil {
				return err
			}
			if err := f.SetPtr(ov.ref.Addr()); err != nil {
				return err
			}
			target.overflow = ov
		}
		target = target.overflow
		slot -= fanout
	}
	arr, err := target.ref.Field("children")
	if err != nil {
		return err
	}
	cell, err := arr.Elem(slot)
	if err != nil {
		return err
	}
	if err := cell.SetPtr(child.ref.Addr()); err != nil {
		return err
	}
	nc, err := target.ref.Field("nchildren")
	if err != nil {
		return err
	}
	return nc.SetI32(int32(slot + 1))
}

// Subscriber reads a published lattice from a segment (the mining
// client side).
type Subscriber struct {
	c     *interweave.Client
	h     *interweave.Segment
	nodeT *interweave.Type
}

// NewSubscriber opens the shared summary for mining queries under the
// given coherence policy.
func NewSubscriber(c *interweave.Client, segName string, policy interweave.Policy) (*Subscriber, error) {
	if c == nil {
		return nil, errors.New("seqmine: nil client")
	}
	nodeT, err := NodeType()
	if err != nil {
		return nil, err
	}
	h, err := c.Open(segName)
	if err != nil {
		return nil, err
	}
	if err := c.SetPolicy(h, policy); err != nil {
		return nil, err
	}
	return &Subscriber{c: c, h: h, nodeT: nodeT}, nil
}

// Segment returns the subscribed segment handle.
func (s *Subscriber) Segment() *interweave.Segment { return s.h }

// Client returns the subscriber's client.
func (s *Subscriber) Client() *interweave.Client { return s.c }

// Snapshot reads the shared lattice into an in-memory Lattice under a
// read lock (acquiring whatever update the coherence policy
// requires).
func (s *Subscriber) Snapshot() (*Lattice, error) {
	if err := s.c.RLock(s.h); err != nil {
		return nil, err
	}
	defer func() { _ = s.c.RUnlock(s.h) }()
	rootBlk, ok := s.h.Mem().BlockByName("root")
	if !ok {
		return nil, errors.New("seqmine: shared lattice has no root")
	}
	r, err := interweave.RefTo(s.c, rootBlk)
	if err != nil {
		return nil, err
	}
	l, err := NewLattice(4, 1)
	if err != nil {
		return nil, err
	}
	root, n, err := s.readNode(r, 0)
	if err != nil {
		return nil, err
	}
	l.Root = root
	l.nodes = n - 1 // root does not count
	return l, nil
}

// readNode reads one shared node and its subtree, returning the node
// count.
func (s *Subscriber) readNode(r interweave.Ref, depth int) (*Node, int, error) {
	if depth > 64 {
		return nil, 0, errors.New("seqmine: shared lattice too deep (cycle?)")
	}
	node := &Node{Children: make(map[int32]*Node)}
	f, err := r.Field("item")
	if err != nil {
		return nil, 0, err
	}
	if node.Item, err = f.I32(); err != nil {
		return nil, 0, err
	}
	if f, err = r.Field("support"); err != nil {
		return nil, 0, err
	}
	if node.Support, err = f.I32(); err != nil {
		return nil, 0, err
	}
	count := 1
	// Walk child slots, chasing overflow chains.
	cur := r
	for {
		nc, err := cur.Field("nchildren")
		if err != nil {
			return nil, 0, err
		}
		n, err := nc.I32()
		if err != nil {
			return nil, 0, err
		}
		arr, err := cur.Field("children")
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < int(n) && i < fanout; i++ {
			cell, err := arr.Elem(i)
			if err != nil {
				return nil, 0, err
			}
			child, err := cell.Deref()
			if err != nil {
				return nil, 0, err
			}
			if child.IsNil() {
				continue
			}
			cn, cc, err := s.readNode(child, depth+1)
			if err != nil {
				return nil, 0, err
			}
			node.Children[cn.Item] = cn
			count += cc
		}
		ovf, err := cur.Field("overflow")
		if err != nil {
			return nil, 0, err
		}
		ov, err := ovf.Deref()
		if err != nil {
			return nil, 0, err
		}
		if ov.IsNil() {
			break
		}
		cur = ov
		count++ // the overflow node itself
	}
	return node, count, nil
}
