// Package seqmine implements the incremental sequence-mining workload
// of the paper's datamining experiment (Section 4.4).
//
// The original evaluation used a transaction database generated with
// the IBM Quest tools [Srikant & Agrawal]: 100,000 customers, 1,000
// items, an average of 1.25 transactions per customer, and 5,000
// item-sequence patterns of average length 4, about 20 MB in total.
// Those tools are not redistributable, so this package provides a
// generator reproducing the published parameters: customer sequences
// are assembled from a pattern pool (with noise), so that frequent
// sequential patterns exist and a summary lattice built over a
// database prefix changes slowly as more of the database is
// processed — the property Figure 7 depends on.
//
// The summary structure is a lattice of item sequences: each node
// represents a potentially meaningful sequence and holds pointers to
// the sequences of which it is a prefix, exactly the pointer-rich
// shape the paper shares through an InterWeave segment.
package seqmine

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config parameterizes the synthetic database. The zero value is
// useless; use DefaultConfig (the paper's parameters) or
// SmallConfig for tests.
type Config struct {
	// Customers is the number of customer sequences.
	Customers int
	// Items is the size of the item vocabulary.
	Items int
	// Patterns is the size of the frequent-pattern pool.
	Patterns int
	// PatternLen is the average pattern length.
	PatternLen int
	// TransPerCustomer is the average number of transactions per
	// customer, times 100 (125 = 1.25).
	TransPerCustomer100 int
	// ItemsPerTrans is the average transaction size.
	ItemsPerTrans int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig reproduces the paper's database: ~20 MB, 100k
// customers, 1000 items, 5000 patterns of average length 4.
func DefaultConfig() Config {
	return Config{
		Customers:           100000,
		Items:               1000,
		Patterns:            5000,
		PatternLen:          4,
		TransPerCustomer100: 125,
		ItemsPerTrans:       40,
		Seed:                20030519,
	}
}

// SmallConfig is a scaled-down database for unit tests.
func SmallConfig() Config {
	return Config{
		Customers:           2000,
		Items:               100,
		Patterns:            50,
		PatternLen:          4,
		TransPerCustomer100: 125,
		ItemsPerTrans:       12,
		Seed:                42,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.Customers < 1:
		return fmt.Errorf("seqmine: customers %d", c.Customers)
	case c.Items < 2:
		return fmt.Errorf("seqmine: items %d", c.Items)
	case c.Patterns < 1:
		return fmt.Errorf("seqmine: patterns %d", c.Patterns)
	case c.PatternLen < 2:
		return fmt.Errorf("seqmine: pattern length %d", c.PatternLen)
	case c.TransPerCustomer100 < 100:
		return fmt.Errorf("seqmine: transactions per customer %d/100", c.TransPerCustomer100)
	case c.ItemsPerTrans < 1:
		return fmt.Errorf("seqmine: items per transaction %d", c.ItemsPerTrans)
	}
	return nil
}

// Database is a synthetic transaction database: one item sequence per
// customer (transactions concatenated in time order).
type Database struct {
	// Sequences holds each customer's item sequence.
	Sequences [][]int32
	cfg       Config
}

// Generate builds a deterministic synthetic database.
func Generate(cfg Config) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pattern pool: geometric-ish lengths around PatternLen, items
	// Zipf-flavoured so some patterns are much more popular.
	patterns := make([][]int32, cfg.Patterns)
	for i := range patterns {
		n := 2 + rng.Intn(2*cfg.PatternLen-3) // mean ~PatternLen
		p := make([]int32, n)
		for j := range p {
			p[j] = int32(rng.Intn(cfg.Items))
		}
		patterns[i] = p
	}
	db := &Database{Sequences: make([][]int32, cfg.Customers), cfg: cfg}
	for cust := range db.Sequences {
		ntrans := 1
		if rng.Intn(100) < cfg.TransPerCustomer100-100 {
			ntrans = 2
		}
		var seq []int32
		for t := 0; t < ntrans; t++ {
			remaining := cfg.ItemsPerTrans/2 + rng.Intn(cfg.ItemsPerTrans+1)
			for remaining > 0 {
				if rng.Intn(100) < 70 {
					// Embed a pattern (popularity-skewed pick).
					p := patterns[skewedIndex(rng, len(patterns))]
					seq = append(seq, p...)
					remaining -= len(p)
				} else {
					seq = append(seq, int32(rng.Intn(cfg.Items)))
					remaining--
				}
			}
		}
		db.Sequences[cust] = seq
	}
	return db, nil
}

// skewedIndex picks an index with a popularity skew (low indices far
// more likely), approximating the Quest generator's pattern weights.
func skewedIndex(rng *rand.Rand, n int) int {
	// Square a uniform variate: density ~ 1/(2*sqrt(x)).
	f := rng.Float64()
	return int(f * f * float64(n))
}

// SizeBytes reports the database's nominal size (4 bytes per item
// occurrence), the quantity the paper's "20MB" refers to.
func (db *Database) SizeBytes() int {
	n := 0
	for _, s := range db.Sequences {
		n += 4 * len(s)
	}
	return n
}

// Slice returns customers [lo, hi) as a sub-database view.
func (db *Database) Slice(lo, hi int) [][]int32 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(db.Sequences) {
		hi = len(db.Sequences)
	}
	if lo >= hi {
		return nil
	}
	return db.Sequences[lo:hi]
}

// Node is one lattice node: a sequence extension by one item, with
// its support count and its extensions (the sequences it prefixes).
type Node struct {
	// Item extends the parent's sequence.
	Item int32
	// Support counts occurrences in the processed prefix of the
	// database.
	Support int32
	// Children maps the next item to the extended sequence's node.
	Children map[int32]*Node
}

// Lattice is the mining summary: a prefix lattice of item sequences
// with support counts, grown incrementally as database slices are
// processed.
type Lattice struct {
	// Root's children are the length-1 sequences.
	Root *Node
	// MaxLen bounds mined sequence length (the paper's average
	// pattern length is 4).
	MaxLen int
	// MinSupport prunes sequences during Compact.
	MinSupport int32
	// ExtendMin suppresses noise: a sequence is only extended with
	// new children once its own support reaches this bound (the
	// usual progressive-deepening trick; keeps the lattice to
	// "potentially meaningful" sequences as in the paper).
	ExtendMin int32
	nodes     int
}

// NewLattice returns an empty lattice mining sequences up to maxLen.
func NewLattice(maxLen int, minSupport int32) (*Lattice, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("seqmine: max sequence length %d", maxLen)
	}
	if minSupport < 1 {
		return nil, fmt.Errorf("seqmine: min support %d", minSupport)
	}
	return &Lattice{
		Root:       &Node{Children: make(map[int32]*Node)},
		MaxLen:     maxLen,
		MinSupport: minSupport,
		ExtendMin:  minSupport,
	}, nil
}

// Nodes returns the number of sequence nodes (excluding the root).
func (l *Lattice) Nodes() int { return l.nodes }

// AddSequences folds customer sequences into the lattice: every
// window of length <= MaxLen is counted. This is the incremental
// update the database server performs with each additional 1% of the
// database.
func (l *Lattice) AddSequences(seqs [][]int32) {
	for _, seq := range seqs {
		for i := range seq {
			node := l.Root
			end := i + l.MaxLen
			if end > len(seq) {
				end = len(seq)
			}
			for j := i; j < end; j++ {
				item := seq[j]
				child, ok := node.Children[item]
				if !ok {
					if node != l.Root && node.Support < l.ExtendMin {
						break // not yet meaningful enough to extend
					}
					child = &Node{Item: item, Children: make(map[int32]*Node)}
					node.Children[item] = child
					l.nodes++
				}
				child.Support++
				node = child
			}
		}
	}
}

// Compact prunes sequences below MinSupport, bounding lattice growth
// the way the paper's summary structure keeps only "potentially
// meaningful" sequences.
func (l *Lattice) Compact() int {
	removed := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		for item, child := range n.Children {
			if child.Support < l.MinSupport {
				removed += countNodes(child)
				delete(n.Children, item)
				continue
			}
			walk(child)
		}
	}
	walk(l.Root)
	l.nodes -= removed
	return removed
}

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// Frequent returns the frequent sequences (support >= min), sorted by
// descending support then lexicographically — the mining query a
// client runs against the shared summary.
func (l *Lattice) Frequent(min int32, limit int) []Pattern {
	var out []Pattern
	var walk func(n *Node, prefix []int32)
	walk = func(n *Node, prefix []int32) {
		for _, c := range n.Children {
			seq := append(append([]int32{}, prefix...), c.Item)
			if c.Support >= min {
				out = append(out, Pattern{Seq: seq, Support: c.Support})
			}
			walk(c, seq)
		}
	}
	walk(l.Root, nil)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return lessSeq(out[i].Seq, out[j].Seq)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Pattern is a mined sequence with its support.
type Pattern struct {
	Seq     []int32
	Support int32
}

func lessSeq(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
