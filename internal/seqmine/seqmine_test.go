package seqmine

import (
	"net"
	"testing"

	"interweave"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Errorf("small config: %v", err)
	}
	bad := []Config{
		{},
		{Customers: 10, Items: 1, Patterns: 1, PatternLen: 4, TransPerCustomer100: 125, ItemsPerTrans: 5},
		{Customers: 10, Items: 10, Patterns: 0, PatternLen: 4, TransPerCustomer100: 125, ItemsPerTrans: 5},
		{Customers: 10, Items: 10, Patterns: 1, PatternLen: 1, TransPerCustomer100: 125, ItemsPerTrans: 5},
		{Customers: 10, Items: 10, Patterns: 1, PatternLen: 4, TransPerCustomer100: 50, ItemsPerTrans: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	db1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(db1.Sequences) != cfg.Customers {
		t.Fatalf("customers = %d", len(db1.Sequences))
	}
	for i := range db1.Sequences {
		if len(db1.Sequences[i]) != len(db2.Sequences[i]) {
			t.Fatal("generation not deterministic")
		}
	}
	// Items within vocabulary.
	for _, s := range db1.Sequences {
		for _, it := range s {
			if it < 0 || it >= int32(cfg.Items) {
				t.Fatalf("item %d out of vocabulary", it)
			}
		}
	}
	if db1.SizeBytes() < cfg.Customers*cfg.ItemsPerTrans {
		t.Errorf("database suspiciously small: %d bytes", db1.SizeBytes())
	}
}

func TestGenerateDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size database in -short mode")
	}
	db, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	size := db.SizeBytes()
	// The paper's database is ~20 MB.
	if size < 15<<20 || size > 40<<20 {
		t.Errorf("database size = %d MB, want ~20", size>>20)
	}
}

func TestSlice(t *testing.T) {
	db, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Slice(0, 10); len(got) != 10 {
		t.Errorf("Slice(0,10) = %d", len(got))
	}
	if got := db.Slice(-5, 3); len(got) != 3 {
		t.Errorf("Slice(-5,3) = %d", len(got))
	}
	if got := db.Slice(10, 5); got != nil {
		t.Errorf("inverted slice = %d", len(got))
	}
	if got := db.Slice(0, 1<<30); len(got) != len(db.Sequences) {
		t.Errorf("overlong slice = %d", len(got))
	}
}

func TestLatticeCountsSupports(t *testing.T) {
	l, err := NewLattice(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtendMin = 1
	l.AddSequences([][]int32{{1, 2, 3}, {1, 2}, {1}})
	// Support of <1> = 3, <1,2> = 2, <1,2,3> = 1.
	n1 := l.Root.Children[1]
	if n1 == nil || n1.Support != 3 {
		t.Fatalf("support(<1>) = %v", n1)
	}
	n12 := n1.Children[2]
	if n12 == nil || n12.Support != 2 {
		t.Fatalf("support(<1,2>) = %v", n12)
	}
	if n12.Children[3] == nil || n12.Children[3].Support != 1 {
		t.Fatal("support(<1,2,3>) wrong")
	}
	// Windows start at every position: <2>, <2,3>, <3> counted too.
	if l.Root.Children[2] == nil || l.Root.Children[2].Support != 2 {
		t.Error("window starts missing")
	}
	if l.Nodes() != 6 {
		t.Errorf("nodes = %d, want 6", l.Nodes())
	}
}

func TestLatticeMaxLen(t *testing.T) {
	l, err := NewLattice(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.AddSequences([][]int32{{5, 6, 7}})
	n := l.Root.Children[5]
	if n == nil || n.Children[6] == nil {
		t.Fatal("depth-2 sequence missing")
	}
	if n.Children[6].Children[7] != nil {
		t.Error("sequence longer than MaxLen recorded")
	}
}

func TestExtendMinSuppressesNoise(t *testing.T) {
	l, err := NewLattice(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// One occurrence: the level-1 node appears, but no extension
	// happens until support reaches ExtendMin.
	l.AddSequences([][]int32{{9, 8}})
	if l.Root.Children[9] == nil {
		t.Fatal("level-1 node missing")
	}
	if l.Root.Children[9].Children[8] != nil {
		t.Error("noise chain extended below ExtendMin")
	}
	// After enough repetitions the extension is allowed.
	for i := 0; i < 5; i++ {
		l.AddSequences([][]int32{{9, 8}})
	}
	if l.Root.Children[9].Children[8] == nil {
		t.Error("extension still suppressed above ExtendMin")
	}
}

func TestCompact(t *testing.T) {
	l, err := NewLattice(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtendMin = 1
	l.AddSequences([][]int32{{1, 2}, {1, 2}, {1, 2}, {1, 3}})
	before := l.Nodes()
	removed := l.Compact()
	if removed == 0 {
		t.Error("nothing pruned")
	}
	if l.Nodes() != before-removed {
		t.Errorf("node count inconsistent: %d != %d-%d", l.Nodes(), before, removed)
	}
	if l.Root.Children[1].Children[3] != nil {
		t.Error("infrequent <1,3> survived")
	}
	if l.Root.Children[1].Children[2] == nil {
		t.Error("frequent <1,2> pruned")
	}
}

func TestFrequent(t *testing.T) {
	l, err := NewLattice(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtendMin = 1
	l.AddSequences([][]int32{{1, 2}, {1, 2}, {3}})
	pats := l.Frequent(2, 0)
	if len(pats) != 2 { // <1> and <1,2>... plus <2> also has support 2
		// <2> appears as window start in both sequences: support 2.
		t.Logf("patterns: %+v", pats)
	}
	if len(pats) == 0 || pats[0].Support < pats[len(pats)-1].Support {
		t.Error("patterns not sorted by support")
	}
	limited := l.Frequent(1, 2)
	if len(limited) != 2 {
		t.Errorf("limit ignored: %d", len(limited))
	}
}

func TestMiningFindsPlantedPatterns(t *testing.T) {
	cfg := SmallConfig()
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(cfg.PatternLen, 20)
	if err != nil {
		t.Fatal(err)
	}
	l.AddSequences(db.Sequences)
	pats := l.Frequent(int32(cfg.Customers/20), 50)
	if len(pats) == 0 {
		t.Fatal("no frequent patterns found in a pattern-planted database")
	}
	// The most frequent length>=2 pattern should have support far
	// above random chance (customers/items^2 expectation).
	var best *Pattern
	for i := range pats {
		if len(pats[i].Seq) >= 2 {
			best = &pats[i]
			break
		}
	}
	if best == nil {
		t.Fatal("no multi-item frequent pattern")
	}
	if int(best.Support) < cfg.Customers/20 {
		t.Errorf("top pattern support %d too low", best.Support)
	}
}

func startServer(t *testing.T) string {
	t.Helper()
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

// TestPublishSubscribeRoundtrip shares a lattice through a real
// server and checks the mining client sees identical frequent
// patterns, across heterogeneous machine profiles.
func TestPublishSubscribeRoundtrip(t *testing.T) {
	addr := startServer(t)
	seg := addr + "/lattice"

	cw, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileAlpha()})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	pub, err := NewPublisher(cw, seg)
	if err != nil {
		t.Fatal(err)
	}

	cfg := SmallConfig()
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(cfg.PatternLen, 10)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.Customers / 2
	l.AddSequences(db.Slice(0, half))
	if err := pub.Publish(l); err != nil {
		t.Fatal(err)
	}

	cr, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileSparc()})
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	sub, err := NewSubscriber(cr, seg, interweave.Full())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantPats := l.Frequent(50, 20)
	gotPats := got.Frequent(50, 20)
	if len(wantPats) != len(gotPats) {
		t.Fatalf("pattern counts: want %d, got %d", len(wantPats), len(gotPats))
	}
	for i := range wantPats {
		if wantPats[i].Support != gotPats[i].Support || !eqSeq(wantPats[i].Seq, gotPats[i].Seq) {
			t.Fatalf("pattern %d: want %+v, got %+v", i, wantPats[i], gotPats[i])
		}
	}

	// Incremental update: one more slice, republish, resync.
	l.AddSequences(db.Slice(half, half+cfg.Customers/100))
	if err := pub.Publish(l); err != nil {
		t.Fatal(err)
	}
	got2, err := sub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w2 := l.Frequent(50, 20)
	g2 := got2.Frequent(50, 20)
	if len(w2) != len(g2) {
		t.Fatalf("after update: want %d patterns, got %d", len(w2), len(g2))
	}
	for i := range w2 {
		if w2[i].Support != g2[i].Support || !eqSeq(w2[i].Seq, g2[i].Seq) {
			t.Fatalf("after update, pattern %d differs", i)
		}
	}
}

func eqSeq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPublisherNilClient(t *testing.T) {
	if _, err := NewPublisher(nil, "x/y"); err == nil {
		t.Error("NewPublisher(nil) succeeded")
	}
	if _, err := NewSubscriber(nil, "x/y", interweave.Full()); err == nil {
		t.Error("NewSubscriber(nil) succeeded")
	}
}

func TestNewLatticeErrors(t *testing.T) {
	if _, err := NewLattice(0, 1); err == nil {
		t.Error("maxLen 0 accepted")
	}
	if _, err := NewLattice(3, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
}
