package coherence

import (
	"testing"
	"time"
)

func TestPolicyValidate(t *testing.T) {
	good := []Policy{
		Full(),
		Delta(0),
		Delta(5),
		Temporal(time.Second),
		Diff(1),
		Diff(100),
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", p, err)
		}
	}
	bad := []Policy{
		{},
		{Model: 99},
		Temporal(0),
		Temporal(-time.Second),
		Diff(0),
		Diff(101),
		Diff(-3),
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestModelString(t *testing.T) {
	tests := map[Model]string{
		ModelFull:     "full",
		ModelDelta:    "delta",
		ModelTemporal: "temporal",
		ModelDiff:     "diff",
		ModelInvalid:  "invalid",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestLocallyFresh(t *testing.T) {
	now := time.Now()
	tests := []struct {
		name string
		p    Policy
		s    State
		want bool
	}{
		{"never fetched", Full(), State{}, false},
		{"full unsubscribed", Full(), State{Version: 3, FetchedAt: now}, false},
		{"subscribed valid", Full(), State{Version: 3, Subscribed: true}, true},
		{"subscribed invalidated", Full(), State{Version: 3, Subscribed: true, Invalidated: true}, false},
		{"temporal inside window", Temporal(time.Minute), State{Version: 1, FetchedAt: now.Add(-time.Second)}, true},
		{"temporal expired", Temporal(time.Minute), State{Version: 1, FetchedAt: now.Add(-2 * time.Minute)}, false},
		{"delta unsubscribed", Delta(2), State{Version: 1, FetchedAt: now}, false},
		{"diff subscribed", Diff(10), State{Version: 1, Subscribed: true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.LocallyFresh(tt.s, now); got != tt.want {
				t.Errorf("LocallyFresh = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestShouldUpdate(t *testing.T) {
	tests := []struct {
		name                      string
		p                         Policy
		clientVer, curVer         uint32
		unitsModified, unitsTotal int
		want                      bool
	}{
		{"up to date", Full(), 5, 5, 0, 100, false},
		{"client ahead", Full(), 6, 5, 0, 100, false},
		{"full behind", Full(), 4, 5, 0, 100, true},
		{"delta within bound", Delta(2), 3, 5, 0, 100, false},
		{"delta exceeded", Delta(2), 2, 5, 0, 100, true},
		{"delta zero behaves full", Delta(0), 4, 5, 0, 100, true},
		{"temporal behind", Temporal(time.Second), 4, 5, 0, 100, true},
		{"diff under threshold", Diff(10), 1, 9, 5, 100, false},
		{"diff over threshold", Diff(10), 1, 9, 11, 100, true},
		{"diff exactly at threshold", Diff(10), 1, 9, 10, 100, false},
		{"diff empty segment", Diff(10), 1, 2, 0, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.ShouldUpdate(tt.clientVer, tt.curVer, tt.unitsModified, tt.unitsTotal)
			if got != tt.want {
				t.Errorf("ShouldUpdate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDeltaNeverMoreThanXStale(t *testing.T) {
	// Property: under Delta(x), if ShouldUpdate is obeyed, staleness
	// never exceeds x.
	for _, x := range []uint32{0, 1, 3, 7} {
		p := Delta(x)
		client := uint32(0)
		for cur := uint32(1); cur <= 50; cur++ {
			if p.ShouldUpdate(client, cur, 0, 1) {
				client = cur
			}
			if cur-client > x {
				t.Fatalf("Delta(%d): staleness %d at version %d", x, cur-client, cur)
			}
		}
	}
}

func TestAdaptiveStartsPolling(t *testing.T) {
	var a Adaptive
	if a.Mode() != ModePoll {
		t.Errorf("initial mode = %v", a.Mode())
	}
}

func TestAdaptiveSwitchToNotify(t *testing.T) {
	var a Adaptive
	if a.RecordPoll(true) {
		t.Error("switched after an update-needed poll")
	}
	for i := 0; i < adaptThreshold-1; i++ {
		if a.RecordPoll(false) {
			t.Fatalf("switched after %d fresh polls", i+1)
		}
	}
	if !a.RecordPoll(false) {
		t.Fatal("did not switch after threshold fresh polls")
	}
	if a.Mode() != ModeNotify {
		t.Errorf("mode = %v, want notify", a.Mode())
	}
	// Further RecordPoll calls in notify mode are ignored.
	if a.RecordPoll(false) {
		t.Error("RecordPoll switched while in notify mode")
	}
}

func TestAdaptiveSwitchBackToPoll(t *testing.T) {
	var a Adaptive
	for i := 0; i < adaptThreshold; i++ {
		a.RecordPoll(false)
	}
	if a.Mode() != ModeNotify {
		t.Fatal("setup failed")
	}
	// Fresh read-locks keep it in notify mode.
	if a.RecordNotified(false) {
		t.Error("switched on a fresh notify-mode check")
	}
	for i := 0; i < adaptThreshold-1; i++ {
		if a.RecordNotified(true) {
			t.Fatalf("switched after %d invalidations", i+1)
		}
	}
	if !a.RecordNotified(true) {
		t.Fatal("did not switch back after threshold invalidations")
	}
	if a.Mode() != ModePoll {
		t.Errorf("mode = %v, want poll", a.Mode())
	}
}

func TestAdaptiveInterruptedStreak(t *testing.T) {
	var a Adaptive
	a.RecordPoll(false)
	a.RecordPoll(false)
	a.RecordPoll(true) // resets streak
	a.RecordPoll(false)
	a.RecordPoll(false)
	if a.Mode() != ModePoll {
		t.Error("switched despite interrupted streak")
	}
}
