// Package coherence implements InterWeave's relaxed coherence models
// (paper Sections 2.2 and 3.2).
//
// When a process acquires a read lock, the client library and server
// collaboratively decide whether the cached copy is "recent enough"
// under the model the client selected:
//
//   - Full coherence: only the current version is acceptable.
//   - Delta coherence: the copy may be at most x versions out of date.
//   - Temporal coherence: at most x time units out of date.
//   - Diff-based coherence: at most x% of the primitive data units
//     may be out of date; the server tracks modifications with a
//     conservative single counter per client.
//
// An adaptive polling/notification protocol lets the client skip
// server communication entirely when updates are not required.
package coherence

import (
	"errors"
	"fmt"
	"time"
)

// Model selects a coherence model.
type Model uint8

// Supported models.
const (
	ModelInvalid Model = iota
	ModelFull
	ModelDelta
	ModelTemporal
	ModelDiff
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelFull:
		return "full"
	case ModelDelta:
		return "delta"
	case ModelTemporal:
		return "temporal"
	case ModelDiff:
		return "diff"
	default:
		return "invalid"
	}
}

// Policy is a model plus its bound. The bound may be changed
// dynamically by the process, as the paper specifies.
type Policy struct {
	Model Model
	// Delta is the maximum staleness in versions (ModelDelta).
	Delta uint32
	// Window is the maximum staleness in time (ModelTemporal).
	Window time.Duration
	// Percent is the maximum fraction (0-100] of primitive units
	// that may be stale (ModelDiff).
	Percent float64
}

// Full returns the strictest policy: always update to the current
// version.
func Full() Policy { return Policy{Model: ModelFull} }

// Delta returns a policy tolerating x versions of staleness.
func Delta(x uint32) Policy { return Policy{Model: ModelDelta, Delta: x} }

// Temporal returns a policy tolerating staleness up to d.
func Temporal(d time.Duration) Policy { return Policy{Model: ModelTemporal, Window: d} }

// Diff returns a policy tolerating pct percent of stale units.
func Diff(pct float64) Policy { return Policy{Model: ModelDiff, Percent: pct} }

// Validate reports whether the policy is well formed.
func (p Policy) Validate() error {
	switch p.Model {
	case ModelFull:
		return nil
	case ModelDelta:
		return nil
	case ModelTemporal:
		if p.Window <= 0 {
			return errors.New("coherence: temporal window must be positive")
		}
		return nil
	case ModelDiff:
		if p.Percent <= 0 || p.Percent > 100 {
			return fmt.Errorf("coherence: diff percentage %v out of (0,100]", p.Percent)
		}
		return nil
	default:
		return fmt.Errorf("coherence: invalid model %d", p.Model)
	}
}

// State is the client-side freshness record for one cached segment.
type State struct {
	// Version is the cached segment version; zero means never
	// fetched.
	Version uint32
	// FetchedAt is when the cached version was obtained.
	FetchedAt time.Time
	// Subscribed reports whether the server has promised to notify
	// when the policy's bound is exceeded.
	Subscribed bool
	// Invalidated is set when such a notification arrives.
	Invalidated bool
}

// LocallyFresh reports whether a read lock may be granted without
// contacting the server. This is where relaxed coherence pays off:
// under temporal coherence the clock decides, and under any model a
// standing notification subscription substitutes for polling.
func (p Policy) LocallyFresh(s State, now time.Time) bool {
	if s.Version == 0 {
		return false
	}
	if s.Subscribed {
		return !s.Invalidated
	}
	if p.Model == ModelTemporal {
		return now.Sub(s.FetchedAt) <= p.Window
	}
	return false
}

// ShouldUpdate is the server-side decision: given the client's cached
// version, the current version, and (for diff coherence) the
// conservative count of units modified since the client's last
// update, does the policy require sending an update?
func (p Policy) ShouldUpdate(clientVer, curVer uint32, unitsModified, unitsTotal int) bool {
	if clientVer >= curVer {
		return false
	}
	switch p.Model {
	case ModelDelta:
		return curVer-clientVer > p.Delta
	case ModelDiff:
		if unitsTotal == 0 {
			return true
		}
		return float64(unitsModified) > p.Percent/100*float64(unitsTotal)
	default:
		// Full always updates; Temporal clients only ask when their
		// window has expired, at which point they want the current
		// version.
		return true
	}
}

// Mode selects how a client learns about staleness.
type Mode uint8

// Modes of the adaptive protocol.
const (
	// ModePoll asks the server at each read-lock acquisition.
	ModePoll Mode = iota + 1
	// ModeNotify relies on server notifications; read locks are
	// granted locally while no notification has arrived.
	ModeNotify
)

// adaptThreshold is how many consecutive same-outcome checks flip the
// adaptive protocol between polling and notification.
const adaptThreshold = 3

// Adaptive tracks the polling/notification decision for one cached
// segment. The zero value starts in polling mode.
type Adaptive struct {
	mode        Mode
	freshPolls  int
	staleNotify int
}

// Mode returns the current mode.
func (a *Adaptive) Mode() Mode {
	if a.mode == 0 {
		return ModePoll
	}
	return a.mode
}

// RecordPoll notes the outcome of a server poll; after enough
// consecutive "no update needed" polls the protocol switches to
// notifications (returning true exactly when the mode changes).
func (a *Adaptive) RecordPoll(updateNeeded bool) bool {
	if a.Mode() != ModePoll {
		return false
	}
	if updateNeeded {
		a.freshPolls = 0
		return false
	}
	a.freshPolls++
	if a.freshPolls >= adaptThreshold {
		a.mode = ModeNotify
		a.freshPolls = 0
		return true
	}
	return false
}

// RecordNotified notes that a read-lock acquisition found the cached
// copy invalidated by a notification; after enough consecutive
// invalidations the protocol switches back to polling (returning true
// exactly when the mode changes).
func (a *Adaptive) RecordNotified(invalidated bool) bool {
	if a.Mode() != ModeNotify {
		return false
	}
	if !invalidated {
		a.staleNotify = 0
		return false
	}
	a.staleNotify++
	if a.staleNotify >= adaptThreshold {
		a.mode = ModePoll
		a.staleNotify = 0
		return true
	}
	return false
}
