package protocol

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"interweave/internal/wire"
)

// TestQuickReadFrameNeverPanics feeds arbitrary bytes to the frame
// reader; it must fail cleanly, never panic, and never allocate
// absurd buffers.
func TestQuickReadFrameNeverPanics(t *testing.T) {
	fn := func(data []byte) bool {
		r := bytes.NewReader(data)
		for {
			_, _, err := ReadFrame(r)
			if err != nil {
				return true
			}
			if r.Len() == 0 {
				return true
			}
		}
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMutatedFrames takes valid frames and flips random bytes:
// decoding must never panic.
func TestQuickMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	msgs := []Message{
		&Hello{ClientName: "c", Profile: "p"},
		&OpenReply{Version: 3, Dir: &wire.SegmentDiff{
			Version: 3,
			News:    []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 2, Name: "n"}},
			Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{
				{Start: 0, Count: 2, Data: []byte{0, 0, 0, 1, 0, 0, 0, 2}},
			}}},
		}},
		&WriteUnlock{Seg: "s", Diff: &wire.SegmentDiff{Version: 9}},
		&Notify{Seg: "s", Version: 7},
	}
	for trial := 0; trial < 800; trial++ {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, uint32(trial), msgs[trial%len(msgs)]); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		for k := 0; k < 1+rng.Intn(4); k++ {
			raw[rng.Intn(len(raw))] ^= byte(1 << rng.Intn(8))
		}
		// Must not panic; errors are fine.
		_, _, _ = ReadFrame(bytes.NewReader(raw))
	}
}

// TestTruncatedFramesAllPrefixes decodes every prefix of a complex
// frame.
func TestTruncatedFramesAllPrefixes(t *testing.T) {
	var buf bytes.Buffer
	msg := &OpenReply{Created: true, Version: 5, Dir: &wire.SegmentDiff{
		Version: 5,
		Descs:   []wire.DescDef{{Serial: 1, Bytes: []byte{1, 2, 3}}},
		News:    []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 4, Name: "blk"}},
		Freed:   []uint32{9},
		Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{
			{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}},
		}}},
	}}
	if err := WriteFrame(&buf, 1, msg); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(raw))
		}
	}
	// The full frame still decodes.
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

// FuzzReadFrame is the native-fuzzing counterpart of the quick
// checks above: arbitrary bytes must decode cleanly or error, never
// panic, and whatever decodes must survive a re-encode/re-decode
// cycle.
func FuzzReadFrame(f *testing.F) {
	seed := func(id uint32, m Message) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, id, m); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(1, &Hello{ClientName: "c", Profile: "amd64"}))
	f.Add(seed(2, &OpenSegment{Name: "host:1/s", Create: true}))
	f.Add(seed(3, &WriteUnlock{Seg: "s", WriterID: "w/1/1", Seq: 9}))
	f.Add(seed(4, &Resume{Seg: "s", WriterID: "w/1/1", Seq: 9}))
	f.Add(seed(0, &Notify{Seg: "s", Version: 3}))
	f.Add(seed(5, &ErrorReply{Code: CodeLockState, Text: "nope"}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, id, m); err != nil {
			t.Fatalf("re-encoding decoded %T: %v", m, err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			t.Fatalf("re-decoding own encoding of %T: %v", m, err)
		}
	})
}
