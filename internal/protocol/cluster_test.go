package protocol

import (
	"bytes"
	"reflect"
	"testing"

	"interweave/internal/wire"
)

// testMembership is a representative membership view exercising every
// field: a dead member, a metrics-addr advertisement (alone and
// combined with the dead flag), overrides, and non-default placement
// params.
func testMembership() Membership {
	return Membership{
		Epoch:    7,
		Replicas: 2,
		VNodes:   64,
		Members: []Member{
			{Addr: "127.0.0.1:7001", MetricsAddr: "127.0.0.1:9001"},
			{Addr: "127.0.0.1:7002", Dead: true, MetricsAddr: "127.0.0.1:9002"},
			{Addr: "127.0.0.1:7003"},
		},
		Overrides: []Override{{Seg: "127.0.0.1:7001/hot", Addr: "127.0.0.1:7003"}},
	}
}

// TestMembershipMetricsAddrRoundTrip pins the member flag-byte
// encoding: bit 0 dead, bit 1 metrics-addr present, every
// combination.
func TestMembershipMetricsAddrRoundTrip(t *testing.T) {
	ms := Membership{
		Epoch: 1, Replicas: 1, VNodes: 8,
		Members: []Member{
			{Addr: "a:1"},
			{Addr: "b:1", Dead: true},
			{Addr: "c:1", MetricsAddr: "c:9"},
			{Addr: "d:1", Dead: true, MetricsAddr: "d:9"},
		},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, &RingReply{Ms: ms}); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*RingReply).Ms.Members, ms.Members) {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", got.(*RingReply).Ms.Members, ms.Members)
	}
}

// TestClusterFramesRoundTrip encodes and decodes every cluster frame
// type and requires the result to be deep-equal.
func TestClusterFramesRoundTrip(t *testing.T) {
	diff := &wire.SegmentDiff{
		Version: 9,
		News:    []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 2, Name: "n"}},
		Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{
			{Start: 0, Count: 2, Data: []byte{0, 0, 0, 1, 0, 0, 0, 2}},
		}}},
	}
	applied := []AppliedEntry{
		{WriterID: "w/1/1", Seq: 3, Version: 8},
		{WriterID: "w/2/9", Seq: 1, Version: 5},
	}
	msgs := []Message{
		&Redirect{Seg: "a:1/s", Owner: "127.0.0.1:7003", Ms: testMembership()},
		&RingGet{HaveEpoch: 6},
		&RingReply{Ms: testMembership()},
		&RingPush{Ms: testMembership()},
		&Replicate{Seg: "a:1/s", Epoch: 7, From: "127.0.0.1:7001", PrevVersion: 8, Version: 9, Diff: diff, Applied: applied},
		&Replicate{Seg: "a:1/s", Version: 9, Raw: []byte{1, 2, 3, 4}, Applied: applied},
		&ReplicateReply{Acked: true, Version: 9},
		&ReplicateReply{Version: 4},
		&ReplicateReply{Fenced: true, Version: 4, Ms: testMembership()},
		&Migrate{Seg: "a:1/s", Target: "127.0.0.1:7002"},
		&Pull{Seg: "a:1/s", HaveVersion: 4},
		&PullReply{Version: 9, Diff: diff, Applied: applied},
		&PullReply{},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 42, m); err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		id, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if id != 42 {
			t.Fatalf("%T: id = %d", m, id)
		}
		if got.Type() != m.Type() {
			t.Fatalf("decoded %T from a %T frame", got, m)
		}
		// Byte-identical re-encoding proves the decode lost nothing
		// (SegmentDiff fields included), without nil-vs-empty noise.
		var again bytes.Buffer
		if err := WriteFrame(&again, 42, got); err != nil {
			t.Fatalf("%T: re-encode: %v", m, err)
		}
		if !bytes.Equal(first, again.Bytes()) {
			t.Errorf("%T: re-encoding differs from original frame", m)
		}
	}
}

// TestClusterFramesTruncated decodes every prefix of a complex
// cluster frame; all must fail without panicking.
func TestClusterFramesTruncated(t *testing.T) {
	var buf bytes.Buffer
	msg := &Replicate{
		Seg: "a:1/s", Epoch: 5, From: "127.0.0.1:7001", PrevVersion: 2, Version: 3,
		Diff:    &wire.SegmentDiff{Version: 3, Freed: []uint32{7}},
		Applied: []AppliedEntry{{WriterID: "w", Seq: 1, Version: 3}},
	}
	if err := WriteFrame(&buf, 1, msg); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(raw))
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

// TestMembershipLive filters dead members.
func TestMembershipLive(t *testing.T) {
	ms := testMembership()
	live := ms.Live()
	want := []string{"127.0.0.1:7001", "127.0.0.1:7003"}
	if !reflect.DeepEqual(live, want) {
		t.Errorf("Live() = %v, want %v", live, want)
	}
	cp := ms.Clone()
	cp.Members[0].Dead = true
	if ms.Members[0].Dead {
		t.Error("Clone shares Members backing array")
	}
}
