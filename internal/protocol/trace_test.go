package protocol

import (
	"bytes"
	"strings"
	"testing"

	"interweave/internal/wire"
)

// TestFrameTraceContextRoundTrip proves a frame carries its trace
// context intact: WriteFrameCtx with a valid context must come back
// from ReadFrameCtx with the same IDs and an unchanged payload.
func TestFrameTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef}
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, 7, &ReadLock{Seg: "host/acc", HaveVersion: 3}, tc); err != nil {
		t.Fatalf("WriteFrameCtx: %v", err)
	}
	id, m, got, err := ReadFrameCtx(&buf)
	if err != nil {
		t.Fatalf("ReadFrameCtx: %v", err)
	}
	if id != 7 {
		t.Errorf("id = %d, want 7", id)
	}
	if got != tc {
		t.Errorf("trace context = %+v, want %+v", got, tc)
	}
	rl, ok := m.(*ReadLock)
	if !ok {
		t.Fatalf("message = %T, want *ReadLock", m)
	}
	if rl.Seg != "host/acc" || rl.HaveVersion != 3 {
		t.Errorf("ReadLock = %+v", rl)
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes left in buffer", buf.Len())
	}
}

// TestFrameWithoutTraceContextDecodes is the version-tolerance
// guarantee from the other side: frames written by a peer that never
// heard of trace contexts (plain WriteFrame) must decode through
// ReadFrameCtx with a zero context, and a zero-context WriteFrameCtx
// must emit bytes identical to WriteFrame's so old readers are never
// shown the flag.
func TestFrameWithoutTraceContextDecodes(t *testing.T) {
	msg := &WriteLock{Seg: "host/acc", HaveVersion: 9}

	var old bytes.Buffer
	if err := WriteFrame(&old, 3, msg); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	oldBytes := append([]byte(nil), old.Bytes()...)

	id, m, tc, err := ReadFrameCtx(&old)
	if err != nil {
		t.Fatalf("ReadFrameCtx(plain frame): %v", err)
	}
	if id != 3 {
		t.Errorf("id = %d, want 3", id)
	}
	if tc != (TraceContext{}) {
		t.Errorf("plain frame yielded trace context %+v, want zero", tc)
	}
	if wl, ok := m.(*WriteLock); !ok || wl.Seg != "host/acc" || wl.HaveVersion != 9 {
		t.Errorf("message = %#v", m)
	}

	var zero bytes.Buffer
	if err := WriteFrameCtx(&zero, 3, msg, TraceContext{}); err != nil {
		t.Fatalf("WriteFrameCtx(zero): %v", err)
	}
	if !bytes.Equal(zero.Bytes(), oldBytes) {
		t.Errorf("zero-context frame differs from plain frame:\n got  %x\n want %x", zero.Bytes(), oldBytes)
	}
}

// TestTracedFrameReadableByPlainReadFrame checks that a reader which
// does not care about trace context (ReadFrame) still decodes a
// flagged frame's message correctly.
func TestTracedFrameReadableByPlainReadFrame(t *testing.T) {
	tc := TraceContext{TraceID: 1, SpanID: 2}
	var buf bytes.Buffer
	if err := WriteFrameCtx(&buf, 11, &Ack{}, tc); err != nil {
		t.Fatalf("WriteFrameCtx: %v", err)
	}
	id, m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame(traced frame): %v", err)
	}
	if id != 11 {
		t.Errorf("id = %d, want 11", id)
	}
	if _, ok := m.(*Ack); !ok {
		t.Errorf("message = %T, want *Ack", m)
	}
}

// TestTraceContextHalfValidNotSent: a context with only one ID set is
// not valid and must encode as a plain frame.
func TestTraceContextHalfValidNotSent(t *testing.T) {
	for _, tc := range []TraceContext{
		{TraceID: 5},
		{SpanID: 5},
		{},
	} {
		if tc.Valid() {
			t.Errorf("TraceContext%+v.Valid() = true, want false", tc)
		}
		var buf bytes.Buffer
		if err := WriteFrameCtx(&buf, 1, &Ack{}, tc); err != nil {
			t.Fatal(err)
		}
		if buf.Bytes()[8]&0x80 != 0 {
			t.Errorf("half-valid context %+v set the trace flag", tc)
		}
	}
}

// TestTracedFrameTooShortRejected: a frame whose type byte claims a
// trace context but whose length cannot hold one is a protocol error,
// not a crash or a silent misparse.
func TestTracedFrameTooShortRejected(t *testing.T) {
	var hdr []byte
	hdr = wire.AppendU32(hdr, 8) // shorter than the 16-byte context
	hdr = wire.AppendU32(hdr, 1)
	hdr = wire.AppendU8(hdr, byte(TypeAck)|0x80)
	hdr = append(hdr, make([]byte, 8)...)
	_, _, _, err := ReadFrameCtx(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("short traced frame decoded without error")
	}
	if !strings.Contains(err.Error(), "trace context") {
		t.Errorf("error = %v, want mention of trace context", err)
	}
}
