// This file holds the cluster frames: the messages internal/cluster
// and the server's sharded-serving mode exchange — membership/epoch
// gossip, redirect routing, primary→replica diff streaming, promotion
// catch-up, and segment migration. Like the trace-context flag, the
// additions are version-tolerant by construction: none of these types
// is ever sent unless cluster mode is configured on both ends, so
// classic single-server deployments produce byte-identical traffic.

package protocol

import (
	"interweave/internal/wire"
)

// Cluster message types, continuing the MsgType space.
const (
	// TypeRedirect answers a segment RPC sent to a non-owner: the
	// requester should retry against Owner.
	TypeRedirect MsgType = iota + 19
	// TypeRingGet asks a node for its membership view.
	TypeRingGet
	// TypeRingReply answers RingGet with the current Membership.
	TypeRingReply
	// TypeRingPush offers a membership view to a peer (gossip); the
	// peer adopts it when the epoch is higher and replies Ack.
	TypeRingPush
	// TypeReplicate streams one committed diff (or a full state
	// snapshot) from a segment's primary to a replica.
	TypeReplicate
	// TypeReplicateReply acknowledges a Replicate with the replica's
	// resulting version.
	TypeReplicateReply
	// TypeMigrate moves a segment to a named target node under a
	// write-lock barrier.
	TypeMigrate
	// TypePull asks a peer for its replica state of a segment above a
	// version (promotion catch-up).
	TypePull
	// TypePullReply answers Pull.
	TypePullReply
)

// CodeNotOwner is the error code a cluster node reports when asked to
// mutate cluster state it cannot (e.g. Migrate for a segment it does
// not own and cannot route), and the code a fenced primary reports
// when a write release raced an ownership change: the write was not
// committed cluster-wide and the client must re-route and re-drive it.
const CodeNotOwner uint16 = 6

// CodeNotReplicated is the error code a primary reports when a write
// release could not be acknowledged by every placed replica. The write
// is not durable under the replicate-before-acknowledge contract and
// the client must treat the release as failed.
const CodeNotReplicated uint16 = 7

// Member is one cluster node in a Membership. Addr doubles as the
// node's identity: it is the address clients dial and the string
// hashed onto the ring.
type Member struct {
	// Addr is the node's host:port.
	Addr string
	// Dead marks a node excluded from placement after failover.
	Dead bool
	// MetricsAddr is the node's observability address (its /metrics,
	// /debug/slo, and /debug/segments HTTP surface), advertised
	// through gossip so fleet tools (tools/iwtop) can discover every
	// node's scrape endpoint from any one member. Empty when the node
	// runs without -metrics-addr.
	MetricsAddr string
	// Proxy marks a read fan-out proxy (DESIGN.md §11): a member that
	// participates in gossip so the fleet can see it, but contributes
	// no hash-ring placement points — it owns no segments and is
	// skipped by BuildRing exactly like a dead member.
	Proxy bool
}

// Override pins one segment to an owner outside hash placement — the
// result of a Migrate.
type Override struct {
	// Seg is the full segment URL.
	Seg string
	// Addr is the owning node.
	Addr string
}

// Membership is a cluster's versioned view of itself: which nodes
// exist, which are dead, the placement parameters, and any per-segment
// ownership overrides. Views are totally ordered by Epoch; every
// change (failover, migration) bumps it.
type Membership struct {
	// Epoch orders membership views; higher wins.
	Epoch uint64
	// Replicas is R, the number of successor nodes each segment is
	// replicated to.
	Replicas uint8
	// VNodes is the virtual-node count per member on the hash ring.
	VNodes uint16
	// Members lists every node, dead or alive, in join order.
	Members []Member
	// Overrides lists migrated segments and their pinned owners.
	Overrides []Override
}

// Live returns the addresses of the non-dead members, in order.
func (ms *Membership) Live() []string {
	out := make([]string, 0, len(ms.Members))
	for _, m := range ms.Members {
		if !m.Dead {
			out = append(out, m.Addr)
		}
	}
	return out
}

// Clone deep-copies the membership.
func (ms Membership) Clone() Membership {
	cp := ms
	cp.Members = append([]Member(nil), ms.Members...)
	cp.Overrides = append([]Override(nil), ms.Overrides...)
	return cp
}

// AppliedEntry mirrors one writer's at-most-once record — the
// (WriterID, Seq) → Version triple the server remembers per segment —
// so a promoted replica answers Resume probes exactly like the primary
// it replaces.
type AppliedEntry struct {
	// WriterID identifies the writing client instance.
	WriterID string
	// Seq is the writer's release sequence number.
	Seq uint32
	// Version is the segment version the release produced.
	Version uint32
}

// Redirect answers a segment RPC sent to a node that does not own the
// segment. It carries the full membership so one hop teaches the
// client the whole ring.
type Redirect struct {
	// Seg echoes the segment the request named.
	Seg string
	// Owner is the node the requester should retry against.
	Owner string
	// Ms is the answering node's membership view.
	Ms Membership
}

// RingGet asks a node for its membership view. HaveEpoch is advisory
// (diagnostics); the reply always carries the current view.
type RingGet struct {
	// HaveEpoch is the requester's cached epoch.
	HaveEpoch uint64
}

// RingReply answers RingGet.
type RingReply struct {
	// Ms is the node's current membership view.
	Ms Membership
}

// RingPush offers a membership view to a peer, which adopts it when
// the epoch is higher than its own. The reply is Ack.
type RingPush struct {
	// Ms is the pushed membership view.
	Ms Membership
}

// Replicate streams one committed write from a segment's primary to a
// replica. Exactly one of Diff and Raw is set: Diff is the wire-format
// diff producing Version on top of PrevVersion; Raw is a full
// checkpoint-codec state snapshot (migration and bootstrap), applied
// by replacement. Epoch and From fence the stream: a replica rejects
// frames from a node its own (equally new or newer) membership view
// does not place as the segment's owner, so a deposed primary cannot
// keep committing writes after a failover it has not yet heard about.
type Replicate struct {
	// Seg is the segment URL.
	Seg string
	// Epoch is the sender's membership epoch when it sent the frame.
	Epoch uint64
	// From is the sender's node address (its ring identity).
	From string
	// PrevVersion is the version the diff applies on top of.
	PrevVersion uint32
	// Version is the version the diff (or snapshot) produces.
	Version uint32
	// Diff is the committed wire-format diff, when incremental.
	Diff *wire.SegmentDiff
	// Raw is the checkpoint-codec segment state, when a snapshot.
	Raw []byte
	// Applied is the primary's full at-most-once table for the
	// segment, mirrored so promotion preserves release dedup.
	Applied []AppliedEntry
}

// ReplicateReply acknowledges a Replicate. Acked reports whether the
// replica applied it; when false, Version is the replica's current
// version so the primary can send a catch-up diff. Fenced means the
// replica's membership view no longer places the sender as the
// segment's owner: the frame was discarded and Ms carries the
// replica's view so the deposed primary can adopt it and demote.
type ReplicateReply struct {
	// Acked reports a successful apply.
	Acked bool
	// Fenced reports that the sender is not the owner under the
	// replica's view; Ms is that view.
	Fenced bool
	// Version is the replica's version after (or instead of) the
	// apply.
	Version uint32
	// Ms is the replica's membership view, set when Fenced.
	Ms Membership
}

// Migrate asks a segment's owner to move it to Target under a
// write-lock barrier. The reply is Ack once the ownership override is
// installed and gossiped.
type Migrate struct {
	// Seg is the segment URL.
	Seg string
	// Target is the node to move the segment to.
	Target string
}

// Pull asks a peer for its replica state of a segment above
// HaveVersion — the promotion catch-up probe, by which a new owner
// adopts the highest acked version any surviving replica holds.
type Pull struct {
	// Seg is the segment URL.
	Seg string
	// HaveVersion is the requester's current version.
	HaveVersion uint32
}

// PullReply answers Pull with the peer's version and, when it is ahead
// of HaveVersion, a diff bringing the requester up to date plus the
// peer's at-most-once table.
type PullReply struct {
	// Version is the peer's version of the segment (0 = not held).
	Version uint32
	// Diff brings the requester from HaveVersion to Version; nil when
	// the peer is not ahead.
	Diff *wire.SegmentDiff
	// Applied is the peer's at-most-once table for the segment.
	Applied []AppliedEntry
}

// Type implementations.

func (*Redirect) Type() MsgType       { return TypeRedirect }
func (*RingGet) Type() MsgType        { return TypeRingGet }
func (*RingReply) Type() MsgType      { return TypeRingReply }
func (*RingPush) Type() MsgType       { return TypeRingPush }
func (*Replicate) Type() MsgType      { return TypeReplicate }
func (*ReplicateReply) Type() MsgType { return TypeReplicateReply }
func (*Migrate) Type() MsgType        { return TypeMigrate }
func (*Pull) Type() MsgType           { return TypePull }
func (*PullReply) Type() MsgType      { return TypePullReply }

func appendMembership(buf []byte, ms Membership) []byte {
	buf = wire.AppendU64(buf, ms.Epoch)
	buf = wire.AppendU8(buf, ms.Replicas)
	buf = wire.AppendU16(buf, ms.VNodes)
	buf = wire.AppendU16(buf, uint16(len(ms.Members)))
	for _, m := range ms.Members {
		buf = wire.AppendString(buf, m.Addr)
		// The member flag byte: bit 0 = dead, bit 1 = a MetricsAddr
		// string follows, bit 2 = proxy role. Cluster frames only flow
		// between identically-configured cluster nodes, and decoders
		// treat the byte as a bit set, so each advertisement extends
		// the frame without a format break.
		var flags uint8
		if m.Dead {
			flags |= 1
		}
		if m.MetricsAddr != "" {
			flags |= 2
		}
		if m.Proxy {
			flags |= 4
		}
		buf = wire.AppendU8(buf, flags)
		if m.MetricsAddr != "" {
			buf = wire.AppendString(buf, m.MetricsAddr)
		}
	}
	buf = wire.AppendU16(buf, uint16(len(ms.Overrides)))
	for _, o := range ms.Overrides {
		buf = wire.AppendString(buf, o.Seg)
		buf = wire.AppendString(buf, o.Addr)
	}
	return buf
}

func readMembership(r *wire.Reader) (Membership, error) {
	var ms Membership
	ms.Epoch = r.U64()
	ms.Replicas = r.U8()
	ms.VNodes = r.U16()
	n := r.U16()
	if r.Err() != nil {
		return ms, r.Err()
	}
	ms.Members = make([]Member, n)
	for i := range ms.Members {
		ms.Members[i].Addr = r.Str()
		flags := r.U8()
		ms.Members[i].Dead = flags&1 != 0
		if flags&2 != 0 {
			ms.Members[i].MetricsAddr = r.Str()
		}
		ms.Members[i].Proxy = flags&4 != 0
	}
	no := r.U16()
	if r.Err() != nil {
		return ms, r.Err()
	}
	ms.Overrides = make([]Override, no)
	for i := range ms.Overrides {
		ms.Overrides[i].Seg = r.Str()
		ms.Overrides[i].Addr = r.Str()
	}
	return ms, r.Err()
}

func appendApplied(buf []byte, entries []AppliedEntry) []byte {
	buf = wire.AppendU16(buf, uint16(len(entries)))
	for _, e := range entries {
		buf = wire.AppendString(buf, e.WriterID)
		buf = wire.AppendU32(buf, e.Seq)
		buf = wire.AppendU32(buf, e.Version)
	}
	return buf
}

func readApplied(r *wire.Reader) ([]AppliedEntry, error) {
	n := r.U16()
	if r.Err() != nil {
		return nil, r.Err()
	}
	entries := make([]AppliedEntry, n)
	for i := range entries {
		entries[i].WriterID = r.Str()
		entries[i].Seq = r.U32()
		entries[i].Version = r.U32()
	}
	return entries, r.Err()
}

func (m *Redirect) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendString(buf, m.Owner)
	return appendMembership(buf, m.Ms)
}

func (m *Redirect) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.Owner = r.Str()
	var err error
	m.Ms, err = readMembership(r)
	return err
}

func (m *RingGet) encode(buf []byte) []byte { return wire.AppendU64(buf, m.HaveEpoch) }

func (m *RingGet) decode(r *wire.Reader) error {
	m.HaveEpoch = r.U64()
	return r.Err()
}

func (m *RingReply) encode(buf []byte) []byte { return appendMembership(buf, m.Ms) }

func (m *RingReply) decode(r *wire.Reader) error {
	var err error
	m.Ms, err = readMembership(r)
	return err
}

func (m *RingPush) encode(buf []byte) []byte { return appendMembership(buf, m.Ms) }

func (m *RingPush) decode(r *wire.Reader) error {
	var err error
	m.Ms, err = readMembership(r)
	return err
}

func (m *Replicate) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendU64(buf, m.Epoch)
	buf = wire.AppendString(buf, m.From)
	buf = wire.AppendU32(buf, m.PrevVersion)
	buf = wire.AppendU32(buf, m.Version)
	buf = appendDiff(buf, m.Diff)
	buf = wire.AppendBytes(buf, m.Raw)
	return appendApplied(buf, m.Applied)
}

func (m *Replicate) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.Epoch = r.U64()
	m.From = r.Str()
	m.PrevVersion = r.U32()
	m.Version = r.U32()
	var err error
	m.Diff, err = readDiff(r)
	if err != nil {
		return err
	}
	m.Raw = r.Bytes()
	if len(m.Raw) == 0 {
		// "Raw present" is signalled by content, not by a non-nil empty
		// slice the reader may hand back for a zero length.
		m.Raw = nil
	}
	m.Applied, err = readApplied(r)
	return err
}

func (m *ReplicateReply) encode(buf []byte) []byte {
	var flags uint8
	if m.Acked {
		flags |= 1
	}
	if m.Fenced {
		flags |= 2
	}
	buf = wire.AppendU8(buf, flags)
	buf = wire.AppendU32(buf, m.Version)
	return appendMembership(buf, m.Ms)
}

func (m *ReplicateReply) decode(r *wire.Reader) error {
	flags := r.U8()
	m.Acked = flags&1 != 0
	m.Fenced = flags&2 != 0
	m.Version = r.U32()
	var err error
	m.Ms, err = readMembership(r)
	return err
}

func (m *Migrate) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	return wire.AppendString(buf, m.Target)
}

func (m *Migrate) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.Target = r.Str()
	return r.Err()
}

func (m *Pull) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	return wire.AppendU32(buf, m.HaveVersion)
}

func (m *Pull) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.HaveVersion = r.U32()
	return r.Err()
}

func (m *PullReply) encode(buf []byte) []byte {
	buf = wire.AppendU32(buf, m.Version)
	buf = appendDiff(buf, m.Diff)
	return appendApplied(buf, m.Applied)
}

func (m *PullReply) decode(r *wire.Reader) error {
	m.Version = r.U32()
	var err error
	m.Diff, err = readDiff(r)
	if err != nil {
		return err
	}
	m.Applied, err = readApplied(r)
	return err
}

// newClusterMessage allocates the concrete type for a cluster frame
// type byte, or nil for non-cluster types.
func newClusterMessage(t MsgType) Message {
	switch t {
	case TypeRedirect:
		return &Redirect{}
	case TypeRingGet:
		return &RingGet{}
	case TypeRingReply:
		return &RingReply{}
	case TypeRingPush:
		return &RingPush{}
	case TypeReplicate:
		return &Replicate{}
	case TypeReplicateReply:
		return &ReplicateReply{}
	case TypeMigrate:
		return &Migrate{}
	case TypePull:
		return &Pull{}
	case TypePullReply:
		return &PullReply{}
	default:
		return nil
	}
}

// The array length below asserts at compile time that the cluster
// type block sits directly after the classic block, so the two const
// groups cannot drift apart silently.
var _ [1]struct{} = [TypeRedirect - TypeResumeReply]struct{}{}
