package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/wire"
)

func roundtrip(t *testing.T, id uint32, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, id, m); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	gotID, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if gotID != id {
		t.Errorf("id = %d, want %d", gotID, id)
	}
	if got.Type() != m.Type() {
		t.Errorf("type = %v, want %v", got.Type(), m.Type())
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes left in buffer", buf.Len())
	}
	return got
}

func sampleDiff() *wire.SegmentDiff {
	return &wire.SegmentDiff{
		Version: 3,
		News:    []wire.NewBlock{{Serial: 1, DescSerial: 2, Count: 5, Name: "head"}},
		Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{
			{Start: 0, Count: 1, Data: []byte{0, 0, 0, 7}},
		}}},
	}
}

func TestHelloRoundtrip(t *testing.T) {
	got := roundtrip(t, 1, &Hello{ClientName: "miner", Profile: "sparc-32be"}).(*Hello)
	if got.ClientName != "miner" || got.Profile != "sparc-32be" {
		t.Errorf("Hello = %+v", got)
	}
}

func TestOpenSegmentRoundtrip(t *testing.T) {
	got := roundtrip(t, 2, &OpenSegment{Name: "host/list", Create: true}).(*OpenSegment)
	if got.Name != "host/list" || !got.Create {
		t.Errorf("OpenSegment = %+v", got)
	}
}

func TestOpenReplyRoundtrip(t *testing.T) {
	got := roundtrip(t, 3, &OpenReply{Created: true, Version: 9, Dir: sampleDiff()}).(*OpenReply)
	if !got.Created || got.Version != 9 || got.Dir == nil || got.Dir.News[0].Name != "head" {
		t.Errorf("OpenReply = %+v", got)
	}
	got2 := roundtrip(t, 4, &OpenReply{Version: 1}).(*OpenReply)
	if got2.Dir != nil {
		t.Error("nil Dir became non-nil")
	}
}

func TestLockMessagesRoundtrip(t *testing.T) {
	pol := coherence.Policy{Model: coherence.ModelDiff, Delta: 4, Window: 3 * time.Second, Percent: 12.5}
	rl := roundtrip(t, 5, &ReadLock{Seg: "s", HaveVersion: 7, Policy: pol}).(*ReadLock)
	if rl.Seg != "s" || rl.HaveVersion != 7 || rl.Policy != pol {
		t.Errorf("ReadLock = %+v", rl)
	}
	wl := roundtrip(t, 6, &WriteLock{Seg: "s", HaveVersion: 8, Policy: pol}).(*WriteLock)
	if wl.HaveVersion != 8 || wl.Policy != pol {
		t.Errorf("WriteLock = %+v", wl)
	}
	lr := roundtrip(t, 7, &LockReply{Fresh: false, Diff: sampleDiff()}).(*LockReply)
	if lr.Fresh || lr.Diff == nil || lr.Diff.Version != 3 {
		t.Errorf("LockReply = %+v", lr)
	}
	lrf := roundtrip(t, 8, &LockReply{Fresh: true}).(*LockReply)
	if !lrf.Fresh || lrf.Diff != nil {
		t.Errorf("fresh LockReply = %+v", lrf)
	}
	ru := roundtrip(t, 9, &ReadUnlock{Seg: "s"}).(*ReadUnlock)
	if ru.Seg != "s" {
		t.Errorf("ReadUnlock = %+v", ru)
	}
	wu := roundtrip(t, 10, &WriteUnlock{Seg: "s", Diff: sampleDiff(), WriterID: "w/9/1", Seq: 17}).(*WriteUnlock)
	if wu.Seg != "s" || wu.Diff == nil || wu.WriterID != "w/9/1" || wu.Seq != 17 {
		t.Errorf("WriteUnlock = %+v", wu)
	}
	vr := roundtrip(t, 11, &VersionReply{Version: 42}).(*VersionReply)
	if vr.Version != 42 {
		t.Errorf("VersionReply = %+v", vr)
	}
}

func TestSubscriptionMessagesRoundtrip(t *testing.T) {
	pol := coherence.Delta(2)
	sub := roundtrip(t, 12, &Subscribe{Seg: "s", HaveVersion: 3, Policy: pol}).(*Subscribe)
	if sub.Seg != "s" || sub.HaveVersion != 3 || sub.Policy != pol {
		t.Errorf("Subscribe = %+v", sub)
	}
	uns := roundtrip(t, 13, &Unsubscribe{Seg: "s"}).(*Unsubscribe)
	if uns.Seg != "s" {
		t.Errorf("Unsubscribe = %+v", uns)
	}
	n := roundtrip(t, 0, &Notify{Seg: "s", Version: 5}).(*Notify)
	if n.Seg != "s" || n.Version != 5 {
		t.Errorf("Notify = %+v", n)
	}
}

func TestTxMessagesRoundtrip(t *testing.T) {
	tx := roundtrip(t, 20, &TxCommit{Parts: []WriteUnlock{
		{Seg: "a", Diff: sampleDiff()},
		{Seg: "b"},
	}}).(*TxCommit)
	if len(tx.Parts) != 2 || tx.Parts[0].Seg != "a" || tx.Parts[0].Diff == nil || tx.Parts[1].Diff != nil {
		t.Errorf("TxCommit = %+v", tx)
	}
	tr := roundtrip(t, 21, &TxReply{Versions: []uint32{4, 9}}).(*TxReply)
	if len(tr.Versions) != 2 || tr.Versions[0] != 4 || tr.Versions[1] != 9 {
		t.Errorf("TxReply = %+v", tr)
	}
	empty := roundtrip(t, 22, &TxCommit{}).(*TxCommit)
	if len(empty.Parts) != 0 {
		t.Errorf("empty TxCommit = %+v", empty)
	}
}

func TestResumeRoundtrip(t *testing.T) {
	rs := roundtrip(t, 30, &Resume{Seg: "s", WriterID: "w/9/1", Seq: 6}).(*Resume)
	if rs.Seg != "s" || rs.WriterID != "w/9/1" || rs.Seq != 6 {
		t.Errorf("Resume = %+v", rs)
	}
	rr := roundtrip(t, 31, &ResumeReply{Applied: true, AppliedVersion: 12, CurrentVersion: 14}).(*ResumeReply)
	if !rr.Applied || rr.AppliedVersion != 12 || rr.CurrentVersion != 14 {
		t.Errorf("ResumeReply = %+v", rr)
	}
	rr2 := roundtrip(t, 32, &ResumeReply{CurrentVersion: 3}).(*ResumeReply)
	if rr2.Applied || rr2.AppliedVersion != 0 || rr2.CurrentVersion != 3 {
		t.Errorf("unapplied ResumeReply = %+v", rr2)
	}
}

func TestAckAndErrorRoundtrip(t *testing.T) {
	roundtrip(t, 14, &Ack{})
	e := roundtrip(t, 15, &ErrorReply{Code: CodeNoSegment, Text: "no such segment"}).(*ErrorReply)
	if e.Code != CodeNoSegment || e.Text != "no such segment" {
		t.Errorf("ErrorReply = %+v", e)
	}
	if e.Error() == "" {
		t.Error("ErrorReply.Error() empty")
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{ClientName: "a", Profile: "x86-32le"},
		&OpenSegment{Name: "s"},
		&Notify{Seg: "s", Version: 1},
	}
	for i, m := range msgs {
		if err := WriteFrame(&buf, uint32(i), m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		id, m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != uint32(i) || m.Type() != msgs[i].Type() {
			t.Errorf("frame %d: id=%d type=%v", i, id, m.Type())
		}
	}
	if _, _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("after last frame: %v, want EOF", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated header.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, io.EOF) {
		t.Errorf("truncated header: %v", err)
	}
	// Unknown type.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0xEE})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("unknown type accepted")
	}
	// Oversized frame length.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1, byte(TypeAck)})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 9, 0, 0, 0, 1, byte(TypeNotify), 1, 2})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated payload accepted")
	}
	// Trailing bytes inside a frame.
	buf.Reset()
	if err := WriteFrame(&buf, 1, &Ack{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[3] = 1 // claim 1 payload byte
	withPad := append(append([]byte{}, raw...), 0xAA)
	if _, _, err := ReadFrame(bytes.NewReader(withPad)); err == nil {
		t.Error("trailing payload bytes accepted")
	}
}

func TestPolicyEncodingAllModels(t *testing.T) {
	policies := []coherence.Policy{
		coherence.Full(),
		coherence.Delta(7),
		coherence.Temporal(90 * time.Millisecond),
		coherence.Diff(33.25),
	}
	for _, p := range policies {
		got := roundtrip(t, 1, &ReadLock{Seg: "s", Policy: p}).(*ReadLock)
		if got.Policy != p {
			t.Errorf("policy roundtrip = %+v, want %+v", got.Policy, p)
		}
	}
}
