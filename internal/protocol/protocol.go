// Package protocol defines the framed message protocol InterWeave
// clients and servers speak over TCP.
//
// Every frame is: a 32-bit payload length, a 32-bit request id, a
// one-byte message type, and the payload. Replies echo the request
// id; server-initiated notifications use id zero, so one cached
// connection per server carries synchronous lock traffic and
// asynchronous invalidations concurrently (the segment table's cached
// TCP connection of Figure 2).
//
// The two high bits of the type byte are flags, both off in the
// classic format: typeTraceFlag (0x80) prefixes the payload with a
// 16-byte trace context, and typeSessFlag (0x40) prefixes it with a
// 4-byte logical session ID so many client sessions can share one TCP
// connection (session.go). Frames without flags are byte-identical to
// the original format, which is the whole compatibility story: old
// peers and new peers interoperate without negotiation, and a sender
// only sets a flag on its own initiative.
package protocol

import (
	"errors"
	"fmt"
	"io"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/wire"
)

// MsgType identifies a message.
type MsgType uint8

// Message types. Requests flow client to server; Notify flows server
// to client with request id zero.
const (
	TypeInvalid MsgType = iota
	TypeHello
	TypeOpenSegment
	TypeOpenReply
	TypeReadLock
	TypeWriteLock
	TypeLockReply
	TypeReadUnlock
	TypeWriteUnlock
	TypeVersionReply
	TypeSubscribe
	TypeUnsubscribe
	TypeAck
	TypeNotify
	TypeError
	TypeTxCommit
	TypeTxReply
	TypeResume
	TypeResumeReply
)

// maxFrame bounds a single frame; segments larger than this must be
// pathological.
const maxFrame = 1 << 30

// typeTraceFlag marks a frame whose body starts with a 16-byte trace
// context (8-byte trace ID + 8-byte span ID) ahead of the payload.
// The flag lives in the otherwise-unused high bit of the type byte,
// so frames without trace context are byte-identical to the original
// format — peers that never send context interoperate unchanged, and
// a sender only sets the flag on its own initiative (clients attach
// context only when tracing is enabled; servers never attach context
// to replies at all, since parent/child linkage flows request-ward).
const typeTraceFlag = 0x80

// traceCtxBytes is the wire size of an attached trace context.
const traceCtxBytes = 16

// TraceContext is the span context a frame optionally carries: which
// distributed trace the request belongs to and which client span is
// the server handler's parent (see internal/obs). The zero value
// means "no context" and encodes to the original frame format.
type TraceContext struct {
	// TraceID identifies the distributed operation; zero = no trace.
	TraceID uint64
	// SpanID is the sender's span, the parent of server-side spans.
	SpanID uint64
}

// Valid reports whether the context names a real span.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// Message is one protocol message.
type Message interface {
	// Type returns the frame type byte.
	Type() MsgType
	// encode appends the payload encoding.
	encode(buf []byte) []byte
	// decode parses the payload.
	decode(r *wire.Reader) error
}

// Hello introduces a client.
type Hello struct {
	ClientName string
	Profile    string
}

// OpenSegment opens (or creates) a segment.
type OpenSegment struct {
	Name   string
	Create bool
}

// OpenReply answers OpenSegment. Dir is a metadata-only segment diff
// (descriptors and block directory, no data runs) that lets the
// client reserve local space for the segment without fetching data —
// the behaviour IW_mip_to_ptr requires.
type OpenReply struct {
	Created bool
	Version uint32
	Dir     *wire.SegmentDiff
}

// ReadLock asks to acquire a read lock under a coherence policy.
type ReadLock struct {
	Seg         string
	HaveVersion uint32
	Policy      coherence.Policy
}

// WriteLock asks to acquire the exclusive write lock.
type WriteLock struct {
	Seg         string
	HaveVersion uint32
	Policy      coherence.Policy
}

// LockReply grants a lock. Diff, when non-nil, brings the client's
// cached copy up to date first.
type LockReply struct {
	Fresh bool // cached copy was recent enough; Diff is nil
	Diff  *wire.SegmentDiff
}

// ReadUnlock releases a read lock.
type ReadUnlock struct {
	Seg string
}

// WriteUnlock releases the write lock, carrying the collected diff.
//
// WriterID and Seq implement at-most-once delivery: the server
// remembers, per segment and writer, the sequence number and
// resulting version of the last applied unlock, so a client that
// lost the reply to a WriteUnlock can re-deliver it (or probe with
// Resume) without the diff ever being applied twice. An empty
// WriterID opts out of the dedup machinery.
type WriteUnlock struct {
	Seg      string
	Diff     *wire.SegmentDiff
	WriterID string
	Seq      uint32
}

// VersionReply acknowledges a WriteUnlock with the version the diff
// produced.
type VersionReply struct {
	Version uint32
}

// Subscribe asks the server to notify when the policy's bound is
// exceeded relative to HaveVersion.
type Subscribe struct {
	Seg         string
	HaveVersion uint32
	Policy      coherence.Policy
}

// Unsubscribe cancels a subscription.
type Unsubscribe struct {
	Seg string
}

// TxCommit atomically publishes several segments' write critical
// sections: every segment advances, or none does. The session must
// hold the write lock on each named segment. (The paper lists
// transaction support as work in progress; this implements the
// single-server case.)
type TxCommit struct {
	Parts []WriteUnlock
}

// TxReply acknowledges a TxCommit with the new version of each part,
// in order.
type TxReply struct {
	Versions []uint32
}

// Resume asks whether the write unlock identified by (WriterID, Seq)
// was applied. A client whose connection died mid-WriteUnlock sends
// this after reconnecting to learn whether the diff landed before
// deciding to re-deliver it.
type Resume struct {
	Seg      string
	WriterID string
	Seq      uint32
}

// ResumeReply answers Resume. When Applied is true the unlock landed
// and AppliedVersion is the version it produced; the reply was simply
// lost. CurrentVersion is the segment's present version either way,
// letting the client detect an intervening writer before
// re-delivering its diff.
type ResumeReply struct {
	Applied        bool
	AppliedVersion uint32
	CurrentVersion uint32
}

// Ack is an empty success reply.
type Ack struct{}

// Notify tells a client its cached copy of Seg is no longer recent
// enough; Version is the server's current version.
type Notify struct {
	Seg     string
	Version uint32
}

// ErrorReply reports a request failure.
type ErrorReply struct {
	Code uint16
	Text string
}

// Error codes.
const (
	CodeUnknown uint16 = iota + 1
	CodeNoSegment
	CodeBadRequest
	CodeLockState
	CodeInternal
)

// Error implements the error interface so ErrorReply can travel as an
// error.
func (e *ErrorReply) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Text)
}

// Type implementations.

func (*Hello) Type() MsgType        { return TypeHello }
func (*OpenSegment) Type() MsgType  { return TypeOpenSegment }
func (*OpenReply) Type() MsgType    { return TypeOpenReply }
func (*ReadLock) Type() MsgType     { return TypeReadLock }
func (*WriteLock) Type() MsgType    { return TypeWriteLock }
func (*LockReply) Type() MsgType    { return TypeLockReply }
func (*ReadUnlock) Type() MsgType   { return TypeReadUnlock }
func (*WriteUnlock) Type() MsgType  { return TypeWriteUnlock }
func (*VersionReply) Type() MsgType { return TypeVersionReply }
func (*Subscribe) Type() MsgType    { return TypeSubscribe }
func (*Unsubscribe) Type() MsgType  { return TypeUnsubscribe }
func (*TxCommit) Type() MsgType     { return TypeTxCommit }
func (*TxReply) Type() MsgType      { return TypeTxReply }
func (*Resume) Type() MsgType       { return TypeResume }
func (*ResumeReply) Type() MsgType  { return TypeResumeReply }
func (*Ack) Type() MsgType          { return TypeAck }
func (*Notify) Type() MsgType       { return TypeNotify }
func (*ErrorReply) Type() MsgType   { return TypeError }

func appendPolicy(buf []byte, p coherence.Policy) []byte {
	buf = wire.AppendU8(buf, byte(p.Model))
	buf = wire.AppendU32(buf, p.Delta)
	buf = wire.AppendU64(buf, uint64(p.Window.Nanoseconds()))
	buf = wire.AppendF64(buf, p.Percent)
	return buf
}

func readPolicy(r *wire.Reader) coherence.Policy {
	return coherence.Policy{
		Model:   coherence.Model(r.U8()),
		Delta:   r.U32(),
		Window:  time.Duration(r.U64()),
		Percent: r.F64(),
	}
}

func appendDiff(buf []byte, d *wire.SegmentDiff) []byte {
	if d == nil {
		return wire.AppendU8(buf, 0)
	}
	buf = wire.AppendU8(buf, 1)
	return d.Marshal(buf)
}

func readDiff(r *wire.Reader) (*wire.SegmentDiff, error) {
	if r.U8() == 0 {
		return nil, r.Err()
	}
	return wire.ReadSegmentDiff(r)
}

func (m *Hello) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.ClientName)
	return wire.AppendString(buf, m.Profile)
}

func (m *Hello) decode(r *wire.Reader) error {
	m.ClientName, m.Profile = r.Str(), r.Str()
	return r.Err()
}

func (m *OpenSegment) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Name)
	if m.Create {
		return wire.AppendU8(buf, 1)
	}
	return wire.AppendU8(buf, 0)
}

func (m *OpenSegment) decode(r *wire.Reader) error {
	m.Name = r.Str()
	m.Create = r.U8() == 1
	return r.Err()
}

func (m *OpenReply) encode(buf []byte) []byte {
	if m.Created {
		buf = wire.AppendU8(buf, 1)
	} else {
		buf = wire.AppendU8(buf, 0)
	}
	buf = wire.AppendU32(buf, m.Version)
	return appendDiff(buf, m.Dir)
}

func (m *OpenReply) decode(r *wire.Reader) error {
	m.Created = r.U8() == 1
	m.Version = r.U32()
	var err error
	m.Dir, err = readDiff(r)
	if err != nil {
		return err
	}
	return r.Err()
}

func (m *ReadLock) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendU32(buf, m.HaveVersion)
	return appendPolicy(buf, m.Policy)
}

func (m *ReadLock) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.HaveVersion = r.U32()
	m.Policy = readPolicy(r)
	return r.Err()
}

func (m *WriteLock) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendU32(buf, m.HaveVersion)
	return appendPolicy(buf, m.Policy)
}

func (m *WriteLock) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.HaveVersion = r.U32()
	m.Policy = readPolicy(r)
	return r.Err()
}

func (m *LockReply) encode(buf []byte) []byte {
	if m.Fresh {
		buf = wire.AppendU8(buf, 1)
	} else {
		buf = wire.AppendU8(buf, 0)
	}
	return appendDiff(buf, m.Diff)
}

func (m *LockReply) decode(r *wire.Reader) error {
	m.Fresh = r.U8() == 1
	var err error
	m.Diff, err = readDiff(r)
	if err != nil {
		return err
	}
	return r.Err()
}

func (m *ReadUnlock) encode(buf []byte) []byte { return wire.AppendString(buf, m.Seg) }

func (m *ReadUnlock) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	return r.Err()
}

func (m *WriteUnlock) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendString(buf, m.WriterID)
	buf = wire.AppendU32(buf, m.Seq)
	return appendDiff(buf, m.Diff)
}

func (m *WriteUnlock) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.WriterID = r.Str()
	m.Seq = r.U32()
	var err error
	m.Diff, err = readDiff(r)
	if err != nil {
		return err
	}
	return r.Err()
}

func (m *VersionReply) encode(buf []byte) []byte { return wire.AppendU32(buf, m.Version) }

func (m *VersionReply) decode(r *wire.Reader) error {
	m.Version = r.U32()
	return r.Err()
}

func (m *Subscribe) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendU32(buf, m.HaveVersion)
	return appendPolicy(buf, m.Policy)
}

func (m *Subscribe) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.HaveVersion = r.U32()
	m.Policy = readPolicy(r)
	return r.Err()
}

func (m *Unsubscribe) encode(buf []byte) []byte { return wire.AppendString(buf, m.Seg) }

func (m *Unsubscribe) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	return r.Err()
}

func (m *TxCommit) encode(buf []byte) []byte {
	buf = wire.AppendU16(buf, uint16(len(m.Parts)))
	for i := range m.Parts {
		buf = m.Parts[i].encode(buf)
	}
	return buf
}

func (m *TxCommit) decode(r *wire.Reader) error {
	n := r.U16()
	if r.Err() != nil {
		return r.Err()
	}
	m.Parts = make([]WriteUnlock, n)
	for i := range m.Parts {
		if err := m.Parts[i].decode(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (m *TxReply) encode(buf []byte) []byte {
	buf = wire.AppendU16(buf, uint16(len(m.Versions)))
	for _, v := range m.Versions {
		buf = wire.AppendU32(buf, v)
	}
	return buf
}

func (m *TxReply) decode(r *wire.Reader) error {
	n := r.U16()
	if r.Err() != nil {
		return r.Err()
	}
	m.Versions = make([]uint32, n)
	for i := range m.Versions {
		m.Versions[i] = r.U32()
	}
	return r.Err()
}

func (m *Resume) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	buf = wire.AppendString(buf, m.WriterID)
	return wire.AppendU32(buf, m.Seq)
}

func (m *Resume) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.WriterID = r.Str()
	m.Seq = r.U32()
	return r.Err()
}

func (m *ResumeReply) encode(buf []byte) []byte {
	if m.Applied {
		buf = wire.AppendU8(buf, 1)
	} else {
		buf = wire.AppendU8(buf, 0)
	}
	buf = wire.AppendU32(buf, m.AppliedVersion)
	return wire.AppendU32(buf, m.CurrentVersion)
}

func (m *ResumeReply) decode(r *wire.Reader) error {
	m.Applied = r.U8() == 1
	m.AppliedVersion = r.U32()
	m.CurrentVersion = r.U32()
	return r.Err()
}

func (*Ack) encode(buf []byte) []byte    { return buf }
func (*Ack) decode(_ *wire.Reader) error { return nil }

func (m *Notify) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.Seg)
	return wire.AppendU32(buf, m.Version)
}

func (m *Notify) decode(r *wire.Reader) error {
	m.Seg = r.Str()
	m.Version = r.U32()
	return r.Err()
}

func (m *ErrorReply) encode(buf []byte) []byte {
	buf = wire.AppendU16(buf, m.Code)
	return wire.AppendString(buf, m.Text)
}

func (m *ErrorReply) decode(r *wire.Reader) error {
	m.Code = r.U16()
	m.Text = r.Str()
	return r.Err()
}

// newMessage allocates the concrete type for a frame type byte.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeOpenSegment:
		return &OpenSegment{}, nil
	case TypeOpenReply:
		return &OpenReply{}, nil
	case TypeReadLock:
		return &ReadLock{}, nil
	case TypeWriteLock:
		return &WriteLock{}, nil
	case TypeLockReply:
		return &LockReply{}, nil
	case TypeReadUnlock:
		return &ReadUnlock{}, nil
	case TypeWriteUnlock:
		return &WriteUnlock{}, nil
	case TypeVersionReply:
		return &VersionReply{}, nil
	case TypeSubscribe:
		return &Subscribe{}, nil
	case TypeUnsubscribe:
		return &Unsubscribe{}, nil
	case TypeTxCommit:
		return &TxCommit{}, nil
	case TypeTxReply:
		return &TxReply{}, nil
	case TypeResume:
		return &Resume{}, nil
	case TypeResumeReply:
		return &ResumeReply{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeNotify:
		return &Notify{}, nil
	case TypeError:
		return &ErrorReply{}, nil
	default:
		if m := newClusterMessage(t); m != nil {
			return m, nil
		}
		if m := newSessionMessage(t); m != nil {
			return m, nil
		}
		if m := newProxyMessage(t); m != nil {
			return m, nil
		}
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
}

// MarshalMessage appends a self-describing encoding of m — its type
// byte followed by its payload encoding — to buf. It is the stream-
// free counterpart of WriteFrame for callers that persist messages
// (the segment journal stores committed Replicate frames this way);
// UnmarshalMessage inverts it.
func MarshalMessage(buf []byte, m Message) []byte {
	buf = wire.AppendU8(buf, uint8(m.Type()))
	return m.encode(buf)
}

// UnmarshalMessage decodes one message produced by MarshalMessage.
// Trailing bytes after the payload are an error, so a corrupted
// length upstream cannot silently hide data.
func UnmarshalMessage(data []byte) (Message, error) {
	r := wire.NewReader(data)
	t := r.U8()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: unmarshal: %w", err)
	}
	m, err := newMessage(MsgType(t))
	if err != nil {
		return nil, err
	}
	if err := m.decode(r); err != nil {
		return nil, fmt.Errorf("protocol: unmarshal %T: %w", m, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("protocol: unmarshal %T: %d trailing bytes", m, r.Remaining())
	}
	return m, nil
}

// WriteFrame writes one framed message without trace context.
func WriteFrame(w io.Writer, id uint32, m Message) error {
	return WriteFrameCtx(w, id, m, TraceContext{})
}

// WriteFrameCtx writes one framed message, attaching the trace
// context when it is valid. A zero context produces a frame
// byte-identical to WriteFrame's.
func WriteFrameCtx(w io.Writer, id uint32, m Message, tc TraceContext) error {
	return WriteFrameMux(w, id, m, tc, 0)
}

// errFrameTooBig reports a payload exceeding the frame limit.
func errFrameTooBig(n int) error {
	return fmt.Errorf("protocol: frame of %d bytes exceeds limit", n)
}

// errWritingFrame wraps a socket write failure.
func errWritingFrame(err error) error {
	return fmt.Errorf("protocol: writing frame: %w", err)
}

// ReadFrame reads one framed message, discarding any trace context.
func ReadFrame(r io.Reader) (uint32, Message, error) {
	id, m, _, err := ReadFrameCtx(r)
	return id, m, err
}

// ReadFrameCtx reads one framed message plus the trace context it
// carried, if any (zero TraceContext otherwise). Frames written
// before trace contexts existed decode unchanged. Multiplexed frames
// (session flag set) are decoded but their session ID is discarded;
// peers that route by session use ReadFrameMux.
func ReadFrameCtx(r io.Reader) (uint32, Message, TraceContext, error) {
	id, m, tc, _, err := ReadFrameMux(r)
	return id, m, tc, err
}

// ReadFrameMux reads one framed message plus the trace context and
// logical session ID it carried. Frames without the session flag —
// every frame a pre-multiplexing peer emits — report session zero,
// the connection's implicit session.
func ReadFrameMux(r io.Reader) (uint32, Message, TraceContext, uint32, error) {
	var tc TraceContext
	var sess uint32
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, tc, 0, io.EOF
		}
		return 0, nil, tc, 0, fmt.Errorf("protocol: reading frame header: %w", err)
	}
	n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	id := uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7])
	if n > maxFrame {
		return 0, nil, tc, 0, fmt.Errorf("protocol: frame of %d bytes exceeds limit", n)
	}
	typ := hdr[8]
	muxed := typ&typeSessFlag != 0
	traced := typ&typeTraceFlag != 0
	want := uint32(0)
	if muxed {
		want += sessIDBytes
		typ &^= typeSessFlag
	}
	if traced {
		want += traceCtxBytes
		typ &^= typeTraceFlag
	}
	if n < want {
		what := ""
		if muxed {
			what = "session id"
		}
		if traced {
			if what != "" {
				what += " and "
			}
			what += "trace context"
		}
		return 0, nil, tc, 0, fmt.Errorf("protocol: flagged frame of %d bytes lacks its %s", n, what)
	}
	m, err := newMessage(MsgType(typ))
	if err != nil {
		return 0, nil, tc, 0, err
	}
	// Read the payload in bounded chunks: a corrupt length field must
	// fail after at most one chunk, not provoke a gigabyte
	// allocation.
	const chunk = 1 << 20
	initial := int(n)
	if initial > chunk {
		initial = chunk
	}
	payload := make([]byte, 0, initial)
	for remaining := int(n); remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		off := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return 0, nil, tc, 0, fmt.Errorf("protocol: reading frame payload: %w", err)
		}
		remaining -= step
	}
	wr := wire.NewReader(payload)
	if muxed {
		sess = wr.U32()
		if err := wr.Err(); err != nil {
			return 0, nil, tc, 0, fmt.Errorf("protocol: reading session id: %w", err)
		}
	}
	if traced {
		tc.TraceID = wr.U64()
		tc.SpanID = wr.U64()
		if err := wr.Err(); err != nil {
			return 0, nil, tc, sess, fmt.Errorf("protocol: reading trace context: %w", err)
		}
	}
	if err := m.decode(wr); err != nil {
		return 0, nil, tc, sess, fmt.Errorf("protocol: decoding %T: %w", m, err)
	}
	if wr.Remaining() != 0 {
		return 0, nil, tc, sess, fmt.Errorf("protocol: %d trailing bytes in %T frame", wr.Remaining(), m)
	}
	return id, m, tc, sess, nil
}
