package protocol

import (
	"bytes"
	"reflect"
	"testing"
)

// TestProxyHelloRoundTrip pins the ProxyHello wire encoding.
func TestProxyHelloRoundTrip(t *testing.T) {
	in := &ProxyHello{ProxyAddr: "127.0.0.1:7788", Name: "edge-proxy-3"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 5, in); err != nil {
		t.Fatal(err)
	}
	id, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("id = %d, want 5", id)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip: got %+v, want %+v", got, in)
	}
}

// TestMemberProxyFlagRoundTrip pins the member flag-byte encoding with
// the proxy role bit (bit 2): every combination with dead (bit 0) and
// metrics-addr (bit 1).
func TestMemberProxyFlagRoundTrip(t *testing.T) {
	ms := Membership{
		Epoch: 3, Replicas: 1, VNodes: 8,
		Members: []Member{
			{Addr: "a:1", Proxy: true},
			{Addr: "b:1", Proxy: true, Dead: true},
			{Addr: "c:1", Proxy: true, MetricsAddr: "c:9"},
			{Addr: "d:1", Proxy: true, Dead: true, MetricsAddr: "d:9"},
			{Addr: "e:1"},
		},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, &RingReply{Ms: ms}); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*RingReply).Ms.Members, ms.Members) {
		t.Fatalf("round trip: got %+v, want %+v", got.(*RingReply).Ms.Members, ms.Members)
	}
}
