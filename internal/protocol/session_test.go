package protocol

import (
	"bytes"
	"testing"
)

// TestMuxFrameRoundTrip drives every flag combination through one
// frame: session only, trace only, both, neither.
func TestMuxFrameRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdead, SpanID: 0xbeef}
	cases := []struct {
		name string
		tc   TraceContext
		sess uint32
	}{
		{"plain", TraceContext{}, 0},
		{"sess", TraceContext{}, 7},
		{"trace", tc, 0},
		{"sess+trace", tc, 0xfffe},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			msg := &ReadLock{Seg: "h:1/s", HaveVersion: 9}
			if err := WriteFrameMux(&buf, 42, msg, c.tc, c.sess); err != nil {
				t.Fatalf("write: %v", err)
			}
			id, m, gotTC, gotSess, err := ReadFrameMux(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if id != 42 {
				t.Errorf("id = %d, want 42", id)
			}
			if gotSess != c.sess {
				t.Errorf("sess = %d, want %d", gotSess, c.sess)
			}
			if gotTC != c.tc {
				t.Errorf("tc = %+v, want %+v", gotTC, c.tc)
			}
			rl, ok := m.(*ReadLock)
			if !ok || rl.Seg != "h:1/s" || rl.HaveVersion != 9 {
				t.Errorf("decoded %#v", m)
			}
		})
	}
}

// TestMuxSessionZeroByteIdentical pins the compatibility contract:
// a frame for the implicit session (ID zero) must be byte-identical
// to the classic WriteFrame encoding, so pre-mux peers interoperate
// with mux-capable ones without negotiation.
func TestMuxSessionZeroByteIdentical(t *testing.T) {
	msg := &WriteUnlock{Seg: "h:1/s", WriterID: "w", Seq: 3}
	var classic, muxed bytes.Buffer
	if err := WriteFrame(&classic, 5, msg); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameMux(&muxed, 5, msg, TraceContext{}, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(classic.Bytes(), muxed.Bytes()) {
		t.Fatalf("session-0 mux frame differs from classic frame:\n%x\n%x",
			classic.Bytes(), muxed.Bytes())
	}
	// And the classic reader must decode a session-0 mux frame.
	id, m, err := ReadFrame(&muxed)
	if err != nil || id != 5 {
		t.Fatalf("classic read of session-0 frame: id=%d err=%v", id, err)
	}
	if wu, ok := m.(*WriteUnlock); !ok || wu.Seg != "h:1/s" {
		t.Fatalf("decoded %#v", m)
	}
}

// TestMuxFrameLegacyReaderDiscardsSession checks ReadFrameCtx (the
// pre-mux entry point) still decodes a flagged frame, dropping the
// session ID rather than corrupting the payload.
func TestMuxFrameLegacyReaderDiscardsSession(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameMux(&buf, 8, &Notify{Seg: "h:1/s", Version: 4}, TraceContext{}, 99); err != nil {
		t.Fatal(err)
	}
	id, m, tc, err := ReadFrameCtx(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if id != 8 || tc.Valid() {
		t.Errorf("id=%d tc=%+v", id, tc)
	}
	if n, ok := m.(*Notify); !ok || n.Seg != "h:1/s" || n.Version != 4 {
		t.Errorf("decoded %#v", m)
	}
}

// TestMuxFrameTruncatedSessionID rejects a flagged frame whose
// payload is too short to hold the session ID.
func TestMuxFrameTruncatedSessionID(t *testing.T) {
	// length=2, id=1, type=Ack|sessFlag, then 2 bytes: too short for
	// the 4-byte session ID.
	raw := []byte{0, 0, 0, 2, 0, 0, 0, 1, byte(TypeAck) | typeSessFlag, 0, 0}
	if _, _, _, _, err := ReadFrameMux(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated session id accepted")
	}
}

// TestSessionCloseRoundTrip round-trips the session-teardown message.
func TestSessionCloseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameMux(&buf, 1, &SessionClose{}, TraceContext{}, 12); err != nil {
		t.Fatal(err)
	}
	_, m, _, sess, err := ReadFrameMux(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*SessionClose); !ok || sess != 12 {
		t.Fatalf("decoded %#v sess=%d", m, sess)
	}
}
