package protocol

// Proxy-tier message (DESIGN.md §11). A read fan-out proxy introduces
// itself to its upstream with ProxyHello instead of Hello, so the
// upstream can exempt the session from MaxSessions admission (a proxy
// session replaces thousands of direct client sessions — refusing it
// to protect capacity would be backwards) and so the fleet can
// distinguish node roles. Like the session frames, the type byte
// continues the existing numbering; peers that never send it
// interoperate unchanged.

import "interweave/internal/wire"

// Proxy message type, continuing the numbering after the session
// block (TypeSessionClose = 28).
const (
	// TypeProxyHello introduces a proxy to its upstream.
	TypeProxyHello MsgType = iota + 29
)

// Compile-time guard: the proxy block starts right after the session
// block. If a type is inserted in between, this fails to build.
var _ [1]struct{} = [TypeProxyHello - TypeSessionClose]struct{}{}

// ProxyHello introduces a read fan-out proxy to its upstream. It is
// the session-creating frame of a proxy session, taking the place of
// Hello; the server exempts the session from MaxSessions admission
// and marks it as a proxy for the observability plane.
type ProxyHello struct {
	// ProxyAddr is the proxy's own downstream-facing client address,
	// for diagnostics and gossip (it is the Member.Addr the proxy
	// announces with the Proxy role flag).
	ProxyAddr string
	// Name is the proxy's self-chosen name, like Hello.ClientName.
	Name string
}

// Type returns the frame type byte.
func (*ProxyHello) Type() MsgType { return TypeProxyHello }

func (m *ProxyHello) encode(buf []byte) []byte {
	buf = wire.AppendString(buf, m.ProxyAddr)
	return wire.AppendString(buf, m.Name)
}

func (m *ProxyHello) decode(r *wire.Reader) error {
	m.ProxyAddr, m.Name = r.Str(), r.Str()
	return r.Err()
}

// newProxyMessage allocates proxy-tier message types; nil for others.
func newProxyMessage(t MsgType) Message {
	if t == TypeProxyHello {
		return &ProxyHello{}
	}
	return nil
}
