package protocol

import (
	"io"

	"interweave/internal/wire"
)

// Session multiplexing (DESIGN.md §10, PROTOCOL.md "Multiplexed
// sessions"). Many logical client sessions can share one TCP
// connection: a frame whose type byte carries typeSessFlag is
// prefixed (inside the counted payload) with a 4-byte session ID that
// names the logical session the frame belongs to, on both directions
// of the connection. Session ID zero is the connection's implicit
// session — the one every pre-multiplexing peer speaks — and is never
// encoded: a frame for session zero is byte-identical to the classic
// format, which is what keeps old clients and old servers
// interoperable with new ones without negotiation.

// typeSessFlag marks a frame whose body starts with a 4-byte session
// ID ahead of any trace context and the payload. Like typeTraceFlag
// it lives in an otherwise-unused bit of the type byte, so frames for
// the implicit session (ID zero) are byte-identical to the classic
// format. The two flags compose: a frame carrying both starts with
// the session ID, then the trace context, then the payload.
const typeSessFlag = 0x40

// sessIDBytes is the wire size of an attached session ID.
const sessIDBytes = 4

// Session message types, continuing the MsgType space after the
// cluster block.
const (
	// TypeSessionClose ends one logical session on a multiplexed
	// connection: the server releases every lock, subscription, and
	// queued waiter the session holds and forgets it, replying Ack.
	// Closing the TCP connection implicitly closes every session it
	// carries.
	TypeSessionClose MsgType = iota + 28
)

// CodeOverloaded is the error code a server reports when admission
// control refuses a new session (the server-wide session cap is
// reached) or when a session was shed as a slow consumer. The client
// library surfaces it as core.ErrOverloaded; callers back off or
// spread load to another server rather than retrying immediately.
const CodeOverloaded uint16 = 8

// CodeNoSession is the error code a server reports for a frame
// addressed to a multiplexed session ID it does not know — either the
// session was evicted (slow consumer), or the client skipped the
// Hello that creates a session. The client library treats it like a
// transport failure: the logical session is dead and a fresh one must
// be established (re-validating segment state by version, exactly as
// after a reconnect).
const CodeNoSession uint16 = 9

// SessionClose asks the server to end the logical session the frame's
// session ID names. The payload is empty: the session being closed is
// the one the frame itself is addressed to.
type SessionClose struct{}

// Type returns the frame type byte.
func (*SessionClose) Type() MsgType { return TypeSessionClose }

func (*SessionClose) encode(buf []byte) []byte { return buf }
func (*SessionClose) decode(_ *wire.Reader) error {
	return nil
}

// newSessionMessage allocates session-management messages; nil for
// types outside the session block.
func newSessionMessage(t MsgType) Message {
	if t == TypeSessionClose {
		return &SessionClose{}
	}
	return nil
}

// The array length below asserts at compile time that the session
// type block sits directly after the cluster block, so the const
// groups cannot drift apart silently.
var _ [1]struct{} = [TypeSessionClose - TypePullReply]struct{}{}

// WriteFrameMux writes one framed message addressed to a logical
// session. Session zero — the connection's implicit session — and a
// zero trace context produce a frame byte-identical to WriteFrame's,
// so a peer that never multiplexes emits the classic format.
func WriteFrameMux(w io.Writer, id uint32, m Message, tc TraceContext, sess uint32) error {
	payload := m.encode(make([]byte, 0, 64))
	if len(payload) > maxFrame {
		return errFrameTooBig(len(payload))
	}
	typ := byte(m.Type())
	extra := 0
	if sess != 0 {
		typ |= typeSessFlag
		extra += sessIDBytes
	}
	if tc.Valid() {
		typ |= typeTraceFlag
		extra += traceCtxBytes
	}
	hdr := make([]byte, 0, 9+extra+len(payload))
	hdr = wire.AppendU32(hdr, uint32(len(payload)+extra))
	hdr = wire.AppendU32(hdr, id)
	hdr = wire.AppendU8(hdr, typ)
	if sess != 0 {
		hdr = wire.AppendU32(hdr, sess)
	}
	if tc.Valid() {
		hdr = wire.AppendU64(hdr, tc.TraceID)
		hdr = wire.AppendU64(hdr, tc.SpanID)
	}
	hdr = append(hdr, payload...)
	if _, err := w.Write(hdr); err != nil {
		return errWritingFrame(err)
	}
	return nil
}
