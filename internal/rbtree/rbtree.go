// Package rbtree implements a generic left-leaning red-black tree.
//
// InterWeave keeps an extensive set of balanced search trees in its
// metadata: per-segment trees of blocks sorted by serial number and by
// symbolic name, per-subsegment trees of blocks sorted by address, a
// global tree of subsegments sorted by address, and server-side trees
// of blocks and version markers (paper Sections 3.1 and 3.2). This
// package is the single implementation backing all of them.
package rbtree

// Tree is an ordered map from K to V implemented as a left-leaning
// red-black (2-3) tree. The zero value is not usable; construct with
// New. Tree is not safe for concurrent use.
type Tree[K, V any] struct {
	cmp  func(a, b K) int
	root *node[K, V]
	size int
}

type node[K, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree ordered by cmp, which must return a
// negative value if a<b, zero if a==b, and a positive value if a>b.
func New[K, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Len returns the number of entries in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Clear removes all entries.
func (t *Tree[K, V]) Clear() {
	t.root = nil
	t.size = 0
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	x := t.root
	for x != nil {
		c := t.cmp(key, x.key)
		switch {
		case c < 0:
			x = x.left
		case c > 0:
			x = x.right
		default:
			return x.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value stored under key.
func (t *Tree[K, V]) Put(key K, val V) {
	t.root = t.put(t.root, key, val)
	t.root.red = false
}

func (t *Tree[K, V]) put(h *node[K, V], key K, val V) *node[K, V] {
	if h == nil {
		t.size++
		return &node[K, V]{key: key, val: val, red: true}
	}
	c := t.cmp(key, h.key)
	switch {
	case c < 0:
		h.left = t.put(h.left, key, val)
	case c > 0:
		h.right = t.put(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

// Delete removes the entry stored under key, reporting whether it was
// present.
func (t *Tree[K, V]) Delete(key K) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.del(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[K, V]) del(h *node[K, V], key K) *node[K, V] {
	if t.cmp(key, h.key) < 0 {
		if !isRed(h.left) && h.left != nil && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.del(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if t.cmp(key, h.key) == 0 && h.right == nil {
			return nil
		}
		if !isRed(h.right) && h.right != nil && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if t.cmp(key, h.key) == 0 {
			m := minNode(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.del(h.right, key)
		}
	}
	return fixUp(h)
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	m := minNode(t.root)
	return m.key, m.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	x := t.root
	for x.right != nil {
		x = x.right
	}
	return x.key, x.val, true
}

// Floor returns the largest entry with key <= want. This is the
// lookup that maps an address to the subsegment or block spanning it.
func (t *Tree[K, V]) Floor(want K) (K, V, bool) {
	var best *node[K, V]
	x := t.root
	for x != nil {
		c := t.cmp(want, x.key)
		switch {
		case c < 0:
			x = x.left
		case c > 0:
			best = x
			x = x.right
		default:
			return x.key, x.val, true
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.val, true
}

// Ceiling returns the smallest entry with key >= want.
func (t *Tree[K, V]) Ceiling(want K) (K, V, bool) {
	var best *node[K, V]
	x := t.root
	for x != nil {
		c := t.cmp(want, x.key)
		switch {
		case c < 0:
			best = x
			x = x.left
		case c > 0:
			x = x.right
		default:
			return x.key, x.val, true
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.val, true
}

// Ascend calls fn for each entry in ascending key order until fn
// returns false.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](h *node[K, V], fn func(K, V) bool) bool {
	if h == nil {
		return true
	}
	if !ascend(h.left, fn) {
		return false
	}
	if !fn(h.key, h.val) {
		return false
	}
	return ascend(h.right, fn)
}

// AscendFrom calls fn for each entry with key >= from in ascending
// order until fn returns false.
func (t *Tree[K, V]) AscendFrom(from K, fn func(K, V) bool) {
	t.ascendFrom(t.root, from, fn)
}

func (t *Tree[K, V]) ascendFrom(h *node[K, V], from K, fn func(K, V) bool) bool {
	if h == nil {
		return true
	}
	c := t.cmp(from, h.key)
	if c < 0 {
		if !t.ascendFrom(h.left, from, fn) {
			return false
		}
	}
	if c <= 0 {
		if !fn(h.key, h.val) {
			return false
		}
	}
	return t.ascendFrom(h.right, from, fn)
}

// Keys returns all keys in ascending order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

func minNode[K, V any](h *node[K, V]) *node[K, V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin[K, V any](h *node[K, V]) *node[K, V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func isRed[K, V any](h *node[K, V]) bool { return h != nil && h.red }

func rotateLeft[K, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *node[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func moveRedLeft[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func fixUp[K, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}
