package rbtree

import (
	"cmp"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) int { return cmp.Compare(a, b) })
}

// checkInvariants verifies the left-leaning red-black invariants:
// BST order, no right-leaning red links, no consecutive red links on
// the left, and uniform black height.
func checkInvariants[K, V any](t *testing.T, tr *Tree[K, V]) {
	t.Helper()
	if tr.root == nil {
		return
	}
	if tr.root.red {
		t.Fatal("root is red")
	}
	var blackHeight = -1
	var walk func(h *node[K, V], blacks int, lo, hi *K)
	walk = func(h *node[K, V], blacks int, lo, hi *K) {
		if h == nil {
			if blackHeight == -1 {
				blackHeight = blacks
			} else if blacks != blackHeight {
				t.Fatalf("uneven black height: %d vs %d", blacks, blackHeight)
			}
			return
		}
		if lo != nil && tr.cmp(h.key, *lo) <= 0 {
			t.Fatal("BST order violated (low bound)")
		}
		if hi != nil && tr.cmp(h.key, *hi) >= 0 {
			t.Fatal("BST order violated (high bound)")
		}
		if isRed(h.right) {
			t.Fatal("right-leaning red link")
		}
		if isRed(h) && isRed(h.left) {
			t.Fatal("two consecutive red links")
		}
		if !h.red {
			blacks++
		}
		walk(h.left, blacks, lo, &h.key)
		walk(h.right, blacks, &h.key, hi)
	}
	walk(tr.root, 0, nil, nil)
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Errorf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(7); ok {
		t.Error("Get on empty tree reported presence")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree reported presence")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree reported presence")
	}
	if _, _, ok := tr.Floor(3); ok {
		t.Error("Floor on empty tree reported presence")
	}
	if _, _, ok := tr.Ceiling(3); ok {
		t.Error("Ceiling on empty tree reported presence")
	}
	if tr.Delete(3) {
		t.Error("Delete on empty tree reported true")
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := intTree()
	tr.Put(1, "a")
	tr.Put(2, "b")
	tr.Put(1, "c")
	if tr.Len() != 2 {
		t.Errorf("Len() = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(1); !ok || v != "c" {
		t.Errorf("Get(1) = %q,%v; want c,true", v, ok)
	}
	if v, ok := tr.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = %q,%v; want b,true", v, ok)
	}
	checkInvariants(t, tr)
}

func TestFloorCeiling(t *testing.T) {
	tr := intTree()
	for _, k := range []int{10, 20, 30, 40} {
		tr.Put(k, "")
	}
	tests := []struct {
		want    int
		floorK  int
		floorOK bool
		ceilK   int
		ceilOK  bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{25, 20, true, 30, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, tt := range tests {
		k, _, ok := tr.Floor(tt.want)
		if ok != tt.floorOK || (ok && k != tt.floorK) {
			t.Errorf("Floor(%d) = %d,%v; want %d,%v", tt.want, k, ok, tt.floorK, tt.floorOK)
		}
		k, _, ok = tr.Ceiling(tt.want)
		if ok != tt.ceilOK || (ok && k != tt.ceilK) {
			t.Errorf("Ceiling(%d) = %d,%v; want %d,%v", tt.want, k, ok, tt.ceilK, tt.ceilOK)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 1, 9, 3} {
		tr.Put(k, "")
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Errorf("Min = %d, want 1", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Errorf("Max = %d, want 9", k)
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	keys := []int{8, 3, 10, 1, 6, 14, 4, 7, 13}
	for _, k := range keys {
		tr.Put(k, "")
	}
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false, want true", k)
		}
		if tr.Delete(k) {
			t.Fatalf("second Delete(%d) = true, want false", k)
		}
		if tr.Len() != len(keys)-i-1 {
			t.Fatalf("Len() = %d after %d deletes", tr.Len(), i+1)
		}
		checkInvariants(t, tr)
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(100)
	for _, k := range perm {
		tr.Put(k, "")
	}
	var got []int
	tr.Ascend(func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != 100 {
		t.Errorf("Ascend produced %d keys, sorted=%v", len(got), sort.IntsAreSorted(got))
	}
	var n int
	tr.Ascend(func(int, string) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d, want 10", n)
	}
}

func TestAscendFrom(t *testing.T) {
	tr := intTree()
	for k := 0; k < 50; k += 5 {
		tr.Put(k, "")
	}
	var got []int
	tr.AscendFrom(12, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int{15, 20, 25, 30, 35, 40, 45}
	if len(got) != len(want) {
		t.Fatalf("AscendFrom(12) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendFrom(12) = %v, want %v", got, want)
		}
	}
	// From an existing key: inclusive.
	got = got[:0]
	tr.AscendFrom(15, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) == 0 || got[0] != 15 {
		t.Errorf("AscendFrom(15) first = %v, want 15 first", got)
	}
}

func TestKeysAndClear(t *testing.T) {
	tr := intTree()
	for _, k := range []int{3, 1, 2} {
		tr.Put(k, "")
	}
	keys := tr.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Errorf("Keys() = %v", keys)
	}
	tr.Clear()
	if tr.Len() != 0 || len(tr.Keys()) != 0 {
		t.Error("Clear did not empty the tree")
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](func(a, b string) int { return cmp.Compare(a, b) })
	words := []string{"segment", "block", "subsegment", "marker", "diff"}
	for i, w := range words {
		tr.Put(w, i)
	}
	for i, w := range words {
		if v, ok := tr.Get(w); !ok || v != i {
			t.Errorf("Get(%q) = %d,%v; want %d,true", w, v, ok, i)
		}
	}
	if k, _, _ := tr.Min(); k != "block" {
		t.Errorf("Min = %q, want block", k)
	}
}

// TestQuickAgainstReference drives random operation sequences and
// compares every observable behaviour against a map+sort reference
// model, checking RB invariants throughout.
func TestQuickAgainstReference(t *testing.T) {
	fn := func(ops []int16) bool {
		tr := New[int16, int16](func(a, b int16) int { return cmp.Compare(a, b) })
		ref := make(map[int16]int16)
		for i, op := range ops {
			k := op / 4
			switch op % 4 {
			case 0, 1: // insert twice as often as delete
				tr.Put(k, int16(i))
				ref[k] = int16(i)
			case 2:
				if tr.Delete(k) != func() bool { _, ok := ref[k]; return ok }() {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := tr.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		checkInvariants(t, tr)
		if tr.Len() != len(ref) {
			return false
		}
		var sorted []int16
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		keys := tr.Keys()
		if len(keys) != len(sorted) {
			return false
		}
		for i := range keys {
			if keys[i] != sorted[i] {
				return false
			}
		}
		// Floor/Ceiling spot checks against the sorted reference.
		for probe := int16(-50); probe < 50; probe += 7 {
			fk, _, fok := tr.Floor(probe)
			var wantK int16
			wantOK := false
			for _, k := range sorted {
				if k <= probe {
					wantK, wantOK = k, true
				}
			}
			if fok != wantOK || (fok && fk != wantK) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequential(t *testing.T) {
	tr := intTree()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Put(i, "")
	}
	checkInvariants(t, tr)
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 2 {
		tr.Delete(i)
	}
	checkInvariants(t, tr)
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d after deletes, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(i)
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", i, ok)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Put(i&0xffff, "")
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree()
	for i := 0; i < 1<<16; i++ {
		tr.Put(i, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & 0xffff)
	}
}

func BenchmarkFloor(b *testing.B) {
	tr := intTree()
	for i := 0; i < 1<<16; i++ {
		tr.Put(i*8, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Floor((i & 0xffff) * 8)
	}
}
