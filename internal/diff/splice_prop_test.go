package diff

// Property test for run splicing: on random clustered modification
// patterns, for every SpliceWords setting the collected diff must
// (1) keep each block's runs sorted and non-overlapping, (2) leave
// gaps strictly wider than the splice threshold between consecutive
// runs (a narrower gap should have been absorbed), (3) cover at
// least every unit an unspliced collection covers, and (4) — the
// ground truth — reproduce the source bit-exactly on a lagging copy,
// across heterogeneous destination profiles.

import (
	"math/rand"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// unitSet returns the set of units each block's runs cover.
func unitSet(d *wire.SegmentDiff) map[uint32]map[uint32]bool {
	out := make(map[uint32]map[uint32]bool)
	for _, bd := range d.Blocks {
		us := out[bd.Serial]
		if us == nil {
			us = make(map[uint32]bool)
			out[bd.Serial] = us
		}
		for _, r := range bd.Runs {
			for u := r.Start; u < r.Start+r.Count; u++ {
				us[u] = true
			}
		}
	}
	return out
}

// checkRunStructure asserts sortedness, non-overlap, and — when
// splicing is active — that no gap at or under the threshold
// survived. The int32 blocks these tests use map one unit to one
// 32-bit word, so unit gaps and splice-word gaps coincide.
func checkRunStructure(t *testing.T, d *wire.SegmentDiff, spliceWords int) {
	t.Helper()
	eff := spliceWords
	if eff == 0 {
		eff = DefaultSpliceWords
	}
	for _, bd := range d.Blocks {
		prevEnd := -1
		for _, r := range bd.Runs {
			if int(r.Start) < prevEnd {
				t.Errorf("block %d: run at %d overlaps previous run ending at %d", bd.Serial, r.Start, prevEnd)
			}
			if prevEnd >= 0 && eff > 0 && int(r.Start)-prevEnd <= eff {
				t.Errorf("block %d: gap of %d units between runs not spliced (threshold %d)",
					bd.Serial, int(r.Start)-prevEnd, eff)
			}
			prevEnd = int(r.Start) + int(r.Count)
		}
	}
}

func TestSplicingPropertyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	profiles := arch.Profiles()
	settings := []int{-1, 0, 1, 2, 3, 4, 8, 16}
	const n = 1024
	for trial := 0; trial < len(settings); trial++ {
		sw := settings[trial]
		src := newClient(t, arch.AMD64(), "h/s")
		dst := newClient(t, profiles[rng.Intn(len(profiles))], "h/s")
		b := src.alloc(t, types.Int32(), 1, n, "a")
		for i := 0; i < n; i++ {
			mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), rng.Int31()))
		}
		transfer(t, src, dst, CollectOptions{Version: 1})

		for round := 0; round < 4; round++ {
			version := uint32(round + 2)
			src.seg.WriteProtect()
			// Clustered writes with random gaps, so cluster spacing
			// straddles the splice threshold both ways.
			clusters := 1 + rng.Intn(8)
			for c := 0; c < clusters; c++ {
				start := rng.Intn(n)
				length := 1 + rng.Intn(24)
				for i := start; i < start+length && i < n; i++ {
					mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), rng.Int31()))
				}
			}
			// Unspliced reference collection of the same twin state.
			ref, err := CollectSegment(src.seg, CollectOptions{Version: version, SpliceWords: -1, Swizzle: src.swizzler()})
			if err != nil {
				t.Fatal(err)
			}
			d, _ := transfer(t, src, dst, CollectOptions{Version: version, SpliceWords: sw})
			src.seg.DropTwins()
			src.seg.Unprotect()

			checkRunStructure(t, d, sw)
			checkRunStructure(t, ref, -1)

			// Splicing may only widen coverage, never lose a change.
			refUnits := unitSet(ref)
			gotUnits := unitSet(d)
			for serial, us := range refUnits {
				for u := range us {
					if !gotUnits[serial][u] {
						t.Errorf("trial %d round %d (splice=%d): modified unit %d/%d dropped",
							trial, round, sw, serial, u)
					}
				}
			}
			if sw >= 0 && countRuns(d) > countRuns(ref) {
				t.Errorf("trial %d round %d: spliced collection has more runs (%d) than unspliced (%d)",
					trial, round, countRuns(d), countRuns(ref))
			}

			// Ground truth: the destination equals the source exactly.
			db, ok := dst.seg.BlockByName("a")
			if !ok {
				t.Fatal("block a missing on dst")
			}
			for i := 0; i < n; i++ {
				want, _ := src.heap.ReadI32(b.Addr + mem.Addr(4*i))
				got, _ := dst.heap.ReadI32(db.Addr + mem.Addr(4*i))
				if got != want {
					t.Fatalf("trial %d round %d (splice=%d): int %d = %d, want %d",
						trial, round, sw, i, got, want)
				}
			}
		}
	}
}
