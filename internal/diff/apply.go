package diff

import (
	"fmt"
	"time"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// ApplyOptions controls diff application.
type ApplyOptions struct {
	// Resolve unswizzles MIPs into local pointers; required when the
	// segment contains pointers.
	Resolve ResolveFunc
	// LayoutFor returns the local layout for a registered type
	// descriptor serial; required when the diff creates blocks.
	LayoutFor func(descSerial uint32) (*types.Layout, error)
	// NoPredict disables last-block prediction (for the ablation
	// benchmarks); the serial-number tree is searched for every
	// block diff instead.
	NoPredict bool
	// Stats, when non-nil, accumulates timings and prediction
	// counters.
	Stats *Stats
	// PredictHits/Misses are reported through Stats via Runs/Units;
	// the explicit counters live on the return of ApplySegment.
}

// ApplyResult reports what an application changed.
type ApplyResult struct {
	// NewBlocks is the number of blocks created.
	NewBlocks int
	// FreedBlocks is the number of blocks freed.
	FreedBlocks int
	// UnitsApplied is the number of primitive units written.
	UnitsApplied int
	// PredictHits and PredictMisses count last-block prediction
	// outcomes (Section 3.3, "last-block searches").
	PredictHits   int
	PredictMisses int
}

// ApplySegment applies a wire-format diff to the local copy of a
// segment. All stores bypass the fault path: incoming updates are not
// local modifications.
func ApplySegment(seg *mem.SegMem, d *wire.SegmentDiff, opts ApplyOptions) (*ApplyResult, error) {
	start := time.Now()
	res := &ApplyResult{}
	heap := seg.Heap()
	prof := heap.Profile()

	// New blocks first, so that runs and MIPs targeting them
	// resolve. Blocks arrive grouped by the version in which they
	// were created (the server's blk_version_list order), so
	// allocating in arrival order realizes the paper's
	// layout-for-locality: blocks modified together end up adjacent.
	for _, nb := range d.News {
		if existing, ok := seg.BlockBySerial(nb.Serial); ok {
			// Already materialized — e.g. by a directory fetch that
			// preceded this full transmission. Sanity-check identity.
			if existing.Count != int(nb.Count) {
				return nil, fmt.Errorf("diff: block %d count mismatch: have %d, diff says %d",
					nb.Serial, existing.Count, nb.Count)
			}
			continue
		}
		if opts.LayoutFor == nil {
			return nil, fmt.Errorf("diff: diff creates block %d but no LayoutFor was provided", nb.Serial)
		}
		l, err := opts.LayoutFor(nb.DescSerial)
		if err != nil {
			return nil, fmt.Errorf("diff: block %d: %w", nb.Serial, err)
		}
		b, err := seg.AllocWithSerial(nb.Serial, l, int(nb.Count), nb.Name)
		if err != nil {
			return nil, fmt.Errorf("diff: materializing block %d: %w", nb.Serial, err)
		}
		b.Pending = false // came from the server; nothing to send back
		b.DescSerial = nb.DescSerial
		res.NewBlocks++
	}
	for _, serial := range d.Freed {
		b, ok := seg.BlockBySerial(serial)
		if !ok {
			// Freed before this client ever saw it; nothing to do.
			continue
		}
		if err := seg.Free(b); err != nil {
			return nil, fmt.Errorf("diff: freeing block %d: %w", serial, err)
		}
		res.FreedBlocks++
	}

	var last *mem.Block
	for i := range d.Blocks {
		bd := &d.Blocks[i]
		b := predictBlock(seg, last, bd.Serial, opts.NoPredict, res)
		if b == nil {
			return nil, fmt.Errorf("diff: %w: serial %d", mem.ErrNoSuchBlock, bd.Serial)
		}
		last = b
		view, err := heap.MutView(b.Addr, b.Size())
		if err != nil {
			return nil, err
		}
		total := b.PrimCount()
		for _, run := range bd.Runs {
			if int(run.Start)+int(run.Count) > total {
				return nil, fmt.Errorf("diff: run [%d,%d) exceeds block %d (%d units)",
					run.Start, run.Start+run.Count, bd.Serial, total)
			}
			if err := applyRun(prof, view, b, run, opts); err != nil {
				return nil, err
			}
			res.UnitsApplied += int(run.Count)
		}
	}
	if opts.Stats != nil {
		opts.Stats.Translate += time.Since(start)
		opts.Stats.Runs += countRuns(d)
		opts.Stats.Units += res.UnitsApplied
		opts.Stats.Bytes += d.DataBytes()
	}
	return res, nil
}

// predictBlock locates the block for a diff entry. Based on the
// observation that blocks modified together in the past tend to be
// modified together in the future, the next changed block is
// predicted to be the next consecutive block in memory; only on a
// miss is the balanced serial-number tree searched.
func predictBlock(seg *mem.SegMem, last *mem.Block, serial uint32, noPredict bool, res *ApplyResult) *mem.Block {
	if !noPredict && last != nil {
		if cand := last.NextByAddr(); cand != nil && cand.Serial == serial {
			res.PredictHits++
			return cand
		}
		res.PredictMisses++
	}
	b, ok := seg.BlockBySerial(serial)
	if !ok {
		return nil
	}
	return b
}

// applyRun decodes one wire run into the block's local bytes.
func applyRun(prof *arch.Profile, view []byte, b *mem.Block, run wire.Run, opts ApplyOptions) error {
	r := wire.NewReader(run.Data)
	order := prof.Order
	u0 := int(run.Start)
	u1 := u0 + int(run.Count)
	err := forUnits(b.Layout, u0, u1, func(k types.Kind, strCap, absByte, n, stride int) error {
		switch k {
		case types.KindChar:
			for i := 0; i < n; i++ {
				view[absByte+i*stride] = r.U8()
			}
		case types.KindInt16:
			for i := 0; i < n; i++ {
				order.PutUint16(view[absByte+i*stride:], r.U16())
			}
		case types.KindInt32, types.KindFloat32:
			for i := 0; i < n; i++ {
				order.PutUint32(view[absByte+i*stride:], r.U32())
			}
		case types.KindInt64, types.KindFloat64:
			for i := 0; i < n; i++ {
				order.PutUint64(view[absByte+i*stride:], r.U64())
			}
		case types.KindString:
			for i := 0; i < n; i++ {
				s := r.Bytes()
				if r.Err() != nil {
					return r.Err()
				}
				if len(s) >= strCap {
					return fmt.Errorf("diff: string of %d bytes overflows capacity %d in block %d",
						len(s), strCap, b.Serial)
				}
				cell := view[absByte+i*stride : absByte+i*stride+strCap]
				copy(cell, s)
				clear(cell[len(s):])
			}
		case types.KindPointer:
			for i := 0; i < n; i++ {
				mip := r.Str()
				if r.Err() != nil {
					return r.Err()
				}
				var a mem.Addr
				if mip != "" {
					if opts.Resolve == nil {
						return fmt.Errorf("diff: block %d contains pointers but no resolver was provided", b.Serial)
					}
					var err error
					a, err = opts.Resolve(mip)
					if err != nil {
						return fmt.Errorf("diff: unswizzling %q in block %d: %w", mip, b.Serial, err)
					}
				}
				if prof.WordSize == 4 {
					if a > 0xFFFFFFFF {
						return fmt.Errorf("diff: pointer %#x exceeds 32-bit word", uint64(a))
					}
					order.PutUint32(view[absByte+i*stride:], uint32(a))
				} else {
					order.PutUint64(view[absByte+i*stride:], uint64(a))
				}
			}
		default:
			return fmt.Errorf("diff: unexpected kind %v in walk", k)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("diff: run data for block %d: %w", b.Serial, err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("diff: %d trailing bytes in run for block %d", r.Remaining(), b.Serial)
	}
	return nil
}
