// Package diff implements InterWeave's modification tracking and
// wire-format diffing (paper Section 3.1).
//
// When a client releases a write lock, the library gathers local
// changes and converts them into machine-independent wire format —
// "diff collection". It scans the pagemaps of the segment's
// subsegments, performs a word-by-word comparison of each modified
// page against its twin, splices nearly-adjacent runs, maps the
// changed byte ranges onto blocks through the address-sorted metadata
// trees, and translates each run into wire format through the blocks'
// type descriptors. "Diff application" is the inverse: wire-format
// runs are located in blocks (with last-block prediction) and decoded
// into local format, swizzling MIPs back into machine addresses.
package diff

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// DefaultSpliceWords is the paper's splicing threshold: one or two
// unchanged words between changed words are treated as changed, to
// avoid starting a new run-length-encoded section (Section 3.3).
const DefaultSpliceWords = 2

// SwizzleFunc converts a local pointer value to its MIP wire form.
type SwizzleFunc func(mem.Addr) (string, error)

// ResolveFunc converts a MIP wire form to a local pointer, fetching
// or reserving the target segment as needed.
type ResolveFunc func(string) (mem.Addr, error)

// Stats reports where collection and application time went,
// reproducing the cost breakdown of Figure 5.
type Stats struct {
	// WordDiff is time spent in word-by-word twin comparison
	// ("client word diffing").
	WordDiff time.Duration
	// Translate is time spent converting runs to or from wire
	// format ("client translation").
	Translate time.Duration
	// Runs is the number of wire runs produced or consumed.
	Runs int
	// Units is the number of primitive units transmitted.
	Units int
	// Bytes is the canonical wire payload of the runs produced or
	// consumed — the bandwidth a diff actually costs, which against
	// the segment's full-transfer size gives the byte savings of
	// diffing (Figure 7's measure).
	Bytes int
}

// CollectOptions controls diff collection.
type CollectOptions struct {
	// Version is the segment version the diff claims to produce;
	// servers may overwrite it when they assign the real version.
	Version uint32
	// Swizzle translates pointer cells; required when the segment
	// contains pointers.
	Swizzle SwizzleFunc
	// NoDiff transmits every block whole, skipping twin comparison
	// (the paper's no-diff mode).
	NoDiff bool
	// SpliceWords is the run-splicing threshold in words; negative
	// disables splicing, zero means DefaultSpliceWords.
	SpliceWords int
	// Freed lists serials of blocks freed since the last collection.
	Freed []uint32
	// Stats, when non-nil, accumulates phase timings.
	Stats *Stats
}

// CollectSegment gathers the segment's local modifications into a
// wire-format diff. Newly created (pending) blocks travel whole with
// NewBlock records; other blocks contribute word-diffed runs (or
// whole-block runs in no-diff mode). On success, pending flags are
// cleared. Twins are left in place; the caller drops them after the
// diff is accepted.
func CollectSegment(seg *mem.SegMem, opts CollectOptions) (*wire.SegmentDiff, error) {
	c := &collector{
		seg:    seg,
		heap:   seg.Heap(),
		prof:   seg.Heap().Profile(),
		opts:   opts,
		diffs:  make(map[uint32]int),
		splice: opts.SpliceWords,
	}
	if c.splice == 0 {
		c.splice = DefaultSpliceWords
	}
	if c.splice < 0 {
		c.splice = 0
	}
	d := &wire.SegmentDiff{Version: opts.Version, Freed: opts.Freed}
	c.out = d

	// Pending (newly created) blocks: announce and send whole.
	var pending []*mem.Block
	seg.Blocks(func(b *mem.Block) bool {
		if b.Pending {
			pending = append(pending, b)
		}
		return true
	})
	for _, b := range pending {
		d.News = append(d.News, wire.NewBlock{
			Serial:     b.Serial,
			DescSerial: b.DescSerial,
			Count:      uint32(b.Count),
			Name:       b.Name,
		})
		if err := c.fullBlockRun(b); err != nil {
			return nil, err
		}
	}

	if opts.NoDiff {
		// Whole-segment transmission: every non-pending block whole.
		var err error
		seg.Blocks(func(b *mem.Block) bool {
			if !b.Pending {
				if e := c.fullBlockRun(b); e != nil {
					err = e
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Word-by-word twin comparison over modified pages.
		start := time.Now()
		intervals := c.wordDiff()
		if opts.Stats != nil {
			opts.Stats.WordDiff += time.Since(start)
		}
		start = time.Now()
		for _, iv := range intervals {
			if err := c.translateInterval(iv); err != nil {
				return nil, err
			}
		}
		if opts.Stats != nil {
			opts.Stats.Translate += time.Since(start)
		}
	}

	for _, b := range pending {
		b.Pending = false
	}
	if opts.Stats != nil {
		opts.Stats.Runs += countRuns(d)
	}
	return d, nil
}

func countRuns(d *wire.SegmentDiff) int {
	n := 0
	for i := range d.Blocks {
		n += len(d.Blocks[i].Runs)
	}
	return n
}

type interval struct {
	sub    *mem.SubSeg
	lo, hi int // byte offsets within the subsegment
}

type collector struct {
	seg    *mem.SegMem
	heap   *mem.Heap
	prof   *arch.Profile
	opts   CollectOptions
	out    *wire.SegmentDiff
	diffs  map[uint32]int // block serial -> index in out.Blocks
	splice int
}

// wordDiff scans the pagemaps and produces spliced modified byte
// intervals in address order.
func (c *collector) wordDiff() []interval {
	var out []interval
	for _, mr := range c.seg.ModifiedRanges() {
		ss := mr.Sub
		base := mr.FirstPage << arch.PageShift
		words := mr.NumPages * arch.PageWords
		// Runs of changed words with gaps <= splice absorbed.
		runStart := -1
		lastChanged := -1
		flush := func() {
			if runStart >= 0 {
				out = append(out, interval{
					sub: ss,
					lo:  base + runStart*arch.WordBytes,
					hi:  base + (lastChanged+1)*arch.WordBytes,
				})
				runStart = -1
			}
		}
		for w := 0; w < words; w++ {
			pg := mr.FirstPage + (w / arch.PageWords)
			twin := ss.Twin(pg)
			off := (base + w*arch.WordBytes) & (arch.PageSize - 1)
			cur := binary.NativeEndian.Uint32(ss.Data[base+w*arch.WordBytes:])
			old := binary.NativeEndian.Uint32(twin[off:])
			if cur == old {
				if runStart >= 0 && w-lastChanged > c.splice {
					flush()
				}
				continue
			}
			if runStart < 0 {
				runStart = w
			}
			lastChanged = w
		}
		flush()
	}
	return out
}

// translateInterval maps one modified byte interval onto the blocks
// it overlaps and emits wire runs for each.
func (c *collector) translateInterval(iv interval) error {
	lo := iv.sub.Base + mem.Addr(iv.lo)
	hi := iv.sub.Base + mem.Addr(iv.hi)
	var firstErr error
	visit := func(b *mem.Block) bool {
		if b.Addr >= hi {
			return false
		}
		if b.Pending {
			return true // travels whole already
		}
		if firstErr = c.blockRuns(b, lo, hi); firstErr != nil {
			return false
		}
		return true
	}
	// Start with the block spanning lo (if any), then ascend.
	if b, ok := c.heap.BlockAt(lo); ok && b.Sub == iv.sub {
		if !visit(b) {
			return firstErr
		}
		iv.sub.AscendBlocks(b.Addr+1, func(nb *mem.Block) bool { return visit(nb) })
		return firstErr
	}
	iv.sub.AscendBlocks(lo, func(nb *mem.Block) bool { return visit(nb) })
	return firstErr
}

// blockRuns emits wire runs for the part of [lo, hi) that overlaps
// block b.
func (c *collector) blockRuns(b *mem.Block, lo, hi mem.Addr) error {
	rb0 := 0
	if lo > b.Addr {
		rb0 = int(lo - b.Addr)
	}
	rb1 := b.Size()
	if hi < b.End() {
		rb1 = int(hi - b.Addr)
	}
	if rb0 >= rb1 {
		return nil
	}
	l := b.Layout
	pc := l.PrimCount
	// Collect the unit ranges element by element, merging across
	// element boundaries when contiguous.
	u0, u1 := -1, -1
	emit := func() error {
		if u0 < 0 {
			return nil
		}
		err := c.emitRun(b, u0, u1)
		u0, u1 = -1, -1
		return err
	}
	for e := rb0 / l.Size; e <= (rb1-1)/l.Size; e++ {
		lb0 := rb0 - e*l.Size
		if lb0 < 0 {
			lb0 = 0
		}
		lb1 := rb1 - e*l.Size
		if lb1 > l.Size {
			lb1 = l.Size
		}
		p0, p1, ok := l.PrimSpan(lb0, lb1)
		if !ok {
			continue
		}
		g0, g1 := e*pc+p0, e*pc+p1
		if u1 == g0 {
			u1 = g1 // contiguous with previous element's span
			continue
		}
		if err := emit(); err != nil {
			return err
		}
		u0, u1 = g0, g1
	}
	return emit()
}

// emitRun translates units [u0, u1) of block b into one wire run.
func (c *collector) emitRun(b *mem.Block, u0, u1 int) error {
	data, err := c.translateUnits(b, u0, u1)
	if err != nil {
		return err
	}
	bd := c.blockDiff(b.Serial)
	bd.Runs = append(bd.Runs, wire.Run{
		Start: uint32(u0),
		Count: uint32(u1 - u0),
		Data:  data,
	})
	if c.opts.Stats != nil {
		c.opts.Stats.Units += u1 - u0
		c.opts.Stats.Bytes += len(data)
	}
	return nil
}

func (c *collector) blockDiff(serial uint32) *wire.BlockDiff {
	if i, ok := c.diffs[serial]; ok {
		return &c.out.Blocks[i]
	}
	c.out.Blocks = append(c.out.Blocks, wire.BlockDiff{Serial: serial})
	c.diffs[serial] = len(c.out.Blocks) - 1
	return &c.out.Blocks[len(c.out.Blocks)-1]
}

// fullBlockRun emits a single run covering all of b.
func (c *collector) fullBlockRun(b *mem.Block) error {
	start := time.Now()
	err := c.emitRun(b, 0, b.PrimCount())
	if c.opts.Stats != nil {
		c.opts.Stats.Translate += time.Since(start)
	}
	return err
}

// translateUnits converts units [u0, u1) of b from local format to
// canonical wire format.
func (c *collector) translateUnits(b *mem.Block, u0, u1 int) ([]byte, error) {
	view, err := c.heap.View(b.Addr, b.Size())
	if err != nil {
		return nil, err
	}
	l := b.Layout
	order := c.prof.Order
	// Pre-size for the common fixed-width case.
	buf := make([]byte, 0, (u1-u0)*4)
	err = forUnits(l, u0, u1, func(k types.Kind, strCap, absByte, n, stride int) error {
		switch k {
		case types.KindChar:
			for i := 0; i < n; i++ {
				buf = append(buf, view[absByte+i*stride])
			}
		case types.KindInt16:
			for i := 0; i < n; i++ {
				buf = wire.AppendU16(buf, order.Uint16(view[absByte+i*stride:]))
			}
		case types.KindInt32, types.KindFloat32:
			for i := 0; i < n; i++ {
				buf = wire.AppendU32(buf, order.Uint32(view[absByte+i*stride:]))
			}
		case types.KindInt64, types.KindFloat64:
			for i := 0; i < n; i++ {
				buf = wire.AppendU64(buf, order.Uint64(view[absByte+i*stride:]))
			}
		case types.KindString:
			for i := 0; i < n; i++ {
				s := cstr(view[absByte+i*stride : absByte+i*stride+strCap])
				buf = wire.AppendBytes(buf, s)
			}
		case types.KindPointer:
			if c.opts.Swizzle == nil {
				return errors.New("diff: segment contains pointers but no swizzler was provided")
			}
			for i := 0; i < n; i++ {
				var a mem.Addr
				if c.prof.WordSize == 4 {
					a = mem.Addr(order.Uint32(view[absByte+i*stride:]))
				} else {
					a = mem.Addr(order.Uint64(view[absByte+i*stride:]))
				}
				mip, err := c.opts.Swizzle(a)
				if err != nil {
					return fmt.Errorf("diff: swizzling %#x in block %d: %w", uint64(a), b.Serial, err)
				}
				buf = wire.AppendString(buf, mip)
			}
		default:
			return fmt.Errorf("diff: unexpected kind %v in walk", k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// cstr trims a fixed-capacity string cell at its NUL terminator.
func cstr(cell []byte) []byte {
	for i, c := range cell {
		if c == 0 {
			return cell[:i]
		}
	}
	return cell
}

// forUnits iterates the units [u0, u1) of a block whose elements have
// layout l, invoking fn once per maximal same-step sub-run with the
// absolute byte offset of the first unit (relative to block start),
// the unit count, and the byte stride.
func forUnits(l *types.Layout, u0, u1 int, fn func(k types.Kind, strCap, absByte, n, stride int) error) error {
	if u0 >= u1 {
		return nil
	}
	pc := l.PrimCount
	// Uniform blocks — n elements of a single primitive — are one
	// arithmetic run; this is the common case for big arrays.
	if pc == 1 && len(l.Walk) == 1 {
		s := &l.Walk[0]
		return fn(s.Kind, s.Cap, u0*l.Size+s.ByteOff, u1-u0, l.Size)
	}
	// Locate the first unit's step once; afterwards advance
	// incrementally (next step, or wrap to the next element),
	// avoiding a binary search per run.
	e := u0 / pc
	p := u0 % pc
	si, ok := l.StepAtPrim(p)
	if !ok {
		return fmt.Errorf("diff: unit %d outside layout", u0)
	}
	for u0 < u1 {
		s := &l.Walk[si]
		within := p - s.PrimOff
		n := s.Count - within
		if rem := u1 - u0; n > rem {
			n = rem
		}
		// Steps never cross an element boundary.
		abs := e*l.Size + s.ByteOff + within*s.ByteStride
		if err := fn(s.Kind, s.Cap, abs, n, s.ByteStride); err != nil {
			return err
		}
		u0 += n
		p += n
		if p >= pc {
			p = 0
			e++
			si = 0
		} else if p >= s.PrimOff+s.Count {
			si++
		}
	}
	return nil
}
