package diff

import (
	"math/rand"
	"strconv"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/swizzle"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// client bundles a heap, a segment, and the glue callbacks a real
// InterWeave client provides, so tests can move diffs between
// heterogeneous "machines".
type client struct {
	heap *mem.Heap
	seg  *mem.SegMem
	// descs maps descriptor serials to machine-independent types.
	descs map[uint32]*types.Type
}

func newClient(t *testing.T, prof *arch.Profile, segName string) *client {
	t.Helper()
	h, err := mem.NewHeap(prof)
	if err != nil {
		t.Fatal(err)
	}
	s, err := h.NewSegment(segName)
	if err != nil {
		t.Fatal(err)
	}
	return &client{heap: h, seg: s, descs: make(map[uint32]*types.Type)}
}

func (c *client) layoutFor(t *testing.T) func(uint32) (*types.Layout, error) {
	return func(serial uint32) (*types.Layout, error) {
		typ, ok := c.descs[serial]
		if !ok {
			t.Fatalf("unknown descriptor serial %d", serial)
		}
		return types.Of(typ, c.heap.Profile())
	}
}

func (c *client) swizzler() SwizzleFunc {
	return func(a mem.Addr) (string, error) {
		m, err := swizzle.PtrToMIP(c.heap, a)
		if err != nil {
			return "", err
		}
		return m.String(), nil
	}
}

func (c *client) resolver(t *testing.T) ResolveFunc {
	return func(s string) (mem.Addr, error) {
		m, err := swizzle.Parse(s)
		if err != nil {
			return 0, err
		}
		if m.IsNil() {
			return 0, nil
		}
		seg, ok := c.heap.Segment(m.Segment)
		if !ok {
			t.Fatalf("resolver: segment %q not cached", m.Segment)
		}
		return swizzle.AddrOfMIP(seg, m)
	}
}

// alloc allocates a block and registers its type under descSerial.
func (c *client) alloc(t *testing.T, typ *types.Type, descSerial uint32, count int, name string) *mem.Block {
	t.Helper()
	l, err := types.Of(typ, c.heap.Profile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.seg.Alloc(l, count, name)
	if err != nil {
		t.Fatal(err)
	}
	b.DescSerial = descSerial
	c.descs[descSerial] = typ
	return b
}

func mixType(t *testing.T) *types.Type {
	t.Helper()
	s256, err := types.StringOf(256)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := types.StringOf(8)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	mix, err := types.StructOf("mix",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "d", Type: types.Float64()},
		types.Field{Name: "s", Type: s256},
		types.Field{Name: "t", Type: s4},
		types.Field{Name: "p", Type: pi},
		types.Field{Name: "c", Type: types.Char()},
		types.Field{Name: "j", Type: types.Int64()},
		types.Field{Name: "f", Type: types.Float32()},
		types.Field{Name: "h", Type: types.Int16()},
	)
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

// transfer collects from src and applies to dst, registering dst's
// descriptor table from the src client's.
func transfer(t *testing.T, src, dst *client, copts CollectOptions) (*wire.SegmentDiff, *ApplyResult) {
	t.Helper()
	if copts.Swizzle == nil {
		copts.Swizzle = src.swizzler()
	}
	d, err := CollectSegment(src.seg, copts)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	// Serialize/deserialize to exercise the wire encoding.
	enc := d.Marshal(nil)
	dec, err := wire.UnmarshalSegmentDiff(enc)
	if err != nil {
		t.Fatalf("wire roundtrip: %v", err)
	}
	for serial, typ := range src.descs {
		if _, ok := dst.descs[serial]; !ok {
			// Simulate descriptor registration through the wire.
			b, err := types.Marshal(typ)
			if err != nil {
				t.Fatal(err)
			}
			back, err := types.Unmarshal(b)
			if err != nil {
				t.Fatal(err)
			}
			dst.descs[serial] = back
		}
	}
	res, err := ApplySegment(dst.seg, dec, ApplyOptions{
		Resolve:   dst.resolver(t),
		LayoutFor: dst.layoutFor(t),
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return d, res
}

func TestFullTransferHeterogeneous(t *testing.T) {
	// Big-endian 32-bit writer, little-endian 64-bit reader: the
	// paper's core scenario.
	src := newClient(t, arch.Sparc(), "h/s")
	dst := newClient(t, arch.Alpha(), "h/s")

	mix := mixType(t)
	b := src.alloc(t, mix, 1, 3, "data")
	ints := src.alloc(t, types.Int32(), 2, 4, "ints")

	h := src.heap
	l := b.Layout
	for e := 0; e < 3; e++ {
		base := b.Addr + mem.Addr(e*l.Size)
		fb := func(name string) mem.Addr {
			f, ok := l.Field(name)
			if !ok {
				t.Fatalf("field %s", name)
			}
			return base + mem.Addr(f.ByteOff)
		}
		mustOK(t, h.WriteI32(fb("i"), int32(100+e)))
		mustOK(t, h.WriteF64(fb("d"), 1.5*float64(e)-2.25))
		mustOK(t, h.WriteCString(fb("s"), 256, "long string value "+strconv.Itoa(e)))
		mustOK(t, h.WriteCString(fb("t"), 8, "ab"+strconv.Itoa(e)))
		mustOK(t, h.WritePtr(fb("p"), ints.Addr+mem.Addr(4*e)))
		mustOK(t, h.WriteU8(fb("c"), byte('x'+e)))
		mustOK(t, h.WriteI64(fb("j"), int64(-7e12)+int64(e)))
		mustOK(t, h.WriteF32(fb("f"), float32(e)*0.5))
		mustOK(t, h.WriteI16(fb("h"), int16(-3*e)))
	}
	for i := 0; i < 4; i++ {
		mustOK(t, h.WriteI32(ints.Addr+mem.Addr(4*i), int32(i*i)))
	}

	_, res := transfer(t, src, dst, CollectOptions{Version: 1})
	if res.NewBlocks != 2 {
		t.Fatalf("NewBlocks = %d, want 2", res.NewBlocks)
	}

	// Verify on the destination machine.
	db, ok := dst.seg.BlockByName("data")
	if !ok {
		t.Fatal("data block missing on dst")
	}
	dints, ok := dst.seg.BlockByName("ints")
	if !ok {
		t.Fatal("ints block missing on dst")
	}
	dl := db.Layout
	dh := dst.heap
	for e := 0; e < 3; e++ {
		base := db.Addr + mem.Addr(e*dl.Size)
		fb := func(name string) mem.Addr {
			f, _ := dl.Field(name)
			return base + mem.Addr(f.ByteOff)
		}
		if v, _ := dh.ReadI32(fb("i")); v != int32(100+e) {
			t.Errorf("elem %d i = %d", e, v)
		}
		if v, _ := dh.ReadF64(fb("d")); v != 1.5*float64(e)-2.25 {
			t.Errorf("elem %d d = %v", e, v)
		}
		if v, _ := dh.ReadCString(fb("s"), 256); v != "long string value "+strconv.Itoa(e) {
			t.Errorf("elem %d s = %q", e, v)
		}
		if v, _ := dh.ReadCString(fb("t"), 8); v != "ab"+strconv.Itoa(e) {
			t.Errorf("elem %d t = %q", e, v)
		}
		if v, _ := dh.ReadPtr(fb("p")); v != dints.Addr+mem.Addr(4*e) {
			t.Errorf("elem %d p = %#x, want %#x", e, uint64(v), uint64(dints.Addr+mem.Addr(4*e)))
		}
		if v, _ := dh.ReadU8(fb("c")); v != byte('x'+e) {
			t.Errorf("elem %d c = %c", e, v)
		}
		if v, _ := dh.ReadI64(fb("j")); v != int64(-7e12)+int64(e) {
			t.Errorf("elem %d j = %d", e, v)
		}
		if v, _ := dh.ReadF32(fb("f")); v != float32(e)*0.5 {
			t.Errorf("elem %d f = %v", e, v)
		}
		if v, _ := dh.ReadI16(fb("h")); v != int16(-3*e) {
			t.Errorf("elem %d h = %d", e, v)
		}
	}
	for i := 0; i < 4; i++ {
		if v, _ := dh.ReadI32(dints.Addr + mem.Addr(4*i)); v != int32(i*i) {
			t.Errorf("ints[%d] = %d", i, v)
		}
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalDiffSmallerThanFull(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	dst := newClient(t, arch.X86(), "h/s")
	const n = 64 * 1024 // 256 KiB of ints
	b := src.alloc(t, types.Int32(), 1, n, "a")
	for i := 0; i < n; i++ {
		mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), int32(i)))
	}
	full, _ := transfer(t, src, dst, CollectOptions{Version: 1})
	fullSize := full.WireSize()

	// Modify 100 scattered ints under write protection.
	src.seg.WriteProtect()
	for i := 0; i < 100; i++ {
		mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i*637), int32(-i)))
	}
	d, res := transfer(t, src, dst, CollectOptions{Version: 2})
	src.seg.DropTwins()
	if d.WireSize() >= fullSize/10 {
		t.Errorf("incremental diff %d bytes vs full %d; want <10%%", d.WireSize(), fullSize)
	}
	if res.UnitsApplied == 0 || res.UnitsApplied > 100*3 {
		t.Errorf("UnitsApplied = %d", res.UnitsApplied)
	}
	// Destination content matches source exactly.
	db, _ := dst.seg.BlockByName("a")
	for i := 0; i < n; i++ {
		want, _ := src.heap.ReadI32(b.Addr + mem.Addr(4*i))
		got, _ := dst.heap.ReadI32(db.Addr + mem.Addr(4*i))
		if got != want {
			t.Fatalf("int %d = %d, want %d", i, got, want)
		}
	}
}

func TestSplicing(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	const n = 1024
	b := src.alloc(t, types.Int32(), 1, n, "a")
	// First sync away the pending state.
	if _, err := CollectSegment(src.seg, CollectOptions{Version: 1}); err != nil {
		t.Fatal(err)
	}

	collectWithStride := func(stride, spliceWords int) *wire.SegmentDiff {
		t.Helper()
		src.seg.WriteProtect()
		for i := 0; i < n; i += stride {
			mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), int32(i+stride)))
		}
		d, err := CollectSegment(src.seg, CollectOptions{Version: 2, SpliceWords: spliceWords})
		if err != nil {
			t.Fatal(err)
		}
		src.seg.DropTwins()
		src.seg.Unprotect()
		return d
	}

	// Stride 2: gaps of one word are spliced; the whole block should
	// be one run.
	d2 := collectWithStride(2, 0)
	if runs := countRuns(d2); runs != 1 {
		t.Errorf("stride 2: %d runs, want 1 (splicing)", runs)
	}
	// Stride 4: gaps of three words exceed the threshold; many runs.
	d4 := collectWithStride(4, 0)
	if runs := countRuns(d4); runs < n/8 {
		t.Errorf("stride 4: %d runs, want many", runs)
	}
	// Splicing disabled: stride 2 produces many runs.
	d2ns := collectWithStride(2, -1)
	if runs := countRuns(d2ns); runs < n/4 {
		t.Errorf("stride 2 unspliced: %d runs, want ~%d", runs, n/2)
	}
}

func TestNoDiffMode(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	dst := newClient(t, arch.Sparc(), "h/s")
	const n = 4096
	b := src.alloc(t, types.Int32(), 1, n, "a")
	transfer(t, src, dst, CollectOptions{Version: 1})

	// Modify WITHOUT write protection — no twins exist. No-diff mode
	// must still ship everything.
	for i := 0; i < n; i++ {
		mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), int32(7*i)))
	}
	d, _ := transfer(t, src, dst, CollectOptions{Version: 2, NoDiff: true})
	if countRuns(d) != 1 {
		t.Errorf("no-diff runs = %d, want 1 whole-block run", countRuns(d))
	}
	db, _ := dst.seg.BlockByName("a")
	for i := 0; i < n; i += 997 {
		if v, _ := dst.heap.ReadI32(db.Addr + mem.Addr(4*i)); v != int32(7*i) {
			t.Fatalf("dst[%d] = %d, want %d", i, v, 7*i)
		}
	}
	if st := src.heap.Stats(); st.Faults != 0 {
		t.Errorf("no-diff mode took %d faults", st.Faults)
	}
}

func TestFreedBlocksPropagate(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	dst := newClient(t, arch.AMD64(), "h/s")
	b1 := src.alloc(t, types.Int32(), 1, 8, "a")
	src.alloc(t, types.Int32(), 1, 8, "b")
	transfer(t, src, dst, CollectOptions{Version: 1})
	if dst.seg.NumBlocks() != 2 {
		t.Fatalf("dst blocks = %d", dst.seg.NumBlocks())
	}
	serial := b1.Serial
	mustOK(t, src.seg.Free(b1))
	_, res := transfer(t, src, dst, CollectOptions{Version: 2, Freed: []uint32{serial}})
	if res.FreedBlocks != 1 {
		t.Errorf("FreedBlocks = %d", res.FreedBlocks)
	}
	if _, ok := dst.seg.BlockByName("a"); ok {
		t.Error("freed block survives on dst")
	}
	// Freeing an unknown serial is a no-op, not an error.
	_, res = transfer(t, src, dst, CollectOptions{Version: 3, Freed: []uint32{9999}})
	if res.FreedBlocks != 0 {
		t.Errorf("unknown free applied: %d", res.FreedBlocks)
	}
}

func TestPointerNilAndCrossSegment(t *testing.T) {
	src := newClient(t, arch.Alpha(), "h/a")
	dst := newClient(t, arch.Sparc(), "h/a")
	srcOther, err := src.heap.NewSegment("h/b")
	mustOK(t, err)
	dstOther, err := dst.heap.NewSegment("h/b")
	mustOK(t, err)

	pi, err := types.PointerTo(types.Int32())
	mustOK(t, err)
	parr, err := types.ArrayOf(pi, 3)
	mustOK(t, err)
	b := src.alloc(t, parr, 1, 1, "ptrs")

	// Target block in the other segment on both sides, same serial.
	intL, err := types.Of(types.Int32(), src.heap.Profile())
	mustOK(t, err)
	target, err := srcOther.Alloc(intL, 4, "t")
	mustOK(t, err)
	intLd, err := types.Of(types.Int32(), dst.heap.Profile())
	mustOK(t, err)
	dtarget, err := dstOther.Alloc(intLd, 4, "t")
	mustOK(t, err)

	ws := src.heap.Profile().WordSize
	mustOK(t, src.heap.WritePtr(b.Addr, 0))                          // nil
	mustOK(t, src.heap.WritePtr(b.Addr+mem.Addr(ws), target.Addr+8)) // cross-segment interior
	mustOK(t, src.heap.WritePtr(b.Addr+mem.Addr(2*ws), b.Addr))      // self-referential block

	transfer(t, src, dst, CollectOptions{Version: 1})

	db, _ := dst.seg.BlockByName("ptrs")
	dws := dst.heap.Profile().WordSize
	if v, _ := dst.heap.ReadPtr(db.Addr); v != 0 {
		t.Errorf("nil pointer = %#x", uint64(v))
	}
	if v, _ := dst.heap.ReadPtr(db.Addr + mem.Addr(dws)); v != dtarget.Addr+8 {
		t.Errorf("cross-segment pointer = %#x, want %#x", uint64(v), uint64(dtarget.Addr+8))
	}
	if v, _ := dst.heap.ReadPtr(db.Addr + mem.Addr(2*dws)); v != db.Addr {
		t.Errorf("self pointer = %#x, want %#x", uint64(v), uint64(db.Addr))
	}
}

func TestCollectErrors(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	pi, err := types.PointerTo(types.Int32())
	mustOK(t, err)
	b := src.alloc(t, pi, 1, 1, "p")
	mustOK(t, src.heap.WritePtr(b.Addr, b.Addr))
	if _, err := CollectSegment(src.seg, CollectOptions{}); err == nil {
		t.Error("collect with pointers and no swizzler succeeded")
	}
}

func TestApplyErrors(t *testing.T) {
	dst := newClient(t, arch.AMD64(), "h/s")
	// Run for a missing block.
	d := &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: 5, Runs: []wire.Run{{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("apply to missing block succeeded")
	}
	// New block without LayoutFor.
	d = &wire.SegmentDiff{Version: 1, News: []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 1}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("apply creating block without LayoutFor succeeded")
	}
	// Run exceeding block bounds.
	b := dst.alloc(t, types.Int32(), 1, 2, "a")
	b.Pending = false
	d = &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: b.Serial, Runs: []wire.Run{{Start: 1, Count: 5, Data: make([]byte, 20)}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("run exceeding block succeeded")
	}
	// Truncated run data.
	d = &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: b.Serial, Runs: []wire.Run{{Start: 0, Count: 2, Data: []byte{1, 2}}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("truncated run data succeeded")
	}
	// Trailing run data.
	d = &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: b.Serial, Runs: []wire.Run{{Start: 0, Count: 1, Data: make([]byte, 9)}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("trailing run data succeeded")
	}
	// String overflowing its capacity.
	s4, err := types.StringOf(4)
	mustOK(t, err)
	sb := dst.alloc(t, s4, 2, 1, "s")
	sb.Pending = false
	data := wire.AppendString(nil, "waytoolong")
	d = &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: sb.Serial, Runs: []wire.Run{{Start: 0, Count: 1, Data: data}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("overflowing string succeeded")
	}
	// Pointer without resolver.
	pi, err := types.PointerTo(types.Int32())
	mustOK(t, err)
	pb := dst.alloc(t, pi, 3, 1, "p")
	pb.Pending = false
	data = wire.AppendString(nil, "h/s#a")
	d = &wire.SegmentDiff{Version: 1, Blocks: []wire.BlockDiff{{Serial: pb.Serial, Runs: []wire.Run{{Start: 0, Count: 1, Data: data}}}}}
	if _, err := ApplySegment(dst.seg, d, ApplyOptions{}); err == nil {
		t.Error("pointer without resolver succeeded")
	}
}

func TestLastBlockPrediction(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	dst := newClient(t, arch.AMD64(), "h/s")
	var blocks []*mem.Block
	for i := 0; i < 50; i++ {
		blocks = append(blocks, src.alloc(t, types.Int32(), 1, 64, ""))
	}
	transfer(t, src, dst, CollectOptions{Version: 1})

	// Modify every block; blocks are consecutive in memory and in
	// serial order, so prediction should hit almost always.
	src.seg.WriteProtect()
	for _, b := range blocks {
		mustOK(t, src.heap.WriteI32(b.Addr, 1))
	}
	d, err := CollectSegment(src.seg, CollectOptions{Version: 2, Swizzle: src.swizzler()})
	mustOK(t, err)
	src.seg.DropTwins()

	res, err := ApplySegment(dst.seg, d, ApplyOptions{LayoutFor: dst.layoutFor(t)})
	mustOK(t, err)
	if res.PredictHits < 40 {
		t.Errorf("prediction hits = %d/%d", res.PredictHits, res.PredictHits+res.PredictMisses)
	}
	res2, err := ApplySegment(dst.seg, d, ApplyOptions{LayoutFor: dst.layoutFor(t), NoPredict: true})
	mustOK(t, err)
	if res2.PredictHits != 0 || res2.PredictMisses != 0 {
		t.Errorf("NoPredict counted predictions: %+v", res2)
	}
}

func TestStatsPopulated(t *testing.T) {
	src := newClient(t, arch.AMD64(), "h/s")
	b := src.alloc(t, types.Int32(), 1, 4096, "a")
	var st Stats
	_, err := CollectSegment(src.seg, CollectOptions{Version: 1, Stats: &st})
	mustOK(t, err)
	if st.Units != 4096 || st.Runs != 1 {
		t.Errorf("full collect stats = %+v", st)
	}
	src.seg.WriteProtect()
	mustOK(t, src.heap.WriteI32(b.Addr, 9))
	st = Stats{}
	_, err = CollectSegment(src.seg, CollectOptions{Version: 2, Stats: &st})
	mustOK(t, err)
	if st.Runs != 1 || st.Units == 0 {
		t.Errorf("incremental collect stats = %+v", st)
	}
	if st.WordDiff == 0 && st.Translate == 0 {
		t.Log("timings are zero; acceptable on coarse clocks")
	}
}

// TestRandomModificationsRoundtrip is the keystone property test:
// arbitrary modification patterns on a mixed-type segment survive the
// collect/wire/apply cycle bit-exactly across heterogeneous profiles.
func TestRandomModificationsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	profiles := arch.Profiles()
	for trial := 0; trial < 10; trial++ {
		srcProf := profiles[rng.Intn(len(profiles))]
		dstProf := profiles[rng.Intn(len(profiles))]
		src := newClient(t, srcProf, "h/s")
		dst := newClient(t, dstProf, "h/s")
		const n = 2048
		b := src.alloc(t, types.Int32(), 1, n, "a")
		for i := 0; i < n; i++ {
			mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*i), rng.Int31()))
		}
		transfer(t, src, dst, CollectOptions{Version: 1})
		for round := 0; round < 3; round++ {
			src.seg.WriteProtect()
			writes := rng.Intn(300)
			for w := 0; w < writes; w++ {
				mustOK(t, src.heap.WriteI32(b.Addr+mem.Addr(4*rng.Intn(n)), rng.Int31()))
			}
			transfer(t, src, dst, CollectOptions{Version: uint32(round + 2)})
			src.seg.DropTwins()
			src.seg.Unprotect()
			db, _ := dst.seg.BlockByName("a")
			for i := 0; i < n; i++ {
				want, _ := src.heap.ReadI32(b.Addr + mem.Addr(4*i))
				got, _ := dst.heap.ReadI32(db.Addr + mem.Addr(4*i))
				if got != want {
					t.Fatalf("trial %d round %d (%s->%s): int %d = %d, want %d",
						trial, round, srcProf, dstProf, i, got, want)
				}
			}
		}
	}
}
