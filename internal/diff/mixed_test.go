package diff

import (
	"fmt"
	"math/rand"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestRandomMixedModificationsRoundtrip drives the twin-diff path —
// not just full transfers — over a segment containing every primitive
// kind, including strings and pointers, across random heterogeneous
// profile pairs, and checks bit-exact convergence after every round.
func TestRandomMixedModificationsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	profiles := arch.Profiles()
	for trial := 0; trial < 6; trial++ {
		srcProf := profiles[rng.Intn(len(profiles))]
		dstProf := profiles[rng.Intn(len(profiles))]
		t.Run(fmt.Sprintf("%s_to_%s_%d", srcProf, dstProf, trial), func(t *testing.T) {
			runMixedTrial(t, rng, srcProf, dstProf)
		})
	}
}

func runMixedTrial(t *testing.T, rng *rand.Rand, srcProf, dstProf *arch.Profile) {
	src := newClient(t, srcProf, "h/mx")
	dst := newClient(t, dstProf, "h/mx")
	mix := mixType(t)
	const elems = 64
	b := src.alloc(t, mix, 1, elems, "data")
	targets := src.alloc(t, types.Int32(), 2, elems, "targets")

	l := b.Layout
	h := src.heap
	field := func(e int, name string) mem.Addr {
		f, ok := l.Field(name)
		if !ok {
			t.Fatalf("field %s", name)
		}
		return b.Addr + mem.Addr(e*l.Size+f.ByteOff)
	}
	mutate := func(seed int) {
		t.Helper()
		// Touch a random subset of elements and fields.
		for e := 0; e < elems; e++ {
			if rng.Intn(3) != 0 {
				continue
			}
			switch rng.Intn(9) {
			case 0:
				mustOK(t, h.WriteI32(field(e, "i"), rng.Int31()))
			case 1:
				mustOK(t, h.WriteF64(field(e, "d"), rng.NormFloat64()))
			case 2:
				mustOK(t, h.WriteCString(field(e, "s"), 256, fmt.Sprintf("v%d-%d", seed, rng.Int31())))
			case 3:
				mustOK(t, h.WriteCString(field(e, "t"), 8, fmt.Sprintf("%06d", rng.Intn(999999))))
			case 4:
				if rng.Intn(4) == 0 {
					mustOK(t, h.WritePtr(field(e, "p"), 0))
				} else {
					mustOK(t, h.WritePtr(field(e, "p"), targets.Addr+mem.Addr(4*rng.Intn(elems))))
				}
			case 5:
				mustOK(t, h.WriteU8(field(e, "c"), byte(rng.Intn(256))))
			case 6:
				mustOK(t, h.WriteI64(field(e, "j"), rng.Int63()))
			case 7:
				mustOK(t, h.WriteF32(field(e, "f"), float32(rng.NormFloat64())))
			case 8:
				mustOK(t, h.WriteI16(field(e, "h"), int16(rng.Int31())))
			}
		}
	}

	mutate(0)
	transfer(t, src, dst, CollectOptions{Version: 1})
	for round := 0; round < 4; round++ {
		src.seg.WriteProtect()
		mutate(round + 1)
		transfer(t, src, dst, CollectOptions{Version: uint32(round + 2)})
		src.seg.DropTwins()
		src.seg.Unprotect()
		compareMixed(t, src, dst, elems)
	}
}

// compareMixed checks field-level equality between the two machines'
// copies (byte comparison is meaningless across formats).
func compareMixed(t *testing.T, src, dst *client, elems int) {
	t.Helper()
	sb, _ := src.seg.BlockByName("data")
	db, ok := dst.seg.BlockByName("data")
	if !ok {
		t.Fatal("dst missing data block")
	}
	st, _ := src.seg.BlockByName("targets")
	dt, _ := dst.seg.BlockByName("targets")
	for e := 0; e < elems; e++ {
		sf := func(name string) mem.Addr {
			f, _ := sb.Layout.Field(name)
			return sb.Addr + mem.Addr(e*sb.Layout.Size+f.ByteOff)
		}
		df := func(name string) mem.Addr {
			f, _ := db.Layout.Field(name)
			return db.Addr + mem.Addr(e*db.Layout.Size+f.ByteOff)
		}
		if a, _ := src.heap.ReadI32(sf("i")); true {
			if b, _ := dst.heap.ReadI32(df("i")); a != b {
				t.Fatalf("elem %d i: %d != %d", e, a, b)
			}
		}
		if a, _ := src.heap.ReadF64(sf("d")); true {
			if b, _ := dst.heap.ReadF64(df("d")); a != b {
				t.Fatalf("elem %d d: %v != %v", e, a, b)
			}
		}
		if a, _ := src.heap.ReadCString(sf("s"), 256); true {
			if b, _ := dst.heap.ReadCString(df("s"), 256); a != b {
				t.Fatalf("elem %d s: %q != %q", e, a, b)
			}
		}
		if a, _ := src.heap.ReadCString(sf("t"), 8); true {
			if b, _ := dst.heap.ReadCString(df("t"), 8); a != b {
				t.Fatalf("elem %d t: %q != %q", e, a, b)
			}
		}
		// Pointers: both nil, or pointing at the same target offset.
		pa, _ := src.heap.ReadPtr(sf("p"))
		pb, _ := dst.heap.ReadPtr(df("p"))
		switch {
		case pa == 0 && pb == 0:
		case pa == 0 || pb == 0:
			t.Fatalf("elem %d p: nilness differs (%#x vs %#x)", e, uint64(pa), uint64(pb))
		default:
			offA := pa - st.Addr
			offB := pb - dt.Addr
			if offA != offB {
				t.Fatalf("elem %d p: offsets differ (%d vs %d)", e, offA, offB)
			}
		}
		if a, _ := src.heap.ReadU8(sf("c")); true {
			if b, _ := dst.heap.ReadU8(df("c")); a != b {
				t.Fatalf("elem %d c: %d != %d", e, a, b)
			}
		}
		if a, _ := src.heap.ReadI64(sf("j")); true {
			if b, _ := dst.heap.ReadI64(df("j")); a != b {
				t.Fatalf("elem %d j: %d != %d", e, a, b)
			}
		}
		if a, _ := src.heap.ReadF32(sf("f")); true {
			if b, _ := dst.heap.ReadF32(df("f")); a != b {
				t.Fatalf("elem %d f: %v != %v", e, a, b)
			}
		}
		if a, _ := src.heap.ReadI16(sf("h")); true {
			if b, _ := dst.heap.ReadI16(df("h")); a != b {
				t.Fatalf("elem %d h: %d != %d", e, a, b)
			}
		}
	}
}
