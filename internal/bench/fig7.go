package bench

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"interweave"
	"interweave/internal/seqmine"
)

// Fig7Row is one bar of Figure 7: the mining client's total bandwidth
// requirement under one coherence configuration.
type Fig7Row struct {
	Config string
	// Bytes is the total data transferred to the mining client.
	Bytes int64
	// Syncs is how many updates actually moved data.
	Syncs int
}

// Fig7Config scales the datamining experiment. The paper's database
// (100k customers, ~20 MB) reproduces with DB: seqmine.DefaultConfig();
// the default here is a reduced database with the same shape, since
// the bandwidth ratios — the figure's content — are scale-invariant.
type Fig7Config struct {
	DB seqmine.Config
	// Updates is the number of incremental 1% updates after the
	// initial 50% build (the paper uses the remaining 50).
	Updates int
	// MinSupport controls lattice size.
	MinSupport int32
}

// DefaultFig7Config returns a laptop-scale configuration.
func DefaultFig7Config() Fig7Config {
	db := seqmine.DefaultConfig()
	db.Customers = 20000
	db.ItemsPerTrans = 20
	db.Items = 600
	db.Patterns = 1200
	return Fig7Config{DB: db, Updates: 20, MinSupport: 40}
}

// Fig7 runs the datamining bandwidth experiment: a database server
// builds the summary lattice from half the database, then repeatedly
// folds in 1% more and publishes; a mining client keeps its cached
// copy coherent under each configuration, and we total the bytes it
// pulls.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	db, err := seqmine.Generate(cfg.DB)
	if err != nil {
		return nil, err
	}
	runs := []struct {
		name   string
		policy interweave.Policy
		full   bool
	}{
		{name: "Full transfer", full: true},
		{name: "Diff-only", policy: interweave.Full()},
		{name: "Delta-2", policy: interweave.Delta(1)},
		{name: "Delta-3", policy: interweave.Delta(2)},
		{name: "Delta-4", policy: interweave.Delta(3)},
	}
	rows := make([]Fig7Row, 0, len(runs))
	for _, run := range runs {
		row, err := fig7Run(cfg, db, run.name, run.policy, run.full)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 %s: %w", run.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// countingConn tallies bytes read from the server — the client's
// download bandwidth.
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.n.Add(int64(n))
	return n, err
}

func fig7Run(cfg Fig7Config, db *seqmine.Database, name string, policy interweave.Policy, fullTransfer bool) (Fig7Row, error) {
	row := Fig7Row{Config: name}
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	segName := ln.Addr().String() + "/lattice"

	pubClient, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileAMD64(), Name: "dbserver"})
	if err != nil {
		return row, err
	}
	defer pubClient.Close()
	pub, err := seqmine.NewPublisher(pubClient, segName)
	if err != nil {
		return row, err
	}

	lat, err := seqmine.NewLattice(cfg.DB.PatternLen, cfg.MinSupport)
	if err != nil {
		return row, err
	}
	half := cfg.DB.Customers / 2
	onePct := cfg.DB.Customers / 100
	if onePct < 1 {
		onePct = 1
	}
	lat.AddSequences(db.Slice(0, half))
	if err := pub.Publish(lat); err != nil {
		return row, err
	}

	var bytes atomic.Int64
	var sub *seqmine.Subscriber
	if fullTransfer {
		// No caching client: the whole summary travels each time a
		// new version is available.
		snap := srv.SegmentSnapshot(segName)
		if snap == nil {
			return row, fmt.Errorf("segment missing")
		}
		d, err := snap.CollectDiff(0)
		if err != nil {
			return row, err
		}
		bytes.Add(int64(d.WireSize()))
		row.Syncs++
	} else {
		mineClient, err := interweave.NewClient(interweave.Options{
			Profile: interweave.ProfileSparc(),
			Name:    "miner",
			Dial: func(addr string) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, 10*time.Second)
				if err != nil {
					return nil, err
				}
				return countingConn{Conn: c, n: &bytes}, nil
			},
		})
		if err != nil {
			return row, err
		}
		defer mineClient.Close()
		sub, err = seqmine.NewSubscriber(mineClient, segName, policy)
		if err != nil {
			return row, err
		}
		before := sub.Segment().Version()
		if _, err := sub.Snapshot(); err != nil {
			return row, err
		}
		if sub.Segment().Version() != before {
			row.Syncs++
		}
	}

	for u := 0; u < cfg.Updates; u++ {
		lo := half + u*onePct
		lat.AddSequences(db.Slice(lo, lo+onePct))
		if err := pub.Publish(lat); err != nil {
			return row, err
		}
		if fullTransfer {
			snap := srv.SegmentSnapshot(segName)
			d, err := snap.CollectDiff(0)
			if err != nil {
				return row, err
			}
			bytes.Add(int64(d.WireSize()))
			row.Syncs++
			continue
		}
		before := sub.Segment().Version()
		// The mining client issues a query (a read lock) after each
		// published version; the coherence policy decides whether
		// data moves.
		if err := lockUnlock(sub); err != nil {
			return row, err
		}
		if sub.Segment().Version() != before {
			row.Syncs++
		}
	}
	row.Bytes = bytes.Load()
	return row, nil
}

// lockUnlock acquires and releases a read lock, triggering whatever
// update the policy requires — the steady-state mining query.
func lockUnlock(sub *seqmine.Subscriber) error {
	h := sub.Segment()
	c := clientOf(sub)
	if err := c.RLock(h); err != nil {
		return err
	}
	return c.RUnlock(h)
}

// clientOf exposes the subscriber's client for lock calls.
func clientOf(sub *seqmine.Subscriber) *interweave.Client { return sub.Client() }
