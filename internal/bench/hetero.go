package bench

import (
	"time"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// HeteroRow measures one (source, destination) architecture pair: the
// time to collect 1 MB of int_double structures on the source machine
// and apply the wire diff on the destination machine. The wire format
// is canonical (big-endian), so big-endian sources translate with
// fewer byte swaps than little-endian ones, and layouts differ when
// alignment rules do — this matrix quantifies the "heterogeneity tax"
// the paper's translation machinery pays.
type HeteroRow struct {
	Src, Dst string
	Collect  time.Duration
	Apply    time.Duration
}

// Hetero measures the full profile-pair matrix.
func Hetero(iters int) ([]HeteroRow, error) {
	if iters < 1 {
		iters = 1
	}
	profiles := arch.Profiles()
	rows := make([]HeteroRow, 0, len(profiles)*len(profiles))
	for _, src := range profiles {
		for _, dst := range profiles {
			row, err := heteroPair(src, dst, iters)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func heteroPair(srcProf, dstProf *arch.Profile, iters int) (HeteroRow, error) {
	row := HeteroRow{Src: srcProf.Name, Dst: dstProf.Name}
	intDouble, err := types.StructOf("int_double",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "d", Type: types.Float64()},
	)
	if err != nil {
		return row, err
	}
	src, err := newLocalSeg(srcProf, "b/het")
	if err != nil {
		return row, err
	}
	dst, err := newLocalSeg(dstProf, "b/het")
	if err != nil {
		return row, err
	}
	srcLay, err := types.Of(intDouble, srcProf)
	if err != nil {
		return row, err
	}
	count := megabyte / srcLay.Size
	blk, err := src.alloc(intDouble, count, "a")
	if err != nil {
		return row, err
	}
	h := src.heap
	iF, _ := srcLay.Field("i")
	dF, _ := srcLay.Field("d")
	for e := 0; e < count; e++ {
		base := blk.Addr + mem.Addr(e*srcLay.Size)
		if err := h.WriteI32(base+mem.Addr(iF.ByteOff), int32(e)); err != nil {
			return row, err
		}
		if err := h.WriteF64(base+mem.Addr(dF.ByteOff), float64(e)*0.5); err != nil {
			return row, err
		}
	}
	if err := dst.mirror(src); err != nil {
		return row, err
	}
	// Materialize the block on the destination machine first.
	created, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1})
	if err != nil {
		return row, err
	}
	if _, err := diff.ApplySegment(dst.seg, created, diff.ApplyOptions{LayoutFor: dst.layoutFor}); err != nil {
		return row, err
	}

	var d *wire.SegmentDiff
	start := time.Now()
	for i := 0; i < iters; i++ {
		if d, err = diff.CollectSegment(src.seg, diff.CollectOptions{Version: 2, NoDiff: true}); err != nil {
			return row, err
		}
	}
	row.Collect = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := diff.ApplySegment(dst.seg, d, diff.ApplyOptions{LayoutFor: dst.layoutFor}); err != nil {
			return row, err
		}
	}
	row.Apply = time.Since(start) / time.Duration(iters)
	return row, nil
}
