package bench

import (
	"fmt"
	"time"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/wire"
)

// TRServerRow is one row of the technical-report experiment the paper
// summarizes in Section 4.1: the server's data management cost for
// 1 MB of each data mix. The paper reports that server costs are
// "much lower than that on the client in all cases other than pointer
// and small_string because the server maintains data in wire format";
// the variable-length items (strings and MIPs), stored separately
// from their blocks, are the exception.
type TRServerRow struct {
	Name string
	// ServerApply is the server's cost to apply a fully modified
	// whole-block diff.
	ServerApply time.Duration
	// ServerCollect is the server's cost to build the update for a
	// lagging client (cache disabled, so the data is assembled from
	// the wire-format cells).
	ServerCollect time.Duration
	// ClientCollect is the client's whole-block translation cost,
	// for comparison.
	ClientCollect time.Duration
}

// TRServer measures server-side translation costs per data mix.
func TRServer(iters int) ([]TRServerRow, error) {
	if iters < 1 {
		iters = 1
	}
	prof := arch.AMD64()
	specs, err := fig4Mixes(prof)
	if err != nil {
		return nil, err
	}
	rows := make([]TRServerRow, 0, len(specs))
	for _, spec := range specs {
		row, err := trServerCase(prof, spec, iters)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func trServerCase(prof *arch.Profile, spec mixSpec, iters int) (TRServerRow, error) {
	row := TRServerRow{Name: spec.Name}
	c, err := setupFig4Case(prof, spec)
	if err != nil {
		return row, err
	}

	// Client whole-block translation, timed, producing the update
	// diff the server will repeatedly apply.
	var update *wire.SegmentDiff
	start := time.Now()
	for i := 0; i < iters; i++ {
		update, err = diff.CollectSegment(c.src.seg, diff.CollectOptions{
			Version: 1, NoDiff: true, Swizzle: c.src.swizzler(),
		})
		if err != nil {
			return row, err
		}
	}
	row.ClientCollect = time.Since(start) / time.Duration(iters)

	// Creation diff: the same data plus block and descriptor records
	// (the case setup already consumed the pending flags).
	creation := &wire.SegmentDiff{Version: update.Version, Blocks: update.Blocks}
	c.src.seg.Blocks(func(b *mem.Block) bool {
		creation.News = append(creation.News, wire.NewBlock{
			Serial:     b.Serial,
			DescSerial: b.DescSerial,
			Count:      uint32(b.Count),
			Name:       b.Name,
		})
		return true
	})
	if err := c.src.attachDescs(creation); err != nil {
		return row, err
	}
	svr := server.NewSegment("b/tr")
	svr.SetDiffCacheCap(0)
	if _, _, err := svr.ApplyDiff(creation); err != nil {
		return row, err
	}

	// Server apply: a fully modified whole-block diff per iteration.
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := svr.ApplyDiff(update); err != nil {
			return row, err
		}
	}
	row.ServerApply = time.Since(start) / time.Duration(iters)

	// Server collect: assemble the full update for a lagging client.
	before := svr.Version - 1
	start = time.Now()
	for i := 0; i < iters; i++ {
		d, err := svr.CollectDiff(before)
		if err != nil {
			return row, err
		}
		if d == nil {
			return row, fmt.Errorf("no diff for lagging client")
		}
	}
	row.ServerCollect = time.Since(start) / time.Duration(iters)
	return row, nil
}
