package bench

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/core"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// MultiSegmentThroughput drives one writer pipeline per segment
// against a live TCP server and measures aggregate release
// throughput. Each worker owns its segment outright, so there is no
// lock-protocol contention: the only serialization left is inside the
// server. Under the per-segment locking model (DESIGN.md §8) the
// pipelines are independent and aggregate throughput scales with the
// segment count up to the machine's core count; under a global server
// lock the segs=N case collapses to segs=1 throughput. ns/op is per
// release across all pipelines, so scaling shows up directly as
// segs=N ns/op approaching 1/N of the segs=1 figure.
func MultiSegmentThroughput(b *testing.B, segs int) {
	b.Helper()
	srv, err := server.New(server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	addr := ln.Addr().String()

	const words = 64
	clients := make([]*core.Client, segs)
	handles := make([]*core.Segment, segs)
	blocks := make([]*mem.Block, segs)
	for i := range clients {
		c, err := core.NewClient(core.Options{Profile: arch.AMD64(), Name: fmt.Sprintf("ms%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		h, err := c.Open(fmt.Sprintf("%s/ms%d", addr, i))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.WLock(h); err != nil {
			b.Fatal(err)
		}
		blk, err := c.Alloc(h, types.Int32(), words, "a")
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Heap().WriteI32(blk.Addr, 1); err != nil {
			b.Fatal(err)
		}
		if err := c.WUnlock(h); err != nil {
			b.Fatal(err)
		}
		clients[i], handles[i], blocks[i] = c, h, blk
	}

	errs := make(chan error, segs)
	var next int64
	// Each release ships one modified int32 as its diff payload, so
	// the MB/s column is committed-payload throughput — the figure
	// BENCH_*.json trends and `benchjson -compare` gates on.
	b.SetBytes(4)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < segs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, h, blk := clients[i], handles[i], blocks[i]
			for {
				n := atomic.AddInt64(&next, 1)
				if n > int64(b.N) {
					return
				}
				if err := c.WLock(h); err != nil {
					errs <- err
					return
				}
				if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*(n%words)), int32(n)); err != nil {
					errs <- err
					return
				}
				if err := c.WUnlock(h); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	b.ReportMetric(float64(segs), "segments")
}
