package bench

import (
	"fmt"
	"time"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// Fig5Row is one X position of Figure 5: diff management cost for a
// 1 MB integer array when every ratio-th word is modified.
type Fig5Row struct {
	// Ratio is the distance in words between consecutive modified
	// words (1 = everything modified).
	Ratio int
	// The six curves of the figure.
	ClientCollectDiff time.Duration
	ClientApplyDiff   time.Duration
	ClientWordDiff    time.Duration
	ClientTranslate   time.Duration
	ServerCollectDiff time.Duration
	ServerApplyDiff   time.Duration
	// WireBytes is the diff size the client produced.
	WireBytes int
}

// Fig5Ratios are the paper's X axis.
func Fig5Ratios() []int {
	var out []int
	for r := 1; r <= 16384; r *= 2 {
		out = append(out, r)
	}
	return out
}

// Fig5 runs the modification-granularity sweep.
func Fig5(iters int) ([]Fig5Row, error) {
	if iters < 1 {
		iters = 1
	}
	const words = megabyte / 4
	prof := arch.AMD64()
	src, err := newLocalSeg(prof, "b/f5")
	if err != nil {
		return nil, err
	}
	dst, err := newLocalSeg(prof, "b/f5")
	if err != nil {
		return nil, err
	}
	block, err := src.alloc(types.Int32(), words, "a")
	if err != nil {
		return nil, err
	}
	for i := 0; i < words; i++ {
		if err := src.heap.WriteI32(block.Addr+mem.Addr(4*i), int32(i)); err != nil {
			return nil, err
		}
	}
	created, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1})
	if err != nil {
		return nil, err
	}
	if err := src.attachDescs(created); err != nil {
		return nil, err
	}
	if err := dst.mirror(src); err != nil {
		return nil, err
	}
	if _, err := diff.ApplySegment(dst.seg, created, diff.ApplyOptions{LayoutFor: dst.layoutFor}); err != nil {
		return nil, err
	}
	svr := server.NewSegment("b/f5")
	svr.SetDiffCacheCap(0) // measure real server-side collection
	if _, _, err := svr.ApplyDiff(created); err != nil {
		return nil, err
	}

	rows := make([]Fig5Row, 0, 16)
	seed := 1
	for _, ratio := range Fig5Ratios() {
		row := Fig5Row{Ratio: ratio}
		for it := 0; it < iters; it++ {
			seed++
			src.seg.WriteProtect()
			for w := 0; w < words; w += ratio {
				if err := src.heap.WriteI32(block.Addr+mem.Addr(4*w), int32(w+seed)); err != nil {
					return nil, err
				}
			}
			var st diff.Stats
			start := time.Now()
			d, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 2, Stats: &st})
			row.ClientCollectDiff += time.Since(start)
			if err != nil {
				return nil, err
			}
			row.ClientWordDiff += st.WordDiff
			row.ClientTranslate += st.Translate
			row.WireBytes = d.WireSize()
			src.seg.DropTwins()
			src.seg.Unprotect()

			// Server applies the client diff.
			before := svr.Version
			start = time.Now()
			if _, _, err := svr.ApplyDiff(d); err != nil {
				return nil, err
			}
			row.ServerApplyDiff += time.Since(start)

			// Server collects a diff for a one-behind client.
			start = time.Now()
			sd, err := svr.CollectDiff(before)
			row.ServerCollectDiff += time.Since(start)
			if err != nil {
				return nil, err
			}
			if sd == nil {
				return nil, fmt.Errorf("bench: server produced no diff at ratio %d", ratio)
			}

			// Client applies the server-built diff.
			start = time.Now()
			if _, err := diff.ApplySegment(dst.seg, sd, diff.ApplyOptions{LayoutFor: dst.layoutFor}); err != nil {
				return nil, err
			}
			row.ClientApplyDiff += time.Since(start)
		}
		n := time.Duration(iters)
		row.ClientCollectDiff /= n
		row.ClientApplyDiff /= n
		row.ClientWordDiff /= n
		row.ClientTranslate /= n
		row.ServerCollectDiff /= n
		row.ServerApplyDiff /= n
		rows = append(rows, row)
	}
	return rows, nil
}
