package bench

import (
	"testing"

	"interweave/internal/seqmine"
)

func TestFig4ShapeAndCorrectness(t *testing.T) {
	rows, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Bytes < megabyte/2 {
			t.Errorf("%s: only %d bytes of data", r.Name, r.Bytes)
		}
		if r.RPCXDR <= 0 || r.CollectBlock <= 0 || r.CollectDiff <= 0 ||
			r.ApplyBlock <= 0 || r.ApplyDiff <= 0 {
			t.Errorf("%s: non-positive timing: %+v", r.Name, r)
		}
		if r.WireBytes == 0 {
			t.Errorf("%s: empty wire transmission", r.Name)
		}
	}
	for _, want := range []string{"int_array", "double_array", "int_struct", "double_struct",
		"string", "small_string", "pointer", "int_double", "mix"} {
		if !names[want] {
			t.Errorf("missing mix %q", want)
		}
	}
}

func TestFig5ShapeAndCorrectness(t *testing.T) {
	rows, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig5Ratios()) {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Ratio != 1 || last.Ratio != 16384 {
		t.Errorf("ratio endpoints %d..%d", first.Ratio, last.Ratio)
	}
	// The headline property: diff size scales down with the fraction
	// modified.
	if first.WireBytes < megabyte {
		t.Errorf("ratio 1 transmits %d bytes, want ~1MB+", first.WireBytes)
	}
	if last.WireBytes > first.WireBytes/100 {
		t.Errorf("ratio 16384 transmits %d bytes vs %d at ratio 1", last.WireBytes, first.WireBytes)
	}
	for _, r := range rows {
		if r.ClientCollectDiff <= 0 || r.ServerApplyDiff <= 0 || r.ServerCollectDiff <= 0 || r.ClientApplyDiff <= 0 {
			t.Errorf("ratio %d: non-positive timing %+v", r.Ratio, r)
		}
		// The stats breakdown must account for the collect total.
		if r.ClientWordDiff+r.ClientTranslate > r.ClientCollectDiff*3/2+r.ClientCollectDiff {
			t.Errorf("ratio %d: breakdown exceeds total", r.Ratio)
		}
	}
}

func TestFig6ShapeAndCorrectness(t *testing.T) {
	rows, err := Fig6(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2+len(Fig6CrossSizes()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Case != "int1" || rows[1].Case != "struct1" {
		t.Errorf("leading cases = %s,%s", rows[0].Case, rows[1].Case)
	}
	for _, r := range rows {
		if r.Collect <= 0 || r.Apply <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Case, r)
		}
		// The paper reports about a microsecond per swizzle even in
		// bad cases; allow two orders of magnitude of slack.
		if r.Collect.Microseconds() > 100 {
			t.Errorf("%s: collect %v per pointer is implausible", r.Case, r.Collect)
		}
	}
}

func TestFig7BandwidthOrdering(t *testing.T) {
	db := seqmine.SmallConfig()
	db.Customers = 4000
	cfg := Fig7Config{DB: db, Updates: 8, MinSupport: 10}
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.Bytes <= 0 {
			t.Errorf("%s transferred %d bytes", r.Config, r.Bytes)
		}
	}
	full := byName["Full transfer"].Bytes
	diffOnly := byName["Diff-only"].Bytes
	d2 := byName["Delta-2"].Bytes
	d4 := byName["Delta-4"].Bytes
	// The figure's shape: wire-format diffs cut bandwidth massively
	// (the paper reports ~80%), and relaxing coherence cuts further.
	if diffOnly >= full/2 {
		t.Errorf("diffs do not pay: full=%d diff=%d", full, diffOnly)
	}
	if d2 >= diffOnly {
		t.Errorf("Delta-2 (%d) not below diff-only (%d)", d2, diffOnly)
	}
	if d4 >= d2 {
		t.Errorf("Delta-4 (%d) not below Delta-2 (%d)", d4, d2)
	}
	// Sync counts: diff-only syncs every update, Delta-2 about half.
	if byName["Diff-only"].Syncs < cfg.Updates {
		t.Errorf("diff-only synced %d times of %d", byName["Diff-only"].Syncs, cfg.Updates)
	}
	if s := byName["Delta-2"].Syncs; s > cfg.Updates/2+2 {
		t.Errorf("Delta-2 synced %d times of %d", s, cfg.Updates)
	}
}

func TestTRServerShape(t *testing.T) {
	// Timing shapes are asserted on per-cell minima over several
	// repetitions: under `go test ./...` every package competes for
	// CPU, and a single contended measurement says nothing.
	byName := map[string]TRServerRow{}
	for rep := 0; rep < 3; rep++ {
		rows, err := TRServer(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 9 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.ServerApply <= 0 || r.ServerCollect <= 0 || r.ClientCollect <= 0 {
				t.Errorf("%s: non-positive timings %+v", r.Name, r)
			}
			best, ok := byName[r.Name]
			if !ok {
				byName[r.Name] = r
				continue
			}
			if r.ServerApply < best.ServerApply {
				best.ServerApply = r.ServerApply
			}
			if r.ServerCollect < best.ServerCollect {
				best.ServerCollect = r.ServerCollect
			}
			if r.ClientCollect < best.ClientCollect {
				best.ClientCollect = r.ClientCollect
			}
			byName[r.Name] = best
		}
	}
	// The paper's claim: server costs are much lower than the
	// client's for fixed-size mixes (wire-format storage avoids
	// translation). Our client's isomorphic collapsing makes struct
	// mixes nearly as fast as the server's cell copies, so assert
	// comparable-or-lower with slack for single-shot timing jitter.
	// (int_double, which alternates kinds every unit, hovers at
	// parity by design and is excluded from the strict check.)
	for _, name := range []string{"int_array", "double_array", "int_struct", "double_struct"} {
		r := byName[name]
		if r.ServerCollect > r.ClientCollect*2 {
			t.Errorf("%s: server collect %v well above client %v", name, r.ServerCollect, r.ClientCollect)
		}
	}
	// ...with pointer and small_string as the expensive exceptions
	// (variable-length items stored separately). They must be the
	// costliest server mixes.
	costly := byName["pointer"].ServerCollect + byName["small_string"].ServerCollect
	cheap := byName["int_array"].ServerCollect + byName["double_array"].ServerCollect
	if costly <= cheap {
		t.Errorf("varlen mixes (%v) not costlier than fixed mixes (%v)", costly, cheap)
	}
}

func TestHeteroMatrix(t *testing.T) {
	rows, err := Hetero(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("rows = %d, want 25 (5x5 profiles)", len(rows))
	}
	for _, r := range rows {
		if r.Collect <= 0 || r.Apply <= 0 {
			t.Errorf("%s->%s: non-positive timings %+v", r.Src, r.Dst, r)
		}
	}
}
