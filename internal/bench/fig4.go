package bench

import (
	"fmt"
	"strings"
	"time"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/types"
	"interweave/internal/wire"
	"interweave/internal/xdr"
)

// Fig4Row is one group of bars in Figure 4: the client's cost to
// translate 1 MB of a given data mix, fully modified.
type Fig4Row struct {
	Name  string
	Bytes int
	// RPCXDR is rpcgen-style parameter marshaling of the same data.
	RPCXDR time.Duration
	// CollectBlock / ApplyBlock translate whole blocks (no-diff
	// mode); CollectDiff / ApplyDiff run the full twin-diff
	// machinery with every word modified.
	CollectBlock time.Duration
	CollectDiff  time.Duration
	ApplyBlock   time.Duration
	ApplyDiff    time.Duration
	// WireBytes is the size of the wire-format transmission.
	WireBytes int
}

// fig4Case carries the per-mix benchmark state.
type fig4Case struct {
	spec    mixSpec
	src     *localSeg
	dst     *localSeg
	block   *mem.Block
	targets *mem.Block
	fill    func(seed int) error
}

// Fig4 measures all nine mixes with the given number of timing
// iterations per bar.
func Fig4(iters int) ([]Fig4Row, error) {
	if iters < 1 {
		iters = 1
	}
	prof := arch.AMD64()
	specs, err := fig4Mixes(prof)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, 0, len(specs))
	for _, spec := range specs {
		c, err := setupFig4Case(prof, spec)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		row, err := c.measure(iters)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func setupFig4Case(prof *arch.Profile, spec mixSpec) (*fig4Case, error) {
	src, err := newLocalSeg(prof, "b/f4")
	if err != nil {
		return nil, err
	}
	dst, err := newLocalSeg(prof, "b/f4")
	if err != nil {
		return nil, err
	}
	c := &fig4Case{spec: spec, src: src, dst: dst}
	c.block, err = src.alloc(spec.Type, spec.Count, "data")
	if err != nil {
		return nil, err
	}
	if spec.wantPointers {
		// Pointer targets: an int block with one int per pointer,
		// plus one extra so pointer values can alternate between
		// seeds (every word must change in the diff runs).
		c.targets, err = src.alloc(types.Int32(), spec.Count+1, "targets")
		if err != nil {
			return nil, err
		}
	}
	c.fill = c.filler()
	if err := c.fill(0); err != nil {
		return nil, err
	}
	// Ship the creation diff so the destination has the blocks.
	created, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1, Swizzle: src.swizzler()})
	if err != nil {
		return nil, err
	}
	if err := dst.mirror(src); err != nil {
		return nil, err
	}
	if _, err := diff.ApplySegment(dst.seg, created, diff.ApplyOptions{
		Resolve:   dst.resolver(),
		LayoutFor: dst.layoutFor,
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// filler returns a function writing seed-dependent values into every
// primitive unit of the case's block, so that consecutive seeds
// change every diff word.
func (c *fig4Case) filler() func(seed int) error {
	h := c.src.heap
	l := c.block.Layout
	base := c.block.Addr
	long := strings.Repeat("x", 240)
	return func(seed int) error {
		for e := 0; e < c.block.Count; e++ {
			for _, st := range l.Walk {
				for i := 0; i < st.Count; i++ {
					a := base + mem.Addr(e*l.Size+st.ByteOff+i*st.ByteStride)
					u := e*l.PrimCount + st.PrimOff + i
					var err error
					switch st.Kind {
					case types.KindChar:
						err = h.WriteU8(a, byte(u+seed))
					case types.KindInt16:
						err = h.WriteI16(a, int16(u+seed))
					case types.KindInt32:
						err = h.WriteI32(a, int32(u*2+seed+1))
					case types.KindInt64:
						err = h.WriteI64(a, int64(u)*3+int64(seed)+1)
					case types.KindFloat32:
						err = h.WriteF32(a, float32(u)+float32(seed)+0.5)
					case types.KindFloat64:
						err = h.WriteF64(a, float64(u)*1.5+float64(seed)+0.25)
					case types.KindString:
						if st.Cap >= 64 {
							err = h.WriteCString(a, st.Cap, fmt.Sprintf("%s-%d-%d", long, u, seed))
						} else {
							err = h.WriteCString(a, st.Cap, fmt.Sprintf("%c%c", 'a'+byte(seed%26), 'a'+byte(u%26)))
						}
					case types.KindPointer:
						// Alternate targets so the cell changes.
						t := (u + seed) % (c.spec.Count + 1)
						err = h.WritePtr(a, c.targets.Addr+mem.Addr(4*t))
					}
					if err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

func (c *fig4Case) measure(iters int) (Fig4Row, error) {
	row := Fig4Row{Name: c.spec.Name, Bytes: c.block.Size()}

	// RPC XDR baseline.
	codec, err := xdr.NewCodec(c.src.heap)
	if err != nil {
		return row, err
	}
	start := time.Now()
	var enc []byte
	for i := 0; i < iters; i++ {
		enc, err = codec.MarshalBlock(c.block)
		if err != nil {
			return row, err
		}
	}
	row.RPCXDR = time.Since(start) / time.Duration(iters)
	_ = enc

	// Collect block (no-diff mode).
	var blockDiff *wire.SegmentDiff
	start = time.Now()
	for i := 0; i < iters; i++ {
		blockDiff, err = diff.CollectSegment(c.src.seg, diff.CollectOptions{
			Version: 2, NoDiff: true, Swizzle: c.src.swizzler(),
		})
		if err != nil {
			return row, err
		}
	}
	row.CollectBlock = time.Since(start) / time.Duration(iters)
	row.WireBytes = blockDiff.WireSize()

	// Collect diff: per iteration, re-protect and modify everything.
	var diffDiff *wire.SegmentDiff
	var total time.Duration
	for i := 0; i < iters; i++ {
		c.src.seg.WriteProtect()
		if err := c.fill(i + 1); err != nil {
			return row, err
		}
		start = time.Now()
		diffDiff, err = diff.CollectSegment(c.src.seg, diff.CollectOptions{
			Version: 2, Swizzle: c.src.swizzler(),
		})
		total += time.Since(start)
		if err != nil {
			return row, err
		}
		c.src.seg.DropTwins()
		c.src.seg.Unprotect()
	}
	row.CollectDiff = total / time.Duration(iters)

	// Apply block and apply diff on the destination machine.
	apply := func(d *wire.SegmentDiff) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := diff.ApplySegment(c.dst.seg, d, diff.ApplyOptions{
				Resolve:   c.dst.resolver(),
				LayoutFor: c.dst.layoutFor,
			}); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	if row.ApplyBlock, err = apply(blockDiff); err != nil {
		return row, err
	}
	if row.ApplyDiff, err = apply(diffDiff); err != nil {
		return row, err
	}
	return row, nil
}
