// Package bench reproduces every figure of the paper's evaluation
// (Section 4): the translation-cost comparison against RPC/XDR
// (Figure 4), diff management cost versus modification granularity
// (Figure 5), pointer swizzling cost (Figure 6), and the datamining
// bandwidth experiment (Figure 7). cmd/iwfigures prints the rows;
// the repository-root bench_test.go exposes the same code as
// testing.B benchmarks.
package bench

import (
	"fmt"
	"strconv"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/swizzle"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// localSeg is a stand-alone client-side segment (heap + metadata +
// descriptor registry) used by the translation microbenchmarks, which
// measure pure library costs without any network.
type localSeg struct {
	heap  *mem.Heap
	seg   *mem.SegMem
	descs map[uint32]*types.Layout
	next  uint32
}

func newLocalSeg(prof *arch.Profile, name string) (*localSeg, error) {
	h, err := mem.NewHeap(prof)
	if err != nil {
		return nil, err
	}
	s, err := h.NewSegment(name)
	if err != nil {
		return nil, err
	}
	return &localSeg{heap: h, seg: s, descs: make(map[uint32]*types.Layout), next: 1}, nil
}

// alloc allocates a block and registers its descriptor.
func (ls *localSeg) alloc(t *types.Type, count int, name string) (*mem.Block, error) {
	l, err := types.Of(t, ls.heap.Profile())
	if err != nil {
		return nil, err
	}
	b, err := ls.seg.Alloc(l, count, name)
	if err != nil {
		return nil, err
	}
	b.DescSerial = ls.next
	ls.descs[ls.next] = l
	ls.next++
	return b, nil
}

// mirror registers the same descriptor serials with layouts for this
// profile, so diffs can flow between two localSegs.
func (ls *localSeg) mirror(other *localSeg) error {
	for serial, l := range other.descs {
		ml, err := types.Of(l.Type, ls.heap.Profile())
		if err != nil {
			return err
		}
		ls.descs[serial] = ml
		if serial >= ls.next {
			ls.next = serial + 1
		}
	}
	return nil
}

func (ls *localSeg) swizzler() diff.SwizzleFunc {
	return swizzle.NewSwizzler(ls.heap).MIPString
}

func (ls *localSeg) resolver() diff.ResolveFunc {
	return func(s string) (mem.Addr, error) {
		m, err := swizzle.Parse(s)
		if err != nil {
			return 0, err
		}
		if m.IsNil() {
			return 0, nil
		}
		seg, ok := ls.heap.Segment(m.Segment)
		if !ok {
			return 0, fmt.Errorf("bench: segment %q not cached", m.Segment)
		}
		return swizzle.AddrOfMIP(seg, m)
	}
}

// attachDescs adds descriptor definitions for every type the diff's
// new blocks reference, as the client library does before pushing a
// diff to a server.
func (ls *localSeg) attachDescs(d *wire.SegmentDiff) error {
	seen := make(map[uint32]bool)
	for _, nb := range d.News {
		if seen[nb.DescSerial] {
			continue
		}
		seen[nb.DescSerial] = true
		l, ok := ls.descs[nb.DescSerial]
		if !ok {
			return fmt.Errorf("bench: unknown descriptor %d", nb.DescSerial)
		}
		b, err := types.Marshal(l.Type)
		if err != nil {
			return err
		}
		d.Descs = append(d.Descs, wire.DescDef{Serial: nb.DescSerial, Bytes: b})
	}
	return nil
}

func (ls *localSeg) layoutFor(serial uint32) (*types.Layout, error) {
	l, ok := ls.descs[serial]
	if !ok {
		return nil, fmt.Errorf("bench: unknown descriptor %d", serial)
	}
	return l, nil
}

// mixTypes builds the nine data mixes of Figure 4. Each returns the
// element type and a count such that the block occupies about 1 MB in
// the measuring profile's local format.
type mixSpec struct {
	Name  string
	Type  *types.Type
	Count int
	// wantPointers marks mixes whose setup wires pointer targets.
	wantPointers bool
}

const megabyte = 1 << 20

func fig4Mixes(prof *arch.Profile) ([]mixSpec, error) {
	str256, err := types.StringOf(256)
	if err != nil {
		return nil, err
	}
	str4, err := types.StringOf(4)
	if err != nil {
		return nil, err
	}
	ptrInt, err := types.PointerTo(types.Int32())
	if err != nil {
		return nil, err
	}
	intStruct, err := structOfN("int_struct", types.Int32(), 32)
	if err != nil {
		return nil, err
	}
	dblStruct, err := structOfN("double_struct", types.Float64(), 32)
	if err != nil {
		return nil, err
	}
	intDouble, err := types.StructOf("int_double",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "d", Type: types.Float64()},
	)
	if err != nil {
		return nil, err
	}
	mix, err := types.StructOf("mix",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "d", Type: types.Float64()},
		types.Field{Name: "s", Type: str256},
		types.Field{Name: "t", Type: str4},
		types.Field{Name: "p", Type: ptrInt},
	)
	if err != nil {
		return nil, err
	}

	specs := []mixSpec{
		{Name: "int_array", Type: types.Int32()},
		{Name: "double_array", Type: types.Float64()},
		{Name: "int_struct", Type: intStruct},
		{Name: "double_struct", Type: dblStruct},
		{Name: "string", Type: str256},
		{Name: "small_string", Type: str4},
		{Name: "pointer", Type: ptrInt, wantPointers: true},
		{Name: "int_double", Type: intDouble},
		{Name: "mix", Type: mix, wantPointers: true},
	}
	for i := range specs {
		l, err := types.Of(specs[i].Type, prof)
		if err != nil {
			return nil, err
		}
		specs[i].Count = megabyte / l.Size
		if specs[i].Count < 1 {
			specs[i].Count = 1
		}
	}
	return specs, nil
}

func structOfN(name string, elem *types.Type, n int) (*types.Type, error) {
	fields := make([]types.Field, n)
	for i := range fields {
		fields[i] = types.Field{Name: "f" + strconv.Itoa(i), Type: elem}
	}
	return types.StructOf(name, fields...)
}
