package bench

import (
	"fmt"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
	"interweave/internal/wire"
	"interweave/internal/xdr"
)

// testing.B adapters: the repository-root bench_test.go drives the
// same workloads as cmd/iwfigures through these hooks, so
// `go test -bench` regenerates each figure's data points with the
// standard benchmark machinery.

// Fig4Ops are the five bars of Figure 4.
var Fig4Ops = []string{"rpc_xdr", "collect_block", "collect_diff", "apply_block", "apply_diff"}

// Fig4MixNames returns the nine mix names.
func Fig4MixNames() []string {
	return []string{"int_array", "double_array", "int_struct", "double_struct",
		"string", "small_string", "pointer", "int_double", "mix"}
}

// BenchFig4 runs one (mix, op) cell of Figure 4 under b.N.
func BenchFig4(b *testing.B, mixName, op string) {
	b.Helper()
	prof := arch.AMD64()
	specs, err := fig4Mixes(prof)
	if err != nil {
		b.Fatal(err)
	}
	var spec *mixSpec
	for i := range specs {
		if specs[i].Name == mixName {
			spec = &specs[i]
		}
	}
	if spec == nil {
		b.Fatalf("unknown mix %q", mixName)
	}
	c, err := setupFig4Case(prof, *spec)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(c.block.Size()))
	switch op {
	case "rpc_xdr":
		codec, err := xdr.NewCodec(c.src.heap)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := codec.MarshalBlock(c.block); err != nil {
				b.Fatal(err)
			}
		}
	case "collect_block":
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := diff.CollectSegment(c.src.seg, diff.CollectOptions{
				Version: 2, NoDiff: true, Swizzle: c.src.swizzler(),
			}); err != nil {
				b.Fatal(err)
			}
		}
	case "collect_diff":
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c.src.seg.WriteProtect()
			if err := c.fill(i + 1); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := diff.CollectSegment(c.src.seg, diff.CollectOptions{
				Version: 2, Swizzle: c.src.swizzler(),
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			c.src.seg.DropTwins()
			c.src.seg.Unprotect()
			b.StartTimer()
		}
	case "apply_block", "apply_diff":
		var d *wire.SegmentDiff
		var err error
		if op == "apply_block" {
			d, err = diff.CollectSegment(c.src.seg, diff.CollectOptions{
				Version: 2, NoDiff: true, Swizzle: c.src.swizzler(),
			})
		} else {
			c.src.seg.WriteProtect()
			if ferr := c.fill(1); ferr != nil {
				b.Fatal(ferr)
			}
			d, err = diff.CollectSegment(c.src.seg, diff.CollectOptions{
				Version: 2, Swizzle: c.src.swizzler(),
			})
			c.src.seg.DropTwins()
			c.src.seg.Unprotect()
		}
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := diff.ApplySegment(c.dst.seg, d, diff.ApplyOptions{
				Resolve:   c.dst.resolver(),
				LayoutFor: c.dst.layoutFor,
			}); err != nil {
				b.Fatal(err)
			}
		}
	default:
		b.Fatalf("unknown op %q", op)
	}
}

// BenchFig5 runs one ratio of Figure 5's client collect-diff curve
// under b.N.
func BenchFig5(b *testing.B, ratio int) {
	b.Helper()
	const words = megabyte / 4
	src, err := newLocalSeg(arch.AMD64(), "b/f5")
	if err != nil {
		b.Fatal(err)
	}
	block, err := src.alloc(types.Int32(), words, "a")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(megabyte)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src.seg.WriteProtect()
		for w := 0; w < words; w += ratio {
			if err := src.heap.WriteI32(block.Addr+mem.Addr(4*w), int32(w+i+1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 2}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		src.seg.DropTwins()
		src.seg.Unprotect()
		b.StartTimer()
	}
}

// BenchFig6 runs one Figure 6 case (collect direction) under b.N.
func BenchFig6(b *testing.B, crossBlocks int) {
	b.Helper()
	row, err := crossCase(crossBlocks, 1)
	_ = row
	if err != nil {
		b.Fatal(err)
	}
	// Re-run with b.N operations for the timing the framework
	// reports.
	ls, err := newLocalSeg(arch.AMD64(), "b/f6")
	if err != nil {
		b.Fatal(err)
	}
	target, err := ls.heap.NewSegment("b/cross")
	if err != nil {
		b.Fatal(err)
	}
	intL, err := types.Of(types.Int32(), ls.heap.Profile())
	if err != nil {
		b.Fatal(err)
	}
	var addrs []mem.Addr
	for i := 0; i < crossBlocks; i++ {
		blk, err := target.Alloc(intL, 4, "")
		if err != nil {
			b.Fatal(err)
		}
		if len(addrs) < 64 {
			addrs = append(addrs, blk.Addr)
		}
	}
	b.ResetTimer()
	if _, err := timeSwizzles(fmt.Sprintf("cross%d", crossBlocks), ls, target, addrs, b.N); err != nil {
		b.Fatal(err)
	}
}

// AblationSplicing compares run splicing on/off at the paper's
// worst-case stride (ratio 2). It returns the run counts for the two
// settings so the benchmark can assert the optimization fired.
func AblationSplicing(b *testing.B, spliceWords int) {
	b.Helper()
	const words = 64 * 1024
	src, err := newLocalSeg(arch.AMD64(), "b/spl")
	if err != nil {
		b.Fatal(err)
	}
	block, err := src.alloc(types.Int32(), words, "a")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src.seg.WriteProtect()
		for w := 0; w < words; w += 2 {
			if err := src.heap.WriteI32(block.Addr+mem.Addr(4*w), int32(w+i+1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := diff.CollectSegment(src.seg, diff.CollectOptions{
			Version: 2, SpliceWords: spliceWords,
		}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		src.seg.DropTwins()
		src.seg.Unprotect()
		b.StartTimer()
	}
}

// AblationPrediction measures diff application over many small blocks
// with last-block prediction on or off.
func AblationPrediction(b *testing.B, noPredict bool) {
	b.Helper()
	src, err := newLocalSeg(arch.AMD64(), "b/pred")
	if err != nil {
		b.Fatal(err)
	}
	dst, err := newLocalSeg(arch.AMD64(), "b/pred")
	if err != nil {
		b.Fatal(err)
	}
	const blocks = 4096
	var addrs []mem.Addr
	for i := 0; i < blocks; i++ {
		blk, err := src.alloc(types.Int32(), 16, "")
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, blk.Addr)
	}
	created, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := dst.mirror(src); err != nil {
		b.Fatal(err)
	}
	if _, err := diff.ApplySegment(dst.seg, created, diff.ApplyOptions{LayoutFor: dst.layoutFor}); err != nil {
		b.Fatal(err)
	}
	// One modified word per block.
	src.seg.WriteProtect()
	for _, a := range addrs {
		if err := src.heap.WriteI32(a, 7); err != nil {
			b.Fatal(err)
		}
	}
	d, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 2})
	if err != nil {
		b.Fatal(err)
	}
	src.seg.DropTwins()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := diff.ApplySegment(dst.seg, d, diff.ApplyOptions{
			LayoutFor: dst.layoutFor, NoPredict: noPredict,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !noPredict && res.PredictHits < blocks/2 {
			b.Fatalf("prediction ineffective: %d hits", res.PredictHits)
		}
	}
}

// AblationIsomorphic measures whole-block translation of a structure
// of 32 consecutive integers with the isomorphic descriptor
// optimization enabled (one collapsed 32-element step) or disabled
// (32 separate steps).
func AblationIsomorphic(b *testing.B, collapsed bool) {
	b.Helper()
	prof := arch.AMD64()
	st, err := structOfN("s32", types.Int32(), 32)
	if err != nil {
		b.Fatal(err)
	}
	var l *types.Layout
	if collapsed {
		l, err = types.Of(st, prof)
	} else {
		l, err = types.OfUncollapsed(st, prof)
	}
	if err != nil {
		b.Fatal(err)
	}
	if collapsed && len(l.Walk) != 1 {
		b.Fatalf("collapsed walk has %d steps", len(l.Walk))
	}
	if !collapsed && len(l.Walk) != 32 {
		b.Fatalf("uncollapsed walk has %d steps", len(l.Walk))
	}
	h, err := mem.NewHeap(prof)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := h.NewSegment("b/iso")
	if err != nil {
		b.Fatal(err)
	}
	blk, err := seg.Alloc(l, megabyte/l.Size, "a")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := diff.CollectSegment(seg, diff.CollectOptions{Version: 1}); err != nil {
		b.Fatal(err)
	}
	_ = blk
	b.SetBytes(int64(l.Size * (megabyte / l.Size)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diff.CollectSegment(seg, diff.CollectOptions{Version: 2, NoDiff: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationDiffCache measures server-side collection for a one-behind
// client with the diff cache enabled or disabled.
func AblationDiffCache(b *testing.B, cacheCap int) {
	b.Helper()
	src, err := newLocalSeg(arch.AMD64(), "b/cache")
	if err != nil {
		b.Fatal(err)
	}
	const words = 64 * 1024
	block, err := src.alloc(types.Int32(), words, "a")
	if err != nil {
		b.Fatal(err)
	}
	created, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := src.attachDescs(created); err != nil {
		b.Fatal(err)
	}
	svr := server.NewSegment("b/cache")
	svr.SetDiffCacheCap(cacheCap)
	if _, _, err := svr.ApplyDiff(created); err != nil {
		b.Fatal(err)
	}
	// One sparse update.
	src.seg.WriteProtect()
	for w := 0; w < words; w += 64 {
		if err := src.heap.WriteI32(block.Addr+mem.Addr(4*w), int32(w+5)); err != nil {
			b.Fatal(err)
		}
	}
	d, err := diff.CollectSegment(src.seg, diff.CollectOptions{Version: 2})
	if err != nil {
		b.Fatal(err)
	}
	src.seg.DropTwins()
	before := svr.Version
	if _, _, err := svr.ApplyDiff(d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := svr.CollectDiff(before)
		if err != nil {
			b.Fatal(err)
		}
		if out == nil {
			b.Fatal("no diff")
		}
	}
	b.ReportMetric(float64(svr.CacheHits()), "cachehits")
}
