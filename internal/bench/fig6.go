package bench

import (
	"fmt"
	"time"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/swizzle"
	"interweave/internal/types"
)

// Fig6Row is one X position of Figure 6: the cost of swizzling
// ("collect") and unswizzling ("apply") a single pointer.
type Fig6Row struct {
	Case string
	// Collect is local pointer -> MIP; Apply is MIP -> local
	// pointer.
	Collect time.Duration
	Apply   time.Duration
}

// Fig6CrossSizes are the cross-segment target-segment block counts of
// the figure's X axis.
func Fig6CrossSizes() []int {
	return []int{1, 16, 64, 256, 1024, 4096, 16384, 65536}
}

// Fig6 measures pointer swizzling cost per pointed-to object type.
func Fig6(opsPerCase int) ([]Fig6Row, error) {
	if opsPerCase < 1 {
		opsPerCase = 1
	}
	var rows []Fig6Row

	// int 1: an intra-segment pointer to the start of an integer
	// block.
	intCase, err := swizzleCase("int1", func(ls *localSeg) ([]mem.Addr, error) {
		b, err := ls.alloc(types.Int32(), 16, "tgt")
		if err != nil {
			return nil, err
		}
		return []mem.Addr{b.Addr}, nil
	}, opsPerCase)
	if err != nil {
		return nil, err
	}
	rows = append(rows, intCase)

	// struct 1: an intra-segment pointer to the middle of a 32-field
	// structure.
	structCase, err := swizzleCase("struct1", func(ls *localSeg) ([]mem.Addr, error) {
		st, err := structOfN("s32", types.Int32(), 32)
		if err != nil {
			return nil, err
		}
		b, err := ls.alloc(st, 1, "tgt")
		if err != nil {
			return nil, err
		}
		return []mem.Addr{b.Addr + 16*4}, nil
	}, opsPerCase)
	if err != nil {
		return nil, err
	}
	rows = append(rows, structCase)

	// cross #n: cross-segment pointers into a segment with n blocks;
	// the metadata-tree searches grow with n.
	for _, n := range Fig6CrossSizes() {
		row, err := crossCase(n, opsPerCase)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// swizzleCase times PtrToMIP/AddrOfMIP over the addresses produced by
// setup.
func swizzleCase(name string, setup func(*localSeg) ([]mem.Addr, error), ops int) (Fig6Row, error) {
	ls, err := newLocalSeg(arch.AMD64(), "b/f6")
	if err != nil {
		return Fig6Row{}, err
	}
	addrs, err := setup(ls)
	if err != nil {
		return Fig6Row{}, err
	}
	return timeSwizzles(name, ls, ls.seg, addrs, ops)
}

func crossCase(n, ops int) (Fig6Row, error) {
	ls, err := newLocalSeg(arch.AMD64(), "b/f6")
	if err != nil {
		return Fig6Row{}, err
	}
	// The pointer lives in b/f6; the targets live in b/cross with n
	// blocks.
	target, err := ls.heap.NewSegment("b/cross")
	if err != nil {
		return Fig6Row{}, err
	}
	intL, err := types.Of(types.Int32(), ls.heap.Profile())
	if err != nil {
		return Fig6Row{}, err
	}
	// Sample up to 256 pointed-to blocks spread across the segment.
	sample := n
	if sample > 256 {
		sample = 256
	}
	addrs := make([]mem.Addr, 0, sample)
	stride := n / sample
	for i := 0; i < n; i++ {
		b, err := target.Alloc(intL, 4, "")
		if err != nil {
			return Fig6Row{}, err
		}
		if i%stride == 0 && len(addrs) < sample {
			addrs = append(addrs, b.Addr+4) // interior of the block
		}
	}
	return timeSwizzles(fmt.Sprintf("cross%d", n), ls, target, addrs, ops)
}

func timeSwizzles(name string, ls *localSeg, seg *mem.SegMem, addrs []mem.Addr, ops int) (Fig6Row, error) {
	row := Fig6Row{Case: name}
	// Collect: local pointer -> MIP.
	mips := make([]swizzle.MIP, len(addrs))
	start := time.Now()
	count := 0
	for count < ops {
		for i, a := range addrs {
			m, err := swizzle.PtrToMIP(ls.heap, a)
			if err != nil {
				return row, err
			}
			mips[i] = m
			count++
			if count >= ops {
				break
			}
		}
	}
	row.Collect = time.Since(start) / time.Duration(count)

	// Apply: MIP -> local pointer (the segment is already cached, as
	// in the steady state the figure measures).
	start = time.Now()
	count = 0
	for count < ops {
		for _, m := range mips {
			if _, err := swizzle.AddrOfMIP(seg, m); err != nil {
				return row, err
			}
			count++
			if count >= ops {
				break
			}
		}
	}
	row.Apply = time.Since(start) / time.Duration(count)
	return row, nil
}
