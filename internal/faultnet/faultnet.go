// Package faultnet is a deterministic fault-injecting network layer
// for chaos testing InterWeave's client/server paths.
//
// The core abstraction is a Schedule: an ordered set of Rules, each
// of which matches traffic by connection index and direction and
// fires an action — added latency, a bandwidth cap, chopped (partial)
// writes, a mid-stream connection reset, a one-way blackhole
// partition, or an accept-time failure. Rules fire at exact byte
// offsets ("reset the 3rd connection after 128 bytes of
// client-to-server traffic"), so a fixed schedule produces an
// identical fault sequence on every run regardless of how the kernel
// chunks reads. For pseudo-random chaos, ChaosRules expands a seed
// into a concrete rule list; the expansion is pure, so the same seed
// always yields the same schedule.
//
// Two transports consume a Schedule:
//
//   - Proxy: a TCP proxy in front of a real server. Clients dial the
//     proxy's address; every accepted connection is paired with a dial
//     to the target and pumped through the schedule in both
//     directions. This is the form the chaos tests use — it exercises
//     real sockets end to end.
//   - WrapListener / WrapConn: in-process wrappers for injecting
//     faults directly on a server's listener (cmd/iwserver's -chaos-*
//     flags) or an individual connection.
//
// Directions are named from the client's point of view: Up is bytes
// flowing client → server, Down is server → client.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Direction distinguishes the two halves of a duplex connection.
type Direction uint8

// Traffic directions, from the client's point of view.
const (
	// Up is client → server traffic.
	Up Direction = iota
	// Down is server → client traffic.
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Op is the action a rule performs when it fires.
type Op uint8

// Rule actions.
const (
	// OpNone matches nothing; the zero value is inert.
	OpNone Op = iota
	// OpReset closes both ends of the connection mid-stream. Bytes
	// before the rule's offset are forwarded; the rest are lost.
	OpReset
	// OpBlackhole silently drops all further bytes in the rule's
	// direction — a one-way partition. The connection stays open.
	OpBlackhole
	// OpDelay adds Delay before each forwarded chunk.
	OpDelay
	// OpRate caps throughput at Rate bytes per second.
	OpRate
	// OpChop splits forwarded data into writes of at most Chop bytes,
	// exercising partial-read handling in framing code.
	OpChop
	// OpAcceptClose accepts the matched connection and immediately
	// closes it — an accept-time failure.
	OpAcceptClose
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpReset:
		return "reset"
	case OpBlackhole:
		return "blackhole"
	case OpDelay:
		return "delay"
	case OpRate:
		return "rate"
	case OpChop:
		return "chop"
	case OpAcceptClose:
		return "accept-close"
	default:
		return "none"
	}
}

// Rule is one entry of a fault schedule.
type Rule struct {
	// Conn is the 1-based index of the connection the rule applies
	// to, in accept order; 0 applies to every connection.
	Conn int
	// Dir is the traffic direction the rule watches. Ignored by
	// OpAcceptClose.
	Dir Direction
	// After is the number of bytes that must have been forwarded in
	// Dir on the matched connection before the rule fires. One-shot
	// ops (OpReset, OpBlackhole) fire exactly at this offset; shaping
	// ops (OpDelay, OpRate, OpChop) apply from this offset on.
	After int64
	// Op is the action.
	Op Op
	// Delay is the per-chunk latency for OpDelay.
	Delay time.Duration
	// Rate is the bytes-per-second cap for OpRate.
	Rate int
	// Chop is the maximum write size for OpChop.
	Chop int
	// When, if non-nil, replaces the After trigger for one-shot ops:
	// the rule fires before forwarding the first chunk for which When
	// returns true (total is the byte count already forwarded in
	// Dir). Conn and Dir matching still apply. This is the
	// programmable hook chaos tests use to kill a connection at a
	// protocol-defined moment, e.g. "as the reply to the armed
	// request passes by".
	When func(conn int, dir Direction, total int64, chunk []byte) bool
}

// Stats counts what a schedule has done so far.
type Stats struct {
	// Conns is the number of connections accepted.
	Conns int
	// Bytes is the count of bytes forwarded per direction.
	Bytes [2]int64
	// Dropped is the count of bytes swallowed per direction by
	// partitions and resets.
	Dropped [2]int64
	// Resets is the number of OpReset firings.
	Resets int
	// AcceptClosed is the number of connections killed at accept.
	AcceptClosed int
}

// Schedule is a shared, mutable fault plan. One Schedule may drive
// any number of connections; per-connection rule state (fired flags,
// byte counters) lives in the connections themselves.
type Schedule struct {
	mu    sync.Mutex
	rules []Rule
	// fired marks one-shot rules that have fired, keyed by rule index
	// and connection index.
	fired map[[2]int]bool
	// part is the dynamic whole-schedule partition switch per
	// direction, independent of any rule.
	part  [2]bool
	conns int
	stats Stats
}

// NewSchedule returns a schedule executing the given rules in order.
func NewSchedule(rules ...Rule) *Schedule {
	return &Schedule{rules: rules, fired: make(map[[2]int]bool)}
}

// AddRule appends a rule to a live schedule.
func (s *Schedule) AddRule(r Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// Partition starts blackholing the given direction on every
// connection until Heal. Both directions may be partitioned.
func (s *Schedule) Partition(d Direction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part[d] = true
}

// Heal ends all dynamic partitions.
func (s *Schedule) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part[0], s.part[1] = false, false
}

// Stats returns a snapshot of the schedule's counters.
func (s *Schedule) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// nextConn assigns the next 1-based connection index.
func (s *Schedule) nextConn() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns++
	s.stats.Conns = s.conns
	return s.conns
}

// acceptFault reports whether connection idx should be killed at
// accept time.
func (s *Schedule) acceptFault(idx int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if r.Op != OpAcceptClose || !matchConn(r, idx) {
			continue
		}
		key := [2]int{i, idx}
		if s.fired[key] {
			continue
		}
		s.fired[key] = true
		s.stats.AcceptClosed++
		return true
	}
	return false
}

func matchConn(r Rule, idx int) bool { return r.Conn == 0 || r.Conn == idx }

// plan is the schedule's verdict on one chunk of traffic.
type plan struct {
	// forward is the prefix of the chunk to deliver.
	forward []byte
	// reset closes both ends after forwarding.
	reset bool
	// delay is slept before forwarding.
	delay time.Duration
	// rate, when positive, paces the forwarded bytes.
	rate int
	// chop, when positive, bounds individual writes.
	chop int
}

// apply decides what happens to one chunk flowing in dir on
// connection idx, with total bytes already forwarded. It advances the
// schedule's one-shot state, so a given byte offset fires a rule
// exactly once per connection.
func (s *Schedule) apply(idx int, dir Direction, total int64, chunk []byte) plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := plan{forward: chunk}
	if s.part[dir] || s.blackholed(idx, dir) {
		s.stats.Dropped[dir] += int64(len(chunk))
		p.forward = nil
		return p
	}
	// One-shot rules: find the earliest firing offset within this
	// chunk.
	cut := -1
	var cutRule int
	for i, r := range s.rules {
		if (r.Op != OpReset && r.Op != OpBlackhole) || !matchConn(r, idx) || r.Dir != dir {
			continue
		}
		key := [2]int{i, idx}
		if s.fired[key] {
			continue
		}
		var at int
		if r.When != nil {
			if !r.When(idx, dir, total, chunk) {
				continue
			}
			at = 0
		} else {
			if total+int64(len(chunk)) <= r.After {
				continue
			}
			at = int(r.After - total)
			if at < 0 {
				at = 0
			}
		}
		if cut < 0 || at < cut {
			cut, cutRule = at, i
		}
	}
	if cut >= 0 {
		r := s.rules[cutRule]
		s.fired[[2]int{cutRule, idx}] = true
		p.forward = chunk[:cut]
		s.stats.Dropped[dir] += int64(len(chunk) - cut)
		if r.Op == OpReset {
			p.reset = true
			s.stats.Resets++
		}
		// OpBlackhole: the fired flag itself swallows future chunks
		// via blackholed.
	}
	// Shaping rules apply to whatever is forwarded.
	for _, r := range s.rules {
		if !matchConn(r, idx) || r.Dir != dir || total < r.After {
			continue
		}
		switch r.Op {
		case OpDelay:
			p.delay += r.Delay
		case OpRate:
			if r.Rate > 0 && (p.rate == 0 || r.Rate < p.rate) {
				p.rate = r.Rate
			}
		case OpChop:
			if r.Chop > 0 && (p.chop == 0 || r.Chop < p.chop) {
				p.chop = r.Chop
			}
		}
	}
	s.stats.Bytes[dir] += int64(len(p.forward))
	return p
}

// blackholed reports whether a fired OpBlackhole rule covers (idx,
// dir). Caller holds s.mu.
func (s *Schedule) blackholed(idx int, dir Direction) bool {
	for i, r := range s.rules {
		if r.Op == OpBlackhole && matchConn(r, idx) && r.Dir == dir && s.fired[[2]int{i, idx}] {
			return true
		}
	}
	return false
}

// ChaosRules expands a seed into a deterministic pseudo-random
// schedule: nResets connection resets at offsets within [1, maxBytes]
// spread over directions and the first conns connections, plus, when
// maxDelay is positive, a per-chunk latency of up to maxDelay on
// every connection. The expansion is pure — equal arguments always
// produce the identical rule list — which is what makes seeded chaos
// runs reproducible.
func ChaosRules(seed int64, conns, nResets int, maxBytes int64, maxDelay time.Duration) []Rule {
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	if maxDelay > 0 {
		rules = append(rules, Rule{Op: OpDelay, Dir: Up, Delay: time.Duration(rng.Int63n(int64(maxDelay)) + 1)})
		rules = append(rules, Rule{Op: OpDelay, Dir: Down, Delay: time.Duration(rng.Int63n(int64(maxDelay)) + 1)})
	}
	for i := 0; i < nResets; i++ {
		dir := Up
		if rng.Intn(2) == 1 {
			dir = Down
		}
		rules = append(rules, Rule{
			Conn:  1 + rng.Intn(conns),
			Dir:   dir,
			After: 1 + rng.Int63n(maxBytes),
			Op:    OpReset,
		})
	}
	return rules
}

// Proxy is a fault-injecting TCP proxy: it accepts client
// connections, dials the target for each, and pumps bytes through
// the schedule in both directions.
type Proxy struct {
	target string
	ln     net.Listener
	sched  *Schedule

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// track registers a live connection so Close can sever it; it refuses
// (closing the conn) when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

// NewProxy listens on a fresh loopback port and forwards to target
// under the schedule. Close the proxy to stop it.
func NewProxy(target string, sched *Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	if sched == nil {
		sched = NewSchedule()
	}
	p := &Proxy{target: target, ln: ln, sched: sched, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Schedule returns the proxy's live schedule, for dynamic control
// (AddRule, Partition, Heal) and stats.
func (p *Proxy) Schedule() *Schedule { return p.sched }

// Close stops accepting and waits for the pumps to drain. Existing
// connections are severed.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.sched.nextConn()
		if p.sched.acceptFault(idx) {
			_ = cc.Close()
			continue
		}
		sc, err := net.Dial("tcp", p.target)
		if err != nil {
			// Target down (e.g. a server restarting): sever the
			// client so it retries.
			_ = cc.Close()
			continue
		}
		if !p.track(cc) || !p.track(sc) {
			_ = cc.Close()
			_ = sc.Close()
			continue
		}
		p.wg.Add(2)
		go p.pump(idx, Up, cc, sc)
		go p.pump(idx, Down, sc, cc)
	}
}

// pump moves bytes from src to dst in direction dir, consulting the
// schedule for every chunk.
func (p *Proxy) pump(idx int, dir Direction, src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = src.Close()
		_ = dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	buf := make([]byte, 16<<10)
	var total int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			pl := p.sched.apply(idx, dir, total, buf[:n])
			if pl.delay > 0 {
				time.Sleep(pl.delay)
			}
			if len(pl.forward) > 0 {
				if werr := shapedWrite(dst, pl.forward, pl.chop, pl.rate); werr != nil {
					return
				}
				total += int64(len(pl.forward))
			}
			if pl.reset {
				return
			}
			// Swallowed bytes (partition) advance nothing: the rule
			// offsets count delivered traffic only, keeping schedules
			// deterministic even when a partition heals.
		}
		if err != nil {
			return
		}
	}
}

// shapedWrite writes b honoring chop (maximum write size) and rate
// (bytes per second).
func shapedWrite(dst net.Conn, b []byte, chop, rate int) error {
	step := len(b)
	if chop > 0 && chop < step {
		step = chop
	}
	for off := 0; off < len(b); off += step {
		end := off + step
		if end > len(b) {
			end = len(b)
		}
		if _, err := dst.Write(b[off:end]); err != nil {
			return err
		}
		if rate > 0 {
			time.Sleep(time.Duration(float64(end-off) / float64(rate) * float64(time.Second)))
		}
	}
	return nil
}

// listener wraps a net.Listener with accept faults and fault-wrapped
// connections.
type listener struct {
	net.Listener
	sched *Schedule
}

// WrapListener returns a listener whose accepted connections pass
// through the schedule. Reads from the peer count as Up traffic and
// writes to the peer as Down — i.e. the wrapped listener sees the
// world the way a server behind it does. Connections matched by an
// OpAcceptClose rule are closed immediately after accept (the caller
// sees the next connection instead).
func WrapListener(ln net.Listener, sched *Schedule) net.Listener {
	if sched == nil {
		sched = NewSchedule()
	}
	return &listener{Listener: ln, sched: sched}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		idx := l.sched.nextConn()
		if l.sched.acceptFault(idx) {
			_ = c.Close()
			continue
		}
		return WrapConn(c, l.sched, idx), nil
	}
}

// Conn is a fault-wrapped connection. Reads consult the schedule's
// Up rules, writes its Down rules.
type Conn struct {
	net.Conn
	sched *Schedule
	idx   int

	mu      sync.Mutex
	rdTotal int64
	wrTotal int64
	dead    bool
}

// WrapConn wraps c under the schedule as connection index idx (pass
// sched.nextConn() if the caller does not track indices itself).
func WrapConn(c net.Conn, sched *Schedule, idx int) *Conn {
	return &Conn{Conn: c, sched: sched, idx: idx}
}

// errReset is returned once a reset rule severed the connection.
var errReset = fmt.Errorf("faultnet: connection reset by schedule")

// Read implements net.Conn. Blackholed inbound data is read from the
// socket and discarded, exactly as a one-way partition would lose it.
func (c *Conn) Read(b []byte) (int, error) {
	for {
		n, err := c.Conn.Read(b)
		if n == 0 {
			return n, err
		}
		c.mu.Lock()
		total, dead := c.rdTotal, c.dead
		c.mu.Unlock()
		if dead {
			return 0, errReset
		}
		pl := c.sched.apply(c.idx, Up, total, b[:n])
		if pl.delay > 0 {
			time.Sleep(pl.delay)
		}
		c.mu.Lock()
		c.rdTotal += int64(len(pl.forward))
		if pl.reset {
			c.dead = true
		}
		c.mu.Unlock()
		if pl.reset {
			_ = c.Conn.Close()
			if len(pl.forward) > 0 {
				return len(pl.forward), nil
			}
			return 0, errReset
		}
		if len(pl.forward) > 0 {
			return len(pl.forward), err
		}
		if err != nil {
			return 0, err
		}
		// Entire chunk swallowed: keep reading.
	}
}

// Write implements net.Conn. Blackholed outbound data reports
// success without transmitting.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	total, dead := c.wrTotal, c.dead
	c.mu.Unlock()
	if dead {
		return 0, errReset
	}
	pl := c.sched.apply(c.idx, Down, total, b)
	if pl.delay > 0 {
		time.Sleep(pl.delay)
	}
	if len(pl.forward) > 0 {
		if err := shapedWrite(c.Conn, pl.forward, pl.chop, pl.rate); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	c.wrTotal += int64(len(pl.forward))
	if pl.reset {
		c.dead = true
	}
	c.mu.Unlock()
	if pl.reset {
		_ = c.Conn.Close()
		return len(pl.forward), errReset
	}
	// A blackholed write lies about success, as the network would.
	return len(b), nil
}
