package faultnet

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back,
// returning its address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestProxyPassThrough(t *testing.T) {
	p, err := NewProxy(echoServer(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("hello, interweave")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q", got)
	}
	st := p.Schedule().Stats()
	if st.Conns != 1 || st.Bytes[Up] != int64(len(msg)) || st.Bytes[Down] != int64(len(msg)) {
		t.Errorf("stats = %+v", st)
	}
}

// TestResetAfterExactBytes verifies the deterministic cut: exactly
// After bytes reach the server, then the connection dies — regardless
// of how the sender chunks its writes. A sink server (no echo)
// observes the forwarded prefix; echoed bytes in flight at reset time
// would be destroyed just as a real RST destroys them.
func TestResetAfterExactBytes(t *testing.T) {
	const cut = 100
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	rcvd := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		rcvd <- b
	}()
	p, err := NewProxy(ln.Addr().String(), NewSchedule(
		Rule{Conn: 1, Dir: Up, After: cut, Op: OpReset},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	// Send 300 bytes in uneven pieces; only the first 100 may arrive.
	payload := bytes.Repeat([]byte{7}, 300)
	for _, n := range []int{33, 33, 33, 201} {
		if _, err := c.Write(payload[:n]); err != nil {
			break // reset may already have severed us
		}
		payload = payload[n:]
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case got := <-rcvd:
		if len(got) != cut {
			t.Fatalf("server saw %d bytes through reset-at-%d proxy", len(got), cut)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the connection close")
	}
	if st := p.Schedule().Stats(); st.Resets != 1 {
		t.Errorf("resets = %d", st.Resets)
	}
}

func TestBlackholeAndHeal(t *testing.T) {
	sched := NewSchedule()
	p, err := NewProxy(echoServer(t), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	sched.Partition(Up)
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := c.Read(buf); n != 0 {
		t.Fatalf("read %d bytes through a partition", n)
	}
	_ = c.SetReadDeadline(time.Time{})

	sched.Heal()
	if _, err := c.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf[:4]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:4]) != "back" {
		t.Fatalf("post-heal echo = %q", buf[:4])
	}
	if st := sched.Stats(); st.Dropped[Up] != 4 {
		t.Errorf("dropped = %+v", st.Dropped)
	}
}

func TestAcceptClose(t *testing.T) {
	p, err := NewProxy(echoServer(t), NewSchedule(
		Rule{Conn: 1, Op: OpAcceptClose},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// First connection dies at accept; nothing ever echoes.
	c1 := dialProxy(t, p)
	_, _ = c1.Write([]byte("x"))
	if b, _ := io.ReadAll(c1); len(b) != 0 {
		t.Fatalf("conn 1 echoed %d bytes", len(b))
	}
	// Second connection works.
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatal(err)
	}
	if st := p.Schedule().Stats(); st.AcceptClosed != 1 {
		t.Errorf("acceptClosed = %d", st.AcceptClosed)
	}
}

func TestDelayAndChop(t *testing.T) {
	const delay = 30 * time.Millisecond
	p, err := NewProxy(echoServer(t), NewSchedule(
		Rule{Dir: Up, Op: OpDelay, Delay: delay},
		Rule{Dir: Down, Op: OpChop, Chop: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	start := time.Now()
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < delay {
		t.Errorf("round trip took %v, want >= %v", el, delay)
	}
	if string(buf) != "abcd" {
		t.Fatalf("chopped echo = %q", buf)
	}
}

// TestWhenTrigger arms a programmable rule mid-stream: traffic passes
// until the switch flips, then the connection resets before the next
// chunk is forwarded.
func TestWhenTrigger(t *testing.T) {
	var arm atomic.Bool
	p, err := NewProxy(echoServer(t), NewSchedule(Rule{
		Dir: Up, Op: OpReset,
		When: func(_ int, _ Direction, _ int64, _ []byte) bool { return arm.Load() },
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("pass")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	_, _ = c.Write([]byte("killed"))
	if b, _ := io.ReadAll(c); len(b) != 0 {
		t.Fatalf("armed chunk echoed %d bytes", len(b))
	}
}

// TestChaosRulesDeterministic is the seeded-schedule contract: one
// seed, one schedule.
func TestChaosRulesDeterministic(t *testing.T) {
	a := ChaosRules(42, 4, 6, 4096, time.Millisecond)
	b := ChaosRules(42, 4, 6, 4096, time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	c := ChaosRules(43, 4, 6, 4096, time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, r := range a {
		if r.Op == OpReset && (r.Conn < 1 || r.Conn > 4 || r.After < 1 || r.After > 4096) {
			t.Fatalf("rule out of range: %+v", r)
		}
	}
}

// TestWrapListener drives the server-side wrapper: accept faults and
// reset rules apply without a proxy hop.
func TestWrapListener(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(
		Rule{Conn: 1, Op: OpAcceptClose},
		Rule{Conn: 2, Dir: Up, After: 2, Op: OpReset},
	)
	ln := WrapListener(raw, sched)
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	addr := raw.Addr().String()

	// Conn 1 is killed at accept.
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, _ = c1.Write([]byte("x"))
	if b, _ := io.ReadAll(c1); len(b) != 0 {
		t.Fatalf("accept-closed conn echoed %d bytes", len(b))
	}

	// Conn 2 resets after 2 inbound bytes.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, _ = c2.Write([]byte("abcdef"))
	if b, _ := io.ReadAll(c2); len(b) > 2 {
		t.Fatalf("reset conn echoed %d bytes, want <= 2", len(b))
	}
}
