// Package cluster implements the membership and placement layer that
// turns a set of InterWeave servers into one sharded, replicated
// service: a consistent-hash ring with virtual nodes maps segment
// names to an owning server, a versioned Membership structure
// (internal/protocol) is gossiped between peers, and a Node tracks the
// local server's view — bumping the epoch on failover and migration so
// stale routing information is self-correcting.
//
// The package deliberately knows nothing about segments' contents:
// internal/server consults a Node for routing decisions and drives
// replication itself, and internal/core uses the same Ring to follow
// redirects and re-route around dead primaries. Cudennec's S-DSM work
// (PAPERS.md) argues data placement dominates distributed shared
// memory behaviour at scale; the ring makes placement deterministic,
// and virtual nodes keep the rebalance delta near the 1/N optimum when
// membership changes.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"interweave/internal/protocol"
)

// DefaultVNodes is the virtual-node count per member when the
// membership does not specify one. 64 points per node keeps the
// placement spread within a few percent of uniform for small clusters
// while the ring stays tiny (N×64 points).
const DefaultVNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	addr string
}

// Ring is an immutable consistent-hash ring built from a Membership.
// Dead members and proxy-role members contribute no points, so
// excluding a failed node moves exactly its arc to the successors and
// a proxy can join gossip without attracting ownership; overrides pin
// individual segments to a named owner regardless of hashing.
type Ring struct {
	points    []point
	live      []string
	overrides map[string]string
}

// hashString is 64-bit FNV-1a followed by a murmur3-style avalanche
// finalizer — stable across processes and architectures, which the
// golden placement test locks in. The finalizer matters: raw FNV of
// strings that differ only in a short suffix ("…/seg/17" vs
// "…/seg/18", "addr#3" vs "addr#4") leaves the high bits untouched,
// which clumps every such name onto one arc of the ring.
func hashString(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// BuildRing constructs the ring a membership view implies.
func BuildRing(ms protocol.Membership) *Ring {
	vnodes := int(ms.VNodes)
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{overrides: make(map[string]string, len(ms.Overrides))}
	for _, m := range ms.Members {
		// Proxies gossip like members but never own segments: like dead
		// nodes they contribute no points, so a proxy joining or leaving
		// the membership moves no data and changes no routing.
		if m.Dead || m.Proxy {
			continue
		}
		r.live = append(r.live, m.Addr)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{
				hash: hashString(m.Addr + "#" + strconv.Itoa(i)),
				addr: m.Addr,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.addr < b.addr
	})
	for _, o := range ms.Overrides {
		r.overrides[o.Seg] = o.Addr
	}
	return r
}

// Live returns the live member addresses, in membership order.
func (r *Ring) Live() []string { return r.live }

// Owner returns the node owning the named segment: the override
// target if one is pinned, otherwise the first virtual node clockwise
// of the segment's hash. Empty when the ring has no live members.
func (r *Ring) Owner(seg string) string {
	if addr, ok := r.overrides[seg]; ok {
		return addr
	}
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(seg)].addr
}

// search returns the index of the first point clockwise of seg's hash.
func (r *Ring) search(seg string) int {
	h := hashString(seg)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Replicas returns up to n distinct live nodes that hold copies of the
// segment besides its owner, in ring (successor) order. Migrated
// segments replicate to their hash-placed successors too, so an
// override never shrinks the replica set.
func (r *Ring) Replicas(seg string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	owner := r.Owner(seg)
	seen := map[string]bool{owner: true}
	var out []string
	start := r.search(seg)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.addr] {
			continue
		}
		seen[p.addr] = true
		out = append(out, p.addr)
	}
	return out
}

// Holders returns the owner followed by its replicas — every node
// expected to hold a copy of the segment.
func (r *Ring) Holders(seg string, replicas int) []string {
	owner := r.Owner(seg)
	if owner == "" {
		return nil
	}
	return append([]string{owner}, r.Replicas(seg, replicas)...)
}
