package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"interweave/internal/protocol"
)

// members builds a membership over n synthetic addresses.
func members(n int) protocol.Membership {
	ms := protocol.Membership{Epoch: 1, Replicas: 1, VNodes: DefaultVNodes}
	for i := 0; i < n; i++ {
		ms.Members = append(ms.Members, protocol.Member{Addr: fmt.Sprintf("10.0.0.%d:7000", i+1)})
	}
	return ms
}

// TestRingGoldenPlacement pins the FNV-1a placement of known segment
// names so a silent hash or sort change (which would strand every
// deployed segment on the wrong owner) fails loudly.
func TestRingGoldenPlacement(t *testing.T) {
	r := BuildRing(members(3))
	golden := map[string]string{
		"10.0.0.1:7000/config":    "10.0.0.1:7000",
		"10.0.0.1:7000/sensor/1":  "10.0.0.1:7000",
		"10.0.0.2:7000/matrix":    "10.0.0.3:7000",
		"10.0.0.3:7000/telemetry": "10.0.0.1:7000",
		"10.0.0.1:7000/a":         "10.0.0.2:7000",
		"10.0.0.1:7000/b":         "10.0.0.3:7000",
	}
	for seg, want := range golden {
		if got := r.Owner(seg); got != want {
			t.Errorf("Owner(%q) = %q, want %q", seg, got, want)
		}
	}
}

// TestRingDeterminism requires two rings built from equal memberships
// to agree everywhere — the property the whole redirect scheme rests
// on.
func TestRingDeterminism(t *testing.T) {
	a, b := BuildRing(members(5)), BuildRing(members(5))
	for i := 0; i < 500; i++ {
		seg := fmt.Sprintf("10.0.0.1:7000/s%d", i)
		if a.Owner(seg) != b.Owner(seg) {
			t.Fatalf("rings disagree on %q: %q vs %q", seg, a.Owner(seg), b.Owner(seg))
		}
		if !reflect.DeepEqual(a.Replicas(seg, 2), b.Replicas(seg, 2)) {
			t.Fatalf("rings disagree on replicas of %q", seg)
		}
	}
}

// TestRingRebalanceDelta bounds segment movement when membership
// changes: adding or removing one of N nodes must move at most ~2/N of
// segments (the consistent-hashing guarantee; 2x slack covers vnode
// variance at small N).
func TestRingRebalanceDelta(t *testing.T) {
	const segs = 2000
	names := make([]string, segs)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.1:7000/seg/%d", i)
	}
	for _, n := range []int{4, 8} {
		before := BuildRing(members(n))

		grown := members(n + 1)
		after := BuildRing(grown)
		moved := 0
		for _, s := range names {
			if before.Owner(s) != after.Owner(s) {
				moved++
			}
		}
		bound := int(float64(segs) * 2 / float64(n+1))
		if moved > bound {
			t.Errorf("join at n=%d moved %d/%d segments, bound %d", n, moved, segs, bound)
		}
		if moved == 0 {
			t.Errorf("join at n=%d moved nothing; ring ignoring new member", n)
		}

		// Killing a node must move exactly its arc: survivors keep
		// every segment they already owned.
		died := members(n)
		died.Members[0].Dead = true
		shrunk := BuildRing(died)
		deadAddr := members(n).Members[0].Addr
		for _, s := range names {
			was, now := before.Owner(s), shrunk.Owner(s)
			if was != deadAddr && was != now {
				t.Fatalf("leave moved %q from surviving %q to %q", s, was, now)
			}
			if now == deadAddr {
				t.Fatalf("%q still placed on dead node", s)
			}
		}
	}
}

// TestRingOverridesAndReplicas covers migration pins and the replica
// successor set.
func TestRingOverridesAndReplicas(t *testing.T) {
	ms := members(4)
	seg := "10.0.0.1:7000/pinned"
	hashOwner := BuildRing(ms).Owner(seg)
	var target string
	for _, m := range ms.Members {
		if m.Addr != hashOwner {
			target = m.Addr
			break
		}
	}
	ms.Overrides = []protocol.Override{{Seg: seg, Addr: target}}
	r := BuildRing(ms)
	if got := r.Owner(seg); got != target {
		t.Errorf("override ignored: Owner = %q, want %q", got, target)
	}

	reps := r.Replicas(seg, 2)
	if len(reps) != 2 {
		t.Fatalf("Replicas returned %v, want 2 nodes", reps)
	}
	seen := map[string]bool{r.Owner(seg): true}
	for _, a := range reps {
		if seen[a] {
			t.Errorf("replica set %v repeats %q (owner %q)", reps, a, r.Owner(seg))
		}
		seen[a] = true
	}

	if h := r.Holders(seg, 2); len(h) != 3 || h[0] != target {
		t.Errorf("Holders = %v, want owner-first set of 3", h)
	}

	// Asking for more replicas than nodes exist saturates cleanly.
	if reps := r.Replicas(seg, 10); len(reps) != 3 {
		t.Errorf("Replicas(.., 10) over 4 nodes = %v, want the other 3", reps)
	}
}

// TestRingEmpty covers the no-live-members edge.
func TestRingEmpty(t *testing.T) {
	ms := members(1)
	ms.Members[0].Dead = true
	r := BuildRing(ms)
	if got := r.Owner("x:1/s"); got != "" {
		t.Errorf("Owner on empty ring = %q", got)
	}
	if reps := r.Replicas("x:1/s", 2); reps != nil {
		t.Errorf("Replicas on empty ring = %v", reps)
	}
	if h := r.Holders("x:1/s", 2); h != nil {
		t.Errorf("Holders on empty ring = %v", h)
	}
}
