package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Options configures a Node.
type Options struct {
	// Self is this node's address as peers and clients dial it.
	Self string
	// Peers lists the other cluster members' addresses. The initial
	// membership is Self+Peers sorted, so every node that is configured
	// with the same set starts from an identical epoch-1 view.
	Peers []string
	// Replicas is R, the number of successors each segment streams to.
	// Zero means no replication.
	Replicas int
	// VNodes is the virtual-node count per member; 0 = DefaultVNodes.
	VNodes int
	// Heartbeat is the peer-probe interval. Zero disables the probe
	// loop; tests drive failure detection manually with MarkDead.
	Heartbeat time.Duration
	// FailureThreshold is how many consecutive probe failures mark a
	// peer dead; 0 = 3.
	FailureThreshold int
	// DialTimeout bounds peer dials and RPCs; 0 = 2s.
	DialTimeout time.Duration
	// MetricsAddr is this node's observability HTTP address (the
	// /metrics + /debug surface), advertised on its member entry so
	// membership gossip teaches fleet tools (tools/iwtop) every
	// node's scrape endpoint. Empty advertises nothing.
	MetricsAddr string
	// Metrics receives iw_cluster_* instruments; nil disables them.
	Metrics *obs.Registry
	// Logf logs membership transitions; nil discards.
	Logf func(format string, args ...any)
	// Dial overrides peer dialing, e.g. to route through faultnet in
	// tests; nil uses net.DialTimeout("tcp", ...).
	Dial func(addr string) (net.Conn, error)
}

// Node is one server's live view of the cluster: the current
// Membership, the Ring it implies, and the gossip machinery that keeps
// peers converging on the highest epoch. All methods are safe for
// concurrent use.
type Node struct {
	opts Options

	mu      sync.Mutex
	ms      protocol.Membership
	ring    *Ring
	onEpoch func(ms protocol.Membership)
	fails   map[string]int
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup

	m *nodeMetrics
}

// nodeMetrics is the iw_cluster_* instrument set; nil when disabled.
type nodeMetrics struct {
	epoch     *obs.Gauge
	live      *obs.Gauge
	dead      *obs.Gauge
	adoptions *obs.Counter
	merges    *obs.Counter
	revivals  *obs.Counter
	gossipOK  *obs.Counter
	gossipErr *obs.Counter
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		return nil
	}
	return &nodeMetrics{
		epoch:     reg.Gauge("iw_cluster_epoch", "Current membership epoch."),
		live:      reg.Gauge("iw_cluster_members_live", "Live members in the current view."),
		dead:      reg.Gauge("iw_cluster_members_dead", "Members marked dead in the current view."),
		adoptions: reg.Counter("iw_cluster_epoch_adoptions_total", "Higher-epoch membership views adopted from peers."),
		merges:    reg.Counter("iw_cluster_view_merges_total", "Equal-epoch divergent views reconciled by deterministic merge."),
		revivals:  reg.Counter("iw_cluster_revivals_total", "Dead-marked members brought back to live after a successful probe."),
		gossipOK:  reg.Counter("iw_cluster_gossip_total", "Membership pushes delivered to peers.", obs.L("result", "ok")),
		gossipErr: reg.Counter("iw_cluster_gossip_total", "Membership pushes delivered to peers.", obs.L("result", "error")),
	}
}

// NewNode builds a Node from its options. The initial membership is
// epoch 1 over the sorted union of Self and Peers, so identically
// configured nodes agree without any exchange.
func NewNode(opts Options) *Node {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	addrs := append([]string{opts.Self}, opts.Peers...)
	sort.Strings(addrs)
	ms := protocol.Membership{
		Epoch:    1,
		Replicas: uint8(opts.Replicas),
		VNodes:   uint16(opts.VNodes),
	}
	for _, a := range addrs {
		m := protocol.Member{Addr: a}
		if a == opts.Self {
			m.MetricsAddr = opts.MetricsAddr
		}
		ms.Members = append(ms.Members, m)
	}
	n := &Node{
		opts:  opts,
		ms:    ms,
		ring:  BuildRing(ms),
		fails: make(map[string]int),
		done:  make(chan struct{}),
		m:     newNodeMetrics(opts.Metrics),
	}
	n.publishMetricsLocked()
	return n
}

// publishMetricsLocked refreshes the membership gauges; callers hold
// n.mu (or are the constructor).
func (n *Node) publishMetricsLocked() {
	if n.m == nil {
		return
	}
	var live, dead int64
	for _, m := range n.ms.Members {
		if m.Dead {
			dead++
		} else {
			live++
		}
	}
	n.m.epoch.Set(int64(n.ms.Epoch))
	n.m.live.Set(live)
	n.m.dead.Set(dead)
}

// Self returns this node's address.
func (n *Node) Self() string { return n.opts.Self }

// ReplicaCount returns R.
func (n *Node) ReplicaCount() int { return n.opts.Replicas }

// Membership returns a deep copy of the current view.
func (n *Node) Membership() protocol.Membership {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ms.Clone()
}

// Epoch returns the current membership epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ms.Epoch
}

// Ring returns the ring for the current view. The returned Ring is
// immutable; a later epoch produces a new one.
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// Owner returns the node owning seg under the current view.
func (n *Node) Owner(seg string) string { return n.Ring().Owner(seg) }

// IsOwner reports whether this node owns seg under the current view.
func (n *Node) IsOwner(seg string) bool { return n.Owner(seg) == n.opts.Self }

// ReplicasOf returns the replica set for seg under the current view.
func (n *Node) ReplicasOf(seg string) []string {
	return n.Ring().Replicas(seg, n.opts.Replicas)
}

// OnEpochChange registers fn to run (on the mutating goroutine, after
// the new view is installed) whenever the membership epoch advances —
// locally or by adoption. The server hooks promotion catch-up here.
func (n *Node) OnEpochChange(fn func(ms protocol.Membership)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onEpoch = fn
}

// annotateSelfLocked re-stamps this node's metrics-addr advertisement
// onto its own member entry — adopted peer views may predate (or have
// never seen) the advertisement. Mutates ms in place; every caller
// passes a clone or a freshly built view. Callers hold n.mu.
func (n *Node) annotateSelfLocked(ms *protocol.Membership) {
	if n.opts.MetricsAddr == "" {
		return
	}
	for i := range ms.Members {
		if ms.Members[i].Addr == n.opts.Self {
			ms.Members[i].MetricsAddr = n.opts.MetricsAddr
		}
	}
}

// install replaces the view, rebuilds the ring, refreshes metrics, and
// returns the callback to fire. Callers hold n.mu.
func (n *Node) installLocked(ms protocol.Membership) func(protocol.Membership) {
	n.annotateSelfLocked(&ms)
	n.ms = ms
	n.ring = BuildRing(ms)
	n.publishMetricsLocked()
	n.logf("cluster: epoch %d, %d live", ms.Epoch, len(n.ring.Live()))
	return n.onEpoch
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// AdoptMembership installs ms if its epoch is higher than the current
// view's, reporting whether the local view changed. Equal-epoch views
// with identical content are the common convergence case and change
// nothing; equal-epoch views with *different* content mean two nodes
// bumped concurrently (e.g. a migration committing while a survivor
// marked a third node dead) — those are reconciled by a deterministic
// merge at epoch+1, so every node that sees both halves installs the
// same view and routing re-converges instead of ping-ponging.
func (n *Node) AdoptMembership(ms protocol.Membership) bool {
	n.mu.Lock()
	if ms.Epoch < n.ms.Epoch {
		n.mu.Unlock()
		return false
	}
	if ms.Epoch == n.ms.Epoch {
		if viewsEqual(ms, n.ms) {
			n.mu.Unlock()
			return false
		}
		merged := mergeViews(n.ms, ms)
		fn := n.installLocked(merged)
		n.mu.Unlock()
		if n.m != nil {
			n.m.merges.Inc()
		}
		n.logf("cluster: merged divergent epoch-%d views into epoch %d", ms.Epoch, merged.Epoch)
		if fn != nil {
			fn(merged)
		}
		n.Gossip()
		return true
	}
	cp := ms.Clone()
	fn := n.installLocked(cp)
	n.mu.Unlock()
	if n.m != nil {
		n.m.adoptions.Inc()
	}
	if fn != nil {
		fn(cp)
	}
	return true
}

// memberMeta is the per-address state viewsEqual and mergeViews
// compare and reconcile.
type memberMeta struct {
	dead    bool
	metrics string
	proxy   bool
}

// viewsEqual reports whether two same-epoch views describe the same
// cluster: identical member sets with identical dead marks and
// metrics-addr advertisements, and the same override mapping.
// Override order is irrelevant — it is a map in spirit — so it is
// compared as one. Advertisement differences count as divergence so
// an annotation spreads through the same merge machinery as every
// other membership fact.
func viewsEqual(a, b protocol.Membership) bool {
	if a.Replicas != b.Replicas || a.VNodes != b.VNodes ||
		len(a.Members) != len(b.Members) || len(a.Overrides) != len(b.Overrides) {
		return false
	}
	meta := make(map[string]memberMeta, len(a.Members))
	for _, m := range a.Members {
		meta[m.Addr] = memberMeta{dead: m.Dead, metrics: m.MetricsAddr, proxy: m.Proxy}
	}
	for _, m := range b.Members {
		mm, ok := meta[m.Addr]
		if !ok || mm.dead != m.Dead || mm.metrics != m.MetricsAddr || mm.proxy != m.Proxy {
			return false
		}
	}
	ov := make(map[string]string, len(a.Overrides))
	for _, o := range a.Overrides {
		ov[o.Seg] = o.Addr
	}
	for _, o := range b.Overrides {
		if ov[o.Seg] != o.Addr {
			return false
		}
	}
	return true
}

// mergeViews reconciles two divergent same-epoch views into one
// deterministic successor: the member union with dead marks OR'd and
// metrics-addr advertisements kept (non-empty wins; two different
// non-empty advertisements break ties by the lower string), the
// override union with same-segment conflicts broken by the lower
// address, and the epoch bumped past both. Merging (a,b) and (b,a)
// yield the same view, so concurrent mergers converge without another
// round.
func mergeViews(a, b protocol.Membership) protocol.Membership {
	out := protocol.Membership{
		Epoch:    a.Epoch + 1,
		Replicas: a.Replicas,
		VNodes:   a.VNodes,
	}
	meta := make(map[string]memberMeta)
	for _, m := range a.Members {
		meta[m.Addr] = memberMeta{dead: m.Dead, metrics: m.MetricsAddr, proxy: m.Proxy}
	}
	for _, m := range b.Members {
		mm := meta[m.Addr]
		mm.dead = mm.dead || m.Dead
		// The proxy role is a property of the node, not of either view:
		// whichever half knows it wins, so a merge never demotes a proxy
		// into a placement-eligible server.
		mm.proxy = mm.proxy || m.Proxy
		if m.MetricsAddr != "" && (mm.metrics == "" || m.MetricsAddr < mm.metrics) {
			mm.metrics = m.MetricsAddr
		}
		meta[m.Addr] = mm
	}
	addrs := make([]string, 0, len(meta))
	for addr := range meta {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		out.Members = append(out.Members, protocol.Member{
			Addr:        addr,
			Dead:        meta[addr].dead,
			MetricsAddr: meta[addr].metrics,
			Proxy:       meta[addr].proxy,
		})
	}
	ov := make(map[string]string)
	for _, o := range a.Overrides {
		ov[o.Seg] = o.Addr
	}
	for _, o := range b.Overrides {
		if prev, ok := ov[o.Seg]; !ok || o.Addr < prev {
			ov[o.Seg] = o.Addr
		}
	}
	segs := make([]string, 0, len(ov))
	for seg := range ov {
		segs = append(segs, seg)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		out.Overrides = append(out.Overrides, protocol.Override{Seg: seg, Addr: ov[seg]})
	}
	return out
}

// MarkDead excludes addr from placement: it marks the member dead,
// bumps the epoch, and gossips the new view to the surviving peers.
// No-op if addr is unknown or already dead.
func (n *Node) MarkDead(addr string) bool {
	n.mu.Lock()
	idx := -1
	for i, m := range n.ms.Members {
		if m.Addr == addr && !m.Dead {
			idx = i
			break
		}
	}
	if idx < 0 {
		n.mu.Unlock()
		return false
	}
	cp := n.ms.Clone()
	cp.Members[idx].Dead = true
	cp.Epoch++
	delete(n.fails, addr)
	fn := n.installLocked(cp)
	n.mu.Unlock()
	n.logf("cluster: marked %s dead at epoch %d", addr, cp.Epoch)
	if fn != nil {
		fn(cp)
	}
	n.Gossip()
	return true
}

// Revive returns a dead-marked member to placement: it clears the Dead
// flag, bumps the epoch, and gossips the new view. No-op if addr is
// unknown or already live. Callers must first ensure the member has
// adopted a view in which it is dead (see probePeers), so it has
// demoted any stale segment state before placement hands ownership
// back to it.
func (n *Node) Revive(addr string) bool {
	n.mu.Lock()
	idx := -1
	for i, m := range n.ms.Members {
		if m.Addr == addr && m.Dead {
			idx = i
			break
		}
	}
	if idx < 0 {
		n.mu.Unlock()
		return false
	}
	cp := n.ms.Clone()
	cp.Members[idx].Dead = false
	cp.Epoch++
	delete(n.fails, addr)
	fn := n.installLocked(cp)
	n.mu.Unlock()
	if n.m != nil {
		n.m.revivals.Inc()
	}
	n.logf("cluster: revived %s at epoch %d", addr, cp.Epoch)
	if fn != nil {
		fn(cp)
	}
	n.Gossip()
	return true
}

// SetOverride pins seg's ownership to addr (the Migrate commit step),
// bumps the epoch, and gossips the new view.
func (n *Node) SetOverride(seg, addr string) {
	n.mu.Lock()
	cp := n.ms.Clone()
	found := false
	for i := range cp.Overrides {
		if cp.Overrides[i].Seg == seg {
			cp.Overrides[i].Addr = addr
			found = true
			break
		}
	}
	if !found {
		cp.Overrides = append(cp.Overrides, protocol.Override{Seg: seg, Addr: addr})
	}
	cp.Epoch++
	fn := n.installLocked(cp)
	n.mu.Unlock()
	if fn != nil {
		fn(cp)
	}
	n.Gossip()
}

// Gossip pushes the current view to every live peer. Push failures are
// counted but not retried — the heartbeat and redirect paths both
// carry the membership, so convergence has several channels.
func (n *Node) Gossip() {
	ms := n.Membership()
	for _, addr := range ms.Live() {
		if addr == n.opts.Self {
			continue
		}
		if err := n.pushRing(addr, ms); err != nil {
			if n.m != nil {
				n.m.gossipErr.Inc()
			}
			n.logf("cluster: gossip to %s: %v", addr, err)
			continue
		}
		if n.m != nil {
			n.m.gossipOK.Inc()
		}
	}
}

// Start launches the heartbeat loop when Options.Heartbeat is set.
func (n *Node) Start() {
	if n.opts.Heartbeat <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-n.done:
				return
			case <-t.C:
				n.probePeers()
			}
		}
	}()
}

// probePeers RingGets every peer, live and dead: live peers feed the
// failure detector (FailureThreshold consecutive failures marks them
// dead) and may teach us a newer view; a dead-marked peer that answers
// is a rejoin candidate. Rejoin is a two-step handshake — first push
// it the current view, in which it is still dead, so it adopts that
// view and demotes any stale segment state it holds; only then Revive
// it, handing ownership back with a fresh epoch. A restarted node can
// therefore never serve pre-failover state as authoritative.
func (n *Node) probePeers() {
	ms := n.Membership()
	for _, m := range ms.Members {
		addr := m.Addr
		if addr == n.opts.Self {
			continue
		}
		if m.Dead {
			if _, err := n.fetchRing(addr); err != nil {
				continue
			}
			if err := n.pushRing(addr, n.Membership()); err != nil {
				continue
			}
			n.Revive(addr)
			continue
		}
		reply, err := n.fetchRing(addr)
		n.mu.Lock()
		if err != nil {
			n.fails[addr]++
			failed := n.fails[addr] >= n.opts.FailureThreshold
			n.mu.Unlock()
			if failed {
				n.MarkDead(addr)
			}
			continue
		}
		n.fails[addr] = 0
		n.mu.Unlock()
		n.AdoptMembership(reply)
	}
}

// Close stops the heartbeat loop.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
}

// dial opens a peer connection.
func (n *Node) dial(addr string) (net.Conn, error) {
	if n.opts.Dial != nil {
		return n.opts.Dial(addr)
	}
	return net.DialTimeout("tcp", addr, n.opts.DialTimeout)
}

// Call performs one synchronous RPC against a peer: dial, one frame
// out, one frame in. Cluster control traffic is rare enough that
// per-call connections keep the failure model trivial — any wedged
// peer costs one DialTimeout, never a pooled connection.
func (n *Node) Call(addr string, req protocol.Message) (protocol.Message, error) {
	conn, err := n.dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.opts.DialTimeout))
	if err := protocol.WriteFrame(conn, 1, req); err != nil {
		return nil, err
	}
	_, reply, err := protocol.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if e, ok := reply.(*protocol.ErrorReply); ok {
		return nil, fmt.Errorf("cluster: peer %s: %w", addr, e)
	}
	return reply, nil
}

// pushRing offers ms to addr.
func (n *Node) pushRing(addr string, ms protocol.Membership) error {
	_, err := n.Call(addr, &protocol.RingPush{Ms: ms})
	return err
}

// fetchRing asks addr for its view.
func (n *Node) fetchRing(addr string) (protocol.Membership, error) {
	reply, err := n.Call(addr, &protocol.RingGet{HaveEpoch: n.Epoch()})
	if err != nil {
		return protocol.Membership{}, err
	}
	rr, ok := reply.(*protocol.RingReply)
	if !ok {
		return protocol.Membership{}, fmt.Errorf("cluster: peer %s answered RingGet with %T", addr, reply)
	}
	return rr.Ms, nil
}
