package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// newTestNode builds a node with dialing stubbed out so gossip
// attempts fail instantly instead of hitting the network.
func newTestNode(self string, peers ...string) *Node {
	return NewNode(Options{
		Self:     self,
		Peers:    peers,
		Replicas: 1,
		Dial: func(addr string) (net.Conn, error) {
			return nil, net.ErrClosed
		},
	})
}

// TestNodeInitialAgreement: identically configured nodes start from
// identical views regardless of peer-list order.
func TestNodeInitialAgreement(t *testing.T) {
	a := newTestNode("h1:1", "h2:1", "h3:1")
	b := newTestNode("h2:1", "h3:1", "h1:1")
	defer a.Close()
	defer b.Close()
	am, bm := a.Membership(), b.Membership()
	if am.Epoch != 1 || bm.Epoch != 1 {
		t.Fatalf("initial epochs %d, %d", am.Epoch, bm.Epoch)
	}
	for i := range am.Members {
		if am.Members[i] != bm.Members[i] {
			t.Fatalf("views differ at %d: %+v vs %+v", i, am.Members[i], bm.Members[i])
		}
	}
	if a.Owner("h1:1/s") != b.Owner("h1:1/s") {
		t.Error("nodes disagree on placement from identical config")
	}
}

// TestNodeMarkDead: a death bumps the epoch, removes the node from
// placement, and fires the change callback.
func TestNodeMarkDead(t *testing.T) {
	n := newTestNode("h1:1", "h2:1", "h3:1")
	defer n.Close()

	var mu sync.Mutex
	var epochs []uint64
	n.OnEpochChange(func(ms protocol.Membership) {
		mu.Lock()
		epochs = append(epochs, ms.Epoch)
		mu.Unlock()
	})

	if !n.MarkDead("h2:1") {
		t.Fatal("MarkDead(h2:1) = false")
	}
	if n.MarkDead("h2:1") {
		t.Error("second MarkDead on same node should be a no-op")
	}
	if n.MarkDead("nope:1") {
		t.Error("MarkDead on unknown node should be a no-op")
	}
	if e := n.Epoch(); e != 2 {
		t.Errorf("epoch after one death = %d, want 2", e)
	}
	for _, addr := range n.Ring().Live() {
		if addr == "h2:1" {
			t.Error("dead node still on ring")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 1 || epochs[0] != 2 {
		t.Errorf("callback epochs = %v, want [2]", epochs)
	}
}

// TestNodeAdoptMembership: only strictly newer epochs are adopted.
func TestNodeAdoptMembership(t *testing.T) {
	n := newTestNode("h1:1", "h2:1")
	defer n.Close()
	stale := n.Membership() // epoch 1
	if n.AdoptMembership(stale) {
		t.Error("adopted equal-epoch view")
	}
	newer := n.Membership()
	newer.Epoch = 5
	newer.Members[0].Dead = true
	if !n.AdoptMembership(newer) {
		t.Fatal("rejected newer view")
	}
	if n.Epoch() != 5 {
		t.Errorf("epoch = %d, want 5", n.Epoch())
	}
	// The node keeps its own deep copy.
	newer.Members[1].Dead = true
	if n.Membership().Members[1].Dead {
		t.Error("adopted view shares caller's backing array")
	}
}

// TestNodeSetOverride: migration pins change placement and bump the
// epoch.
func TestNodeSetOverride(t *testing.T) {
	n := newTestNode("h1:1", "h2:1")
	defer n.Close()
	seg := "h1:1/moved"
	n.SetOverride(seg, "h2:1")
	if got := n.Owner(seg); got != "h2:1" {
		t.Errorf("Owner after override = %q", got)
	}
	if n.Epoch() != 2 {
		t.Errorf("epoch after override = %d, want 2", n.Epoch())
	}
	// Re-pointing the same segment updates in place.
	n.SetOverride(seg, "h1:1")
	if got := n.Owner(seg); got != "h1:1" {
		t.Errorf("Owner after second override = %q", got)
	}
	if len(n.Membership().Overrides) != 1 {
		t.Error("override list grew on update")
	}
}

// TestNodeRPCPlumbing exercises Call/fetchRing/pushRing against a
// minimal in-process peer speaking the cluster frames.
func TestNodeRPCPlumbing(t *testing.T) {
	peerView := protocol.Membership{
		Epoch:   9,
		Members: []protocol.Member{{Addr: "h1:1"}, {Addr: "h2:1", Dead: true}},
	}
	var gotPush protocol.Membership
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_, msg, err := protocol.ReadFrame(conn)
			if err != nil {
				conn.Close()
				continue
			}
			switch m := msg.(type) {
			case *protocol.RingGet:
				_ = protocol.WriteFrame(conn, 1, &protocol.RingReply{Ms: peerView})
			case *protocol.RingPush:
				gotPush = m.Ms
				_ = protocol.WriteFrame(conn, 1, &protocol.Ack{})
			default:
				_ = protocol.WriteFrame(conn, 1, &protocol.ErrorReply{Code: protocol.CodeBadRequest, Text: "?"})
			}
			conn.Close()
		}
	}()

	reg := obs.NewRegistry()
	n := NewNode(Options{
		Self:        "self:1",
		Peers:       []string{ln.Addr().String()},
		Metrics:     reg,
		DialTimeout: time.Second,
	})
	defer n.Close()

	ms, err := n.fetchRing(ln.Addr().String())
	if err != nil {
		t.Fatalf("fetchRing: %v", err)
	}
	if ms.Epoch != 9 {
		t.Errorf("fetched epoch %d, want 9", ms.Epoch)
	}
	if !n.AdoptMembership(ms) {
		t.Error("fetched view not adopted")
	}

	if err := n.pushRing(ln.Addr().String(), n.Membership()); err != nil {
		t.Fatalf("pushRing: %v", err)
	}
	if gotPush.Epoch != 9 {
		t.Errorf("peer received epoch %d, want 9", gotPush.Epoch)
	}

	// An ErrorReply from the peer surfaces as an error.
	if _, err := n.Call(ln.Addr().String(), &protocol.Migrate{Seg: "x", Target: "y"}); err == nil {
		t.Error("Call returning ErrorReply did not error")
	}

	snap := reg.Snapshot()
	if snap.Gauges["iw_cluster_epoch"] != 9 {
		t.Errorf("iw_cluster_epoch = %v, want 9", snap.Gauges["iw_cluster_epoch"])
	}
	if snap.Gauges["iw_cluster_members_dead"] != 1 {
		t.Errorf("iw_cluster_members_dead = %v, want 1", snap.Gauges["iw_cluster_members_dead"])
	}
	ln.Close()
	<-done
}

// TestNodeHeartbeatMarksDead: the probe loop declares an unreachable
// peer dead after FailureThreshold consecutive failures.
func TestNodeHeartbeatMarksDead(t *testing.T) {
	n := NewNode(Options{
		Self:             "self:1",
		Peers:            []string{"gone:1"},
		Heartbeat:        5 * time.Millisecond,
		FailureThreshold: 2,
		DialTimeout:      50 * time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			return nil, net.ErrClosed
		},
	})
	n.Start()
	defer n.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.Epoch() > 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n.Epoch() == 1 {
		t.Fatal("heartbeat never marked the unreachable peer dead")
	}
	for _, addr := range n.Ring().Live() {
		if addr == "gone:1" {
			t.Error("unreachable peer still live")
		}
	}
}
