package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// newTestNode builds a node with dialing stubbed out so gossip
// attempts fail instantly instead of hitting the network.
func newTestNode(self string, peers ...string) *Node {
	return NewNode(Options{
		Self:     self,
		Peers:    peers,
		Replicas: 1,
		Dial: func(addr string) (net.Conn, error) {
			return nil, net.ErrClosed
		},
	})
}

// TestNodeInitialAgreement: identically configured nodes start from
// identical views regardless of peer-list order.
func TestNodeInitialAgreement(t *testing.T) {
	a := newTestNode("h1:1", "h2:1", "h3:1")
	b := newTestNode("h2:1", "h3:1", "h1:1")
	defer a.Close()
	defer b.Close()
	am, bm := a.Membership(), b.Membership()
	if am.Epoch != 1 || bm.Epoch != 1 {
		t.Fatalf("initial epochs %d, %d", am.Epoch, bm.Epoch)
	}
	for i := range am.Members {
		if am.Members[i] != bm.Members[i] {
			t.Fatalf("views differ at %d: %+v vs %+v", i, am.Members[i], bm.Members[i])
		}
	}
	if a.Owner("h1:1/s") != b.Owner("h1:1/s") {
		t.Error("nodes disagree on placement from identical config")
	}
}

// TestNodeMarkDead: a death bumps the epoch, removes the node from
// placement, and fires the change callback.
func TestNodeMarkDead(t *testing.T) {
	n := newTestNode("h1:1", "h2:1", "h3:1")
	defer n.Close()

	var mu sync.Mutex
	var epochs []uint64
	n.OnEpochChange(func(ms protocol.Membership) {
		mu.Lock()
		epochs = append(epochs, ms.Epoch)
		mu.Unlock()
	})

	if !n.MarkDead("h2:1") {
		t.Fatal("MarkDead(h2:1) = false")
	}
	if n.MarkDead("h2:1") {
		t.Error("second MarkDead on same node should be a no-op")
	}
	if n.MarkDead("nope:1") {
		t.Error("MarkDead on unknown node should be a no-op")
	}
	if e := n.Epoch(); e != 2 {
		t.Errorf("epoch after one death = %d, want 2", e)
	}
	for _, addr := range n.Ring().Live() {
		if addr == "h2:1" {
			t.Error("dead node still on ring")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 1 || epochs[0] != 2 {
		t.Errorf("callback epochs = %v, want [2]", epochs)
	}
}

// TestNodeAdoptMembership: only strictly newer epochs are adopted.
func TestNodeAdoptMembership(t *testing.T) {
	n := newTestNode("h1:1", "h2:1")
	defer n.Close()
	stale := n.Membership() // epoch 1
	if n.AdoptMembership(stale) {
		t.Error("adopted equal-epoch view")
	}
	newer := n.Membership()
	newer.Epoch = 5
	newer.Members[0].Dead = true
	if !n.AdoptMembership(newer) {
		t.Fatal("rejected newer view")
	}
	if n.Epoch() != 5 {
		t.Errorf("epoch = %d, want 5", n.Epoch())
	}
	// The node keeps its own deep copy.
	newer.Members[1].Dead = true
	if n.Membership().Members[1].Dead {
		t.Error("adopted view shares caller's backing array")
	}
}

// TestNodeMetricsAddrAdvertisement: a node stamps its own metrics
// address onto every view it installs, adopted peer views included,
// and the equal-epoch merge machinery spreads advertisements without
// losing either side's.
func TestNodeMetricsAddrAdvertisement(t *testing.T) {
	failDial := func(addr string) (net.Conn, error) { return nil, net.ErrClosed }
	a := NewNode(Options{Self: "h1:1", Peers: []string{"h2:1"}, Replicas: 1,
		MetricsAddr: "h1:9", Dial: failDial})
	b := NewNode(Options{Self: "h2:1", Peers: []string{"h1:1"}, Replicas: 1,
		MetricsAddr: "h2:9", Dial: failDial})
	defer a.Close()
	defer b.Close()

	find := func(ms protocol.Membership, addr string) protocol.Member {
		for _, m := range ms.Members {
			if m.Addr == addr {
				return m
			}
		}
		t.Fatalf("member %s missing", addr)
		return protocol.Member{}
	}
	if got := find(a.Membership(), "h1:1").MetricsAddr; got != "h1:9" {
		t.Fatalf("initial self advertisement = %q", got)
	}

	// a learns b's view (equal epoch, divergent advertisements):
	// deterministic merge keeps both and bumps the epoch.
	if !a.AdoptMembership(b.Membership()) {
		t.Fatal("divergent equal-epoch view not merged")
	}
	am := a.Membership()
	if am.Epoch != 2 {
		t.Fatalf("merge epoch = %d, want 2", am.Epoch)
	}
	if find(am, "h1:1").MetricsAddr != "h1:9" || find(am, "h2:1").MetricsAddr != "h2:9" {
		t.Fatalf("merge lost advertisements: %+v", am.Members)
	}

	// b adopts the merged higher-epoch view and re-stamps itself; the
	// two nodes now agree.
	if !b.AdoptMembership(am) {
		t.Fatal("higher-epoch merged view not adopted")
	}
	bm := b.Membership()
	if !viewsEqual(am, bm) {
		t.Fatalf("views diverge after adoption:\n a %+v\n b %+v", am.Members, bm.Members)
	}

	// A node with no metrics address must not invent one, and a
	// re-adoption must not strip a peer's advertisement.
	if got := find(newTestNode("h9:1", "h1:1").Membership(), "h9:1").MetricsAddr; got != "" {
		t.Fatalf("unadvertised node exported %q", got)
	}
}

// TestNodeSetOverride: migration pins change placement and bump the
// epoch.
func TestNodeSetOverride(t *testing.T) {
	n := newTestNode("h1:1", "h2:1")
	defer n.Close()
	seg := "h1:1/moved"
	n.SetOverride(seg, "h2:1")
	if got := n.Owner(seg); got != "h2:1" {
		t.Errorf("Owner after override = %q", got)
	}
	if n.Epoch() != 2 {
		t.Errorf("epoch after override = %d, want 2", n.Epoch())
	}
	// Re-pointing the same segment updates in place.
	n.SetOverride(seg, "h1:1")
	if got := n.Owner(seg); got != "h1:1" {
		t.Errorf("Owner after second override = %q", got)
	}
	if len(n.Membership().Overrides) != 1 {
		t.Error("override list grew on update")
	}
}

// TestNodeRPCPlumbing exercises Call/fetchRing/pushRing against a
// minimal in-process peer speaking the cluster frames.
func TestNodeRPCPlumbing(t *testing.T) {
	peerView := protocol.Membership{
		Epoch:   9,
		Members: []protocol.Member{{Addr: "h1:1"}, {Addr: "h2:1", Dead: true}},
	}
	var gotPush protocol.Membership
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_, msg, err := protocol.ReadFrame(conn)
			if err != nil {
				conn.Close()
				continue
			}
			switch m := msg.(type) {
			case *protocol.RingGet:
				_ = protocol.WriteFrame(conn, 1, &protocol.RingReply{Ms: peerView})
			case *protocol.RingPush:
				gotPush = m.Ms
				_ = protocol.WriteFrame(conn, 1, &protocol.Ack{})
			default:
				_ = protocol.WriteFrame(conn, 1, &protocol.ErrorReply{Code: protocol.CodeBadRequest, Text: "?"})
			}
			conn.Close()
		}
	}()

	reg := obs.NewRegistry()
	n := NewNode(Options{
		Self:        "self:1",
		Peers:       []string{ln.Addr().String()},
		Metrics:     reg,
		DialTimeout: time.Second,
	})
	defer n.Close()

	ms, err := n.fetchRing(ln.Addr().String())
	if err != nil {
		t.Fatalf("fetchRing: %v", err)
	}
	if ms.Epoch != 9 {
		t.Errorf("fetched epoch %d, want 9", ms.Epoch)
	}
	if !n.AdoptMembership(ms) {
		t.Error("fetched view not adopted")
	}

	if err := n.pushRing(ln.Addr().String(), n.Membership()); err != nil {
		t.Fatalf("pushRing: %v", err)
	}
	if gotPush.Epoch != 9 {
		t.Errorf("peer received epoch %d, want 9", gotPush.Epoch)
	}

	// An ErrorReply from the peer surfaces as an error.
	if _, err := n.Call(ln.Addr().String(), &protocol.Migrate{Seg: "x", Target: "y"}); err == nil {
		t.Error("Call returning ErrorReply did not error")
	}

	snap := reg.Snapshot()
	if snap.Gauges["iw_cluster_epoch"] != 9 {
		t.Errorf("iw_cluster_epoch = %v, want 9", snap.Gauges["iw_cluster_epoch"])
	}
	if snap.Gauges["iw_cluster_members_dead"] != 1 {
		t.Errorf("iw_cluster_members_dead = %v, want 1", snap.Gauges["iw_cluster_members_dead"])
	}
	ln.Close()
	<-done
}

// TestNodeEqualEpochMerge: two nodes that bump the epoch concurrently
// (one marks a death, the other commits a migration) diverge at the
// same epoch; adopting each other's half merges both changes into the
// same deterministic epoch+1 view on each side.
func TestNodeEqualEpochMerge(t *testing.T) {
	a := newTestNode("h1:1", "h2:1", "h3:1")
	b := newTestNode("h2:1", "h3:1", "h1:1")
	defer a.Close()
	defer b.Close()

	a.MarkDead("h3:1")
	b.SetOverride("h1:1/moved", "h2:1")
	av, bv := a.Membership(), b.Membership()
	if av.Epoch != 2 || bv.Epoch != 2 {
		t.Fatalf("divergence setup: epochs %d, %d, want 2, 2", av.Epoch, bv.Epoch)
	}

	if !a.AdoptMembership(bv) {
		t.Fatal("a did not merge b's divergent equal-epoch view")
	}
	if !b.AdoptMembership(av) {
		t.Fatal("b did not merge a's divergent equal-epoch view")
	}

	am, bm := a.Membership(), b.Membership()
	if am.Epoch != 3 || bm.Epoch != 3 {
		t.Errorf("merged epochs %d, %d, want 3, 3", am.Epoch, bm.Epoch)
	}
	if !viewsEqual(am, bm) {
		t.Fatalf("merged views differ:\n a: %+v\n b: %+v", am, bm)
	}
	if a.Owner("h1:1/moved") != "h2:1" || b.Owner("h1:1/moved") != "h2:1" {
		t.Error("override lost in merge")
	}
	for _, addr := range a.Ring().Live() {
		if addr == "h3:1" {
			t.Error("dead mark lost in merge")
		}
	}
	// Re-offering the already-merged content changes nothing more.
	if a.AdoptMembership(bm) {
		t.Error("adopted an equal-epoch identical view")
	}
}

// TestNodeRevive: a dead member returns to placement with an epoch
// bump; revives of live or unknown members are no-ops.
func TestNodeRevive(t *testing.T) {
	n := newTestNode("h1:1", "h2:1", "h3:1")
	defer n.Close()
	if n.Revive("h2:1") {
		t.Error("Revive of a live member should be a no-op")
	}
	n.MarkDead("h2:1")
	if !n.Revive("h2:1") {
		t.Fatal("Revive(h2:1) = false")
	}
	if n.Revive("nope:1") {
		t.Error("Revive of an unknown member should be a no-op")
	}
	if e := n.Epoch(); e != 3 {
		t.Errorf("epoch after death+revival = %d, want 3", e)
	}
	found := false
	for _, addr := range n.Ring().Live() {
		if addr == "h2:1" {
			found = true
		}
	}
	if !found {
		t.Error("revived member not back on the ring")
	}
}

// TestNodeRejoinHandshake: probePeers revives a reachable dead-marked
// member, but only after pushing it the view in which it is still dead
// so the rejoining node demotes before placement trusts it again.
func TestNodeRejoinHandshake(t *testing.T) {
	var mu sync.Mutex
	var pushes []protocol.Membership
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_, msg, err := protocol.ReadFrame(conn)
			if err != nil {
				conn.Close()
				continue
			}
			switch m := msg.(type) {
			case *protocol.RingGet:
				_ = protocol.WriteFrame(conn, 1, &protocol.RingReply{Ms: protocol.Membership{Epoch: 1}})
			case *protocol.RingPush:
				mu.Lock()
				pushes = append(pushes, m.Ms)
				mu.Unlock()
				_ = protocol.WriteFrame(conn, 1, &protocol.Ack{})
			}
			conn.Close()
		}
	}()

	peer := ln.Addr().String()
	n := NewNode(Options{Self: "self:1", Peers: []string{peer}, DialTimeout: time.Second})
	defer n.Close()
	n.MarkDead(peer)
	n.probePeers()

	if e := n.Epoch(); e != 3 {
		t.Errorf("epoch after rejoin = %d, want 3 (death + revival)", e)
	}
	live := false
	for _, addr := range n.Ring().Live() {
		if addr == peer {
			live = true
		}
	}
	if !live {
		t.Fatal("reachable dead member was not revived")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(pushes) == 0 {
		t.Fatal("no membership pushed to the rejoining member")
	}
	first := pushes[0]
	deadInFirst := false
	for _, m := range first.Members {
		if m.Addr == peer && m.Dead {
			deadInFirst = true
		}
	}
	if !deadInFirst {
		t.Errorf("first push must carry the still-dead view; got %+v", first)
	}
}

// TestNodeHeartbeatMarksDead: the probe loop declares an unreachable
// peer dead after FailureThreshold consecutive failures.
func TestNodeHeartbeatMarksDead(t *testing.T) {
	n := NewNode(Options{
		Self:             "self:1",
		Peers:            []string{"gone:1"},
		Heartbeat:        5 * time.Millisecond,
		FailureThreshold: 2,
		DialTimeout:      50 * time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			return nil, net.ErrClosed
		},
	})
	n.Start()
	defer n.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.Epoch() > 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n.Epoch() == 1 {
		t.Fatal("heartbeat never marked the unreachable peer dead")
	}
	for _, addr := range n.Ring().Live() {
		if addr == "gone:1" {
			t.Error("unreachable peer still live")
		}
	}
}
