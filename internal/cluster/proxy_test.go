package cluster

import (
	"testing"

	"interweave/internal/protocol"
)

// TestRingSkipsProxies pins the placement rule for the proxy role: a
// proxy member gossips like anyone else but contributes no ring points
// and is absent from Live(), so a proxy joining or leaving the
// membership moves no data and changes no segment routing.
func TestRingSkipsProxies(t *testing.T) {
	servers := protocol.Membership{
		Epoch: 1, Replicas: 1, VNodes: 16,
		Members: []protocol.Member{
			{Addr: "s1:7001"},
			{Addr: "s2:7001"},
		},
	}
	withProxy := servers.Clone()
	withProxy.Members = append(withProxy.Members, protocol.Member{Addr: "p1:7788", Proxy: true})

	base := BuildRing(servers)
	ring := BuildRing(withProxy)

	if got := ring.Live(); len(got) != 2 {
		t.Fatalf("Live() with proxy = %v, want the 2 servers only", got)
	}
	for _, addr := range ring.Live() {
		if addr == "p1:7788" {
			t.Fatalf("proxy %q appears in Live()", addr)
		}
	}
	// Ownership must be byte-identical with and without the proxy.
	for _, seg := range []string{"s1:7001/a", "s1:7001/b", "s2:7001/counters", "s1:7001/deep/path"} {
		if base.Owner(seg) != ring.Owner(seg) {
			t.Fatalf("owner of %q moved when proxy joined: %q -> %q",
				seg, base.Owner(seg), ring.Owner(seg))
		}
		if ring.Owner(seg) == "p1:7788" {
			t.Fatalf("proxy owns %q", seg)
		}
	}
}

// TestMergeViewsKeepsProxyBit pins that the proxy role survives an
// equal-epoch merge regardless of which side knows it: a merge must
// never demote a proxy into a placement-eligible server.
func TestMergeViewsKeepsProxyBit(t *testing.T) {
	a := protocol.Membership{
		Epoch: 4, Replicas: 1, VNodes: 16,
		Members: []protocol.Member{
			{Addr: "s1:7001"},
			{Addr: "p1:7788", Proxy: true},
		},
	}
	b := protocol.Membership{
		Epoch: 4, Replicas: 1, VNodes: 16,
		Members: []protocol.Member{
			{Addr: "s1:7001"},
			{Addr: "p1:7788"}, // this side never saw the ProxyHello
			{Addr: "s2:7001"},
		},
	}
	for _, pair := range [][2]protocol.Membership{{a, b}, {b, a}} {
		out := mergeViews(pair[0], pair[1])
		if out.Epoch != 5 {
			t.Fatalf("merged epoch = %d, want 5", out.Epoch)
		}
		var found bool
		for _, m := range out.Members {
			if m.Addr == "p1:7788" {
				found = true
				if !m.Proxy {
					t.Fatalf("merge dropped proxy bit: %+v", out.Members)
				}
			}
			if m.Addr == "s1:7001" && m.Proxy {
				t.Fatalf("merge invented a proxy bit on a server: %+v", out.Members)
			}
		}
		if !found {
			t.Fatalf("merge lost the proxy member: %+v", out.Members)
		}
	}
}
