package server

import (
	"net"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/faultnet"
	"interweave/internal/protocol"
)

// startShapedServer runs a server behind a faultnet-wrapped listener
// so every session's traffic goes through the schedule.
func startShapedServer(t *testing.T, sched *faultnet.Schedule) (*Server, string) {
	t.Helper()
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(faultnet.WrapListener(ln, sched)) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

// TestServerShapedLink drives the full protocol flow over a link that
// chops every write into 3-byte fragments and adds per-chunk latency:
// frame decoding must reassemble partial reads correctly, so the
// whole lock/diff cycle behaves exactly as on a clean link.
func TestServerShapedLink(t *testing.T) {
	sched := faultnet.NewSchedule(
		faultnet.Rule{Dir: faultnet.Up, Op: faultnet.OpChop, Chop: 3},
		faultnet.Rule{Dir: faultnet.Down, Op: faultnet.OpChop, Chop: 3},
		faultnet.Rule{Dir: faultnet.Up, Op: faultnet.OpDelay, Delay: 100 * time.Microsecond},
	)
	srv, addr := startShapedServer(t, sched)
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "shaped", Profile: "x86-32le"})

	reply, _ := rc.call(&protocol.OpenSegment{Name: "s", Create: true})
	if or, ok := reply.(*protocol.OpenReply); !ok || !or.Created {
		t.Fatalf("open reply = %+v", reply)
	}
	reply, _ = rc.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
		t.Fatalf("write lock reply = %+v", reply)
	}
	reply, _ = rc.call(&protocol.WriteUnlock{
		Seg: "s", Diff: intCreateDiff(t, 1, 7, 8, 9), WriterID: "shaped", Seq: 1,
	})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 1 {
		t.Fatalf("write unlock reply = %+v", reply)
	}
	reply, _ = rc.call(&protocol.ReadLock{Seg: "s", Policy: coherence.Full()})
	lr, ok := reply.(*protocol.LockReply)
	if !ok || lr.Fresh || lr.Diff == nil || lr.Diff.Version != 1 {
		t.Fatalf("read lock reply = %+v", reply)
	}
	if seg := srv.SegmentSnapshot("s"); seg == nil || seg.Version != 1 {
		t.Fatal("segment state wrong after shaped session")
	}
	if st := sched.Stats(); st.Bytes[faultnet.Up] == 0 || st.Bytes[faultnet.Down] == 0 {
		t.Fatalf("traffic did not flow through the schedule: %+v", st)
	}
}

// TestServerSurvivesMidFrameReset cuts a session in the middle of a
// framed request and checks the server just drops the session —
// no partial application, and the next session works normally.
func TestServerSurvivesMidFrameReset(t *testing.T) {
	sched := faultnet.NewSchedule(
		// Kill connection 1 once a WriteUnlock-sized request is
		// partially through: after the Hello+Open+WriteLock bytes.
		faultnet.Rule{Conn: 1, Dir: faultnet.Up, Op: faultnet.OpReset, After: 90},
	)
	srv, addr := startShapedServer(t, sched)

	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "doomed", Profile: "x86-32le"})
	reply, _ := rc.call(&protocol.OpenSegment{Name: "s", Create: true})
	if _, ok := reply.(*protocol.OpenReply); !ok {
		t.Fatalf("open reply = %+v", reply)
	}
	// This request straddles the 90-byte mark, so the server sees a
	// torn frame and the reply never comes back.
	_ = protocol.WriteFrame(rc.conn, 99, &protocol.WriteUnlock{
		Seg: "s", Diff: intCreateDiff(t, 1, 7, 8, 9), WriterID: "doomed", Seq: 1,
	})
	if _, _, err := protocol.ReadFrame(rc.conn); err == nil {
		t.Fatal("expected the shaped reset to kill the session")
	}

	// The torn request must not have been applied.
	if seg := srv.SegmentSnapshot("s"); seg == nil || seg.Version != 0 {
		t.Fatalf("torn frame changed segment state: %+v", seg)
	}
	// A fresh session (conn 2, no rule) proceeds normally.
	rc2 := dialRaw(t, addr)
	rc2.mustAck(&protocol.Hello{ClientName: "next", Profile: "x86-32le"})
	reply, _ = rc2.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
		t.Fatalf("write lock after torn session = %+v", reply)
	}
	reply, _ = rc2.call(&protocol.WriteUnlock{
		Seg: "s", Diff: intCreateDiff(t, 1, 4, 5, 6), WriterID: "next", Seq: 1,
	})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 1 {
		t.Fatalf("write unlock after torn session = %+v", reply)
	}
}
