package server

import (
	"testing"

	"interweave/internal/types"
	"interweave/internal/wire"
)

func intDescBytes(t *testing.T) []byte {
	t.Helper()
	b, err := types.Marshal(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mixDescBytes(t *testing.T) []byte {
	t.Helper()
	s8, err := types.StringOf(8)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	st, err := types.StructOf("m",
		types.Field{Name: "i", Type: types.Int32()},
		types.Field{Name: "s", Type: s8},
		types.Field{Name: "p", Type: pi},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := types.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// intsDiff builds a creation diff: one block of n int32s with values
// vals (padded with zeros).
func intsDiff(t *testing.T, descLocal, serial uint32, n int, name string, vals ...uint32) *wire.SegmentDiff {
	t.Helper()
	data := make([]byte, 0, n*4)
	for i := 0; i < n; i++ {
		var v uint32
		if i < len(vals) {
			v = vals[i]
		}
		data = wire.AppendU32(data, v)
	}
	return &wire.SegmentDiff{
		Descs: []wire.DescDef{{Serial: descLocal, Bytes: intDescBytes(t)}},
		News:  []wire.NewBlock{{Serial: serial, DescSerial: descLocal, Count: uint32(n), Name: name}},
		Blocks: []wire.BlockDiff{{Serial: serial, Runs: []wire.Run{
			{Start: 0, Count: uint32(n), Data: data},
		}}},
	}
}

// runDiff builds a modification diff for an existing int block.
func runDiff(serial, start uint32, vals ...uint32) *wire.SegmentDiff {
	data := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		data = wire.AppendU32(data, v)
	}
	return &wire.SegmentDiff{
		Blocks: []wire.BlockDiff{{Serial: serial, Runs: []wire.Run{
			{Start: start, Count: uint32(len(vals)), Data: data},
		}}},
	}
}

func TestApplyAndCollectBasic(t *testing.T) {
	s := NewSegment("h/s")
	v, modified, err := s.ApplyDiff(intsDiff(t, 77, 1, 8, "a", 1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || s.Version != 1 {
		t.Errorf("version = %d/%d", v, s.Version)
	}
	if modified != 8 {
		t.Errorf("modified = %d", modified)
	}
	if s.TotalUnits() != 8 || s.NumBlocks() != 1 {
		t.Errorf("units=%d blocks=%d", s.TotalUnits(), s.NumBlocks())
	}
	// A client at version 0 gets everything.
	d, err := s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || len(d.News) != 1 || d.News[0].Name != "a" || len(d.Descs) != 1 {
		t.Fatalf("CollectDiff(0) = %+v", d)
	}
	if d.News[0].DescSerial != 1 {
		t.Errorf("remapped desc serial = %d, want 1 (server-global)", d.News[0].DescSerial)
	}
	if len(d.Blocks) != 1 || d.Blocks[0].Runs[0].Count != 8 {
		t.Fatalf("data runs = %+v", d.Blocks)
	}
	// Current client gets nil.
	d, err = s.CollectDiff(1)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Error("current client got a diff")
	}
}

func TestDescriptorDedupAcrossClients(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 500, 1, 4, "a")); err != nil {
		t.Fatal(err)
	}
	// Second "client" uses a different local serial for the same type.
	if _, _, err := s.ApplyDiff(intsDiff(t, 9, 2, 4, "b")); err != nil {
		t.Fatal(err)
	}
	d, err := s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.News[0].DescSerial != d.News[1].DescSerial {
		t.Errorf("same type got serials %d and %d", d.News[0].DescSerial, d.News[1].DescSerial)
	}
	// And a genuinely different type gets a new serial.
	md := &wire.SegmentDiff{
		Descs: []wire.DescDef{{Serial: 1, Bytes: mixDescBytes(t)}},
		News:  []wire.NewBlock{{Serial: 3, DescSerial: 1, Count: 1}},
	}
	if _, _, err := s.ApplyDiff(md); err != nil {
		t.Fatal(err)
	}
	if got := md.News[0].DescSerial; got != 2 {
		t.Errorf("second type serial = %d, want 2", got)
	}
}

func TestSubblockGranularity(t *testing.T) {
	s := NewSegment("h/s")
	s.SetDiffCacheCap(0) // exercise the subblock path, not cached forwarding
	const n = 1024
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, n, "a")); err != nil {
		t.Fatal(err)
	}
	// Modify one unit at position 100.
	if _, mod, err := s.ApplyDiff(runDiff(1, 100, 0xAB)); err != nil {
		t.Fatal(err)
	} else if mod != 1 {
		t.Errorf("modified = %d", mod)
	}
	d, err := s.CollectDiff(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 1 || len(d.Blocks[0].Runs) != 1 {
		t.Fatalf("diff = %+v", d.Blocks)
	}
	run := d.Blocks[0].Runs[0]
	// Subblock granularity: exactly the 16-unit subblock holding
	// unit 100 (units 96-111).
	if run.Start != 96 || run.Count != SubblockUnits {
		t.Errorf("run = [%d,+%d), want [96,+16)", run.Start, run.Count)
	}
	// And the transmitted value is there, at index 100-96.
	got := uint32(run.Data[16])<<24 | uint32(run.Data[17])<<16 | uint32(run.Data[18])<<8 | uint32(run.Data[19])
	if got != 0xAB {
		t.Errorf("unit value = %#x", got)
	}
}

func TestAdjacentSubblocksMerge(t *testing.T) {
	s := NewSegment("h/s")
	s.SetDiffCacheCap(0) // exercise the subblock path, not cached forwarding
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 256, "a")); err != nil {
		t.Fatal(err)
	}
	// Touch units 0..40 — three consecutive subblocks.
	vals := make([]uint32, 41)
	if _, _, err := s.ApplyDiff(runDiff(1, 0, vals...)); err != nil {
		t.Fatal(err)
	}
	d, err := s.CollectDiff(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks[0].Runs) != 1 {
		t.Fatalf("runs = %d, want 1 merged", len(d.Blocks[0].Runs))
	}
	if d.Blocks[0].Runs[0].Count != 48 { // 3 subblocks of 16
		t.Errorf("merged run covers %d units, want 48", d.Blocks[0].Runs[0].Count)
	}
}

func TestIntermediateVersions(t *testing.T) {
	s := NewSegment("h/s")
	s.SetDiffCacheCap(0)                                                  // exercise the subblock path, not cached forwarding
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 32, "a")); err != nil { // v1
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 0, 7)); err != nil { // v2
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 2, 32, "b")); err != nil { // v3
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(2, 20, 9)); err != nil { // v4
		t.Fatal(err)
	}
	// Client at v2: should get block b as new, plus block 2's run is
	// inside the new block (already whole); block 1 unchanged since
	// v2.
	d, err := s.CollectDiff(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.News) != 1 || d.News[0].Serial != 2 {
		t.Fatalf("News = %+v", d.News)
	}
	for _, bd := range d.Blocks {
		if bd.Serial == 1 {
			t.Error("unchanged block 1 included")
		}
	}
	// Client at v3: gets only block 2's modified subblock.
	d, err = s.CollectDiff(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.News) != 0 || len(d.Blocks) != 1 || d.Blocks[0].Serial != 2 {
		t.Fatalf("v3 diff = %+v", d)
	}
	if d.Blocks[0].Runs[0].Start != 16 {
		t.Errorf("run start = %d, want 16 (subblock of unit 20)", d.Blocks[0].Runs[0].Start)
	}
	if err := s.checkListSorted(); err != nil {
		t.Error(err)
	}
}

func TestVersionListTailMovement(t *testing.T) {
	s := NewSegment("h/s")
	for i := uint32(1); i <= 3; i++ {
		if _, _, err := s.ApplyDiff(intsDiff(t, 1, i, 16, "")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.versionListOrder(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("initial order = %v", got)
	}
	// Modify block 1: it moves to the tail.
	if _, _, err := s.ApplyDiff(runDiff(1, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if got := s.versionListOrder(); got[2] != 1 {
		t.Fatalf("order after modify = %v, want block 1 last", got)
	}
	if err := s.checkListSorted(); err != nil {
		t.Error(err)
	}
}

func TestFreedPropagation(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 16, "a")); err != nil { // v1
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{Freed: []uint32{1}}); err != nil { // v2
		t.Fatal(err)
	}
	if s.NumBlocks() != 0 || s.TotalUnits() != 0 {
		t.Errorf("blocks=%d units=%d after free", s.NumBlocks(), s.TotalUnits())
	}
	// Client at v1 learns the free.
	d, err := s.CollectDiff(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Freed) != 1 || d.Freed[0] != 1 {
		t.Errorf("Freed = %v", d.Freed)
	}
	// Client at v0 also sees it (and no stale NewBlock).
	d, err = s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Freed) != 1 || len(d.News) != 0 {
		t.Errorf("v0 diff = freed %v news %v", d.Freed, d.News)
	}
}

func TestDiffCache(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 64, "a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	before := s.CacheHits()
	d, err := s.CollectDiff(1) // exactly one behind: cached
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheHits() != before+1 {
		t.Errorf("cache hits = %d, want %d", s.CacheHits(), before+1)
	}
	if d.Version != 2 || len(d.Blocks) != 1 {
		t.Errorf("cached diff = %+v", d)
	}
	// Two behind: served by merging cached diffs, unit-accurately.
	d0, err := s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheHits() != before+2 {
		t.Error("multi-version collect did not use the cache")
	}
	if len(d0.News) != 1 || d0.Version != 2 {
		t.Errorf("merged diff = %+v", d0)
	}
	// Disabling the cache stops hits.
	s.SetDiffCacheCap(0)
	if _, _, err := s.ApplyDiff(runDiff(1, 8, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CollectDiff(2); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits() != before+2 {
		t.Error("disabled cache hit")
	}
}

func TestMergedCachedDiffLastWriterWins(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 64, "a")); err != nil { // v1
		t.Fatal(err)
	}
	// v2 writes unit 5 = 100; v3 writes units 5..6 = 200, 201.
	if _, _, err := s.ApplyDiff(runDiff(1, 5, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 5, 200, 201)); err != nil {
		t.Fatal(err)
	}
	d, err := s.CollectDiff(1) // two behind: merged from cache
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 1 || len(d.Blocks[0].Runs) != 1 {
		t.Fatalf("merged = %+v", d.Blocks)
	}
	run := d.Blocks[0].Runs[0]
	// Unit-accurate: exactly units 5..6, with v3's values.
	if run.Start != 5 || run.Count != 2 {
		t.Fatalf("merged run = [%d,+%d), want [5,+2)", run.Start, run.Count)
	}
	r := wire.NewReader(run.Data)
	if v := r.U32(); v != 200 {
		t.Errorf("unit 5 = %d, want 200 (last writer)", v)
	}
	if v := r.U32(); v != 201 {
		t.Errorf("unit 6 = %d, want 201", v)
	}
	// A freed block disappears from merged News and data.
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 2, 16, "b")); err != nil { // v4
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{Freed: []uint32{2}}); err != nil { // v5
		t.Fatal(err)
	}
	d2, err := s.CollectDiff(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range d2.News {
		if nb.Serial == 2 {
			t.Error("freed block announced in merged diff")
		}
	}
	for _, bd := range d2.Blocks {
		if bd.Serial == 2 {
			t.Error("freed block data in merged diff")
		}
	}
	found := false
	for _, f := range d2.Freed {
		if f == 2 {
			found = true
		}
	}
	if !found {
		t.Error("free not propagated in merged diff")
	}
}

func TestUnitsModifiedSince(t *testing.T) {
	s := NewSegment("h/s")
	s.SetDiffCacheCap(0)                                                   // exercise the subblock path, not cached forwarding
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 256, "a")); err != nil { // v1
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 0, 1)); err != nil { // v2: subblock 0
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 64, 1)); err != nil { // v3: subblock 4
		t.Fatal(err)
	}
	if got := s.UnitsModifiedSince(1); got != 32 {
		t.Errorf("since v1 = %d, want 32 (two subblocks)", got)
	}
	if got := s.UnitsModifiedSince(2); got != 16 {
		t.Errorf("since v2 = %d, want 16", got)
	}
	if got := s.UnitsModifiedSince(3); got != 0 {
		t.Errorf("since v3 = %d, want 0", got)
	}
}

func TestApplyDiffErrors(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(nil); err == nil {
		t.Error("nil diff accepted")
	}
	// Unknown descriptor.
	bad := &wire.SegmentDiff{News: []wire.NewBlock{{Serial: 1, DescSerial: 99, Count: 1}}}
	if _, _, err := s.ApplyDiff(bad); err == nil {
		t.Error("unknown descriptor accepted")
	}
	if s.Version != 0 {
		t.Errorf("failed diff bumped version to %d", s.Version)
	}
	// Run for unknown block.
	bad = &wire.SegmentDiff{Blocks: []wire.BlockDiff{{Serial: 9, Runs: []wire.Run{{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}}}}}}
	if _, _, err := s.ApplyDiff(bad); err == nil {
		t.Error("run for unknown block accepted")
	}
	// Valid creation, then invalid run range.
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 4, "a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 3, 1, 2, 3)); err == nil {
		t.Error("run past block end accepted")
	}
	// Duplicate serial.
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 4, "x")); err == nil {
		t.Error("duplicate block serial accepted")
	}
	// Duplicate name.
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 2, 4, "a")); err == nil {
		t.Error("duplicate block name accepted")
	}
	// Zero count.
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{
		Descs: []wire.DescDef{{Serial: 1, Bytes: intDescBytes(t)}},
		News:  []wire.NewBlock{{Serial: 3, DescSerial: 1, Count: 0}},
	}); err == nil {
		t.Error("zero-count block accepted")
	}
	// Truncated run data.
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{Blocks: []wire.BlockDiff{
		{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 2, Data: []byte{1}}}},
	}}); err == nil {
		t.Error("truncated run accepted")
	}
}

func TestVarlenStorage(t *testing.T) {
	s := NewSegment("h/s")
	// One mix block: int, string[8], pointer.
	data := wire.AppendU32(nil, 5)
	data = wire.AppendString(data, "hey")
	data = wire.AppendString(data, "h/s#a#2")
	d := &wire.SegmentDiff{
		Descs:  []wire.DescDef{{Serial: 1, Bytes: mixDescBytes(t)}},
		News:   []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 1, Name: "m"}},
		Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 3, Data: data}}}},
	}
	if _, _, err := s.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	out, err := s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Blocks[0].Runs[0].Data
	r := wire.NewReader(got)
	if v := r.U32(); v != 5 {
		t.Errorf("int = %d", v)
	}
	if v := r.Str(); v != "hey" {
		t.Errorf("string = %q", v)
	}
	if v := r.Str(); v != "h/s#a#2" {
		t.Errorf("mip = %q", v)
	}
	// Overwrite the string: var slot is reused, not leaked.
	varsBefore := len(s.Blocks()[0].vars)
	upd := wire.AppendString(nil, "belated")
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{Blocks: []wire.BlockDiff{
		{Serial: 1, Runs: []wire.Run{{Start: 1, Count: 1, Data: upd}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks()[0].vars) != varsBefore {
		t.Errorf("vars grew from %d to %d on overwrite", varsBefore, len(s.Blocks()[0].vars))
	}
	// Overlong string rejected.
	bad := wire.AppendString(nil, "12345678longer")
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{Blocks: []wire.BlockDiff{
		{Serial: 1, Runs: []wire.Run{{Start: 1, Count: 1, Data: bad}}},
	}}); err == nil {
		t.Error("overflowing string accepted")
	}
}

func TestDirectory(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 16, "a")); err != nil {
		t.Fatal(err)
	}
	dir := s.Directory()
	if len(dir.News) != 1 || len(dir.Blocks) != 0 || len(dir.Descs) != 1 {
		t.Errorf("Directory = %+v", dir)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	s := NewSegment("host/path seg")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 100, "a", 11, 22, 33)); err != nil {
		t.Fatal(err)
	}
	data := wire.AppendU32(nil, 5)
	data = wire.AppendString(data, "str")
	data = wire.AppendString(data, "")
	if _, _, err := s.ApplyDiff(&wire.SegmentDiff{
		Descs:  []wire.DescDef{{Serial: 1, Bytes: mixDescBytes(t)}},
		News:   []wire.NewBlock{{Serial: 2, DescSerial: 1, Count: 1, Name: "m"}},
		Blocks: []wire.BlockDiff{{Serial: 2, Runs: []wire.Run{{Start: 0, Count: 3, Data: data}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyDiff(runDiff(1, 50, 0xEE)); err != nil {
		t.Fatal(err)
	}

	got, err := decodeSegment(s.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != s.Name || got.Version != s.Version {
		t.Errorf("identity: %q v%d", got.Name, got.Version)
	}
	if got.TotalUnits() != s.TotalUnits() || got.NumBlocks() != s.NumBlocks() {
		t.Errorf("sizes: units %d blocks %d", got.TotalUnits(), got.NumBlocks())
	}
	// Full diffs from both must be byte-identical (bypass the diff
	// cache, which the restored segment legitimately lacks).
	s.SetDiffCacheCap(0)
	d1, err := s.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1.Marshal(nil)) != string(d2.Marshal(nil)) {
		t.Error("full diffs differ after checkpoint roundtrip")
	}
	// Incremental diffs keep working: v2 client sees only the v3 run.
	d3, err := got.CollectDiff(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Blocks) != 1 || d3.Blocks[0].Serial != 1 || d3.Blocks[0].Runs[0].Start != 48 {
		t.Errorf("incremental after restore = %+v", d3)
	}
	if err := got.checkListSorted(); err != nil {
		t.Error(err)
	}
	// Restored segment accepts new diffs.
	if _, _, err := got.ApplyDiff(runDiff(1, 0, 1)); err != nil {
		t.Errorf("apply after restore: %v", err)
	}
}

func TestDecodeSegmentErrors(t *testing.T) {
	s := NewSegment("h/s")
	if _, _, err := s.ApplyDiff(intsDiff(t, 1, 1, 8, "a")); err != nil {
		t.Fatal(err)
	}
	good := s.encode()
	if _, err := decodeSegment(good[:10]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, err := decodeSegment(append(append([]byte{}, good...), 1)); err == nil {
		t.Error("trailing checkpoint bytes accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := decodeSegment(bad); err == nil {
		t.Error("bad magic accepted")
	}
}
