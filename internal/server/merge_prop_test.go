package server

// Property test for the diff cache's merged-forward path: on random
// histories of applied diffs — block creates, multi-run
// modifications, frees — the diff served by merging cached diffs
// (mergeCachedDiffs) must be equivalent to a fresh full collection
// (collectFull) from the same version: applying either to a clone of
// the segment at that version must reproduce the master's exact data.
// Cache capacities are swept so the merge window's eviction boundary
// (sinceVer falling just inside or just outside the cached span) is
// exercised on every history.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"interweave/internal/wire"
)

// segFingerprint captures a segment's observable data: version and,
// per block in serial order, identity plus every unit's value. It
// deliberately excludes subblock version stamps — the merged path is
// unit-accurate while the full path rounds to subblocks, so the two
// legitimately stamp different subblocks; the data must still agree.
func segFingerprint(s *Segment) []byte {
	var buf []byte
	buf = wire.AppendU32(buf, s.Version)
	for _, b := range s.Blocks() {
		buf = wire.AppendU32(buf, b.Serial)
		buf = wire.AppendString(buf, b.Name)
		buf = wire.AppendU32(buf, b.DescSerial)
		buf = wire.AppendU32(buf, uint32(b.Count))
		buf = b.appendUnits(buf, 0, b.Units())
	}
	return buf
}

// cloneDiff deep-copies a diff through its wire form, so applying it
// cannot mutate the original (applyDiffAt remaps descriptor serials
// in place).
func cloneDiff(t *testing.T, d *wire.SegmentDiff) *wire.SegmentDiff {
	t.Helper()
	out, err := wire.UnmarshalSegmentDiff(d.Marshal(nil))
	if err != nil {
		t.Fatalf("diff did not round-trip: %v", err)
	}
	return out
}

// applyToClone decodes the segment image and applies the diff at its
// stamped version, returning the resulting fingerprint.
func applyToClone(t *testing.T, img []byte, d *wire.SegmentDiff) []byte {
	t.Helper()
	clone, err := decodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	dd := cloneDiff(t, d)
	if _, err := clone.ApplyReplicatedDiff(dd, dd.Version); err != nil {
		t.Fatalf("applying diff at version %d: %v", dd.Version, err)
	}
	return segFingerprint(clone)
}

// propState tracks the live blocks of the generated history.
type propState struct {
	nextSerial uint32
	live       []uint32       // serials of live int blocks
	counts     map[uint32]int // serial -> element count
}

// randomStep builds one random diff: create a block (30%, always on
// an empty segment), free one (10%), or modify one with 1–2
// non-overlapping runs.
func randomStep(t *testing.T, rng *rand.Rand, st *propState) *wire.SegmentDiff {
	t.Helper()
	roll := rng.Intn(100)
	switch {
	case len(st.live) == 0 || roll < 30:
		n := 1 + rng.Intn(40)
		serial := st.nextSerial
		st.nextSerial++
		st.live = append(st.live, serial)
		st.counts[serial] = n
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32()
		}
		return intsDiff(t, 7, serial, n, fmt.Sprintf("b%d", serial), vals...)
	case roll < 40 && len(st.live) > 1:
		i := rng.Intn(len(st.live))
		serial := st.live[i]
		st.live = append(st.live[:i], st.live[i+1:]...)
		delete(st.counts, serial)
		return &wire.SegmentDiff{Freed: []uint32{serial}}
	default:
		serial := st.live[rng.Intn(len(st.live))]
		units := st.counts[serial]
		var runs []wire.Run
		mkRun := func(lo, hi int) {
			if hi <= lo {
				return
			}
			start := lo + rng.Intn(hi-lo)
			count := 1 + rng.Intn(hi-start)
			data := make([]byte, 0, count*4)
			for i := 0; i < count; i++ {
				data = wire.AppendU32(data, rng.Uint32())
			}
			runs = append(runs, wire.Run{Start: uint32(start), Count: uint32(count), Data: data})
		}
		if units >= 4 && rng.Intn(2) == 0 {
			mkRun(0, units/2)
			mkRun(units/2, units)
		} else {
			mkRun(0, units)
		}
		return &wire.SegmentDiff{Blocks: []wire.BlockDiff{{Serial: serial, Runs: runs}}}
	}
}

func TestMergeCachedDiffsProperty(t *testing.T) {
	caps := []int{1, 2, 3, 4, 6, 8, 12, 100, 0}
	for seed := int64(0); seed < int64(len(caps)); seed++ {
		cacheCap := caps[seed]
		t.Run(fmt.Sprintf("seed=%d,cap=%d", seed, cacheCap), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed*7919 + 13))
			master := NewSegment("prop")
			master.SetDiffCacheCap(cacheCap)
			st := &propState{nextSerial: 1, counts: make(map[uint32]int)}

			// Image of the segment at every version, for lagging clones.
			images := map[uint32][]byte{0: master.encode()}
			steps := 16 + rng.Intn(12)
			for i := 0; i < steps; i++ {
				d := randomStep(t, rng, st)
				if _, _, err := master.ApplyDiff(d); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				images[master.Version] = master.encode()
			}
			want := segFingerprint(master)

			merges := 0
			for since := uint32(0); since < master.Version; since++ {
				// Direct comparison: when the cached window covers this
				// version span, the merged diff and the fresh full
				// collection must both reconstruct the master exactly.
				if md, ok := master.mergeCachedDiffs(since); ok {
					merges++
					fd, err := master.collectFull(since)
					if err != nil {
						t.Fatal(err)
					}
					if got := applyToClone(t, images[since], md); !bytes.Equal(got, want) {
						t.Errorf("since=%d: merged diff diverges from master", since)
					}
					if got := applyToClone(t, images[since], fd); !bytes.Equal(got, want) {
						t.Errorf("since=%d: full collection diverges from master", since)
					}
				}
				// End-to-end: whatever path CollectDiff picks (cache hit
				// or full walk, depending on which side of the eviction
				// boundary `since` falls) must reconstruct the master.
				d, err := master.CollectDiff(since)
				if err != nil {
					t.Fatal(err)
				}
				if d == nil {
					t.Fatalf("since=%d < version %d but diff is nil", since, master.Version)
				}
				if got := applyToClone(t, images[since], d); !bytes.Equal(got, want) {
					t.Errorf("since=%d: CollectDiff result diverges from master", since)
				}
			}
			if cacheCap > 0 && merges == 0 {
				t.Errorf("cache cap %d but no merged collections exercised", cacheCap)
			}
			if cacheCap == 0 && merges > 0 {
				t.Errorf("cache disabled but %d merged collections happened", merges)
			}
		})
	}
}
