package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/coherence"
	"interweave/internal/journal"
	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Options configures a Server.
type Options struct {
	// CheckpointDir, when non-empty, is where segments are
	// checkpointed; an existing checkpoint is restored at startup.
	CheckpointDir string
	// CheckpointEvery triggers periodic checkpoints when positive.
	// In journal mode it instead triggers periodic compaction.
	CheckpointEvery time.Duration
	// JournalDir, when non-empty, puts the server in journal mode:
	// every committed release is appended to a per-segment
	// log-structured journal before the client sees the
	// acknowledgement, and startup recovery is checkpoint base +
	// log replay (see internal/journal and DESIGN.md §9). Mutually
	// exclusive with CheckpointDir.
	JournalDir string
	// JournalCompactBytes is the per-segment log size that triggers
	// compaction into a fresh checkpoint base. Zero means
	// DefaultJournalCompactBytes; negative disables automatic
	// compaction (Checkpoint/Close still compact).
	JournalCompactBytes int64
	// DiffCacheCap overrides the per-segment diff cache capacity
	// when non-zero (negative disables caching).
	DiffCacheCap int
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the server's instrumentation
	// (see OBSERVABILITY.md). A nil registry disables every
	// instrumentation site.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a span per handled request, joined
	// to the client's trace when the frame carried a trace context,
	// with child spans for queue wait, freshness check, diff
	// collect/apply, and notification fan-out. A nil tracer disables
	// span tracing — no clock reads and no allocations.
	Tracer *obs.Tracer
	// Cluster, when non-nil, puts the server in cluster mode: segment
	// RPCs for segments this node does not own are answered with a
	// Redirect, committed diffs stream to the segment's replicas, and
	// the membership RPCs (RingGet/RingPush/Replicate/Pull/Migrate)
	// are served. The caller owns the node's lifecycle (Start/Close);
	// see DESIGN.md §7.
	Cluster *cluster.Node
	// MaxSessions caps concurrent logical sessions server-wide;
	// admission control refuses session creation past the cap with
	// CodeOverloaded. Zero means unlimited (DESIGN.md §10).
	MaxSessions int
	// SessionSendQueue bounds outbound frames queued per logical
	// session; a subscriber over the bound when a Notify arrives is
	// shed (evicted), never buffered without limit. Zero means
	// DefaultSessionSendQueue.
	SessionSendQueue int
	// ConnSendQueue bounds the per-connection writer queue shared by
	// every session multiplexed on the connection. Zero means
	// DefaultConnSendQueue.
	ConnSendQueue int
	// WriteTimeout bounds how long a reply may wait for space in the
	// connection's writer queue before the connection is declared
	// stuck and evicted. Zero means DefaultWriteTimeout.
	WriteTimeout time.Duration
	// GroupCommit enables release coalescing on hot segments: while
	// one release's journal append / replication fan-out is in
	// flight, releases queued behind it on the same segment are
	// flushed together as one merged diff, one journal record, one
	// Replicate frame, and one notification fan-out (DESIGN.md §10).
	GroupCommit bool
	// GroupCommitMax caps how many releases one flush may coalesce.
	// Zero means DefaultGroupCommitMax.
	GroupCommitMax int
	// Flight, when non-nil, is the always-on flight recorder: the
	// server records structural incidents into it (session evictions,
	// group-commit flushes, promotions, demotions, fencing, epoch
	// changes, journal compactions), dumps it when a handler goroutine
	// panics, and /debug/flight serves it. A nil recorder disables
	// every recording site and every panic hook (OBSERVABILITY.md).
	Flight *obs.FlightRecorder
	// CrashDump is where a panicking server goroutine writes its
	// post-mortem (the panic value, the flight recorder's contents,
	// and the stack) before re-panicking. Nil means os.Stderr. Only
	// consulted when Flight is non-nil.
	CrashDump io.Writer
	// SLOShortWindow and SLOLongWindow override the SLO tracker's
	// rolling windows; zero means obs.DefaultSLOShortWindow and
	// obs.DefaultSLOLongWindow. The tracker exists only when Metrics
	// is non-nil (see health.go and /debug/slo).
	SLOShortWindow time.Duration
	SLOLongWindow  time.Duration
	// SLOSampleEvery is the cadence of the background SLO sampler
	// Serve starts. Zero means DefaultSLOSampleEvery; negative
	// disables the sampler (tests drive SampleSLO manually).
	SLOSampleEvery time.Duration
	// MaxResidentBytes, when positive, is the in-memory budget across
	// all segments: the background evictor drops the in-memory image
	// of idle journaled segments, least-recently-touched first, until
	// the estimated resident footprint fits the budget (± one
	// segment). Evicted segments fault back in from the journal on
	// the next touch, transparently to clients, replicas, and
	// proxies (DESIGN.md §12). Requires JournalDir.
	MaxResidentBytes int64
	// EvictIdleAge, when positive, evicts any journaled segment not
	// touched for this long even when the budget is not exceeded.
	// Requires JournalDir.
	EvictIdleAge time.Duration
	// EvictInterval is the cadence of the background eviction sweep
	// Serve starts when MaxResidentBytes or EvictIdleAge is set. Zero
	// means DefaultEvictInterval; negative disables the sweep (tests
	// and operators drive EvictPass manually).
	EvictInterval time.Duration
}

// Server is an InterWeave server managing an arbitrary number of
// segments.
//
// Concurrency model (DESIGN.md §8): segments live in a sharded
// registry and each carries its own mutex, so RPCs against different
// segments never contend. mu guards only server lifecycle state —
// the session set, the listener, the closed flag, and the cluster
// ring bookkeeping — and is ordered BEFORE any registry shard or
// segment lock (never acquire mu while holding either).
type Server struct {
	opts Options

	mu       sync.Mutex // lifecycle: conns, sessions, ln, closed, lastRing
	conns    map[*wireConn]struct{}
	sessions map[*session]struct{}
	// proxySessions counts the sessions created by ProxyHello; they are
	// excluded from MaxSessions admission (DESIGN.md §11 — one proxy
	// session replaces thousands of direct client sessions).
	proxySessions int
	// exemptSessions counts every admission-exempt session: proxy
	// sessions plus cluster-plane RPC sessions (gossip/replication
	// round trips on throwaway conns). Subtracted from the MaxSessions
	// admission count so infrastructure traffic neither consumes nor
	// is refused client capacity.
	exemptSessions int
	ln            net.Listener
	closed        bool

	// Resolved transport bounds (Options with defaults applied).
	sessionSendQueue int
	connSendQueue    int
	writeTimeout     time.Duration
	groupCommitMax   int

	// reg is the sharded segment registry; each segState carries its
	// own mutex (see segState).
	reg segRegistry

	done chan struct{}
	wg   sync.WaitGroup

	ins    *serverInstruments
	tracer *obs.Tracer

	// Observability plane (health.go, OBSERVABILITY.md): construction
	// time for the uptime gauge, the flight recorder and its crash
	// writer, the SLO tracker, and the counter samples Health's
	// windowed-rate reasons difference against.
	start  time.Time
	flight *obs.FlightRecorder
	crashw io.Writer
	slo    *obs.SLOTracker

	healthMu      sync.Mutex
	healthSamples []healthSample

	// journal is the log-structured persistence store, nil unless
	// Options.JournalDir is set (DESIGN.md §9).
	journal *journal.Store

	cluster *cluster.Node
	cins    *clusterInstruments
	// lastRing is the placement before the latest epoch change, kept
	// to detect which locally held segments this node was just
	// promoted to own. Guarded by mu.
	lastRing *cluster.Ring
}

// segState couples a segment with its lock and subscription state.
//
// mu owns everything below it: the segment's data and version state
// (seg — note the pointer itself is swapped by demotion, migration
// snapshots, and transaction commits), the write-lock queue (writer,
// waiters), the subscription table (subs), and the at-most-once
// applied-writer table (applied). The short-critical-section
// discipline: diff decode, clone staging, wire frame encode, socket
// writes (replies and notify fan-out), replication streaming, and
// checkpoint file I/O all happen OUTSIDE mu — only reads and
// mutations of the state above happen under it. Multi-segment
// operations acquire segState locks one at a time or in ascending
// segment-name order (DESIGN.md §8).
type segState struct {
	mu sync.Mutex
	// name is the segment's name, immutable after creation, so
	// lock-ordering code can sort segStates without taking mu.
	name    string
	seg     *Segment
	writer  *session
	waiters []*waiter
	subs    map[*session]*subState
	// applied records each writer's most recent release outcome, so a
	// release retried after a lost reply is answered from the record
	// instead of applied twice (at-most-once). Persisted with the
	// segment's checkpoint.
	applied map[string]appliedWrite

	// Group commit (DESIGN.md §10): releases applied but whose
	// durability fan-out has not yet run, plus the single-flusher
	// flag. flushDone (a condition on mu) is broadcast whenever the
	// flusher takes a batch or exits.
	pending   []*pendingRelease
	flushing  bool
	flushDone *sync.Cond
	// gcFlushes/gcReleases are the segment's cumulative group-commit
	// flush and coalesced-release counts (the per-segment view of the
	// server-wide iw_server_group_commits_total pair), surfaced by
	// /debug/segments.
	gcFlushes  uint64
	gcReleases uint64

	// Cold-segment eviction (evict.go, DESIGN.md §12). seg == nil
	// means the in-memory image has been evicted; evictedVer is the
	// version the journal's base captures (valid only while seg is
	// nil — the stub the eviction leaves behind is this field, the
	// in-memory applied table above, and the journal files on disk).
	// Every touch path calls ensureResident before reading seg.
	evictedVer uint32
	// lastTouch is the UnixNano of the segment's most recent touch,
	// stamped by ensureResident and read by the eviction sweep's LRU
	// ordering. Atomic so the sweep can read it without st.mu.
	lastTouch atomic.Int64
}

// appliedWrite is the recorded outcome of a write release.
type appliedWrite struct {
	seq     uint32
	version uint32
}

type subState struct {
	policy      coherence.Policy
	haveVersion uint32
	unitsSince  int
	notified    bool
}

type waiter struct {
	sess *session
	ch   chan struct{}
}

// New returns a server, restoring any checkpoint found in
// opts.CheckpointDir.
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:     opts,
		conns:    make(map[*wireConn]struct{}),
		sessions: make(map[*session]struct{}),
		done:     make(chan struct{}),
		tracer:   opts.Tracer,
		start:    time.Now(),
		flight:   opts.Flight,
		crashw:   opts.CrashDump,

		sessionSendQueue: opts.SessionSendQueue,
		connSendQueue:    opts.ConnSendQueue,
		writeTimeout:     opts.WriteTimeout,
	}
	if s.crashw == nil {
		s.crashw = os.Stderr
	}
	if s.sessionSendQueue <= 0 {
		s.sessionSendQueue = DefaultSessionSendQueue
	}
	if s.connSendQueue <= 0 {
		s.connSendQueue = DefaultConnSendQueue
	}
	if s.writeTimeout <= 0 {
		s.writeTimeout = DefaultWriteTimeout
	}
	s.groupCommitMax = opts.GroupCommitMax
	if s.groupCommitMax <= 0 {
		s.groupCommitMax = DefaultGroupCommitMax
	}
	s.reg.init()
	if opts.Metrics != nil {
		s.ins = newServerInstruments(opts.Metrics)
		opts.Metrics.RegisterCollector(s.collectServerGauges)
		s.slo = obs.NewSLOTracker(opts.Metrics, serverSLOObjectives(),
			opts.SLOShortWindow, opts.SLOLongWindow)
	}
	if opts.CheckpointDir != "" && opts.JournalDir != "" {
		return nil, errors.New("server: CheckpointDir and JournalDir are mutually exclusive")
	}
	if (opts.MaxResidentBytes > 0 || opts.EvictIdleAge > 0) && opts.JournalDir == "" {
		// Refuse loudly rather than silently never evicting: eviction
		// reloads segments from the journal's base + tail, and a
		// CheckpointDir-mode base may be arbitrarily stale, so dropping
		// the in-memory image there would lose acknowledged writes.
		if opts.CheckpointDir != "" {
			return nil, errors.New("server: MaxResidentBytes/EvictIdleAge require JournalDir; CheckpointDir checkpoints lag the live state and cannot back eviction")
		}
		return nil, errors.New("server: MaxResidentBytes/EvictIdleAge require JournalDir (cold segments reload from the journal)")
	}
	if opts.CheckpointDir != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	if opts.JournalDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	if opts.Cluster != nil {
		s.cluster = opts.Cluster
		s.lastRing = s.cluster.Ring()
		if opts.Metrics != nil {
			s.cins = newClusterInstruments(opts.Metrics)
		}
		s.cluster.OnEpochChange(s.onEpochChange)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// lockSeg acquires a segment's lock, counting acquisitions that had
// to block (iw_server_seg_lock_contention_total). The uncontended
// fast path is a single TryLock.
func (s *Server) lockSeg(st *segState) {
	if st.mu.TryLock() {
		return
	}
	if s.ins != nil {
		s.ins.segLockContention.Inc()
	}
	st.mu.Lock()
}

// lockSegsOrdered acquires every given segment lock in ascending
// segment-name order — the deterministic ordering rule that keeps
// concurrent multi-segment operations (transaction commits, epoch
// sweeps) deadlock-free (DESIGN.md §8). The input slice is not
// modified; duplicates are not allowed.
func (s *Server) lockSegsOrdered(sts []*segState) []*segState {
	ordered := make([]*segState, len(sts))
	copy(ordered, sts)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].name < ordered[j-1].name; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for _, st := range ordered {
		s.lockSeg(st)
	}
	return ordered
}

// unlockSegs releases locks taken by lockSegsOrdered, in reverse
// order.
func unlockSegs(ordered []*segState) {
	for i := len(ordered) - 1; i >= 0; i-- {
		ordered[i].mu.Unlock()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	if s.opts.CheckpointEvery > 0 && (s.opts.CheckpointDir != "" || s.journal != nil) {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if s.slo != nil && s.opts.SLOSampleEvery >= 0 {
		s.wg.Add(1)
		go s.sloSampleLoop()
	}
	if s.journal != nil && s.opts.EvictInterval >= 0 &&
		(s.opts.MaxResidentBytes > 0 || s.opts.EvictIdleAge > 0) {
		s.wg.Add(1)
		go s.evictLoop()
	}

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return net.ErrClosed
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		wc := s.newWireConn(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[wc] = struct{}{}
		if s.ins != nil {
			s.ins.conns.Set(int64(len(s.conns)))
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.flight != nil {
				// Post-mortem hook: a panic on this connection's read
				// loop dumps the flight recorder before killing the
				// process (obs.FlightRecorder.DumpOnPanic re-panics).
				defer s.flight.DumpOnPanic(s.crashw, "server connection")
			}
			wc.serve()
		}()
	}
}

// Addr returns the listener address, for clients started against
// ":0".
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down: stops accepting, closes every session,
// waits for handlers to finish, and takes a final checkpoint.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	ln := s.ln
	for wc := range s.conns {
		wc.shut()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	if s.opts.CheckpointDir != "" || s.journal != nil {
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			if err := s.Checkpoint(); err != nil {
				s.logf("checkpoint: %v", err)
			}
		}
	}
}

// newSegState builds a fresh segment state with the server's diff
// cache policy applied.
func (s *Server) newSegState(name string) *segState {
	st := &segState{
		name:    name,
		seg:     NewSegment(name),
		subs:    make(map[*session]*subState),
		applied: make(map[string]appliedWrite),
	}
	st.flushDone = sync.NewCond(&st.mu)
	st.lastTouch.Store(time.Now().UnixNano())
	if s.opts.DiffCacheCap != 0 {
		n := s.opts.DiffCacheCap
		if n < 0 {
			n = 0
		}
		st.seg.SetDiffCacheCap(n)
	}
	return st
}

// getSeg returns the named segment state, creating it if requested.
// It takes only a registry shard lock, never a segment lock.
func (s *Server) getSeg(name string, create bool) (*segState, error) {
	if st, ok := s.reg.get(name); ok {
		return st, nil
	}
	if !create {
		return nil, fmt.Errorf("no segment %q", name)
	}
	st, _ := s.reg.getOrCreate(name, s.newSegState)
	return st, nil
}

func errReply(code uint16, format string, args ...any) *protocol.ErrorReply {
	return &protocol.ErrorReply{Code: code, Text: fmt.Sprintf(format, args...)}
}

// handle times and dispatches one request, counting error replies.
// When the server traces, the request gets a "server.<Kind>" span
// joined to the client's trace context (or rooting a fresh trace for
// clients that sent none); error replies mark the span errored. All
// span work is gated on the tracer, keeping the disabled path free of
// clock reads and allocations.
func (sess *session) handle(msg protocol.Message, tc protocol.TraceContext) protocol.Message {
	var sp *obs.Span
	if tr := sess.srv.tracer; tr != nil {
		sp = tr.Join(obs.SpanContext{TraceID: tc.TraceID, SpanID: tc.SpanID}, "server."+reqName(msg))
	}
	ins := sess.srv.ins
	var reply protocol.Message
	if ins == nil {
		reply = sess.dispatch(msg, sp)
	} else {
		start := time.Now()
		reply = sess.dispatch(msg, sp)
		ins.rpcSeconds(reqName(msg)).ObserveSince(start)
		if _, isErr := reply.(*protocol.ErrorReply); isErr {
			ins.rpcErrors(reqName(msg)).Inc()
		}
	}
	if sp != nil {
		if er, isErr := reply.(*protocol.ErrorReply); isErr {
			sp.Error(er)
		}
		sp.End()
	}
	return reply
}

// dispatch routes one request to its handler and returns the reply.
func (sess *session) dispatch(msg protocol.Message, sp *obs.Span) protocol.Message {
	if red := sess.clusterRedirect(msg); red != nil {
		return red
	}
	switch m := msg.(type) {
	case *protocol.RingGet:
		return sess.handleRingGet(m)
	case *protocol.RingPush:
		return sess.handleRingPush(m)
	case *protocol.Replicate:
		return sess.handleReplicate(m)
	case *protocol.Pull:
		return sess.handlePull(m)
	case *protocol.Migrate:
		return sess.handleMigrate(m)
	}
	switch m := msg.(type) {
	case *protocol.Hello:
		sess.name, sess.profile = m.ClientName, m.Profile
		return &protocol.Ack{}
	case *protocol.ProxyHello:
		sess.name, sess.profile = m.Name, "proxy"
		sess.srv.markProxySession(sess)
		return &protocol.Ack{}
	case *protocol.OpenSegment:
		return sess.handleOpen(m)
	case *protocol.ReadLock:
		return sess.handleReadLock(m, sp)
	case *protocol.WriteLock:
		return sess.handleWriteLock(m, sp)
	case *protocol.ReadUnlock:
		return &protocol.Ack{}
	case *protocol.WriteUnlock:
		return sess.handleWriteUnlock(m, sp)
	case *protocol.Resume:
		return sess.handleResume(m)
	case *protocol.Subscribe:
		return sess.handleSubscribe(m)
	case *protocol.Unsubscribe:
		return sess.handleUnsubscribe(m)
	case *protocol.TxCommit:
		return sess.handleTxCommit(m, sp)
	default:
		return errReply(protocol.CodeBadRequest, "unexpected message %T", msg)
	}
}

func (sess *session) handleOpen(m *protocol.OpenSegment) protocol.Message {
	s := sess.srv
	var st *segState
	created := false
	if m.Create {
		st, created = s.reg.getOrCreate(m.Name, s.newSegState)
	} else {
		var ok bool
		st, ok = s.reg.get(m.Name)
		if !ok {
			return errReply(protocol.CodeNoSegment, "no segment %q", m.Name)
		}
	}
	s.lockSeg(st)
	defer st.mu.Unlock()
	if err := s.ensureResident(st); err != nil {
		return errReply(protocol.CodeInternal, "%v", err)
	}
	return &protocol.OpenReply{
		Created: created,
		Version: st.seg.Version,
		Dir:     st.seg.Directory(),
	}
}

// freshnessReply decides whether the client needs an update and
// builds the LockReply. Called with st.mu held. The span, when
// non-nil, parents a "server.freshness" child (result attr:
// fresh/diff/error) and, when a diff is served, a
// "server.diff_collect" child.
func freshnessReply(st *segState, sess *session, haveVer uint32, policy coherence.Policy, sp *obs.Span) protocol.Message {
	fsp := sp.Child("server.freshness")
	seg := st.seg
	unitsModified := 0
	if policy.Model == coherence.ModelDiff {
		if sub, ok := st.subs[sess]; ok && sub.haveVersion == haveVer {
			unitsModified = sub.unitsSince
		} else {
			unitsModified = seg.UnitsModifiedSince(haveVer)
		}
	}
	ins := sess.srv.ins
	if !policy.ShouldUpdate(haveVer, seg.Version, unitsModified, seg.TotalUnits()) {
		if ins != nil {
			ins.versionFresh.Inc()
		}
		fsp.Attr("result", "fresh")
		fsp.End()
		return &protocol.LockReply{Fresh: true}
	}
	var start time.Time
	if ins != nil {
		start = time.Now()
	}
	csp := fsp.Child("server.diff_collect")
	d, err := seg.CollectDiff(haveVer)
	if err != nil {
		if csp != nil {
			csp.Error(err)
			csp.End()
			fsp.Attr("result", "error")
			fsp.End()
		}
		return errReply(protocol.CodeInternal, "collecting diff: %v", err)
	}
	csp.End()
	if d == nil {
		if ins != nil {
			ins.versionFresh.Inc()
		}
		fsp.Attr("result", "fresh")
		fsp.End()
		return &protocol.LockReply{Fresh: true}
	}
	if fsp != nil {
		fsp.Attr("result", "diff")
		fsp.AttrInt("bytes", int64(d.DataBytes()))
		fsp.End()
	}
	if ins != nil {
		ins.collectSec.ObserveSince(start)
		ins.versionDiff.Inc()
		ins.diffSize.Observe(float64(d.DataBytes()))
		ins.diffBytes.Add(uint64(d.DataBytes()))
		ins.unitsSent.Add(uint64(d.Units()))
		ins.unitsFull.Add(uint64(seg.TotalUnits()))
	}
	// The client is now current: refresh its subscription state.
	if sub, ok := st.subs[sess]; ok {
		sub.haveVersion = seg.Version
		sub.unitsSince = 0
		sub.notified = false
	}
	return &protocol.LockReply{Diff: d}
}

func (sess *session) handleReadLock(m *protocol.ReadLock, sp *obs.Span) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	s.lockSeg(st)
	defer st.mu.Unlock()
	if err := s.ensureResident(st); err != nil {
		return errReply(protocol.CodeInternal, "%v", err)
	}
	reply := freshnessReply(st, sess, m.HaveVersion, m.Policy, sp)
	if lr, ok := reply.(*protocol.LockReply); ok && lr.Fresh {
		if sub, subbed := st.subs[sess]; subbed {
			sub.notified = false
		}
	}
	return reply
}

func (sess *session) handleWriteLock(m *protocol.WriteLock, sp *obs.Span) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	sess.touch(st)
	s.lockSeg(st)
	if st.writer == sess {
		st.mu.Unlock()
		return errReply(protocol.CodeLockState, "write lock already held")
	}
	var queuedAt time.Time
	if s.ins != nil {
		queuedAt = time.Now()
	}
	// The queue-wait span exists only when the lock was actually
	// contended, so uncontended grants stay span-free.
	var qsp *obs.Span
	if st.writer != nil {
		qsp = sp.Child("server.queue_wait")
	}
	for st.writer != nil {
		if sess.gone() {
			st.mu.Unlock()
			qsp.End()
			return errSessionClosed()
		}
		w := &waiter{sess: sess, ch: make(chan struct{})}
		st.waiters = append(st.waiters, w)
		st.mu.Unlock()
		select {
		case <-w.ch:
		case <-s.done:
			qsp.End()
			return errReply(protocol.CodeInternal, "server shutting down")
		}
		s.lockSeg(st)
		if st.writer == sess {
			break // the releaser handed the lock directly to us
		}
		// Our wait was cancelled (session teardown raced); try again.
	}
	qsp.End()
	st.writer = sess
	if sess.gone() {
		// Teardown raced the grant: give the lock straight back.
		releaseWriter(st, sess)
		st.mu.Unlock()
		return errSessionClosed()
	}
	if s.ins != nil {
		s.ins.lockWait.ObserveSince(queuedAt)
	}
	// Ownership may have moved while we were queued (a migration runs
	// under this same write-lock barrier): re-check before granting,
	// or the client would commit against a stale owner.
	if red := s.redirectFor(m.Seg); red != nil {
		releaseWriter(st, sess)
		st.mu.Unlock()
		return red
	}
	if err := s.ensureResident(st); err != nil {
		releaseWriter(st, sess)
		st.mu.Unlock()
		return errReply(protocol.CodeInternal, "%v", err)
	}
	// A writer always works against the current version.
	reply := freshnessReply(st, sess, m.HaveVersion, coherence.Full(), sp)
	if _, isErr := reply.(*protocol.ErrorReply); isErr {
		releaseWriter(st, sess)
	}
	st.mu.Unlock()
	return reply
}

// releaseWriter releases sess's write lock, handing it directly to
// the first queued waiter. The direct handoff makes the queue truly
// FIFO: the lock never appears free while waiters exist, so a late
// arrival cannot barge in front of them. Called with st.mu held.
func releaseWriter(st *segState, sess *session) {
	if st.writer != sess {
		return
	}
	if len(st.waiters) > 0 {
		next := st.waiters[0]
		st.waiters = st.waiters[1:]
		st.writer = next.sess
		close(next.ch)
		return
	}
	st.writer = nil
}

func (sess *session) handleWriteUnlock(m *protocol.WriteUnlock, sp *obs.Span) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	s.lockSeg(st)
	if m.WriterID != "" {
		if ap, ok := st.applied[m.WriterID]; ok && ap.seq == m.Seq {
			// A retry of a release whose reply was lost: the diff is
			// already in, so answer from the record without touching
			// the segment. The retry arrives on a fresh session, which
			// may meanwhile have reacquired the lock — release it.
			releaseWriter(st, sess)
			st.mu.Unlock()
			return &protocol.VersionReply{Version: ap.version}
		}
	}
	if st.writer != sess {
		st.mu.Unlock()
		return errReply(protocol.CodeLockState, "write lock not held")
	}
	if s.opts.GroupCommit {
		// Backpressure: a full pending batch makes the release wait
		// (before applying) until the flusher takes a batch. The
		// condition wait releases the mutex, so re-verify the write
		// lock — a session teardown may have stripped it meanwhile.
		s.waitGroupCommitRoom(st)
		if st.writer != sess {
			st.mu.Unlock()
			return errReply(protocol.CodeLockState, "write lock not held")
		}
	}
	// The writer fence means the image cannot have been evicted since
	// WriteLock faulted it in; this call is defensive and stamps
	// lastTouch for the eviction LRU clock.
	if err := s.ensureResident(st); err != nil {
		releaseWriter(st, sess)
		st.mu.Unlock()
		return errReply(protocol.CodeInternal, "%v", err)
	}
	prevVer := st.seg.Version
	version := prevVer
	var notifications []func()
	if m.Diff != nil && !m.Diff.Empty() {
		var start time.Time
		if s.ins != nil {
			start = time.Now()
		}
		asp := sp.Child("server.diff_apply")
		newVer, modified, err := st.seg.ApplyDiff(m.Diff)
		if err != nil {
			if asp != nil {
				asp.Error(err)
				asp.End()
			}
			releaseWriter(st, sess)
			st.mu.Unlock()
			return errReply(protocol.CodeBadRequest, "applying diff: %v", err)
		}
		if asp != nil {
			asp.AttrInt("units", int64(modified))
			asp.End()
		}
		if s.ins != nil {
			s.ins.applySec.ObserveSince(start)
			s.ins.applyUnits.Add(uint64(modified))
		}
		version = newVer
		notifications = updateSubscribers(st, sess, newVer, modified)
	}
	if m.WriterID != "" {
		st.applied[m.WriterID] = appliedWrite{seq: m.Seq, version: version}
	}
	if s.opts.GroupCommit && version != prevVer {
		// Group mode: hand the lock off now and let the segment's
		// flusher journal, replicate, and notify for the whole batch
		// at once (groupcommit.go); unlocks st.mu.
		return sess.finishReleaseGrouped(st, m.Seg, prevVer, version, notifications)
	}
	// Journal the release before replication and before the reply
	// (DESIGN.md §9): an acknowledged write must already be on disk.
	// The segment mutex is dropped for the file append — the logical
	// write lock keeps the version sequence frozen, so record order
	// matches version order. A failed append fails the release (the
	// diff stays applied, exactly like a failed fan-out: the client
	// was told the release failed and retries are deduped).
	var jerr error
	if s.journal != nil && version != prevVer && m.Diff != nil {
		rep := &protocol.Replicate{
			Seg:         m.Seg,
			PrevVersion: prevVer,
			Version:     version,
			Diff:        m.Diff,
			Applied:     entriesFromApplied(st.applied),
		}
		st.mu.Unlock()
		jerr = s.journalAppend(st, rep)
		if jerr == nil {
			s.maybeCompactJournal(st)
		}
		s.lockSeg(st)
	}
	var replErr error
	if job := s.replicationJob(st, m.Seg, prevVer, version, m.Diff); jerr == nil && job != nil {
		// Replicate before releasing the write lock and before
		// replying: the logical write lock keeps the version sequence
		// frozen during the fan-out (the segment mutex is dropped — the
		// fan-out does network I/O), and replicate-before-reply means
		// any release the client saw acknowledged survives a primary
		// death (every placed replica already holds both the diff and
		// the at-most-once record). A fan-out that cannot reach that
		// state fails the release instead of acknowledging it.
		st.mu.Unlock()
		replErr = s.runReplication(job)
		s.lockSeg(st)
	}
	releaseWriter(st, sess)
	st.mu.Unlock()
	if s.ins != nil && len(notifications) > 0 {
		s.ins.notifications.Add(uint64(len(notifications)))
	}
	if len(notifications) > 0 {
		nsp := sp.Child("server.notify_fanout")
		if nsp != nil {
			nsp.AttrInt("subscribers", int64(len(notifications)))
		}
		for _, n := range notifications {
			n()
		}
		nsp.End()
	}
	if jerr != nil {
		return errReply(protocol.CodeInternal, "release of %q not journaled: %v", m.Seg, jerr)
	}
	if replErr != nil {
		if errors.Is(replErr, errWriteFenced) {
			return errReply(protocol.CodeNotOwner, "release of %q fenced: %v", m.Seg, replErr)
		}
		return errReply(protocol.CodeNotReplicated, "release of %q not replicated: %v", m.Seg, replErr)
	}
	return &protocol.VersionReply{Version: version}
}

// handleResume answers a client probing the fate of a write release
// it sent on a connection that died: whether (WriterID, Seq) was
// applied, at which version, and where the segment stands now.
func (sess *session) handleResume(m *protocol.Resume) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	s.lockSeg(st)
	defer st.mu.Unlock()
	// A resume probe is answered from the stub without faulting the
	// segment in: the current version and the applied-writer table
	// both survive eviction in memory.
	rr := &protocol.ResumeReply{CurrentVersion: st.residentVersionLocked()}
	if ap, ok := st.applied[m.WriterID]; ok && ap.seq == m.Seq {
		rr.Applied = true
		rr.AppliedVersion = ap.version
	}
	return rr
}

// updateSubscribers advances subscription counters after a new
// version and returns the notification sends to perform once the
// segment lock is released. Called with st.mu held.
func updateSubscribers(st *segState, writer *session, newVer uint32, modified int) []func() {
	var out []func()
	seg := st.seg
	for cl, sub := range st.subs {
		if cl == writer {
			// The writer's copy is the new version by construction.
			sub.haveVersion = newVer
			sub.unitsSince = 0
			sub.notified = false
			continue
		}
		sub.unitsSince += modified
		if sub.notified {
			continue
		}
		if sub.policy.ShouldUpdate(sub.haveVersion, newVer, sub.unitsSince, seg.TotalUnits()) {
			sub.notified = true
			target, name := cl, st.name
			out = append(out, func() {
				// Never blocks: a slow consumer is shed, not buffered
				// (DESIGN.md §10).
				target.sendNotify(&protocol.Notify{Seg: name, Version: newVer})
			})
		}
	}
	return out
}

func (sess *session) handleSubscribe(m *protocol.Subscribe) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	if err := m.Policy.Validate(); err != nil {
		return errReply(protocol.CodeBadRequest, "%v", err)
	}
	sess.touch(st)
	s.lockSeg(st)
	defer st.mu.Unlock()
	if sess.gone() {
		return errSessionClosed()
	}
	st.subs[sess] = &subState{policy: m.Policy, haveVersion: m.HaveVersion}
	return &protocol.Ack{}
}

func (sess *session) handleUnsubscribe(m *protocol.Unsubscribe) protocol.Message {
	s := sess.srv
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	s.lockSeg(st)
	defer st.mu.Unlock()
	delete(st.subs, sess)
	return &protocol.Ack{}
}

// UnitsModifiedSince counts units in subblocks newer than ver — the
// exact form of the diff-coherence bookkeeping, used when no
// subscription counter is available.
func (s *Segment) UnitsModifiedSince(ver uint32) int {
	if ver >= s.Version {
		return 0
	}
	n := 0
	for e := s.head.next; e != s.tail; e = e.next {
		b := e.blk
		if b == nil || b.version <= ver {
			continue
		}
		units := b.Units()
		for sb, sv := range b.subVer {
			if sv <= ver {
				continue
			}
			u0 := sb * SubblockUnits
			u1 := u0 + SubblockUnits
			if u1 > units {
				u1 = units
			}
			n += u1 - u0
		}
	}
	return n
}

// SegmentSnapshot exposes a segment for tools and tests. It returns
// nil when the segment does not exist. Taking the segment lock
// establishes a happens-before edge with every mutation that
// completed before the call; the caller must not race the returned
// segment against concurrent writers.
func (s *Server) SegmentSnapshot(name string) *Segment {
	st, ok := s.reg.get(name)
	if !ok {
		return nil
	}
	st.mu.Lock()
	if err := s.ensureResident(st); err != nil {
		s.logf("snapshot %s: fault-in: %v", name, err)
		st.mu.Unlock()
		return nil
	}
	seg := st.seg
	st.mu.Unlock()
	return seg
}

// CreateSegment pre-creates a segment (tools, tests, restore).
func (s *Server) CreateSegment(name string) (*Segment, error) {
	st, created := s.reg.getOrCreate(name, s.newSegState)
	if !created {
		return nil, fmt.Errorf("server: segment %q exists", name)
	}
	return st.seg, nil
}

// SegmentNames lists the segments the server manages.
func (s *Server) SegmentNames() []string {
	return s.reg.names()
}
