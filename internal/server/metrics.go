package server

import (
	"fmt"
	"strings"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Server-side metric names; OBSERVABILITY.md documents each one and
// maps it to its paper figure or DESIGN.md section.
const (
	smRPCSeconds        = "iw_server_rpc_seconds"
	smRPCErrors         = "iw_server_rpc_errors_total"
	smLockWait          = "iw_server_lock_wait_seconds"
	smSegLockContention = "iw_server_seg_lock_contention_total"
	smVersionChecks     = "iw_server_version_checks_total"
	smCollectSeconds    = "iw_server_diff_collect_seconds"
	smApplySeconds      = "iw_server_diff_apply_seconds"
	smDiffBytes         = "iw_server_diff_bytes_total"
	smDiffSize          = "iw_server_diff_size_bytes"
	smUnitsSent         = "iw_server_units_sent_total"
	smUnitsFull         = "iw_server_units_full_total"
	smApplyUnits        = "iw_server_apply_units_total"
	smNotifications     = "iw_server_notifications_total"
	smCheckpointSeconds = "iw_server_checkpoint_seconds"
	smCheckpointErrors  = "iw_server_checkpoint_errors_total"
	smSessions          = "iw_server_sessions"
	smProxySessions     = "iw_server_proxy_sessions"
	smConns             = "iw_server_conns"
	smSessionsOpened    = "iw_server_sessions_opened_total"
	smSessionsEvicted   = "iw_server_sessions_evicted_total"
	smSessionsRefused   = "iw_server_sessions_refused_total"
	smShed              = "iw_server_shed_total"
	smGroupCommits      = "iw_server_group_commits_total"
	smGroupCommitted    = "iw_server_group_commit_releases_total"
	smJournalAppends    = "iw_server_journal_appends_total"
	smJournalAppendSec  = "iw_server_journal_append_seconds"
	smJournalDiskBytes  = "iw_server_journal_disk_bytes"
	smUptime            = "iw_server_uptime_seconds"
	smJournalReplayed   = "iw_server_journal_replayed_total"
	smJournalCompacts   = "iw_server_journal_compactions_total"
	smJournalTruncated  = "iw_server_journal_truncated_tail_total"
	smSegVersion        = "iw_server_segment_version"
	smSegBlocks         = "iw_server_segment_blocks"
	smSegUnits          = "iw_server_segment_units"
	smSegSubscribers    = "iw_server_segment_subscribers"
	smSegWaiters        = "iw_server_segment_waiters"
	smSegCacheHits      = "iw_server_segment_cache_hits"
	smSegsResident      = "iw_server_segments_resident"
	smResidentBytes     = "iw_server_resident_bytes"
	smSegEvictions      = "iw_server_segment_evictions_total"
	smSegFaults         = "iw_server_segment_faults_total"
	smSegFaultSec       = "iw_server_segment_fault_seconds"
)

// serverInstruments holds the server's metric handles. nil disables
// instrumentation (no clocks, no atomics), mirroring the client.
type serverInstruments struct {
	reg *obs.Registry

	lockWait          *obs.Histogram
	segLockContention *obs.Counter
	versionFresh      *obs.Counter
	versionDiff       *obs.Counter
	collectSec        *obs.Histogram
	applySec          *obs.Histogram
	diffSize          *obs.Histogram
	diffBytes         *obs.Counter
	unitsSent         *obs.Counter
	unitsFull         *obs.Counter
	applyUnits        *obs.Counter
	notifications     *obs.Counter
	ckptSec           *obs.Histogram
	ckptErrors        *obs.Counter
	sessions          *obs.Gauge
	proxySessions     *obs.Gauge
	conns             *obs.Gauge

	sessionsOpened  *obs.Counter
	sessionsEvicted *obs.Counter
	sessionsRefused *obs.Counter
	shed            *obs.Counter
	groupCommits    *obs.Counter
	groupCommitted  *obs.Counter

	journalAppends       *obs.Counter
	journalAppendSec     *obs.Histogram
	journalReplayStartup *obs.Counter
	journalReplayCatchup *obs.Counter
	journalCompactions   *obs.Counter
	journalTruncatedTail *obs.Counter

	segEvictions *obs.Counter
	segFaults    *obs.Counter
	segFaultSec  *obs.Histogram
}

func newServerInstruments(reg *obs.Registry) *serverInstruments {
	return &serverInstruments{
		reg: reg,
		lockWait: reg.Histogram(smLockWait,
			"Time a writer spent queued for a segment's write lock before the grant.",
			obs.DurationBuckets),
		segLockContention: reg.Counter(smSegLockContention,
			"Segment-mutex acquisitions that found the mutex held and had to block (DESIGN.md §8); a high rate against one segment means its handlers contend, not the server."),
		versionFresh: reg.Counter(smVersionChecks,
			"Lock-acquisition freshness checks, by outcome: the client was current (fresh) or needed a diff.",
			obs.L("result", "fresh")),
		versionDiff: reg.Counter(smVersionChecks,
			"Lock-acquisition freshness checks, by outcome: the client was current (fresh) or needed a diff.",
			obs.L("result", "diff")),
		collectSec: reg.Histogram(smCollectSeconds,
			"Server-side diff collection time per lock reply (Figure 5, sv collect).",
			obs.DurationBuckets),
		applySec: reg.Histogram(smApplySeconds,
			"Server-side diff application time per write release (Figure 5, sv apply).",
			obs.DurationBuckets),
		diffSize: reg.Histogram(smDiffSize,
			"Per-reply wire payload size of served diffs.",
			obs.SizeBuckets),
		diffBytes: reg.Counter(smDiffBytes,
			"Wire payload bytes of diff runs served to clients (Figure 7 bandwidth)."),
		unitsSent: reg.Counter(smUnitsSent,
			"Primitive units shipped in served diffs."),
		unitsFull: reg.Counter(smUnitsFull,
			"Primitive units a full transfer would have shipped per served diff; sent/full is the diffing savings."),
		applyUnits: reg.Counter(smApplyUnits,
			"Primitive units modified by applied write releases (subblock-rounded)."),
		notifications: reg.Counter(smNotifications,
			"Invalidation notifications pushed to subscribed clients."),
		ckptSec: reg.Histogram(smCheckpointSeconds,
			"Wall time of a full checkpoint pass over every segment.",
			obs.DurationBuckets),
		ckptErrors: reg.Counter(smCheckpointErrors,
			"Checkpoint passes that failed."),
		sessions: reg.Gauge(smSessions,
			"Currently open logical client sessions (a multiplexed connection carries many)."),
		proxySessions: reg.Gauge(smProxySessions,
			"Sessions introduced by ProxyHello (read fan-out proxies); exempt from MaxSessions admission."),
		conns: reg.Gauge(smConns,
			"Currently accepted TCP connections; sessions/conns is the multiplexing ratio."),
		sessionsOpened: reg.Counter(smSessionsOpened,
			"Logical sessions admitted since start."),
		sessionsEvicted: reg.Counter(smSessionsEvicted,
			"Logical sessions evicted by the server (slow consumers shed, stuck connections)."),
		sessionsRefused: reg.Counter(smSessionsRefused,
			"Session creations refused by admission control (Options.MaxSessions reached, CodeOverloaded)."),
		shed: reg.Counter(smShed,
			"Notifications shed because the subscriber's session queue bound or the connection queue was full; every shed evicts the subscriber (DESIGN.md §10)."),
		groupCommits: reg.Counter(smGroupCommits,
			"Group-commit flushes: one merged journal append + Replicate + notification fan-out covering a batch of releases."),
		groupCommitted: reg.Counter(smGroupCommitted,
			"Releases committed through a group-commit batch; releases/flushes is the coalescing factor."),
		journalAppends: reg.Counter(smJournalAppends,
			"Replicate records appended to segment journals (one per committed write, before its acknowledgement)."),
		journalAppendSec: reg.Histogram(smJournalAppendSec,
			"Per-record journal append time, encode through write; the journal_append SLO objective watches this for disk stalls.",
			obs.DurationBuckets),
		journalReplayStartup: reg.Counter(smJournalReplayed,
			journalReplayHelp, obs.L("source", "startup")),
		journalReplayCatchup: reg.Counter(smJournalReplayed,
			journalReplayHelp, obs.L("source", "catchup")),
		journalCompactions: reg.Counter(smJournalCompacts,
			"Segment journals folded into a fresh checkpoint base (log truncated)."),
		journalTruncatedTail: reg.Counter(smJournalTruncated,
			"Journal loads that found and dropped a torn or CRC-failing tail record."),
		segEvictions: reg.Counter(smSegEvictions,
			"Cold-segment evictions: in-memory images dropped after a forced compaction, leaving a journal-backed stub (DESIGN.md §12)."),
		segFaults: reg.Counter(smSegFaults,
			"Evicted segments faulted back in from the journal on a touch."),
		segFaultSec: reg.Histogram(smSegFaultSec,
			"Fault-in time per evicted segment: base decode plus tail replay.",
			obs.DurationBuckets),
	}
}

// journalReplayHelp documents both label values of the replay counter.
const journalReplayHelp = "Journal records replayed, by consumer: segment recovery at startup, or replica catch-up served from the journal window."

// rpcSeconds returns the handling-latency histogram for one RPC kind.
// Registry get-or-create is internally locked, so sessions may race
// here freely.
func (si *serverInstruments) rpcSeconds(rpc string) *obs.Histogram {
	return si.reg.Histogram(smRPCSeconds,
		"Request handling time by protocol message kind, including any lock queueing.",
		obs.DurationBuckets, obs.L("rpc", rpc))
}

// rpcErrors returns the error counter for one RPC kind.
func (si *serverInstruments) rpcErrors(rpc string) *obs.Counter {
	return si.reg.Counter(smRPCErrors,
		"Requests answered with an ErrorReply, by protocol message kind.",
		obs.L("rpc", rpc))
}

// reqName is the metric label for a protocol message: the type's
// short name, e.g. "WriteUnlock".
func reqName(m protocol.Message) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", m), "*protocol.")
}

// collectServerGauges emits the scrape-time gauges — server uptime
// plus the per-segment set — so no continuous bookkeeping is needed.
// It takes one segment lock at a time, in registry order; journal
// sizes are read outside the segment lock (the journal has its own).
func (s *Server) collectServerGauges(emit obs.GaugeEmit) {
	emit(smUptime, "Seconds since this server was constructed.", time.Since(s.start).Seconds())
	var residentSegs, residentBytes int64
	for _, st := range s.reg.snapshot() {
		s.lockSeg(st)
		l := obs.L("seg", st.name)
		emit(smSegVersion, "Current version of each segment.", float64(st.residentVersionLocked()), l)
		emit(smSegSubscribers, "Clients subscribed to each segment's notifications.", float64(len(st.subs)), l)
		emit(smSegWaiters, "Writers queued for each segment's write lock.", float64(len(st.waiters)), l)
		// The block/unit/cache gauges describe the in-memory image and
		// are skipped for evicted segments rather than emitted as
		// misleading zeros; a scrape never faults a segment in.
		if st.seg != nil {
			residentSegs++
			residentBytes += st.seg.MemBytes()
			emit(smSegBlocks, "Blocks in each segment.", float64(st.seg.NumBlocks()), l)
			emit(smSegUnits, "Primitive units in each segment.", float64(st.seg.TotalUnits()), l)
			emit(smSegCacheHits, "Diff-cache hits served from each segment's cached diff window.", float64(st.seg.CacheHits()), l)
		}
		st.mu.Unlock()
		if s.journal != nil {
			if jl, err := s.journal.Segment(st.name); err == nil {
				emit(smJournalDiskBytes, "On-disk byte length of each segment's journal log (drops to ~0 after compaction).", float64(jl.Size()), l)
			}
		}
	}
	emit(smSegsResident, "Segments whose in-memory image is resident (not evicted to the journal).", float64(residentSegs))
	emit(smResidentBytes, "Estimated heap footprint of all resident segment images; the evictor keeps this under Options.MaxResidentBytes.", float64(residentBytes))
}

// SegmentDebug is one segment's entry in the /debug/segments JSON
// snapshot.
type SegmentDebug struct {
	Name           string `json:"name"`
	Version        uint32 `json:"version"`
	Blocks         int    `json:"blocks"`
	Units          int    `json:"units"`
	Descriptors    int    `json:"descriptors"`
	Subscribers    int    `json:"subscribers"`
	WriterHeld     bool   `json:"writer_held"`
	Waiters        int    `json:"waiters"`
	AppliedWriters int    `json:"applied_writers"`
	// Sessions counts the distinct sessions currently attached to the
	// segment: subscribers, queued writers, and the lock holder.
	Sessions int `json:"sessions"`
	// CacheHits is the segment's cumulative diff-cache hit count.
	CacheHits uint64 `json:"cache_hits"`
	// PendingReleases is the group-commit batch currently waiting for
	// the segment's flusher.
	PendingReleases int `json:"pending_releases"`
	// GroupFlushes and GroupReleases are the segment's cumulative
	// group-commit flush and coalesced-release counts;
	// releases/flushes is the segment's coalescing factor.
	GroupFlushes  uint64 `json:"group_flushes"`
	GroupReleases uint64 `json:"group_releases"`
	// JournalBytes is the on-disk length of the segment's journal
	// log, zero when the server is not in journal mode.
	JournalBytes int64 `json:"journal_bytes"`
	// Resident reports whether the segment's in-memory image is
	// loaded; false means it was evicted to its journal and will
	// fault back in on the next touch (DESIGN.md §12).
	Resident bool `json:"resident"`
	// MemBytes is the estimated heap footprint of the resident image,
	// zero while evicted.
	MemBytes int64 `json:"mem_bytes"`
}

// DebugSegments snapshots per-segment state for the /debug/segments
// endpoint and for tests, sorted by segment name.
func (s *Server) DebugSegments() []SegmentDebug {
	sts := s.reg.snapshot()
	out := make([]SegmentDebug, 0, len(sts))
	for _, st := range sts {
		s.lockSeg(st)
		attached := make(map[*session]struct{}, len(st.subs)+len(st.waiters)+1)
		for cl := range st.subs {
			attached[cl] = struct{}{}
		}
		for _, w := range st.waiters {
			attached[w.sess] = struct{}{}
		}
		if st.writer != nil {
			attached[st.writer] = struct{}{}
		}
		sd := SegmentDebug{
			Name:            st.name,
			Version:         st.residentVersionLocked(),
			Subscribers:     len(st.subs),
			WriterHeld:      st.writer != nil,
			Waiters:         len(st.waiters),
			AppliedWriters:  len(st.applied),
			Sessions:        len(attached),
			PendingReleases: len(st.pending),
			GroupFlushes:    st.gcFlushes,
			GroupReleases:   st.gcReleases,
			Resident:        st.seg != nil,
		}
		// Image-shape fields describe the resident copy; a debug
		// snapshot never faults a segment in.
		if st.seg != nil {
			sd.Blocks = st.seg.NumBlocks()
			sd.Units = st.seg.TotalUnits()
			sd.Descriptors = len(st.seg.DescSerials())
			sd.CacheHits = st.seg.CacheHits()
			sd.MemBytes = st.seg.MemBytes()
		}
		st.mu.Unlock()
		if s.journal != nil {
			if jl, err := s.journal.Segment(st.name); err == nil {
				sd.JournalBytes = jl.Size()
			}
		}
		out = append(out, sd)
	}
	return out
}
