package server

import (
	"sort"

	"interweave/internal/types"
	"interweave/internal/wire"
)

// Unit-accurate merging of cached diffs. When a client lags several
// versions and every intervening diff is still in the cache, the
// server can answer with the union of those diffs — keeping only the
// latest data for each primitive unit — instead of falling back to
// subblock-granularity collection. Under relaxed coherence this is
// what makes Delta-x cheaper than syncing at every version: a unit
// modified in each of x versions travels once, exactly.

// mergeCachedDiffs builds a merged diff for a client at sinceVer from
// cached per-version diffs, reporting ok=false when any needed
// version is missing from the cache (or a cached diff fails to
// decode).
func (s *Segment) mergeCachedDiffs(sinceVer uint32) (*wire.SegmentDiff, bool) {
	if sinceVer >= s.Version {
		return nil, false
	}
	span := int(s.Version - sinceVer)
	if span > s.cacheCap {
		return nil, false
	}
	diffs := make([]*wire.SegmentDiff, 0, span)
	for v := sinceVer + 1; v <= s.Version; v++ {
		enc, ok := s.diffCache[v]
		if !ok {
			return nil, false
		}
		d, err := wire.UnmarshalSegmentDiff(enc)
		if err != nil {
			return nil, false
		}
		diffs = append(diffs, d)
	}
	if len(diffs) == 1 {
		return diffs[0], true
	}

	out := &wire.SegmentDiff{Version: s.Version}

	// Blocks freed anywhere in the window are dead at the end of it
	// (serials are never reused); suppress their creation and data.
	freed := make(map[uint32]bool)
	for _, d := range diffs {
		for _, serial := range d.Freed {
			freed[serial] = true
		}
	}
	for serial := range freed {
		out.Freed = append(out.Freed, serial)
	}
	sort.Slice(out.Freed, func(i, j int) bool { return out.Freed[i] < out.Freed[j] })

	descSeen := make(map[uint32]bool)
	for _, d := range diffs {
		for _, dd := range d.Descs {
			if descSeen[dd.Serial] {
				continue
			}
			descSeen[dd.Serial] = true
			out.Descs = append(out.Descs, dd)
		}
		for _, nb := range d.News {
			if freed[nb.Serial] {
				continue
			}
			out.News = append(out.News, nb)
		}
	}

	// Overlay run data per block, last version wins per unit.
	type overlay struct {
		serial uint32
		units  map[int][]byte // unit -> exact wire encoding
	}
	var order []uint32
	overlays := make(map[uint32]*overlay)
	for _, d := range diffs {
		for i := range d.Blocks {
			bd := &d.Blocks[i]
			if freed[bd.Serial] {
				continue
			}
			blk, ok := s.blocks.Get(bd.Serial)
			if !ok {
				// Unknown live block: a cached diff is inconsistent
				// with the store; fall back to subblock collection.
				return nil, false
			}
			ov := overlays[bd.Serial]
			if ov == nil {
				ov = &overlay{serial: bd.Serial, units: make(map[int][]byte)}
				overlays[bd.Serial] = ov
				order = append(order, bd.Serial)
			}
			for _, run := range bd.Runs {
				if !splitRunUnits(blk, run, ov.units) {
					return nil, false
				}
			}
		}
	}

	for _, serial := range order {
		ov := overlays[serial]
		units := make([]int, 0, len(ov.units))
		for u := range ov.units {
			units = append(units, u)
		}
		sort.Ints(units)
		bd := wire.BlockDiff{Serial: serial}
		i := 0
		for i < len(units) {
			j := i
			var data []byte
			for j < len(units) && units[j] == units[i]+(j-i) {
				data = append(data, ov.units[units[j]]...)
				j++
			}
			bd.Runs = append(bd.Runs, wire.Run{
				Start: uint32(units[i]),
				Count: uint32(j - i),
				Data:  data,
			})
			i = j
		}
		out.Blocks = append(out.Blocks, bd)
	}
	return out, true
}

// splitRunUnits decodes one run into per-unit wire encodings,
// overwriting earlier versions' entries.
func splitRunUnits(b *Blk, run wire.Run, units map[int][]byte) bool {
	r := wire.NewReader(run.Data)
	eu := b.elemUnits()
	u0 := int(run.Start)
	u1 := u0 + int(run.Count)
	if u1 > b.Units() {
		return false
	}
	for u := u0; u < u1; u++ {
		var enc []byte
		switch b.kinds[u%eu] {
		case types.KindChar:
			enc = r.Take(1)
		case types.KindInt16:
			enc = r.Take(2)
		case types.KindInt32, types.KindFloat32:
			enc = r.Take(4)
		case types.KindInt64, types.KindFloat64:
			enc = r.Take(8)
		case types.KindString, types.KindPointer:
			start := r.Offset()
			n := r.U32()
			if r.Err() != nil || n > uint32(r.Remaining()) {
				return false
			}
			r.Take(int(n))
			// Re-read the whole length-prefixed region as one blob.
			enc = run.Data[start:r.Offset()]
		default:
			return false
		}
		if r.Err() != nil {
			return false
		}
		units[u] = enc
	}
	return r.Err() == nil && r.Remaining() == 0
}
