package server

// Race-hunting stress tests for the per-segment concurrency model
// (DESIGN.md §8). These are written to be run under -race: N writers
// and M readers per segment across K segments, asserting the
// invariants the locking refactor must preserve — per-segment version
// monotonicity, exactly one version bump per applied release, and
// segment isolation (a stalled segment must not delay another
// segment's RPCs).

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// stressClient is a goroutine-safe variant of rawClient: it returns
// errors instead of calling t.Fatal, so worker goroutines can use it.
type stressClient struct {
	conn net.Conn
	next uint32
}

func dialStress(addr string) (*stressClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &stressClient{conn: conn, next: 1}, nil
}

func (c *stressClient) close() { _ = c.conn.Close() }

// call sends one request and reads frames until its reply arrives,
// discarding notifications.
func (c *stressClient) call(m protocol.Message) (protocol.Message, error) {
	id := c.next
	c.next++
	if err := protocol.WriteFrame(c.conn, id, m); err != nil {
		return nil, err
	}
	for {
		gotID, reply, err := protocol.ReadFrame(c.conn)
		if err != nil {
			return nil, err
		}
		if gotID == 0 {
			continue // notification
		}
		if gotID != id {
			return nil, fmt.Errorf("reply id %d, want %d", gotID, id)
		}
		if er, ok := reply.(*protocol.ErrorReply); ok {
			return nil, fmt.Errorf("error reply: %s (code %d)", er.Text, er.Code)
		}
		return reply, nil
	}
}

// TestStressWritersReadersSegments runs N writers × M readers against
// K segments concurrently and checks, per segment:
//
//   - every release that carried a diff bumped the version exactly
//     once — the version numbers handed out across all writers are a
//     permutation of 1..N*rounds;
//   - readers never observe the version move backwards;
//   - the final version equals the number of applied releases.
func TestStressWritersReadersSegments(t *testing.T) {
	const (
		segs    = 4
		writers = 3
		readers = 3
		rounds  = 8
	)
	srv, addr := startTestServer(t, Options{})
	setup := dialRaw(t, addr)
	for k := 0; k < segs; k++ {
		name := fmt.Sprintf("stress/%d", k)
		if reply, _ := setup.call(&protocol.OpenSegment{Name: name, Create: true}); reply == nil {
			t.Fatal("open failed")
		}
		// Seed block serial 1 with 64 ints so writers can modify it.
		if reply, _ := setup.call(&protocol.WriteLock{Seg: name, Policy: coherence.Full()}); reply == nil {
			t.Fatal("seed wlock failed")
		}
		reply, _ := setup.call(&protocol.WriteUnlock{Seg: name, Diff: intsDiff(t, 1, 1, 64, "blk")})
		if _, ok := reply.(*protocol.VersionReply); !ok {
			t.Fatalf("seed unlock reply = %+v", reply)
		}
	}

	type verSeen struct {
		writer  int
		version uint32
	}
	errCh := make(chan error, segs*(writers+readers))
	versions := make([][]verSeen, segs) // filled by writers, guarded by verMu
	var verMu sync.Mutex
	var wg sync.WaitGroup

	for k := 0; k < segs; k++ {
		name := fmt.Sprintf("stress/%d", k)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(k, w int) {
				defer wg.Done()
				c, err := dialStress(addr)
				if err != nil {
					errCh <- err
					return
				}
				defer c.close()
				for r := 0; r < rounds; r++ {
					if _, err := c.call(&protocol.WriteLock{Seg: name, Policy: coherence.Full()}); err != nil {
						errCh <- fmt.Errorf("writer %d/%d wlock: %w", k, w, err)
						return
					}
					val := uint32(w*rounds + r)
					reply, err := c.call(&protocol.WriteUnlock{Seg: name, Diff: runDiff(1, uint32(w), val)})
					if err != nil {
						errCh <- fmt.Errorf("writer %d/%d wunlock: %w", k, w, err)
						return
					}
					vr, ok := reply.(*protocol.VersionReply)
					if !ok {
						errCh <- fmt.Errorf("writer %d/%d unlock reply = %T", k, w, reply)
						return
					}
					verMu.Lock()
					versions[k] = append(versions[k], verSeen{writer: w, version: vr.Version})
					verMu.Unlock()
				}
			}(k, w)
		}
		for m := 0; m < readers; m++ {
			wg.Add(1)
			go func(k, m int) {
				defer wg.Done()
				c, err := dialStress(addr)
				if err != nil {
					errCh <- err
					return
				}
				defer c.close()
				haveVer := uint32(0)
				for r := 0; r < rounds*2; r++ {
					reply, err := c.call(&protocol.ReadLock{Seg: name, HaveVersion: haveVer, Policy: coherence.Full()})
					if err != nil {
						errCh <- fmt.Errorf("reader %d/%d rlock: %w", k, m, err)
						return
					}
					lr, ok := reply.(*protocol.LockReply)
					if !ok {
						errCh <- fmt.Errorf("reader %d/%d rlock reply = %T", k, m, reply)
						return
					}
					if lr.Diff != nil {
						if lr.Diff.Version < haveVer {
							errCh <- fmt.Errorf("reader %d/%d: version went backwards: %d -> %d", k, m, haveVer, lr.Diff.Version)
							return
						}
						haveVer = lr.Diff.Version
					}
					if _, err := c.call(&protocol.ReadUnlock{Seg: name}); err != nil {
						errCh <- fmt.Errorf("reader %d/%d runlock: %w", k, m, err)
						return
					}
				}
			}(k, m)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	for k := 0; k < segs; k++ {
		name := fmt.Sprintf("stress/%d", k)
		// The seed release was version 1; writer releases must be a
		// permutation of 2..writers*rounds+1 — each applied release
		// bumped exactly once, none was lost or double-applied.
		want := writers * rounds
		seen := make(map[uint32]int)
		for _, vs := range versions[k] {
			seen[vs.version]++
		}
		if len(versions[k]) != want {
			t.Errorf("%s: %d release replies, want %d", name, len(versions[k]), want)
		}
		for v := uint32(2); v <= uint32(want+1); v++ {
			if seen[v] != 1 {
				t.Errorf("%s: version %d assigned %d times, want exactly once", name, v, seen[v])
			}
		}
		seg := srv.SegmentSnapshot(name)
		if seg == nil {
			t.Fatalf("%s: no segment", name)
		}
		if got := seg.Version; got != uint32(want+1) {
			t.Errorf("%s: final version = %d, want %d", name, got, want+1)
		}
	}
}

// TestStressNoCrossSegmentBlocking pins segment A's mutex — standing
// in for an arbitrarily slow critical section on A — and asserts an
// RLock against segment B still completes promptly. Under the old
// global server mutex this deadlocked by construction; with
// per-segment locks B's handler never touches A's lock. The 2s bound
// is generous (the RPC completes in microseconds) so a slow CI
// machine cannot flake it, while any reintroduced cross-segment
// dependency hangs the full 2s and fails.
func TestStressNoCrossSegmentBlocking(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	setup := dialRaw(t, addr)
	for _, name := range []string{"iso/a", "iso/b"} {
		if reply, _ := setup.call(&protocol.OpenSegment{Name: name, Create: true}); reply == nil {
			t.Fatal("open failed")
		}
	}
	stA, ok := srv.reg.get("iso/a")
	if !ok {
		t.Fatal("no segState for iso/a")
	}
	stA.mu.Lock()
	type result struct {
		d   time.Duration
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := dialStress(addr)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer c.close()
		start := time.Now()
		_, err = c.call(&protocol.ReadLock{Seg: "iso/b", Policy: coherence.Full()})
		done <- result{d: time.Since(start), err: err}
	}()
	select {
	case r := <-done:
		stA.mu.Unlock()
		if r.err != nil {
			t.Fatal(r.err)
		}
		t.Logf("RLock on iso/b completed in %v while iso/a's lock was held", r.d)
	case <-time.After(2 * time.Second):
		stA.mu.Unlock()
		t.Fatal("RLock on iso/b blocked behind iso/a's segment lock: cross-segment isolation broken")
	}
}

// TestStressContentionMetric synthesizes segment-lock contention
// deterministically — holding the segment's mutex while an RPC for
// the same segment is in flight — and asserts
// iw_server_seg_lock_contention_total counts the collision.
func TestStressContentionMetric(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{Metrics: reg})
	setup := dialRaw(t, addr)
	if reply, _ := setup.call(&protocol.OpenSegment{Name: "cont", Create: true}); reply == nil {
		t.Fatal("open failed")
	}
	st, ok := srv.reg.get("cont")
	if !ok {
		t.Fatal("no segState")
	}
	before := srv.ins.segLockContention.Value()
	st.mu.Lock()
	done := make(chan error, 1)
	go func() {
		c, err := dialStress(addr)
		if err != nil {
			done <- err
			return
		}
		defer c.close()
		_, err = c.call(&protocol.ReadLock{Seg: "cont", Policy: coherence.Full()})
		done <- err
	}()
	// lockSeg counts the failed TryLock before blocking, so the
	// increment is observable while the lock is still held.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ins.segLockContention.Value() == before && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	st.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.ins.segLockContention.Value(); got <= before {
		t.Errorf("contention counter = %d, want > %d", got, before)
	}
	if snap := reg.Snapshot(); snap.Counters["iw_server_seg_lock_contention_total"] == 0 {
		t.Error("iw_server_seg_lock_contention_total missing or zero in registry snapshot")
	}
}
