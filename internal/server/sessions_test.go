package server

// Tests for the session transport (DESIGN.md §10): legacy-framing
// interop, mux session lifecycle and isolation, admission control,
// slow-consumer shedding, and group commit. The shed and stress tests
// are written to be meaningful under -race.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/core"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// muxClient speaks raw multiplexed frames, for driving the server's
// session layer without the client library in the way.
type muxClient struct {
	t    *testing.T
	conn net.Conn
	next uint32
}

func dialMuxRaw(t *testing.T, addr string) *muxClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &muxClient{t: t, conn: conn, next: 1}
}

// call sends one request on the given session and reads frames until
// its reply arrives, discarding pushes.
func (mc *muxClient) call(sid uint32, m protocol.Message) protocol.Message {
	mc.t.Helper()
	id := mc.next
	mc.next++
	if err := protocol.WriteFrameMux(mc.conn, id, m, protocol.TraceContext{}, sid); err != nil {
		mc.t.Fatal(err)
	}
	for {
		gotID, reply, _, gotSID, err := protocol.ReadFrameMux(mc.conn)
		if err != nil {
			mc.t.Fatal(err)
		}
		if gotID == 0 {
			continue // push (Notify or eviction notice)
		}
		if gotID != id || gotSID != sid {
			mc.t.Fatalf("reply (id=%d sid=%d), want (id=%d sid=%d)", gotID, gotSID, id, sid)
		}
		return reply
	}
}

// seedSeg creates a segment with one n-int block (serial 1) so
// writers can modify it with runDiff.
func seedSeg(t *testing.T, addr, name string, n int) {
	t.Helper()
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "seeder", Profile: "x86-32le"})
	if reply, _ := rc.call(&protocol.OpenSegment{Name: name, Create: true}); reply == nil {
		t.Fatal("open failed")
	}
	if reply, _ := rc.call(&protocol.WriteLock{Seg: name, Policy: coherence.Full()}); reply == nil {
		t.Fatal("seed wlock failed")
	}
	reply, _ := rc.call(&protocol.WriteUnlock{Seg: name, Diff: intsDiff(t, 1, 1, n, "blk")})
	if _, ok := reply.(*protocol.VersionReply); !ok {
		t.Fatalf("seed unlock reply = %+v", reply)
	}
}

// TestLegacyFramingInterop runs a pre-mux client (classic WriteFrame
// framing, no session IDs) through the full lock/release/read path on
// a server that is simultaneously carrying multiplexed sessions on
// another connection. The legacy client's behavior must be exactly
// the PR-1 contract — same replies, same ordering — because its
// frames are byte-identical to the pre-mux format (pinned by
// TestMuxSessionZeroByteIdentical in internal/protocol).
func TestLegacyFramingInterop(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	seedSeg(t, addr, "interop/s", 8)

	// Mux traffic in the background on its own connection.
	mux, err := core.DialMux(addr, core.MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	stop := make(chan struct{})
	var muxErrs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		ms, err := mux.NewSession(fmt.Sprintf("mux-%d", i), "x86-32le")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ms *core.MuxSession) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ms.Call(&protocol.ReadLock{Seg: "interop/s", Policy: coherence.Full()}); err != nil {
					muxErrs.Add(1)
					return
				}
				if _, err := ms.Call(&protocol.ReadUnlock{Seg: "interop/s"}); err != nil {
					muxErrs.Add(1)
					return
				}
			}
		}(ms)
	}

	// The legacy client's full happy path, meanwhile.
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "legacy", Profile: "x86-32le"})
	for round := 0; round < 10; round++ {
		reply, _ := rc.call(&protocol.WriteLock{Seg: "interop/s", Policy: coherence.Full()})
		if _, ok := reply.(*protocol.LockReply); !ok {
			t.Fatalf("round %d: write lock reply = %+v", round, reply)
		}
		reply, _ = rc.call(&protocol.WriteUnlock{Seg: "interop/s", Diff: runDiff(1, 0, uint32(round))})
		vr, ok := reply.(*protocol.VersionReply)
		if !ok || vr.Version != uint32(round+2) {
			t.Fatalf("round %d: unlock reply = %+v", round, reply)
		}
		reply, _ = rc.call(&protocol.ReadLock{Seg: "interop/s", HaveVersion: vr.Version, Policy: coherence.Full()})
		if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
			t.Fatalf("round %d: read lock reply = %+v", round, reply)
		}
		rc.mustAck(&protocol.ReadUnlock{Seg: "interop/s"})
	}
	close(stop)
	wg.Wait()
	if n := muxErrs.Load(); n != 0 {
		t.Errorf("mux sessions saw %d errors alongside the legacy client", n)
	}
}

// TestMuxRequiresHello checks that a non-zero session must be created
// by a Hello: any other first frame is refused with CodeNoSession,
// and after the Hello the session works.
func TestMuxRequiresHello(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	seedSeg(t, addr, "hello/s", 8)
	mc := dialMuxRaw(t, addr)

	reply := mc.call(7, &protocol.ReadLock{Seg: "hello/s", Policy: coherence.Full()})
	er, ok := reply.(*protocol.ErrorReply)
	if !ok || er.Code != protocol.CodeNoSession {
		t.Fatalf("pre-Hello reply = %+v, want CodeNoSession", reply)
	}
	if reply := mc.call(7, &protocol.Hello{ClientName: "late", Profile: "x86-32le"}); reply == nil {
		t.Fatal("Hello failed")
	} else if _, ok := reply.(*protocol.ErrorReply); ok {
		t.Fatalf("Hello reply = %+v", reply)
	}
	reply = mc.call(7, &protocol.ReadLock{Seg: "hello/s", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("post-Hello read lock reply = %+v", reply)
	}
}

// TestMuxSessionIsolation checks there is no head-of-line blocking
// across sessions of one connection: while session A sits in a
// write-lock queue, session B on the same connection completes RPCs.
func TestMuxSessionIsolation(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	seedSeg(t, addr, "iso/hot", 8)
	seedSeg(t, addr, "iso/cold", 8)

	holder := dialRaw(t, addr)
	holder.mustAck(&protocol.Hello{ClientName: "holder", Profile: "x86-32le"})
	if reply, _ := holder.call(&protocol.WriteLock{Seg: "iso/hot", Policy: coherence.Full()}); reply == nil {
		t.Fatal("holder wlock failed")
	}

	mux, err := core.DialMux(addr, core.MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	a, err := mux.NewSession("a", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.NewSession("b", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}

	// A queues for the held write lock and blocks.
	aDone := make(chan error, 1)
	go func() {
		_, err := a.Call(&protocol.WriteLock{Seg: "iso/hot", Policy: coherence.Full()})
		aDone <- err
	}()
	select {
	case err := <-aDone:
		t.Fatalf("session A write lock returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// B, on the same connection, must complete a full RPC round.
	if _, err := b.Call(&protocol.ReadLock{Seg: "iso/cold", Policy: coherence.Full()}); err != nil {
		t.Fatalf("session B blocked behind session A: %v", err)
	}
	if _, err := b.Call(&protocol.ReadUnlock{Seg: "iso/cold"}); err != nil {
		t.Fatal(err)
	}

	// Release the lock; A's queued request completes.
	reply, _ := holder.call(&protocol.WriteUnlock{Seg: "iso/hot", Diff: runDiff(1, 0, 42)})
	if _, ok := reply.(*protocol.VersionReply); !ok {
		t.Fatalf("holder unlock reply = %+v", reply)
	}
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatalf("session A write lock after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session A never got the lock")
	}
	if _, err := a.Call(&protocol.WriteUnlock{Seg: "iso/hot", Diff: runDiff(1, 0, 43)}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionAdmissionCap checks Options.MaxSessions: admissions over
// the cap are refused with CodeOverloaded (surfacing as
// core.ErrOverloaded), the refusal is counted, and closing a session
// frees its slot.
func TestSessionAdmissionCap(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{MaxSessions: 2, Metrics: reg})
	mux, err := core.DialMux(addr, core.MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	s1, err := mux.NewSession("one", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mux.NewSession("two", "x86-32le"); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.NewSession("three", "x86-32le"); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("over-cap NewSession error = %v, want ErrOverloaded", err)
	}
	if got := srv.ins.sessionsRefused.Value(); got < 1 {
		t.Errorf("sessions refused = %d, want >= 1", got)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.NewSession("four", "x86-32le"); err != nil {
		t.Fatalf("NewSession after freeing a slot: %v", err)
	}
}

// TestSessionCloseReleasesState checks that SessionClose releases
// everything the session held: its subscription disappears and its
// write lock passes to the next waiter.
func TestSessionCloseReleasesState(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	seedSeg(t, addr, "close/s", 8)

	mux, err := core.DialMux(addr, core.MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	s, err := mux.NewSession("closer", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(&protocol.Subscribe{Seg: "close/s", Policy: coherence.Full()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(&protocol.WriteLock{Seg: "close/s", Policy: coherence.Full()}); err != nil {
		t.Fatal(err)
	}
	if n := segDebug(t, srv, "close/s").Subscribers; n != 1 {
		t.Fatalf("subscribers before close = %d, want 1", n)
	}

	// Another client queues for the same write lock.
	waiterDone := make(chan error, 1)
	go func() {
		c, err := dialStress(addr)
		if err != nil {
			waiterDone <- err
			return
		}
		defer c.close()
		_, err = c.call(&protocol.WriteLock{Seg: "close/s", Policy: coherence.Full()})
		waiterDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	if err := s.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter after session close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write lock never passed to the waiter")
	}
	if n := segDebug(t, srv, "close/s").Subscribers; n != 0 {
		t.Errorf("subscribers after close = %d, want 0", n)
	}
	// The session is gone server-side: its next frame is refused.
	if _, err := s.Call(&protocol.ReadLock{Seg: "close/s", Policy: coherence.Full()}); err == nil {
		t.Error("call on closed session succeeded")
	}
}

func segDebug(t *testing.T, srv *Server, name string) SegmentDebug {
	t.Helper()
	for _, d := range srv.DebugSegments() {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("segment %q not found", name)
	return SegmentDebug{}
}

// TestSlowConsumerShed wedges a connection (big pipelined replies,
// client never reads, small receive buffer) and then publishes to
// subscribers on that connection. The notifications must not block
// the publisher: they are shed and the subscriber sessions evicted,
// counted by iw_server_shed_total / iw_server_sessions_evicted_total.
func TestSlowConsumerShed(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{
		Metrics:          reg,
		SessionSendQueue: 2,
		ConnSendQueue:    4,
		WriteTimeout:     20 * time.Second, // replies wait patiently; notifies never do
	})
	// Big segment: each from-zero ReadLock reply is ~1MB, enough to
	// wedge socket buffers after a few.
	seedSeg(t, addr, "shed/big", 262144)

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	victim := &muxClient{t: t, conn: conn, next: 1}
	const subs = 8
	for sid := uint32(1); sid <= subs; sid++ {
		if reply := victim.call(sid, &protocol.Hello{ClientName: "victim", Profile: "x86-32le"}); reply == nil {
			t.Fatal("hello failed")
		}
		reply := victim.call(sid, &protocol.Subscribe{Seg: "shed/big", Policy: coherence.Full()})
		if _, ok := reply.(*protocol.Ack); !ok {
			t.Fatalf("subscribe reply = %+v", reply)
		}
	}
	// Wedge the connection: pipeline full-content reads and stop
	// reading. The replies fill the socket, then the writer queue,
	// then block their handlers (within WriteTimeout).
	for i := 0; i < 8; i++ {
		id := victim.next
		victim.next++
		err := protocol.WriteFrameMux(conn, id, &protocol.ReadLock{Seg: "shed/big", Policy: coherence.Full()},
			protocol.TraceContext{}, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	// Publish until the fan-out sheds. Releases come from a healthy
	// connection and must keep completing — shedding is what keeps
	// the publisher unblocked.
	writer, err := dialStress(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.close()
	deadline := time.Now().Add(10 * time.Second)
	for srv.ins.shed.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no notification was shed")
		}
		if _, err := writer.call(&protocol.WriteLock{Seg: "shed/big", Policy: coherence.Full()}); err != nil {
			t.Fatalf("publisher write lock: %v", err)
		}
		if _, err := writer.call(&protocol.WriteUnlock{Seg: "shed/big", Diff: runDiff(1, 0, 1)}); err != nil {
			t.Fatalf("publisher write unlock: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.ins.sessionsEvicted.Value(); got < 1 {
		t.Errorf("sessions evicted = %d, want >= 1", got)
	}
}

// TestGroupCommitCoalesces runs contending writers against a
// group-commit server and checks the batching is invisible to
// correctness: every release gets its own version (a permutation of
// 1..N), the data converges, a transaction on the same segment drains
// the batch and commits, and the flush/release counters add up.
func TestGroupCommitCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{GroupCommit: true, GroupCommitMax: 8, Metrics: reg})
	seedSeg(t, addr, "gc/s", 64)
	// The seed release is group-committed too; assert on deltas.
	committed0 := srv.ins.groupCommitted.Value()
	flushes0 := srv.ins.groupCommits.Value()

	const writers = 6
	const rounds = 10
	var mu sync.Mutex
	seen := make(map[uint32]bool)
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := dialStress(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.close()
			for r := 0; r < rounds; r++ {
				if _, err := c.call(&protocol.WriteLock{Seg: "gc/s", Policy: coherence.Full()}); err != nil {
					errCh <- fmt.Errorf("writer %d wlock: %w", w, err)
					return
				}
				reply, err := c.call(&protocol.WriteUnlock{Seg: "gc/s", Diff: runDiff(1, uint32(w), uint32(r))})
				if err != nil {
					errCh <- fmt.Errorf("writer %d wunlock: %w", w, err)
					return
				}
				vr, ok := reply.(*protocol.VersionReply)
				if !ok {
					errCh <- fmt.Errorf("writer %d unlock reply = %T", w, reply)
					return
				}
				mu.Lock()
				if seen[vr.Version] {
					err = fmt.Errorf("version %d acknowledged twice", vr.Version)
				}
				seen[vr.Version] = true
				mu.Unlock()
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every release got a distinct version 2..writers*rounds+1 (the
	// seed took version 1).
	const total = writers * rounds
	if len(seen) != total {
		t.Fatalf("distinct acknowledged versions = %d, want %d", len(seen), total)
	}
	for v := uint32(2); v <= total+1; v++ {
		if !seen[v] {
			t.Fatalf("version %d never acknowledged", v)
		}
	}

	// The counters account for every release, in at most one flush
	// each.
	committed := srv.ins.groupCommitted.Value() - committed0
	flushes := srv.ins.groupCommits.Value() - flushes0
	if committed != total {
		t.Errorf("group-committed releases = %d, want %d", committed, total)
	}
	if flushes < 1 || flushes > committed {
		t.Errorf("group-commit flushes = %d, want 1..%d", flushes, committed)
	}

	// A reader from zero sees the converged state at the final
	// version.
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "reader", Profile: "x86-32le"})
	reply, _ := rc.call(&protocol.ReadLock{Seg: "gc/s", HaveVersion: 0, Policy: coherence.Full()})
	lr, ok := reply.(*protocol.LockReply)
	if !ok || lr.Diff == nil || lr.Diff.Version != total+1 {
		t.Fatalf("read-from-zero reply = %+v, want diff at version %d", reply, total+1)
	}
	rc.mustAck(&protocol.ReadUnlock{Seg: "gc/s"})

	// A transaction on the same segment drains any in-flight batch
	// and commits on top.
	if reply, _ := rc.call(&protocol.WriteLock{Seg: "gc/s", Policy: coherence.Full()}); reply == nil {
		t.Fatal("tx wlock failed")
	}
	reply, _ = rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{
		{Seg: "gc/s", Diff: runDiff(1, 0, 99)},
	}})
	tr, ok := reply.(*protocol.TxReply)
	if !ok || len(tr.Versions) != 1 || tr.Versions[0] != total+2 {
		t.Fatalf("tx reply = %+v, want version %d", reply, total+2)
	}
	_ = srv
}

// TestStressMuxShedEvict churns sessions, subscriptions, evictions,
// and group-committed releases together; meant for -race. Sessions
// open, subscribe, read, and close (or get evicted) while writers
// publish; the server must stay responsive to a healthy legacy client
// throughout.
func TestStressMuxShedEvict(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{
		Metrics:          reg,
		GroupCommit:      true,
		SessionSendQueue: 4,
		ConnSendQueue:    64,
		WriteTimeout:     2 * time.Second,
	})
	seedSeg(t, addr, "churn/s", 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publisher: group-committed releases the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := dialStress(addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.close()
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.call(&protocol.WriteLock{Seg: "churn/s", Policy: coherence.Full()}); err != nil {
				t.Errorf("publisher wlock: %v", err)
				return
			}
			if _, err := c.call(&protocol.WriteUnlock{Seg: "churn/s", Diff: runDiff(1, i%64, i)}); err != nil {
				t.Errorf("publisher wunlock: %v", err)
				return
			}
		}
	}()

	// Churners: short-lived mux sessions that subscribe, read, and
	// close. Errors are expected under churn (evictions); crashes and
	// races are not.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mux, err := core.DialMux(addr, core.MuxOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			defer mux.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := mux.NewSession(fmt.Sprintf("churn-%d-%d", g, i), "x86-32le")
				if err != nil {
					continue
				}
				_, _ = s.Call(&protocol.Subscribe{Seg: "churn/s", Policy: coherence.Full()})
				if _, err := s.Call(&protocol.ReadLock{Seg: "churn/s", Policy: coherence.Full()}); err == nil {
					_, _ = s.Call(&protocol.ReadUnlock{Seg: "churn/s"})
				}
				_ = s.Close()
			}
		}(g)
	}

	// The control: a legacy client that must see zero errors.
	deadline := time.Now().Add(2 * time.Second)
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "control", Profile: "x86-32le"})
	for time.Now().Before(deadline) {
		reply, _ := rc.call(&protocol.ReadLock{Seg: "churn/s", Policy: coherence.Full()})
		if _, ok := reply.(*protocol.LockReply); !ok {
			t.Fatalf("control read lock reply = %+v", reply)
		}
		rc.mustAck(&protocol.ReadUnlock{Seg: "churn/s"})
	}
	close(stop)
	wg.Wait()
}

// BenchmarkSessionScale measures the session lifecycle on the mux
// transport: open (Hello), one ReadLock/ReadUnlock round, close. This
// is the per-session cost that bounds how fast tools/loadgen can
// stand up its 100k sessions.
func BenchmarkSessionScale(b *testing.B) {
	srv, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	seed, err := dialStress(addr)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.call(&protocol.OpenSegment{Name: "bench/s", Create: true}); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.call(&protocol.WriteLock{Seg: "bench/s", Policy: coherence.Full()}); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.call(&protocol.WriteUnlock{Seg: "bench/s", Diff: benchSeedDiff()}); err != nil {
		b.Fatal(err)
	}
	seed.close()

	mux, err := core.DialMux(addr, core.MuxOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer mux.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mux.NewSession("bench", "x86-32le")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Call(&protocol.ReadLock{Seg: "bench/s", Policy: coherence.Full()}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Call(&protocol.ReadUnlock{Seg: "bench/s"}); err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSeedDiff builds the seed diff without a *testing.T.
func benchSeedDiff() *wire.SegmentDiff {
	descBytes, err := types.Marshal(types.Int32())
	if err != nil {
		panic(err)
	}
	const n = 64
	data := make([]byte, 0, n*4)
	for i := 0; i < n; i++ {
		data = wire.AppendU32(data, uint32(i))
	}
	return &wire.SegmentDiff{
		Descs: []wire.DescDef{{Serial: 1, Bytes: descBytes}},
		News:  []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: n, Name: "blk"}},
		Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{
			{Start: 0, Count: n, Data: data},
		}}},
	}
}
