package server

// Health/SLO plane (OBSERVABILITY.md). The server tracks rolling
// error-budget burn over its own latency histograms and renders a
// machine-readable verdict: /healthz answers "should the balancer /
// operator trust this node right now", /debug/slo exposes the full
// burn-rate arithmetic behind that answer.
//
// The SLO tracker (internal/obs) differences cumulative histogram
// counts between periodic samples, so nothing here touches a hot
// path: SampleSLO reads registry snapshots at its own cadence, and
// the verdict is computed on demand from the recorded samples.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"interweave/internal/obs"
)

// DefaultSLOSampleEvery is the background SLO sampling cadence when
// Options.SLOSampleEvery is zero.
const DefaultSLOSampleEvery = 5 * time.Second

// Server SLO objectives: the latency bounds sit on the shared
// obs.DurationBuckets ladder (the tracker's within-bound counting is
// exact only at bucket bounds), and the targets are the fractions the
// paper's interactive-sharing workloads need.
const (
	// sloReadLockBound is the ReadLock handling-latency objective:
	// freshness check plus diff collection must fit an interactive
	// read path.
	sloReadLockBound = 64e-3
	// sloWriteUnlockBound is the WriteUnlock handling-latency
	// objective; it is looser because the release path carries the
	// journal append and the replicate-before-acknowledge fan-out.
	sloWriteUnlockBound = 256e-3
	// sloJournalAppendBound is the per-record journal fsync-path
	// objective; appends past it indicate a stalling disk.
	sloJournalAppendBound = 64e-3
	// sloTarget is the required within-bound fraction for every
	// server objective.
	sloTarget = 0.99
)

// Verdict thresholds for the non-SLO health reasons. They are
// deliberately conservative: each one flags a condition that is
// already costing clients work (re-validation after eviction, refused
// admissions, serialized segment handlers), not a prediction.
const (
	// healthReplLagVersions is the replication-lag gauge value (in
	// versions) past which the node is degraded: the slowest replica
	// is trailing the primary by whole committed writes.
	healthReplLagVersions = 8
	// healthShedPerSec is the short-window session-shed rate past
	// which the node is overloaded: it is actively evicting slow
	// consumers to protect itself.
	healthShedPerSec = 1.0
	// healthContentionPerSec is the short-window segment-mutex
	// contention rate past which the node is degraded: handlers are
	// serializing on hot segments (DESIGN.md §8).
	healthContentionPerSec = 10000.0
)

// Health status verdicts, ordered by severity.
const (
	// HealthOK means every objective is within budget and no
	// overload signal is firing.
	HealthOK = "ok"
	// HealthDegraded means the node serves traffic but at least one
	// SLO is burning budget faster than sustainable (or replication /
	// contention is backing up).
	HealthDegraded = "degraded"
	// HealthOverloaded means the node is shedding or refusing load;
	// /healthz answers 503 so balancers drain it.
	HealthOverloaded = "overloaded"
)

// serverSLOObjectives is the objective set every server tracks. The
// metric keys are obs.Registry instance keys; a metric with no
// traffic yet reports empty windows, never a burn.
func serverSLOObjectives() []obs.Objective {
	return []obs.Objective{
		{Name: "read_lock", Metric: `iw_server_rpc_seconds{rpc="ReadLock"}`,
			Bound: sloReadLockBound, Target: sloTarget},
		{Name: "write_unlock", Metric: `iw_server_rpc_seconds{rpc="WriteUnlock"}`,
			Bound: sloWriteUnlockBound, Target: sloTarget},
		{Name: "journal_append", Metric: smJournalAppendSec,
			Bound: sloJournalAppendBound, Target: sloTarget},
	}
}

// healthSample is one point-in-time copy of the counters behind the
// verdict's windowed-rate reasons, recorded alongside each SLO sample.
type healthSample struct {
	at         time.Time
	shed       uint64
	refused    uint64
	contention uint64
}

// SampleSLO records one SLO sample (cumulative good/total counts per
// objective, plus the verdict counters) stamped at now. Serve runs
// this on a timer; tests and tools may drive it manually. A server
// without metrics ignores the call.
func (s *Server) SampleSLO(now time.Time) {
	if s.slo == nil {
		return
	}
	s.slo.Sample(now)
	hs := healthSample{at: now}
	if s.ins != nil {
		hs.shed = s.ins.shed.Value()
		hs.refused = s.ins.sessionsRefused.Value()
		hs.contention = s.ins.segLockContention.Value()
	}
	short, _ := s.slo.Windows()
	s.healthMu.Lock()
	s.healthSamples = append(s.healthSamples, hs)
	// Keep the short window plus one baseline, like the SLO tracker.
	cut := now.Add(-short)
	drop := 0
	for drop < len(s.healthSamples)-1 && s.healthSamples[drop+1].at.Before(cut) {
		drop++
	}
	if drop > 0 {
		s.healthSamples = append(s.healthSamples[:0], s.healthSamples[drop:]...)
	}
	s.healthMu.Unlock()
}

// sloSampleLoop is the background sampler Serve starts when the
// server has metrics and sampling is not disabled.
func (s *Server) sloSampleLoop() {
	defer s.wg.Done()
	every := s.opts.SLOSampleEvery
	if every == 0 {
		every = DefaultSLOSampleEvery
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.SampleSLO(time.Now())
		}
	}
}

// SLOReport computes the rolling-window SLO report as of now. A
// server without metrics reports no objectives.
func (s *Server) SLOReport(now time.Time) obs.SLOReport {
	if s.slo == nil {
		return obs.SLOReport{At: now}
	}
	return s.slo.Report(now)
}

// Flight returns the server's flight recorder (nil when disabled),
// for mounting /debug/flight and for tests.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Health is the machine-readable node verdict /healthz serves.
type Health struct {
	// Status is "ok", "degraded", or "overloaded".
	Status string `json:"status"`
	// Reasons explains every condition behind a non-ok status.
	Reasons []string `json:"reasons,omitempty"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// SLO is the rolling-window report the verdict was computed from.
	SLO obs.SLOReport `json:"slo"`
}

// Health computes the node verdict as of now: burning SLO objectives
// and replication/contention backlogs degrade the node, active load
// shedding or refused admissions mark it overloaded.
func (s *Server) Health(now time.Time) Health {
	h := Health{
		Status:        HealthOK,
		UptimeSeconds: now.Sub(s.start).Seconds(),
		SLO:           s.SLOReport(now),
	}
	overloaded := false
	for _, o := range h.SLO.Objectives {
		if o.Burning {
			h.Reasons = append(h.Reasons, fmt.Sprintf(
				"slo %s burning: %.1fx budget over the short window (%d/%d over %gs bound)",
				o.Name, o.Short.BurnRate, o.Short.Bad, o.Short.Total, o.Bound))
		}
	}
	if s.cins != nil {
		if lag := s.cins.replLag.Value(); lag >= healthReplLagVersions {
			h.Reasons = append(h.Reasons, fmt.Sprintf(
				"replication lag: slowest replica trails by %d versions", lag))
		}
	}
	if shed, refused, contention, secs := s.healthRates(); secs > 0 {
		if rate := float64(shed) / secs; rate >= healthShedPerSec {
			overloaded = true
			h.Reasons = append(h.Reasons, fmt.Sprintf(
				"shedding %.1f sessions/s (slow consumers evicted)", rate))
		}
		if refused > 0 {
			overloaded = true
			h.Reasons = append(h.Reasons, fmt.Sprintf(
				"admission control refused %d sessions in the short window", refused))
		}
		if rate := float64(contention) / secs; rate >= healthContentionPerSec {
			h.Reasons = append(h.Reasons, fmt.Sprintf(
				"segment lock contention at %.0f blocked acquisitions/s", rate))
		}
	}
	switch {
	case overloaded:
		h.Status = HealthOverloaded
	case len(h.Reasons) > 0:
		h.Status = HealthDegraded
	}
	return h
}

// healthRates returns the verdict counters' deltas across the
// recorded sample window and the window's span in seconds (zero when
// fewer than two samples exist).
func (s *Server) healthRates() (shed, refused, contention uint64, secs float64) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	n := len(s.healthSamples)
	if n < 2 {
		return 0, 0, 0, 0
	}
	first, last := s.healthSamples[0], s.healthSamples[n-1]
	return satSub(last.shed, first.shed),
		satSub(last.refused, first.refused),
		satSub(last.contention, first.contention),
		last.at.Sub(first.at).Seconds()
}

// satSub is saturating uint64 subtraction, clamping counter resets.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// HealthzHandler serves /healthz: the JSON Health verdict, status 200
// for ok and degraded (the node still serves correctly) and 503 for
// overloaded (balancers should drain it).
func (s *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := s.Health(time.Now())
		w.Header().Set("Content-Type", "application/json")
		if h.Status == HealthOverloaded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// SLOHandler serves /debug/slo: the full rolling-window burn-rate
// report as JSON.
func (s *Server) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.SLOReport(time.Now()))
	})
}
