package server

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/coherence"
	"interweave/internal/journal"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// seedEvictSeg drives a segment to version 2 with a known writer
// identity: version 1 creates a 3-int block (7,8,9), version 2
// overwrites it with (10,11,12). All eviction tests share this shape
// so expected bytes are uniform.
func seedEvictSeg(t *testing.T, rc *rawClient, name string) {
	t.Helper()
	rc.call(&protocol.OpenSegment{Name: name, Create: true})
	rc.call(&protocol.WriteLock{Seg: name, Policy: coherence.Full()})
	reply, _ := rc.call(&protocol.WriteUnlock{Seg: name, Diff: intCreateDiff(t, 1, 7, 8, 9), WriterID: "w-e", Seq: 1})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 1 {
		t.Fatalf("seed release 1 = %+v", reply)
	}
	rc.call(&protocol.WriteLock{Seg: name, Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: name, Diff: runDiff(1, 0, 10, 11, 12), WriterID: "w-e", Seq: 2})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 2 {
		t.Fatalf("seed release 2 = %+v", reply)
	}
}

// isResident reports whether the segment's in-memory image is loaded.
func isResident(srv *Server, name string) bool {
	st, ok := srv.reg.get(name)
	if !ok {
		return false
	}
	srv.lockSeg(st)
	defer st.mu.Unlock()
	return st.seg != nil
}

// segImage snapshots a segment's identity triple — encoded bytes,
// version, applied table — under its lock, for byte-exact comparison
// across evict/reload cycles.
func segImage(t *testing.T, srv *Server, name string) ([]byte, uint32, map[string]appliedWrite) {
	t.Helper()
	st, ok := srv.reg.get(name)
	if !ok {
		t.Fatalf("segment %q missing", name)
	}
	srv.lockSeg(st)
	defer st.mu.Unlock()
	if st.seg == nil {
		t.Fatalf("segment %q not resident", name)
	}
	applied := make(map[string]appliedWrite, len(st.applied))
	for k, v := range st.applied {
		applied[k] = v
	}
	return st.seg.encode(), st.seg.Version, applied
}

// TestEvictOptionValidation: the eviction knobs only make sense when a
// journal can serve fault-ins. CheckpointDir-mode checkpoints lag the
// live state, so booting with a resident budget there must refuse with
// an error that says why, not silently drop writes on fault-in.
func TestEvictOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // "" = must succeed
	}{
		{"budget without persistence", Options{MaxResidentBytes: 1 << 20}, "JournalDir"},
		{"idle-age without persistence", Options{EvictIdleAge: time.Minute}, "JournalDir"},
		{"budget with checkpoint dir", Options{CheckpointDir: t.TempDir(), MaxResidentBytes: 1 << 20}, "CheckpointDir"},
		{"idle-age with checkpoint dir", Options{CheckpointDir: t.TempDir(), EvictIdleAge: time.Minute}, "CheckpointDir"},
		{"budget with journal", Options{JournalDir: t.TempDir(), MaxResidentBytes: 1 << 20}, ""},
		{"idle-age with journal", Options{JournalDir: t.TempDir(), EvictIdleAge: time.Minute}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := New(tc.opts)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New: %v, want success", err)
				}
				_ = srv.Close()
				return
			}
			if err == nil {
				_ = srv.Close()
				t.Fatalf("New succeeded, want an error naming %s", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestEvictReloadTransparent is the subsystem's basic contract: evict
// drops the image and the metrics say so; Resume answers from the stub
// without reloading; the next read faults in a byte-identical image;
// and a write after a second eviction works the same.
func TestEvictReloadTransparent(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{JournalDir: t.TempDir(), Metrics: reg})
	rc := dialRaw(t, addr)
	seedEvictSeg(t, rc, "e/seg")
	wantBytes, wantVer, wantApplied := segImage(t, srv, "e/seg")

	if !srv.EvictSegment("e/seg") {
		t.Fatal("EvictSegment refused an idle journaled segment")
	}
	if isResident(srv, "e/seg") {
		t.Fatal("segment still resident after EvictSegment")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["iw_server_segment_evictions_total"]; got != 1 {
		t.Errorf("evictions counter = %d, want 1", got)
	}
	if got := snap.Gauges["iw_server_segments_resident"]; got != 0 {
		t.Errorf("resident-segments gauge = %v, want 0", got)
	}
	if got := snap.Gauges["iw_server_resident_bytes"]; got != 0 {
		t.Errorf("resident-bytes gauge = %v, want 0", got)
	}
	var dbg *SegmentDebug
	for _, d := range srv.DebugSegments() {
		if d.Name == "e/seg" {
			dd := d
			dbg = &dd
		}
	}
	if dbg == nil {
		t.Fatal("evicted segment missing from DebugSegments")
	}
	if dbg.Resident || dbg.Version != 2 || dbg.MemBytes != 0 {
		t.Errorf("evicted debug row = %+v, want resident=false version=2 mem=0", dbg)
	}

	// Resume answers from the stub: applied table and version survive
	// eviction without the image being reloaded.
	reply, _ := rc.call(&protocol.Resume{Seg: "e/seg", WriterID: "w-e", Seq: 2})
	rr, ok := reply.(*protocol.ResumeReply)
	if !ok || !rr.Applied || rr.AppliedVersion != 2 || rr.CurrentVersion != 2 {
		t.Fatalf("Resume against evicted stub = %+v", reply)
	}
	if isResident(srv, "e/seg") {
		t.Error("Resume faulted the segment in; it must answer from the stub")
	}
	if got := reg.Snapshot().Counters["iw_server_segment_faults_total"]; got != 0 {
		t.Errorf("faults after Resume = %d, want 0", got)
	}

	// The read faults it in, transparently, with the same bytes.
	reply, _ = rc.call(&protocol.ReadLock{Seg: "e/seg", HaveVersion: 0, Policy: coherence.Full()})
	lr, ok := reply.(*protocol.LockReply)
	if !ok || lr.Fresh || lr.Diff == nil {
		t.Fatalf("read lock on evicted segment = %+v", reply)
	}
	if got := wire.NewReader(lr.Diff.Blocks[0].Runs[0].Data).U32(); got != 10 {
		t.Errorf("reloaded data starts with %d, want 10", got)
	}
	rc.mustAck(&protocol.ReadUnlock{Seg: "e/seg"})
	if got := reg.Snapshot().Counters["iw_server_segment_faults_total"]; got != 1 {
		t.Errorf("faults after read = %d, want 1", got)
	}
	gotBytes, gotVer, gotApplied := segImage(t, srv, "e/seg")
	if gotVer != wantVer || !reflect.DeepEqual(gotBytes, wantBytes) {
		t.Errorf("reloaded image differs: version %d vs %d, bytes equal %v", gotVer, wantVer, reflect.DeepEqual(gotBytes, wantBytes))
	}
	if !reflect.DeepEqual(gotApplied, wantApplied) {
		t.Errorf("reloaded applied table %+v, want %+v", gotApplied, wantApplied)
	}

	// Evict again; a write faults in and lands on top.
	if !srv.EvictSegment("e/seg") {
		t.Fatal("second EvictSegment refused")
	}
	rc.call(&protocol.WriteLock{Seg: "e/seg", Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "e/seg", Diff: runDiff(1, 0, 99), WriterID: "w-e", Seq: 3})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 3 {
		t.Fatalf("write after reload = %+v", reply)
	}
	if got := reg.Snapshot().Counters["iw_server_segment_faults_total"]; got != 2 {
		t.Errorf("faults after write = %d, want 2", got)
	}
}

// TestEvictWriterFence: a held write lock fences eviction — the image
// under an open critical section must never be dropped — and the fence
// lifts with the lock.
func TestEvictWriterFence(t *testing.T) {
	srv, addr := startTestServer(t, Options{JournalDir: t.TempDir()})
	rc := dialRaw(t, addr)
	seedEvictSeg(t, rc, "f/seg")
	rc.call(&protocol.WriteLock{Seg: "f/seg", Policy: coherence.Full()})
	if srv.EvictSegment("f/seg") {
		t.Fatal("EvictSegment dropped a segment whose write lock is held")
	}
	reply, _ := rc.call(&protocol.WriteUnlock{Seg: "f/seg", Diff: runDiff(1, 0, 42), WriterID: "w-e", Seq: 3})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 3 {
		t.Fatalf("release = %+v", reply)
	}
	if !srv.EvictSegment("f/seg") {
		t.Fatal("EvictSegment still refused after the lock was released")
	}
}

// TestEvictSubscriberNotify: subscriptions live on the segState, not
// the image — they survive eviction, and a write that faults the
// segment back in still notifies them.
func TestEvictSubscriberNotify(t *testing.T) {
	srv, addr := startTestServer(t, Options{JournalDir: t.TempDir()})
	w := dialRaw(t, addr)
	seedEvictSeg(t, w, "n/seg")
	sub := dialRaw(t, addr)
	sub.mustAck(&protocol.Subscribe{Seg: "n/seg", HaveVersion: 2, Policy: coherence.Full()})

	if !srv.EvictSegment("n/seg") {
		t.Fatal("a subscriber must not fence eviction (notify only runs on writes, which fault in)")
	}
	w.call(&protocol.WriteLock{Seg: "n/seg", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "n/seg", Diff: runDiff(1, 0, 55), WriterID: "w-e", Seq: 3})

	// The notify is pushed asynchronously; a round-trip on the
	// subscriber's connection collects it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, notes := sub.call(&protocol.Resume{Seg: "n/seg", WriterID: "none", Seq: 1})
		if len(notes) > 0 {
			if notes[0].Seg != "n/seg" || notes[0].Version != 3 {
				t.Fatalf("notify = %+v, want n/seg@3", notes[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never notified after the write faulted the segment in")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEvictTouchPaths enumerates every frame kind that must fault an
// evicted segment back in — and the ones that must answer from the
// stub without reloading. Replicate and Pull run against a single-node
// cluster (the node is its own owner, so no redirects fire).
func TestEvictTouchPaths(t *testing.T) {
	const seg = "t/seg"
	cases := []struct {
		name         string
		clustered    bool
		wantFaults   uint64
		stillEvicted bool
		touch        func(t *testing.T, srv *Server, rc *rawClient)
	}{
		{name: "open", wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.OpenSegment{Name: seg})
			if or, ok := reply.(*protocol.OpenReply); !ok || or.Version != 2 {
				t.Fatalf("open = %+v", reply)
			}
		}},
		{name: "read-lock", wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.ReadLock{Seg: seg, HaveVersion: 0, Policy: coherence.Full()})
			lr, ok := reply.(*protocol.LockReply)
			if !ok || lr.Diff == nil {
				t.Fatalf("read lock = %+v", reply)
			}
			if got := wire.NewReader(lr.Diff.Blocks[0].Runs[0].Data).U32(); got != 10 {
				t.Errorf("reloaded data starts with %d, want 10", got)
			}
			rc.mustAck(&protocol.ReadUnlock{Seg: seg})
		}},
		{name: "write-lock-release", wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.WriteLock{Seg: seg, Policy: coherence.Full()})
			if _, ok := reply.(*protocol.LockReply); !ok {
				t.Fatalf("write lock = %+v", reply)
			}
			reply, _ = rc.call(&protocol.WriteUnlock{Seg: seg, Diff: runDiff(1, 0, 77), WriterID: "w-e", Seq: 3})
			if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != 3 {
				t.Fatalf("release = %+v", reply)
			}
		}},
		{name: "tx-commit", wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			// The write lock faults the segment in (and from then on
			// fences re-eviction), so the commit itself always runs
			// resident — the invariant the tx path's defensive fault-in
			// backs up.
			reply, _ := rc.call(&protocol.WriteLock{Seg: seg, Policy: coherence.Full()})
			if _, ok := reply.(*protocol.LockReply); !ok {
				t.Fatalf("write lock = %+v", reply)
			}
			if srv.EvictSegment(seg) {
				t.Fatal("segment evicted between write lock and tx commit")
			}
			reply, _ = rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{
				{Seg: seg, Diff: runDiff(1, 0, 88), WriterID: "w-e", Seq: 3},
			}})
			tr, ok := reply.(*protocol.TxReply)
			if !ok || len(tr.Versions) != 1 || tr.Versions[0] != 3 {
				t.Fatalf("tx commit = %+v", reply)
			}
		}},
		{name: "resume-from-stub", wantFaults: 0, stillEvicted: true, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.Resume{Seg: seg, WriterID: "w-e", Seq: 2})
			rr, ok := reply.(*protocol.ResumeReply)
			if !ok || !rr.Applied || rr.AppliedVersion != 2 || rr.CurrentVersion != 2 {
				t.Fatalf("resume = %+v", reply)
			}
		}},
		{name: "subscribe-from-stub", wantFaults: 0, stillEvicted: true, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			rc.mustAck(&protocol.Subscribe{Seg: seg, HaveVersion: 2, Policy: coherence.Full()})
		}},
		{name: "replicate", clustered: true, wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.Replicate{
				Seg: seg, PrevVersion: 2, Version: 3, Diff: runDiff(1, 0, 66),
				Applied: []protocol.AppliedEntry{{WriterID: "w-e", Seq: 3, Version: 3}},
			})
			rr, ok := reply.(*protocol.ReplicateReply)
			if !ok || !rr.Acked || rr.Version != 3 {
				t.Fatalf("replicate = %+v", reply)
			}
		}},
		{name: "pull", clustered: true, wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			reply, _ := rc.call(&protocol.Pull{Seg: seg, HaveVersion: 0})
			pr, ok := reply.(*protocol.PullReply)
			if !ok || pr.Version != 2 || pr.Diff == nil || len(pr.Applied) == 0 {
				t.Fatalf("pull = %+v", reply)
			}
		}},
		{name: "proxy-session-read", wantFaults: 1, touch: func(t *testing.T, srv *Server, rc *rawClient) {
			rc.mustAck(&protocol.ProxyHello{ProxyAddr: "127.0.0.1:0", Name: "edge"})
			reply, _ := rc.call(&protocol.ReadLock{Seg: seg, HaveVersion: 0, Policy: coherence.Full()})
			if lr, ok := reply.(*protocol.LockReply); !ok || lr.Diff == nil {
				t.Fatalf("proxy read lock = %+v", reply)
			}
			rc.mustAck(&protocol.ReadUnlock{Seg: seg})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			opts := Options{JournalDir: t.TempDir(), Metrics: reg}
			if tc.clustered {
				opts.Cluster = cluster.NewNode(cluster.Options{Self: "127.0.0.1:1"})
			}
			srv, addr := startTestServer(t, opts)
			seeder := dialRaw(t, addr)
			seedEvictSeg(t, seeder, seg)
			if !srv.EvictSegment(seg) {
				t.Fatal("EvictSegment refused")
			}
			tc.touch(t, srv, dialRaw(t, addr))
			if got := reg.Snapshot().Counters["iw_server_segment_faults_total"]; got != tc.wantFaults {
				t.Errorf("faults = %d, want %d", got, tc.wantFaults)
			}
			if got := isResident(srv, seg); got == tc.stillEvicted {
				t.Errorf("resident = %v after touch, want %v", got, !tc.stillEvicted)
			}
		})
	}
}

// TestEvictPassBudgetLRU: with a budget that fits two of three equal
// segments, one sweep evicts exactly the least-recently-touched one.
func TestEvictPassBudgetLRU(t *testing.T) {
	// Measure one seeded segment's footprint on a throwaway server:
	// contents are deterministic, so the size transfers.
	probe, paddr := startTestServer(t, Options{JournalDir: t.TempDir()})
	seedEvictSeg(t, dialRaw(t, paddr), "s/0")
	st, _ := probe.reg.get("s/0")
	probe.lockSeg(st)
	segBytes := st.seg.MemBytes()
	st.mu.Unlock()

	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{
		JournalDir:       t.TempDir(),
		MaxResidentBytes: 2*segBytes + segBytes/2,
		EvictInterval:    -1, // sweeps driven by hand
		Metrics:          reg,
	})
	rc := dialRaw(t, addr)
	for _, name := range []string{"s/0", "s/1", "s/2"} {
		seedEvictSeg(t, rc, name)
	}
	time.Sleep(2 * time.Millisecond)
	// Touch the newer two so s/0 is the LRU victim.
	for _, name := range []string{"s/1", "s/2"} {
		reply, _ := rc.call(&protocol.ReadLock{Seg: name, HaveVersion: 2, Policy: coherence.Full()})
		if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
			t.Fatalf("touch read of %s = %+v", name, reply)
		}
		rc.mustAck(&protocol.ReadUnlock{Seg: name})
	}

	if got := srv.EvictPass(); got != 1 {
		t.Fatalf("EvictPass evicted %d segments, want exactly 1 (3x%dB vs %dB budget)", got, segBytes, 2*segBytes+segBytes/2)
	}
	if isResident(srv, "s/0") {
		t.Error("s/0 (least recently touched) survived the sweep")
	}
	for _, name := range []string{"s/1", "s/2"} {
		if !isResident(srv, name) {
			t.Errorf("%s (recently touched) was evicted", name)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["iw_server_segments_resident"]; got != 2 {
		t.Errorf("resident-segments gauge = %v, want 2", got)
	}
	if got := int64(snap.Gauges["iw_server_resident_bytes"]); got > 2*segBytes+segBytes/2 {
		t.Errorf("resident bytes %d still over the %d budget after the sweep", got, 2*segBytes+segBytes/2)
	}
}

// TestEvictPassIdleAge: segments idle past EvictIdleAge are dropped
// regardless of budget; a fresh touch resets the clock.
func TestEvictPassIdleAge(t *testing.T) {
	srv, addr := startTestServer(t, Options{
		JournalDir:    t.TempDir(),
		EvictIdleAge:  5 * time.Millisecond,
		EvictInterval: -1,
	})
	rc := dialRaw(t, addr)
	seedEvictSeg(t, rc, "i/0")
	seedEvictSeg(t, rc, "i/1")
	time.Sleep(20 * time.Millisecond)
	if got := srv.EvictPass(); got != 2 {
		t.Fatalf("EvictPass evicted %d idle segments, want 2", got)
	}
	// Reload one; it was just touched, so the next sweep spares it.
	reply, _ := rc.call(&protocol.ReadLock{Seg: "i/0", HaveVersion: 2, Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
		t.Fatalf("reload read = %+v", reply)
	}
	rc.mustAck(&protocol.ReadUnlock{Seg: "i/0"})
	if got := srv.EvictPass(); got != 0 {
		t.Errorf("EvictPass evicted %d segments right after a touch, want 0", got)
	}
	if !isResident(srv, "i/0") {
		t.Error("just-touched segment not resident")
	}
}

// TestEvictLoopBackground: Serve wires the background sweep — an
// over-budget segment is evicted without any manual EvictPass, and
// still serves reads afterwards.
func TestEvictLoopBackground(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{
		JournalDir:       t.TempDir(),
		MaxResidentBytes: 1,
		EvictInterval:    time.Millisecond,
		Metrics:          reg,
	})
	rc := dialRaw(t, addr)
	seedEvictSeg(t, rc, "bg/seg")
	deadline := time.Now().Add(5 * time.Second)
	for isResident(srv, "bg/seg") {
		if time.Now().After(deadline) {
			t.Fatal("background sweep never evicted an over-budget segment")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := reg.Snapshot().Counters["iw_server_segment_evictions_total"]; got == 0 {
		t.Error("evictions counter still zero after the background sweep")
	}
	reply, _ := rc.call(&protocol.ReadLock{Seg: "bg/seg", HaveVersion: 0, Policy: coherence.Full()})
	lr, ok := reply.(*protocol.LockReply)
	if !ok || lr.Diff == nil {
		t.Fatalf("read after background eviction = %+v", reply)
	}
	if got := wire.NewReader(lr.Diff.Blocks[0].Runs[0].Data).U32(); got != 10 {
		t.Errorf("reloaded data starts with %d, want 10", got)
	}
	rc.mustAck(&protocol.ReadUnlock{Seg: "bg/seg"})
}

// TestEvictReloadProperty: for random release sequences with random
// evictions and reloads interleaved, the journaled server's segment
// stays byte-identical — encoding, version, applied table — to a
// shadow server that received the same writes and was never evicted.
func TestEvictReloadProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srvE, addrE := startTestServer(t, Options{JournalDir: t.TempDir(), JournalCompactBytes: -1})
		srvS, addrS := startTestServer(t, Options{})
		rcE, rcS := dialRaw(t, addrE), dialRaw(t, addrS)
		rcE.call(&protocol.OpenSegment{Name: "p/seg", Create: true})
		rcS.call(&protocol.OpenSegment{Name: "p/seg", Create: true})

		releases := 1 + rng.Intn(10)
		for i := 0; i < releases; i++ {
			// One diff recipe per release, materialized once per server:
			// the wire encoding is read-only but the servers must see
			// equal, independent payloads.
			var mk func() *wire.SegmentDiff
			if i == 0 {
				vals := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
				mk = func() *wire.SegmentDiff { return intsDiff(t, 1, 1, 4, "blk", vals...) }
			} else {
				start := uint32(rng.Intn(4))
				vals := make([]uint32, 1+rng.Intn(4-int(start)))
				for j := range vals {
					vals[j] = rng.Uint32()
				}
				mk = func() *wire.SegmentDiff { return runDiff(1, start, vals...) }
			}
			for _, rc := range []*rawClient{rcE, rcS} {
				rc.call(&protocol.WriteLock{Seg: "p/seg", Policy: coherence.Full()})
				reply, _ := rc.call(&protocol.WriteUnlock{Seg: "p/seg", Diff: mk(), WriterID: "w-p", Seq: uint32(i + 1)})
				if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != uint32(i+1) {
					t.Errorf("seed %d: release %d = %+v", seed, i+1, reply)
					return false
				}
			}
			switch rng.Intn(3) {
			case 0:
				srvE.EvictSegment("p/seg") // may be refused; both outcomes are valid states
			case 1:
				if srvE.SegmentSnapshot("p/seg") == nil { // faults in when evicted
					t.Errorf("seed %d: snapshot after release %d returned nil", seed, i+1)
					return false
				}
			}
		}

		// Force at least one full evict/reload cycle per seed (the
		// random walk may have left the segment evicted: fault it in
		// first so the eviction has an image to drop).
		if srvE.SegmentSnapshot("p/seg") == nil {
			t.Errorf("seed %d: pre-evict fault-in failed", seed)
			return false
		}
		if !srvE.EvictSegment("p/seg") {
			t.Errorf("seed %d: final EvictSegment refused on an idle segment", seed)
			return false
		}
		if srvE.SegmentSnapshot("p/seg") == nil {
			t.Errorf("seed %d: final fault-in failed", seed)
			return false
		}
		gotBytes, gotVer, gotApplied := segImage(t, srvE, "p/seg")
		wantBytes, wantVer, wantApplied := segImage(t, srvS, "p/seg")
		if gotVer != wantVer {
			t.Errorf("seed %d: evicted server at version %d, shadow at %d", seed, gotVer, wantVer)
			return false
		}
		if !reflect.DeepEqual(gotBytes, wantBytes) {
			t.Errorf("seed %d: segment encoding diverged from the never-evicted shadow", seed)
			return false
		}
		if !reflect.DeepEqual(gotApplied, wantApplied) {
			t.Errorf("seed %d: applied table %+v, shadow %+v", seed, gotApplied, wantApplied)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestEvictCrashRecovery covers the crash window the eviction design
// leaves on disk: after evict-compact the stub exists only in memory,
// so a kill right there must recover entirely from the compacted base
// — and a journal whose base came from an eviction must survive the
// torn-write matrix across subsequent appends.
func TestEvictCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{JournalDir: dir, Metrics: obs.NewRegistry()})
	rc := dialRaw(t, addr)
	seedEvictSeg(t, rc, "c/seg")
	wantBytes, wantVer, wantApplied := segImage(t, srv, "c/seg")
	if !srv.EvictSegment("c/seg") {
		t.Fatal("EvictSegment refused")
	}

	// Phase 1: "kill" between the evict-compaction and any further
	// traffic. The first server is abandoned, never Closed; a fresh
	// server over the same directory must recover the exact image from
	// the base the eviction wrote.
	srv2, err := New(Options{JournalDir: dir})
	if err != nil {
		t.Fatalf("recovery after evict-crash: %v", err)
	}
	st2, ok := srv2.reg.get("c/seg")
	if !ok {
		t.Fatal("recovered server lost the segment")
	}
	srv2.lockSeg(st2)
	if st2.seg.Version != wantVer || !reflect.DeepEqual(st2.seg.encode(), wantBytes) {
		st2.mu.Unlock()
		t.Fatalf("recovered image differs from the pre-eviction state (version %d, want %d)", st2.seg.Version, wantVer)
	}
	if !reflect.DeepEqual(st2.applied, wantApplied) {
		st2.mu.Unlock()
		t.Fatalf("recovered applied table %+v, want %+v", st2.applied, wantApplied)
	}
	st2.mu.Unlock()

	// Phase 2: the torn-write matrix over a log whose base came from
	// an eviction. Fault the segment back in on the original server,
	// append two more releases, then cut the log at every byte. The
	// evict-compaction removed the old log; the first post-evict
	// release recreates it.
	basePath := findJournalFile(t, dir, journal.BaseSuffix)
	if basePath == "" {
		t.Fatal("no base on disk after eviction")
	}
	var logPath string
	var boundaries []int64
	for i := uint32(3); i <= 4; i++ {
		rc.call(&protocol.WriteLock{Seg: "c/seg", Policy: coherence.Full()})
		reply, _ := rc.call(&protocol.WriteUnlock{Seg: "c/seg", Diff: runDiff(1, 0, i*100), WriterID: "w-e", Seq: i})
		if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != i {
			t.Fatalf("post-evict release %d = %+v", i, reply)
		}
		if logPath == "" {
			logPath = findJournalFile(t, dir, journal.LogSuffix)
			if logPath == "" {
				t.Fatal("no journal log after a post-evict release")
			}
		}
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	image, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	baseImage, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	liveBytes, liveVer, _ := segImage(t, srv, "c/seg")

	for cut := 0; cut <= len(image); cut++ {
		wantCutVer := uint32(2) // the evict-compacted base
		for i, b := range boundaries {
			if int64(cut) >= b {
				wantCutVer = uint32(3 + i)
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(basePath)), baseImage, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(logPath)), image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		csrv, err := New(Options{JournalDir: cdir})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		seg := csrv.SegmentSnapshot("c/seg")
		if seg == nil || seg.Version != wantCutVer {
			t.Fatalf("cut %d/%d: recovered to %+v, want version %d", cut, len(image), seg, wantCutVer)
		}
		if cut == len(image) {
			cBytes, cVer, _ := segImage(t, csrv, "c/seg")
			if cVer != liveVer || !reflect.DeepEqual(cBytes, liveBytes) {
				t.Fatalf("full-log recovery diverged from the live server (version %d, want %d)", cVer, liveVer)
			}
		}
	}
}

// BenchmarkEvictReload measures one full evict + fault-in cycle over a
// segment recovered from a 200-release journal: the compaction is paid
// on the first eviction, so the steady state is drop + base decode.
func BenchmarkEvictReload(b *testing.B) {
	dir := b.TempDir()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	l, err := store.Segment("bench/evict")
	if err != nil {
		b.Fatal(err)
	}
	descBytes, err := types.Marshal(types.Int32())
	if err != nil {
		b.Fatal(err)
	}
	const releases = 200
	for v := uint32(1); v <= releases; v++ {
		diff := &wire.SegmentDiff{
			Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 1, Data: wire.AppendU32(nil, v)}}}},
		}
		if v == 1 {
			diff.Descs = []wire.DescDef{{Serial: 1, Bytes: descBytes}}
			diff.News = []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 1}}
		}
		err := l.Append(&protocol.Replicate{
			Seg:         "bench/evict",
			PrevVersion: v - 1,
			Version:     v,
			Diff:        diff,
			Applied:     []protocol.AppliedEntry{{WriterID: "w", Seq: v, Version: v}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Options{JournalDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !srv.EvictSegment("bench/evict") {
			b.Fatal("EvictSegment refused")
		}
		if seg := srv.SegmentSnapshot("bench/evict"); seg == nil || seg.Version != releases {
			b.Fatalf("fault-in recovered %+v", seg)
		}
	}
}
