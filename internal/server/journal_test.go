package server

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/journal"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/types"
	"interweave/internal/wire"
)

func TestJournalExclusiveWithCheckpoint(t *testing.T) {
	_, err := New(Options{CheckpointDir: t.TempDir(), JournalDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("New with both persistence modes: %v", err)
	}
}

// findJournalFile returns the single file with the given suffix in
// dir, or "" when none exists.
func findJournalFile(t testing.TB, dir, suffix string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			return filepath.Join(dir, e.Name())
		}
	}
	return ""
}

// TestJournalRecoverAfterKill is the headline acceptance test: a
// server journaling to disk is "killed" (never Closed, so nothing is
// compacted or flushed beyond the per-release appends) after N acked
// releases, and a fresh server over the same directory recovers all N
// — data, version, and the at-most-once applied table.
func TestJournalRecoverAfterKill(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{JournalDir: dir, Metrics: reg})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "j/kill", Create: true})
	rc.call(&protocol.WriteLock{Seg: "j/kill", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "j/kill", Diff: intCreateDiff(t, 1, 1), WriterID: "w-j", Seq: 1})
	const n = 5
	for i := uint32(2); i <= n; i++ {
		rc.call(&protocol.WriteLock{Seg: "j/kill", Policy: coherence.Full()})
		reply, _ := rc.call(&protocol.WriteUnlock{Seg: "j/kill", Diff: runDiff(1, 0, i), WriterID: "w-j", Seq: i})
		if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != i {
			t.Fatalf("release %d = %+v", i, reply)
		}
	}
	if got := reg.Snapshot().Counters["iw_server_journal_appends_total"]; got != n {
		t.Errorf("journal appends = %d, want %d", got, n)
	}

	// No Close: the first server is abandoned mid-flight. Recovery
	// sees only what the per-release appends put on disk.
	reg2 := obs.NewRegistry()
	srv2, addr2 := startTestServer(t, Options{JournalDir: dir, Metrics: reg2})
	seg := srv2.SegmentSnapshot("j/kill")
	if seg == nil || seg.Version != n {
		t.Fatalf("recovered segment = %+v, want version %d", seg, n)
	}
	d, err := seg.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 1 || wire.NewReader(d.Blocks[0].Runs[0].Data).U32() != n {
		t.Fatalf("recovered data = %+v", d.Blocks)
	}
	if got := reg2.Snapshot().Counters[`iw_server_journal_replayed_total{source="startup"}`]; got != n {
		t.Errorf("startup replays = %d, want %d", got, n)
	}
	// The applied table came back with the data: a Resume for the last
	// acked release answers from the record, and its retry dedups.
	rc2 := dialRaw(t, addr2)
	reply, _ := rc2.call(&protocol.Resume{Seg: "j/kill", WriterID: "w-j", Seq: n})
	if rr, ok := reply.(*protocol.ResumeReply); !ok || !rr.Applied || rr.AppliedVersion != n {
		t.Fatalf("Resume after recovery = %+v", reply)
	}
	reply, _ = rc2.call(&protocol.WriteUnlock{Seg: "j/kill", Diff: runDiff(1, 0, n), WriterID: "w-j", Seq: n})
	if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != n {
		t.Fatalf("retried release after recovery = %+v", reply)
	}
	if got := srv2.SegmentSnapshot("j/kill").Version; got != n {
		t.Errorf("duplicate release advanced recovered segment to %d", got)
	}
}

// TestJournalCrashMatrix cuts the journal at every byte offset — the
// torn-write simulator — and restarts over each truncation: recovery
// must land exactly on the last fully-sealed record, incrementing the
// truncated-tail counter only when the cut tore a record.
func TestJournalCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	_, addr := startTestServer(t, Options{JournalDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "m/seg", Create: true})
	rc.call(&protocol.WriteLock{Seg: "m/seg", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "m/seg", Diff: intCreateDiff(t, 1, 1, 1)})
	logPath := findJournalFile(t, dir, journal.LogSuffix)
	if logPath == "" {
		t.Fatal("no journal log on disk after an acked release")
	}
	// One record per release: the file size after each ack is a record
	// boundary, measured independently of the scanner under test.
	var boundaries []int64
	stat := func() {
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	stat()
	for i := uint32(2); i <= 4; i++ {
		rc.call(&protocol.WriteLock{Seg: "m/seg", Policy: coherence.Full()})
		rc.call(&protocol.WriteUnlock{Seg: "m/seg", Diff: runDiff(1, 0, i, i)})
		stat()
	}
	image, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(logPath)

	for cut := 0; cut <= len(image); cut++ {
		wantVer := uint32(0)
		atBoundary := cut == 0
		for i, b := range boundaries {
			if int64(cut) >= b {
				wantVer = uint32(i + 1)
			}
			if int64(cut) == b {
				atBoundary = true
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, name), image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		srv, err := New(Options{JournalDir: cdir, Metrics: reg})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		seg := srv.SegmentSnapshot("m/seg")
		if seg == nil || seg.Version != wantVer {
			t.Fatalf("cut %d/%d: recovered to %+v, want version %d", cut, len(image), seg, wantVer)
		}
		torn := reg.Snapshot().Counters["iw_server_journal_truncated_tail_total"]
		if atBoundary && torn != 0 {
			t.Fatalf("cut %d at a record boundary reported %d torn tails", cut, torn)
		}
		if !atBoundary && torn != 1 {
			t.Fatalf("cut %d inside a record reported %d torn tails, want 1", cut, torn)
		}
	}
}

// TestJournalPropertyReplay: for random release sequences with random
// compaction points interleaved, base + replay reconstructs a segment
// whose encoded bytes, version, and applied table are identical to the
// live server that was never restarted. A single descriptor keeps the
// encoding canonical (descriptor order is the one map-ordered part of
// the encoding).
func TestJournalPropertyReplay(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		srv, addr := startTestServer(t, Options{JournalDir: dir, JournalCompactBytes: -1})
		rc := dialRaw(t, addr)
		rc.call(&protocol.OpenSegment{Name: "q/seg", Create: true})
		releases := 1 + rng.Intn(8)
		for i := 0; i < releases; i++ {
			var diff *wire.SegmentDiff
			if i == 0 {
				diff = intsDiff(t, 1, 1, 4, "blk", rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32())
			} else {
				start := uint32(rng.Intn(4))
				vals := make([]uint32, 1+rng.Intn(4-int(start)))
				for j := range vals {
					vals[j] = rng.Uint32()
				}
				diff = runDiff(1, start, vals...)
			}
			rc.call(&protocol.WriteLock{Seg: "q/seg", Policy: coherence.Full()})
			reply, _ := rc.call(&protocol.WriteUnlock{Seg: "q/seg", Diff: diff, WriterID: "w-q", Seq: uint32(i + 1)})
			if vr, ok := reply.(*protocol.VersionReply); !ok || vr.Version != uint32(i+1) {
				t.Errorf("seed %d: release %d = %+v", seed, i+1, reply)
				return false
			}
			if rng.Intn(3) == 0 {
				if err := srv.CompactJournal(); err != nil {
					t.Errorf("seed %d: compaction after release %d: %v", seed, i+1, err)
					return false
				}
			}
		}

		live, ok := srv.reg.get("q/seg")
		if !ok {
			t.Errorf("seed %d: live segment missing", seed)
			return false
		}
		srv.lockSeg(live)
		liveBytes := live.seg.encode()
		liveVer := live.seg.Version
		liveApplied := live.applied
		live.mu.Unlock()

		srv2, err := New(Options{JournalDir: dir})
		if err != nil {
			t.Errorf("seed %d: recovery: %v", seed, err)
			return false
		}
		rest, ok := srv2.reg.get("q/seg")
		if !ok {
			t.Errorf("seed %d: recovered segment missing", seed)
			return false
		}
		if rest.seg.Version != liveVer {
			t.Errorf("seed %d: recovered version %d, live %d", seed, rest.seg.Version, liveVer)
			return false
		}
		if !reflect.DeepEqual(rest.seg.encode(), liveBytes) {
			t.Errorf("seed %d: recovered segment encoding differs from live server", seed)
			return false
		}
		if !reflect.DeepEqual(rest.applied, liveApplied) {
			t.Errorf("seed %d: recovered applied table %+v, live %+v", seed, rest.applied, liveApplied)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestJournalCloseCompacts: Close folds the log into a fresh base, so
// a clean shutdown recovers entirely from the base with zero replays.
func TestJournalCloseCompacts(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{JournalDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "j/close", Create: true})
	rc.call(&protocol.WriteLock{Seg: "j/close", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "j/close", Diff: intCreateDiff(t, 1, 9)})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if base := findJournalFile(t, dir, journal.BaseSuffix); base == "" {
		t.Fatal("no base written on Close")
	}
	if logPath := findJournalFile(t, dir, journal.LogSuffix); logPath != "" {
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != 0 {
			t.Errorf("log holds %d bytes after Close; compaction should have emptied it", fi.Size())
		}
	}
	reg := obs.NewRegistry()
	srv2, err := New(Options{JournalDir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if seg := srv2.SegmentSnapshot("j/close"); seg == nil || seg.Version != 1 {
		t.Fatalf("recovered from base = %+v", seg)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`iw_server_journal_replayed_total{source="startup"}`]; got != 0 {
		t.Errorf("%d records replayed after a clean Close, want 0 (base covers all)", got)
	}
}

// TestJournalPeriodicCompaction: with JournalDir set, the periodic
// checkpoint loop compacts journals instead.
func TestJournalPeriodicCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{
		JournalDir:      dir,
		CheckpointEvery: 20 * time.Millisecond,
		Metrics:         reg,
	})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "j/tick", Create: true})
	rc.call(&protocol.WriteLock{Seg: "j/tick", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "j/tick", Diff: intCreateDiff(t, 1, 3)})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if findJournalFile(t, dir, journal.BaseSuffix) != "" {
			if reg.Snapshot().Counters["iw_server_journal_compactions_total"] == 0 {
				t.Error("base on disk but no compaction counted")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic compaction never produced a base")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalSizeTriggeredCompaction: a tiny threshold compacts on
// the release path itself, no periodic loop involved.
func TestJournalSizeTriggeredCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{JournalDir: dir, JournalCompactBytes: 1, Metrics: reg})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "j/size", Create: true})
	rc.call(&protocol.WriteLock{Seg: "j/size", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "j/size", Diff: intCreateDiff(t, 1, 1)})
	if reg.Snapshot().Counters["iw_server_journal_compactions_total"] == 0 {
		t.Error("release past the size threshold did not compact")
	}
	if findJournalFile(t, dir, journal.BaseSuffix) == "" {
		t.Error("no base on disk after size-triggered compaction")
	}
}

// BenchmarkRecovery measures startup replay: New() over a journal of
// 200 small committed releases (no base, worst case for replay).
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	l, err := store.Segment("bench/rec")
	if err != nil {
		b.Fatal(err)
	}
	descBytes, err := types.Marshal(types.Int32())
	if err != nil {
		b.Fatal(err)
	}
	const releases = 200
	for v := uint32(1); v <= releases; v++ {
		diff := &wire.SegmentDiff{
			Blocks: []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 1, Data: wire.AppendU32(nil, v)}}}},
		}
		if v == 1 {
			diff.Descs = []wire.DescDef{{Serial: 1, Bytes: descBytes}}
			diff.News = []wire.NewBlock{{Serial: 1, DescSerial: 1, Count: 1}}
		}
		err := l.Append(&protocol.Replicate{
			Seg:         "bench/rec",
			PrevVersion: v - 1,
			Version:     v,
			Diff:        diff,
			Applied:     []protocol.AppliedEntry{{WriterID: "w", Seq: v, Version: v}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := New(Options{JournalDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if seg := srv.SegmentSnapshot("bench/rec"); seg == nil || seg.Version != releases {
			b.Fatalf("recovered to %+v", seg)
		}
	}
}
