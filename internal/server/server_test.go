package server

import (
	"net"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// rawClient speaks the protocol directly, for testing the server's
// network layer without the client library in the way.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	next uint32
}

func startTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rawClient{t: t, conn: conn, next: 1}
}

// call sends a request and reads frames until its reply arrives,
// returning any notifications seen on the way.
func (rc *rawClient) call(m protocol.Message) (protocol.Message, []*protocol.Notify) {
	rc.t.Helper()
	id := rc.next
	rc.next++
	if err := protocol.WriteFrame(rc.conn, id, m); err != nil {
		rc.t.Fatal(err)
	}
	var notes []*protocol.Notify
	for {
		gotID, reply, err := protocol.ReadFrame(rc.conn)
		if err != nil {
			rc.t.Fatal(err)
		}
		if gotID == 0 {
			if n, ok := reply.(*protocol.Notify); ok {
				notes = append(notes, n)
			}
			continue
		}
		if gotID != id {
			rc.t.Fatalf("reply id %d, want %d", gotID, id)
		}
		return reply, notes
	}
}

func (rc *rawClient) mustAck(m protocol.Message) {
	rc.t.Helper()
	reply, _ := rc.call(m)
	if _, ok := reply.(*protocol.Ack); !ok {
		rc.t.Fatalf("reply = %T (%v), want Ack", reply, reply)
	}
}

func intCreateDiff(t *testing.T, serial uint32, vals ...uint32) *wire.SegmentDiff {
	return intsDiff(t, 1, serial, len(vals), "", vals...)
}

func TestProtocolHappyPath(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "raw", Profile: "x86-32le"})

	// Create a segment.
	reply, _ := rc.call(&protocol.OpenSegment{Name: "s", Create: true})
	or, ok := reply.(*protocol.OpenReply)
	if !ok || !or.Created || or.Version != 0 {
		t.Fatalf("open reply = %+v", reply)
	}

	// Acquire the write lock and push a diff.
	reply, _ = rc.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
		t.Fatalf("write lock reply = %+v", reply)
	}
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "s", Diff: intCreateDiff(t, 1, 7, 8, 9)})
	vr, ok := reply.(*protocol.VersionReply)
	if !ok || vr.Version != 1 {
		t.Fatalf("unlock reply = %+v", reply)
	}

	// A read lock from version 0 yields the data.
	reply, _ = rc.call(&protocol.ReadLock{Seg: "s", HaveVersion: 0, Policy: coherence.Full()})
	lr, ok := reply.(*protocol.LockReply)
	if !ok || lr.Fresh || lr.Diff == nil || len(lr.Diff.News) != 1 {
		t.Fatalf("read lock reply = %+v", reply)
	}
	rc.mustAck(&protocol.ReadUnlock{Seg: "s"})

	// Up to date: fresh.
	reply, _ = rc.call(&protocol.ReadLock{Seg: "s", HaveVersion: 1, Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
		t.Fatalf("fresh read lock reply = %+v", reply)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	rc := dialRaw(t, addr)

	// Open without create on a missing segment.
	reply, _ := rc.call(&protocol.OpenSegment{Name: "missing", Create: false})
	if e, ok := reply.(*protocol.ErrorReply); !ok || e.Code != protocol.CodeNoSegment {
		t.Errorf("open missing = %+v", reply)
	}
	// Lock on a missing segment.
	reply, _ = rc.call(&protocol.ReadLock{Seg: "missing", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Errorf("read lock missing = %+v", reply)
	}
	// Unlock without the lock.
	rc.call(&protocol.OpenSegment{Name: "s", Create: true})
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "s"})
	if e, ok := reply.(*protocol.ErrorReply); !ok || e.Code != protocol.CodeLockState {
		t.Errorf("unlock without lock = %+v", reply)
	}
	// Double write lock from the same session.
	rc.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	if e, ok := reply.(*protocol.ErrorReply); !ok || e.Code != protocol.CodeLockState {
		t.Errorf("double write lock = %+v", reply)
	}
	// Bad diff: run for a block that does not exist.
	bad := &wire.SegmentDiff{Blocks: []wire.BlockDiff{{Serial: 42, Runs: []wire.Run{{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}}}}}}
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "s", Diff: bad})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Errorf("bad diff = %+v", reply)
	}
	// Subscribe with an invalid policy.
	reply, _ = rc.call(&protocol.Subscribe{Seg: "s", Policy: coherence.Policy{Model: 99}})
	if e, ok := reply.(*protocol.ErrorReply); !ok || e.Code != protocol.CodeBadRequest {
		t.Errorf("bad subscribe = %+v", reply)
	}
}

func TestWriteLockQueueing(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	a := dialRaw(t, addr)
	b := dialRaw(t, addr)
	a.call(&protocol.OpenSegment{Name: "s", Create: true})
	b.call(&protocol.OpenSegment{Name: "s", Create: true})

	if reply, _ := a.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()}); reply == nil {
		t.Fatal("no reply")
	}
	// B's write lock must block until A releases.
	got := make(chan protocol.Message, 1)
	go func() {
		reply, _ := b.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
		got <- reply
	}()
	select {
	case reply := <-got:
		t.Fatalf("B acquired the lock while A held it: %+v", reply)
	case <-time.After(100 * time.Millisecond):
	}
	if reply, _ := a.call(&protocol.WriteUnlock{Seg: "s"}); reply == nil {
		t.Fatal("no unlock reply")
	}
	select {
	case reply := <-got:
		if lr, ok := reply.(*protocol.LockReply); !ok || !lr.Fresh {
			t.Fatalf("B's lock reply = %+v", reply)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("B never acquired the lock")
	}
}

func TestDisconnectReleasesWriteLock(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	a := dialRaw(t, addr)
	b := dialRaw(t, addr)
	a.call(&protocol.OpenSegment{Name: "s", Create: true})
	b.call(&protocol.OpenSegment{Name: "s", Create: true})
	a.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})

	got := make(chan protocol.Message, 1)
	go func() {
		reply, _ := b.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
		got <- reply
	}()
	time.Sleep(50 * time.Millisecond)
	_ = a.conn.Close() // A crashes while holding the lock
	select {
	case reply := <-got:
		if _, ok := reply.(*protocol.LockReply); !ok {
			t.Fatalf("B's reply after A crash = %+v", reply)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lock never released after holder disconnect")
	}
}

func TestNotificationDelivery(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	w := dialRaw(t, addr)
	r := dialRaw(t, addr)
	w.call(&protocol.OpenSegment{Name: "s", Create: true})
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: intCreateDiff(t, 1, 1)})

	r.call(&protocol.OpenSegment{Name: "s", Create: false})
	r.mustAck(&protocol.Subscribe{Seg: "s", HaveVersion: 1, Policy: coherence.Full()})

	// The writer publishes again; the reader must receive a Notify.
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 0, 9)})

	_ = r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	id, msg, err := protocol.ReadFrame(r.conn)
	if err != nil {
		t.Fatalf("waiting for notify: %v", err)
	}
	n, ok := msg.(*protocol.Notify)
	if id != 0 || !ok || n.Seg != "s" || n.Version != 2 {
		t.Fatalf("notification = id %d, %+v", id, msg)
	}
	_ = r.conn.SetReadDeadline(time.Time{})

	// No duplicate notification for the next version until the
	// reader refreshes.
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 0, 10)})
	_ = r.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, msg, err := protocol.ReadFrame(r.conn); err == nil {
		t.Fatalf("unexpected second frame: %+v", msg)
	}
	_ = r.conn.SetReadDeadline(time.Time{})

	// After a refresh (read lock), the next publish notifies again.
	reply, notes := r.call(&protocol.ReadLock{Seg: "s", HaveVersion: 1, Policy: coherence.Full()})
	if lr, ok := reply.(*protocol.LockReply); !ok || lr.Fresh {
		t.Fatalf("read lock = %+v", reply)
	}
	_ = notes
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 0, 11)})
	_ = r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	id, msg, err = protocol.ReadFrame(r.conn)
	if err != nil || id != 0 {
		t.Fatalf("second notify: id %d err %v", id, err)
	}
	if n, ok := msg.(*protocol.Notify); !ok || n.Version != 4 {
		t.Fatalf("second notify = %+v", msg)
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	w := dialRaw(t, addr)
	r := dialRaw(t, addr)
	w.call(&protocol.OpenSegment{Name: "s", Create: true})
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: intCreateDiff(t, 1, 1)})
	r.call(&protocol.OpenSegment{Name: "s", Create: false})
	r.mustAck(&protocol.Subscribe{Seg: "s", HaveVersion: 1, Policy: coherence.Full()})
	r.mustAck(&protocol.Unsubscribe{Seg: "s"})

	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 0, 9)})
	_ = r.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, msg, err := protocol.ReadFrame(r.conn); err == nil {
		t.Fatalf("notification after unsubscribe: %+v", msg)
	}
}

func TestTxCommitRaw(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "a", Create: true})
	rc.call(&protocol.OpenSegment{Name: "b", Create: true})

	// Without locks: rejected.
	reply, _ := rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{{Seg: "a"}, {Seg: "b"}}})
	if e, ok := reply.(*protocol.ErrorReply); !ok || e.Code != protocol.CodeLockState {
		t.Fatalf("tx without locks = %+v", reply)
	}
	// Empty transaction: rejected.
	reply, _ = rc.call(&protocol.TxCommit{})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("empty tx = %+v", reply)
	}
	// Duplicate part: rejected, and — like every failed commit — the
	// transaction aborts, releasing the session's write locks.
	rc.call(&protocol.WriteLock{Seg: "a", Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{{Seg: "a"}, {Seg: "a"}}})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("duplicate part = %+v", reply)
	}
	// Valid commit of two parts; one with data, one empty.
	rc.call(&protocol.WriteLock{Seg: "a", Policy: coherence.Full()})
	rc.call(&protocol.WriteLock{Seg: "b", Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{
		{Seg: "a", Diff: intCreateDiff(t, 1, 5)},
		{Seg: "b"},
	}})
	tr, ok := reply.(*protocol.TxReply)
	if !ok || len(tr.Versions) != 2 || tr.Versions[0] != 1 || tr.Versions[1] != 0 {
		t.Fatalf("tx reply = %+v", reply)
	}
	if seg := srv.SegmentSnapshot("a"); seg.Version != 1 || seg.NumBlocks() != 1 {
		t.Errorf("segment a = v%d, %d blocks", seg.Version, seg.NumBlocks())
	}
	// Locks were released by the commit.
	reply, _ = rc.call(&protocol.WriteLock{Seg: "a", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("relock after tx = %+v", reply)
	}

	// A failing part rolls everything back and releases locks.
	rc.call(&protocol.WriteLock{Seg: "b", Policy: coherence.Full()})
	bad := &wire.SegmentDiff{Blocks: []wire.BlockDiff{{Serial: 99, Runs: []wire.Run{{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}}}}}}
	reply, _ = rc.call(&protocol.TxCommit{Parts: []protocol.WriteUnlock{
		{Seg: "a", Diff: intCreateDiff(t, 2, 6)},
		{Seg: "b", Diff: bad},
	}})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("failing tx = %+v", reply)
	}
	if seg := srv.SegmentSnapshot("a"); seg.Version != 1 || seg.NumBlocks() != 1 {
		t.Errorf("rollback leaked: segment a = v%d, %d blocks", seg.Version, seg.NumBlocks())
	}
	// A failed transaction aborts: the write locks were released, so
	// another session can acquire them immediately.
	other := dialRaw(t, addr)
	reply, _ = other.call(&protocol.WriteLock{Seg: "a", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("lock after aborted tx = %+v", reply)
	}
	reply, _ = other.call(&protocol.WriteLock{Seg: "b", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("lock b after aborted tx = %+v", reply)
	}
}

func TestDiffCoherenceSubscription(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	w := dialRaw(t, addr)
	r := dialRaw(t, addr)
	w.call(&protocol.OpenSegment{Name: "s", Create: true})
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	// 100 units.
	vals := make([]uint32, 100)
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: intCreateDiff(t, 1, vals...)})

	r.call(&protocol.OpenSegment{Name: "s", Create: false})
	// Tolerate 50% staleness.
	r.mustAck(&protocol.Subscribe{Seg: "s", HaveVersion: 1, Policy: coherence.Diff(50)})

	// Modify 16 units (one subblock): 16% < 50%, no notification.
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 0, make([]uint32, 16)...)})
	_ = r.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, msg, err := protocol.ReadFrame(r.conn); err == nil {
		t.Fatalf("notified below the diff bound: %+v", msg)
	}
	// Another 48 units: cumulative 64% > 50%, notify.
	w.call(&protocol.WriteLock{Seg: "s", Policy: coherence.Full()})
	w.call(&protocol.WriteUnlock{Seg: "s", Diff: runDiff(1, 20, make([]uint32, 48)...)})
	_ = r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	id, msg, err := protocol.ReadFrame(r.conn)
	if err != nil || id != 0 {
		t.Fatalf("diff-bound notify: id %d err %v", id, err)
	}
	if _, ok := msg.(*protocol.Notify); !ok {
		t.Fatalf("diff-bound notify = %+v", msg)
	}
}

// TestWriteUnlockDedupAndResume exercises the at-most-once release
// protocol raw: a duplicate (WriterID, Seq) release is answered from
// the applied record without touching the segment, and Resume reports
// the fate of any probed release.
func TestWriteUnlockDedupAndResume(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "d/seg", Create: true})
	rc.call(&protocol.WriteLock{Seg: "d/seg", Policy: coherence.Full()})
	reply, _ := rc.call(&protocol.WriteUnlock{Seg: "d/seg", Diff: intCreateDiff(t, 1, 1, 2), WriterID: "w", Seq: 1})
	vr, ok := reply.(*protocol.VersionReply)
	if !ok || vr.Version != 1 {
		t.Fatalf("first release = %+v", reply)
	}

	// The identical retry — no lock held, diff would collide with the
	// existing block if re-applied — returns the recorded version.
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "d/seg", Diff: intCreateDiff(t, 1, 1, 2), WriterID: "w", Seq: 1})
	if vr, ok = reply.(*protocol.VersionReply); !ok || vr.Version != 1 {
		t.Fatalf("duplicate release = %+v", reply)
	}
	if seg := srv.SegmentSnapshot("d/seg"); seg.Version != 1 || seg.NumBlocks() != 1 {
		t.Fatalf("duplicate modified the segment: v%d, %d blocks", seg.Version, seg.NumBlocks())
	}

	// Resume: applied seq, unknown seq, unknown segment.
	reply, _ = rc.call(&protocol.Resume{Seg: "d/seg", WriterID: "w", Seq: 1})
	if rr, ok := reply.(*protocol.ResumeReply); !ok || !rr.Applied || rr.AppliedVersion != 1 || rr.CurrentVersion != 1 {
		t.Fatalf("Resume(applied) = %+v", reply)
	}
	reply, _ = rc.call(&protocol.Resume{Seg: "d/seg", WriterID: "w", Seq: 2})
	if rr, ok := reply.(*protocol.ResumeReply); !ok || rr.Applied || rr.CurrentVersion != 1 {
		t.Fatalf("Resume(unknown seq) = %+v", reply)
	}
	reply, _ = rc.call(&protocol.Resume{Seg: "d/none", WriterID: "w", Seq: 1})
	if er, ok := reply.(*protocol.ErrorReply); !ok || er.Code != protocol.CodeNoSegment {
		t.Fatalf("Resume(no segment) = %+v", reply)
	}

	// A release without a WriterID keeps the legacy semantics: no
	// record, so an identical resend without the lock is an error.
	rc.call(&protocol.WriteLock{Seg: "d/seg", Policy: coherence.Full()})
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "d/seg"})
	if _, ok := reply.(*protocol.VersionReply); !ok {
		t.Fatalf("anonymous release = %+v", reply)
	}
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "d/seg"})
	if er, ok := reply.(*protocol.ErrorReply); !ok || er.Code != protocol.CodeLockState {
		t.Fatalf("anonymous resend = %+v", reply)
	}
}
