package server

import (
	"errors"
	"fmt"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// Cluster-mode serving (DESIGN.md §7). With Options.Cluster set, this
// server is one node of a sharded, replicated cluster:
//
//   - segment RPCs for segments the ring places elsewhere are answered
//     with a Redirect carrying the full membership (clusterRedirect);
//   - every committed write streams to the segment's replicas before
//     the client sees the acknowledgement, with the at-most-once table
//     mirrored alongside the diff (runReplication);
//   - an epoch bump that makes this node a segment's owner triggers
//     Pull catch-up from the surviving holders (promotion), and one
//     that takes a segment away triggers demotion — subscribers are
//     notified and the local copy reset, so no session keeps reading
//     state the cluster no longer routes here (demoteSegLocked);
//   - Migrate moves a segment under the write-lock barrier and pins
//     the new owner with a membership override.
//
// The invariant everything rests on: a write release is acknowledged
// to the client only after EVERY placed replica holds both its diff
// and its (WriterID, Seq, Version) record; a release that cannot
// reach that state is answered with CodeNotReplicated instead of an
// acknowledgement. A promoted replica therefore answers Resume probes
// exactly as the dead primary would have, and the client's existing
// recovery machinery works unchanged.
//
// The replication stream is epoch-fenced: every Replicate frame
// carries the sender's epoch and address, and a replica whose view is
// at least as new rejects frames from a node it does not place as the
// segment's owner, answering Fenced with its own membership. The
// deposed primary adopts that view (demoting itself) and fails the
// release with CodeNotOwner, which the client recovers by re-routing
// and re-driving the write against the new owner. Two primaries can
// therefore never both get writes acknowledged for the same segment.

// Cluster metric names, documented in OBSERVABILITY.md.
const (
	cmRedirects  = "iw_cluster_redirects_served_total"
	cmReplicate  = "iw_cluster_replicate_total"
	cmReplLag    = "iw_cluster_replication_lag_versions"
	cmPromotions = "iw_cluster_promotions_total"
	cmDemotions  = "iw_cluster_demotions_total"
	cmFenced     = "iw_cluster_writes_fenced_total"
	cmMigrations = "iw_cluster_migrations_total"
	cmPulls      = "iw_cluster_pulls_total"
)

// clusterInstruments holds the server's cluster-mode metric handles;
// nil disables them.
type clusterInstruments struct {
	redirects  *obs.Counter
	replOK     *obs.Counter
	replNack   *obs.Counter
	replErr    *obs.Counter
	replLag    *obs.Gauge
	promotions *obs.Counter
	demotions  *obs.Counter
	fenced     *obs.Counter
	migrations *obs.Counter
	pulls      *obs.Counter
}

func newClusterInstruments(reg *obs.Registry) *clusterInstruments {
	replHelp := "Replicate frames sent to replicas, by outcome (ok, nack = version mismatch answered with catch-up, error = transport failure)."
	return &clusterInstruments{
		redirects: reg.Counter(cmRedirects,
			"Segment RPCs answered with a Redirect because the ring places the segment elsewhere."),
		replOK:   reg.Counter(cmReplicate, replHelp, obs.L("result", "ok")),
		replNack: reg.Counter(cmReplicate, replHelp, obs.L("result", "nack")),
		replErr:  reg.Counter(cmReplicate, replHelp, obs.L("result", "error")),
		replLag: reg.Gauge(cmReplLag,
			"Versions the slowest responding replica trailed the primary by after the latest fan-out (0 = fully acked)."),
		promotions: reg.Counter(cmPromotions,
			"Locally held segments this node became the owner of through an epoch change."),
		demotions: reg.Counter(cmDemotions,
			"Locally held segments this node lost ownership of: subscribers notified, local copy reset."),
		fenced: reg.Counter(cmFenced,
			"Write releases refused because a replica's newer view fenced this node off the segment."),
		migrations: reg.Counter(cmMigrations,
			"Segments this node migrated away to another owner."),
		pulls: reg.Counter(cmPulls,
			"Pull catch-up probes issued during promotions."),
	}
}

// segOf names the segment a client-facing RPC addresses, or "" for
// messages that are not subject to redirect routing.
func segOf(msg protocol.Message) string {
	switch m := msg.(type) {
	case *protocol.OpenSegment:
		return m.Name
	case *protocol.ReadLock:
		return m.Seg
	case *protocol.WriteLock:
		return m.Seg
	case *protocol.WriteUnlock:
		return m.Seg
	case *protocol.Resume:
		return m.Seg
	case *protocol.Subscribe:
		return m.Seg
	case *protocol.Unsubscribe:
		return m.Seg
	case *protocol.Migrate:
		return m.Seg
	}
	return ""
}

// redirectFor returns the Redirect reply for a segment this node does
// not own, or nil when the node owns it (or is not clustered). An
// empty ring (no live members — can only be a misconfiguration)
// redirects nowhere and lets the request proceed locally.
func (s *Server) redirectFor(seg string) protocol.Message {
	if s.cluster == nil || seg == "" {
		return nil
	}
	owner := s.cluster.Owner(seg)
	if owner == "" || owner == s.cluster.Self() {
		return nil
	}
	if s.cins != nil {
		s.cins.redirects.Inc()
	}
	return &protocol.Redirect{Seg: seg, Owner: owner, Ms: s.cluster.Membership()}
}

// clusterRedirect applies redirect routing to one request. TxCommit
// is special: it is redirected only when every part shares a single
// remote owner; parts split across owners are refused, since the
// single-server atomic commit cannot span nodes.
func (sess *session) clusterRedirect(msg protocol.Message) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return nil
	}
	if tx, ok := msg.(*protocol.TxCommit); ok {
		owner := ""
		for i := range tx.Parts {
			o := s.cluster.Owner(tx.Parts[i].Seg)
			if o == "" {
				return nil
			}
			if owner == "" {
				owner = o
			} else if o != owner {
				return errReply(protocol.CodeNotOwner,
					"transaction parts map to different owners (%s, %s); transactions cannot span cluster nodes", owner, o)
			}
		}
		if owner == "" || owner == s.cluster.Self() {
			return nil
		}
		if s.cins != nil {
			s.cins.redirects.Inc()
		}
		return &protocol.Redirect{Seg: tx.Parts[0].Seg, Owner: owner, Ms: s.cluster.Membership()}
	}
	return s.redirectFor(segOf(msg))
}

func (sess *session) handleRingGet(*protocol.RingGet) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	return &protocol.RingReply{Ms: s.cluster.Membership()}
}

func (sess *session) handleRingPush(m *protocol.RingPush) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	s.cluster.AdoptMembership(m.Ms)
	return &protocol.Ack{}
}

// appliedFromEntries rebuilds the at-most-once table from its wire
// form.
func appliedFromEntries(entries []protocol.AppliedEntry) map[string]appliedWrite {
	out := make(map[string]appliedWrite, len(entries))
	for _, e := range entries {
		out[e.WriterID] = appliedWrite{seq: e.Seq, version: e.Version}
	}
	return out
}

// entriesFromApplied is the inverse of appliedFromEntries.
func entriesFromApplied(applied map[string]appliedWrite) []protocol.AppliedEntry {
	out := make([]protocol.AppliedEntry, 0, len(applied))
	for id, ap := range applied {
		out = append(out, protocol.AppliedEntry{WriterID: id, Seq: ap.seq, Version: ap.version})
	}
	return out
}

// handleReplicate applies one primary→replica stream message: an
// incremental diff stamped at the primary's version, or a full
// checkpoint-codec snapshot applied by replacement. A version mismatch
// is answered with a non-acked reply carrying the replica's version,
// which the primary follows with a catch-up diff.
//
// The stream is fenced first: a sender that this node's view — when
// at least as new as the sender's — does not place as the segment's
// owner is refused with Fenced and this node's membership, never
// applied. Migration snapshots pass the fence because the source is
// still the owner until the SetOverride commit. A sender with a
// strictly newer epoch is trusted: it knows a view this node has not
// seen yet, and the gossip riding on the reply path converges us.
func (sess *session) handleReplicate(m *protocol.Replicate) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	if m.From != "" && m.Epoch <= s.cluster.Epoch() && s.cluster.Owner(m.Seg) != m.From {
		return &protocol.ReplicateReply{Fenced: true, Ms: s.cluster.Membership()}
	}
	if len(m.Raw) > 0 {
		// Decode the snapshot before taking the segment lock: the
		// codec work is proportional to segment size and must not
		// stall the segment's other traffic (DESIGN.md §8). Only the
		// pointer swap happens under the lock.
		seg, err := decodeSegment(m.Raw)
		if err != nil {
			return errReply(protocol.CodeBadRequest, "replicate snapshot: %v", err)
		}
		if seg.Name != m.Seg {
			return errReply(protocol.CodeBadRequest, "snapshot is of %q, not %q", seg.Name, m.Seg)
		}
		if s.opts.DiffCacheCap != 0 {
			n := s.opts.DiffCacheCap
			if n < 0 {
				n = 0
			}
			seg.SetDiffCacheCap(n)
		}
		st, err := s.getSeg(m.Seg, true)
		if err != nil {
			return errReply(protocol.CodeInternal, "%v", err)
		}
		s.lockSeg(st)
		// The pointer swap makes the segment resident whatever its
		// prior state (an evicted stub included).
		st.seg = seg
		st.evictedVer = 0
		st.lastTouch.Store(time.Now().UnixNano())
		st.applied = appliedFromEntries(m.Applied)
		st.mu.Unlock()
		// A snapshot supersedes everything journaled so far: install
		// it as the new checkpoint base and truncate the log, so a
		// restart recovers the adopted state rather than replaying a
		// history the snapshot replaced.
		if s.journal != nil {
			if err := s.journalAdoptSnapshot(st, m.Raw, m.Applied, seg.Version); err != nil {
				return errReply(protocol.CodeInternal, "replicate snapshot journal: %v", err)
			}
		}
		return &protocol.ReplicateReply{Acked: true, Version: seg.Version}
	}
	st, err := s.getSeg(m.Seg, true)
	if err != nil {
		return errReply(protocol.CodeInternal, "%v", err)
	}
	s.lockSeg(st)
	if err := s.ensureResident(st); err != nil {
		st.mu.Unlock()
		return errReply(protocol.CodeInternal, "replicate fault-in: %v", err)
	}
	if st.seg.Version != m.PrevVersion {
		ver := st.seg.Version
		st.mu.Unlock()
		return &protocol.ReplicateReply{Acked: false, Version: ver}
	}
	if m.Diff != nil {
		if _, err := st.seg.ApplyReplicatedDiff(m.Diff, m.Version); err != nil {
			st.mu.Unlock()
			return errReply(protocol.CodeBadRequest, "replicate apply: %v", err)
		}
	}
	st.applied = appliedFromEntries(m.Applied)
	ver := st.seg.Version
	// Journal the applied frame before acking — the replica-side half
	// of the durability contract. The append stays under the segment
	// mutex: unlike the release paths there is no logical write lock
	// here, and the mutex is the only thing serializing record order
	// with apply order.
	if m.Diff != nil && m.Version != m.PrevVersion {
		if err := s.journalAppend(st, m); err != nil {
			st.mu.Unlock()
			return errReply(protocol.CodeInternal, "replicate journal: %v", err)
		}
	}
	st.mu.Unlock()
	s.maybeCompactJournal(st)
	return &protocol.ReplicateReply{Acked: true, Version: ver}
}

// journalAdoptSnapshot installs a received full snapshot (raw
// checkpoint-codec bytes plus applied table) as a segment's journal
// base, truncating its log. Called without the segment mutex.
func (s *Server) journalAdoptSnapshot(st *segState, raw []byte, applied []protocol.AppliedEntry, version uint32) error {
	l, err := s.journal.Segment(st.name)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), raw...)
	buf = appendApplied(buf, appliedFromEntries(applied))
	if err := l.Compact(version, sealCheckpoint(buf)); err != nil {
		return err
	}
	if s.ins != nil {
		s.ins.journalCompactions.Inc()
	}
	return nil
}

// handlePull answers a promotion catch-up probe with this node's
// version of the segment and a diff covering everything past the
// requester's version.
func (sess *session) handlePull(m *protocol.Pull) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	st, ok := s.reg.get(m.Seg)
	if !ok {
		return &protocol.PullReply{}
	}
	s.lockSeg(st)
	defer st.mu.Unlock()
	// A promotion may pull from a replica whose copy is evicted:
	// fault it in before answering, so the reply carries real state.
	if err := s.ensureResident(st); err != nil {
		return errReply(protocol.CodeInternal, "pull fault-in: %v", err)
	}
	reply := &protocol.PullReply{Version: st.seg.Version, Applied: entriesFromApplied(st.applied)}
	if st.seg.Version > m.HaveVersion {
		d, err := st.seg.CollectDiff(m.HaveVersion)
		if err != nil {
			return errReply(protocol.CodeInternal, "pull collect: %v", err)
		}
		reply.Diff = d
	}
	return reply
}

// replicationJob captures everything a post-commit fan-out needs while
// the server lock is still held.
type replicationJob struct {
	st      *segState
	seg     string
	prevVer uint32
	version uint32
	diff    *wire.SegmentDiff
	applied []protocol.AppliedEntry
	addrs   []string
}

// replicationJob returns the fan-out to perform for a committed write,
// or nil when no replication is due (not clustered, no diff applied,
// or the segment has no replicas). Called with the segment's lock
// held.
func (s *Server) replicationJob(st *segState, seg string, prevVer, version uint32, d *wire.SegmentDiff) *replicationJob {
	if s.cluster == nil || version == prevVer || d == nil {
		return nil
	}
	addrs := s.cluster.ReplicasOf(seg)
	if len(addrs) == 0 {
		return nil
	}
	return &replicationJob{
		st:      st,
		seg:     seg,
		prevVer: prevVer,
		version: version,
		diff:    d,
		applied: entriesFromApplied(st.applied),
		addrs:   addrs,
	}
}

// errWriteFenced marks a release refused because a replica's newer
// membership view no longer places this node as the segment's owner.
var errWriteFenced = errors.New("ownership moved during the release")

// runReplication streams one committed diff to every replica and
// returns nil only when every one of them acked it. Called WITHOUT
// the segment's mutex, but with the segment's write lock still held
// by the committing session, which freezes the version sequence for
// the duration. A replica that reports a version mismatch gets one
// catch-up diff collected from its version; one that fences the
// stream deposes this primary on the spot — its view is adopted
// (demoting the segment) and errWriteFenced is returned; one that
// cannot be reached or will not ack fails the release, because an
// acknowledgement the client can trust requires every placed replica
// to hold the diff (DESIGN.md §7.3). The failed diff is not rolled
// back locally: the next successful fan-out's catch-up path re-covers
// it, and the client was told the release failed.
func (s *Server) runReplication(job *replicationJob) error {
	maxLag := int64(0)
	var firstErr error
	for _, addr := range job.addrs {
		rr, err := s.replicateTo(addr, &protocol.Replicate{
			Seg:         job.seg,
			PrevVersion: job.prevVer,
			Version:     job.version,
			Diff:        job.diff,
			Applied:     job.applied,
		})
		if err != nil {
			if s.cins != nil {
				s.cins.replErr.Inc()
			}
			s.logf("replicate %s to %s: %v", job.seg, addr, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s: %w", addr, err)
			}
			continue
		}
		if rr.Fenced {
			if s.cins != nil {
				s.cins.fenced.Inc()
			}
			if s.flight != nil {
				s.flight.Record(obs.Event{Name: "cluster.fence", Seg: job.seg, N: int64(rr.Ms.Epoch), Err: "replicate fenced by " + addr})
			}
			s.logf("replicate %s to %s: fenced at epoch %d; adopting replica's view", job.seg, addr, rr.Ms.Epoch)
			s.cluster.AdoptMembership(rr.Ms)
			return errWriteFenced
		}
		if !rr.Acked {
			// The replica is on a different version (it may be fresh,
			// or have missed an earlier fan-out): send one catch-up
			// diff from its version.
			if s.cins != nil {
				s.cins.replNack.Inc()
			}
			rr, err = s.catchUpReplica(addr, job, rr.Version)
			if err != nil {
				if s.cins != nil {
					s.cins.replErr.Inc()
				}
				s.logf("replicate catch-up %s to %s: %v", job.seg, addr, err)
				if firstErr == nil {
					firstErr = fmt.Errorf("replica %s: %w", addr, err)
				}
				continue
			}
			if rr.Fenced {
				if s.cins != nil {
					s.cins.fenced.Inc()
				}
				if s.flight != nil {
					s.flight.Record(obs.Event{Name: "cluster.fence", Seg: job.seg, N: int64(rr.Ms.Epoch), Err: "catch-up fenced by " + addr})
				}
				s.logf("replicate catch-up %s to %s: fenced at epoch %d; adopting replica's view", job.seg, addr, rr.Ms.Epoch)
				s.cluster.AdoptMembership(rr.Ms)
				return errWriteFenced
			}
		}
		if rr.Acked {
			if s.cins != nil {
				s.cins.replOK.Inc()
			}
		} else if firstErr == nil {
			firstErr = fmt.Errorf("replica %s did not ack (at version %d, want %d)", addr, rr.Version, job.version)
		}
		if lag := int64(job.version) - int64(rr.Version); lag > maxLag {
			maxLag = lag
		}
	}
	if s.cins != nil {
		s.cins.replLag.Set(maxLag)
	}
	return firstErr
}

// replicateTo sends one Replicate frame to a replica, stamping it with
// this node's identity and epoch so the replica can fence it.
func (s *Server) replicateTo(addr string, m *protocol.Replicate) (*protocol.ReplicateReply, error) {
	m.Epoch = s.cluster.Epoch()
	m.From = s.cluster.Self()
	reply, err := s.cluster.Call(addr, m)
	if err != nil {
		return nil, err
	}
	rr, ok := reply.(*protocol.ReplicateReply)
	if !ok {
		return nil, errReply(protocol.CodeInternal, "replica answered Replicate with %T", reply)
	}
	return rr, nil
}

// catchUpReplica collects a diff spanning the replica's version to the
// job's version and sends it. The committing session still holds the
// write lock, so the collection is against a frozen version. A replica
// already at or beyond the version being committed — without having
// acked it — means some other node is assigning versions to this
// segment; that is a failed release, never an ack, or the client
// would be told a write is durable that the other primary's history
// will overwrite.
func (s *Server) catchUpReplica(addr string, job *replicationJob, replicaVer uint32) (*protocol.ReplicateReply, error) {
	if replicaVer >= job.version {
		return nil, fmt.Errorf("replica at version %d >= committed %d without acking: divergent primaries", replicaVer, job.version)
	}
	if rr, ok, err := s.catchUpFromJournal(addr, job, replicaVer); ok {
		return rr, err
	}
	s.lockSeg(job.st)
	// The release fan-out holds the write lock (or the flushing flag),
	// which fences eviction; this call is defensive.
	if err := s.ensureResident(job.st); err != nil {
		job.st.mu.Unlock()
		return nil, err
	}
	d, err := job.st.seg.CollectDiff(replicaVer)
	job.st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.replicateTo(addr, &protocol.Replicate{
		Seg:         job.seg,
		PrevVersion: replicaVer,
		Version:     job.version,
		Diff:        d,
		Applied:     job.applied,
	})
}

// catchUpFromJournal serves a replica's catch-up from the journal
// window: when the journaled records chain contiguously from the
// replica's version to the one being committed, they are re-sent in
// order as the original persisted Replicate frames — no diff
// collection, and the replica's own journal receives the exact same
// record stream the primary holds. ok=false means the window does not
// cover the gap (journal disabled, records compacted away, or the
// replica mid-stream stopped acking) and the caller falls back to a
// collected diff. An error or a fence is returned with ok=true: the
// transport or ownership failure is real, not a coverage gap.
func (s *Server) catchUpFromJournal(addr string, job *replicationJob, replicaVer uint32) (rr *protocol.ReplicateReply, ok bool, err error) {
	if s.journal == nil {
		return nil, false, nil
	}
	l, err := s.journal.Segment(job.seg)
	if err != nil {
		return nil, false, nil
	}
	cur := replicaVer
	var chain []*protocol.Replicate
	for _, rec := range l.Window(replicaVer) {
		if rec.Version <= cur {
			continue
		}
		if rec.PrevVersion != cur || rec.Diff == nil {
			return nil, false, nil // gap: the base swallowed part of the range
		}
		chain = append(chain, rec)
		cur = rec.Version
		if cur >= job.version {
			break
		}
	}
	if cur < job.version {
		return nil, false, nil
	}
	for _, rec := range chain {
		rr, err = s.replicateTo(addr, rec)
		if err != nil {
			return nil, true, err
		}
		if rr.Fenced {
			return rr, true, nil
		}
		if !rr.Acked {
			return nil, false, nil
		}
		if s.ins != nil {
			s.ins.journalReplayCatchup.Inc()
		}
	}
	return rr, true, nil
}

// onEpochChange reacts to a membership change. For every locally held
// segment whose owner the new ring says is this node but the previous
// ring said was someone else, this node was just promoted — it pulls
// catch-up state from every surviving holder so it resumes from the
// highest acknowledged version in the cluster. The reverse transition
// is a demotion: segments the previous ring placed here but the new
// one places elsewhere are reset and their subscribers notified, so no
// client keeps satisfying reads from a copy the cluster has routed
// away (see demoteSegLocked). Runs on the goroutine that advanced the
// epoch (heartbeat, gossip handler, or MarkDead caller), never holding
// any lock across peer calls. The demotion sweep walks the registry
// snapshot in ascending segment-name order — the global ordering rule
// (DESIGN.md §8) — taking one segment lock at a time.
func (s *Server) onEpochChange(ms protocol.Membership) {
	if s.flight != nil {
		s.flight.Record(obs.Event{Name: "cluster.epoch", N: int64(ms.Epoch)})
	}
	newRing := s.cluster.Ring()
	self := s.cluster.Self()

	s.mu.Lock()
	prevRing := s.lastRing
	s.lastRing = newRing
	s.mu.Unlock()

	var promoted []string
	var notifications []func()
	for _, st := range s.reg.snapshot() {
		wasOwner := prevRing != nil && prevRing.Owner(st.name) == self
		isOwner := newRing.Owner(st.name) == self
		switch {
		case isOwner && !wasOwner:
			promoted = append(promoted, st.name)
		case wasOwner && !isOwner:
			s.lockSeg(st)
			notes := s.demoteSegLocked(st)
			st.mu.Unlock()
			notifications = append(notifications, notes...)
			if s.cins != nil {
				s.cins.demotions.Inc()
			}
			if s.flight != nil {
				s.flight.Record(obs.Event{Name: "cluster.demote", Seg: st.name, N: int64(len(notes))})
			}
		}
	}

	for _, n := range notifications {
		n()
	}
	for _, seg := range promoted {
		if s.cins != nil {
			s.cins.promotions.Inc()
		}
		if s.flight != nil {
			s.flight.Record(obs.Event{Name: "cluster.promote", Seg: seg, N: int64(ms.Epoch)})
		}
		s.promoteSegment(seg, newRing, self)
	}
}

// demoteSegLocked strips a segment this node no longer owns: every
// subscriber gets an unconditional Notify — their next access
// round-trips, receives the Redirect, and re-validates at the new
// owner — and the local copy, subscription table, and at-most-once
// table are reset. The reset is what makes a deposed primary safe: a
// locally applied but fenced (never replicated) write is discarded
// rather than left to collide with the new owner's version sequence,
// and every *acknowledged* version is recoverable because all placed
// replicas hold it. The lock queue is left alone — queued writers
// drain through the barrier, re-check ownership, and are redirected.
// Called with the segment's lock held; returns the notification sends
// to perform once it is released.
func (s *Server) demoteSegLocked(st *segState) []func() {
	var out []func()
	// An evicted stub demotes like anything else: the journal reset
	// below is what matters, plus a fresh empty image replacing it.
	name, ver := st.name, st.residentVersionLocked()
	for cl := range st.subs {
		target := cl
		out = append(out, func() {
			// Shed-on-overload is safe here too: a shed subscriber is
			// evicted and re-validates on reconnect, which is exactly
			// what this Notify would have made it do.
			target.sendNotify(&protocol.Notify{Seg: name, Version: ver})
		})
	}
	st.subs = make(map[*session]*subState)
	seg := NewSegment(name)
	if s.opts.DiffCacheCap != 0 {
		n := s.opts.DiffCacheCap
		if n < 0 {
			n = 0
		}
		seg.SetDiffCacheCap(n)
	}
	st.seg = seg
	st.evictedVer = 0
	st.applied = make(map[string]appliedWrite)
	if s.journal != nil {
		// The journal must not outlive the reset: a restart would
		// otherwise resurrect state the cluster routed away. The file
		// removal runs under the segment mutex — demotion is rare, and
		// the on-disk reset must be atomic with the in-memory one.
		if l, err := s.journal.Segment(name); err == nil {
			if rerr := l.Reset(); rerr != nil {
				s.logf("journal reset %s: %v", name, rerr)
			}
		}
	}
	s.logf("demoted %s at version %d (ownership moved)", name, ver)
	return out
}

// promoteSegment pulls seg's state from every other live node and
// adopts the highest version seen, making this node's copy at least as
// new as anything a client was acknowledged against.
func (s *Server) promoteSegment(seg string, ring *cluster.Ring, self string) {
	for _, addr := range ring.Live() {
		if addr == self {
			continue
		}
		if s.cins != nil {
			s.cins.pulls.Inc()
		}
		haveVer := uint32(0)
		if st, ok := s.reg.get(seg); ok {
			s.lockSeg(st)
			// The stub's version answers the probe without faulting
			// the image in; only an actual catch-up apply needs it.
			haveVer = st.residentVersionLocked()
			st.mu.Unlock()
		}
		reply, err := s.cluster.Call(addr, &protocol.Pull{Seg: seg, HaveVersion: haveVer})
		if err != nil {
			s.logf("promotion pull %s from %s: %v", seg, addr, err)
			continue
		}
		pr, ok := reply.(*protocol.PullReply)
		if !ok || pr.Version <= haveVer || pr.Diff == nil {
			continue
		}
		if st, err := s.getSeg(seg, true); err == nil {
			s.lockSeg(st)
			if ferr := s.ensureResident(st); ferr != nil {
				s.logf("promotion fault-in %s: %v", seg, ferr)
				st.mu.Unlock()
				continue
			}
			if pr.Version > st.seg.Version {
				prevVer := st.seg.Version
				if _, aerr := st.seg.ApplyReplicatedDiff(pr.Diff, pr.Version); aerr != nil {
					s.logf("promotion apply %s from %s: %v", seg, addr, aerr)
				} else {
					st.applied = appliedFromEntries(pr.Applied)
					// Journal the adopted catch-up so a restart
					// recovers the promoted version. Under the segment
					// mutex, like the replica apply path: the mutex is
					// what orders this record against the stream.
					if jerr := s.journalAppend(st, &protocol.Replicate{
						Seg:         seg,
						PrevVersion: prevVer,
						Version:     pr.Version,
						Diff:        pr.Diff,
						Applied:     pr.Applied,
					}); jerr != nil {
						s.logf("journal promotion %s: %v", seg, jerr)
					}
					s.logf("promoted %s to version %d (from %s)", seg, pr.Version, addr)
				}
			}
			st.mu.Unlock()
		}
	}
}

// handleMigrate moves a segment this node owns to the named target:
// it takes the segment's write lock (the barrier — in-flight writers
// drain first, queued ones re-check ownership after), ships a full
// snapshot to the target, pins the new owner with a membership
// override, and gossips the bumped epoch. The dispatch-level redirect
// has already routed this request to the owner.
func (sess *session) handleMigrate(m *protocol.Migrate) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	if m.Target == s.cluster.Self() {
		return &protocol.Ack{} // already here
	}
	live := false
	for _, addr := range s.cluster.Ring().Live() {
		if addr == m.Target {
			live = true
			break
		}
	}
	if !live {
		return errReply(protocol.CodeBadRequest, "migration target %q is not a live member", m.Target)
	}

	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	s.lockSeg(st)
	if st.writer == sess {
		st.mu.Unlock()
		return errReply(protocol.CodeLockState, "cannot migrate while holding the write lock")
	}
	// Write-lock barrier: queue like any writer, with direct handoff.
	for st.writer != nil {
		w := &waiter{sess: sess, ch: make(chan struct{})}
		st.waiters = append(st.waiters, w)
		st.mu.Unlock()
		select {
		case <-w.ch:
		case <-s.done:
			return errReply(protocol.CodeInternal, "server shutting down")
		}
		s.lockSeg(st)
		if st.writer == sess {
			break
		}
	}
	st.writer = sess
	if err := s.ensureResident(st); err != nil {
		releaseWriter(st, sess)
		st.mu.Unlock()
		return errReply(protocol.CodeInternal, "migrate fault-in: %v", err)
	}
	raw := st.seg.encode()
	applied := entriesFromApplied(st.applied)
	version := st.seg.Version
	st.mu.Unlock()

	// Ship the snapshot while the barrier holds writers off.
	rr, rerr := s.replicateTo(m.Target, &protocol.Replicate{
		Seg:     m.Seg,
		Version: version,
		Raw:     raw,
		Applied: applied,
	})
	if rerr == nil && rr.Fenced {
		// The target's newer view says this node no longer owns the
		// segment; adopt it (demoting locally) and fail the migration.
		if s.cins != nil {
			s.cins.fenced.Inc()
		}
		if s.flight != nil {
			s.flight.Record(obs.Event{Name: "cluster.fence", Seg: m.Seg, N: int64(rr.Ms.Epoch), Err: "migrate fenced by " + m.Target})
		}
		s.cluster.AdoptMembership(rr.Ms)
		rerr = errWriteFenced
	}
	if rerr != nil || !rr.Acked {
		s.lockSeg(st)
		releaseWriter(st, sess)
		st.mu.Unlock()
		if rerr == nil {
			rerr = errReply(protocol.CodeInternal, "target did not ack snapshot")
		}
		return errReply(protocol.CodeInternal, "migrating %q to %s: %v", m.Seg, m.Target, rerr)
	}

	// Commit: pin the new owner, bump the epoch, gossip. From here on,
	// the dispatch redirect answers every client RPC for this segment,
	// and the queued writers re-check ownership when the barrier lifts.
	s.cluster.SetOverride(m.Seg, m.Target)
	if s.cins != nil {
		s.cins.migrations.Inc()
	}
	if s.flight != nil {
		s.flight.Record(obs.Event{Name: "cluster.migrate", Seg: m.Seg, N: int64(version)})
	}
	s.logf("migrated %s to %s at version %d", m.Seg, m.Target, version)

	s.lockSeg(st)
	releaseWriter(st, sess)
	st.mu.Unlock()
	return &protocol.Ack{}
}
