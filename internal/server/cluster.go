package server

import (
	"interweave/internal/cluster"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// Cluster-mode serving (DESIGN.md §7). With Options.Cluster set, this
// server is one node of a sharded, replicated cluster:
//
//   - segment RPCs for segments the ring places elsewhere are answered
//     with a Redirect carrying the full membership (clusterRedirect);
//   - every committed write streams to the segment's replicas before
//     the client sees the acknowledgement, with the at-most-once table
//     mirrored alongside the diff (runReplication);
//   - an epoch bump that makes this node a segment's owner triggers
//     Pull catch-up from the surviving holders (promotion);
//   - Migrate moves a segment under the write-lock barrier and pins
//     the new owner with a membership override.
//
// The invariant everything rests on: a write release is acknowledged
// to the client only after the replicas hold both its diff and its
// (WriterID, Seq, Version) record. A promoted replica therefore
// answers Resume probes exactly as the dead primary would have, and
// the client's existing recovery machinery works unchanged.

// Cluster metric names, documented in OBSERVABILITY.md.
const (
	cmRedirects  = "iw_cluster_redirects_served_total"
	cmReplicate  = "iw_cluster_replicate_total"
	cmReplLag    = "iw_cluster_replication_lag_versions"
	cmPromotions = "iw_cluster_promotions_total"
	cmMigrations = "iw_cluster_migrations_total"
	cmPulls      = "iw_cluster_pulls_total"
)

// clusterInstruments holds the server's cluster-mode metric handles;
// nil disables them.
type clusterInstruments struct {
	redirects  *obs.Counter
	replOK     *obs.Counter
	replNack   *obs.Counter
	replErr    *obs.Counter
	replLag    *obs.Gauge
	promotions *obs.Counter
	migrations *obs.Counter
	pulls      *obs.Counter
}

func newClusterInstruments(reg *obs.Registry) *clusterInstruments {
	replHelp := "Replicate frames sent to replicas, by outcome (ok, nack = version mismatch answered with catch-up, error = transport failure)."
	return &clusterInstruments{
		redirects: reg.Counter(cmRedirects,
			"Segment RPCs answered with a Redirect because the ring places the segment elsewhere."),
		replOK:   reg.Counter(cmReplicate, replHelp, obs.L("result", "ok")),
		replNack: reg.Counter(cmReplicate, replHelp, obs.L("result", "nack")),
		replErr:  reg.Counter(cmReplicate, replHelp, obs.L("result", "error")),
		replLag: reg.Gauge(cmReplLag,
			"Versions the slowest responding replica trailed the primary by after the latest fan-out (0 = fully acked)."),
		promotions: reg.Counter(cmPromotions,
			"Locally held segments this node became the owner of through an epoch change."),
		migrations: reg.Counter(cmMigrations,
			"Segments this node migrated away to another owner."),
		pulls: reg.Counter(cmPulls,
			"Pull catch-up probes issued during promotions."),
	}
}

// segOf names the segment a client-facing RPC addresses, or "" for
// messages that are not subject to redirect routing.
func segOf(msg protocol.Message) string {
	switch m := msg.(type) {
	case *protocol.OpenSegment:
		return m.Name
	case *protocol.ReadLock:
		return m.Seg
	case *protocol.WriteLock:
		return m.Seg
	case *protocol.WriteUnlock:
		return m.Seg
	case *protocol.Resume:
		return m.Seg
	case *protocol.Subscribe:
		return m.Seg
	case *protocol.Unsubscribe:
		return m.Seg
	case *protocol.Migrate:
		return m.Seg
	}
	return ""
}

// redirectFor returns the Redirect reply for a segment this node does
// not own, or nil when the node owns it (or is not clustered). An
// empty ring (no live members — can only be a misconfiguration)
// redirects nowhere and lets the request proceed locally.
func (s *Server) redirectFor(seg string) protocol.Message {
	if s.cluster == nil || seg == "" {
		return nil
	}
	owner := s.cluster.Owner(seg)
	if owner == "" || owner == s.cluster.Self() {
		return nil
	}
	if s.cins != nil {
		s.cins.redirects.Inc()
	}
	return &protocol.Redirect{Seg: seg, Owner: owner, Ms: s.cluster.Membership()}
}

// clusterRedirect applies redirect routing to one request. TxCommit
// is special: it is redirected only when every part shares a single
// remote owner; parts split across owners are refused, since the
// single-server atomic commit cannot span nodes.
func (sess *session) clusterRedirect(msg protocol.Message) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return nil
	}
	if tx, ok := msg.(*protocol.TxCommit); ok {
		owner := ""
		for i := range tx.Parts {
			o := s.cluster.Owner(tx.Parts[i].Seg)
			if o == "" {
				return nil
			}
			if owner == "" {
				owner = o
			} else if o != owner {
				return errReply(protocol.CodeNotOwner,
					"transaction parts map to different owners (%s, %s); transactions cannot span cluster nodes", owner, o)
			}
		}
		if owner == "" || owner == s.cluster.Self() {
			return nil
		}
		if s.cins != nil {
			s.cins.redirects.Inc()
		}
		return &protocol.Redirect{Seg: tx.Parts[0].Seg, Owner: owner, Ms: s.cluster.Membership()}
	}
	return s.redirectFor(segOf(msg))
}

func (sess *session) handleRingGet(*protocol.RingGet) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	return &protocol.RingReply{Ms: s.cluster.Membership()}
}

func (sess *session) handleRingPush(m *protocol.RingPush) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	s.cluster.AdoptMembership(m.Ms)
	return &protocol.Ack{}
}

// appliedFromEntries rebuilds the at-most-once table from its wire
// form.
func appliedFromEntries(entries []protocol.AppliedEntry) map[string]appliedWrite {
	out := make(map[string]appliedWrite, len(entries))
	for _, e := range entries {
		out[e.WriterID] = appliedWrite{seq: e.Seq, version: e.Version}
	}
	return out
}

// entriesFromApplied is the inverse of appliedFromEntries.
func entriesFromApplied(applied map[string]appliedWrite) []protocol.AppliedEntry {
	out := make([]protocol.AppliedEntry, 0, len(applied))
	for id, ap := range applied {
		out = append(out, protocol.AppliedEntry{WriterID: id, Seq: ap.seq, Version: ap.version})
	}
	return out
}

// handleReplicate applies one primary→replica stream message: an
// incremental diff stamped at the primary's version, or a full
// checkpoint-codec snapshot applied by replacement. A version mismatch
// is answered with a non-acked reply carrying the replica's version,
// which the primary follows with a catch-up diff.
func (sess *session) handleReplicate(m *protocol.Replicate) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(m.Raw) > 0 {
		seg, err := decodeSegment(m.Raw)
		if err != nil {
			return errReply(protocol.CodeBadRequest, "replicate snapshot: %v", err)
		}
		if seg.Name != m.Seg {
			return errReply(protocol.CodeBadRequest, "snapshot is of %q, not %q", seg.Name, m.Seg)
		}
		st, err := s.getSeg(m.Seg, true)
		if err != nil {
			return errReply(protocol.CodeInternal, "%v", err)
		}
		if s.opts.DiffCacheCap != 0 {
			n := s.opts.DiffCacheCap
			if n < 0 {
				n = 0
			}
			seg.SetDiffCacheCap(n)
		}
		st.seg = seg
		st.applied = appliedFromEntries(m.Applied)
		return &protocol.ReplicateReply{Acked: true, Version: seg.Version}
	}
	st, err := s.getSeg(m.Seg, true)
	if err != nil {
		return errReply(protocol.CodeInternal, "%v", err)
	}
	if st.seg.Version != m.PrevVersion {
		return &protocol.ReplicateReply{Acked: false, Version: st.seg.Version}
	}
	if m.Diff != nil {
		if _, err := st.seg.ApplyReplicatedDiff(m.Diff, m.Version); err != nil {
			return errReply(protocol.CodeBadRequest, "replicate apply: %v", err)
		}
	}
	st.applied = appliedFromEntries(m.Applied)
	return &protocol.ReplicateReply{Acked: true, Version: st.seg.Version}
}

// handlePull answers a promotion catch-up probe with this node's
// version of the segment and a diff covering everything past the
// requester's version.
func (sess *session) handlePull(m *protocol.Pull) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.segs[m.Seg]
	if !ok {
		return &protocol.PullReply{}
	}
	reply := &protocol.PullReply{Version: st.seg.Version, Applied: entriesFromApplied(st.applied)}
	if st.seg.Version > m.HaveVersion {
		d, err := st.seg.CollectDiff(m.HaveVersion)
		if err != nil {
			return errReply(protocol.CodeInternal, "pull collect: %v", err)
		}
		reply.Diff = d
	}
	return reply
}

// replicationJob captures everything a post-commit fan-out needs while
// the server lock is still held.
type replicationJob struct {
	st      *segState
	seg     string
	prevVer uint32
	version uint32
	diff    *wire.SegmentDiff
	applied []protocol.AppliedEntry
	addrs   []string
}

// replicationJob returns the fan-out to perform for a committed write,
// or nil when no replication is due (not clustered, no diff applied,
// or the segment has no replicas). Called with s.mu held.
func (s *Server) replicationJob(st *segState, seg string, prevVer, version uint32, d *wire.SegmentDiff) *replicationJob {
	if s.cluster == nil || version == prevVer || d == nil {
		return nil
	}
	addrs := s.cluster.ReplicasOf(seg)
	if len(addrs) == 0 {
		return nil
	}
	return &replicationJob{
		st:      st,
		seg:     seg,
		prevVer: prevVer,
		version: version,
		diff:    d,
		applied: entriesFromApplied(st.applied),
		addrs:   addrs,
	}
}

// runReplication streams one committed diff to every replica and
// records the outcome. Called WITHOUT s.mu, but with the segment's
// write lock still held by the committing session, which freezes the
// version sequence for the duration. A replica that reports a version
// mismatch gets one catch-up diff collected from its version; a
// replica that cannot be reached is counted and skipped — failure
// detection and re-sync belong to the heartbeat/promotion path, and a
// wedged replica must not wedge the primary's writers.
func (s *Server) runReplication(job *replicationJob) {
	maxLag := int64(0)
	for _, addr := range job.addrs {
		acked, replicaVer, err := s.replicateTo(addr, &protocol.Replicate{
			Seg:         job.seg,
			PrevVersion: job.prevVer,
			Version:     job.version,
			Diff:        job.diff,
			Applied:     job.applied,
		})
		if err != nil {
			if s.cins != nil {
				s.cins.replErr.Inc()
			}
			s.logf("replicate %s to %s: %v", job.seg, addr, err)
			continue
		}
		if !acked {
			// The replica is on a different version (it may be fresh,
			// or have missed an earlier fan-out): send one catch-up
			// diff from its version.
			if s.cins != nil {
				s.cins.replNack.Inc()
			}
			acked, replicaVer, err = s.catchUpReplica(addr, job, replicaVer)
			if err != nil {
				if s.cins != nil {
					s.cins.replErr.Inc()
				}
				s.logf("replicate catch-up %s to %s: %v", job.seg, addr, err)
				continue
			}
		}
		if acked {
			if s.cins != nil {
				s.cins.replOK.Inc()
			}
		}
		if lag := int64(job.version) - int64(replicaVer); lag > maxLag {
			maxLag = lag
		}
	}
	if s.cins != nil {
		s.cins.replLag.Set(maxLag)
	}
}

// replicateTo sends one Replicate frame to a replica.
func (s *Server) replicateTo(addr string, m *protocol.Replicate) (acked bool, version uint32, err error) {
	reply, err := s.cluster.Call(addr, m)
	if err != nil {
		return false, 0, err
	}
	rr, ok := reply.(*protocol.ReplicateReply)
	if !ok {
		return false, 0, errReply(protocol.CodeInternal, "replica answered Replicate with %T", reply)
	}
	return rr.Acked, rr.Version, nil
}

// catchUpReplica collects a diff spanning the replica's version to the
// job's version and sends it. The committing session still holds the
// write lock, so the collection is against a frozen version.
func (s *Server) catchUpReplica(addr string, job *replicationJob, replicaVer uint32) (bool, uint32, error) {
	if replicaVer >= job.version {
		// The replica is already at (or beyond — possible after a
		// partitioned promotion) our version; nothing to send.
		return true, replicaVer, nil
	}
	s.mu.Lock()
	d, err := job.st.seg.CollectDiff(replicaVer)
	s.mu.Unlock()
	if err != nil {
		return false, replicaVer, err
	}
	return s.replicateTo(addr, &protocol.Replicate{
		Seg:         job.seg,
		PrevVersion: replicaVer,
		Version:     job.version,
		Diff:        d,
		Applied:     job.applied,
	})
}

// onEpochChange reacts to a membership change: for every locally held
// segment whose owner the new ring says is this node but the previous
// ring said was someone else, this node was just promoted — it pulls
// catch-up state from every surviving holder so it resumes from the
// highest acknowledged version in the cluster. Runs on the goroutine
// that advanced the epoch (heartbeat, gossip handler, or MarkDead
// caller), never holding s.mu across peer calls.
func (s *Server) onEpochChange(ms protocol.Membership) {
	newRing := s.cluster.Ring()
	self := s.cluster.Self()

	s.mu.Lock()
	prevRing := s.lastRing
	s.lastRing = newRing
	var promoted []string
	for name := range s.segs {
		if newRing.Owner(name) != self {
			continue
		}
		if prevRing != nil && prevRing.Owner(name) == self {
			continue // owned it before; nothing to catch up
		}
		promoted = append(promoted, name)
	}
	s.mu.Unlock()

	for _, seg := range promoted {
		if s.cins != nil {
			s.cins.promotions.Inc()
		}
		s.promoteSegment(seg, newRing, self)
	}
}

// promoteSegment pulls seg's state from every other live node and
// adopts the highest version seen, making this node's copy at least as
// new as anything a client was acknowledged against.
func (s *Server) promoteSegment(seg string, ring *cluster.Ring, self string) {
	for _, addr := range ring.Live() {
		if addr == self {
			continue
		}
		if s.cins != nil {
			s.cins.pulls.Inc()
		}
		s.mu.Lock()
		haveVer := uint32(0)
		if st, ok := s.segs[seg]; ok {
			haveVer = st.seg.Version
		}
		s.mu.Unlock()
		reply, err := s.cluster.Call(addr, &protocol.Pull{Seg: seg, HaveVersion: haveVer})
		if err != nil {
			s.logf("promotion pull %s from %s: %v", seg, addr, err)
			continue
		}
		pr, ok := reply.(*protocol.PullReply)
		if !ok || pr.Version <= haveVer || pr.Diff == nil {
			continue
		}
		s.mu.Lock()
		st, err := s.getSeg(seg, true)
		if err == nil && pr.Version > st.seg.Version {
			if _, aerr := st.seg.ApplyReplicatedDiff(pr.Diff, pr.Version); aerr != nil {
				s.logf("promotion apply %s from %s: %v", seg, addr, aerr)
			} else {
				st.applied = appliedFromEntries(pr.Applied)
				s.logf("promoted %s to version %d (from %s)", seg, pr.Version, addr)
			}
		}
		s.mu.Unlock()
	}
}

// handleMigrate moves a segment this node owns to the named target:
// it takes the segment's write lock (the barrier — in-flight writers
// drain first, queued ones re-check ownership after), ships a full
// snapshot to the target, pins the new owner with a membership
// override, and gossips the bumped epoch. The dispatch-level redirect
// has already routed this request to the owner.
func (sess *session) handleMigrate(m *protocol.Migrate) protocol.Message {
	s := sess.srv
	if s.cluster == nil {
		return errReply(protocol.CodeBadRequest, "not in cluster mode")
	}
	if m.Target == s.cluster.Self() {
		return &protocol.Ack{} // already here
	}
	live := false
	for _, addr := range s.cluster.Ring().Live() {
		if addr == m.Target {
			live = true
			break
		}
	}
	if !live {
		return errReply(protocol.CodeBadRequest, "migration target %q is not a live member", m.Target)
	}

	s.mu.Lock()
	st, err := s.getSeg(m.Seg, false)
	if err != nil {
		s.mu.Unlock()
		return errReply(protocol.CodeNoSegment, "%v", err)
	}
	if st.writer == sess {
		s.mu.Unlock()
		return errReply(protocol.CodeLockState, "cannot migrate while holding the write lock")
	}
	// Write-lock barrier: queue like any writer, with direct handoff.
	for st.writer != nil {
		w := &waiter{sess: sess, ch: make(chan struct{})}
		st.waiters = append(st.waiters, w)
		s.mu.Unlock()
		select {
		case <-w.ch:
		case <-s.done:
			return errReply(protocol.CodeInternal, "server shutting down")
		}
		s.mu.Lock()
		if st.writer == sess {
			break
		}
	}
	st.writer = sess
	raw := st.seg.encode()
	applied := entriesFromApplied(st.applied)
	version := st.seg.Version
	s.mu.Unlock()

	// Ship the snapshot while the barrier holds writers off.
	acked, _, rerr := s.replicateTo(m.Target, &protocol.Replicate{
		Seg:     m.Seg,
		Version: version,
		Raw:     raw,
		Applied: applied,
	})
	if rerr != nil || !acked {
		s.mu.Lock()
		releaseWriter(st, sess)
		s.mu.Unlock()
		if rerr == nil {
			rerr = errReply(protocol.CodeInternal, "target did not ack snapshot")
		}
		return errReply(protocol.CodeInternal, "migrating %q to %s: %v", m.Seg, m.Target, rerr)
	}

	// Commit: pin the new owner, bump the epoch, gossip. From here on,
	// the dispatch redirect answers every client RPC for this segment,
	// and the queued writers re-check ownership when the barrier lifts.
	s.cluster.SetOverride(m.Seg, m.Target)
	if s.cins != nil {
		s.cins.migrations.Inc()
	}
	s.logf("migrated %s to %s at version %d", m.Seg, m.Target, version)

	s.mu.Lock()
	releaseWriter(st, sess)
	s.mu.Unlock()
	return &protocol.Ack{}
}
