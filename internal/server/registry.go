package server

import (
	"sort"
	"sync"
)

// Sharded segment registry (DESIGN.md §8). The registry replaces the
// old single server mutex for segment lookup: open/create/lookup take
// only one shard's RWMutex, so sessions working different segments
// never serialize on a global lock, and a lookup (the common case)
// takes only a read lock. Segment states are never removed — a
// *segState, once published, is valid for the server's lifetime, so
// callers may hold the pointer across its own lock without
// revalidation.
//
// Lock hierarchy: a shard lock is never held while acquiring a
// segState lock or any other shard's lock; registry methods return
// before the caller locks the segState.

// regShards is the shard count; a small power of two keeps the modulo
// cheap while making shard collisions between hot segments unlikely.
const regShards = 32

// regShard is one registry shard: an RWMutex'd slice of the name
// space.
type regShard struct {
	mu sync.RWMutex
	m  map[string]*segState
}

// segRegistry is the sharded name → segState table.
type segRegistry struct {
	shards [regShards]regShard
}

func (r *segRegistry) init() {
	for i := range r.shards {
		r.shards[i].m = make(map[string]*segState)
	}
}

// shardOf picks the shard for a segment name (FNV-1a).
func (r *segRegistry) shardOf(name string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h%regShards]
}

// get returns the named segment state, if present.
func (r *segRegistry) get(name string) (*segState, bool) {
	sh := r.shardOf(name)
	sh.mu.RLock()
	st, ok := sh.m[name]
	sh.mu.RUnlock()
	return st, ok
}

// getOrCreate returns the named segment state, creating it with mk
// when absent. It reports whether this call created the state; under
// racing creates exactly one caller sees created=true.
func (r *segRegistry) getOrCreate(name string, mk func(string) *segState) (*segState, bool) {
	sh := r.shardOf(name)
	sh.mu.RLock()
	st, ok := sh.m[name]
	sh.mu.RUnlock()
	if ok {
		return st, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.m[name]; ok {
		return st, false
	}
	st = mk(name)
	sh.m[name] = st
	return st, true
}

// snapshot returns every segment state, sorted by segment name — the
// deterministic iteration order multi-segment passes (checkpoint,
// epoch changes, session cleanup) use so they acquire segment locks
// in a consistent order (DESIGN.md §8).
func (r *segRegistry) snapshot() []*segState {
	var out []*segState
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, st := range sh.m {
			out = append(out, st)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// names lists every registered segment name, sorted.
func (r *segRegistry) names() []string {
	sts := r.snapshot()
	out := make([]string, len(sts))
	for i, st := range sts {
		out[i] = st.name
	}
	return out
}
