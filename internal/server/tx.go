package server

import (
	"errors"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Transaction support — the paper's Section 6 names transactions as
// work in progress; this implements the single-server case. A
// TxCommit atomically publishes the diffs of several segments the
// session holds write locks on: either every segment advances to its
// new version, or none does.
//
// Atomicity is achieved by staging: each diff is applied to a clone
// of its segment (via the checkpoint codec); only when every part
// succeeds are the clones swapped in and subscribers notified. The
// clone cost is proportional to segment size, which is acceptable for
// an operation whose purpose is crossing a consistency boundary, and
// keeps the commit path trivially correct.
//
// Locking: the handler takes every part's segment lock in ascending
// name order (the global ordering rule, DESIGN.md §8), snapshots the
// wire images under the locks, then drops them for the expensive
// decode+apply staging — the session's write locks keep the version
// sequence frozen meanwhile. The locks are retaken (same order) to
// swap the clones in.

func (sess *session) handleTxCommit(m *protocol.TxCommit, sp *obs.Span) protocol.Message {
	s := sess.srv

	if len(m.Parts) == 0 {
		return errReply(protocol.CodeBadRequest, "empty transaction")
	}
	seen := make(map[string]bool, len(m.Parts))
	states := make([]*segState, len(m.Parts))
	for i := range m.Parts {
		name := m.Parts[i].Seg
		if seen[name] {
			return errReply(protocol.CodeBadRequest, "segment %q appears twice in transaction", name)
		}
		seen[name] = true
		st, err := s.getSeg(name, false)
		if err != nil {
			return errReply(protocol.CodeNoSegment, "%v", err)
		}
		states[i] = st
	}

	// A TxCommit advances versions without joining the group-commit
	// batch, so any in-flight flush on an involved segment must drain
	// first — otherwise journal records and Replicate frames for
	// overlapping version ranges would land out of order. The session
	// holds the write locks, so nothing re-fills the batch after the
	// drain (and if it does not hold them, the commit aborts below
	// regardless).
	if s.opts.GroupCommit {
		for _, st := range states {
			s.drainGroupCommit(st)
		}
	}

	// A failed transaction is an abort: the session's write locks on
	// the named segments are released, mirroring the client library,
	// which releases its local locks when a commit fails.
	// releaseWriter is a no-op on segments this session does not hold.
	ordered := s.lockSegsOrdered(states)
	abortLocked := func(reply *protocol.ErrorReply) protocol.Message {
		for _, st := range states {
			releaseWriter(st, sess)
		}
		unlockSegs(ordered)
		return reply
	}

	// Snapshot phase (locks held): verify lock ownership and capture
	// each part's wire image for out-of-lock staging.
	type partSnap struct {
		img      []byte   // encoded segment, nil when the part's diff is empty
		base     *Segment // the segment the image was taken from
		prevVer  uint32
		cacheCap int
	}
	snaps := make([]partSnap, len(m.Parts))
	for i, st := range states {
		if st.writer != sess {
			return abortLocked(errReply(protocol.CodeLockState, "write lock on %q not held", m.Parts[i].Seg))
		}
		// The held write locks fence eviction, so the parts are
		// resident; this call is defensive and stamps the LRU clock.
		if err := s.ensureResident(st); err != nil {
			return abortLocked(errReply(protocol.CodeInternal, "%v", err))
		}
		snaps[i] = partSnap{base: st.seg, prevVer: st.seg.Version, cacheCap: st.seg.cacheCap}
		if m.Parts[i].Diff != nil && !m.Parts[i].Diff.Empty() {
			snaps[i].img = st.seg.encode()
		}
	}
	unlockSegs(ordered)

	// Stage (no segment locks): apply every diff to a clone decoded
	// from the snapshot image. The write locks this session holds
	// guarantee no other writer advances the segments meanwhile.
	type staged struct {
		clone    *Segment
		version  uint32
		modified int
	}
	asp := sp.Child("server.diff_apply")
	if asp != nil {
		asp.AttrInt("parts", int64(len(m.Parts)))
		defer asp.End()
	}
	relockAbort := func(reply *protocol.ErrorReply) protocol.Message {
		s.lockSegsOrdered(states)
		return abortLocked(reply)
	}
	stage := make([]staged, len(m.Parts))
	for i := range m.Parts {
		if snaps[i].img == nil {
			stage[i] = staged{clone: nil, version: snaps[i].prevVer}
			continue
		}
		clone, err := decodeSegment(snaps[i].img)
		if err != nil {
			return relockAbort(errReply(protocol.CodeInternal, "staging %q: %v", m.Parts[i].Seg, err))
		}
		clone.SetDiffCacheCap(snaps[i].cacheCap)
		newVer, modified, err := clone.ApplyDiff(m.Parts[i].Diff)
		if err != nil {
			return relockAbort(errReply(protocol.CodeBadRequest, "transaction part %q: %v", m.Parts[i].Seg, err))
		}
		stage[i] = staged{clone: clone, version: newVer, modified: modified}
	}

	// Commit: retake the locks (same order), swap the clones in,
	// replicate, release the write locks, gather notifications. In
	// cluster mode each advanced part streams to its replicas before
	// the locks drop and before the client sees the commit, preserving
	// the replicate-before-acknowledge invariant of the single-segment
	// release path.
	s.lockSegsOrdered(states)
	for i, st := range states {
		// The write lock froze the version sequence, but an epoch
		// change may have demoted the segment (resetting its state and
		// lock queue) while the locks were down. Committing a clone of
		// pre-demotion state would clobber it — fence instead.
		if st.seg != snaps[i].base || st.writer != sess {
			return abortLocked(errReply(protocol.CodeNotOwner,
				"transaction part %q fenced: segment reassigned during commit", m.Parts[i].Seg))
		}
	}
	reply := &protocol.TxReply{Versions: make([]uint32, len(m.Parts))}
	type journalPart struct {
		st  *segState
		rep *protocol.Replicate
	}
	var notifications []func()
	var jobs []*replicationJob
	var jparts []journalPart
	for i := range m.Parts {
		st := states[i]
		if stage[i].clone != nil {
			st.seg = stage[i].clone
			notifications = append(notifications,
				updateSubscribers(st, sess, stage[i].version, stage[i].modified)...)
		}
		if wid := m.Parts[i].WriterID; wid != "" {
			st.applied[wid] = appliedWrite{seq: m.Parts[i].Seq, version: stage[i].version}
		}
		if s.ins != nil && stage[i].clone != nil {
			s.ins.applyUnits.Add(uint64(stage[i].modified))
		}
		if stage[i].clone != nil {
			if s.journal != nil {
				jparts = append(jparts, journalPart{st, &protocol.Replicate{
					Seg:         m.Parts[i].Seg,
					PrevVersion: snaps[i].prevVer,
					Version:     stage[i].version,
					Diff:        m.Parts[i].Diff,
					Applied:     entriesFromApplied(st.applied),
				}})
			}
			if job := s.replicationJob(st, m.Parts[i].Seg, snaps[i].prevVer, stage[i].version, m.Parts[i].Diff); job != nil {
				jobs = append(jobs, job)
			}
		}
		reply.Versions[i] = stage[i].version
	}
	var replErr error
	var fencedSeg string
	var jerr error
	var jerrSeg string
	if len(jobs) == 0 && len(jparts) == 0 {
		for _, st := range states {
			releaseWriter(st, sess)
		}
		unlockSegs(ordered)
	} else {
		unlockSegs(ordered)
		// Journal every advanced part before the fan-out and before
		// the reply, mirroring the single-segment release path. The
		// appends are per-segment files, so — like checkpoints — they
		// are not one atomic cross-segment unit; a crash between them
		// recovers a commit the client was never acknowledged for,
		// which its per-part Resume recovery already handles.
		for _, jp := range jparts {
			if err := s.journalAppend(jp.st, jp.rep); err != nil {
				jerr = err
				jerrSeg = jp.rep.Seg
				break
			}
			s.maybeCompactJournal(jp.st)
		}
		if jerr == nil {
			for _, job := range jobs {
				if err := s.runReplication(job); err != nil && replErr == nil {
					replErr = err
					fencedSeg = job.seg
				}
			}
		}
		s.lockSegsOrdered(states)
		for _, st := range states {
			releaseWriter(st, sess)
		}
		unlockSegs(ordered)
	}
	if s.ins != nil && len(notifications) > 0 {
		s.ins.notifications.Add(uint64(len(notifications)))
	}
	for _, n := range notifications {
		n()
	}
	if jerr != nil {
		return errReply(protocol.CodeInternal, "transaction part %q not journaled: %v", jerrSeg, jerr)
	}
	if replErr != nil {
		// The parts committed locally but at least one could not meet
		// the replicate-before-acknowledge contract: report the commit
		// failed rather than acknowledge durability the cluster does
		// not have.
		if errors.Is(replErr, errWriteFenced) {
			return errReply(protocol.CodeNotOwner, "transaction part %q fenced: %v", fencedSeg, replErr)
		}
		return errReply(protocol.CodeNotReplicated, "transaction part %q not replicated: %v", fencedSeg, replErr)
	}
	return reply
}
