package server

import (
	"errors"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Transaction support — the paper's Section 6 names transactions as
// work in progress; this implements the single-server case. A
// TxCommit atomically publishes the diffs of several segments the
// session holds write locks on: either every segment advances to its
// new version, or none does.
//
// Atomicity is achieved by staging: each diff is applied to a clone
// of its segment (via the checkpoint codec); only when every part
// succeeds are the clones swapped in and subscribers notified. The
// clone cost is proportional to segment size, which is acceptable for
// an operation whose purpose is crossing a consistency boundary, and
// keeps the commit path trivially correct.

func (sess *session) handleTxCommit(m *protocol.TxCommit, sp *obs.Span) protocol.Message {
	s := sess.srv
	s.mu.Lock()

	// A failed transaction is an abort: the session's write locks on
	// the named segments are released, mirroring the client library,
	// which releases its local locks when a commit fails.
	var resolved []*segState
	abort := func(reply *protocol.ErrorReply) protocol.Message {
		for _, st := range resolved {
			releaseWriter(st, sess)
		}
		s.mu.Unlock()
		return reply
	}

	if len(m.Parts) == 0 {
		s.mu.Unlock()
		return errReply(protocol.CodeBadRequest, "empty transaction")
	}
	seen := make(map[string]bool, len(m.Parts))
	states := make([]*segState, len(m.Parts))
	for i := range m.Parts {
		name := m.Parts[i].Seg
		if seen[name] {
			return abort(errReply(protocol.CodeBadRequest, "segment %q appears twice in transaction", name))
		}
		seen[name] = true
		st, err := s.getSeg(name, false)
		if err != nil {
			return abort(errReply(protocol.CodeNoSegment, "%v", err))
		}
		resolved = append(resolved, st)
		if st.writer != sess {
			return abort(errReply(protocol.CodeLockState, "write lock on %q not held", name))
		}
		states[i] = st
	}

	// Stage: apply every diff to a clone.
	type staged struct {
		clone    *Segment
		version  uint32
		modified int
	}
	asp := sp.Child("server.diff_apply")
	if asp != nil {
		asp.AttrInt("parts", int64(len(m.Parts)))
		defer asp.End()
	}
	stage := make([]staged, len(m.Parts))
	for i := range m.Parts {
		seg := states[i].seg
		if m.Parts[i].Diff == nil || m.Parts[i].Diff.Empty() {
			stage[i] = staged{clone: nil, version: seg.Version}
			continue
		}
		clone, err := decodeSegment(seg.encode())
		if err != nil {
			return abort(errReply(protocol.CodeInternal, "staging %q: %v", seg.Name, err))
		}
		clone.SetDiffCacheCap(seg.cacheCap)
		newVer, modified, err := clone.ApplyDiff(m.Parts[i].Diff)
		if err != nil {
			return abort(errReply(protocol.CodeBadRequest, "transaction part %q: %v", seg.Name, err))
		}
		stage[i] = staged{clone: clone, version: newVer, modified: modified}
	}

	// Commit: swap the clones in, replicate, release the locks, gather
	// notifications. In cluster mode each advanced part streams to its
	// replicas before the locks drop and before the client sees the
	// commit, preserving the replicate-before-acknowledge invariant of
	// the single-segment release path.
	reply := &protocol.TxReply{Versions: make([]uint32, len(m.Parts))}
	var notifications []func()
	var jobs []*replicationJob
	for i := range m.Parts {
		st := states[i]
		prevVer := st.seg.Version
		if stage[i].clone != nil {
			st.seg = stage[i].clone
			notifications = append(notifications,
				updateSubscribers(st, sess, stage[i].version, stage[i].modified)...)
		}
		if wid := m.Parts[i].WriterID; wid != "" {
			st.applied[wid] = appliedWrite{seq: m.Parts[i].Seq, version: stage[i].version}
		}
		if s.ins != nil && stage[i].clone != nil {
			s.ins.applyUnits.Add(uint64(stage[i].modified))
		}
		if stage[i].clone != nil {
			if job := s.replicationJob(st, m.Parts[i].Seg, prevVer, stage[i].version, m.Parts[i].Diff); job != nil {
				jobs = append(jobs, job)
			}
		}
		reply.Versions[i] = stage[i].version
	}
	var replErr error
	var fencedSeg string
	if len(jobs) == 0 {
		for _, st := range states {
			releaseWriter(st, sess)
		}
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
		for _, job := range jobs {
			if err := s.runReplication(job); err != nil && replErr == nil {
				replErr = err
				fencedSeg = job.seg
			}
		}
		s.mu.Lock()
		for _, st := range states {
			releaseWriter(st, sess)
		}
		s.mu.Unlock()
	}
	if s.ins != nil && len(notifications) > 0 {
		s.ins.notifications.Add(uint64(len(notifications)))
	}
	for _, n := range notifications {
		n()
	}
	if replErr != nil {
		// The parts committed locally but at least one could not meet
		// the replicate-before-acknowledge contract: report the commit
		// failed rather than acknowledge durability the cluster does
		// not have.
		if errors.Is(replErr, errWriteFenced) {
			return errReply(protocol.CodeNotOwner, "transaction part %q fenced: %v", fencedSeg, replErr)
		}
		return errReply(protocol.CodeNotReplicated, "transaction part %q not replicated: %v", fencedSeg, replErr)
	}
	return reply
}
