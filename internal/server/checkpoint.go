package server

import (
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"interweave/internal/types"
	"interweave/internal/wire"
)

// Checkpointing: as partial protection against server failure,
// InterWeave periodically checkpoints segments and their metadata to
// persistent storage (paper Section 2.2). A checkpoint file holds one
// segment: its descriptors and its blocks in blk_version_list order
// (so a restored segment retains the version-locality of its data),
// with per-subblock version arrays intact, followed by the segment's
// applied-writer table (so release dedup survives a restart) and a
// CRC-32 trailer that makes any on-disk corruption detectable.

const ckptMagic = 0x4957434B // "IWCK"

const ckptSuffix = ".iwseg"

// Checkpoint writes every segment to opts.CheckpointDir atomically
// (write to a temp file, then rename). In journal mode it instead
// compacts every segment's journal into a fresh checkpoint base.
func (s *Server) Checkpoint() error {
	if s.journal != nil {
		return s.CompactJournal()
	}
	dir := s.opts.CheckpointDir
	if dir == "" {
		return nil
	}
	if s.ins != nil {
		start := time.Now()
		defer func() { s.ins.ckptSec.ObserveSince(start) }()
	}
	err := s.checkpoint(dir)
	if err != nil && s.ins != nil {
		s.ins.ckptErrors.Inc()
	}
	return err
}

// checkpoint does the actual pass, split out so Checkpoint can record
// timing and failures around it.
func (s *Server) checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	// One segment at a time: encode under that segment's lock, write
	// the file with no lock held (snapshot-then-send, DESIGN.md §8).
	// Each file is internally consistent — sealed with its applied
	// table at one version — but the pass is not a global atomic
	// snapshot across segments; per-segment consistency is all restore
	// relies on, since files decode independently.
	for _, st := range s.reg.snapshot() {
		s.lockSeg(st)
		buf := st.seg.encode()
		buf = appendApplied(buf, st.applied)
		st.mu.Unlock()
		data := sealCheckpoint(buf)
		file := filepath.Join(dir, hex.EncodeToString([]byte(st.name))+ckptSuffix)
		tmp := file + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("server: writing checkpoint %s: %w", tmp, err)
		}
		if err := os.Rename(tmp, file); err != nil {
			return fmt.Errorf("server: publishing checkpoint: %w", err)
		}
	}
	return nil
}

// restore loads every checkpoint file in opts.CheckpointDir.
func (s *Server) restore() error {
	entries, err := os.ReadDir(s.opts.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: reading checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ckptSuffix) {
			s.logf("checkpoint dir: skipping unrelated entry %s", e.Name())
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.opts.CheckpointDir, e.Name()))
		if err != nil {
			return fmt.Errorf("server: reading checkpoint %s: %w", e.Name(), err)
		}
		payload, err := openCheckpoint(data)
		if err != nil {
			return fmt.Errorf("server: checkpoint %s: %w", e.Name(), err)
		}
		seg, applied, err := decodeCheckpointPayload(payload)
		if err != nil {
			return fmt.Errorf("server: checkpoint %s: %w", e.Name(), err)
		}
		if s.opts.DiffCacheCap != 0 {
			n := s.opts.DiffCacheCap
			if n < 0 {
				n = 0
			}
			seg.SetDiffCacheCap(n)
		}
		st := &segState{
			name:    seg.Name,
			seg:     seg,
			subs:    make(map[*session]*subState),
			applied: applied,
		}
		s.reg.getOrCreate(seg.Name, func(string) *segState { return st })
	}
	return nil
}

// sealCheckpoint appends a CRC-32 (IEEE) of the payload; truncations
// and bit flips anywhere in the file then fail restore loudly instead
// of resurrecting silently wrong data.
func sealCheckpoint(payload []byte) []byte {
	return wire.AppendU32(payload, crc32.ChecksumIEEE(payload))
}

// openCheckpoint verifies and strips the CRC trailer.
func openCheckpoint(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("checkpoint truncated to %d bytes", len(data))
	}
	payload := data[:len(data)-4]
	want := wire.NewReader(data[len(data)-4:]).U32()
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint checksum mismatch (have %08x, want %08x): file corrupted or truncated", got, want)
	}
	return payload, nil
}

// appendApplied serializes the applied-writer table in sorted order,
// so identical state produces identical checkpoint bytes.
func appendApplied(buf []byte, applied map[string]appliedWrite) []byte {
	buf = wire.AppendU32(buf, uint32(len(applied)))
	ids := make([]string, 0, len(applied))
	for id := range applied {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		buf = wire.AppendString(buf, id)
		buf = wire.AppendU32(buf, applied[id].seq)
		buf = wire.AppendU32(buf, applied[id].version)
	}
	return buf
}

// decodeCheckpointPayload rebuilds a segment and its applied-writer
// table from a checkpoint payload (CRC already stripped).
func decodeCheckpointPayload(data []byte) (*Segment, map[string]appliedWrite, error) {
	r := wire.NewReader(data)
	seg, err := decodeSegmentReader(r)
	if err != nil {
		return nil, nil, err
	}
	na := r.U32()
	if r.Err() != nil || na > 1<<20 {
		return nil, nil, fmt.Errorf("bad applied-writer count")
	}
	applied := make(map[string]appliedWrite, na)
	for i := uint32(0); i < na; i++ {
		id := r.Str()
		seq := r.U32()
		ver := r.U32()
		if r.Err() != nil {
			return nil, nil, fmt.Errorf("applied-writer entry %d: %w", i, r.Err())
		}
		applied[id] = appliedWrite{seq: seq, version: ver}
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes in checkpoint", r.Remaining())
	}
	return seg, applied, nil
}

// DecodeCheckpoint decodes one checkpoint file's contents; tools like
// cmd/iwdump use it to inspect a server's persistent state off-line.
func DecodeCheckpoint(data []byte) (*Segment, error) {
	payload, err := openCheckpoint(data)
	if err != nil {
		return nil, err
	}
	seg, _, err := decodeCheckpointPayload(payload)
	return seg, err
}

// CheckpointFileSuffix is the filename suffix of segment checkpoint
// files; the rest of the name is the hex-encoded segment name.
const CheckpointFileSuffix = ckptSuffix

// encode serializes the segment.
func (s *Segment) encode() []byte {
	buf := wire.AppendU32(nil, ckptMagic)
	buf = wire.AppendString(buf, s.Name)
	buf = wire.AppendU32(buf, s.Version)
	buf = wire.AppendU32(buf, s.nextDesc)
	buf = wire.AppendU32(buf, uint32(len(s.descs)))
	for serial, b := range s.descs {
		buf = wire.AppendU32(buf, serial)
		buf = wire.AppendBytes(buf, b)
	}
	buf = wire.AppendU32(buf, uint32(len(s.freedLog)))
	for _, fe := range s.freedLog {
		buf = wire.AppendU32(buf, fe.version)
		buf = wire.AppendU32(buf, fe.serial)
	}
	// Blocks in version-list order.
	var blks []*Blk
	for e := s.head.next; e != s.tail; e = e.next {
		if e.blk != nil {
			blks = append(blks, e.blk)
		}
	}
	buf = wire.AppendU32(buf, uint32(len(blks)))
	for _, b := range blks {
		buf = wire.AppendU32(buf, b.Serial)
		buf = wire.AppendString(buf, b.Name)
		buf = wire.AppendU32(buf, b.DescSerial)
		buf = wire.AppendU32(buf, uint32(b.Count))
		buf = wire.AppendU32(buf, b.createdVer)
		buf = wire.AppendU32(buf, b.version)
		for _, sv := range b.subVer {
			buf = wire.AppendU32(buf, sv)
		}
		buf = b.appendUnits(buf, 0, b.Units())
	}
	return buf
}

// decodeSegment rebuilds a segment from its bare encoding (no applied
// table, no CRC), the form tx staging clones travel in.
func decodeSegment(data []byte) (*Segment, error) {
	r := wire.NewReader(data)
	s, err := decodeSegmentReader(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes in checkpoint", r.Remaining())
	}
	return s, nil
}

// decodeSegmentReader rebuilds a segment from its encoding, including
// the blk_version_list and marker tree, leaving any trailing reader
// content untouched.
func decodeSegmentReader(r *wire.Reader) (*Segment, error) {
	if r.U32() != ckptMagic {
		return nil, fmt.Errorf("bad checkpoint magic")
	}
	s := NewSegment(r.Str())
	s.Version = r.U32()
	s.nextDesc = r.U32()
	nd := r.U32()
	if r.Err() != nil || nd > 1<<20 {
		return nil, fmt.Errorf("bad descriptor count")
	}
	for i := uint32(0); i < nd; i++ {
		serial := r.U32()
		b := r.Bytes()
		if r.Err() != nil {
			return nil, r.Err()
		}
		t, err := types.Unmarshal(b)
		if err != nil {
			return nil, fmt.Errorf("descriptor %d: %w", serial, err)
		}
		walk, err := types.WireWalk(t)
		if err != nil {
			return nil, err
		}
		kinds := types.UnitKinds(walk)
		caps := make([]int, 0, len(kinds))
		for _, ws := range walk {
			for j := 0; j < ws.Count; j++ {
				caps = append(caps, ws.Cap)
			}
		}
		cp := make([]byte, len(b))
		copy(cp, b)
		s.descs[serial] = cp
		s.descKinds[serial] = kinds
		s.descCaps[serial] = caps
		s.descSteps[serial] = walk
		s.descIndex[string(cp)] = serial
	}
	nf := r.U32()
	if r.Err() != nil || nf > 1<<24 {
		return nil, fmt.Errorf("bad freed-log count")
	}
	for i := uint32(0); i < nf; i++ {
		s.freedLog = append(s.freedLog, freedEntry{version: r.U32(), serial: r.U32()})
	}
	nb := r.U32()
	if r.Err() != nil || nb > 1<<24 {
		return nil, fmt.Errorf("bad block count")
	}
	lastMarker := uint32(0)
	for i := uint32(0); i < nb; i++ {
		b := &Blk{
			Serial:     r.U32(),
			Name:       r.Str(),
			DescSerial: r.U32(),
		}
		b.Count = int(r.U32())
		b.createdVer = r.U32()
		b.version = r.U32()
		if r.Err() != nil {
			return nil, r.Err()
		}
		kinds, ok := s.descKinds[b.DescSerial]
		if !ok {
			return nil, fmt.Errorf("block %d references unknown descriptor %d", b.Serial, b.DescSerial)
		}
		if b.Count <= 0 || b.Count > 1<<28 {
			return nil, fmt.Errorf("block %d count %d out of range", b.Serial, b.Count)
		}
		b.kinds = kinds
		b.caps = s.descCaps[b.DescSerial]
		b.steps = s.descSteps[b.DescSerial]
		units := len(kinds) * b.Count
		b.subVer = make([]uint32, (units+SubblockUnits-1)/SubblockUnits)
		for j := range b.subVer {
			b.subVer[j] = r.U32()
		}
		b.initWireGeometry()
		b.cells = make([]uint64, units)
		if err := b.readUnits(r); err != nil {
			return nil, fmt.Errorf("block %d data: %w", b.Serial, err)
		}
		// Rebuild the version list with markers.
		if b.version != lastMarker {
			m := &listElem{marker: b.version}
			s.pushBack(m)
			s.markers.Put(b.version, m)
			lastMarker = b.version
		}
		b.elem = &listElem{blk: b}
		s.pushBack(b.elem)
		s.blocks.Put(b.Serial, b)
		if b.Name != "" {
			s.byName[b.Name] = b.Serial
		}
		s.totalUnits += units
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// readUnits decodes all of the block's units from r in place, the
// inverse of appendUnits, without touching the subblock versions.
func (b *Blk) readUnits(r *wire.Reader) error {
	err := b.forKindRuns(0, b.Units(), func(k types.Kind, _, u, n int) error {
		switch k {
		case types.KindChar:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U8())
			}
		case types.KindInt16:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U16())
			}
		case types.KindInt32, types.KindFloat32:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U32())
			}
		case types.KindInt64, types.KindFloat64:
			for i := u; i < u+n; i++ {
				b.cells[i] = r.U64()
			}
		case types.KindString, types.KindPointer:
			for i := u; i < u+n; i++ {
				data := r.Bytes()
				if r.Err() != nil {
					return r.Err()
				}
				b.setVar(i, data)
			}
		default:
			return fmt.Errorf("unit %d has invalid kind", u)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return r.Err()
}
