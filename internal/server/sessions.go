package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Session transport (DESIGN.md §10). One accepted TCP connection is a
// wireConn carrying any number of logical sessions, each named by the
// frame-level session ID (internal/protocol session multiplexing).
// Session 0 is the connection's implicit session — the one every
// pre-mux client speaks — and behaves exactly like a PR-1-era
// connection: its frames are handled inline on the read loop, in
// order. Frames for non-zero sessions are handled on spawned
// goroutines, one per in-flight request, so a session blocked in a
// write-lock queue never stalls the connection's other sessions
// (no head-of-line blocking across sessions).
//
// All outbound frames funnel through one bounded queue drained by the
// connection's writer goroutine. Replies may block for queue space up
// to Options.WriteTimeout (then the whole connection is evicted as
// stuck); notifications never block — a notification that finds the
// session's bound or the connection queue full is shed, and shedding
// always evicts the session, because a subscriber that missed a
// Notify would serve stale reads forever believing itself current.

// Default transport bounds; see Options and CAPACITY.md.
const (
	// DefaultSessionSendQueue bounds outbound frames queued per
	// logical session.
	DefaultSessionSendQueue = 32
	// DefaultConnSendQueue bounds the per-connection writer queue.
	DefaultConnSendQueue = 1024
	// DefaultWriteTimeout bounds how long a reply waits for space in
	// the connection's writer queue.
	DefaultWriteTimeout = 10 * time.Second
)

// outFrame is one queued outbound frame. sess is nil for conn-level
// frames (errors for sessions that do not exist).
type outFrame struct {
	sess *session
	sid  uint32
	id   uint32
	m    protocol.Message
}

// wireConn is one accepted TCP connection and the logical sessions it
// carries.
type wireConn struct {
	srv  *Server
	conn net.Conn

	sendCh chan outFrame
	// dead is closed exactly once when the connection is being torn
	// down; senders select on it so they never block on a dying conn.
	dead     chan struct{}
	deadOnce sync.Once

	mu       sync.Mutex // guards sessions
	sessions map[uint32]*session

	// handlers tracks spawned per-request goroutines for non-zero
	// sessions; cleanup waits for them after releasing their locks.
	handlers sync.WaitGroup
}

// session is one logical client session. A pre-mux client is exactly
// one session (ID 0) on its own connection.
type session struct {
	srv *Server
	wc  *wireConn
	sid uint32

	name    string
	profile string

	// proxy marks a session created by (or upgraded with) ProxyHello: a
	// read fan-out proxy's upstream subscription, exempt from
	// MaxSessions admission. Guarded by srv.mu.
	proxy bool
	// exempt marks a session excluded from MaxSessions admission:
	// proxy sessions and sessions created by a cluster-plane RPC
	// (a peer's or proxy's gossip round trip). Guarded by srv.mu.
	exempt bool

	// queued counts outbound frames currently sitting in the writer
	// queue on this session's behalf; notifications are shed when it
	// reaches the per-session bound.
	queued atomic.Int32

	// closed flips once, before the session's segment state is swept.
	// Handlers re-check it under each segment lock before attaching
	// the session to that segment, which makes teardown race-free:
	// an attach either happens before the sweep's lock acquisition
	// (and is swept) or observes closed and refuses (see gone).
	closed atomic.Bool

	// touchedMu guards touched, the segments this session may have
	// attached state to (subscription, waiter, write lock). Cleanup
	// sweeps only these instead of the whole registry, which is what
	// keeps 100k-session churn off the registry snapshot path.
	touchedMu sync.Mutex
	touched   map[*segState]struct{}
}

// errSessionClosed is the reply for requests racing their session's
// teardown.
func errSessionClosed() *protocol.ErrorReply {
	return errReply(protocol.CodeNoSession, "session closed")
}

// gone reports whether the session has been torn down (evicted,
// closed, or its connection died).
func (sess *session) gone() bool { return sess.closed.Load() }

// touch records that the session may attach state to st, before doing
// so. Must be called before taking st.mu (never under it).
func (sess *session) touch(st *segState) {
	sess.touchedMu.Lock()
	if sess.touched == nil {
		sess.touched = make(map[*segState]struct{})
	}
	sess.touched[st] = struct{}{}
	sess.touchedMu.Unlock()
}

// newWireConn wraps an accepted connection.
func (s *Server) newWireConn(conn net.Conn) *wireConn {
	wc := &wireConn{
		srv:      s,
		conn:     conn,
		sendCh:   make(chan outFrame, s.connSendQueue),
		dead:     make(chan struct{}),
		sessions: make(map[uint32]*session),
	}
	return wc
}

// shut marks the connection dead (idempotent) and closes the socket,
// releasing the read loop, the writer goroutine, and every sender
// blocked on the queue.
func (wc *wireConn) shut() {
	wc.deadOnce.Do(func() {
		close(wc.dead)
		_ = wc.conn.Close()
	})
}

// writeLoop is the connection's single writer goroutine: it drains
// the queue and owns the socket for writes, so no handler ever does
// socket I/O directly (or under a segment lock).
func (wc *wireConn) writeLoop() {
	for {
		select {
		case f := <-wc.sendCh:
			err := protocol.WriteFrameMux(wc.conn, f.id, f.m, protocol.TraceContext{}, f.sid)
			if f.sess != nil {
				f.sess.queued.Add(-1)
			}
			if err != nil {
				wc.shut()
				return
			}
		case <-wc.dead:
			return
		}
	}
}

// serve runs the connection: the read loop plus session dispatch.
func (wc *wireConn) serve() {
	defer wc.cleanup()
	go wc.writeLoop()
	for {
		id, msg, tc, sid, err := protocol.ReadFrameMux(wc.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				wc.srv.logf("conn %s: %v", wc.conn.RemoteAddr(), err)
			}
			return
		}
		if _, ok := msg.(*protocol.SessionClose); ok {
			wc.handleSessionClose(sid, id)
			continue
		}
		sess, refusal := wc.sessionFor(sid, msg)
		if refusal != nil {
			if !wc.sendConnLevel(sid, id, refusal) {
				return
			}
			continue
		}
		if sid == 0 {
			// The implicit session keeps the classic contract: strict
			// per-connection request ordering, handled inline.
			reply := sess.handle(msg, tc)
			if reply == nil {
				continue
			}
			if err := sess.send(id, reply); err != nil {
				return
			}
		} else {
			wc.handlers.Add(1)
			go func() {
				defer wc.handlers.Done()
				if srv := wc.srv; srv.flight != nil {
					defer srv.flight.DumpOnPanic(srv.crashw, "session request handler")
				}
				if reply := sess.handle(msg, tc); reply != nil {
					_ = sess.send(id, reply)
				}
			}()
		}
	}
}

// handleSessionClose tears down the addressed session (idempotently)
// and acks. Closing session 0 resets the implicit session's state but
// keeps the connection; a later frame recreates it fresh.
func (wc *wireConn) handleSessionClose(sid, id uint32) {
	wc.mu.Lock()
	sess := wc.sessions[sid]
	wc.mu.Unlock()
	if sess != nil {
		wc.srv.teardownSession(sess, "")
	}
	_ = wc.sendConnLevel(sid, id, &protocol.Ack{})
}

// sessionFor resolves the session a frame is addressed to, creating
// it lazily. A non-zero session must be created by a Hello (or a
// proxy's ProxyHello) — any other first frame is answered
// CodeNoSession (the ID is unknown: never created, or evicted).
// Creation passes admission control: when Options.MaxSessions is
// reached the frame is refused with CodeOverloaded and nothing is
// created. Proxy sessions are exempt from the cap and do not consume
// it: one proxy session stands in for thousands of direct client
// sessions, so refusing it to protect capacity would be backwards.
// Sessions created by a cluster-plane frame (gossip, replication,
// migration) are exempt for the same reason — they are peer
// infrastructure round trips, not client load.
func (wc *wireConn) sessionFor(sid uint32, msg protocol.Message) (*session, protocol.Message) {
	wc.mu.Lock()
	if sess, ok := wc.sessions[sid]; ok {
		wc.mu.Unlock()
		return sess, nil
	}
	wc.mu.Unlock()
	_, isProxy := msg.(*protocol.ProxyHello)
	exempt := isProxy || isClusterFrame(msg)
	if sid != 0 {
		if _, isHello := msg.(*protocol.Hello); !isHello && !isProxy {
			return nil, errReply(protocol.CodeNoSession, "no session %d on this connection (send Hello first)", sid)
		}
	}
	s := wc.srv
	sess := &session{srv: s, wc: wc, sid: sid}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errReply(protocol.CodeInternal, "server shutting down")
	}
	if !exempt && s.opts.MaxSessions > 0 && len(s.sessions)-s.exemptSessions >= s.opts.MaxSessions {
		if s.ins != nil {
			s.ins.sessionsRefused.Inc()
		}
		s.mu.Unlock()
		return nil, errReply(protocol.CodeOverloaded, "session cap %d reached", s.opts.MaxSessions)
	}
	s.sessions[sess] = struct{}{}
	if exempt {
		sess.exempt = true
		s.exemptSessions++
	}
	if isProxy {
		sess.proxy = true
		s.proxySessions++
	}
	if s.ins != nil {
		s.ins.sessions.Set(int64(len(s.sessions)))
		s.ins.sessionsOpened.Inc()
		if isProxy {
			s.ins.proxySessions.Set(int64(s.proxySessions))
		}
	}
	s.mu.Unlock()
	wc.mu.Lock()
	wc.sessions[sid] = sess
	wc.mu.Unlock()
	return sess, nil
}

// markProxySession upgrades an existing session to proxy status (the
// ProxyHello dispatch path — covers a session created earlier by a
// different first frame). Idempotent.
func (s *Server) markProxySession(sess *session) {
	s.mu.Lock()
	if !sess.proxy && !sess.closed.Load() {
		sess.proxy = true
		s.proxySessions++
		if !sess.exempt {
			sess.exempt = true
			s.exemptSessions++
		}
		if s.ins != nil {
			s.ins.proxySessions.Set(int64(s.proxySessions))
		}
	}
	s.mu.Unlock()
}

// isClusterFrame reports whether msg is a cluster-plane RPC
// (gossip, replication, migration). A session created by one of these
// is a peer server's or proxy's infrastructure round trip — often on a
// throwaway connection — not client load, so it bypasses MaxSessions
// admission and does not consume the budget.
func isClusterFrame(msg protocol.Message) bool {
	switch msg.(type) {
	case *protocol.RingGet, *protocol.RingPush, *protocol.Replicate,
		*protocol.Pull, *protocol.Migrate:
		return true
	}
	return false
}

// sendConnLevel queues a frame that belongs to no live session (a
// refusal, or a SessionClose ack). It blocks for queue space up to
// the write timeout; false means the connection is being torn down.
func (wc *wireConn) sendConnLevel(sid, id uint32, m protocol.Message) bool {
	f := outFrame{sid: sid, id: id, m: m}
	t := time.NewTimer(wc.srv.writeTimeout)
	defer t.Stop()
	select {
	case wc.sendCh <- f:
		return true
	case <-wc.dead:
		return false
	case <-t.C:
		wc.shut()
		return false
	}
}

// send queues a reply for the session. Replies are allowed to block
// for queue space — the requester is waiting for exactly this frame —
// but only up to the write timeout: a connection that cannot drain a
// reply for that long is stuck, and is evicted whole.
func (sess *session) send(id uint32, m protocol.Message) error {
	wc := sess.wc
	if sess.gone() {
		// The session died while this request was in flight. Still
		// deliver the reply (addressed to the dead session ID) so the
		// client's pending call resolves instead of hanging; the
		// client already knows — or learns on its next frame — that
		// the session is gone.
		if !wc.sendConnLevel(sess.sid, id, m) {
			return net.ErrClosed
		}
		return nil
	}
	sess.queued.Add(1)
	f := outFrame{sess: sess, sid: sess.sid, id: id, m: m}
	select {
	case wc.sendCh <- f:
		return nil
	default:
	}
	t := time.NewTimer(sess.srv.writeTimeout)
	defer t.Stop()
	select {
	case wc.sendCh <- f:
		return nil
	case <-wc.dead:
		sess.queued.Add(-1)
		return net.ErrClosed
	case <-t.C:
		sess.queued.Add(-1)
		sess.srv.logf("conn %s: reply stuck for %v, evicting", wc.conn.RemoteAddr(), sess.srv.writeTimeout)
		wc.shut()
		return errors.New("write timeout")
	}
}

// sendNotify queues a Notify without ever blocking. A session over
// its queue bound — or a full connection queue — sheds the
// notification, and shedding evicts: a subscriber that missed a
// Notify would trust stale data forever, so the session is torn down
// and the client re-establishes it (re-validating by version, exactly
// as after a reconnect). For the implicit session the connection IS
// the session, so the whole connection goes.
func (sess *session) sendNotify(m protocol.Message) {
	s := sess.srv
	if sess.gone() {
		return
	}
	wc := sess.wc
	if int(sess.queued.Load()) >= s.sessionSendQueue {
		sess.shed("session queue bound")
		return
	}
	sess.queued.Add(1)
	select {
	case wc.sendCh <- outFrame{sess: sess, sid: sess.sid, id: 0, m: m}:
	case <-wc.dead:
		sess.queued.Add(-1)
	default:
		sess.queued.Add(-1)
		sess.shed("connection queue full")
	}
}

// shed counts one shed notification and evicts the slow consumer.
func (sess *session) shed(why string) {
	s := sess.srv
	if s.ins != nil {
		s.ins.shed.Inc()
	}
	s.logf("conn %s session %d: shedding slow consumer (%s)", sess.wc.conn.RemoteAddr(), sess.sid, why)
	s.teardownSession(sess, why)
}

// teardownSession removes one logical session and releases everything
// it holds. Idempotent. When evictReason is non-empty the teardown is
// an eviction: it is counted, the client gets a best-effort
// unsolicited CodeOverloaded error on the session, and — for the
// implicit session — the connection is closed (a pre-mux client has
// no way to learn its only session died otherwise).
func (s *Server) teardownSession(sess *session, evictReason string) {
	if !sess.closed.CompareAndSwap(false, true) {
		return
	}
	wc := sess.wc
	wc.mu.Lock()
	if wc.sessions[sess.sid] == sess {
		delete(wc.sessions, sess.sid)
	}
	wc.mu.Unlock()
	s.mu.Lock()
	delete(s.sessions, sess)
	if sess.proxy {
		s.proxySessions--
		if s.ins != nil {
			s.ins.proxySessions.Set(int64(s.proxySessions))
		}
	}
	if sess.exempt {
		s.exemptSessions--
	}
	if s.ins != nil {
		s.ins.sessions.Set(int64(len(s.sessions)))
		if evictReason != "" {
			s.ins.sessionsEvicted.Inc()
		}
	}
	s.mu.Unlock()
	if s.flight != nil && evictReason != "" {
		s.flight.Record(obs.Event{Name: "session.evict", Err: evictReason, N: int64(sess.sid)})
	}
	sess.sweepSegments()
	if evictReason == "" {
		return
	}
	if sess.sid == 0 {
		wc.shut()
		return
	}
	// Best-effort: tell the client its session was shed. Non-blocking;
	// if the queue is full the client finds out via CodeNoSession on
	// its next frame.
	select {
	case wc.sendCh <- outFrame{sid: sess.sid, id: 0, m: errReply(protocol.CodeOverloaded, "session evicted: %s", evictReason)}:
	default:
	}
}

// sweepSegments releases the session's per-segment state: its
// subscription, queued waiters, and any held write lock — but only on
// segments the session touched, not the whole registry. closed is
// already set, so handlers racing this sweep either attached before a
// given segment's lock acquisition here (and are released here) or
// observe closed under that lock and refuse to attach.
func (sess *session) sweepSegments() {
	s := sess.srv
	sess.touchedMu.Lock()
	touched := make([]*segState, 0, len(sess.touched))
	for st := range sess.touched {
		touched = append(touched, st)
	}
	sess.touched = nil
	sess.touchedMu.Unlock()
	for _, st := range touched {
		s.lockSeg(st)
		delete(st.subs, sess)
		kept := st.waiters[:0]
		for _, w := range st.waiters {
			if w.sess == sess {
				close(w.ch) // its handler observes gone() and bows out
				continue
			}
			kept = append(kept, w)
		}
		st.waiters = kept
		releaseWriter(st, sess)
		st.mu.Unlock()
	}
}

// cleanup tears the connection down: every session it carries, then
// the spawned handlers (released by the session sweeps), then the
// connection's registration.
func (wc *wireConn) cleanup() {
	wc.shut()
	wc.mu.Lock()
	sessions := make([]*session, 0, len(wc.sessions))
	for _, sess := range wc.sessions {
		sessions = append(sessions, sess)
	}
	wc.mu.Unlock()
	for _, sess := range sessions {
		wc.srv.teardownSession(sess, "")
	}
	wc.handlers.Wait()
	s := wc.srv
	s.mu.Lock()
	delete(s.conns, wc)
	if s.ins != nil {
		s.ins.conns.Set(int64(len(s.conns)))
	}
	s.mu.Unlock()
}
