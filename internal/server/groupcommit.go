package server

import (
	"errors"
	"fmt"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Group commit (DESIGN.md §10, Options.GroupCommit). The expensive
// part of a write release is not applying the diff — it is the
// durability fan-out behind it: the journal append and the
// replicate-before-acknowledge round trip. With group commit enabled,
// a release applies its diff, records its at-most-once entry, and
// hands the write lock to the next queued writer IMMEDIATELY; the
// release then joins the segment's pending batch and waits. One
// flusher per segment drains the batch: because apply+enqueue is
// atomic under the segment mutex, the pending entries cover exactly
// prev0..seg.Version, so a single CollectDiff(prev0) — which merges
// the cached per-release diffs (PR 5's mergeCachedDiffs) — yields one
// merged diff standing in for the whole batch. The flusher writes one
// journal record, streams one Replicate frame, and runs one
// notification fan-out for N releases, then wakes all N waiters.
//
// The replicate-before-acknowledge invariant is preserved: no client
// sees a VersionReply until the flush covering its version is on disk
// and on every placed replica. What changes is only WHEN the next
// writer may start working — before the previous release's fan-out
// completes — which is what creates the batch.

// DefaultGroupCommitMax bounds how many releases may sit in one
// segment's pending batch; a release finding the batch full waits
// (on the write lock it still holds) until the flusher takes a
// batch, which backpressures writers instead of growing the batch
// without bound.
const DefaultGroupCommitMax = 64

// pendingRelease is one applied-but-not-yet-flushed write release.
type pendingRelease struct {
	prevVer uint32
	version uint32
	// notifications are the subscriber sends this release's
	// updateSubscribers pass produced; the flusher runs them (the
	// notified flag already dedups within a batch).
	notifications []func()
	// done is closed by the flusher once the covering flush finished;
	// jerr/replErr are valid after that.
	done    chan struct{}
	jerr    error
	replErr error
}

// finishReleaseGrouped completes a non-empty write release in group
// mode. Called from handleWriteUnlock with st.mu held and the diff
// already applied; always unlocks st.mu. The caller's session still
// formally holds the write lock — it is handed off here, before the
// flush, which is what lets the next writer overlap with this
// release's durability fan-out.
func (sess *session) finishReleaseGrouped(st *segState, seg string, prevVer, version uint32, notifications []func()) protocol.Message {
	s := sess.srv
	pr := &pendingRelease{
		prevVer:       prevVer,
		version:       version,
		notifications: notifications,
		done:          make(chan struct{}),
	}
	st.pending = append(st.pending, pr)
	lead := !st.flushing
	if lead {
		st.flushing = true
	}
	releaseWriter(st, sess)
	st.mu.Unlock()
	if lead {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.flight != nil {
				defer s.flight.DumpOnPanic(s.crashw, "group-commit flusher "+st.name)
			}
			s.runGroupFlush(st)
		}()
	}
	<-pr.done
	if pr.jerr != nil {
		return errReply(protocol.CodeInternal, "release of %q not journaled: %v", seg, pr.jerr)
	}
	if pr.replErr != nil {
		if isFenced(pr.replErr) {
			return errReply(protocol.CodeNotOwner, "release of %q fenced: %v", seg, pr.replErr)
		}
		return errReply(protocol.CodeNotReplicated, "release of %q not replicated: %v", seg, pr.replErr)
	}
	return &protocol.VersionReply{Version: version}
}

// runGroupFlush is the segment's flusher: it repeatedly takes the
// whole pending batch and commits it as one unit, exiting (and
// clearing st.flushing) when the batch comes up empty. At most one
// flusher runs per segment (the st.flushing flag), so journal records
// and Replicate frames stay version-ordered.
func (s *Server) runGroupFlush(st *segState) {
	for {
		s.lockSeg(st)
		batch := st.pending
		st.pending = nil
		if len(batch) == 0 {
			st.flushing = false
			st.flushDone.Broadcast()
			st.mu.Unlock()
			return
		}
		// The batch is off the queue: wake writers blocked on the
		// batch bound, and anyone draining (drainGroupCommit re-checks
		// flushing, which is still true).
		st.flushDone.Broadcast()
		st.gcFlushes++
		st.gcReleases += uint64(len(batch))
		prev0 := batch[0].prevVer
		endVer := batch[len(batch)-1].version
		var jerr, replErr error
		var rep *protocol.Replicate
		var job *replicationJob
		if st.seg.Version != endVer {
			// The segment state was replaced under us — demotion reset
			// it (ownership moved). The batch was applied locally but
			// never made durable; fail it exactly like a fenced
			// single release, so clients recover via Resume at the new
			// owner (DESIGN.md §7.1).
			replErr = fmt.Errorf("%w: segment state replaced during group flush (at %d, batch end %d)",
				errWriteFenced, st.seg.Version, endVer)
		} else {
			d, derr := st.seg.CollectDiff(prev0)
			switch {
			case derr != nil:
				jerr = fmt.Errorf("collecting batch diff: %w", derr)
			case d == nil:
				jerr = fmt.Errorf("collecting batch diff %d..%d: empty", prev0, endVer)
			default:
				rep = &protocol.Replicate{
					Seg:         st.name,
					PrevVersion: prev0,
					Version:     endVer,
					Diff:        d,
					Applied:     entriesFromApplied(st.applied),
				}
				job = s.replicationJob(st, st.name, prev0, endVer, d)
			}
		}
		st.mu.Unlock()

		// Durability, outside the segment mutex: one journal record
		// and one Replicate fan-out for the whole batch.
		if jerr == nil && replErr == nil && s.journal != nil && rep != nil {
			jerr = s.journalAppend(st, rep)
			if jerr == nil {
				s.maybeCompactJournal(st)
			}
		}
		if jerr == nil && replErr == nil && job != nil {
			replErr = s.runReplication(job)
		}

		if s.ins != nil {
			s.ins.groupCommits.Inc()
			s.ins.groupCommitted.Add(uint64(len(batch)))
		}
		if s.flight != nil {
			ev := obs.Event{Name: "groupcommit.flush", Seg: st.name, N: int64(len(batch))}
			if jerr != nil {
				ev.Err = jerr.Error()
			} else if replErr != nil {
				ev.Err = replErr.Error()
			}
			s.flight.Record(ev)
		}
		var notes []func()
		for _, pr := range batch {
			notes = append(notes, pr.notifications...)
		}
		if s.ins != nil && len(notes) > 0 {
			s.ins.notifications.Add(uint64(len(notes)))
		}
		for _, n := range notes {
			n()
		}
		for _, pr := range batch {
			pr.jerr, pr.replErr = jerr, replErr
			close(pr.done)
		}
	}
}

// waitGroupCommitRoom blocks (releasing st.mu via the condition
// variable) until the pending batch has room. Called with st.mu held,
// before the release applies its diff; returns with st.mu held. The
// caller must re-verify it still holds the write lock — a session
// teardown may have stripped it while the mutex was released.
func (s *Server) waitGroupCommitRoom(st *segState) {
	for len(st.pending) >= s.groupCommitMax {
		st.flushDone.Wait()
	}
}

// drainGroupCommit waits until st has no pending or in-flight group
// flush. Transaction commits call this per involved segment before
// snapshotting: a TxCommit bumps versions without joining the batch,
// and an interleaved flush would otherwise journal and replicate
// overlapping version ranges out of order. The tx session holds the
// write locks, so nothing can enqueue new batch entries after the
// drain.
func (s *Server) drainGroupCommit(st *segState) {
	s.lockSeg(st)
	for len(st.pending) > 0 || st.flushing {
		st.flushDone.Wait()
	}
	st.mu.Unlock()
}

// isFenced reports whether a replication error is an epoch fence
// (ownership moved mid-flush).
func isFenced(err error) bool {
	return errors.Is(err, errWriteFenced)
}
