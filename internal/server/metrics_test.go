package server_test

import (
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/core"
	"interweave/internal/obs"
	"interweave/internal/server"
	"interweave/internal/types"
)

// scrape fetches the /metrics endpoint once and parses it.
func scrape(t *testing.T, ts *httptest.Server) *promScrape {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// promScrape is one parsed exposition: every sample by its full key
// (name plus label set) and every family's declared TYPE.
type promScrape struct {
	samples map[string]float64
	types   map[string]string
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

// parseProm parses Prometheus text format line by line, failing the
// test on any malformed line or duplicated header/sample.
func parseProm(t *testing.T, text string) *promScrape {
	t.Helper()
	p := &promScrape{samples: make(map[string]float64), types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE header %q", ln+1, line)
			}
			if _, dup := p.types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE header for %s", ln+1, parts[2])
			}
			p.types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, m[3], err)
		}
		key := m[1] + m[2]
		if _, dup := p.samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %s", ln+1, key)
		}
		p.samples[key] = v
	}
	return p
}

// get returns a sample by exact key, failing if absent.
func (p *promScrape) get(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := p.samples[key]
	if !ok {
		keys := make([]string, 0, len(p.samples))
		for k := range p.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t.Fatalf("no sample %s; have:\n  %s", key, strings.Join(keys, "\n  "))
	}
	return v
}

var leRe = regexp.MustCompile(`,?le="[^"]*"`)

// checkHistograms verifies every histogram family's internal
// consistency: buckets cumulative and non-decreasing, the +Inf bucket
// equal to _count, and _sum present.
func (p *promScrape) checkHistograms(t *testing.T) {
	t.Helper()
	type inst struct {
		buckets map[float64]float64 // le -> cumulative count
		inf     float64
		hasInf  bool
	}
	insts := make(map[string]*inst)
	for key, v := range p.samples {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		fam, ok := strings.CutSuffix(name, "_bucket")
		if !ok || p.types[fam] != "histogram" {
			continue
		}
		base := strings.Replace(leRe.ReplaceAllString(key, ""), "_bucket", "", 1)
		base = strings.TrimSuffix(base, "{}")
		in := insts[base]
		if in == nil {
			in = &inst{buckets: make(map[float64]float64)}
			insts[base] = in
		}
		leStart := strings.Index(key, `le="`) + len(`le="`)
		leStr := key[leStart : leStart+strings.IndexByte(key[leStart:], '"')]
		if leStr == "+Inf" {
			in.inf, in.hasInf = v, true
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("%s: bad le %q", key, leStr)
		}
		in.buckets[le] = v
	}
	if len(insts) == 0 {
		t.Fatal("no histogram instances found")
	}
	for base, in := range insts {
		if !in.hasInf {
			t.Errorf("%s: no +Inf bucket", base)
			continue
		}
		les := make([]float64, 0, len(in.buckets))
		for le := range in.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			if in.buckets[le] < prev {
				t.Errorf("%s: bucket le=%g count %g below previous %g", base, le, in.buckets[le], prev)
			}
			prev = in.buckets[le]
		}
		if in.inf < prev {
			t.Errorf("%s: +Inf bucket %g below last bucket %g", base, in.inf, prev)
		}
		countKey, sumKey := base+"_count", base+"_sum"
		if i := strings.IndexByte(base, '{'); i >= 0 {
			countKey = base[:i] + "_count" + base[i:]
			sumKey = base[:i] + "_sum" + base[i:]
		}
		if c := p.get(t, countKey); c != in.inf {
			t.Errorf("%s: _count %g != +Inf bucket %g", base, c, in.inf)
		}
		if s := p.get(t, sumKey); s < 0 {
			t.Errorf("%s: negative _sum %g", base, s)
		}
	}
}

// TestMetricsEndpointScrape runs a small two-client workload against
// an instrumented server, scrapes /metrics through HTTP twice, and
// checks the exposition parses, the histograms are internally
// consistent, and every counter is monotone across scrapes.
func TestMetricsEndpointScrape(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := server.New(server.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	ts := httptest.NewServer(obs.Handler(reg))
	defer ts.Close()

	w, err := core.NewClient(core.Options{Profile: arch.AMD64(), Name: "w"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := core.NewClient(core.Options{Profile: arch.X86(), Name: "r"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	segName := addr + "/metrics-seg"
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	writeRound := func(v int32) {
		t.Helper()
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		blk, ok := hw.Mem().BlockByName("a")
		if !ok {
			b, err := w.Alloc(hw, types.Int32(), 64, "a")
			if err != nil {
				t.Fatal(err)
			}
			blk = b
		}
		if err := w.Heap().WriteI32(blk.Addr, v); err != nil {
			t.Fatal(err)
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
	}
	writeRound(1)
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	readRound := func() {
		t.Helper()
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	readRound()

	first := scrape(t, ts)
	first.checkHistograms(t)
	if got := first.get(t, `iw_server_version_checks_total{result="diff"}`); got < 1 {
		t.Errorf("diff version checks = %g, want >= 1", got)
	}
	if got := first.get(t, "iw_server_diff_bytes_total"); got <= 0 {
		t.Errorf("diff bytes = %g, want > 0", got)
	}
	if got := first.get(t, `iw_server_rpc_seconds_count{rpc="WriteUnlock"}`); got < 1 {
		t.Errorf("WriteUnlock handled count = %g, want >= 1", got)
	}
	if got := first.get(t, "iw_server_sessions"); got != 2 {
		t.Errorf("sessions gauge = %g, want 2", got)
	}

	// More workload, then a second scrape: the live endpoint must show
	// strictly advancing counters and stay internally consistent.
	writeRound(2)
	readRound()
	writeRound(3)
	readRound()

	second := scrape(t, ts)
	second.checkHistograms(t)
	for key, v1 := range first.samples {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && second.types[f] == "histogram" {
				fam = f
			}
		}
		if second.types[fam] != "counter" && second.types[fam] != "histogram" {
			continue // gauges may move either way
		}
		v2, ok := second.samples[key]
		if !ok {
			t.Errorf("sample %s vanished from second scrape", key)
			continue
		}
		if v2 < v1 {
			t.Errorf("%s went backwards: %g -> %g", key, v1, v2)
		}
	}
	if d1 := first.get(t, "iw_server_diff_bytes_total"); second.get(t, "iw_server_diff_bytes_total") <= d1 {
		t.Errorf("diff bytes did not advance past %g under workload", d1)
	}

	// The per-segment collector gauges must agree with DebugSegments.
	segs := srv.DebugSegments()
	if len(segs) != 1 {
		t.Fatalf("DebugSegments() = %d entries, want 1", len(segs))
	}
	sd := segs[0]
	if sd.Name != segName || sd.Version == 0 || sd.Blocks != 1 || sd.Units != 64 {
		t.Errorf("unexpected debug snapshot %+v", sd)
	}
	gauge := second.get(t, fmt.Sprintf("iw_server_segment_version{seg=%q}", segName))
	// The gauge is from the second scrape, before the final state read;
	// it can only trail the snapshot.
	if gauge > float64(sd.Version) {
		t.Errorf("segment version gauge %g ahead of snapshot %d", gauge, sd.Version)
	}

	// The atomic diff-cache hit counter must surface per segment: the
	// read rounds trail the writer by one version, the textbook cached
	// case, so by the second scrape the gauge is non-zero and the live
	// (lock-free) accessor is at least as new as the scrape.
	hits := second.get(t, fmt.Sprintf("iw_server_segment_cache_hits{seg=%q}", segName))
	if hits < 1 {
		t.Errorf("segment cache-hits gauge = %g, want >= 1", hits)
	}
	if live := srv.SegmentSnapshot(segName).CacheHits(); float64(live) < hits {
		t.Errorf("live CacheHits() = %d below scraped gauge %g", live, hits)
	}
	// The segment-lock contention counter is registered up front, so
	// it must be present (any value) in every scrape.
	if v := second.get(t, "iw_server_seg_lock_contention_total"); v < 0 {
		t.Errorf("contention counter = %g", v)
	}
}
