package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/coherence"
	"interweave/internal/faultnet"
	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// doWrite runs one full write cycle (lock, diff, unlock) against seg.
func doWrite(t *testing.T, rc *rawClient, seg string, serial uint32) {
	t.Helper()
	reply, _ := rc.call(&protocol.WriteLock{Seg: seg, Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("write lock reply = %+v", reply)
	}
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: seg, Diff: intCreateDiff(t, serial, serial)})
	if _, ok := reply.(*protocol.VersionReply); !ok {
		t.Fatalf("unlock reply = %+v", reply)
	}
}

// TestHealthVerdictAndHandlers exercises the /healthz and /debug/slo
// surface on a healthy server: the verdict is ok with real traffic,
// the handlers serve well-formed JSON, and a synthetic shed burst
// flips the verdict to overloaded (503).
func TestHealthVerdictAndHandlers(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Options{
		Metrics:        reg,
		SLOShortWindow: 10 * time.Second,
		SLOLongWindow:  60 * time.Second,
		SLOSampleEvery: -1, // test drives SampleSLO manually
	})
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "h", Profile: "x86-32le"})
	reply, _ := rc.call(&protocol.OpenSegment{Name: "s", Create: true})
	if _, ok := reply.(*protocol.OpenReply); !ok {
		t.Fatalf("open reply = %+v", reply)
	}
	doWrite(t, rc, "s", 1)

	t0 := time.Now()
	srv.SampleSLO(t0)
	doWrite(t, rc, "s", 2)
	srv.SampleSLO(t0.Add(5 * time.Second))

	h := srv.Health(t0.Add(5 * time.Second))
	if h.Status != HealthOK {
		t.Fatalf("Health = %q (%v), want ok", h.Status, h.Reasons)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("UptimeSeconds = %v, want > 0", h.UptimeSeconds)
	}
	if len(h.SLO.Objectives) != 3 {
		t.Fatalf("SLO objectives = %d, want 3", len(h.SLO.Objectives))
	}

	// /healthz answers 200 with the ok verdict.
	rr := httptest.NewRecorder()
	srv.HealthzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 (%s)", rr.Code, rr.Body)
	}
	var got Health
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("/healthz JSON: %v", err)
	}
	if got.Status != HealthOK {
		t.Fatalf("/healthz status = %q, want ok", got.Status)
	}

	// /debug/slo serves the full report.
	rr = httptest.NewRecorder()
	srv.SLOHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var rep obs.SLOReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/debug/slo JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, o := range rep.Objectives {
		names[o.Name] = true
	}
	for _, want := range []string{"read_lock", "write_unlock", "journal_append"} {
		if !names[want] {
			t.Fatalf("/debug/slo missing objective %q (have %v)", want, names)
		}
	}

	// A shed burst between two samples flips the verdict to
	// overloaded, and /healthz answers 503.
	srv.ins.shed.Add(20)
	srv.SampleSLO(t0.Add(8 * time.Second))
	h = srv.Health(t0.Add(8 * time.Second))
	if h.Status != HealthOverloaded {
		t.Fatalf("Health after shed burst = %q (%v), want overloaded", h.Status, h.Reasons)
	}
	rr = httptest.NewRecorder()
	srv.HealthzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while overloaded = %d, want 503", rr.Code)
	}
}

// TestSLOChaosFlip is the acceptance chaos test: injected faultnet
// latency on the replication path balloons WriteUnlock handling past
// its SLO bound, the verdict flips to degraded, and healing the
// network flips it back to ok — all on one server process, no
// restarts.
func TestSLOChaosFlip(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	// The fault: every replication chunk A sends is delayed well past
	// the 256ms WriteUnlock objective bound, but only while the
	// injecting flag is up — the Dial hook decides per connection, and
	// cluster RPCs are one connection per call.
	var injecting atomic.Bool
	sched := faultnet.NewSchedule(faultnet.Rule{
		Dir: faultnet.Down, Op: faultnet.OpDelay, Delay: 400 * time.Millisecond,
	})
	dial := func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		if injecting.Load() {
			return faultnet.WrapConn(c, sched, 1), nil
		}
		return c, nil
	}

	nodeA := cluster.NewNode(cluster.Options{
		Self: addrA, Peers: []string{addrB}, Replicas: 1,
		DialTimeout: 5 * time.Second, Dial: dial, Logf: t.Logf,
	})
	nodeB := cluster.NewNode(cluster.Options{
		Self: addrB, Peers: []string{addrA}, Replicas: 1,
		DialTimeout: 5 * time.Second, Logf: t.Logf,
	})
	regA := obs.NewRegistry()
	srvA, err := New(Options{
		Cluster: nodeA, Metrics: regA, Logf: t.Logf,
		SLOShortWindow: 10 * time.Second,
		SLOLongWindow:  60 * time.Second,
		SLOSampleEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(Options{Cluster: nodeB, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve(lnA) }()
	go func() { _ = srvB.Serve(lnB) }()
	nodeA.Start()
	nodeB.Start()
	t.Cleanup(func() {
		nodeA.Close()
		nodeB.Close()
		_ = srvA.Close()
		_ = srvB.Close()
	})

	// Pick a segment A owns, so its releases replicate A -> B through
	// the shaped dial.
	seg := ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("chaos-%d", i)
		if nodeA.Ring().Owner(name) == addrA {
			seg = name
			break
		}
	}
	if seg == "" {
		t.Fatal("no segment owned by node A in 64 candidates")
	}

	rc := dialRaw(t, addrA)
	rc.mustAck(&protocol.Hello{ClientName: "chaos", Profile: "x86-32le"})
	if reply, _ := rc.call(&protocol.OpenSegment{Name: seg, Create: true}); reply == nil {
		t.Fatal("open failed")
	}

	t0 := time.Now()
	srvA.SampleSLO(t0)

	// Fault phase: three slow releases land in the short window.
	injecting.Store(true)
	for i := uint32(1); i <= 3; i++ {
		doWrite(t, rc, seg, i)
	}
	srvA.SampleSLO(t0.Add(5 * time.Second))
	h := srvA.Health(t0.Add(5 * time.Second))
	if h.Status != HealthDegraded {
		t.Fatalf("Health under injected latency = %q (%v), want degraded", h.Status, h.Reasons)
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, "write_unlock") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded reasons %v do not name write_unlock", h.Reasons)
	}

	// Heal and let the short window roll past the fault: the verdict
	// returns to ok without restarting anything.
	injecting.Store(false)
	for i := uint32(4); i <= 6; i++ {
		doWrite(t, rc, seg, i)
	}
	srvA.SampleSLO(t0.Add(30 * time.Second))
	srvA.SampleSLO(t0.Add(35 * time.Second))
	h = srvA.Health(t0.Add(35 * time.Second))
	if h.Status != HealthOK {
		t.Fatalf("Health after heal = %q (%v), want ok", h.Status, h.Reasons)
	}
}

// TestServerGaugesAndDebugSegments checks the scrape-time gauges
// (uptime, per-segment journal disk bytes) and the extended
// /debug/segments fields (sessions, group-commit coalesce stats,
// journal bytes).
func TestServerGaugesAndDebugSegments(t *testing.T) {
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(64)
	srv, addr := startTestServer(t, Options{
		Metrics:             reg,
		Flight:              flight,
		JournalDir:          t.TempDir(),
		JournalCompactBytes: 1 << 20,
		GroupCommit:         true,
		SLOSampleEvery:      -1,
	})
	rc := dialRaw(t, addr)
	rc.mustAck(&protocol.Hello{ClientName: "g", Profile: "x86-32le"})
	if reply, _ := rc.call(&protocol.OpenSegment{Name: "g", Create: true}); reply == nil {
		t.Fatal("open failed")
	}
	for i := uint32(1); i <= 4; i++ {
		doWrite(t, rc, "g", i)
	}

	snap := reg.Snapshot()
	if up := snap.Gauges["iw_server_uptime_seconds"]; up <= 0 {
		t.Fatalf("iw_server_uptime_seconds = %v, want > 0", up)
	}
	if jb := snap.Gauges[`iw_server_journal_disk_bytes{seg="g"}`]; jb <= 0 {
		t.Fatalf("iw_server_journal_disk_bytes = %v, want > 0", jb)
	}
	if h, ok := snap.Histograms["iw_server_journal_append_seconds"]; !ok || h.Count < 4 {
		t.Fatalf("iw_server_journal_append_seconds count = %+v, want >= 4 observations", h)
	}

	// Hold the write lock so the session is attached, then inspect
	// the debug snapshot.
	reply, _ := rc.call(&protocol.WriteLock{Seg: "g", Policy: coherence.Full()})
	if _, ok := reply.(*protocol.LockReply); !ok {
		t.Fatalf("write lock reply = %+v", reply)
	}
	var sd *SegmentDebug
	for _, d := range srv.DebugSegments() {
		if d.Name == "g" {
			d := d
			sd = &d
		}
	}
	if sd == nil {
		t.Fatal("segment g missing from DebugSegments")
	}
	if sd.Sessions < 1 {
		t.Fatalf("Sessions = %d, want >= 1", sd.Sessions)
	}
	if sd.GroupFlushes < 1 || sd.GroupReleases < 4 {
		t.Fatalf("group commit stats = %d flushes / %d releases, want >= 1 / >= 4",
			sd.GroupFlushes, sd.GroupReleases)
	}
	if sd.JournalBytes <= 0 {
		t.Fatalf("JournalBytes = %d, want > 0", sd.JournalBytes)
	}
	reply, _ = rc.call(&protocol.WriteUnlock{Seg: "g"})
	if _, ok := reply.(*protocol.VersionReply); !ok {
		t.Fatalf("empty unlock reply = %+v", reply)
	}

	// The flight recorder saw the group-commit flushes, and a forced
	// compaction leaves a journal.compact event behind.
	if err := srv.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	var sawFlush, sawCompact bool
	for _, ev := range flight.Events() {
		switch ev.Name {
		case "groupcommit.flush":
			if ev.Seg == "g" && ev.N >= 1 {
				sawFlush = true
			}
		case "journal.compact":
			if ev.Seg == "g" {
				sawCompact = true
			}
		}
	}
	if !sawFlush || !sawCompact {
		t.Fatalf("flight events: flush=%v compact=%v, want both (events %v)",
			sawFlush, sawCompact, flight.Events())
	}
	if srv.Flight() != flight {
		t.Fatal("Flight() accessor does not return the configured recorder")
	}
}
