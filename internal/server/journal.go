package server

import (
	"fmt"
	"time"

	"interweave/internal/journal"
	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Journal mode (DESIGN.md §9). With Options.JournalDir set, the
// server's durability is log-structured: every committed release is
// appended to the segment's journal — as a persisted Replicate frame,
// the same message replication carries — before the client sees the
// acknowledgement, and recovery is checkpoint base + log replay. The
// journal's window doubles as the cluster catch-up source: a replica
// that NACKs a fan-out is re-fed the journaled frames covering its
// gap instead of a collected diff (see catchUpFromJournal).
//
// Lock discipline: appends on the release paths run without the
// segment mutex (the logical write lock freezes the version sequence,
// so record order matches version order); the replica apply path and
// promotion append under the segment mutex, whose serialization is
// the only ordering guarantee those paths have. Compaction encodes
// under the segment mutex and writes files outside it.

// DefaultJournalCompactBytes is the per-segment log size that
// triggers compaction when Options.JournalCompactBytes is zero.
const DefaultJournalCompactBytes = 4 << 20

// openJournal opens the journal store and restores every segment it
// holds: decode the checkpoint base, then replay the log tail.
func (s *Server) openJournal() error {
	compact := s.opts.JournalCompactBytes
	if compact == 0 {
		compact = DefaultJournalCompactBytes
	}
	store, err := journal.Open(s.opts.JournalDir, journal.Options{
		CompactBytes: compact,
		Logf:         s.opts.Logf,
	})
	if err != nil {
		return err
	}
	s.journal = store
	for _, name := range store.Segments() {
		if err := s.restoreJournalSeg(name); err != nil {
			return err
		}
	}
	return nil
}

// restoreJournalSeg rebuilds one segment: base (when present) plus an
// in-order replay of the journaled Replicate frames past the base's
// version. The journal store already truncated any torn tail; replay
// of what remains must succeed, or the journal is corrupt in a way
// CRC cannot explain and the restore fails loudly.
func (s *Server) restoreJournalSeg(name string) error {
	l, err := s.journal.Segment(name)
	if err != nil {
		return err
	}
	seg := NewSegment(name)
	applied := make(map[string]appliedWrite)
	if base, ok, err := l.Base(); err != nil {
		return err
	} else if ok {
		payload, err := openCheckpoint(base)
		if err != nil {
			return fmt.Errorf("server: journal base for %q: %w", name, err)
		}
		seg, applied, err = decodeCheckpointPayload(payload)
		if err != nil {
			return fmt.Errorf("server: journal base for %q: %w", name, err)
		}
		if seg.Name != name {
			return fmt.Errorf("server: journal base for %q holds segment %q", name, seg.Name)
		}
	}
	for _, rep := range l.Window(0) {
		if rep.Seg != name {
			return fmt.Errorf("server: journal for %q holds record for %q", name, rep.Seg)
		}
		if rep.Diff == nil || rep.Version <= seg.Version {
			continue // already covered by the base (or a no-op record)
		}
		if _, err := seg.ApplyReplicatedDiff(rep.Diff, rep.Version); err != nil {
			return fmt.Errorf("server: replaying journal of %q at version %d: %w", name, rep.Version, err)
		}
		applied = appliedFromEntries(rep.Applied)
		if s.ins != nil {
			s.ins.journalReplayStartup.Inc()
		}
	}
	if l.DroppedTail() {
		if s.ins != nil {
			s.ins.journalTruncatedTail.Inc()
		}
		s.logf("journal %s: dropped torn tail; recovered to version %d", name, seg.Version)
	}
	if s.opts.DiffCacheCap != 0 {
		n := s.opts.DiffCacheCap
		if n < 0 {
			n = 0
		}
		seg.SetDiffCacheCap(n)
	}
	st := &segState{
		name:    name,
		seg:     seg,
		subs:    make(map[*session]*subState),
		applied: applied,
	}
	s.reg.getOrCreate(name, func(string) *segState { return st })
	return nil
}

// journalAppend persists one committed write as a Replicate record.
// It must run before the client (or the primary, on the replica path)
// sees the acknowledgement; an error fails the release. It never
// takes the segment mutex — callers choose whether to hold it (see
// the lock discipline note above).
func (s *Server) journalAppend(st *segState, rep *protocol.Replicate) error {
	if s.journal == nil {
		return nil
	}
	l, err := s.journal.Segment(st.name)
	if err != nil {
		return err
	}
	var start time.Time
	if s.ins != nil {
		start = time.Now()
	}
	if err := l.Append(rep); err != nil {
		return err
	}
	if s.ins != nil {
		s.ins.journalAppends.Inc()
		s.ins.journalAppendSec.ObserveSince(start)
	}
	return nil
}

// maybeCompactJournal compacts the segment's journal when its log has
// outgrown the threshold. Called without the segment mutex (it takes
// it to encode). Compaction failure is logged, not fatal: the log
// keeps its records and the next trigger retries.
func (s *Server) maybeCompactJournal(st *segState) {
	if s.journal == nil {
		return
	}
	l, err := s.journal.Segment(st.name)
	if err != nil || !l.NeedsCompaction() {
		return
	}
	if err := s.compactJournalSeg(st); err != nil {
		s.logf("journal compact %s: %v", st.name, err)
	}
}

// compactJournalSeg folds one segment's journal into a fresh
// checkpoint base (encoded under the segment mutex, written outside
// it) and truncates its log. Called without the segment mutex.
func (s *Server) compactJournalSeg(st *segState) error {
	l, err := s.journal.Segment(st.name)
	if err != nil {
		return err
	}
	s.lockSeg(st)
	if st.seg == nil {
		// Evicted: the eviction already forced a compaction, so the
		// base + tail on disk capture the state exactly and there is
		// nothing to fold (a fault-in would only rebuild the bytes we
		// would re-encode).
		st.mu.Unlock()
		return nil
	}
	buf := st.seg.encode()
	buf = appendApplied(buf, st.applied)
	ver := st.seg.Version
	st.mu.Unlock()
	if err := l.Compact(ver, sealCheckpoint(buf)); err != nil {
		return err
	}
	if s.ins != nil {
		s.ins.journalCompactions.Inc()
	}
	if s.flight != nil {
		s.flight.Record(obs.Event{Name: "journal.compact", Seg: st.name, N: int64(ver)})
	}
	return nil
}

// CompactJournal compacts every segment's journal into a fresh base,
// the journal-mode equivalent of a full checkpoint pass; Checkpoint,
// the periodic loop, and Close delegate here. It is exported so
// operators and tests can force a compaction point.
func (s *Server) CompactJournal() error {
	if s.journal == nil {
		return nil
	}
	if s.ins != nil {
		start := time.Now()
		defer func() { s.ins.ckptSec.ObserveSince(start) }()
	}
	for _, st := range s.reg.snapshot() {
		if err := s.compactJournalSeg(st); err != nil {
			if s.ins != nil {
				s.ins.ckptErrors.Inc()
			}
			return err
		}
	}
	return nil
}
