package server

import (
	"fmt"
	"sort"
	"time"

	"interweave/internal/obs"
)

// Cold-segment eviction (DESIGN.md §12). With Options.MaxResidentBytes
// or Options.EvictIdleAge set on a journal-mode server, a background
// sweep drops the in-memory image (Segment and its diff cache) of idle
// segments so one server can address more state than RAM. Eviction
// first forces a journal compaction, so the on-disk base + (empty)
// tail capture the segment exactly; what stays behind is a stub — the
// segState with seg == nil, evictedVer recording the version, and the
// in-memory applied-writer table. The next touch faults the image back
// in through the same base + tail replay recovery uses, transparently
// to clients, replicas, and proxies.
//
// Fencing: a segment is evictable only while it has no writer, no
// queued waiters, no pending group-commit releases, and no flush in
// flight (evictableLocked). Those fences are re-checked after the
// compaction along with pointer identity and version equality, so a
// write, replica frame, promotion, or demotion that slips between the
// compaction and the drop aborts the eviction. Subscribers survive
// eviction untouched: notify fan-out only runs on write paths, which
// fault the segment in first.

// DefaultEvictInterval is the eviction sweep cadence when
// Options.EvictInterval is zero.
const DefaultEvictInterval = time.Second

// residentVersionLocked returns the segment's current version whether
// or not its image is resident. Called with st.mu held.
func (st *segState) residentVersionLocked() uint32 {
	if st.seg != nil {
		return st.seg.Version
	}
	return st.evictedVer
}

// evictableLocked reports whether the segment could be dropped right
// now: image resident and no in-flight work fencing it. Called with
// st.mu held.
func (st *segState) evictableLocked() bool {
	return st.seg != nil && st.writer == nil && len(st.waiters) == 0 &&
		len(st.pending) == 0 && !st.flushing
}

// ensureResident stamps the segment's LRU clock and, when the image
// has been evicted, faults it back in from the journal: decode the
// checkpoint base, replay the log tail, verify the recovered version
// matches the stub. Called with st.mu held — the file reads run under
// the segment's own lock (only touches to this segment block, the
// same exception the replica apply path makes for journal appends).
// The in-memory applied table is authoritative across eviction and is
// left untouched.
func (s *Server) ensureResident(st *segState) error {
	st.lastTouch.Store(time.Now().UnixNano())
	if st.seg != nil {
		return nil
	}
	if s.journal == nil {
		return fmt.Errorf("server: segment %q evicted without a journal", st.name)
	}
	var start time.Time
	if s.ins != nil {
		start = time.Now()
	}
	l, err := s.journal.Segment(st.name)
	if err != nil {
		return err
	}
	seg := NewSegment(st.name)
	if base, ok, err := l.Base(); err != nil {
		return err
	} else if ok {
		payload, err := openCheckpoint(base)
		if err != nil {
			return fmt.Errorf("server: fault-in base for %q: %w", st.name, err)
		}
		seg, _, err = decodeCheckpointPayload(payload)
		if err != nil {
			return fmt.Errorf("server: fault-in base for %q: %w", st.name, err)
		}
		if seg.Name != st.name {
			return fmt.Errorf("server: fault-in base for %q holds segment %q", st.name, seg.Name)
		}
	}
	for _, rep := range l.Window(0) {
		if rep.Diff == nil || rep.Version <= seg.Version {
			continue
		}
		if _, err := seg.ApplyReplicatedDiff(rep.Diff, rep.Version); err != nil {
			return fmt.Errorf("server: fault-in replay of %q at version %d: %w", st.name, rep.Version, err)
		}
	}
	if seg.Version != st.evictedVer {
		// The journal does not reproduce the state the stub recorded;
		// serving it would hand clients a version they never saw.
		return fmt.Errorf("server: fault-in of %q recovered version %d, stub recorded %d",
			st.name, seg.Version, st.evictedVer)
	}
	if s.opts.DiffCacheCap != 0 {
		n := s.opts.DiffCacheCap
		if n < 0 {
			n = 0
		}
		seg.SetDiffCacheCap(n)
	}
	st.seg = seg
	st.evictedVer = 0
	if s.ins != nil {
		s.ins.segFaults.Inc()
		s.ins.segFaultSec.ObserveSince(start)
	}
	if s.flight != nil {
		s.flight.Record(obs.Event{Name: "segment.fault", Seg: st.name, N: int64(seg.Version)})
	}
	return nil
}

// EvictSegment force-evicts one segment's in-memory image, reporting
// whether it was dropped. It fails (returning false) when the server
// has no journal, the segment does not exist or is already evicted,
// in-flight work fences it, or the compaction cannot complete.
// Exported for tests and operational tooling; the background sweep
// uses the same path.
func (s *Server) EvictSegment(name string) bool {
	st, ok := s.reg.get(name)
	if !ok {
		return false
	}
	return s.evictSeg(st)
}

// evictSeg drops one segment's image: check the fences, force a
// compaction so base + tail capture the state exactly, then re-check
// and drop. The compaction runs outside the segment mutex (standard
// compaction discipline), so the re-check guards pointer identity and
// version equality — any interleaved write, replica frame, promotion,
// or demotion aborts the eviction.
func (s *Server) evictSeg(st *segState) bool {
	if s.journal == nil {
		return false
	}
	s.lockSeg(st)
	if !st.evictableLocked() {
		st.mu.Unlock()
		return false
	}
	seg := st.seg
	ver := seg.Version
	st.mu.Unlock()

	if err := s.compactJournalSeg(st); err != nil {
		s.logf("evict %s: compact: %v", st.name, err)
		return false
	}

	s.lockSeg(st)
	defer st.mu.Unlock()
	if st.seg != seg || st.seg.Version != ver || !st.evictableLocked() {
		// Something touched the segment while the compaction ran: it
		// is not idle after all, keep it resident. (The compaction
		// encoded a version ≥ ver either way, so the journal stays
		// self-consistent.)
		return false
	}
	st.seg = nil
	st.evictedVer = ver
	if s.ins != nil {
		s.ins.segEvictions.Inc()
	}
	if s.flight != nil {
		s.flight.Record(obs.Event{Name: "segment.evict", Seg: st.name, N: int64(ver)})
	}
	return true
}

// EvictPass runs one eviction sweep: segments untouched longer than
// EvictIdleAge are dropped regardless of budget, then, while the
// estimated resident footprint exceeds MaxResidentBytes, the
// least-recently-touched segments are dropped until it fits. Returns
// how many segments were evicted. Exported so tests and operators can
// drive the sweep without the background loop.
func (s *Server) EvictPass() int {
	if s.journal == nil || (s.opts.MaxResidentBytes <= 0 && s.opts.EvictIdleAge <= 0) {
		return 0
	}
	type candidate struct {
		st    *segState
		bytes int64
		touch int64
	}
	var cands []candidate
	var residentBytes int64
	for _, st := range s.reg.snapshot() {
		s.lockSeg(st)
		if st.seg != nil {
			c := candidate{st: st, bytes: st.seg.MemBytes(), touch: st.lastTouch.Load()}
			cands = append(cands, c)
			residentBytes += c.bytes
		}
		st.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	now := time.Now()
	budget := s.opts.MaxResidentBytes
	idleAge := s.opts.EvictIdleAge
	evicted := 0
	for _, c := range cands {
		overBudget := budget > 0 && residentBytes > budget
		tooIdle := idleAge > 0 && now.Sub(time.Unix(0, c.touch)) >= idleAge
		if !overBudget && !tooIdle {
			// Candidates are ordered oldest touch first: everything
			// after this one is younger still, and the budget holds.
			break
		}
		if s.evictSeg(c.st) {
			evicted++
			residentBytes -= c.bytes
		}
	}
	return evicted
}

// evictLoop runs EvictPass on the configured cadence until Close.
func (s *Server) evictLoop() {
	defer s.wg.Done()
	every := s.opts.EvictInterval
	if every <= 0 {
		every = DefaultEvictInterval
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.EvictPass()
		}
	}
}
