// Package server implements the InterWeave server: it maintains the
// master copy of every segment it manages, tracks modifications at
// subblock granularity, builds wire-format diffs for lagging clients,
// arbitrates write locks, pushes coherence notifications, and
// checkpoints segments to persistent storage (paper Section 3.2).
//
// To avoid an extra level of translation the server stores both data
// and type descriptors in wire format: each primitive unit occupies a
// fixed 8-byte cell holding its canonical value, while variable-size
// items — strings and MIPs — are stored separately and referenced by
// index, exactly the arrangement the paper describes for avoiding
// data relocation.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"interweave/internal/rbtree"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// SubblockUnits is the modification-tracking granularity: the server
// divides large blocks into subblocks of 16 primitive data units and
// keeps a version number per subblock (Section 3.2; the paper's
// "artifact of subblocks" is visible in Figure 5 between ratios 1 and
// 16).
const SubblockUnits = 16

// defaultDiffCache is how many recent per-version diffs a segment
// caches for forwarding.
const defaultDiffCache = 8

// Blk is the server-side image of one block, stored in wire format.
type Blk struct {
	Serial     uint32
	Name       string
	DescSerial uint32
	Count      int // elements
	// kinds and caps describe one element's units; steps is the
	// collapsed wire walk used for bulk translation.
	kinds []types.Kind
	caps  []int
	steps []types.WireStep
	// wirePrefix[i] is the fixed wire size of units [0,i) of one
	// element; hasVarlen marks blocks whose estimate must inspect
	// the variable-length items.
	wirePrefix []int
	hasVarlen  bool
	// cells holds one 8-byte canonical cell per unit; for strings
	// and MIPs the cell is a 1-based index into vars.
	cells []uint64
	vars  [][]byte
	// varBytes is the summed length of vars, maintained by setVar so
	// MemBytes never has to walk the slices.
	varBytes int
	// subVer is the per-subblock version array.
	subVer []uint32
	// createdVer is the segment version that introduced the block.
	createdVer uint32
	// version is the segment version that last modified the block.
	version uint32
	// elem is the block's position in the segment's blk_version_list.
	elem *listElem
}

// Units returns the block's total unit count.
func (b *Blk) Units() int { return len(b.cells) }

// Version returns the segment version that last modified the block.
func (b *Blk) Version() uint32 { return b.version }

// CreatedVersion returns the segment version that created the block.
func (b *Blk) CreatedVersion() uint32 { return b.createdVer }

// DescSerials lists the segment's registered type descriptors in
// serial order.
func (s *Segment) DescSerials() []uint32 {
	out := make([]uint32, 0, len(s.descs))
	for serial := range s.descs {
		out = append(out, serial)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// elemUnits returns units per element.
func (b *Blk) elemUnits() int { return len(b.kinds) }

// freedEntry records one block free for lagging clients.
type freedEntry struct {
	version uint32
	serial  uint32
}

// listElem is a node of the blk_version_list: a doubly linked list of
// markers and blocks ordered by version. Markers separate sublists of
// blocks having the same version; all blocks after the marker for
// version v were last modified at version >= v.
type listElem struct {
	prev, next *listElem
	blk        *Blk   // nil for markers and sentinels
	marker     uint32 // version, for markers
}

// Segment is the master copy of one segment.
type Segment struct {
	Name    string
	Version uint32
	// blocks is the svr_blk_number_tree.
	blocks *rbtree.Tree[uint32, *Blk]
	// byName resolves symbolic block names (for MIP lookups and
	// debugging tools).
	byName map[string]uint32
	// head/tail are sentinels of the blk_version_list.
	head, tail *listElem
	// markers is the marker_version_tree.
	markers *rbtree.Tree[uint32, *listElem]
	// descs maps global descriptor serials to canonical bytes;
	// descIndex deduplicates by content.
	descs      map[uint32][]byte
	descKinds  map[uint32][]types.Kind
	descCaps   map[uint32][]int
	descSteps  map[uint32][]types.WireStep
	descIndex  map[string]uint32
	nextDesc   uint32
	totalUnits int
	// freedLog records block frees so that lagging clients learn
	// about them: freed serials with the version that freed them.
	freedLog []freedEntry
	// diffCache holds recently applied/collected diffs keyed by the
	// version they produce (Section 3.3, diff caching).
	diffCache map[uint32][]byte
	cacheKeys []uint32 // FIFO eviction
	cacheCap  int
	// cacheHits counts diff-cache hits (see CacheHits). Atomic: reads
	// (metrics scrapes, benches) are not serialized with the segment
	// lock collectors increment under.
	cacheHits atomic.Uint64
}

// CacheHits reports how many diff collections were served from the
// diff cache, for the ablation bench and the per-segment scrape gauge.
// Safe to call without holding the segment's lock.
func (s *Segment) CacheHits() uint64 {
	return s.cacheHits.Load()
}

// NewSegment returns an empty segment at version zero.
func NewSegment(name string) *Segment {
	s := &Segment{
		Name: name,
		blocks: rbtree.New[uint32, *Blk](func(a, b uint32) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
		byName: make(map[string]uint32),
		markers: rbtree.New[uint32, *listElem](func(a, b uint32) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
		descs:     make(map[uint32][]byte),
		descKinds: make(map[uint32][]types.Kind),
		descCaps:  make(map[uint32][]int),
		descSteps: make(map[uint32][]types.WireStep),
		descIndex: make(map[string]uint32),
		nextDesc:  1,
		diffCache: make(map[uint32][]byte),
		cacheCap:  defaultDiffCache,
	}
	s.head = &listElem{}
	s.tail = &listElem{}
	s.head.next = s.tail
	s.tail.prev = s.head
	return s
}

// TotalUnits returns the number of primitive units in the segment,
// the denominator of diff-based coherence.
func (s *Segment) TotalUnits() int { return s.totalUnits }

// NumBlocks returns the number of live blocks.
func (s *Segment) NumBlocks() int { return s.blocks.Len() }

func (s *Segment) pushBack(e *listElem) {
	e.prev = s.tail.prev
	e.next = s.tail
	s.tail.prev.next = e
	s.tail.prev = e
}

func (s *Segment) unlink(e *listElem) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// registerDesc registers descriptor bytes, deduplicating by content,
// and returns the global serial.
func (s *Segment) registerDesc(b []byte) (uint32, error) {
	if serial, ok := s.descIndex[string(b)]; ok {
		return serial, nil
	}
	t, err := types.Unmarshal(b)
	if err != nil {
		return 0, fmt.Errorf("server: bad descriptor: %w", err)
	}
	walk, err := types.WireWalk(t)
	if err != nil {
		return 0, fmt.Errorf("server: descriptor walk: %w", err)
	}
	kinds := types.UnitKinds(walk)
	caps := make([]int, 0, len(kinds))
	for _, ws := range walk {
		for i := 0; i < ws.Count; i++ {
			caps = append(caps, ws.Cap)
		}
	}
	serial := s.nextDesc
	s.nextDesc++
	cp := make([]byte, len(b))
	copy(cp, b)
	s.descs[serial] = cp
	s.descKinds[serial] = kinds
	s.descCaps[serial] = caps
	s.descSteps[serial] = walk
	s.descIndex[string(cp)] = serial
	return serial, nil
}

// DescBytes returns the canonical bytes of a registered descriptor.
func (s *Segment) DescBytes(serial uint32) ([]byte, bool) {
	b, ok := s.descs[serial]
	return b, ok
}

// ApplyDiff applies a client's diff, producing a new segment version.
// Descriptor serials in the incoming diff are client-local; they are
// remapped to the segment's global serials in place (both in the
// DescDefs and in the NewBlock records). It returns the new version
// and the conservative count of units modified (the paper's single
// counter for diff-based coherence).
func (s *Segment) ApplyDiff(d *wire.SegmentDiff) (uint32, int, error) {
	return s.applyDiffAt(d, s.Version+1)
}

// ApplyReplicatedDiff applies a diff received from a segment's primary
// at exactly the version the primary assigned, so replica and primary
// version numbers stay identical and a promoted replica can keep
// serving the primary's numbering. v must exceed the current version;
// a catch-up diff may skip several versions, which only makes the
// subblock stamps conservative (lagging clients receive supersets).
func (s *Segment) ApplyReplicatedDiff(d *wire.SegmentDiff, v uint32) (int, error) {
	if v <= s.Version {
		return 0, fmt.Errorf("server: replicated version %d not beyond current %d", v, s.Version)
	}
	_, modified, err := s.applyDiffAt(d, v)
	return modified, err
}

// applyDiffAt is ApplyDiff with the produced version as a parameter.
func (s *Segment) applyDiffAt(d *wire.SegmentDiff, v uint32) (uint32, int, error) {
	if d == nil {
		return 0, 0, errors.New("server: nil diff")
	}
	// Remap descriptors.
	descMap := make(map[uint32]uint32, len(d.Descs))
	for i := range d.Descs {
		global, err := s.registerDesc(d.Descs[i].Bytes)
		if err != nil {
			return 0, 0, err
		}
		descMap[d.Descs[i].Serial] = global
		d.Descs[i].Serial = global
		d.Descs[i].Bytes = s.descs[global]
	}

	marker := &listElem{marker: v}

	// Validate everything before mutating list/tree state so a bad
	// diff cannot leave the segment half-updated.
	for i := range d.News {
		nb := &d.News[i]
		if g, ok := descMap[nb.DescSerial]; ok {
			nb.DescSerial = g
		}
		if _, ok := s.descs[nb.DescSerial]; !ok {
			return 0, 0, fmt.Errorf("server: new block %d references unknown descriptor %d", nb.Serial, nb.DescSerial)
		}
		if _, ok := s.blocks.Get(nb.Serial); ok {
			return 0, 0, fmt.Errorf("server: new block %d already exists", nb.Serial)
		}
		if nb.Count == 0 {
			return 0, 0, fmt.Errorf("server: new block %d has zero count", nb.Serial)
		}
		if nb.Name != "" {
			if _, ok := s.byName[nb.Name]; ok {
				return 0, 0, fmt.Errorf("server: duplicate block name %q", nb.Name)
			}
		}
	}

	s.pushBack(marker)
	s.markers.Put(v, marker)

	for i := range d.News {
		nb := &d.News[i]
		kinds := s.descKinds[nb.DescSerial]
		caps := s.descCaps[nb.DescSerial]
		units := len(kinds) * int(nb.Count)
		b := &Blk{
			Serial:     nb.Serial,
			Name:       nb.Name,
			DescSerial: nb.DescSerial,
			Count:      int(nb.Count),
			kinds:      kinds,
			caps:       caps,
			steps:      s.descSteps[nb.DescSerial],
			cells:      make([]uint64, units),
			subVer:     make([]uint32, (units+SubblockUnits-1)/SubblockUnits),
			createdVer: v,
			version:    v,
		}
		for j := range b.subVer {
			b.subVer[j] = v
		}
		b.initWireGeometry()
		b.elem = &listElem{blk: b}
		s.pushBack(b.elem)
		s.blocks.Put(b.Serial, b)
		if b.Name != "" {
			s.byName[b.Name] = b.Serial
		}
		s.totalUnits += units
	}

	for _, serial := range d.Freed {
		b, ok := s.blocks.Get(serial)
		if !ok {
			continue
		}
		s.blocks.Delete(serial)
		if b.Name != "" {
			delete(s.byName, b.Name)
		}
		s.unlink(b.elem)
		s.totalUnits -= b.Units()
		s.freedLog = append(s.freedLog, freedEntry{version: v, serial: serial})
	}

	modified := 0
	var last *Blk
	for i := range d.Blocks {
		bd := &d.Blocks[i]
		b := s.findBlock(bd.Serial, last)
		if b == nil {
			return 0, 0, fmt.Errorf("server: diff for unknown block %d", bd.Serial)
		}
		last = b
		for _, run := range bd.Runs {
			n, err := b.applyRun(run, v)
			if err != nil {
				return 0, 0, fmt.Errorf("server: block %d: %w", bd.Serial, err)
			}
			modified += n
		}
		if b.version != v {
			b.version = v
			s.unlink(b.elem)
			s.pushBack(b.elem)
		}
	}

	s.Version = v
	d.Version = v
	s.cacheDiff(v, d)
	return v, modified, nil
}

// findBlock locates a block by serial, predicting that diffs arrive
// in blk_version_list order (the server-side last-block search of
// Section 3.3).
func (s *Segment) findBlock(serial uint32, last *Blk) *Blk {
	if last != nil && last.elem.next != nil {
		if nb := last.elem.next.blk; nb != nil && nb.Serial == serial {
			return nb
		}
	}
	b, ok := s.blocks.Get(serial)
	if !ok {
		return nil
	}
	return b
}

// forKindRuns yields maximal same-kind unit runs covering [u0, u1),
// walking the block's collapsed wire steps so per-unit kind lookups
// disappear from the translation loops.
func (b *Blk) forKindRuns(u0, u1 int, fn func(k types.Kind, strCap, u, n int) error) error {
	if u0 >= u1 {
		return nil
	}
	if len(b.steps) == 1 {
		st := b.steps[0]
		return fn(st.Kind, st.Cap, u0, u1-u0)
	}
	eu := b.elemUnits()
	p := u0 % eu
	si, off := 0, 0
	for p >= off+b.steps[si].Count {
		off += b.steps[si].Count
		si++
	}
	for u0 < u1 {
		st := b.steps[si]
		n := off + st.Count - p
		if rem := u1 - u0; n > rem {
			n = rem
		}
		if err := fn(st.Kind, st.Cap, u0, n); err != nil {
			return err
		}
		u0 += n
		p += n
		if p >= eu {
			p, si, off = 0, 0, 0
		} else {
			off += st.Count
			si++
		}
	}
	return nil
}

// applyRun decodes one wire run into the block's cells, stamping the
// touched subblocks with version v. It returns the number of units
// modified.
func (b *Blk) applyRun(run wire.Run, v uint32) (int, error) {
	u0 := int(run.Start)
	u1 := u0 + int(run.Count)
	if u1 > b.Units() || u0 < 0 {
		return 0, fmt.Errorf("run [%d,%d) exceeds %d units", u0, u1, b.Units())
	}
	r := wire.NewReader(run.Data)
	err := b.forKindRuns(u0, u1, func(k types.Kind, strCap, u, n int) error {
		switch k {
		case types.KindChar:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U8())
			}
		case types.KindInt16:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U16())
			}
		case types.KindInt32, types.KindFloat32:
			for i := u; i < u+n; i++ {
				b.cells[i] = uint64(r.U32())
			}
		case types.KindInt64, types.KindFloat64:
			for i := u; i < u+n; i++ {
				b.cells[i] = r.U64()
			}
		case types.KindString, types.KindPointer:
			for i := u; i < u+n; i++ {
				data := r.Bytes()
				if r.Err() != nil {
					return r.Err()
				}
				if k == types.KindString && len(data) >= strCap {
					return fmt.Errorf("string of %d bytes overflows capacity %d", len(data), strCap)
				}
				b.setVar(i, data)
			}
		default:
			return fmt.Errorf("unit %d has invalid kind", u)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	if r.Remaining() != 0 {
		return 0, fmt.Errorf("%d trailing bytes in run", r.Remaining())
	}
	for sb := u0 / SubblockUnits; sb <= (u1-1)/SubblockUnits; sb++ {
		b.subVer[sb] = v
	}
	return u1 - u0, nil
}

// setVar stores a variable-length item for unit u.
func (b *Blk) setVar(u int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	if idx := b.cells[u]; idx != 0 {
		b.varBytes += len(cp) - len(b.vars[idx-1])
		b.vars[idx-1] = cp // reuse the slot
		return
	}
	if len(cp) == 0 {
		b.cells[u] = 0
		return
	}
	b.vars = append(b.vars, cp)
	b.varBytes += len(cp)
	b.cells[u] = uint64(len(b.vars))
}

// getVar fetches the variable-length item for unit u.
func (b *Blk) getVar(u int) []byte {
	idx := b.cells[u]
	if idx == 0 {
		return nil
	}
	return b.vars[idx-1]
}

// initWireGeometry precomputes per-element wire-size prefix sums for
// the capacity estimates.
func (b *Blk) initWireGeometry() {
	eu := b.elemUnits()
	b.wirePrefix = make([]int, eu+1)
	for i, k := range b.kinds {
		sz, ok := wire.FixedWireSize(k)
		if !ok {
			b.hasVarlen = true
			sz = 4 // length prefix; contents added in the estimate
		}
		b.wirePrefix[i+1] = b.wirePrefix[i] + sz
	}
}

// wireSizeEstimate returns a capacity estimate for encoding units
// [u0, u1), so collection buffers are allocated once.
func (b *Blk) wireSizeEstimate(u0, u1 int) int {
	if u0 >= u1 {
		return 0
	}
	eu := b.elemUnits()
	elemSize := b.wirePrefix[eu]
	e0, p0 := u0/eu, u0%eu
	e1, p1 := u1/eu, u1%eu
	total := (e1-e0)*elemSize - b.wirePrefix[p0] + b.wirePrefix[p1]
	if b.hasVarlen {
		for i := u0; i < u1; i++ {
			switch b.kinds[i%eu] {
			case types.KindString, types.KindPointer:
				if cell := b.cells[i]; cell != 0 {
					total += len(b.vars[cell-1])
				}
			}
		}
	}
	return total
}

// appendUnits encodes units [u0, u1) in canonical wire form — the
// server-side diff collection, which is cheap because cells already
// hold wire-format values.
func (b *Blk) appendUnits(buf []byte, u0, u1 int) []byte {
	_ = b.forKindRuns(u0, u1, func(k types.Kind, _, u, n int) error {
		switch k {
		case types.KindChar:
			for i := u; i < u+n; i++ {
				buf = wire.AppendU8(buf, byte(b.cells[i]))
			}
		case types.KindInt16:
			for i := u; i < u+n; i++ {
				buf = wire.AppendU16(buf, uint16(b.cells[i]))
			}
		case types.KindInt32, types.KindFloat32:
			for i := u; i < u+n; i++ {
				buf = wire.AppendU32(buf, uint32(b.cells[i]))
			}
		case types.KindInt64, types.KindFloat64:
			for i := u; i < u+n; i++ {
				buf = wire.AppendU64(buf, b.cells[i])
			}
		case types.KindString, types.KindPointer:
			for i := u; i < u+n; i++ {
				buf = wire.AppendBytes(buf, b.getVar(i))
			}
		}
		return nil
	})
	return buf
}

// CollectDiff builds a diff bringing a client at sinceVer up to the
// current version. It walks the marker_version_tree to the first
// marker newer than sinceVer and scans the blk_version_list from
// there: blocks created later travel whole with NewBlock records,
// blocks modified later contribute runs covering exactly the
// subblocks whose version exceeds sinceVer. A nil diff means the
// client is current.
func (s *Segment) CollectDiff(sinceVer uint32) (*wire.SegmentDiff, error) {
	if sinceVer >= s.Version {
		return nil, nil
	}
	// Diff cache: when every version the client is missing is still
	// cached, forward the cached diffs — merged unit-accurately, so
	// the client receives exactly the data changed between its copy
	// and the master copy, with no subblock rounding. This is the
	// paper's diff-caching optimization; the common case is a client
	// exactly one version behind receiving another client's diff
	// verbatim.
	if d, ok := s.mergeCachedDiffs(sinceVer); ok {
		s.cacheHits.Add(1)
		return d, nil
	}
	return s.collectFull(sinceVer)
}

// collectFull builds a diff from the live marker tree and subblock
// versions, never consulting the diff cache. It is the ground truth
// the merged-cached-forward path must be equivalent to; the property
// tests compare the two on random histories.
func (s *Segment) collectFull(sinceVer uint32) (*wire.SegmentDiff, error) {
	if sinceVer >= s.Version {
		return nil, nil
	}
	d := &wire.SegmentDiff{Version: s.Version}
	for _, fe := range s.freedLog {
		if fe.version > sinceVer {
			d.Freed = append(d.Freed, fe.serial)
		}
	}
	descsSent := make(map[uint32]bool)
	// First marker with version > sinceVer.
	_, start, ok := s.markers.Ceiling(sinceVer + 1)
	if !ok {
		// No marker newer than sinceVer, yet versions differ: the
		// markers were trimmed (checkpoint restore); fall back to a
		// full scan from the head.
		start = s.head.next
	}
	for e := start; e != nil && e != s.tail; e = e.next {
		b := e.blk
		if b == nil {
			continue // marker
		}
		if b.createdVer > sinceVer {
			if !descsSent[b.DescSerial] {
				descsSent[b.DescSerial] = true
				d.Descs = append(d.Descs, wire.DescDef{Serial: b.DescSerial, Bytes: s.descs[b.DescSerial]})
			}
			d.News = append(d.News, wire.NewBlock{
				Serial:     b.Serial,
				DescSerial: b.DescSerial,
				Count:      uint32(b.Count),
				Name:       b.Name,
			})
			full := make([]byte, 0, b.wireSizeEstimate(0, b.Units()))
			d.Blocks = append(d.Blocks, wire.BlockDiff{
				Serial: b.Serial,
				Runs:   []wire.Run{{Start: 0, Count: uint32(b.Units()), Data: b.appendUnits(full, 0, b.Units())}},
			})
			continue
		}
		var runs []wire.Run
		units := b.Units()
		sb := 0
		for sb < len(b.subVer) {
			if b.subVer[sb] <= sinceVer {
				sb++
				continue
			}
			sbEnd := sb
			for sbEnd < len(b.subVer) && b.subVer[sbEnd] > sinceVer {
				sbEnd++
			}
			u0 := sb * SubblockUnits
			u1 := sbEnd * SubblockUnits
			if u1 > units {
				u1 = units
			}
			buf := make([]byte, 0, b.wireSizeEstimate(u0, u1))
			runs = append(runs, wire.Run{
				Start: uint32(u0),
				Count: uint32(u1 - u0),
				Data:  b.appendUnits(buf, u0, u1),
			})
			sb = sbEnd
		}
		if len(runs) > 0 {
			d.Blocks = append(d.Blocks, wire.BlockDiff{Serial: b.Serial, Runs: runs})
		}
	}
	return d, nil
}

// Directory returns a metadata-only diff (descriptors and block
// records, no data) used to reserve space for a segment that has not
// yet been locked — the IW_mip_to_ptr bootstrap.
func (s *Segment) Directory() *wire.SegmentDiff {
	d := &wire.SegmentDiff{Version: 0}
	descsSent := make(map[uint32]bool)
	for e := s.head.next; e != s.tail; e = e.next {
		b := e.blk
		if b == nil {
			continue
		}
		if !descsSent[b.DescSerial] {
			descsSent[b.DescSerial] = true
			d.Descs = append(d.Descs, wire.DescDef{Serial: b.DescSerial, Bytes: s.descs[b.DescSerial]})
		}
		d.News = append(d.News, wire.NewBlock{
			Serial:     b.Serial,
			DescSerial: b.DescSerial,
			Count:      uint32(b.Count),
			Name:       b.Name,
		})
	}
	return d
}

// cacheDiff stores the encoded diff that produced version v, evicting
// the oldest entries beyond the cache capacity.
func (s *Segment) cacheDiff(v uint32, d *wire.SegmentDiff) {
	if s.cacheCap <= 0 {
		return
	}
	s.diffCache[v] = d.Marshal(nil)
	s.cacheKeys = append(s.cacheKeys, v)
	for len(s.cacheKeys) > s.cacheCap {
		delete(s.diffCache, s.cacheKeys[0])
		s.cacheKeys = s.cacheKeys[1:]
	}
}

// SetDiffCacheCap adjusts the diff cache capacity (0 disables it, for
// the ablation benchmarks).
func (s *Segment) SetDiffCacheCap(n int) {
	s.cacheCap = n
	for len(s.cacheKeys) > n {
		delete(s.diffCache, s.cacheKeys[0])
		s.cacheKeys = s.cacheKeys[1:]
	}
}

// blkOverheadBytes approximates the fixed per-block footprint beyond
// cells, subblock versions, and variable-length payloads: the Blk
// struct itself, the descriptor-geometry slices, and the version-list
// node. The eviction budget only needs to be proportional, not exact.
const blkOverheadBytes = 256

// MemBytes estimates the segment's resident heap footprint: block
// cells, subblock version arrays, variable-length payloads, cached
// diffs, and descriptors. The cold-segment evictor compares the sum
// across segments against Options.MaxResidentBytes. Callers hold the
// segment's lock.
func (s *Segment) MemBytes() int64 {
	var n int64
	for e := s.head.next; e != s.tail; e = e.next {
		b := e.blk
		if b == nil {
			n += 32 // marker node
			continue
		}
		n += int64(len(b.cells))*8 + int64(len(b.subVer))*4 + int64(b.varBytes) + blkOverheadBytes
	}
	for _, d := range s.diffCache {
		n += int64(len(d))
	}
	for _, d := range s.descs {
		n += int64(len(d))
	}
	n += int64(len(s.freedLog)) * 8
	return n
}

// Blocks returns the segment's blocks in serial order (for tools and
// tests).
func (s *Segment) Blocks() []*Blk {
	out := make([]*Blk, 0, s.blocks.Len())
	s.blocks.Ascend(func(_ uint32, b *Blk) bool {
		out = append(out, b)
		return true
	})
	return out
}

// versionListOrder returns block serials in blk_version_list order
// (for tests).
func (s *Segment) versionListOrder() []uint32 {
	var out []uint32
	for e := s.head.next; e != s.tail; e = e.next {
		if e.blk != nil {
			out = append(out, e.blk.Serial)
		}
	}
	return out
}

// checkListSorted verifies the version-list invariant (for tests):
// block versions are non-decreasing along the list, and every marker
// precedes exactly the blocks with version >= its own.
func (s *Segment) checkListSorted() error {
	prev := uint32(0)
	for e := s.head.next; e != s.tail; e = e.next {
		v := e.marker
		if e.blk != nil {
			v = e.blk.version
		}
		if v < prev {
			return fmt.Errorf("version list out of order: %d after %d", v, prev)
		}
		prev = v
	}
	// markers tree matches list membership.
	var fromTree []uint32
	s.markers.Ascend(func(v uint32, _ *listElem) bool {
		fromTree = append(fromTree, v)
		return true
	})
	if !sort.SliceIsSorted(fromTree, func(i, j int) bool { return fromTree[i] < fromTree[j] }) {
		return errors.New("marker tree out of order")
	}
	return nil
}
