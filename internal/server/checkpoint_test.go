package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/protocol"
)

func TestCheckpointToDirAndRestore(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{CheckpointDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "alpha/one", Create: true})
	rc.call(&protocol.WriteLock{Seg: "alpha/one", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "alpha/one", Diff: intCreateDiff(t, 1, 5, 6, 7)})
	rc.call(&protocol.OpenSegment{Name: "beta/two", Create: true})

	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("checkpoint produced %d files, want 2", files)
	}

	// A fresh server instance restores both segments.
	srv2, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	names := srv2.SegmentNames()
	if len(names) != 2 {
		t.Fatalf("restored %d segments: %v", len(names), names)
	}
	seg := srv2.SegmentSnapshot("alpha/one")
	if seg == nil || seg.Version != 1 || seg.NumBlocks() != 1 {
		t.Fatalf("restored segment = %+v", seg)
	}
	d, err := seg.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 1 || d.Blocks[0].Runs[0].Count != 3 {
		t.Fatalf("restored data = %+v", d.Blocks)
	}
}

func TestRestoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.SegmentNames()) != 0 {
		t.Error("foreign files produced segments")
	}
}

func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+ckptSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{CheckpointDir: dir}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{
		CheckpointDir:   dir,
		CheckpointEvery: 20 * time.Millisecond,
	})
	_ = srv
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "p/seg", Create: true})
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := os.ReadDir(dir)
		if err == nil {
			found := false
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ckptSuffix) {
					found = true
				}
			}
			if found {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseCheckpointsFinalState(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("c/final"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.SegmentNames(); len(got) != 1 || got[0] != "c/final" {
		t.Errorf("after close, restored = %v", got)
	}
	// Double close is a no-op.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateSegmentDuplicates(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("x/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("x/y"); err == nil {
		t.Error("duplicate CreateSegment succeeded")
	}
	if srv.SegmentSnapshot("nope") != nil {
		t.Error("SegmentSnapshot of missing segment non-nil")
	}
	if srv.Addr() != nil {
		t.Error("Addr non-nil before Serve")
	}
}

// makeCheckpointFile produces one sealed checkpoint file with real
// content (descriptors, a block, an applied-writer entry) and returns
// its name and bytes.
func makeCheckpointFile(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{CheckpointDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "c/seg", Create: true})
	rc.call(&protocol.WriteLock{Seg: "c/seg", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "c/seg", Diff: intCreateDiff(t, 1, 5, 6, 7), WriterID: "w-ckpt", Seq: 3})
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			return e.Name(), b
		}
	}
	t.Fatal("no checkpoint file written")
	return "", nil
}

// restoreFrom attempts a restore with the given file contents in an
// otherwise empty checkpoint directory.
func restoreFrom(t *testing.T, name string, data []byte) error {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Options{CheckpointDir: dir})
	return err
}

// TestRestoreRejectsTruncation restores every prefix of a valid
// checkpoint file: each must fail with an error, never panic, never
// succeed with partial state.
func TestRestoreRejectsTruncation(t *testing.T) {
	name, data := makeCheckpointFile(t)
	for cut := 0; cut < len(data); cut++ {
		if err := restoreFrom(t, name, data[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes restored successfully", cut, len(data))
		}
	}
}

// TestRestoreRejectsBitFlips flips one bit at every byte position:
// the CRC-32 trailer guarantees each is detected.
func TestRestoreRejectsBitFlips(t *testing.T) {
	name, data := makeCheckpointFile(t)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := restoreFrom(t, name, bad); err == nil {
			t.Fatalf("bit flip at byte %d restored successfully", i)
		}
	}
}

// TestRestoreRejectsWrongMagic re-seals a payload with a bogus magic
// so the CRC passes and the failure comes from the decoder, with a
// descriptive message.
func TestRestoreRejectsWrongMagic(t *testing.T) {
	name, data := makeCheckpointFile(t)
	payload := append([]byte(nil), data[:len(data)-4]...)
	copy(payload, []byte("NOPE"))
	err := restoreFrom(t, name, sealCheckpoint(payload))
	if err == nil {
		t.Fatal("wrong-magic checkpoint restored successfully")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("error does not mention the magic: %v", err)
	}
}

// TestRestorePersistsAppliedTable proves release dedup survives a
// server restart: a retried WriteUnlock whose original was applied
// (and checkpointed) before the crash is answered from the restored
// record instead of applied twice.
func TestRestorePersistsAppliedTable(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{CheckpointDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "c/dedup", Create: true})
	rc.call(&protocol.WriteLock{Seg: "c/dedup", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "c/dedup", Diff: intCreateDiff(t, 1, 5), WriterID: "w-a", Seq: 7})
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, addr2 := startTestServer(t, Options{CheckpointDir: dir})
	rc2 := dialRaw(t, addr2)
	reply, _ := rc2.call(&protocol.Resume{Seg: "c/dedup", WriterID: "w-a", Seq: 7})
	rr, ok := reply.(*protocol.ResumeReply)
	if !ok || !rr.Applied || rr.AppliedVersion != 1 {
		t.Fatalf("Resume after restart = %+v", reply)
	}
	reply, _ = rc2.call(&protocol.WriteUnlock{Seg: "c/dedup", Diff: intCreateDiff(t, 1, 5), WriterID: "w-a", Seq: 7})
	vr, ok := reply.(*protocol.VersionReply)
	if !ok || vr.Version != 1 {
		t.Fatalf("retried release after restart = %+v", reply)
	}
	if seg := srv2.SegmentSnapshot("c/dedup"); seg == nil || seg.Version != 1 {
		t.Errorf("duplicate release advanced the segment: %+v", seg)
	}
}
