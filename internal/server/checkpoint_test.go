package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/protocol"
)

func TestCheckpointToDirAndRestore(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{CheckpointDir: dir})
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "alpha/one", Create: true})
	rc.call(&protocol.WriteLock{Seg: "alpha/one", Policy: coherence.Full()})
	rc.call(&protocol.WriteUnlock{Seg: "alpha/one", Diff: intCreateDiff(t, 1, 5, 6, 7)})
	rc.call(&protocol.OpenSegment{Name: "beta/two", Create: true})

	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("checkpoint produced %d files, want 2", files)
	}

	// A fresh server instance restores both segments.
	srv2, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	names := srv2.SegmentNames()
	if len(names) != 2 {
		t.Fatalf("restored %d segments: %v", len(names), names)
	}
	seg := srv2.SegmentSnapshot("alpha/one")
	if seg == nil || seg.Version != 1 || seg.NumBlocks() != 1 {
		t.Fatalf("restored segment = %+v", seg)
	}
	d, err := seg.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 1 || d.Blocks[0].Runs[0].Count != 3 {
		t.Fatalf("restored data = %+v", d.Blocks)
	}
}

func TestRestoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.SegmentNames()) != 0 {
		t.Error("foreign files produced segments")
	}
}

func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+ckptSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{CheckpointDir: dir}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startTestServer(t, Options{
		CheckpointDir:   dir,
		CheckpointEvery: 20 * time.Millisecond,
	})
	_ = srv
	rc := dialRaw(t, addr)
	rc.call(&protocol.OpenSegment{Name: "p/seg", Create: true})
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := os.ReadDir(dir)
		if err == nil {
			found := false
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ckptSuffix) {
					found = true
				}
			}
			if found {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseCheckpointsFinalState(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("c/final"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.SegmentNames(); len(got) != 1 || got[0] != "c/final" {
		t.Errorf("after close, restored = %v", got)
	}
	// Double close is a no-op.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateSegmentDuplicates(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("x/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSegment("x/y"); err == nil {
		t.Error("duplicate CreateSegment succeeded")
	}
	if srv.SegmentSnapshot("nope") != nil {
		t.Error("SegmentSnapshot of missing segment non-nil")
	}
	if srv.Addr() != nil {
		t.Error("Addr non-nil before Serve")
	}
}
