// Package obs is InterWeave's dependency-free observability layer:
// atomic counters, gauges, and fixed-bucket histograms collected into
// a Registry that renders the Prometheus text exposition format, plus
// a structured trace hook for tests that need to assert *behaviour*
// (retries, degraded reads, release recovery) rather than numbers.
//
// The package exists because the paper's entire evaluation (Section
// 4) is about measuring the system — translation cost, diff
// collection/application time, bandwidth saved by diffing — and a
// deployed server needs those same numbers live. Every metric the
// client and server register maps to a paper figure or DESIGN.md
// section; OBSERVABILITY.md is the complete catalogue.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Instrumented code holds a nil *Registry
//     (or nil instrument struct) and skips everything behind one nil
//     check; no time.Now calls, no allocation.
//   - Cheap when enabled. Updates are single atomic adds; histograms
//     use a short fixed bucket ladder scanned linearly. Instrument
//     handles are created once at client/server construction, never
//     looked up on hot paths.
//   - Mergeable. Snapshots of every metric type support Merge, so
//     per-client or per-run snapshots can be aggregated by tests and
//     by multi-process harnesses.
//   - Stdlib only, like the rest of the repo.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations.
// Bucket bounds are inclusive upper bounds, Prometheus-style; an
// implicit +Inf bucket catches everything above the last bound. All
// updates are atomic; Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// newHistogram builds a histogram with the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// latency instrumentation sites.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Snapshot returns a consistent-enough copy for reporting: buckets
// are read individually, so a concurrent Observe may be visible in
// the count but not yet the sum. Merging and monotonicity are
// unaffected.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Bounds []float64 // inclusive upper bounds, ascending; +Inf implied
	Counts []uint64  // per-bucket (non-cumulative) counts, len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Merge adds other into s. The bucket layouts must match (all
// histograms in this repo use the shared ladders below).
func (s *HistSnapshot) Merge(other HistSnapshot) error {
	if len(s.Counts) != len(other.Counts) {
		return fmt.Errorf("obs: merging histograms with %d and %d buckets", len(s.Counts), len(other.Counts))
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// DurationBuckets is the shared latency ladder: powers of four from
// 1µs to ~4s (in seconds). Thirteen buckets cover everything from a
// cached lock grant to a WAN retry storm without per-metric tuning.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
	1, 4,
}

// SizeBuckets is the shared byte-size ladder: powers of four from
// 64 B to 64 MiB.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536,
	262144, 1048576, 4194304, 16777216, 67108864,
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric instance (family name + one label
// set).
type entry struct {
	family string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key renders the instance identity used for get-or-create and for
// Snapshot map keys: name{k="v",...} with labels in registration
// order.
func instanceKey(family string, labels []Label) string {
	if len(labels) == 0 {
		return family
	}
	k := family + "{"
	for i, l := range labels {
		if i > 0 {
			k += ","
		}
		k += l.Key + `="` + l.Value + `"`
	}
	return k + "}"
}

// GaugeEmit receives one gauge sample from a CollectFunc.
type GaugeEmit func(name, help string, v float64, labels ...Label)

// CollectFunc is called at render time to contribute gauges computed
// on demand — per-segment state the server would otherwise have to
// keep continuously up to date.
type CollectFunc func(emit GaugeEmit)

// Registry holds named metrics and renders them. The zero value is
// not usable; call NewRegistry. A nil *Registry is the disabled
// state: instrumented packages must skip their obs calls when their
// registry is nil.
type Registry struct {
	mu         sync.Mutex
	entries    []*entry
	byKey      map[string]*entry
	collectors []CollectFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// Counter returns the counter registered under name+labels, creating
// it on first use. Help is recorded on creation and ignored after.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.getOrCreate(name, help, kindCounter, labels)
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.getOrCreate(name, help, kindGauge, labels)
	return e.gauge
}

// Histogram returns the histogram registered under name+labels,
// creating it with the given bucket bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := instanceKey(name, labels)
	if e, ok := r.byKey[key]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("obs: %s re-registered as a different kind", key))
		}
		return e.hist
	}
	e := &entry{family: name, help: help, kind: kindHistogram, labels: labels, hist: newHistogram(bounds)}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e.hist
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := instanceKey(name, labels)
	if e, ok := r.byKey[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as a different kind", key))
		}
		return e
	}
	e := &entry{family: name, help: help, kind: kind, labels: labels}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// RegisterCollector adds a render-time gauge source.
func (r *Registry) RegisterCollector(fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot is a point-in-time copy of every metric in a registry,
// keyed by name{label="v",...}. Collector-produced gauges are
// included under Gauges.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	collectors := make([]CollectFunc, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, e := range entries {
		key := instanceKey(e.family, e.labels)
		switch e.kind {
		case kindCounter:
			s.Counters[key] = e.counter.Value()
		case kindGauge:
			s.Gauges[key] = float64(e.gauge.Value())
		case kindHistogram:
			s.Histograms[key] = e.hist.Snapshot()
		}
	}
	for _, fn := range collectors {
		fn(func(name, help string, v float64, labels ...Label) {
			s.Gauges[instanceKey(name, labels)] = v
		})
	}
	return s
}

// Merge adds other's counters, histograms, and gauges into s (gauges
// are summed, which is the useful aggregation for the per-segment and
// session gauges this repo exports).
func (s *Snapshot) Merge(other Snapshot) error {
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, h := range other.Histograms {
		if have, ok := s.Histograms[k]; ok {
			if err := have.Merge(h); err != nil {
				return fmt.Errorf("%s: %w", k, err)
			}
			s.Histograms[k] = have
		} else {
			cp := HistSnapshot{Bounds: h.Bounds, Counts: append([]uint64(nil), h.Counts...), Sum: h.Sum, Count: h.Count}
			s.Histograms[k] = cp
		}
	}
	return nil
}

// Event is one structured trace record. Fields besides Name are
// optional and event-specific; Err carries the error text (errors are
// stringified so trace consumers never retain live error chains).
type Event struct {
	// Name identifies the event, e.g. "rpc.retry", "read.degraded",
	// "wunlock.recover". OBSERVABILITY.md lists every name the client
	// emits.
	Name string
	// Seg is the segment URL the event concerns, when any.
	Seg string
	// RPC is the protocol message type short name, when the event
	// concerns an RPC (e.g. "WriteUnlock").
	RPC string
	// Attempt is the zero-based retry attempt, for retry events.
	Attempt int
	// Err is the triggering error's text, when any.
	Err string
	// N is an event-specific count (e.g. releases coalesced by a
	// group-commit flush, subscribers invalidated by a demotion),
	// zero when the event carries none.
	N int64
	// At is when the event occurred, captured with time.Now on the
	// emitting goroutine. The reading carries Go's monotonic clock, so
	// events can be ordered and merged with span timelines without
	// wall-clock guessing. Emitters stamp it just before delivery; a
	// zero At means the emitting site predates stamping.
	At time.Time
	// Dur is the duration of the operation the event describes, when
	// the event marks a completion rather than an instant.
	Dur time.Duration
}

// TraceFunc receives trace events synchronously on the emitting
// goroutine; implementations must be fast and must not call back into
// the client. Chaos tests use it to assert retry and degraded-read
// behaviour without poking unexported state.
type TraceFunc func(Event)
