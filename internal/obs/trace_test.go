package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// spanByName finds one span in a trace by name; fails the test when
// it is absent or ambiguous.
func spanByName(t *testing.T, td TraceData, name string) SpanData {
	t.Helper()
	var found []SpanData
	for _, sd := range td.Spans {
		if sd.Name == name {
			found = append(found, sd)
		}
	}
	if len(found) != 1 {
		t.Fatalf("trace has %d spans named %q, want 1 (spans: %v)", len(found), name, spanNames(td))
	}
	return found[0]
}

func spanNames(td TraceData) []string {
	names := make([]string, len(td.Spans))
	for i, sd := range td.Spans {
		names[i] = sd.Name
	}
	return names
}

func TestSpanLifecycleAndLinkage(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 1})
	root := tr.Start("client.WriteUnlock")
	root.Attr("seg", "host/acc")
	child := root.Child("rpc.WriteUnlock")
	child.AttrInt("attempt", 0)
	if !child.Context().Valid() {
		t.Fatal("child context invalid while open")
	}
	if child.Context().TraceID != root.Context().TraceID {
		t.Error("child span is in a different trace than its parent")
	}
	child.End()
	child.End() // double End must be a no-op
	root.End()

	st := tr.Stats()
	if st.Active != 0 || st.Kept != 1 {
		t.Fatalf("stats = %+v, want 0 active / 1 kept", st)
	}
	sums := tr.Traces()
	if len(sums) != 1 || sums[0].Root != "client.WriteUnlock" || sums[0].Spans != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	td, ok := tr.Trace(sums[0].TraceID)
	if !ok {
		t.Fatal("Trace() did not find the kept trace")
	}
	rd := spanByName(t, td, "client.WriteUnlock")
	cd := spanByName(t, td, "rpc.WriteUnlock")
	if rd.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", rd.ParentID)
	}
	if cd.ParentID != rd.SpanID {
		t.Errorf("child parent = %d, want root span %d", cd.ParentID, rd.SpanID)
	}
	if len(rd.Attrs) != 1 || rd.Attrs[0] != (Attr{Key: "seg", Value: "host/acc"}) {
		t.Errorf("root attrs = %+v", rd.Attrs)
	}
	if len(cd.Attrs) != 1 || cd.Attrs[0] != (Attr{Key: "attempt", Value: "0"}) {
		t.Errorf("child attrs = %+v", cd.Attrs)
	}
}

// TestJoinRemoteParent is the server side of wire propagation: a span
// joined with a remote context lands in the remote trace with the
// remote span as parent; an invalid context falls back to a fresh
// locally-rooted trace.
func TestJoinRemoteParent(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 2})
	remote := SpanContext{TraceID: 0x42, SpanID: 0x99}
	sp := tr.Join(remote, "server.WriteUnlock")
	if got := sp.Context().TraceID; got != 0x42 {
		t.Errorf("joined trace ID = %#x, want %#x", got, remote.TraceID)
	}
	sp.End()
	td, ok := tr.Trace("0000000000000042")
	if !ok {
		t.Fatal("joined trace not kept under the remote trace ID")
	}
	sd := spanByName(t, td, "server.WriteUnlock")
	if sd.ParentID != 0x99 {
		t.Errorf("joined span parent = %#x, want %#x", sd.ParentID, remote.SpanID)
	}

	orphan := tr.Join(SpanContext{}, "server.ReadLock")
	if orphan == nil {
		t.Fatal("Join with invalid context returned nil on a live tracer")
	}
	if orphan.Context().TraceID == 0 {
		t.Error("orphan join did not mint a fresh trace")
	}
	orphan.End()
}

// TestTailSampling covers the three retention classes: errored traces
// are always kept, the slowest-N are always kept (displacing demotes,
// not discards), and unremarkable traces follow SampleRate — here 0
// (negative), so they are discarded.
func TestTailSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 3, SlowestN: 1, SampleRate: -1})

	fast := tr.Start("op.fast")
	fast.End() // claims the single slowest slot
	fastID := tr.Traces()[0].TraceID

	slow := tr.Start("op.slow")
	time.Sleep(5 * time.Millisecond)
	slow.End() // displaces op.fast, which is demoted to "sampled"

	discarded := tr.Start("op.discarded")
	discarded.End() // not slowest, rate 0 -> dropped

	errored := tr.Start("op.errored")
	errored.Error(errors.New("boom"))
	errored.End() // errors bypass sampling entirely

	st := tr.Stats()
	if st.Kept != 3 || st.SampledOut != 1 {
		t.Fatalf("stats = %+v, want 3 kept / 1 sampled out", st)
	}
	classes := map[string]string{}
	for _, s := range tr.Traces() {
		classes[s.Root] = s.Kept
	}
	if classes["op.slow"] != "slow" {
		t.Errorf("op.slow kept as %q, want slow", classes["op.slow"])
	}
	if classes["op.fast"] != "sampled" {
		t.Errorf("displaced op.fast kept as %q, want demotion to sampled", classes["op.fast"])
	}
	if classes["op.errored"] != "error" {
		t.Errorf("op.errored kept as %q, want error", classes["op.errored"])
	}
	if _, ok := classes["op.discarded"]; ok {
		t.Error("op.discarded survived a zero sample rate")
	}
	if td, ok := tr.Trace(fastID); !ok || td.Kept != "sampled" {
		t.Errorf("demoted trace detail kept=%q ok=%v, want sampled/true", td.Kept, ok)
	}
}

// TestCapacityEviction: over capacity, sampled traces are evicted
// before errored ones, and errored before slow ones.
func TestCapacityEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 4, Capacity: 2, SlowestN: 1, SampleRate: 1})

	s1 := tr.Start("op.slow")
	time.Sleep(2 * time.Millisecond)
	s1.End() // slow slot

	s2 := tr.Start("op.sampled")
	s2.End() // sampled

	s3 := tr.Start("op.errored")
	s3.Error(errors.New("boom"))
	s3.End() // error; store now over capacity -> evict oldest sampled

	st := tr.Stats()
	if st.Kept != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 kept / 1 evicted", st)
	}
	roots := map[string]bool{}
	for _, s := range tr.Traces() {
		roots[s.Root] = true
	}
	if roots["op.sampled"] {
		t.Error("sampled trace survived eviction ahead of slow/errored ones")
	}
	if !roots["op.slow"] || !roots["op.errored"] {
		t.Errorf("kept roots = %v, want op.slow and op.errored", roots)
	}
}

// TestNilTracerZeroAlloc is the disabled-path guard from the issue: a
// nil tracer's whole span API must cost zero allocations (and, by
// construction, no clock reads — Start returns before touching the
// clock).
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("client.WriteUnlock")
		sp.Attr("seg", "host/acc")
		sp.AttrInt("attempt", 0)
		sp.Error(nil)
		child := sp.Child("rpc.WriteUnlock")
		child.End()
		_ = sp.Context()
		sp.End()
		jsp := tr.Join(SpanContext{TraceID: 1, SpanID: 2}, "server.WriteUnlock")
		jsp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span API allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkNilTracerSpan is the benchmark form of the zero-alloc
// guard: the whole per-RPC span sequence against a nil tracer. Any
// allocation or clock read regression shows up in allocs/op and
// ns/op here.
func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("client.WriteUnlock")
		sp.Attr("seg", "host/acc")
		child := sp.Child("rpc.WriteUnlock")
		child.AttrInt("attempt", 0)
		child.End()
		sp.End()
	}
}

// BenchmarkTracerSpan is the enabled-path cost for comparison: a
// root+child trace recorded and tail-discarded each iteration.
func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(TracerOptions{Seed: 1, SlowestN: 1, SampleRate: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("client.WriteUnlock")
		sp.Attr("seg", "host/acc")
		child := sp.Child("rpc.WriteUnlock")
		child.AttrInt("attempt", 0)
		child.End()
		sp.End()
	}
}

// TestChromeExport validates the Perfetto-loadable trace_event
// document: one process_name metadata event per trace, one "X"
// complete event per span, span/parent IDs and attributes in args.
func TestChromeExport(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 5})
	root := tr.Start("client.ReadLock")
	child := root.Child("rpc.ReadLock")
	child.Attr("attempt", "0")
	child.Error(errors.New("connection reset"))
	child.End()
	root.End()

	export := ChromeTrace(tr, "")
	buf, err := json.Marshal(export)
	if err != nil {
		t.Fatal(err)
	}
	var back ChromeExport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("export does not round-trip as Chrome trace_event JSON: %v", err)
	}
	var meta, slices int
	var sawError bool
	for _, ev := range back.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" || ev.Args["name"] == "" {
				t.Errorf("metadata event = %+v", ev)
			}
		case "X":
			slices++
			if ev.Pid == 0 || ev.Tid != 1 {
				t.Errorf("slice pid/tid = %d/%d", ev.Pid, ev.Tid)
			}
			if ev.Args["span_id"] == "" || ev.Args["parent_id"] == "" {
				t.Errorf("slice args missing span identity: %+v", ev.Args)
			}
			if ev.Args["error"] != "" {
				sawError = true
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 || slices != 2 {
		t.Errorf("export has %d metadata / %d slice events, want 1/2", meta, slices)
	}
	if !sawError {
		t.Error("errored span's error text missing from args")
	}
	if export.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", export.DisplayTimeUnit)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 6})
	sp := tr.Start("client.Open")
	sp.End()
	id := tr.Traces()[0].TraceID
	h := TraceHandler(tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var sums []TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sums); err != nil {
		t.Fatalf("list response: %v", err)
	}
	if len(sums) != 1 || sums[0].TraceID != id {
		t.Fatalf("list = %+v", sums)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+id, nil))
	var td TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatalf("detail response: %v", err)
	}
	if td.TraceID != id || len(td.Spans) != 1 {
		t.Fatalf("detail = %+v", td)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id -> %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	var export ChromeExport
	if err := json.Unmarshal(rec.Body.Bytes(), &export); err != nil {
		t.Fatalf("chrome response: %v", err)
	}
	if len(export.TraceEvents) == 0 {
		t.Error("chrome export is empty")
	}
	if got := rec.Header().Get("Content-Disposition"); got == "" {
		t.Error("chrome export lacks a download disposition")
	}
}

func TestRuntimeHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	RuntimeHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var rd RuntimeDebug
	if err := json.Unmarshal(rec.Body.Bytes(), &rd); err != nil {
		t.Fatalf("response: %v", err)
	}
	if rd.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", rd.Goroutines)
	}
	if rd.HeapAllocBytes == 0 {
		t.Error("heap_alloc_bytes = 0")
	}
	if len(rd.RuntimeMetrics) == 0 {
		t.Error("runtime_metrics empty; curated names all missing?")
	}
}

// TestMaxActiveDrops: spans for new traces beyond MaxActive are
// dropped (nil) and counted, and existing traces keep working.
func TestMaxActiveDrops(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: 7, MaxActive: 1})
	first := tr.Start("op.first")
	if first == nil {
		t.Fatal("first trace dropped below MaxActive")
	}
	second := tr.Start("op.second")
	if second != nil {
		t.Fatal("second trace admitted past MaxActive")
	}
	second.End() // nil-safe
	child := first.Child("op.child")
	if child == nil {
		t.Fatal("child of an admitted trace dropped")
	}
	child.End()
	first.End()
	st := tr.Stats()
	if st.DroppedActive != 1 || st.Kept != 1 {
		t.Errorf("stats = %+v, want 1 dropped / 1 kept", st)
	}
}
