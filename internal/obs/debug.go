// Debug HTTP surface for the tracing store and the Go runtime:
// TraceHandler serves /debug/traces (JSON list, single-trace detail,
// and a Chrome trace_event export loadable in Perfetto), and
// RuntimeHandler serves /debug/runtime (goroutines, heap, GC, and a
// curated runtime/metrics selection). cmd/iwserver mounts both next
// to /metrics; OBSERVABILITY.md documents the endpoints.

package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/metrics"
	"time"
)

// TraceHandler serves the tracer's kept traces:
//
//	GET /debug/traces                   JSON list of trace summaries
//	GET /debug/traces?id=<hex>          one trace in full (all spans)
//	GET /debug/traces?format=chrome     Chrome trace_event export of
//	                                    every kept trace (add &id= for
//	                                    one), loadable in Perfetto
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="iw-trace.json"`)
			_ = json.NewEncoder(w).Encode(ChromeTrace(t, id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id != "" {
			td, ok := t.Trace(id)
			if !ok {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			_ = enc.Encode(td)
			return
		}
		_ = enc.Encode(t.Traces())
	})
}

// ChromeEvent is one event of the Chrome trace_event format (the
// "JSON Array Format" variant wrapped in an object), as consumed by
// Perfetto and chrome://tracing.
type ChromeEvent struct {
	// Name labels the slice.
	Name string `json:"name"`
	// Cat is the event category.
	Cat string `json:"cat,omitempty"`
	// Ph is the phase: "X" for complete slices, "M" for metadata.
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds.
	Ts float64 `json:"ts"`
	// Dur is the slice duration in microseconds ("X" events).
	Dur float64 `json:"dur,omitempty"`
	// Pid groups events into a process track; one per trace.
	Pid uint64 `json:"pid"`
	// Tid is the thread track within the process.
	Tid uint64 `json:"tid"`
	// Args carries span IDs, attributes, and errors.
	Args map[string]string `json:"args,omitempty"`
}

// ChromeExport is the top-level Chrome trace_event JSON document.
type ChromeExport struct {
	// TraceEvents holds every event.
	TraceEvents []ChromeEvent `json:"traceEvents"`
	// DisplayTimeUnit hints the UI's time unit.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// ChromeTrace renders kept traces (all, or the one named by idHex) in
// Chrome trace_event form. Each trace becomes one process track whose
// name is "<id> <root>"; spans are "X" complete events with span and
// parent IDs, attributes, and errors in args. Timestamps are relative
// to the earliest kept span so Perfetto shows a compact timeline.
func ChromeTrace(t *Tracer, idHex string) ChromeExport {
	out := ChromeExport{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return out
	}
	var traces []*TraceData
	if idHex != "" {
		if td, ok := t.Trace(idHex); ok {
			traces = []*TraceData{&td}
		}
	} else {
		traces = t.keptData()
	}
	if len(traces) == 0 {
		return out
	}
	epoch := traces[0].Start
	for _, td := range traces {
		if td.Start.Before(epoch) {
			epoch = td.Start
		}
	}
	for pid, td := range traces {
		p := uint64(pid + 1)
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: p, Tid: 0,
			Args: map[string]string{"name": td.TraceID[:8] + " " + td.Root},
		})
		for _, sd := range td.Spans {
			args := map[string]string{
				"span_id":   formatID(sd.SpanID),
				"parent_id": formatID(sd.ParentID),
			}
			for _, a := range sd.Attrs {
				args[a.Key] = a.Value
			}
			if sd.Err != "" {
				args["error"] = sd.Err
			}
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: sd.Name,
				Cat:  "interweave",
				Ph:   "X",
				Ts:   float64(sd.Start.Sub(epoch).Nanoseconds()) / 1e3,
				Dur:  float64(sd.Duration.Nanoseconds()) / 1e3,
				Pid:  p,
				Tid:  1,
				Args: args,
			})
		}
	}
	return out
}

// runtimeMetricNames is the curated runtime/metrics selection
// /debug/runtime reports (scalar kinds only; missing names are
// skipped, keeping the endpoint stable across Go releases).
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/heap/frees:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sync/mutex/wait/total:seconds",
}

// RuntimeDebug is the /debug/runtime JSON document.
type RuntimeDebug struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapAllocBytes is currently allocated heap memory.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapSysBytes is heap memory obtained from the OS.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	// HeapObjects is the live object count.
	HeapObjects uint64 `json:"heap_objects"`
	// NumGC is the completed GC cycle count.
	NumGC uint32 `json:"num_gc"`
	// GCPauseTotalNs is the cumulative stop-the-world pause time.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// GCPauseLastNs is the most recent stop-the-world pause.
	GCPauseLastNs uint64 `json:"gc_pause_last_ns"`
	// LastGC is when the last GC cycle finished.
	LastGC time.Time `json:"last_gc,omitempty"`
	// RuntimeMetrics holds the curated runtime/metrics samples that
	// exist in this Go version, keyed by metric name.
	RuntimeMetrics map[string]float64 `json:"runtime_metrics"`
}

// RuntimeHandler serves a JSON snapshot of runtime health —
// goroutines, heap, GC pauses, and a curated runtime/metrics
// selection — cheap enough to poll.
func RuntimeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rd := RuntimeDebug{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			HeapObjects:    ms.HeapObjects,
			NumGC:          ms.NumGC,
			GCPauseTotalNs: ms.PauseTotalNs,
			RuntimeMetrics: make(map[string]float64),
		}
		if ms.NumGC > 0 {
			rd.GCPauseLastNs = ms.PauseNs[(ms.NumGC+255)%256]
			rd.LastGC = time.Unix(0, int64(ms.LastGC))
		}
		samples := make([]metrics.Sample, len(runtimeMetricNames))
		for i, n := range runtimeMetricNames {
			samples[i].Name = n
		}
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Value.Kind() {
			case metrics.KindUint64:
				rd.RuntimeMetrics[s.Name] = float64(s.Value.Uint64())
			case metrics.KindFloat64:
				rd.RuntimeMetrics[s.Name] = s.Value.Float64()
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rd)
	})
}
