package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// FlightRecorder is a bounded lock-free ring of recent structured
// Events — the always-on "black box" of the cluster observability
// plane. Where the Tracer records whole operations with sampling, the
// flight recorder keeps the last N structural incidents (lock
// transitions, failovers, demotions, fencing, evictions, group-commit
// flushes) unconditionally, so a crash or a once-in-a-thousand chaos
// failure leaves a post-mortem artifact instead of a shrug.
//
// Cost model: one atomic index increment plus one atomic pointer
// store per event, no locks on the record path. A nil *FlightRecorder
// is the disabled state: Record on a nil receiver returns before
// reading the clock, matching the repo-wide nil-gating convention.
type FlightRecorder struct {
	slots []atomic.Pointer[Event]
	idx   atomic.Uint64
}

// DefaultFlightCapacity is the event-ring size used when a
// non-positive capacity is requested.
const DefaultFlightCapacity = 1024

// NewFlightRecorder returns a recorder holding the most recent
// capacity events (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Event], capacity)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Safe for any number of concurrent recorders. A zero ev.At is
// stamped with time.Now — after the nil check, so the disabled path
// never reads the clock.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	i := f.idx.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(&ev)
}

// Recorded returns the total number of events recorded since
// creation, including those the ring has since overwritten.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.idx.Load()
}

// Capacity returns the ring size.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Events snapshots the ring's current contents, oldest first. Under
// concurrent recording the snapshot is each slot's latest committed
// event; ordering is by the events' At stamps (slot order is not
// reliable while writers race the reader), with ties kept in slot
// order so the result is stable.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Since returns the snapshot filtered to events at or after t,
// oldest first.
func (f *FlightRecorder) Since(t time.Time) []Event {
	evs := f.Events()
	i := sort.Search(len(evs), func(i int) bool { return !evs[i].At.Before(t) })
	return evs[i:]
}

// DumpTo writes the ring as one human-readable line per event,
// oldest first — the panic-dump and debugging format.
func (f *FlightRecorder) DumpTo(w io.Writer) {
	if f == nil {
		return
	}
	evs := f.Events()
	io.WriteString(w, "flight recorder: "+formatUint(uint64(len(evs)))+" of "+formatUint(f.Recorded())+" events\n")
	for _, ev := range evs {
		line := ev.At.Format("15:04:05.000000") + " " + ev.Name
		if ev.Seg != "" {
			line += " seg=" + ev.Seg
		}
		if ev.RPC != "" {
			line += " rpc=" + ev.RPC
		}
		if ev.N != 0 {
			line += " n=" + strconv.FormatInt(ev.N, 10)
		}
		if ev.Dur != 0 {
			line += " dur=" + ev.Dur.String()
		}
		if ev.Err != "" {
			line += " err=" + ev.Err
		}
		io.WriteString(w, line+"\n")
	}
}

// DumpOnPanic is the recover hook servers defer around goroutines
// whose panic should leave a post-mortem: if the goroutine is
// panicking it writes the panic value, the flight-recorder contents,
// and the stack to w, then re-panics with the original value so the
// process still dies loudly. A nil recorder or writer dumps nothing
// but still re-panics. Deferred directly:
//
//	defer flight.DumpOnPanic(os.Stderr, "session 7")
func (f *FlightRecorder) DumpOnPanic(w io.Writer, label string) {
	r := recover()
	if r == nil {
		return
	}
	if f != nil && w != nil {
		io.WriteString(w, "panic in "+label+": ")
		switch v := r.(type) {
		case error:
			io.WriteString(w, v.Error())
		case string:
			io.WriteString(w, v)
		default:
			b, _ := json.Marshal(v)
			w.Write(b)
		}
		io.WriteString(w, "\n")
		f.DumpTo(w)
		w.Write(debug.Stack())
	}
	panic(r)
}

// flightEvent is the stable JSON shape /debug/flight serves.
type flightEvent struct {
	Name    string `json:"name"`
	Seg     string `json:"seg,omitempty"`
	RPC     string `json:"rpc,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Err     string `json:"err,omitempty"`
	N       int64  `json:"n,omitempty"`
	At      string `json:"at"`
	DurNS   int64  `json:"dur_ns,omitempty"`
}

// FlightHandler serves the recorder at /debug/flight: a JSON array of
// recent events, oldest first. ?since= filters to events after an
// RFC 3339 timestamp or within a Go duration of now (e.g.
// ?since=30s).
func FlightHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var evs []Event
		if since := r.URL.Query().Get("since"); since != "" {
			var t time.Time
			if d, err := time.ParseDuration(since); err == nil {
				t = time.Now().Add(-d)
			} else if ts, err := time.Parse(time.RFC3339Nano, since); err == nil {
				t = ts
			} else {
				http.Error(w, "since must be a duration (30s) or RFC 3339 timestamp", http.StatusBadRequest)
				return
			}
			evs = f.Since(t)
		} else {
			evs = f.Events()
		}
		out := make([]flightEvent, len(evs))
		for i, ev := range evs {
			out[i] = flightEvent{
				Name:    ev.Name,
				Seg:     ev.Seg,
				RPC:     ev.RPC,
				Attempt: ev.Attempt,
				Err:     ev.Err,
				N:       ev.N,
				At:      ev.At.Format(time.RFC3339Nano),
				DurNS:   int64(ev.Dur),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
