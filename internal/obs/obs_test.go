package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iw_test_total", "help", L("k", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same instance for the same key, a
	// distinct one for a different label value.
	if r.Counter("iw_test_total", "", L("k", "a")) != c {
		t.Error("same name+labels returned a different counter")
	}
	if r.Counter("iw_test_total", "", L("k", "b")) == c {
		t.Error("different label value returned the same counter")
	}
	g := r.Gauge("iw_test_gauge", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iw_test_seconds", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive: 1 lands in the first bucket, 10 and 100
	// in theirs, everything above 100 in +Inf.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 101 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramConcurrentConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iw_test_seconds", "", DurationBuckets)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%13) * 1e-5)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if want := uint64(goroutines * per); s.Count != want || bucketSum != want {
		t.Fatalf("count = %d, bucket sum = %d, want both %d", s.Count, bucketSum, want)
	}
	// Sum must equal the closed-form total despite CAS contention.
	var wantSum float64
	for i := 0; i < per; i++ {
		wantSum += float64(i%13) * 1e-5
	}
	wantSum *= goroutines
	if math.Abs(s.Sum-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestSnapshotMerge(t *testing.T) {
	build := func(n uint64) Snapshot {
		r := NewRegistry()
		r.Counter("iw_c_total", "").Add(n)
		r.Gauge("iw_g", "").Set(int64(n))
		h := r.Histogram("iw_h", "", []float64{1, 2})
		for i := uint64(0); i < n; i++ {
			h.Observe(1.5)
		}
		return r.Snapshot()
	}
	a, b := build(3), build(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counters["iw_c_total"] != 8 {
		t.Errorf("merged counter = %d, want 8", a.Counters["iw_c_total"])
	}
	if a.Gauges["iw_g"] != 8 {
		t.Errorf("merged gauge = %g, want 8", a.Gauges["iw_g"])
	}
	h := a.Histograms["iw_h"]
	if h.Count != 8 || h.Counts[1] != 8 {
		t.Errorf("merged histogram count = %d, bucket1 = %d, want 8/8", h.Count, h.Counts[1])
	}
	if math.Abs(h.Sum-12) > 1e-9 {
		t.Errorf("merged histogram sum = %g, want 12", h.Sum)
	}
	// Mismatched layouts must refuse to merge.
	r := NewRegistry()
	r.Histogram("iw_h", "", []float64{1}).Observe(0.5)
	c := r.Snapshot()
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched bucket layouts succeeded, want error")
	}
}

// TestPrometheusOutputParses renders a populated registry and checks
// the exposition line by line: every line is a comment or a
// name{labels} value sample, bucket counts are cumulative, _count
// equals the +Inf bucket, and each family gets exactly one TYPE
// header.
func TestPrometheusOutputParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("iw_rpc_total", "RPCs issued", L("rpc", "ReadLock")).Add(7)
	r.Counter("iw_rpc_total", "RPCs issued", L("rpc", "WriteLock")).Add(2)
	r.Gauge("iw_sessions", "connected sessions").Set(3)
	h := r.Histogram("iw_lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	r.RegisterCollector(func(emit GaugeEmit) {
		emit("iw_seg_version", "per-segment version", 42, L("seg", `x"y\z`))
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	types := map[string]int{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: unparseable value: %v", line, err)
		}
		if strings.Contains(key, "{") && !strings.HasSuffix(key, "}") {
			t.Fatalf("sample %q: unterminated label set", line)
		}
		samples[key] = v
	}

	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s has %d TYPE headers, want 1", fam, n)
		}
	}
	for _, fam := range []string{"iw_rpc_total", "iw_sessions", "iw_lat_seconds", "iw_seg_version"} {
		if types[fam] != 1 {
			t.Errorf("family %s missing a TYPE header", fam)
		}
	}
	if v := samples[`iw_rpc_total{rpc="ReadLock"}`]; v != 7 {
		t.Errorf("ReadLock counter = %g, want 7", v)
	}
	// Buckets are cumulative and capped by _count.
	b1 := samples[`iw_lat_seconds_bucket{le="0.001"}`]
	b2 := samples[`iw_lat_seconds_bucket{le="0.01"}`]
	inf := samples[`iw_lat_seconds_bucket{le="+Inf"}`]
	cnt := samples["iw_lat_seconds_count"]
	if b1 != 1 || b2 != 2 || inf != 3 || cnt != 3 {
		t.Errorf("buckets = %g/%g/%g count = %g, want 1/2/3 and 3", b1, b2, inf, cnt)
	}
	if sum := samples["iw_lat_seconds_sum"]; math.Abs(sum-5.0055) > 1e-9 {
		t.Errorf("sum = %g, want 5.0055", sum)
	}
	if v := samples[`iw_seg_version{seg="x\"y\\z"}`]; v != 42 {
		t.Errorf("collector gauge = %g (samples: %v)", v, samples)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("iw_x_total", "x").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(sb.String(), "iw_x_total 9") {
		t.Errorf("body missing counter:\n%s", sb.String())
	}
}
