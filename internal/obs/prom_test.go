package obs

import (
	"strings"
	"testing"
)

// histFromCounts builds a snapshot directly, for merge tests.
func histFromCounts(bounds []float64, counts []uint64, sum float64) HistSnapshot {
	var count uint64
	for _, c := range counts {
		count += c
	}
	return HistSnapshot{Bounds: bounds, Counts: counts, Sum: sum, Count: count}
}

func TestHistMergeAssociative(t *testing.T) {
	bounds := []float64{1, 2, 4}
	mk := func() (a, b, c HistSnapshot) {
		a = histFromCounts(bounds, []uint64{1, 0, 2, 3}, 10)
		b = histFromCounts(bounds, []uint64{0, 5, 0, 1}, 7.5)
		c = histFromCounts(bounds, []uint64{2, 2, 2, 2}, 16)
		return
	}

	// (a+b)+c
	a1, b1, c1 := mk()
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := a1.Merge(c1); err != nil {
		t.Fatal(err)
	}
	// a+(b+c)
	a2, b2, c2 := mk()
	if err := b2.Merge(c2); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b2); err != nil {
		t.Fatal(err)
	}

	if a1.Count != a2.Count || a1.Sum != a2.Sum {
		t.Fatalf("merge not associative: count %d vs %d, sum %g vs %g", a1.Count, a2.Count, a1.Sum, a2.Sum)
	}
	for i := range a1.Counts {
		if a1.Counts[i] != a2.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, a1.Counts[i], a2.Counts[i])
		}
	}
	wantCounts := []uint64{3, 7, 4, 6}
	for i, w := range wantCounts {
		if a1.Counts[i] != w {
			t.Fatalf("bucket %d: got %d, want %d", i, a1.Counts[i], w)
		}
	}
	if a1.Count != 20 || a1.Sum != 33.5 {
		t.Fatalf("total: count %d sum %g, want 20 and 33.5", a1.Count, a1.Sum)
	}
}

func TestHistMergeCommutes(t *testing.T) {
	bounds := []float64{1, 2}
	a1 := histFromCounts(bounds, []uint64{1, 2, 3}, 4)
	b1 := histFromCounts(bounds, []uint64{5, 6, 7}, 8)
	a2 := histFromCounts(bounds, []uint64{1, 2, 3}, 4)
	b2 := histFromCounts(bounds, []uint64{5, 6, 7}, 8)
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Merge(a2); err != nil {
		t.Fatal(err)
	}
	if a1.Count != b2.Count || a1.Sum != b2.Sum {
		t.Fatalf("merge not commutative: %+v vs %+v", a1, b2)
	}
	for i := range a1.Counts {
		if a1.Counts[i] != b2.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, a1.Counts[i], b2.Counts[i])
		}
	}
}

func TestHistMergeBucketMismatch(t *testing.T) {
	a := histFromCounts([]float64{1, 2}, []uint64{1, 1, 1}, 3)
	b := histFromCounts([]float64{1, 2, 4}, []uint64{1, 1, 1, 1}, 4)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bucket layouts succeeded")
	}
	// The failed merge must not have half-applied: counts unchanged.
	for i, c := range a.Counts {
		if c != 1 {
			t.Fatalf("bucket %d mutated to %d by failed merge", i, c)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	cases := []struct {
		value string
		want  string // the rendered label value between the quotes
	}{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`quo"te`, `quo\"te`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Counter("esc_total", "help", L("v", tc.value)).Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		wantLine := `esc_total{v="` + tc.want + `"} 1`
		if !strings.Contains(sb.String(), wantLine+"\n") {
			t.Fatalf("value %q: output missing %q:\n%s", tc.value, wantLine, sb.String())
		}
	}
}

func TestPromHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "line\nbreak and back\\slash").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP h_total line\nbreak and back\\slash`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Fatalf("output missing %q:\n%s", want, sb.String())
	}
}

func TestPromInfBucketRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.5)  // bucket le=1
	h.Observe(10)   // only the implicit +Inf bucket
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The +Inf bucket must equal _count: cumulative rendering's
	// closing invariant.
	if !strings.Contains(out, "lat_seconds_sum 10.55") {
		t.Fatalf("output missing sum 10.55:\n%s", out)
	}
}

func TestPromHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("rpc_seconds", "help", []float64{1}, L("rpc", "ReadLock")).Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rpc_seconds_bucket{rpc="ReadLock",le="1"} 1`,
		`rpc_seconds_bucket{rpc="ReadLock",le="+Inf"} 1`,
		`rpc_seconds_count{rpc="ReadLock"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
