// Span-based distributed tracing. A Span is one timed operation; a
// trace is the tree of spans sharing a trace ID, possibly spanning
// processes: the client propagates its span context inside RPC frames
// (internal/protocol) and the server joins its handler spans to it, so
// one ReadLock trace shows the client attempt(s), the server's queue
// wait, freshness check, and diff collection as linked, timed spans.
//
// The Tracer keeps finished traces in a bounded in-memory store with
// tail sampling: traces containing an errored span are always kept,
// the slowest-N traces are always kept, and the rest are sampled with
// a configurable probability. Everything is nil-safe — a nil *Tracer
// returns nil *Spans and every *Span method no-ops on a nil receiver,
// so instrumented code calls the API unconditionally and pays only a
// nil check (no clock reads, no allocation) when tracing is off.

package obs

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanContext identifies one span within one trace; it is the part of
// a span that travels across the wire. The zero value is "no context".
type SpanContext struct {
	// TraceID identifies the whole distributed operation. Zero means
	// no trace.
	TraceID uint64
	// SpanID identifies this span within the trace.
	SpanID uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Attr is one key=value span annotation.
type Attr struct {
	// Key names the attribute, e.g. "seg" or "attempt".
	Key string `json:"key"`
	// Value is the attribute's rendered value.
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. Spans are created with
// Tracer.Start / Tracer.Join / Span.Child, annotated from the single
// goroutine running the operation, and closed exactly once with End.
// All methods are safe on a nil receiver (the disabled state).
type Span struct {
	tr     *Tracer
	ctx    SpanContext
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	errs   string
	ended  bool
}

// Context returns the span's wire context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Attr annotates the span. No-op on nil.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AttrInt annotates the span with an integer value. No-op on nil.
func (s *Span) AttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// Error marks the span errored; errors force the whole trace through
// tail sampling. No-op on nil or nil error.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.errs = err.Error()
}

// Child starts a span in the same trace with this span as parent.
// Returns nil when the receiver is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.ctx.TraceID, s.ctx.SpanID, name)
}

// End closes the span, recording its duration into the trace. The
// trace is finalized (and tail-sampled) once its last open span ends.
// Safe on nil; a second End is ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.endSpan(s)
}

// SpanData is the immutable record of one finished span.
type SpanData struct {
	// SpanID identifies the span within its trace.
	SpanID uint64 `json:"span_id"`
	// ParentID is the parent span's ID, zero for a root span.
	ParentID uint64 `json:"parent_id,omitempty"`
	// Name identifies the operation, e.g. "client.WriteUnlock" or
	// "server.diff_collect"; OBSERVABILITY.md lists the taxonomy.
	Name string `json:"name"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is how long the span ran.
	Duration time.Duration `json:"duration_ns"`
	// Attrs are the span's annotations, in order.
	Attrs []Attr `json:"attrs,omitempty"`
	// Err is the error text when the span was marked errored.
	Err string `json:"error,omitempty"`
}

// TraceData is one finished trace: every finished span that shared
// the trace ID, in end order.
type TraceData struct {
	// TraceID is the trace's identity, hex-rendered for URLs.
	TraceID string `json:"trace_id"`
	// Root names the first span started locally in this trace.
	Root string `json:"root"`
	// Start is the earliest local span start.
	Start time.Time `json:"start"`
	// Duration spans the earliest start to the latest end.
	Duration time.Duration `json:"duration_ns"`
	// Errored reports whether any span carried an error.
	Errored bool `json:"errored"`
	// Kept records the tail-sampling class that retained the trace:
	// "error", "slow", or "sampled".
	Kept string `json:"kept"`
	// Spans holds the trace's spans in end order.
	Spans []SpanData `json:"spans"`
}

// TraceSummary is the list-endpoint view of a kept trace.
type TraceSummary struct {
	// TraceID is the trace's identity, hex-rendered.
	TraceID string `json:"trace_id"`
	// Root names the trace's locally-rooted operation.
	Root string `json:"root"`
	// Start is the trace's earliest span start.
	Start time.Time `json:"start"`
	// Duration spans earliest start to latest end.
	Duration time.Duration `json:"duration_ns"`
	// Spans is the number of spans recorded.
	Spans int `json:"spans"`
	// Errored reports whether any span errored.
	Errored bool `json:"errored"`
	// Kept is the retention class ("error", "slow", "sampled").
	Kept string `json:"kept"`
}

// TracerOptions tunes a Tracer's tail-sampled store.
type TracerOptions struct {
	// Capacity bounds the number of finished traces kept (default
	// 256). When full, the oldest probabilistically-sampled trace is
	// evicted first, then the oldest errored, then the oldest slow.
	Capacity int
	// SlowestN is how many of the slowest traces are always kept
	// regardless of SampleRate (default 16).
	SlowestN int
	// SampleRate is the probability a trace that is neither errored
	// nor among the slowest-N is kept. Zero means the default of 1
	// (keep everything, bounded by Capacity); negative means 0 (tail
	// discard of all unremarkable traces).
	SampleRate float64
	// MaxActive bounds in-flight traces (default 1024); spans for new
	// traces beyond the bound are dropped and counted.
	MaxActive int
	// Seed seeds span/trace ID generation and sampling, for
	// deterministic tests. Zero picks a time-based seed.
	Seed int64
}

// TracerStats counts a tracer's store state.
type TracerStats struct {
	// Active is the number of in-flight traces.
	Active int `json:"active"`
	// Kept is the number of finished traces in the store.
	Kept int `json:"kept"`
	// DroppedActive counts spans dropped because MaxActive in-flight
	// traces already existed.
	DroppedActive uint64 `json:"dropped_active"`
	// SampledOut counts finished traces discarded by tail sampling.
	SampledOut uint64 `json:"sampled_out"`
	// Evicted counts kept traces evicted by the capacity bound.
	Evicted uint64 `json:"evicted"`
}

// activeTrace accumulates the finished spans of an in-flight trace.
type activeTrace struct {
	id       uint64
	open     int
	rootName string
	start    time.Time
	lastEnd  time.Time
	errored  bool
	spans    []SpanData
}

// keptTrace is one finished trace in the tail-sampled store.
type keptTrace struct {
	data  *TraceData
	class string // "error" | "slow" | "sampled"
}

// Tracer creates spans and retains finished traces in a bounded
// tail-sampled in-memory store. A nil *Tracer is the disabled state:
// Start/Join return nil spans and no work happens.
type Tracer struct {
	opts TracerOptions

	mu         sync.Mutex
	rng        *rand.Rand
	active     map[uint64]*activeTrace
	kept       []keptTrace
	dropped    uint64
	sampledOut uint64
	evicted    uint64
}

// NewTracer returns a tracer with the given options (zero values take
// the documented defaults).
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.SlowestN <= 0 {
		opts.SlowestN = 16
	}
	switch {
	case opts.SampleRate == 0:
		opts.SampleRate = 1
	case opts.SampleRate < 0:
		opts.SampleRate = 0
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 1024
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Tracer{
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
		active: make(map[uint64]*activeTrace),
	}
}

// Start begins a new trace rooted at a span with the given name.
// Returns nil on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(0, 0, name)
}

// Join begins a span in the trace identified by a remote parent
// context — the server side of wire propagation. An invalid parent
// starts a fresh locally-rooted trace instead, so a tracing server
// still records requests from clients that sent no context. Returns
// nil on a nil tracer.
func (t *Tracer) Join(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.startSpan(0, 0, name)
	}
	return t.startSpan(parent.TraceID, parent.SpanID, name)
}

// startSpan creates a span; traceID zero mints a fresh trace.
func (t *Tracer) startSpan(traceID, parentID uint64, name string) *Span {
	now := time.Now()
	t.mu.Lock()
	if traceID == 0 {
		traceID = t.id()
	}
	at, ok := t.active[traceID]
	if !ok {
		if len(t.active) >= t.opts.MaxActive {
			t.dropped++
			t.mu.Unlock()
			return nil
		}
		at = &activeTrace{id: traceID, rootName: name, start: now}
		t.active[traceID] = at
	}
	at.open++
	sp := &Span{
		tr:     t,
		ctx:    SpanContext{TraceID: traceID, SpanID: t.id()},
		parent: parentID,
		name:   name,
		start:  now,
	}
	t.mu.Unlock()
	return sp
}

// id mints a nonzero random identifier; caller holds t.mu.
func (t *Tracer) id() uint64 {
	for {
		if v := t.rng.Uint64(); v != 0 {
			return v
		}
	}
}

// endSpan records a finished span and finalizes the trace when its
// last open local span ends.
func (t *Tracer) endSpan(s *Span) {
	end := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.active[s.ctx.TraceID]
	if !ok {
		return // trace already finalized (late span); drop silently
	}
	at.spans = append(at.spans, SpanData{
		SpanID:   s.ctx.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Err:      s.errs,
	})
	if s.errs != "" {
		at.errored = true
	}
	if s.start.Before(at.start) {
		at.start = s.start
	}
	if end.After(at.lastEnd) {
		at.lastEnd = end
	}
	at.open--
	if at.open <= 0 {
		delete(t.active, s.ctx.TraceID)
		t.finalize(at)
	}
}

// finalize runs the tail-sampling decision on a finished trace;
// caller holds t.mu.
func (t *Tracer) finalize(at *activeTrace) {
	dur := at.lastEnd.Sub(at.start)
	class := ""
	switch {
	case at.errored:
		class = "error"
	default:
		// Slowest-N: claim a slot, or displace the currently slowest
		// set's minimum (which is demoted to the sampled class, not
		// discarded — it earned its keep when it was recorded).
		slowCount, minIdx := 0, -1
		var minDur time.Duration
		for i := range t.kept {
			if t.kept[i].class != "slow" {
				continue
			}
			slowCount++
			if minIdx == -1 || t.kept[i].data.Duration < minDur {
				minIdx, minDur = i, t.kept[i].data.Duration
			}
		}
		switch {
		case slowCount < t.opts.SlowestN:
			class = "slow"
		case dur > minDur:
			t.kept[minIdx].class = "sampled"
			t.kept[minIdx].data.Kept = "sampled"
			class = "slow"
		case t.rng.Float64() < t.opts.SampleRate:
			class = "sampled"
		default:
			t.sampledOut++
			return
		}
	}
	t.kept = append(t.kept, keptTrace{
		data: &TraceData{
			TraceID:  formatID(at.id),
			Root:     at.rootName,
			Start:    at.start,
			Duration: dur,
			Errored:  at.errored,
			Kept:     class,
			Spans:    at.spans,
		},
		class: class,
	})
	for len(t.kept) > t.opts.Capacity {
		t.evict()
	}
}

// evict removes one kept trace: the oldest sampled one, else the
// oldest errored one, else the oldest overall. Caller holds t.mu.
func (t *Tracer) evict() {
	idx := -1
	for _, class := range []string{"sampled", "error"} {
		for i := range t.kept {
			if t.kept[i].class == class {
				idx = i
				break
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		idx = 0
	}
	t.kept = append(t.kept[:idx], t.kept[idx+1:]...)
	t.evicted++
}

// Stats reports the tracer's store state.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{
		Active:        len(t.active),
		Kept:          len(t.kept),
		DroppedActive: t.dropped,
		SampledOut:    t.sampledOut,
		Evicted:       t.evicted,
	}
}

// Traces lists the kept traces, newest first.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.kept))
	for _, k := range t.kept {
		out = append(out, TraceSummary{
			TraceID:  k.data.TraceID,
			Root:     k.data.Root,
			Start:    k.data.Start,
			Duration: k.data.Duration,
			Spans:    len(k.data.Spans),
			Errored:  k.data.Errored,
			Kept:     k.class,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Trace returns a copy of one kept trace by hex ID.
func (t *Tracer) Trace(idHex string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range t.kept {
		if k.data.TraceID == idHex {
			cp := *k.data
			cp.Spans = append([]SpanData(nil), k.data.Spans...)
			return cp, true
		}
	}
	return TraceData{}, false
}

// keptData copies the store for export; newest last (arrival order).
func (t *Tracer) keptData() []*TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TraceData, len(t.kept))
	for i, k := range t.kept {
		out[i] = k.data
	}
	return out
}

// formatID hex-renders a trace or span ID the way URLs and exports
// show them.
func formatID(v uint64) string { return fmt.Sprintf("%016x", v) }
