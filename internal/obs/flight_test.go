package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightNilIsSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(Event{Name: "x"})
	if got := f.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
	if f.Recorded() != 0 || f.Capacity() != 0 {
		t.Fatal("nil recorder reported non-zero state")
	}
	f.DumpTo(&strings.Builder{}) // must not panic
}

func TestFlightRecordAndOrder(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Now()
	for i := 0; i < 5; i++ {
		f.Record(Event{Name: fmt.Sprintf("ev%d", i), At: base.Add(time.Duration(i) * time.Millisecond)})
	}
	evs := f.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("ev%d", i); ev.Name != want {
			t.Fatalf("event %d: got %q, want %q", i, ev.Name, want)
		}
	}
	if f.Recorded() != 5 {
		t.Fatalf("Recorded() = %d, want 5", f.Recorded())
	}
}

func TestFlightWraparound(t *testing.T) {
	const capacity = 16
	f := NewFlightRecorder(capacity)
	base := time.Now()
	const total = 3*capacity + 5
	for i := 0; i < total; i++ {
		f.Record(Event{Name: fmt.Sprintf("ev%d", i), At: base.Add(time.Duration(i) * time.Millisecond)})
	}
	evs := f.Events()
	if len(evs) != capacity {
		t.Fatalf("got %d events after wraparound, want %d", len(evs), capacity)
	}
	// Only the newest capacity events survive, still oldest-first.
	for i, ev := range evs {
		if want := fmt.Sprintf("ev%d", total-capacity+i); ev.Name != want {
			t.Fatalf("event %d: got %q, want %q", i, ev.Name, want)
		}
	}
	if f.Recorded() != total {
		t.Fatalf("Recorded() = %d, want %d", f.Recorded(), total)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(Event{Name: "concurrent", N: int64(w)})
				if i%50 == 0 {
					_ = f.Events() // reader racing the writers
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Recorded() != workers*per {
		t.Fatalf("Recorded() = %d, want %d", f.Recorded(), workers*per)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("got %d events, want full ring of 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestFlightSince(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Now()
	for i := 0; i < 6; i++ {
		f.Record(Event{Name: fmt.Sprintf("ev%d", i), At: base.Add(time.Duration(i) * time.Second)})
	}
	got := f.Since(base.Add(3 * time.Second))
	if len(got) != 3 {
		t.Fatalf("Since returned %d events, want 3", len(got))
	}
	if got[0].Name != "ev3" {
		t.Fatalf("Since starts at %q, want ev3", got[0].Name)
	}
}

func TestFlightDumpOnPanic(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(Event{Name: "lock.grant", Seg: "iw://s/a"})
	f.Record(Event{Name: "session.evict", Err: "slow consumer"})

	var dump strings.Builder
	var rePanicked any
	func() {
		defer func() { rePanicked = recover() }()
		func() {
			defer f.DumpOnPanic(&dump, "test goroutine")
			panic("boom")
		}()
	}()
	if rePanicked != "boom" {
		t.Fatalf("re-panic value = %v, want boom", rePanicked)
	}
	out := dump.String()
	for _, want := range []string{
		"panic in test goroutine: boom",
		"lock.grant",
		"seg=iw://s/a",
		"session.evict",
		"err=slow consumer",
		"goroutine", // the stack trace
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightDumpOnPanicNoPanic(t *testing.T) {
	f := NewFlightRecorder(4)
	var dump strings.Builder
	func() {
		defer f.DumpOnPanic(&dump, "clean goroutine")
	}()
	if dump.Len() != 0 {
		t.Fatalf("dump written without a panic:\n%s", dump.String())
	}
}

func TestFlightDumpOnPanicNilRecorder(t *testing.T) {
	var f *FlightRecorder
	var rePanicked any
	func() {
		defer func() { rePanicked = recover() }()
		func() {
			defer f.DumpOnPanic(nil, "nil recorder")
			panic("still dies")
		}()
	}()
	if rePanicked != "still dies" {
		t.Fatalf("nil recorder swallowed the panic: %v", rePanicked)
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Now().Add(-time.Minute)
	f.Record(Event{Name: "old", At: base})
	f.Record(Event{Name: "new", At: time.Now(), Seg: "iw://s/a", N: 3})

	get := func(url string) []flightEvent {
		t.Helper()
		rec := httptest.NewRecorder()
		FlightHandler(f).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		var evs []flightEvent
		if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
		return evs
	}

	all := get("/debug/flight")
	if len(all) != 2 || all[0].Name != "old" || all[1].Name != "new" {
		t.Fatalf("unfiltered: %+v", all)
	}
	if all[1].Seg != "iw://s/a" || all[1].N != 3 {
		t.Fatalf("event fields lost: %+v", all[1])
	}

	recent := get("/debug/flight?since=30s")
	if len(recent) != 1 || recent[0].Name != "new" {
		t.Fatalf("since=30s: %+v", recent)
	}

	stamped := get("/debug/flight?since=" + base.Add(time.Second).Format(time.RFC3339Nano))
	if len(stamped) != 1 || stamped[0].Name != "new" {
		t.Fatalf("since=<rfc3339>: %+v", stamped)
	}

	rec := httptest.NewRecorder()
	FlightHandler(f).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight?since=garbage", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}
}
