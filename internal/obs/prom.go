package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// histograms with cumulative le buckets plus _sum and _count.
// Families appear in registration order; collector gauges follow.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	collectors := make([]CollectFunc, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	pw := &promWriter{w: w, seen: make(map[string]bool)}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			pw.header(e.family, e.help, "counter")
			pw.sample(e.family, e.labels, "", formatUint(e.counter.Value()))
		case kindGauge:
			pw.header(e.family, e.help, "gauge")
			pw.sample(e.family, e.labels, "", formatFloat(float64(e.gauge.Value())))
		case kindHistogram:
			pw.header(e.family, e.help, "histogram")
			s := e.hist.Snapshot()
			cum := uint64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				pw.sample(e.family+"_bucket", e.labels, formatFloat(b), formatUint(cum))
			}
			cum += s.Counts[len(s.Bounds)]
			pw.sample(e.family+"_bucket", e.labels, "+Inf", formatUint(cum))
			pw.sample(e.family+"_sum", e.labels, "", formatFloat(s.Sum))
			pw.sample(e.family+"_count", e.labels, "", formatUint(s.Count))
		}
	}
	for _, fn := range collectors {
		fn(func(name, help string, v float64, labels ...Label) {
			pw.header(name, help, "gauge")
			pw.sample(name, labels, "", formatFloat(v))
		})
	}
	return pw.err
}

// promWriter accumulates exposition lines, emitting each family's
// HELP/TYPE header exactly once.
type promWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

func (pw *promWriter) header(family, help, typ string) {
	if pw.err != nil || pw.seen[family] {
		return
	}
	pw.seen[family] = true
	if help != "" {
		_, pw.err = fmt.Fprintf(pw.w, "# HELP %s %s\n", family, escapeHelp(help))
		if pw.err != nil {
			return
		}
	}
	_, pw.err = fmt.Fprintf(pw.w, "# TYPE %s %s\n", family, typ)
}

// sample writes one metric line; le, when non-empty, is appended as
// the bucket bound label.
func (pw *promWriter) sample(name string, labels []Label, le, value string) {
	if pw.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 || le != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`le="`)
			sb.WriteString(le)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
	_, pw.err = io.WriteString(pw.w, sb.String())
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns an http.Handler serving the registry at /metrics
// scrape requests (any path; mount it wherever).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
